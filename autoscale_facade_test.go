//lint:file-ignore SA1019 This file deliberately exercises the deprecated registry facades to keep their compatibility contract tested until removal.
package fastsketches_test

// Registry autoscaling facade tests: Autoscale/AutoscaleAll attach one
// started controller per registered sketch, the controllers actually walk
// S through the registry's sketches when driven by a ManualClock, and
// Close stops them. All timing is manual-clock driven — no sleeps.

import (
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
)

// testPolicy returns an aggressive manual-clock policy: one qualifying
// sample resizes, no cooldown.
func testPolicy(mc *autoscale.ManualClock) autoscale.Policy {
	return autoscale.Policy{
		MinShards: 1, MaxShards: 8,
		HighWater: 1000, LowWater: 100,
		SustainedUp: 1, SustainedDown: 1,
		SampleEvery: 10 * time.Millisecond,
		Cooldown:    time.Nanosecond,
		Clock:       mc,
	}
}

// advanceTicks drives every controller through n full sampling periods,
// synchronising on the manual clock's armed-timer count so no tick is lost
// between a controller's wakeup and its re-arm.
func advanceTicks(t *testing.T, mc *autoscale.ManualClock, ctls []*autoscale.Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	base := make([]int64, len(ctls))
	for i, ctl := range ctls {
		base[i] = ctl.Stats().Samples
	}
	for tick := 1; tick <= n; tick++ {
		for mc.Waiters() < len(ctls) {
			if time.Now().After(deadline) {
				t.Fatal("controllers never armed their sampling timers")
			}
			time.Sleep(50 * time.Microsecond)
		}
		mc.Advance(10 * time.Millisecond)
		for i, ctl := range ctls {
			for ctl.Stats().Samples < base[i]+int64(tick) {
				if time.Now().After(deadline) {
					t.Fatal("controller never ticked")
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
}

func TestRegistryAutoscaleAttachesPerSketch(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	reg.Theta("tenant-a")
	reg.HLL("tenant-a")
	reg.CountMin("tenant-b")

	mc := autoscale.NewManualClock(time.Unix(1_000_000, 0))
	ctls, err := reg.Autoscale("tenant-a", testPolicy(mc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ctls) != 2 { // theta + hll under tenant-a; tenant-b not matched
		t.Fatalf("Autoscale(tenant-a) attached %d controllers, want 2", len(ctls))
	}
	all, err := reg.AutoscaleAll(testPolicy(mc))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("AutoscaleAll attached %d controllers, want 3", len(all))
	}
	if _, err := reg.Autoscale("nobody", testPolicy(mc)); err == nil {
		t.Error("Autoscale of an unregistered name must error")
	}
	if _, err := reg.AutoscaleAll(autoscale.Policy{}); err == nil {
		t.Error("invalid policy must error")
	}
}

func TestRegistryAutoscaleWalksShardsUnderLoad(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: 1, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	sk := reg.CountMin("api.calls")

	mc := autoscale.NewManualClock(time.Unix(1_000_000, 0))
	ctls, err := reg.Autoscale("api.calls", testPolicy(mc))
	if err != nil {
		t.Fatal(err)
	}
	advanceTicks(t, mc, ctls, 1) // warmup baseline

	// Burst: ingest between every tick; 4000 items per 10ms of manual time
	// is a per-shard rate far above HighWater → the controller must walk S
	// up to MaxShards.
	for tick := 0; tick < 8 && sk.Shards() < 8; tick++ {
		for i := 0; i < 4000; i++ {
			sk.Update(0, uint64(i))
		}
		advanceTicks(t, mc, ctls, 1)
	}
	if got := sk.Shards(); got != 8 {
		t.Fatalf("shards after sustained burst = %d, want MaxShards 8", got)
	}

	// Lull: no ingest at all. The backlog drains (propagators keep running
	// in real time), then quiet samples walk S back down to MinShards.
	deadline := time.Now().Add(30 * time.Second)
	for sk.Shards() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never scaled back down; shards %d, stats %+v", sk.Shards(), ctls[0].Stats())
		}
		advanceTicks(t, mc, ctls, 1)
	}
	st := ctls[0].Stats()
	if st.ScaleUps == 0 || st.ScaleDowns == 0 {
		t.Errorf("stats = %+v, want both ups and downs recorded", st)
	}
}

func TestRegistryCloseStopsControllers(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg.Theta("t")
	mc := autoscale.NewManualClock(time.Unix(1_000_000, 0))
	ctls, err := reg.Autoscale("t", testPolicy(mc))
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	samples := ctls[0].Stats().Samples
	// The loop is stopped: advancing the clock can no longer produce ticks.
	mc.Advance(time.Second)
	mc.Advance(time.Second)
	if got := ctls[0].Stats().Samples; got != samples {
		t.Errorf("controller ticked after registry Close: %d → %d samples", samples, got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Autoscale after Close must panic like every registry accessor")
		}
	}()
	reg.Autoscale("t", testPolicy(mc))
}
