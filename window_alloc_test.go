//go:build !race

package fastsketches_test

// TestWindowedQueryZeroAlloc pins the windowing layer's serving-path
// contract: once a window has rotated and its suffix-merge is materialized,
// steady-state windowed queries — the pooled family scalars, the
// caller-owned WindowQueryInto path, and the time-decayed Count-Min read —
// must not allocate. Excluded under -race because the race-mode sync.Pool
// intentionally drops puts at random, so pool misses (and their
// allocations) are expected there.

import (
	"testing"
	"time"

	"fastsketches"
)

func TestWindowedQueryZeroAlloc(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, MaxError: 1, QuantilesK: 128, CountMinEpsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// One hour on the system clock never fires during the test, so every
	// rotation below is explicit and the serving state stays stable while
	// AllocsPerRun samples it.
	win := &fastsketches.WindowConfig{Interval: time.Hour, Slots: 4}
	cmWin := &fastsketches.WindowConfig{Interval: time.Hour, Slots: 4, Decay: 0.5}
	th, err := reg.OpenTheta("winalloc", fastsketches.Spec{Window: win})
	if err != nil {
		t.Fatal(err)
	}
	hl, err := reg.OpenHLL("winalloc", fastsketches.Spec{Window: win})
	if err != nil {
		t.Fatal(err)
	}
	qu, err := reg.OpenQuantiles("winalloc", fastsketches.Spec{Window: win})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := reg.OpenCountMin("winalloc", fastsketches.Spec{Window: cmWin})
	if err != nil {
		t.Fatal(err)
	}

	// Two populated intervals plus a live one: the suffix-merge, the decay
	// plane and the live snapshots all participate in every fold below.
	for round := 0; round < 2; round++ {
		for i := 0; i < 1<<10; i++ {
			th.Update(0, uint64(round<<16|i))
			hl.Update(0, uint64(round<<16|i))
			qu.Update(0, float64(i%1024))
			cm.Update(0, uint64(i%256))
		}
		for _, h := range []interface{ RotateNow() bool }{th, hl, qu, cm} {
			if !h.RotateNow() {
				t.Fatal("RotateNow on a declared window returned false")
			}
		}
	}
	for i := 0; i < 1<<10; i++ {
		th.Update(0, uint64(1<<20|i))
		hl.Update(0, uint64(1<<20|i))
		qu.Update(0, float64(i%1024))
		cm.Update(0, uint64(i%256))
	}

	var sinkF float64
	var sinkU uint64
	var sinkOK bool
	thAcc, hlAcc := th.NewAccumulator(), hl.NewAccumulator()
	qAcc, cmAcc := qu.NewAccumulator(), cm.NewAccumulator()
	// AllocsPerRun's warm-up call primes each sketch's accumulator pool and
	// grows the reused buffers to steady state before counting.
	paths := map[string]func(){
		"theta/pooled":        func() { sinkF, sinkOK = th.Sketch().WindowEstimate() },
		"theta/queryinto":     func() { sinkOK = th.WindowQueryInto(thAcc); sinkF = thAcc.Estimate() },
		"hll/pooled":          func() { sinkF, sinkOK = hl.Sketch().WindowEstimate() },
		"hll/queryinto":       func() { sinkOK = hl.WindowQueryInto(hlAcc); sinkF = hlAcc.Estimate() },
		"quantiles/pooled":    func() { sinkF, sinkOK = qu.Sketch().WindowQuantile(0.99) },
		"quantiles/queryinto": func() { sinkOK = qu.WindowQueryInto(qAcc); sinkF = qAcc.Quantile(0.99) },
		"countmin/pooled":     func() { sinkU, sinkOK = cm.Sketch().WindowCount(7) },
		"countmin/queryinto":  func() { sinkOK = cm.WindowQueryInto(cmAcc); sinkU = cmAcc.Estimate(7) },
		"countmin/decayed":    func() { sinkU, sinkOK = cm.Sketch().DecayedCount(7) },
	}
	for name, fn := range paths {
		fn()
		if !sinkOK {
			t.Fatalf("%s: windowed query reported no window enabled", name)
		}
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op steady-state, want 0", name, allocs)
		}
	}
	_, _ = sinkF, sinkU
}
