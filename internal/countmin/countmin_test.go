package countmin

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"fastsketches/internal/core"
	"fastsketches/internal/stream"
)

func TestNeverUnderestimates(t *testing.T) {
	s := New(256, 4, 9001)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(5000))
		s.Update(k)
		truth[k]++
	}
	for k, want := range truth {
		if got := s.Estimate(k); got < want {
			t.Fatalf("key %d underestimated: %d < %d", k, got, want)
		}
	}
}

func TestErrorBoundHolds(t *testing.T) {
	// With w=⌈e/ε⌉ the additive error is ≤ ε·N w.p. ≥ 1−e^−d per key;
	// check the overwhelming majority of keys on a Zipf stream.
	s := NewWithError(0.005, 0.01, 9001)
	keys := stream.Zipf(200000, 10000, 1.3, 2)
	truth := map[uint64]uint64{}
	for _, k := range keys {
		s.Update(k)
		truth[k]++
	}
	bound := uint64(math.Ceil(s.ErrorBound()))
	bad := 0
	for k, want := range truth {
		if got := s.Estimate(k); got > want+bound {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(truth)); frac > 0.01 {
		t.Errorf("%.3f%% of keys exceeded the ε·N bound (δ=1%%)", frac*100)
	}
}

func TestExactWhenNoCollisions(t *testing.T) {
	// Few keys, wide sketch → whp no collisions → exact counts.
	s := New(1<<16, 4, 9001)
	for i := 0; i < 100; i++ {
		for j := 0; j <= i; j++ {
			s.Update(uint64(i))
		}
	}
	for i := 0; i < 100; i++ {
		if got := s.Estimate(uint64(i)); got != uint64(i+1) {
			t.Fatalf("key %d: got %d, want %d", i, got, i+1)
		}
	}
}

func TestUnseenKeySmall(t *testing.T) {
	s := New(4096, 5, 9001)
	for i := 0; i < 10000; i++ {
		s.Update(uint64(i))
	}
	// An unseen key's estimate is pure collision noise ≤ ε·N whp.
	if got := s.Estimate(1 << 60); float64(got) > 3*s.ErrorBound()+1 {
		t.Errorf("unseen key estimate %d too large", got)
	}
}

func TestWeightedAdd(t *testing.T) {
	s := New(1024, 4, 9001)
	s.Add(7, 1000)
	s.Add(7, 234)
	if got := s.Estimate(7); got != 1234 {
		t.Fatalf("weighted estimate %d, want 1234", got)
	}
	if s.N() != 1234 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestMergeEquivalentToConcatenation(t *testing.T) {
	a := New(512, 4, 9001)
	b := New(512, 4, 9001)
	whole := New(512, 4, 9001)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(2000))
		whole.Update(k)
		if i%2 == 0 {
			a.Update(k)
		} else {
			b.Update(k)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N %d != %d", a.N(), whole.N())
	}
	for k := uint64(0); k < 2000; k += 37 {
		if a.Estimate(k) != whole.Estimate(k) {
			t.Fatalf("key %d: merged %d != whole %d", k, a.Estimate(k), whole.Estimate(k))
		}
	}
}

func TestMergeMismatchPanics(t *testing.T) {
	for name, other := range map[string]*Sketch{
		"width": New(128, 4, 9001),
		"depth": New(256, 5, 9001),
		"seed":  New(256, 4, 1),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			New(256, 4, 9001).Merge(other)
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, 1) },
		func() { New(4, 0, 1) },
		func() { NewWithError(0, 0.5, 1) },
		func() { NewWithError(0.5, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPropertyMonotoneInUpdates(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
	f := func(keys []uint64, probe uint64) bool {
		s := New(64, 3, 9001)
		prev := s.Estimate(probe)
		for _, k := range keys {
			s.Update(k)
			cur := s.Estimate(probe)
			if cur < prev {
				return false // estimates can only grow
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	s := New(64, 3, 9001)
	for i := 0; i < 1000; i++ {
		s.Update(uint64(i % 10))
	}
	s.Reset()
	if s.N() != 0 || s.Estimate(3) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestConcurrentCountMin(t *testing.T) {
	comp := NewComposable(2048, 4, 9001)
	fw := core.New[uint64](comp, core.Config{Workers: 2, BufferSize: 32, MaxError: 1})
	fw.Start()
	const n = 1 << 17
	keys := stream.Zipf(n, 1000, 1.4, 7)
	truth := map[uint64]uint64{}
	for _, k := range keys {
		truth[k]++
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 2 {
				fw.Update(w, keys[i])
			}
		}(w)
	}
	// Live queries: estimates must never exceed truth + bound nor behave
	// wildly; undercounting is allowed (relaxation).
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if comp.Estimate(keys[0]) > uint64(n) {
				t.Error("estimate exceeds stream length")
				return
			}
			runtime.Gosched() // don't starve writers on small machines
		}
	}()
	wg.Wait()
	close(stop)
	qwg.Wait()
	fw.Close()
	if comp.N() != n {
		t.Fatalf("merged weight %d, want %d", comp.N(), n)
	}
	snap := comp.Snapshot()
	bound := uint64(math.Ceil(snap.ErrorBound()))
	for k, want := range truth {
		got := snap.Estimate(k)
		if got < want {
			t.Fatalf("key %d underestimated after close: %d < %d", k, got, want)
		}
		if got > want+3*bound+1 {
			t.Fatalf("key %d overestimated beyond bound: %d > %d+%d", k, got, want, 3*bound)
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(4096, 4, 9001)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i & 1023))
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := New(4096, 4, 9001)
	for i := 0; i < 1<<20; i++ {
		s.Update(uint64(i & 1023))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Estimate(uint64(i & 1023))
	}
	_ = sink
}

func TestSnapshotMergeEqualsSequential(t *testing.T) {
	// Folding k shard composables into an accumulator must equal the
	// sequential sketch over the concatenated streams exactly: Count-Min
	// merging is element-wise counter addition, which is lossless.
	cases := []struct {
		name     string
		shards   int
		perShard int
		width    int
		depth    int
	}{
		{"1-shard", 1, 5000, 256, 4},
		{"2-shard", 2, 5000, 256, 4},
		{"4-shard skewed", 4, 20000, 128, 5},
		{"8-shard", 8, 3000, 512, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := New(tc.width, tc.depth, 9001)
			acc := New(tc.width, tc.depth, 9001)
			for s := 0; s < tc.shards; s++ {
				c := NewComposable(tc.width, tc.depth, 9001)
				keys := make([]uint64, tc.perShard)
				for i := range keys {
					// Zipf-ish skew: low keys repeat often.
					keys[i] = uint64(i % (7 + s*13))
					seq.Update(keys[i])
				}
				c.MergeBuffer(keys)
				c.SnapshotMergeInto(acc)
			}
			if acc.N() != seq.N() {
				t.Fatalf("merged N %d != sequential %d", acc.N(), seq.N())
			}
			for key := uint64(0); key < 200; key++ {
				if got, want := acc.Estimate(key), seq.Estimate(key); got != want {
					t.Fatalf("key %d: merged estimate %d != sequential %d", key, got, want)
				}
			}
		})
	}
}

func TestSnapshotMergeDimensionMismatchPanics(t *testing.T) {
	c := NewComposable(128, 4, 9001)
	for _, acc := range []*Sketch{New(64, 4, 9001), New(128, 3, 9001), New(128, 4, 1234)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mismatched SnapshotMergeInto must panic")
				}
			}()
			c.SnapshotMergeInto(acc)
		}()
	}
}
