// Package countmin implements a Count-Min frequency sketch and its
// concurrent instantiation under the generic framework.
//
// The paper's conclusion invites applying the framework to further sketches
// ("future work may leverage our framework for other sketches"); Count-Min
// is the natural next candidate: its per-item counters serve the
// heavy-hitter / anomaly-detection workloads the paper's introduction cites
// (e.g. Elastic Sketch, SIGCOMM'18), it is order-agnostic and mergeable
// (element-wise addition), and its queries are one-sided (overestimates
// only), so the r-relaxation has a clean effect: a concurrent query may
// undercount by at most the r in-flight updates while keeping the classic
// ε·N overestimation guarantee relative to the propagated prefix.
//
// Parameters follow Cormode–Muthukrishnan: width w = ⌈e/ε⌉ columns gives
// additive error ≤ ε·N with probability ≥ 1 − e^(−d) over the d rows.
package countmin

import (
	"fmt"
	"math"
	"sync/atomic"

	"fastsketches/internal/murmur"
)

// Sketch is a sequential Count-Min sketch over uint64 keys.
// It is not safe for concurrent use; Composable provides that.
type Sketch struct {
	width int
	depth int
	seed  uint64
	rows  [][]uint64
	n     uint64 // total weight processed
}

// New returns an empty Count-Min sketch with the given width (columns per
// row) and depth (independent rows).
func New(width, depth int, seed uint64) *Sketch {
	if width < 1 || depth < 1 {
		panic(fmt.Sprintf("countmin: width and depth must be ≥ 1, got %d×%d", width, depth))
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &Sketch{width: width, depth: depth, seed: seed, rows: rows}
}

// NewWithError returns a sketch dimensioned for additive error ≤ eps·N with
// failure probability ≤ delta: w = ⌈e/eps⌉, d = ⌈ln(1/delta)⌉.
func NewWithError(eps, delta float64, seed uint64) *Sketch {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("countmin: eps and delta must be in (0,1)")
	}
	w := int(math.Ceil(math.E / eps))
	d := int(math.Ceil(math.Log(1 / delta)))
	return New(w, d, seed)
}

// Width returns the number of counters per row.
func (s *Sketch) Width() int { return s.width }

// Depth returns the number of rows.
func (s *Sketch) Depth() int { return s.depth }

// Seed returns the hash seed.
func (s *Sketch) Seed() uint64 { return s.seed }

// SizeBytes estimates the sketch's resident heap footprint in bytes: the
// struct header, the row-slice headers, and the depth×width counter grid —
// the memory-budget accounting hook of the sharded layer.
func (s *Sketch) SizeBytes() int {
	b := 72 + 24*len(s.rows)
	for _, row := range s.rows {
		b += 8 * cap(row)
	}
	return b
}

// N returns the total weight processed.
func (s *Sketch) N() uint64 { return s.n }

// index returns the column of key in row r. Row seeds are derived from the
// base seed so the d hash functions are independent.
func (s *Sketch) index(key uint64, r int) int {
	h := murmur.HashUint64(key, s.seed+uint64(r)*0x9e3779b97f4a7c15+1)
	return int(h % uint64(s.width))
}

// Update adds weight 1 to key.
func (s *Sketch) Update(key uint64) { s.Add(key, 1) }

// Add adds the given weight to key.
func (s *Sketch) Add(key uint64, weight uint64) {
	s.n += weight
	for r := 0; r < s.depth; r++ {
		s.rows[r][s.index(key, r)] += weight
	}
}

// Estimate returns the estimated weight of key: the minimum counter over
// the rows. It never underestimates the true weight.
func (s *Sketch) Estimate(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for r := 0; r < s.depth; r++ {
		if c := s.rows[r][s.index(key, r)]; c < min {
			min = c
		}
	}
	return min
}

// ErrorBound returns the additive error guarantee ε·N = (e/width)·N that
// holds with probability ≥ 1 − e^(−depth).
func (s *Sketch) ErrorBound() float64 {
	return math.E / float64(s.width) * float64(s.n)
}

// Merge adds another sketch of identical dimensions and seed element-wise;
// the result summarises the concatenated streams.
func (s *Sketch) Merge(other *Sketch) {
	if other.width != s.width || other.depth != s.depth {
		panic(fmt.Sprintf("countmin: dimension mismatch %dx%d vs %dx%d",
			other.width, other.depth, s.width, s.depth))
	}
	if other.seed != s.seed {
		panic("countmin: cannot merge sketches with different seeds")
	}
	s.n += other.n
	for r := range s.rows {
		for c := range s.rows[r] {
			s.rows[r][c] += other.rows[r][c]
		}
	}
}

// FoldInto folds the receiver's counters and weight into dst by element-wise
// addition without mutating the receiver — the retired-state drain hook of
// the sharded layer's live resharding: a legacy sketch published by a
// completed Resize is folded into every merged-query accumulator exactly
// like one more shard snapshot. Allocation-free; the receiver is only read,
// so concurrent folds into distinct accumulators are safe.
func (s *Sketch) FoldInto(dst *Sketch) { dst.Merge(s) }

// ScaleBy multiplies every counter and the total weight by f ∈ [0,1),
// flooring — the exponential-decay hook of the windowed layer: scaling a
// sketch by λ on every rotation makes a count observed k rotations ago
// contribute with weight λ^k. Flooring keeps counters integral and can only
// shrink them, so the one-sided overestimation guarantee is preserved
// relative to the identically decayed true weights. The scaled n is capped
// at the smallest scaled row sum, so every row still covers the claimed
// weight and an exported decayed sketch passes ImportFrom validation.
func (s *Sketch) ScaleBy(f float64) {
	if f < 0 || f >= 1 {
		panic(fmt.Sprintf("countmin: ScaleBy factor %v outside [0,1)", f))
	}
	minSum := uint64(math.MaxUint64)
	for r := range s.rows {
		var sum uint64
		for c := range s.rows[r] {
			v := uint64(float64(s.rows[r][c]) * f)
			s.rows[r][c] = v
			sum += v
		}
		if sum < minSum {
			minSum = sum
		}
	}
	if n := uint64(float64(s.n) * f); n < minSum {
		minSum = n
	}
	s.n = minSum
}

// Reset restores the empty state.
func (s *Sketch) Reset() {
	s.n = 0
	for r := range s.rows {
		for c := range s.rows[r] {
			s.rows[r][c] = 0
		}
	}
}

// Composable wraps Count-Min as the shared global sketch of the concurrent
// framework. The propagator is the only writer; queries read the counters
// with atomic loads, so a concurrent Estimate sees some prefix of the
// merged updates (all but ≤ r of the completed ones, per Theorem 1) and
// keeps the one-sided overestimation property relative to that prefix.
//
// There is no useful pre-filter for frequency counting — every update
// changes counters — so the hint is the trivial constant, exactly the
// degenerate case the paper's interface permits.
type Composable struct {
	width int
	depth int
	seed  uint64
	rows  [][]uint64 // accessed with atomic ops
	n     atomic.Uint64
}

// NewComposable returns a composable Count-Min sketch.
func NewComposable(width, depth int, seed uint64) *Composable {
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &Composable{width: width, depth: depth, seed: seed, rows: rows}
}

func (c *Composable) index(key uint64, r int) int {
	h := murmur.HashUint64(key, c.seed+uint64(r)*0x9e3779b97f4a7c15+1)
	return int(h % uint64(c.width))
}

// MergeBuffer folds a batch of keys (weight 1 each) into the counters.
// Propagator goroutine only.
func (c *Composable) MergeBuffer(keys []uint64) {
	for _, key := range keys {
		for r := 0; r < c.depth; r++ {
			atomic.AddUint64(&c.rows[r][c.index(key, r)], 1)
		}
	}
	c.n.Add(uint64(len(keys)))
}

// DirectUpdate applies one key during the eager phase.
func (c *Composable) DirectUpdate(key uint64) {
	for r := 0; r < c.depth; r++ {
		atomic.AddUint64(&c.rows[r][c.index(key, r)], 1)
	}
	c.n.Add(1)
}

// CalcHint returns the trivial hint.
func (c *Composable) CalcHint() uint64 { return 1 }

// ShouldAdd always accepts (frequency counting cannot pre-filter).
func (c *Composable) ShouldAdd(hint uint64, key uint64) bool { return true }

// Estimate returns the current frequency estimate of key (wait-free).
func (c *Composable) Estimate(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for r := 0; r < c.depth; r++ {
		if v := atomic.LoadUint64(&c.rows[r][c.index(key, r)]); v < min {
			min = v
		}
	}
	return min
}

// N returns the total merged weight (wait-free).
func (c *Composable) N() uint64 { return c.n.Load() }

// SnapshotMergeInto folds the current counters into the accumulator sketch
// by element-wise addition — the merge-on-query path of a sharded
// deployment. Each counter is read with one atomic load, so the fold is
// wait-free and safe concurrently with ingestion; the result summarises,
// for every key, at least the updates propagated before the call (the
// one-sided Count-Min overestimation guarantee is preserved per shard). acc
// must have matching width, depth and seed.
//
// acc is caller-owned and reusable: the fold writes only into acc's existing
// counter grid, so a hot query path can Reset one Sketch and fold every
// shard into it on each query without allocating. Repeated reuse is
// equivalent to a fresh accumulator per query.
func (c *Composable) SnapshotMergeInto(acc *Sketch) {
	if acc.width != c.width || acc.depth != c.depth {
		panic(fmt.Sprintf("countmin: dimension mismatch %dx%d vs %dx%d",
			acc.width, acc.depth, c.width, c.depth))
	}
	if acc.seed != c.seed {
		panic("countmin: cannot merge sketches with different seeds")
	}
	// Load n before the counters: counters only grow, so the fold then
	// reflects at least the n.Load() updates it claims to summarise.
	acc.n += c.n.Load()
	for r := range c.rows {
		for col := range c.rows[r] {
			acc.rows[r][col] += atomic.LoadUint64(&c.rows[r][col])
		}
	}
}

// Snapshot copies the counters into a sequential Sketch for offline
// analysis. Only consistent after the framework is closed.
func (c *Composable) Snapshot() *Sketch {
	s := New(c.width, c.depth, c.seed)
	s.n = c.n.Load()
	for r := range c.rows {
		for col := range c.rows[r] {
			s.rows[r][col] = atomic.LoadUint64(&c.rows[r][col])
		}
	}
	return s
}
