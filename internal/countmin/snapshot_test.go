package countmin

import (
	"encoding/binary"
	"errors"
	"testing"
)

const testSeed = 0x5EED

func TestSketchSnapshotRoundTrip(t *testing.T) {
	src := New(256, 4, testSeed)
	for i := uint64(0); i < 20_000; i++ {
		src.Add(i%97, 1+i%3)
	}
	snap := src.ExportTo(nil)

	dst := New(256, 4, testSeed)
	if err := dst.ImportFrom(snap); err != nil {
		t.Fatal(err)
	}
	if dst.N() != src.N() {
		t.Fatalf("imported N %d, want %d", dst.N(), src.N())
	}
	for key := uint64(0); key < 97; key++ {
		if g, w := dst.Estimate(key), src.Estimate(key); g != w {
			t.Fatalf("key %d: imported estimate %d, want %d", key, g, w)
		}
	}

	// Import is an element-wise add: folding a snapshot equals Merge.
	other := New(256, 4, testSeed)
	for i := uint64(0); i < 5_000; i++ {
		other.Update(i % 13)
	}
	merged := New(256, 4, testSeed)
	merged.Merge(src)
	merged.Merge(other)
	if err := other.ImportFrom(snap); err != nil {
		t.Fatal(err)
	}
	if other.N() != merged.N() {
		t.Fatalf("folded N %d, want %d", other.N(), merged.N())
	}
	for key := uint64(0); key < 97; key++ {
		if g, w := other.Estimate(key), merged.Estimate(key); g != w {
			t.Fatalf("key %d: folded estimate %d, want %d", key, g, w)
		}
	}

	for name, rx := range map[string]*Sketch{
		"width": New(128, 4, testSeed),
		"depth": New(256, 5, testSeed),
		"seed":  New(256, 4, testSeed+1),
	} {
		if err := rx.ImportFrom(snap); !errors.Is(err, ErrSnapshotMismatch) {
			t.Errorf("%s mismatch error = %v, want ErrSnapshotMismatch", name, err)
		}
	}
}

func TestSketchSnapshotCorrupt(t *testing.T) {
	src := New(8, 2, testSeed)
	for i := uint64(0); i < 100; i++ {
		src.Update(i % 5)
	}
	valid := src.ExportTo(nil)
	mut := func(f func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	// Body layout: width u32 | depth u32 | seed u64 | n u64 | rows.
	cases := []struct {
		name string
		in   []byte
	}{
		{"short", valid[:cmSnapMin-1]},
		{"zero width", mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[0:], 0)
		})},
		{"huge width", mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[0:], 1<<24+1)
		})},
		{"length mismatch", valid[:len(valid)-8]},
		{"row sum below n", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:], 1<<40)
		})},
	}
	for _, tc := range cases {
		dst := New(8, 2, testSeed)
		if err := dst.ImportFrom(tc.in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
		if dst.N() != 0 {
			t.Errorf("%s: receiver mutated by rejected import", tc.name)
		}
	}
}
