package countmin

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot export/import for Count-Min sketches — the persistence hooks of
// the registry checkpoint plane. ExportTo serialises the counter grid;
// ImportFrom is the element-wise-add fold of Merge, applied to untrusted
// bytes with typed errors instead of panics.
//
// Body layout (little-endian):
//
//	width uint32
//	depth uint32
//	seed  uint64
//	n     uint64
//	rows  depth × width × uint64 (row-major)
const cmSnapMin = 4 + 4 + 8 + 8

// ErrCorrupt is returned when a snapshot fails structural validation.
var ErrCorrupt = errors.New("countmin: corrupt snapshot")

// ErrSnapshotMismatch is returned by ImportFrom when the snapshot's
// dimensions or seed differ from the receiver's: counters from differently
// hashed grids must not be added together.
var ErrSnapshotMismatch = errors.New("countmin: snapshot config mismatch")

// ExportTo appends the sketch's counters and total weight to dst and returns
// the extended slice. The receiver is only read; with a pre-grown dst the
// encode allocates nothing.
func (s *Sketch) ExportTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.width))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.depth))
	dst = binary.LittleEndian.AppendUint64(dst, s.seed)
	dst = binary.LittleEndian.AppendUint64(dst, s.n)
	for _, row := range s.rows {
		for _, c := range row {
			dst = binary.LittleEndian.AppendUint64(dst, c)
		}
	}
	return dst
}

// ImportFrom folds a snapshot produced by ExportTo into the receiver by
// element-wise addition — exactly the Merge/FoldInto fold. Structural
// violations return ErrCorrupt, configuration conflicts ErrSnapshotMismatch;
// on any error the receiver is unchanged.
func (s *Sketch) ImportFrom(data []byte) error {
	if len(data) < cmSnapMin {
		return fmt.Errorf("%w: short countmin snapshot (%d bytes)", ErrCorrupt, len(data))
	}
	width := int(binary.LittleEndian.Uint32(data[0:]))
	depth := int(binary.LittleEndian.Uint32(data[4:]))
	seed := binary.LittleEndian.Uint64(data[8:])
	n := binary.LittleEndian.Uint64(data[16:])
	if width < 1 || depth < 1 || width > 1<<24 || depth > 1<<10 {
		return fmt.Errorf("%w: dimensions %dx%d out of range", ErrCorrupt, width, depth)
	}
	if len(data) != cmSnapMin+8*width*depth {
		return fmt.Errorf("%w: length %d does not match %dx%d grid", ErrCorrupt, len(data), width, depth)
	}
	grid := data[cmSnapMin:]
	// Every row indexes every update exactly once, so each row's counter sum
	// must cover the claimed weight. The check is one-sided (≥, not ==): a
	// snapshot folded from live Composable shards loads n before counters
	// that keep growing, so row sums may legitimately exceed n.
	for r := 0; r < depth; r++ {
		var sum uint64
		for c := 0; c < width; c++ {
			sum += binary.LittleEndian.Uint64(grid[8*(r*width+c):])
		}
		if sum < n {
			return fmt.Errorf("%w: row %d sum %d below n %d", ErrCorrupt, r, sum, n)
		}
	}
	if width != s.width || depth != s.depth {
		return fmt.Errorf("%w: dimensions %dx%d, receiver has %dx%d", ErrSnapshotMismatch, width, depth, s.width, s.depth)
	}
	if seed != s.seed {
		return fmt.Errorf("%w: seed %#x, receiver has %#x", ErrSnapshotMismatch, seed, s.seed)
	}
	s.n += n
	for r := 0; r < depth; r++ {
		row := s.rows[r]
		for c := 0; c < width; c++ {
			row[c] += binary.LittleEndian.Uint64(grid[8*(r*width+c):])
		}
	}
	return nil
}
