package adversary

// Live stress-driver for the sharded registry: where the rest of this
// package simulates the Section 6 adversaries analytically, this file plays
// the adversary against the real implementation. Concurrent writers hammer a
// sharded sketch while queriers race merged reads against a ground-truth
// update counter, checking every single answer against the combined
// relaxation bound S·r = S·2·N·b (Theorem 1 applied per shard, summed over
// the fold) — and against exactness while every shard is still in its eager
// phase.
//
// The queriers alternate between the two merged-query planes: the pooled
// path (family query methods drawing a reused accumulator from the sketch's
// internal sync.Pool) and the caller-owned path (one accumulator per
// querier goroutine, reset and refolded by QueryInto on every odd query).
// Both race live against concurrent propagation, so the run also asserts
// that accumulator reuse never leaks state across queries — a stale fold
// would surface as a bound violation in either direction.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fastsketches/internal/core"
	"fastsketches/internal/shard"
)

// raiseMax lifts m to at least v (CAS loop: concurrent queriers race here).
func raiseMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StressConfig parameterises a stress run.
type StressConfig struct {
	// Shards is S; Writers is N (goroutines = writer lanes); BufferSize is b.
	Shards, Writers, BufferSize int
	// UpdatesPerWriter is the stream length each writer ingests.
	UpdatesPerWriter int
	// Queriers is the number of concurrent query goroutines. Default 2.
	Queriers int
	// MaxError is the per-shard eager budget; 1.0 disables the eager phase
	// so the whole run exercises the lazy path. Values < 1 additionally run
	// a single-threaded eager prologue asserting exactness.
	MaxError float64
}

func (c *StressConfig) normalise() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Writers == 0 {
		c.Writers = 4
	}
	if c.BufferSize == 0 {
		c.BufferSize = 4
	}
	if c.UpdatesPerWriter == 0 {
		c.UpdatesPerWriter = 20000
	}
	if c.Queriers == 0 {
		c.Queriers = 2
	}
	if c.MaxError == 0 {
		c.MaxError = 1.0
	}
}

// StressReport is the outcome of a stress run. A correct implementation
// yields zero violations of either kind; WorstDeficit records how close the
// adversary got to the S·r wall (positive values approach it, values above
// zero violations mean it was breached).
type StressReport struct {
	// Bound is the combined relaxation S·r the queries were checked against.
	Bound int
	// Queries is the number of merged queries issued during the lazy phase.
	Queries int64
	// LowerViolations counts queries whose answer missed more than S·r
	// completed updates; UpperViolations counts answers exceeding the
	// updates started by query end (invented data).
	LowerViolations, UpperViolations int64
	// WorstDeficit is the maximum observed (completed − S·r − answer) over
	// all queries; ≤ 0 means the bound held with margin, > 0 is a violation.
	WorstDeficit int64
	// EagerQueries counts queries issued during the eager prologue;
	// EagerViolations counts those whose answer was not exact.
	EagerQueries, EagerViolations int64
}

// StressCountTotals drives a sharded Count-Min and checks its cross-shard
// total N() — the aggregate most sensitive to propagation lag, since every
// update contributes to it exactly once. Update keys cycle over a small hot
// set so all shards stay loaded.
//
// The check per query: let c1 be the ground-truth completed count read
// before the merged read and c2 the started count read after. Shard i's
// contribution misses at most r of shard i's updates completed at c1-time,
// so the merged total must satisfy  c1 − S·r ≤ answer ≤ c2.
func StressCountTotals(cfg StressConfig) (StressReport, error) {
	cfg.normalise()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()
	rep := StressReport{Bound: sk.Relaxation()}

	var completed, started atomic.Int64
	const hotKeys = 64

	// Eager prologue (single-threaded): while every shard is eager, each
	// completed update is immediately visible, so N() must be exact.
	if cfg.MaxError < 1 {
		for i := 0; sk.Eager(); i++ {
			started.Add(1)
			sk.Update(0, uint64(i%hotKeys))
			completed.Add(1)
			rep.EagerQueries++
			if got := int64(sk.N()); got != completed.Load() {
				rep.EagerViolations++
			}
		}
	}

	// Lazy phase: concurrent writers vs queriers.
	stop := make(chan struct{})
	var wg, qwg sync.WaitGroup
	bound := int64(rep.Bound)
	var worst atomic.Int64
	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			// Owned accumulator, reused across this querier's whole run: the
			// aggregate N() of a QueryInto fold must obey the same envelope
			// as the lock-free counter sum.
			acc := sk.NewAccumulator()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c1 := completed.Load()
				var got int64
				if i%2 == 0 {
					got = int64(sk.N())
				} else {
					sk.QueryInto(acc)
					got = int64(acc.N())
				}
				c2 := started.Load()
				atomic.AddInt64(&rep.Queries, 1)
				raiseMax(&worst, c1-bound-got)
				if got < c1-bound {
					atomic.AddInt64(&rep.LowerViolations, 1)
				}
				if got > c2 {
					atomic.AddInt64(&rep.UpperViolations, 1)
				}
				runtime.Gosched()
			}
		}()
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				sk.Update(w, uint64((w*cfg.UpdatesPerWriter+i)%hotKeys))
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()
	rep.WorstDeficit = worst.Load()
	return rep, nil
}

// StressThetaDistinct drives a sharded Θ sketch with all-distinct keys kept
// below k per shard, so every shard stays in exact mode and the merged
// Union estimate is an exact count of propagated distinct keys. The same
// c1 − S·r ≤ answer ≤ c2 envelope then applies to the estimate.
func StressThetaDistinct(cfg StressConfig) (StressReport, error) {
	cfg.normalise()
	// Keep total distinct (eager prologue + lazy phase) ≤ k, well inside the
	// 2k exact-mode boundary of every shard gadget and of the union gadget,
	// so the estimate counts propagated distinct keys exactly.
	const lgK = 13
	prologue := cfg.Shards * core.DeriveEagerLimit(cfg.MaxError)
	if cap := (1 << lgK) / 2; prologue > cap {
		prologue = cap // the prologue loop stops at this many updates too
	}
	if budget := (1 << lgK) - prologue; cfg.Writers*cfg.UpdatesPerWriter > budget {
		cfg.UpdatesPerWriter = budget / cfg.Writers
	}
	sk, err := shard.NewTheta(lgK, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()
	rep := StressReport{Bound: sk.Relaxation()}

	var completed, started atomic.Int64

	if cfg.MaxError < 1 {
		// Cap the prologue at half the union's exact capacity: for large S
		// the combined eager window S·2/e² could otherwise outgrow the merge
		// Union's exact mode and flag sampling noise as violations.
		prologueCap := (1 << lgK) / 2
		for i := 0; sk.Eager() && i < prologueCap; i++ {
			started.Add(1)
			sk.Update(0, uint64(1)<<40|uint64(i)) // distinct, disjoint from lazy keys
			completed.Add(1)
			rep.EagerQueries++
			if got := sk.Estimate(); got != float64(completed.Load()) {
				rep.EagerViolations++
			}
		}
	}

	stop := make(chan struct{})
	var wg, qwg sync.WaitGroup
	bound := int64(rep.Bound)
	var worst atomic.Int64
	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			// Owned Union, reused across this querier's whole run: the
			// estimate of a QueryInto fold must obey the same envelope as
			// the pooled Estimate path.
			acc := sk.NewAccumulator()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c1 := completed.Load()
				var got int64
				if i%2 == 0 {
					got = int64(sk.Estimate())
				} else {
					sk.QueryInto(acc)
					got = int64(acc.Estimate())
				}
				c2 := started.Load()
				atomic.AddInt64(&rep.Queries, 1)
				raiseMax(&worst, c1-bound-got)
				if got < c1-bound {
					atomic.AddInt64(&rep.LowerViolations, 1)
				}
				if got > c2 {
					atomic.AddInt64(&rep.UpperViolations, 1)
				}
				runtime.Gosched()
			}
		}()
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+2) << 40 // disjoint from the eager prologue keys
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				sk.Update(w, base+uint64(i))
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()
	rep.WorstDeficit = worst.Load()
	return rep, nil
}
