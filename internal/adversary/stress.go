package adversary

// Live stress-driver for the sharded registry: where the rest of this
// package simulates the Section 6 adversaries analytically, this file plays
// the adversary against the real implementation. Concurrent writers hammer a
// sharded sketch while queriers race merged reads against a ground-truth
// update counter, checking every single answer against the combined
// relaxation bound S·r = S·2·N·b (Theorem 1 applied per shard, summed over
// the fold) — and against exactness while every shard is still in its eager
// phase.
//
// The queriers alternate between the two merged-query planes: the pooled
// path (family query methods drawing a reused accumulator from the sketch's
// internal sync.Pool) and the caller-owned path (one accumulator per
// querier goroutine, reset and refolded by QueryInto on every odd query).
// Both race live against concurrent propagation, so the run also asserts
// that accumulator reuse never leaks state across queries — a stale fold
// would surface as a bound violation in either direction.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/core"
	"fastsketches/internal/shard"
)

// raiseMax lifts m to at least v (CAS loop: concurrent queriers race here).
func raiseMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StressConfig parameterises a stress run.
type StressConfig struct {
	// Shards is S; Writers is N (goroutines = writer lanes); BufferSize is b.
	Shards, Writers, BufferSize int
	// UpdatesPerWriter is the stream length each writer ingests.
	UpdatesPerWriter int
	// Queriers is the number of concurrent query goroutines. Default 2.
	Queriers int
	// MaxError is the per-shard eager budget; 1.0 disables the eager phase
	// so the whole run exercises the lazy path. Values < 1 additionally run
	// a single-threaded eager prologue asserting exactness.
	MaxError float64
}

func (c *StressConfig) normalise() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Writers == 0 {
		c.Writers = 4
	}
	if c.BufferSize == 0 {
		c.BufferSize = 4
	}
	if c.UpdatesPerWriter == 0 {
		c.UpdatesPerWriter = 20000
	}
	if c.Queriers == 0 {
		c.Queriers = 2
	}
	if c.MaxError == 0 {
		c.MaxError = 1.0
	}
}

// StressReport is the outcome of a stress run. A correct implementation
// yields zero violations of either kind; WorstDeficit records how close the
// adversary got to the S·r wall (positive values approach it, values above
// zero violations mean it was breached).
type StressReport struct {
	// Bound is the combined relaxation S·r the queries were checked against.
	Bound int
	// Queries is the number of merged queries issued during the lazy phase.
	Queries int64
	// LowerViolations counts queries whose answer missed more than S·r
	// completed updates; UpperViolations counts answers exceeding the
	// updates started by query end (invented data).
	LowerViolations, UpperViolations int64
	// WorstDeficit is the maximum observed (completed − S·r − answer) over
	// all queries; ≤ 0 means the bound held with margin, > 0 is a violation.
	WorstDeficit int64
	// EagerQueries counts queries issued during the eager prologue;
	// EagerViolations counts those whose answer was not exact.
	EagerQueries, EagerViolations int64
	// Resizes counts live Resize transitions completed during the run
	// (resize-under-fire scenarios only).
	Resizes int64
	// PostResizeQueries counts queries issued strictly after the final
	// resize completed; those were checked against the tighter steady-state
	// bound S_final·r instead of the transitional bound.
	PostResizeQueries int64
	// ScaleUps / ScaleDowns split Resizes by direction, and FinalShards is
	// S once the run quiesced (autoscale-under-fire scenarios only).
	ScaleUps, ScaleDowns int64
	FinalShards          int
	// CapViolations counts controller-initiated transitions whose
	// (S_old+S_new)·r exceeded the policy's MaxTransitionalRelaxation — the
	// staleness cap the controller must never breach.
	CapViolations int64
	// Refreshes counts materialized-view refresh publications completed
	// during the run (view-under-fire scenarios only).
	Refreshes int64
	// Rotations counts window rotations completed during the run, and
	// Expulsions how many of them expelled a full ring's oldest slot
	// (window-under-fire scenarios only). Expulsions > 0 certifies the run
	// actually exercised the eviction path, not just a filling ring.
	Rotations, Expulsions int64
}

// ResizeStressConfig parameterises a resize-under-fire stress run: the
// base workload of StressConfig plus a schedule of live Resize calls issued
// while writers and queriers stay active.
type ResizeStressConfig struct {
	StressConfig
	// Schedule is the successive shard counts Resize moves through,
	// triggered at evenly-spaced points of the ingested stream. Default
	// {2·Shards, 1, 2·Shards} — grow, collapse, grow again.
	Schedule []int
}

func (c *ResizeStressConfig) normalise() {
	c.StressConfig.normalise()
	if len(c.Schedule) == 0 {
		c.Schedule = []int{2 * c.Shards, 1, 2 * c.Shards}
	}
}

// bounds returns the transitional and steady-state staleness bounds the
// envelope is checked against. While resizes may still be in flight every
// query is checked against the worst transitional bound of the schedule,
// (S_old + S_new)·r for the widest consecutive pair (the documented bound
// while a drain is in progress — both epochs' live snapshots are folded).
// Once the final Resize has returned, queries are held to the tighter
// steady-state bound S_final·r: retired state is folded exactly and must
// contribute no staleness at all.
func (c *ResizeStressConfig) bounds() (transitional, final int64) {
	perShard := int64(2 * c.Writers * c.BufferSize) // r = 2·N·b (OptParSketch)
	prev := int64(c.Shards)
	for _, s := range c.Schedule {
		if sum := (prev + int64(s)) * perShard; sum > transitional {
			transitional = sum
		}
		prev = int64(s)
	}
	if steady := prev * perShard; steady > transitional {
		transitional = steady
	}
	return transitional, prev * perShard
}

// resizer walks the schedule, issuing each Resize once the ground-truth
// completed counter crosses the next evenly-spaced threshold (or the
// writers finish), and flags doneResizing after the last transition has
// fully drained.
func resizer(cfg ResizeStressConfig, resize func(int) error,
	completed *atomic.Int64, writersDone <-chan struct{},
	doneResizing *atomic.Bool, resizes *int64) error {
	total := int64(cfg.Writers * cfg.UpdatesPerWriter)
	for i, s := range cfg.Schedule {
		threshold := total * int64(i+1) / int64(len(cfg.Schedule)+1)
	wait:
		for completed.Load() < threshold {
			select {
			case <-writersDone:
				break wait
			default:
				runtime.Gosched()
			}
		}
		if err := resize(s); err != nil {
			return err
		}
		*resizes++
	}
	doneResizing.Store(true)
	return nil
}

// resizeQuerier runs one query goroutine of a resize-under-fire scenario:
// query() returns the merged answer (alternating pooled and caller-owned
// paths is the caller's business). Every answer is checked against
// c1 − bound ≤ answer ≤ c2, where bound is the transitional bound while
// resizes may be in flight and the steady-state bound after the final
// resize has drained. An upper violation (answer > started) would expose a
// drain that double-counts retired updates; a lower violation a drain that
// loses them.
func resizeQuerier(rep *StressReport, stop <-chan struct{},
	completed, started *atomic.Int64, doneResizing *atomic.Bool,
	transitional, final int64, worst *atomic.Int64, query func() int64) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		bound := transitional
		post := doneResizing.Load()
		if post {
			bound = final
		}
		c1 := completed.Load()
		got := query()
		c2 := started.Load()
		atomic.AddInt64(&rep.Queries, 1)
		if post {
			atomic.AddInt64(&rep.PostResizeQueries, 1)
		}
		raiseMax(worst, c1-bound-got)
		if got < c1-bound {
			atomic.AddInt64(&rep.LowerViolations, 1)
		}
		if got > c2 {
			atomic.AddInt64(&rep.UpperViolations, 1)
		}
		runtime.Gosched()
	}
}

// resizeStressDriver bundles the family-specific pieces of a resize-under-
// fire run; runResizeStress supplies the shared orchestration.
type resizeStressDriver struct {
	// resize is the sketch's live Resize entry point.
	resize func(int) error
	// update ingests the i-th update of writer lane w (ground-truth
	// counting around it is the runner's business).
	update func(w, i int)
	// newQuery returns one querier's merged-query closure; alternating
	// between the pooled and caller-owned query planes is the driver's
	// business.
	newQuery func() func() int64
}

// runResizeStress is the shared engine of the resize-under-fire scenarios:
// cfg.Writers writer goroutines drive the driver's update, cfg.Queriers
// queriers race its merged query through resizeQuerier's phased envelope,
// and a resizer walks the shard-count schedule in between.
func runResizeStress(cfg ResizeStressConfig, d resizeStressDriver) (StressReport, error) {
	transitional, final := cfg.bounds()
	rep := StressReport{Bound: int(transitional)}

	var completed, started atomic.Int64
	var doneResizing atomic.Bool
	var worst atomic.Int64
	stop := make(chan struct{})
	writersDone := make(chan struct{})
	var wg, qwg sync.WaitGroup

	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			resizeQuerier(&rep, stop, &completed, &started, &doneResizing,
				transitional, final, &worst, d.newQuery())
		}()
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				d.update(w, i)
				completed.Add(1)
			}
		}(w)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- resizer(cfg, d.resize, &completed, writersDone, &doneResizing, &rep.Resizes)
	}()
	wg.Wait()
	close(writersDone)
	err := <-errc
	close(stop)
	qwg.Wait()
	rep.WorstDeficit = worst.Load()
	return rep, err
}

// StressResizeCountTotals is StressCountTotals with live resharding layered
// on top: while writers hammer a sharded Count-Min and queriers race its
// cross-shard total N(), a resizer goroutine walks the configured shard-
// count schedule. Every merged answer must stay inside the envelope
// c1 − bound ≤ N() ≤ c2 with bound the documented transitional staleness
// bound S_old·r + S_new·r while a drain may be in flight, and the plain
// S_final·r once the last Resize has returned — so the run asserts both
// that a transition never loses or double-counts retired updates and that
// the bound tightens back after the drain.
func StressResizeCountTotals(cfg ResizeStressConfig) (StressReport, error) {
	cfg.normalise()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   1.0, // lazy path throughout; eager resizes are covered by unit tests
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()
	const hotKeys = 64
	return runResizeStress(cfg, resizeStressDriver{
		resize: sk.Resize,
		update: func(w, i int) { sk.Update(w, uint64((w*cfg.UpdatesPerWriter+i)%hotKeys)) },
		newQuery: func() func() int64 {
			acc := sk.NewAccumulator()
			i := 0
			return func() int64 {
				i++
				if i%2 == 0 {
					return int64(sk.N())
				}
				sk.QueryInto(acc)
				return int64(acc.N())
			}
		},
	})
}

// StressResizeThetaDistinct layers live resharding over StressThetaDistinct:
// all-distinct keys kept inside every gadget's exact mode, so the merged
// Union estimate counts propagated distinct keys exactly — across epoch
// swaps, drains and the legacy fold, which additionally exercises the
// idempotence of the Θ drain (retired hashes reappear only once however
// many times they are refolded). The envelope and bound phasing are as in
// StressResizeCountTotals.
func StressResizeThetaDistinct(cfg ResizeStressConfig) (StressReport, error) {
	cfg.normalise()
	const lgK = 13
	if budget := 1 << lgK; cfg.Writers*cfg.UpdatesPerWriter > budget {
		cfg.UpdatesPerWriter = budget / cfg.Writers
	}
	sk, err := shard.NewTheta(lgK, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   1.0,
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()
	return runResizeStress(cfg, resizeStressDriver{
		resize: sk.Resize,
		update: func(w, i int) { sk.Update(w, uint64(w+2)<<40+uint64(i)) },
		newQuery: func() func() int64 {
			acc := sk.NewAccumulator()
			i := 0
			return func() int64 {
				i++
				if i%2 == 0 {
					return int64(sk.Estimate())
				}
				sk.QueryInto(acc)
				return int64(acc.Estimate())
			}
		},
	})
}

// AutoscaleStressConfig parameterises an autoscale-under-fire stress run:
// the base workload of StressConfig, driven not by a fixed resize schedule
// but by a live autoscale.Controller whose decisions emerge from the
// measured pressure of the run itself.
type AutoscaleStressConfig struct {
	StressConfig
	// MinShards / MaxShards bound the controller's policy. Defaults 1 and
	// 4·Shards.
	MinShards, MaxShards int
}

func (c *AutoscaleStressConfig) normalise() {
	c.StressConfig.normalise()
	if c.MinShards == 0 {
		c.MinShards = 1
	}
	if c.MaxShards == 0 {
		c.MaxShards = 4 * c.Shards
	}
}

// capCheckTarget wraps the sketch the controller drives, recording any
// transition whose combined window (S_old+S_new)·r would exceed the
// policy's staleness cap — which a correct controller never requests.
type capCheckTarget struct {
	*shard.CountMin
	budget     int
	violations *atomic.Int64
}

func (t capCheckTarget) Resize(s int) error {
	if from := t.Shards(); t.budget > 0 && (from+s)*t.ShardRelaxation() > t.budget {
		t.violations.Add(1)
	}
	return t.CountMin.Resize(s)
}

// StressAutoscaleUnderFire is the closed-loop counterpart of
// StressResizeCountTotals: writers hammer a sharded Count-Min while a live
// autoscale.Controller — sampling the sketch's real pressure counters,
// paced deterministically through a ManualClock by a conductor goroutine —
// walks S up under the write burst and back down to MinShards once the
// writers quiesce. Queriers race merged reads throughout and check every
// answer against the per-epoch staleness envelope:
//
//	c1 − bound ≤ answer ≤ c2
//
// with bound = 2·MaxShards·r (every controller transition keeps both
// epochs within MaxShards, and the policy cap is set to exactly that
// window) while the controller may still be resizing, tightening to the
// steady-state MinShards·r once the loop has settled. The run also asserts
// the control loop itself: at least one scale-up and one scale-down must
// emerge from the measured load, no transition may breach the staleness
// cap, and the run must settle at MinShards.
func StressAutoscaleUnderFire(cfg AutoscaleStressConfig) (StressReport, error) {
	cfg.normalise()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   1.0, // lazy path throughout, as in the resize stress
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()

	perShard := int64(2 * cfg.Writers * cfg.BufferSize) // r = 2·N·b
	transitional := 2 * int64(cfg.MaxShards) * perShard
	final := int64(cfg.MinShards) * perShard
	rep := StressReport{Bound: int(transitional)}

	// The controller: one qualifying sample per decision (the conductor
	// paces ticks, so sustained windows would only slow the walk), near-zero
	// cooldown in manual time, and the staleness cap at exactly the
	// envelope the queriers enforce. HighWater is tiny relative to the real
	// deltas a 1ms manual-time sample sees, so any observed ingest is
	// up-pressure; LowWater keeps the mandatory hysteresis gap.
	mc := autoscale.NewManualClock(time.Unix(1<<20, 0))
	var capViolations atomic.Int64
	ctl, err := autoscale.New(
		capCheckTarget{CountMin: sk, budget: int(transitional), violations: &capViolations},
		autoscale.Policy{
			MinShards: cfg.MinShards, MaxShards: cfg.MaxShards,
			HighWater: 500, LowWater: 100,
			SustainedUp: 1, SustainedDown: 2,
			SampleEvery: time.Millisecond, Cooldown: time.Nanosecond,
			MaxTransitionalRelaxation: int(transitional),
			Clock:                     mc,
		})
	if err != nil {
		return StressReport{}, err
	}

	var completed, started atomic.Int64
	var doneResizing atomic.Bool
	var worst atomic.Int64
	stop := make(chan struct{})
	writersDone := make(chan struct{})
	var wg, qwg sync.WaitGroup

	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			acc := sk.NewAccumulator()
			i := 0
			query := func() int64 {
				i++
				if i%2 == 0 {
					return int64(sk.N())
				}
				sk.QueryInto(acc)
				return int64(acc.N())
			}
			resizeQuerier(&rep, stop, &completed, &started, &doneResizing,
				transitional, final, &worst, query)
		}()
	}

	// Warmup baseline before any writer starts, so every later tick's
	// ingest delta is real load.
	ctl.Tick()

	const hotKeys = 64
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				sk.Update(w, uint64((w*cfg.UpdatesPerWriter+i)%hotKeys))
				completed.Add(1)
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	// Conductor phase 1 — the burst: tick the controller against the live
	// pressure until S reaches MaxShards, or the writers have finished and
	// two consecutive ticks saw no new ingest (every update is by then
	// counted, so at least one tick observed a positive delta and scaled
	// up).
	tick := func() {
		mc.Advance(time.Millisecond)
		ctl.Tick()
	}
	writersFinished := func() bool {
		select {
		case <-writersDone:
			return true
		default:
			return false
		}
	}
	zeroTicks := 0
	for sk.Shards() < cfg.MaxShards && zeroTicks < 2 {
		before := sk.Pressure().Ingested
		tick()
		if writersFinished() && sk.Pressure().Ingested == before {
			zeroTicks++
		} else {
			zeroTicks = 0
		}
		runtime.Gosched() // single-core friendliness: let writers run
	}

	// Conductor phase 2 — the lull: wait out the writers, then keep ticking
	// with zero load until the backlog drains and the controller walks S
	// back down to MinShards. Bounded in case the loop is broken — that
	// surfaces as FinalShards ≠ MinShards, not a hang.
	<-writersDone
	for i := 0; i < 100_000 && sk.Shards() > cfg.MinShards; i++ {
		tick()
		runtime.Gosched()
	}

	// Settle: the load is gone and S is pinned, so no further resizes can
	// fire. Flag the steady phase and let the queriers take a few answers
	// against the tight MinShards·r bound before stopping them.
	doneResizing.Store(true)
	for deadline := time.Now().Add(30 * time.Second); atomic.LoadInt64(&rep.PostResizeQueries) < int64(cfg.Queriers) &&
		time.Now().Before(deadline); {
		runtime.Gosched()
	}
	close(stop)
	qwg.Wait()

	st := ctl.Stats()
	rep.ScaleUps, rep.ScaleDowns = st.ScaleUps, st.ScaleDowns
	rep.Resizes = st.ScaleUps + st.ScaleDowns
	rep.FinalShards = sk.Shards()
	rep.CapViolations = capViolations.Load()
	rep.WorstDeficit = worst.Load()
	return rep, nil
}

// StressCountTotals drives a sharded Count-Min and checks its cross-shard
// total N() — the aggregate most sensitive to propagation lag, since every
// update contributes to it exactly once. Update keys cycle over a small hot
// set so all shards stay loaded.
//
// The check per query: let c1 be the ground-truth completed count read
// before the merged read and c2 the started count read after. Shard i's
// contribution misses at most r of shard i's updates completed at c1-time,
// so the merged total must satisfy  c1 − S·r ≤ answer ≤ c2.
func StressCountTotals(cfg StressConfig) (StressReport, error) {
	cfg.normalise()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()
	rep := StressReport{Bound: sk.Relaxation()}

	var completed, started atomic.Int64
	const hotKeys = 64

	// Eager prologue (single-threaded): while every shard is eager, each
	// completed update is immediately visible, so N() must be exact.
	if cfg.MaxError < 1 {
		for i := 0; sk.Eager(); i++ {
			started.Add(1)
			sk.Update(0, uint64(i%hotKeys))
			completed.Add(1)
			rep.EagerQueries++
			if got := int64(sk.N()); got != completed.Load() {
				rep.EagerViolations++
			}
		}
	}

	// Lazy phase: concurrent writers vs queriers.
	stop := make(chan struct{})
	var wg, qwg sync.WaitGroup
	bound := int64(rep.Bound)
	var worst atomic.Int64
	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			// Owned accumulator, reused across this querier's whole run: the
			// aggregate N() of a QueryInto fold must obey the same envelope
			// as the lock-free counter sum.
			acc := sk.NewAccumulator()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c1 := completed.Load()
				var got int64
				if i%2 == 0 {
					got = int64(sk.N())
				} else {
					sk.QueryInto(acc)
					got = int64(acc.N())
				}
				c2 := started.Load()
				atomic.AddInt64(&rep.Queries, 1)
				raiseMax(&worst, c1-bound-got)
				if got < c1-bound {
					atomic.AddInt64(&rep.LowerViolations, 1)
				}
				if got > c2 {
					atomic.AddInt64(&rep.UpperViolations, 1)
				}
				runtime.Gosched()
			}
		}()
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				sk.Update(w, uint64((w*cfg.UpdatesPerWriter+i)%hotKeys))
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()
	rep.WorstDeficit = worst.Load()
	return rep, nil
}

// StressThetaDistinct drives a sharded Θ sketch with all-distinct keys kept
// below k per shard, so every shard stays in exact mode and the merged
// Union estimate is an exact count of propagated distinct keys. The same
// c1 − S·r ≤ answer ≤ c2 envelope then applies to the estimate.
func StressThetaDistinct(cfg StressConfig) (StressReport, error) {
	cfg.normalise()
	// Keep total distinct (eager prologue + lazy phase) ≤ k, well inside the
	// 2k exact-mode boundary of every shard gadget and of the union gadget,
	// so the estimate counts propagated distinct keys exactly.
	const lgK = 13
	prologue := cfg.Shards * core.DeriveEagerLimit(cfg.MaxError)
	if cap := (1 << lgK) / 2; prologue > cap {
		prologue = cap // the prologue loop stops at this many updates too
	}
	if budget := (1 << lgK) - prologue; cfg.Writers*cfg.UpdatesPerWriter > budget {
		cfg.UpdatesPerWriter = budget / cfg.Writers
	}
	sk, err := shard.NewTheta(lgK, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()
	rep := StressReport{Bound: sk.Relaxation()}

	var completed, started atomic.Int64

	if cfg.MaxError < 1 {
		// Cap the prologue at half the union's exact capacity: for large S
		// the combined eager window S·2/e² could otherwise outgrow the merge
		// Union's exact mode and flag sampling noise as violations.
		prologueCap := (1 << lgK) / 2
		for i := 0; sk.Eager() && i < prologueCap; i++ {
			started.Add(1)
			sk.Update(0, uint64(1)<<40|uint64(i)) // distinct, disjoint from lazy keys
			completed.Add(1)
			rep.EagerQueries++
			if got := sk.Estimate(); got != float64(completed.Load()) {
				rep.EagerViolations++
			}
		}
	}

	stop := make(chan struct{})
	var wg, qwg sync.WaitGroup
	bound := int64(rep.Bound)
	var worst atomic.Int64
	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			// Owned Union, reused across this querier's whole run: the
			// estimate of a QueryInto fold must obey the same envelope as
			// the pooled Estimate path.
			acc := sk.NewAccumulator()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c1 := completed.Load()
				var got int64
				if i%2 == 0 {
					got = int64(sk.Estimate())
				} else {
					sk.QueryInto(acc)
					got = int64(acc.Estimate())
				}
				c2 := started.Load()
				atomic.AddInt64(&rep.Queries, 1)
				raiseMax(&worst, c1-bound-got)
				if got < c1-bound {
					atomic.AddInt64(&rep.LowerViolations, 1)
				}
				if got > c2 {
					atomic.AddInt64(&rep.UpperViolations, 1)
				}
				runtime.Gosched()
			}
		}()
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+2) << 40 // disjoint from the eager prologue keys
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				sk.Update(w, base+uint64(i))
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()
	rep.WorstDeficit = worst.Load()
	return rep, nil
}

// ViewStressConfig parameterises a view-under-fire stress run: the base
// workload of StressConfig served through a materialized merged view, with
// an optional live-resize schedule racing the refresher.
type ViewStressConfig struct {
	StressConfig
	// Schedule is the successive shard counts Resize moves through while the
	// view keeps refreshing; empty means no resizes (pure view stress).
	Schedule []int
}

func (c *ViewStressConfig) normalise() { c.StressConfig.normalise() }

// WindowStressConfig parameterises a window-rotation-under-fire stress run:
// the base workload of StressConfig ingested into a sharded Count-Min with a
// declared sliding window, a conductor goroutine expelling ring slots by
// explicit rotation, and an optional live-resize schedule racing both.
type WindowStressConfig struct {
	StressConfig
	// Slots is the ring's closed-interval capacity W. Default 4 — small
	// enough that a default run expels many slots, so the eviction path
	// (oldest slot folded into legacy) is genuinely under fire.
	Slots int
	// Decay, when in (0,1), additionally maintains the exponential decay
	// plane through every rotation, racing its scale-and-fold against the
	// writers. 0 leaves decay off.
	Decay float64
	// Schedule is the successive shard counts Resize moves through while the
	// rotator keeps firing; empty means no resizes (pure rotation stress).
	Schedule []int
}

func (c *WindowStressConfig) normalise() {
	c.StressConfig.normalise()
	if c.Slots == 0 {
		c.Slots = 4
	}
}

// bounds returns the envelope bounds for a window-under-fire run. A window
// rotation is an epoch swap at constant S: while its drain is in flight a
// query folds both epochs' live snapshots, so the in-rotation staleness is
// 2·S·r — the rotation-interval analogue of the resize transitional bound.
// With a resize schedule racing the rotator the worst transient is a
// rotation at the schedule's widest shard count, 2·max(S)·r, which also
// dominates every resize transitional (S_old+S_new)·r. Once the last resize
// has drained and the rotator has quiesced, queries are held to the tight
// steady-state S_final·r.
func (c *WindowStressConfig) bounds() (transitional, final int64) {
	perShard := int64(2 * c.Writers * c.BufferSize) // r = 2·N·b (OptParSketch)
	maxS, finalS := int64(c.Shards), int64(c.Shards)
	for _, s := range c.Schedule {
		if int64(s) > maxS {
			maxS = int64(s)
		}
		finalS = int64(s)
	}
	return 2 * maxS * perShard, finalS * perShard
}

// StressWindowRotateUnderFire plays the adversary against the sliding-window
// serving plane: writers hammer a sharded Count-Min whose windowed total
// WindowN() is raced by queriers while a conductor goroutine rotates the
// ring explicitly (RotateNow over a manual clock, so no rotation ever fires
// behind the checker's back) and a resizer walks the shard-count schedule
// underneath both. Every windowed answer is checked against the documented
// window bound — the relaxation of the live fold plus everything the ring
// has expelled, i.e. "S·r plus what fell off the back of the window":
//
//	c1 − floor − bound ≤ answer ≤ c2
//
// where c1/c2 are the ground-truth completed/started counts bracketing the
// query, floor is an upper bound on the updates the ring has expelled so
// far — the started count read right after rotation k−W completed, published
// BEFORE rotation k performs the expulsion and read by queriers AFTER their
// answer, so the loaded floor always covers the expulsions the answer could
// have missed — and bound is the transitional 2·max(S)·r while rotations or
// resizes may be in flight, tightening to S_final·r once both have quiesced.
// A lower breach means a rotation lost live-interval weight (e.g. dropped
// the carry a resize drained into the open interval); an upper breach means
// a slot was double-counted (e.g. folded into both the suffix-merge and the
// live epoch). The queriers alternate the pooled (WindowN) and caller-owned
// (WindowQueryInto) planes, and with Decay set additionally probe the
// decayed plane, which must never exceed the cumulative stream.
func StressWindowRotateUnderFire(cfg WindowStressConfig) (StressReport, error) {
	cfg.normalise()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   1.0, // lazy path throughout, as in the resize stress
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()

	// Manual clock never advanced: the background rotator never fires, so
	// every rotation below is the conductor's doing and the expelled-slot
	// floor is always published before the expulsion it covers.
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if err := sk.EnableWindow(shard.WindowConfig{
		Interval: time.Hour, Slots: cfg.Slots, Decay: cfg.Decay, Clock: clk,
	}); err != nil {
		return StressReport{}, err
	}

	transitional, final := cfg.bounds()
	rep := StressReport{Bound: int(transitional)}

	var completed, started atomic.Int64
	// expelledFloor is an upper bound on the update weight the ring has
	// expelled into the cumulative legacy plane: started-count snapshots
	// taken right after each rotation, republished one ring-length later,
	// just before the rotation that expels that slot.
	var expelledFloor atomic.Int64
	var resizesDone, doneResizing atomic.Bool
	var worst atomic.Int64
	stop := make(chan struct{})
	writersDone := make(chan struct{})
	var wg, qwg sync.WaitGroup

	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			acc := sk.NewAccumulator()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				bound := transitional
				post := doneResizing.Load()
				if post {
					bound = final
				}
				c1 := completed.Load()
				var got int64
				i++
				if i%2 == 0 {
					n, ok := sk.WindowN() // pooled windowed plane
					if !ok {
						// The window is never disabled during the run, so a
						// failed resolve is itself a violation — the serving
						// plane lost the declared window.
						atomic.AddInt64(&rep.LowerViolations, 1)
						continue
					}
					got = int64(n)
				} else {
					if !sk.WindowQueryInto(acc) { // caller-owned windowed plane
						atomic.AddInt64(&rep.LowerViolations, 1)
						continue
					}
					got = int64(acc.N())
				}
				// Read AFTER the answer: the floor only grows, and at every
				// instant it covers all expulsions performed so far, so a
				// post-answer read can only over-cover — never under.
				floor := expelledFloor.Load()
				c2 := started.Load()
				atomic.AddInt64(&rep.Queries, 1)
				if post {
					atomic.AddInt64(&rep.PostResizeQueries, 1)
				}
				raiseMax(&worst, c1-floor-bound-got)
				if got < c1-floor-bound {
					atomic.AddInt64(&rep.LowerViolations, 1)
				}
				if got > c2 {
					atomic.AddInt64(&rep.UpperViolations, 1)
				}
				if cfg.Decay > 0 && i%8 == 0 {
					// Decay plane under fire: no closed-form ground truth,
					// but a decayed count can never exceed the cumulative
					// stream (weights only shrink).
					if d, ok := sk.DecayedCount(uint64(i % 64)); ok && int64(d) > started.Load() {
						atomic.AddInt64(&rep.UpperViolations, 1)
					}
				}
				runtime.Gosched()
			}
		}()
	}

	const hotKeys = 64
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				sk.Update(w, uint64((w*cfg.UpdatesPerWriter+i)%hotKeys))
				completed.Add(1)
			}
		}(w)
	}

	rcfg := ResizeStressConfig{StressConfig: cfg.StressConfig, Schedule: cfg.Schedule}
	errc := make(chan error, 1)
	go func() {
		if len(cfg.Schedule) == 0 {
			resizesDone.Store(true)
			errc <- nil
			return
		}
		errc <- resizer(rcfg, sk.Resize, &completed, writersDone, &resizesDone, &rep.Resizes)
	}()

	// The conductor: publish the floor the imminent expulsion is covered by,
	// rotate, then snapshot started for the rotation that will expel this
	// slot one ring-length from now. It is the sole rotator, so after its
	// loop exits no rotation can be in flight and the steady-state bound
	// applies to every later query.
	conductorDone := make(chan struct{})
	go func() {
		defer close(conductorDone)
		var startedAfter []int64 // startedAfter[k-1]: started right after rotation k
		for {
			select {
			case <-stop:
				return
			default:
			}
			finished := false
			select {
			case <-writersDone:
				finished = true
			default:
			}
			if finished && resizesDone.Load() {
				doneResizing.Store(true)
				return
			}
			k := len(startedAfter) + 1
			if k > cfg.Slots {
				expelledFloor.Store(startedAfter[k-cfg.Slots-1])
				rep.Expulsions++
			}
			if !sk.RotateNow() {
				return
			}
			startedAfter = append(startedAfter, started.Load())
			rep.Rotations++
			runtime.Gosched()
		}
	}()

	wg.Wait()
	close(writersDone)
	err = <-errc

	// Let the settled phase produce checked queries: the conductor flips
	// doneResizing once the last resize has drained and its own last
	// rotation has returned, and the queriers then take answers against the
	// tight S_final·r bound. Bounded; a wedged plane surfaces as
	// PostResizeQueries == 0, not a hang.
	for deadline := time.Now().Add(30 * time.Second); err == nil &&
		atomic.LoadInt64(&rep.PostResizeQueries) < int64(cfg.Queriers) &&
		time.Now().Before(deadline); {
		runtime.Gosched()
	}
	close(stop)
	<-conductorDone
	qwg.Wait()
	rep.WorstDeficit = worst.Load()
	return rep, err
}

// StressViewUnderFire plays the adversary against the materialized-view
// serving plane: writers hammer a sharded Count-Min whose merged queries are
// answered from a published view, a conductor goroutine paces refreshes
// explicitly (RefreshViewNow over a manual clock, so the view NEVER
// refreshes behind the checker's back), and a resizer walks the schedule
// underneath both. The checked envelope is the documented view bound — the
// live fold's staleness plus one refresh interval — expressed against
// ground truth:
//
//	floor − bound ≤ answer ≤ c2
//
// where floor is the completed-update count read immediately BEFORE the
// most recently published refresh began its fold (so floor is exactly the
// "one refresh interval ago" ground truth: everything completed by then is
// either folded into the published view or inside the fold's own S·r
// window), bound is S·r — widened to the transitional (S_old+S_new)·r while
// resizes may be in flight, tightened to S_final·r once the last resize has
// drained AND a fresh refresh has published — and c2 is the started count
// read after the query (a view must never invent weight). A lower breach
// means a refresh published a fold that lost committed state (e.g. dropped
// the draining epoch's legacy); an upper breach means a fold double-counted
// (e.g. folded one buffer into both halves of the double buffer).
func StressViewUnderFire(cfg ViewStressConfig) (StressReport, error) {
	cfg.normalise()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   1.0, // lazy path throughout, as in the resize stress
	})
	if err != nil {
		return StressReport{}, err
	}
	defer sk.Close()

	// Manual clock never advanced: the background ticker never fires and
	// MaxAge −1 never expires the view, so every query below is genuinely
	// served from the published buffer and every publication is the
	// conductor's doing.
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if err := sk.EnableView(shard.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
	}); err != nil {
		return StressReport{}, err
	}

	rcfg := ResizeStressConfig{StressConfig: cfg.StressConfig, Schedule: cfg.Schedule}
	var transitional, final int64
	if len(cfg.Schedule) == 0 {
		final = int64(cfg.Shards) * int64(2*cfg.Writers*cfg.BufferSize)
		transitional = final
	} else {
		transitional, final = rcfg.bounds()
	}
	rep := StressReport{Bound: int(transitional)}

	var completed, started atomic.Int64
	// publishedFloor is the ground-truth completed count read just before
	// the latest published refresh started folding. Stored AFTER the
	// publication, so a querier that observes floor F is guaranteed the view
	// it subsequently acquires folded at least the state of that refresh.
	var publishedFloor atomic.Int64
	var resizesDone, doneResizing atomic.Bool
	var worst atomic.Int64
	stop := make(chan struct{})
	writersDone := make(chan struct{})
	var wg, qwg sync.WaitGroup

	for q := 0; q < cfg.Queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			acc := sk.NewAccumulator()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				bound := transitional
				post := doneResizing.Load()
				if post {
					bound = final
				}
				floor := publishedFloor.Load()
				var got int64
				i++
				if i%2 == 0 {
					got = int64(sk.N()) // pooled plane, through the view
				} else {
					sk.QueryInto(acc) // caller-owned plane, through the view
					got = int64(acc.N())
				}
				c2 := started.Load()
				atomic.AddInt64(&rep.Queries, 1)
				if post {
					atomic.AddInt64(&rep.PostResizeQueries, 1)
				}
				raiseMax(&worst, floor-bound-got)
				if got < floor-bound {
					atomic.AddInt64(&rep.LowerViolations, 1)
				}
				if got > c2 {
					atomic.AddInt64(&rep.UpperViolations, 1)
				}
				runtime.Gosched()
			}
		}()
	}

	// The conductor: refresh, then publish the pre-fold ground truth as the
	// queriers' floor. The very first EnableView refresh published an empty
	// (pre-ingest) view, floor 0 — consistent.
	conductorDone := make(chan struct{})
	go func() {
		defer close(conductorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rd := resizesDone.Load()
			c := completed.Load()
			if !sk.RefreshViewNow() {
				return
			}
			publishedFloor.Store(c)
			atomic.AddInt64(&rep.Refreshes, 1)
			if rd {
				// This refresh began after the final resize had fully
				// drained: from here on the published fold owes nothing to
				// transitional epochs and the tight S_final·r bound applies.
				doneResizing.Store(true)
			}
			runtime.Gosched()
		}
	}()

	const hotKeys = 64
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.UpdatesPerWriter; i++ {
				started.Add(1)
				sk.Update(w, uint64((w*cfg.UpdatesPerWriter+i)%hotKeys))
				completed.Add(1)
			}
		}(w)
	}

	errc := make(chan error, 1)
	go func() {
		if len(cfg.Schedule) == 0 {
			resizesDone.Store(true)
			errc <- nil
			return
		}
		err := resizer(rcfg, sk.Resize, &completed, writersDone, &resizesDone, &rep.Resizes)
		errc <- err
	}()

	wg.Wait()
	close(writersDone)
	err = <-errc

	// Let the settled phase produce checked queries: wait until the
	// conductor has published a post-resize refresh and the queriers have
	// taken answers against the tight bound. Bounded; a wedged refresher
	// surfaces as PostResizeQueries == 0, not a hang.
	for deadline := time.Now().Add(30 * time.Second); err == nil &&
		atomic.LoadInt64(&rep.PostResizeQueries) < int64(cfg.Queriers) &&
		time.Now().Before(deadline); {
		runtime.Gosched()
	}
	close(stop)
	<-conductorDone
	qwg.Wait()
	rep.WorstDeficit = worst.Load()
	return rep, err
}
