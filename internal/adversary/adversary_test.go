package adversary

import (
	"math"
	"sort"
	"testing"

	"fastsketches/internal/stats"
)

// Paper parameters for Table 1.
const (
	paperN = 1 << 15
	paperK = 1 << 10
	paperR = 8
)

func TestOrderStatsCorrect(t *testing.T) {
	sim := NewSimulator(2000, 100, 10, 1)
	mk, mkr := sim.orderStats()
	// Verify against a full sort of the same buffer.
	cp := append([]float64(nil), sim.buf...)
	sort.Float64s(cp)
	if mk != cp[99] || mkr != cp[109] {
		t.Fatalf("order stats (%v,%v) != sorted (%v,%v)", mk, mkr, cp[99], cp[109])
	}
	if mk > mkr {
		t.Fatal("M(k) must not exceed M(k+r)")
	}
}

func TestSequentialEstimatorUnbiased(t *testing.T) {
	sim := NewSimulator(paperN, paperK, paperR, 2)
	seq, _, _ := sim.Run(3000)
	mean := stats.Summarize(seq).Mean
	// SE of the mean ≈ n·RSE/√trials ≈ 32768·0.031/√3000 ≈ 18.5.
	if math.Abs(mean-paperN) > 5*18.5 {
		t.Errorf("sequential mean %v, want ≈%d", mean, paperN)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	// Reproduce the paper's numerical column: with r=8, k=2^10, n=2^15 the
	// strong adversary keeps E ≈ n·0.995 (weak has the same closed form),
	// sequential RSE ≤ 3.1%, strong RSE ≤ 3.8%, weak RSE ≤ 2·3.1%.
	rows := Table1(paperN, paperK, paperR, 4000, 3)
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	seq := byName["sequential"]
	if seq.RSE > 0.031+0.004 {
		t.Errorf("sequential RSE %v exceeds paper bound ≈3.1%%", seq.RSE)
	}
	if math.Abs(seq.MeanEstimate/paperN-1) > 0.01 {
		t.Errorf("sequential mean %v not ≈ n", seq.MeanEstimate)
	}

	strong := byName["strong adversary"]
	if strong.RSE > 0.038+0.004 {
		t.Errorf("strong-adversary RSE %v exceeds paper's numerical 3.8%%", strong.RSE)
	}
	// Paper: strong adversary expectation ≈ 2^15·0.995.
	if math.Abs(strong.MeanEstimate/(float64(paperN)*0.995)-1) > 0.01 {
		t.Errorf("strong-adversary mean %v, paper reports ≈ %v", strong.MeanEstimate, float64(paperN)*0.995)
	}

	weak := byName["weak adversary"]
	cf := stats.WeakAdversaryExpectation(paperN, paperK, paperR)
	if math.Abs(weak.MeanEstimate/cf-1) > 0.01 {
		t.Errorf("weak-adversary mean %v, closed form %v", weak.MeanEstimate, cf)
	}
	if weak.RSE > stats.WeakAdversaryRSEBound(paperK, paperR)+0.004 {
		t.Errorf("weak-adversary RSE %v exceeds closed-form bound %v", weak.RSE, stats.WeakAdversaryRSEBound(paperK, paperR))
	}
}

func TestStrongAtLeastAsBadAsBoth(t *testing.T) {
	// Per construction the strong adversary's error dominates both the
	// sequential and weak errors on every single run.
	sim := NewSimulator(paperN, paperK, paperR, 4)
	for i := 0; i < 500; i++ {
		e := sim.Trial()
		ds := math.Abs(e.Strong - paperN)
		if ds < math.Abs(e.Sequential-float64(paperN)) || ds < math.Abs(e.Weak-float64(paperN))-1e-9 {
			// strong = argmax over {seq, weak}, so it can never be smaller.
			t.Fatalf("strong error %v smaller than a dominated estimator", ds)
		}
	}
}

func TestWeakUnderestimates(t *testing.T) {
	// Hiding r small elements inflates M(k+r) relative to M(k)… i.e. the
	// relaxed estimate (k−1)/M(k+r) is biased LOW: E = n(k−1)/(k+r−1) < n.
	sim := NewSimulator(paperN, paperK, paperR, 5)
	_, _, weak := sim.Run(3000)
	mean := stats.Summarize(weak).Mean
	if mean >= paperN {
		t.Errorf("weak adversary mean %v should be below n=%d", mean, paperN)
	}
}

func TestSimulatorPanicsOnShortStream(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n ≤ k+r")
		}
	}()
	NewSimulator(100, 90, 10, 1)
}

func TestFigure3Regions(t *testing.T) {
	grid := Figure3Grid(paperN, paperK, 0.02, 0.05, 41)
	var feasible, picksR, picks0 int
	for _, p := range grid {
		if !p.Feasible {
			if p.Y >= p.X && p.X > 0 {
				t.Fatal("feasibility misclassified")
			}
			continue
		}
		feasible++
		if p.PicksR {
			picksR++
		} else {
			picks0++
		}
	}
	if feasible == 0 || picksR == 0 || picks0 == 0 {
		t.Fatalf("expected both regions non-empty: feasible=%d picksR=%d picks0=%d", feasible, picksR, picks0)
	}
	// Structure: k/n = 2^10/2^15 = 1/32 = 0.03125. When both M(k) and
	// M(k+r) are above k−1/n the estimates both undershoot and the larger
	// M(k+r) hurts more → g=r. Spot-check a cell deep in that region.
	km1 := float64(paperK - 1)
	n := float64(paperN)
	x, y := 0.034, 0.04
	wantR := math.Abs(km1/y-n) > math.Abs(km1/x-n)
	if !wantR {
		t.Fatal("test premise wrong")
	}
}

func TestHistogram(t *testing.T) {
	samples := []float64{0.5, 1.5, 1.6, 2.5}
	centres, density := Histogram(samples, 0, 3, 3)
	if len(centres) != 3 {
		t.Fatal("wrong bin count")
	}
	// Bins: [0,1)→1, [1,2)→2, [2,3)→1; total mass should integrate to 1.
	var mass float64
	for _, d := range density {
		mass += d * 1.0 // bin width 1
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("histogram mass %v, want 1", mass)
	}
	if density[1] != 2*density[0] {
		t.Fatalf("bin densities wrong: %v", density)
	}
}

func TestQuantileAdversaryRange(t *testing.T) {
	// With ε=0 and the adversary hiding all r below the quantile, the
	// returned element's rank shifts by r(1−φ)/n upward, and hiding all r
	// above shifts it φ·r/n downward.
	phi, n, r := 0.5, 1000, 100
	lo, hi := QuantileAdversary(phi, 0, n, r)
	wantLo := (phi*(float64(n)-float64(r)) + 0) / float64(n)          // i=0: rank shrinks
	wantHi := (phi*(float64(n)-float64(r)) + float64(r)) / float64(n) // i=r
	if math.Abs(lo-wantLo) > 1e-12 || math.Abs(hi-wantHi) > 1e-12 {
		t.Fatalf("range [%v,%v], want [%v,%v]", lo, hi, wantLo, wantHi)
	}
	// The ε_r formula of Section 6.2 bounds the deviation: ε_r = ε − rε/n + r/n.
	epsR := 0.0 - float64(r)*0/float64(n) + float64(r)/float64(n)
	if hi-phi > epsR+1e-12 || phi-lo > epsR+1e-12 {
		t.Fatalf("adversary range exceeds ε_r=%v", epsR)
	}
}

func BenchmarkTrial(b *testing.B) {
	sim := NewSimulator(paperN, paperK, paperR, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Trial()
	}
}
