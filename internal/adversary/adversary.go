// Package adversary implements the error-analysis model of Section 6.1 of
// "Fast Concurrent Data Sketches": an r-relaxed Θ sketch attacked by an
// adversary that hides up to r updates from every query.
//
// The stream of hashed unique elements is modelled as n iid uniform [0,1)
// variables. M(i) denotes the i-th minimum. The sequential sketch returns
// est = (k−1)/M(k); an adversary hiding j ≤ r elements below Θ makes the
// sketch return (k−1)/M(k+j). The paper shows the worst case is always at
// j = 0 or j = r, so:
//
//   - the strong adversary (sees the coin flips) picks per run
//     g(0,r) = argmax_{j∈{0,r}} |(k−1)/M(k+j) − n|;
//   - the weak adversary (cannot see the coin flips) maximises the expected
//     error, which is monotone in j, so it always picks j = r.
//
// Monte-Carlo simulation over these estimators regenerates Table 1 and the
// data behind Figures 3 and 4.
package adversary

import (
	"math"
	"math/rand"

	"fastsketches/internal/stats"
)

// Estimates holds the three estimators evaluated on one simulated stream.
type Estimates struct {
	Sequential float64 // (k−1)/M(k)
	Strong     float64 // (k−1)/M(k+g(0,r))
	Weak       float64 // (k−1)/M(k+r)
}

// Simulator draws streams of n uniform hashes and evaluates the estimators
// for parameters k and r.
type Simulator struct {
	N   int
	K   int
	R   int
	rng *rand.Rand
	buf []float64
}

// NewSimulator returns a simulator for n uniform samples with sketch
// parameter k and relaxation r. n must exceed k+r (the paper's analysis
// assumes long streams, n > k + r).
func NewSimulator(n, k, r int, seed int64) *Simulator {
	if n <= k+r {
		panic("adversary: analysis requires n > k + r")
	}
	return &Simulator{
		N:   n,
		K:   k,
		R:   r,
		rng: rand.New(rand.NewSource(seed)),
		buf: make([]float64, n),
	}
}

// orderStats fills s.buf with n uniforms and returns (M(k), M(k+r)).
func (s *Simulator) orderStats() (mk, mkr float64) {
	for i := range s.buf {
		s.buf[i] = s.rng.Float64()
	}
	// Select the (k+r)-th smallest; the prefix then contains the k+r
	// smallest values, from which M(k) is another selection.
	mkr = selectFloat(s.buf, s.K+s.R-1)
	prefix := s.buf[:s.K+s.R]
	mk = selectFloat(prefix, s.K-1)
	return mk, mkr
}

// Trial simulates one stream and returns the three estimators.
func (s *Simulator) Trial() Estimates {
	mk, mkr := s.orderStats()
	n := float64(s.N)
	km1 := float64(s.K - 1)
	seq := km1 / mk
	weak := km1 / mkr
	// Strong adversary: g(0,r) maximises |est − n|.
	strong := seq
	if math.Abs(weak-n) > math.Abs(seq-n) {
		strong = weak
	}
	return Estimates{Sequential: seq, Strong: strong, Weak: weak}
}

// Run executes the given number of trials and collects per-estimator
// samples.
func (s *Simulator) Run(trials int) (seq, strong, weak []float64) {
	seq = make([]float64, trials)
	strong = make([]float64, trials)
	weak = make([]float64, trials)
	for t := 0; t < trials; t++ {
		e := s.Trial()
		seq[t] = e.Sequential
		strong[t] = e.Strong
		weak[t] = e.Weak
	}
	return seq, strong, weak
}

// Table1Row is one column block of the paper's Table 1: expectation and RSE
// for an estimator, numerically simulated, plus closed forms where known.
type Table1Row struct {
	Name            string
	MeanEstimate    float64 // Monte-Carlo E[est]
	RSE             float64 // Monte-Carlo RSE w.r.t. n
	ClosedFormMean  float64 // NaN when the paper gives no closed form
	ClosedFormRSEUB float64 // upper bound; NaN when none
}

// Table1 regenerates the paper's Table 1 for the given parameters
// (paper values: r=8, k=2^10, n=2^15).
func Table1(n, k, r, trials int, seed int64) []Table1Row {
	sim := NewSimulator(n, k, r, seed)
	seq, strong, weak := sim.Run(trials)
	fn := float64(n)
	return []Table1Row{
		{
			Name:            "sequential",
			MeanEstimate:    stats.Summarize(seq).Mean,
			RSE:             stats.RSE(seq, fn),
			ClosedFormMean:  stats.SeqExpectation(fn),
			ClosedFormRSEUB: stats.SeqRSEBound(k),
		},
		{
			Name:            "strong adversary",
			MeanEstimate:    stats.Summarize(strong).Mean,
			RSE:             stats.RSE(strong, fn),
			ClosedFormMean:  math.NaN(), // paper: numerical only
			ClosedFormRSEUB: math.NaN(),
		},
		{
			Name:            "weak adversary",
			MeanEstimate:    stats.Summarize(weak).Mean,
			RSE:             stats.RSE(weak, fn),
			ClosedFormMean:  stats.WeakAdversaryExpectation(fn, k, r),
			ClosedFormRSEUB: stats.WeakAdversaryRSEBound(k, r),
		},
	}
}

// RegionPoint is one cell of the Figure 3 plot: for a feasible pair
// (M(k)=x, M(k+r)=y) with y ≥ x, which j the strong adversary picks.
type RegionPoint struct {
	X, Y     float64
	Feasible bool
	PicksR   bool // true → g = r (dark gray region); false → g = 0
}

// Figure3Grid evaluates the strong adversary's choice over a grid of
// (M(k), M(k+r)) pairs, reproducing the regions of Figure 3. The grid spans
// [lo, hi]² with `steps` cells per axis; the paper centres the plot around
// k/n where the mass of the order statistics lies.
func Figure3Grid(n, k int, lo, hi float64, steps int) []RegionPoint {
	out := make([]RegionPoint, 0, steps*steps)
	fn := float64(n)
	km1 := float64(k - 1)
	for iy := 0; iy < steps; iy++ {
		y := lo + (hi-lo)*float64(iy)/float64(steps-1)
		for ix := 0; ix < steps; ix++ {
			x := lo + (hi-lo)*float64(ix)/float64(steps-1)
			p := RegionPoint{X: x, Y: y}
			if y >= x && x > 0 {
				p.Feasible = true
				p.PicksR = math.Abs(km1/y-fn) > math.Abs(km1/x-fn)
			}
			out = append(out, p)
		}
	}
	return out
}

// Histogram bins samples into `bins` equal-width buckets over [lo, hi],
// returning bucket centres and normalised densities — the data behind
// Figure 4 (distribution of e and e_Aw).
func Histogram(samples []float64, lo, hi float64, bins int) (centres, density []float64) {
	centres = make([]float64, bins)
	density = make([]float64, bins)
	w := (hi - lo) / float64(bins)
	for i := range centres {
		centres[i] = lo + w*(float64(i)+0.5)
	}
	if len(samples) == 0 || w <= 0 {
		return centres, density
	}
	for _, s := range samples {
		b := int((s - lo) / w)
		if b >= 0 && b < bins {
			density[b]++
		}
	}
	norm := 1 / (float64(len(samples)) * w)
	for i := range density {
		density[i] *= norm
	}
	return centres, density
}

// selectFloat returns the element of 0-based rank `rank` in ascending order,
// partially reordering a in place (Lomuto quickselect, median-of-3 pivot).
func selectFloat(a []float64, rank int) float64 {
	lo, hi := 0, len(a)-1
	for {
		if lo == hi {
			return a[lo]
		}
		p := partitionFloat(a, lo, hi)
		switch {
		case rank == p:
			return a[p]
		case rank < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

func partitionFloat(a []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi] = a[hi], a[mid]
	pivot := a[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi] = a[hi], a[i]
	return i
}

// QuantileAdversary models the Section 6.2 weak adversary against a PAC
// quantiles sketch: hiding i elements below the φ-quantile and j above
// (i+j ≤ r) shifts the returned element's true rank. HiddenRankRange
// returns the worst-case normalized rank interval of the returned element
// per Equation (1) of the paper.
func QuantileAdversary(phi, eps float64, n, r int) (loRank, hiRank float64) {
	fn := float64(n)
	worstLo, worstHi := phi, phi
	// The adversary splits r hidden elements as i below + j above.
	for i := 0; i <= r; i++ {
		j := r - i
		m := fn - float64(i+j)
		lo := ((phi-eps)*m + float64(i)) / fn
		hi := ((phi+eps)*m + float64(i)) / fn
		if lo < worstLo {
			worstLo = lo
		}
		if hi > worstHi {
			worstHi = hi
		}
	}
	if worstLo < 0 {
		worstLo = 0
	}
	if worstHi > 1 {
		worstHi = 1
	}
	return worstLo, worstHi
}
