package autoscale

import (
	"sync"
	"time"
)

// Clock abstracts the controller's only two uses of time — reading the
// current instant and waiting for the next sampling tick — so every
// time-dependent decision (rates, cooldowns, tick pacing) can be driven by
// a ManualClock in tests and stress runs, with no sleeps and no wall-clock
// flakiness. Production controllers default to SystemClock.
type Clock interface {
	Now() time.Time
	// After behaves like time.After: a channel that delivers one value once
	// d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the production Clock: real time.
type SystemClock struct{}

// Now returns the current wall-clock time.
func (SystemClock) Now() time.Time { return time.Now() }

// After defers to time.After.
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ManualClock is a deterministic Clock for tests and stress drivers: time
// stands still until Advance moves it, firing any timers that come due.
// Safe for concurrent use.
type ManualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []manualTimer
}

type manualTimer struct {
	at time.Time
	ch chan time.Time
}

// NewManualClock returns a ManualClock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current instant.
func (m *ManualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After registers a one-shot timer due at Now()+d. Non-positive durations
// fire immediately.
func (m *ManualClock) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.timers = append(m.timers, manualTimer{at: m.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d and fires every timer that has come
// due, in registration order.
func (m *ManualClock) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	kept := m.timers[:0]
	for _, t := range m.timers {
		if !t.at.After(m.now) {
			t.ch <- m.now
		} else {
			kept = append(kept, t)
		}
	}
	m.timers = kept
}

// Waiters returns the number of armed timers — how many goroutines are
// blocked in After. Tests synchronise on this before Advancing, so a tick
// can never be lost between a controller's wakeup and its re-arm.
func (m *ManualClock) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.timers)
}
