// Package autoscale closes the control loop over the relaxation parameter:
// a controller samples a sharded sketch's ingest pressure and walks its
// shard count S through Resize, trading staleness for throughput under
// measured load exactly as choosing S does statically — but live.
//
// # The control loop
//
// The paper makes the throughput/staleness trade-off a parameter: a merged
// query over S shards misses at most S·r = S·2·N·b completed updates, while
// ingest throughput scales with S independent propagators. The sharded
// layer's Resize moves S while writers and queriers stay active; this
// package decides *when* to move it. Every SampleEvery the controller takes
// one wait-free PressureSample from the sketch (cumulative post-filter
// items entering the propagation plane, plus the propagator backlog),
// differentiates successive samples into a per-shard ingest rate, and
// applies a hysteresis policy:
//
//   - scale up (S ← S·StepFactor, clamped to MaxShards) when the per-shard
//     rate has exceeded HighWater — or the per-shard backlog BacklogHighWater
//     — for SustainedUp consecutive samples;
//   - scale down (S ← S/StepFactor, clamped to MinShards) when the rate has
//     stayed below LowWater with an empty backlog for SustainedDown samples;
//   - otherwise hold.
//
// An optional query-side signal joins the loop when the target serves
// merged queries from a materialized view (ViewLagger): refresh lag above
// Policy.ViewLagHighWater vetoes scale-ups and counts as down-pressure,
// since the view fold's cost — and therefore the query staleness — grows
// with S.
//
// A second optional signal, installed with SetMemoryPressure, wires a
// process-wide memory budget into the loop: while the signal reports
// over-budget, scale-ups are vetoed (growing S allocates another shard's
// state) and otherwise-quiet samples qualify as down-pressure (shrinking S
// frees shard state). The ops layer installs it from its budget accountant.
//
// # Why it cannot flap
//
// Three mechanisms damp oscillation. The water marks are separated: policy
// validation requires LowWater·StepFactor ≤ HighWater, so the rate halving
// caused by a doubling of S cannot itself fall below LowWater and bounce
// back. The streaks are sustained: a square-wave load faster than the
// SustainedUp/SustainedDown windows never completes either streak, so the
// controller sits still. And every resize starts a Cooldown during which
// further resizes are suppressed (streaks keep accumulating, so genuinely
// sustained pressure acts the instant the cooldown expires).
//
// # The transitional staleness cap
//
// While a Resize drains, merged queries pay the combined transitional bound
// S_old·r + S_new·r. MaxTransitionalRelaxation caps that window: a grow
// step is clamped to the largest S_new with (S_old+S_new)·r within the cap
// (skipped entirely if none exists), and a shrink is deepened below the
// desired step when needed, since a smaller S_new shrinks the window. Since
// every transition the controller initiates respects the cap, the bound
// reported to queriers never exceeds max(S·r, MaxTransitionalRelaxation)
// at any instant of a controlled sketch's life.
//
// All timing flows through an injectable Clock, so tests and stress
// drivers replace real time with a ManualClock and drive Tick directly —
// no sleeps, no timer-dependent flakiness.
package autoscale

import (
	"fmt"
	"sync"
	"time"

	"fastsketches/internal/core"
)

// Target is the resizable sharded sketch a controller drives. All four
// family wrappers of the shard package (Theta, HLL, Quantiles, CountMin)
// satisfy it through the embedded generic Sharded layer.
type Target interface {
	// Shards returns the current shard count S.
	Shards() int
	// Resize live-reshards to the given S, returning once the transition
	// has fully drained.
	Resize(shards int) error
	// Pressure returns the cumulative ingest-pressure counters, monotonic
	// across resizes.
	Pressure() core.PressureSample
	// ShardRelaxation returns the per-shard staleness bound r = 2·N·b, the
	// factor the transitional cap multiplies by S_old + S_new.
	ShardRelaxation() int
}

// ViewLagger is the optional query-side pressure signal: targets whose
// merged queries are served from a materialized view report the age of the
// latest published refresh. The shard package's family wrappers satisfy it;
// a controller consults it only when Policy.ViewLagHighWater is set.
type ViewLagger interface {
	ViewLag() time.Duration
}

// Policy parameterises a Controller. The zero value is not valid: HighWater
// must be set (it anchors the whole loop); everything else has documented
// defaults applied by New.
type Policy struct {
	// MinShards / MaxShards bound the S the controller will ever request.
	// Defaults 1 and 32.
	MinShards, MaxShards int
	// HighWater is the per-shard ingest rate (post-filter items/sec) above
	// which sustained load scales up. Required, > 0.
	HighWater float64
	// LowWater is the per-shard rate below which sustained idleness scales
	// down; a scale-down additionally requires an empty propagator backlog.
	// Must satisfy LowWater·StepFactor ≤ HighWater (hysteresis gap — see
	// the package comment). Default HighWater/(4·StepFactor).
	LowWater float64
	// BacklogHighWater is the per-shard propagator backlog (items published
	// but not yet merged) that counts as up-pressure regardless of the
	// rate — the propagators are provably behind the writers. 0 disables
	// the backlog signal.
	BacklogHighWater float64
	// SampleEvery is the controller's sampling period. Default 250ms.
	SampleEvery time.Duration
	// SustainedUp / SustainedDown are how many consecutive samples must
	// qualify before a resize fires. Defaults 3 and 6.
	SustainedUp, SustainedDown int
	// Cooldown suppresses further resizes after one completes. Default
	// 4·SampleEvery.
	Cooldown time.Duration
	// StepFactor is the multiplicative resize step. Default 2, must be ≥ 2.
	StepFactor int
	// MaxTransitionalRelaxation caps the transitional staleness window
	// (S_old+S_new)·r of any transition the controller initiates, clamping
	// or skipping steps that would exceed it. 0 = uncapped.
	MaxTransitionalRelaxation int
	// ViewLagHighWater is the query-side pressure signal: when the target
	// serves merged queries from a materialized view (it implements
	// ViewLagger) and the view's refresh lag exceeds this mark, the query
	// plane is provably not keeping up with the S-shard fold. Since the
	// refresh cost grows with S, lag above the mark vetoes scale-ups (the
	// suppression is counted in Stats.HeldViewLag) and qualifies the sample
	// as down-pressure — shrinking S makes refreshes cheaper and queries
	// fresher. A lag-driven scale-down still requires an empty propagator
	// backlog: when both planes are behind, ingest wins and the controller
	// holds. 0 disables the signal.
	ViewLagHighWater time.Duration
	// Clock supplies all controller timing. Default SystemClock.
	Clock Clock
}

func (p *Policy) normalise() error {
	if p.MinShards == 0 {
		p.MinShards = 1
	}
	if p.MaxShards == 0 {
		p.MaxShards = 32
	}
	if p.MinShards < 1 {
		return fmt.Errorf("autoscale: MinShards must be ≥ 1, got %d", p.MinShards)
	}
	if p.MaxShards < p.MinShards {
		return fmt.Errorf("autoscale: MaxShards %d < MinShards %d", p.MaxShards, p.MinShards)
	}
	if p.HighWater <= 0 {
		return fmt.Errorf("autoscale: HighWater must be > 0, got %v", p.HighWater)
	}
	if p.StepFactor == 0 {
		p.StepFactor = 2
	}
	if p.StepFactor < 2 {
		return fmt.Errorf("autoscale: StepFactor must be ≥ 2, got %d", p.StepFactor)
	}
	if p.LowWater == 0 {
		p.LowWater = p.HighWater / float64(4*p.StepFactor)
	}
	if p.LowWater < 0 {
		return fmt.Errorf("autoscale: negative LowWater")
	}
	if p.LowWater*float64(p.StepFactor) > p.HighWater {
		return fmt.Errorf("autoscale: LowWater %v too close to HighWater %v: need LowWater·StepFactor ≤ HighWater or a step up immediately re-qualifies for a step down",
			p.LowWater, p.HighWater)
	}
	if p.BacklogHighWater < 0 {
		return fmt.Errorf("autoscale: negative BacklogHighWater")
	}
	if p.SampleEvery == 0 {
		p.SampleEvery = 250 * time.Millisecond
	}
	if p.SampleEvery < 0 {
		return fmt.Errorf("autoscale: negative SampleEvery")
	}
	if p.SustainedUp == 0 {
		p.SustainedUp = 3
	}
	if p.SustainedDown == 0 {
		p.SustainedDown = 6
	}
	if p.SustainedUp < 1 || p.SustainedDown < 1 {
		return fmt.Errorf("autoscale: Sustained windows must be ≥ 1")
	}
	if p.Cooldown == 0 {
		p.Cooldown = 4 * p.SampleEvery
	}
	if p.Cooldown < 0 {
		return fmt.Errorf("autoscale: negative Cooldown")
	}
	if p.MaxTransitionalRelaxation < 0 {
		return fmt.Errorf("autoscale: negative MaxTransitionalRelaxation")
	}
	if p.ViewLagHighWater < 0 {
		return fmt.Errorf("autoscale: negative ViewLagHighWater")
	}
	if p.Clock == nil {
		p.Clock = SystemClock{}
	}
	return nil
}

// Decision is the outcome of one controller tick.
type Decision int

const (
	// DecisionWarmup: no previous sample to differentiate against (first
	// tick, or a tick with no time elapsed); a baseline was recorded.
	DecisionWarmup Decision = iota
	// DecisionHold: inside the hysteresis band, or a streak not yet
	// sustained.
	DecisionHold
	// DecisionCooldown: a sustained streak wants to resize, but the
	// post-resize cooldown has not elapsed.
	DecisionCooldown
	// DecisionAtBound: a sustained streak wants to resize, but S is already
	// at MinShards/MaxShards.
	DecisionAtBound
	// DecisionCapped: the staleness cap left no admissible step.
	DecisionCapped
	// DecisionError: the target's Resize returned an error (recorded in
	// Stats.LastErr); the streak is kept so the next tick retries.
	DecisionError
	// DecisionUp / DecisionDown: a resize completed.
	DecisionUp
	DecisionDown
)

func (d Decision) String() string {
	switch d {
	case DecisionWarmup:
		return "warmup"
	case DecisionHold:
		return "hold"
	case DecisionCooldown:
		return "cooldown"
	case DecisionAtBound:
		return "at-bound"
	case DecisionCapped:
		return "capped"
	case DecisionError:
		return "error"
	case DecisionUp:
		return "up"
	case DecisionDown:
		return "down"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Stats is a snapshot of a controller's counters.
type Stats struct {
	// Samples counts ticks taken (including warmups).
	Samples int64
	// ScaleUps / ScaleDowns count completed resizes by direction.
	ScaleUps, ScaleDowns int64
	// HeldCooldown / HeldAtBound count sustained streaks suppressed by the
	// cooldown or the MinShards/MaxShards bounds.
	HeldCooldown, HeldAtBound int64
	// CappedByStaleness counts steps the transitional cap clamped or
	// skipped.
	CappedByStaleness int64
	// HeldViewLag counts up-qualifying samples vetoed because the target's
	// materialized-view refresh lag exceeded ViewLagHighWater.
	HeldViewLag int64
	// HeldMemory counts up-qualifying samples vetoed because the installed
	// memory-pressure signal (SetMemoryPressure) reported over-budget.
	HeldMemory int64
	// LastPerShardRate / LastBacklogPerShard are the most recent pressure
	// readings (items/sec and items, per shard).
	LastPerShardRate, LastBacklogPerShard float64
	// LastViewLag is the most recent view-refresh lag reading; zero when the
	// signal is disabled or the target serves no view.
	LastViewLag time.Duration
	// Shards is the target's S at the last tick; LastDecision the tick's
	// outcome; LastErr the most recent Resize error, if any.
	Shards       int
	LastDecision Decision
	LastErr      error
}

// Controller drives one Target with one Policy. Create with New; either
// call Start/Stop for the self-paced background loop, or Tick directly to
// pace it externally (tests, stress drivers, benchmark conductors).
type Controller struct {
	t     Target
	clock Clock

	mu           sync.Mutex
	p            Policy // normalised
	memPressure  func() bool
	lastAt       time.Time
	lastIngested int64
	haveBaseline bool
	upStreak     int
	downStreak   int
	lastResize   time.Time
	resized      bool
	st           Stats

	startMu sync.Mutex
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// New validates the policy, applies its defaults, and returns a controller
// bound to the target. The controller is inert until Start or Tick.
func New(t Target, p Policy) (*Controller, error) {
	if err := p.normalise(); err != nil {
		return nil, err
	}
	return &Controller{t: t, clock: p.Clock, p: p}, nil
}

// Policy returns the controller's effective (normalised) policy.
func (c *Controller) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p
}

// SetMemoryPressure installs (or, with nil, removes) the memory-budget
// signal: while f reports true the controller vetoes scale-ups (growing S
// allocates another shard's state; vetoes are counted in Stats.HeldMemory)
// and treats otherwise-quiet samples as down-pressure, since shrinking S
// frees shard state. f is called once per tick under the controller's lock
// and must be fast and safe for concurrent use — typically a single atomic
// load comparing resident bytes against a budget.
func (c *Controller) SetMemoryPressure(f func() bool) {
	c.mu.Lock()
	c.memPressure = f
	c.mu.Unlock()
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Tick takes one sample at the clock's current instant and applies the
// policy, returning the decision. Safe for concurrent use (ticks are
// serialised), though one pacer — the Run loop or an external driver —
// is the intended caller.
func (c *Controller) Tick() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	pr := c.t.Pressure()
	c.st.Samples++
	if !c.haveBaseline || !now.After(c.lastAt) {
		c.haveBaseline = true
		c.lastAt, c.lastIngested = now, pr.Ingested
		c.st.LastDecision = DecisionWarmup
		return DecisionWarmup
	}
	dt := now.Sub(c.lastAt).Seconds()
	delta := pr.Ingested - c.lastIngested
	if delta < 0 {
		delta = 0 // counters are monotonic; belt-and-braces for odd targets
	}
	c.lastAt, c.lastIngested = now, pr.Ingested

	shards := c.t.Shards()
	rate := float64(delta) / dt / float64(shards)
	backlog := float64(pr.Backlog()) / float64(shards)
	c.st.LastPerShardRate, c.st.LastBacklogPerShard = rate, backlog
	c.st.Shards = shards

	// Query-side pressure: a materialized view whose refresh lag exceeds the
	// water mark means the merged fold is too expensive at the current S.
	var lagHigh bool
	if c.p.ViewLagHighWater > 0 {
		if vl, ok := c.t.(ViewLagger); ok {
			lag := vl.ViewLag()
			c.st.LastViewLag = lag
			lagHigh = lag > c.p.ViewLagHighWater
		}
	}

	memHigh := c.memPressure != nil && c.memPressure()

	rawUp := rate > c.p.HighWater ||
		(c.p.BacklogHighWater > 0 && backlog >= c.p.BacklogHighWater)
	up := rawUp
	if up && lagHigh {
		// Growing S would make view refreshes costlier still; hold the
		// ingest-driven growth while the query plane is behind. The sample
		// does not become down-pressure either — with both planes loaded,
		// shrinking would hurt ingest, so the controller sits still.
		c.st.HeldViewLag++
		up = false
	}
	if up && memHigh {
		// Over the memory budget: a scale-up would allocate another shard's
		// worth of state. Hold the growth until the accountant reports room.
		c.st.HeldMemory++
		up = false
	}
	// A scale-down must see a drained propagation plane: a quiet rate with
	// a standing backlog means the propagators are behind, not the load low.
	// Sustained view lag with ingest pressure absent and a drained backlog
	// also qualifies: fewer shards make each refresh cheaper and merged
	// reads fresher. So does memory pressure: shrinking S frees shard state.
	down := !rawUp && (rate < c.p.LowWater || lagHigh || memHigh) && pr.Backlog() == 0
	switch {
	case up:
		c.upStreak, c.downStreak = c.upStreak+1, 0
	case down:
		c.downStreak, c.upStreak = c.downStreak+1, 0
	default:
		c.upStreak, c.downStreak = 0, 0
	}

	d := DecisionHold
	switch {
	case c.upStreak >= c.p.SustainedUp:
		d = c.tryResize(now, shards, true)
	case c.downStreak >= c.p.SustainedDown:
		d = c.tryResize(now, shards, false)
	}
	c.st.LastDecision = d
	return d
}

// tryResize applies the bounds, cooldown, and staleness-cap gates, then
// issues the Resize. Called with c.mu held, a sustained streak in hand.
func (c *Controller) tryResize(now time.Time, from int, grow bool) Decision {
	if (grow && from >= c.p.MaxShards) || (!grow && from <= c.p.MinShards) {
		c.st.HeldAtBound++
		return DecisionAtBound
	}
	if c.resized && now.Sub(c.lastResize) < c.p.Cooldown {
		c.st.HeldCooldown++
		return DecisionCooldown
	}
	var to int
	if grow {
		to = from * c.p.StepFactor
		if to > c.p.MaxShards {
			to = c.p.MaxShards
		}
	} else {
		to = from / c.p.StepFactor
		if to < c.p.MinShards {
			to = c.p.MinShards
		}
	}
	// The transitional window of the swap is (S_old+S_new)·r; clamp the
	// step so it never exceeds the cap. Growing: take the largest
	// admissible S_new. Shrinking: a smaller S_new only narrows the window,
	// so deepen the shrink when the desired step would exceed the cap.
	if budget := c.p.MaxTransitionalRelaxation; budget > 0 {
		if r := c.t.ShardRelaxation(); r > 0 {
			maxTo := budget/r - from
			if to > maxTo {
				c.st.CappedByStaleness++
				to = maxTo
				if (grow && to <= from) || (!grow && to < c.p.MinShards) {
					// No admissible step; drop the streak so the next
					// attempt needs freshly sustained pressure.
					c.upStreak, c.downStreak = 0, 0
					return DecisionCapped
				}
			}
		}
	}
	if err := c.t.Resize(to); err != nil {
		// Keep the streak: the next tick retries a transient failure.
		c.st.LastErr = err
		return DecisionError
	}
	// Cooldown runs from the transition's completion (Resize returns after
	// the drain), so back-to-back drains are spaced even when slow.
	c.lastResize, c.resized = c.clock.Now(), true
	c.upStreak, c.downStreak = 0, 0
	c.st.Shards = to
	if grow {
		c.st.ScaleUps++
		return DecisionUp
	}
	c.st.ScaleDowns++
	return DecisionDown
}

// Run ticks the controller every SampleEvery on its Clock until stop is
// closed. Most callers use Start/Stop instead; Run is exported for callers
// that own the goroutine.
func (c *Controller) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-c.clock.After(c.p.SampleEvery):
			c.Tick()
		}
	}
}

// Start launches the background sampling loop. It panics if the controller
// was already started (mirroring core.Framework.Start).
func (c *Controller) Start() {
	c.startMu.Lock()
	defer c.startMu.Unlock()
	if c.started {
		panic("autoscale: Controller started twice")
	}
	c.started = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		c.Run(c.stop)
	}()
}

// Stop halts the background loop and waits for it to exit. Idempotent, and
// a no-op if Start was never called. The controller issues no further
// resizes after Stop returns (external Tick callers excepted).
func (c *Controller) Stop() {
	c.startMu.Lock()
	defer c.startMu.Unlock()
	if !c.started || c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
}
