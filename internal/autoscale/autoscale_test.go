package autoscale_test

// Policy edge-case suite: every scenario drives the controller through a
// fake target and a ManualClock — load is a per-tick script of (rate,
// backlog) readings, ticks are explicit, and no test sleeps. Covered:
// warmup, steady-load no-op, sustained-streak timing, cooldown
// suppression, min/max clamping, backlog up-pressure, down-requires-empty-
// backlog, transitional staleness-cap clamping (partial and full), resize
// errors, and oscillation damping under load square-waves.

import (
	"errors"
	"testing"
	"time"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/core"
)

// fakeTarget scripts a resizable sketch: tests set the pressure counters
// between ticks and record every Resize.
type fakeTarget struct {
	shards    int
	r         int // per-shard relaxation
	pressure  core.PressureSample
	resizes   []int
	resizeErr error
}

func (t *fakeTarget) Shards() int                   { return t.shards }
func (t *fakeTarget) ShardRelaxation() int          { return t.r }
func (t *fakeTarget) Pressure() core.PressureSample { return t.pressure }
func (t *fakeTarget) Resize(s int) error {
	if t.resizeErr != nil {
		return t.resizeErr
	}
	t.resizes = append(t.resizes, s)
	t.shards = s
	return nil
}

const tickEvery = 100 * time.Millisecond

// harness binds a controller, its fake target and manual clock, and offers
// tick(rate, backlog): feed one sample worth of load (items/sec per shard ×
// current shards, over one SampleEvery) and take one tick.
type harness struct {
	tg  *fakeTarget
	mc  *autoscale.ManualClock
	ctl *autoscale.Controller
}

func newHarness(t *testing.T, tg *fakeTarget, p autoscale.Policy) *harness {
	t.Helper()
	mc := autoscale.NewManualClock(time.Unix(1_000_000, 0))
	p.Clock = mc
	if p.SampleEvery == 0 {
		p.SampleEvery = tickEvery
	}
	ctl, err := autoscale.New(tg, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := ctl.Tick(); d != autoscale.DecisionWarmup {
		t.Fatalf("first tick = %v, want warmup", d)
	}
	return &harness{tg: tg, mc: mc, ctl: ctl}
}

// tick advances one SampleEvery during which the whole sketch ingested
// rate items/sec *per current shard*, leaving `backlog` items unpropagated,
// then runs one controller tick.
func (h *harness) tick(rate float64, backlog int64) autoscale.Decision {
	h.mc.Advance(tickEvery)
	delta := int64(rate * tickEvery.Seconds() * float64(h.tg.shards))
	h.tg.pressure.Ingested += delta
	h.tg.pressure.Merged = h.tg.pressure.Ingested - backlog
	return h.ctl.Tick()
}

// policy returns a baseline test policy: high water 1000/s, low water 100/s,
// sustain 3 up / 2 down, cooldown 5 ticks.
func policy() autoscale.Policy {
	return autoscale.Policy{
		MinShards: 1, MaxShards: 16,
		HighWater: 1000, LowWater: 100,
		SustainedUp: 3, SustainedDown: 2,
		Cooldown: 5 * tickEvery,
	}
}

func TestPolicyValidation(t *testing.T) {
	tg := &fakeTarget{shards: 4, r: 8}
	for name, p := range map[string]autoscale.Policy{
		"missing high water":  {},
		"min above max":       {HighWater: 100, MinShards: 8, MaxShards: 4},
		"low above high":      {HighWater: 100, LowWater: 200},
		"no hysteresis gap":   {HighWater: 100, LowWater: 60}, // 60·2 > 100
		"step factor one":     {HighWater: 100, StepFactor: 1},
		"negative cooldown":   {HighWater: 100, Cooldown: -time.Second},
		"negative backlog hw": {HighWater: 100, BacklogHighWater: -1},
	} {
		if _, err := autoscale.New(tg, p); err == nil {
			t.Errorf("%s: New accepted invalid policy %+v", name, p)
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	ctl, err := autoscale.New(&fakeTarget{shards: 4, r: 8}, autoscale.Policy{HighWater: 800})
	if err != nil {
		t.Fatal(err)
	}
	p := ctl.Policy()
	if p.MinShards != 1 || p.MaxShards != 32 || p.StepFactor != 2 {
		t.Errorf("bounds/step defaults = %d/%d/%d, want 1/32/2", p.MinShards, p.MaxShards, p.StepFactor)
	}
	if p.LowWater != 100 { // HighWater/(4·StepFactor)
		t.Errorf("LowWater default = %v, want 100", p.LowWater)
	}
	if p.SustainedUp != 3 || p.SustainedDown != 6 {
		t.Errorf("sustained defaults = %d/%d, want 3/6", p.SustainedUp, p.SustainedDown)
	}
	if p.SampleEvery != 250*time.Millisecond || p.Cooldown != time.Second {
		t.Errorf("timing defaults = %v/%v, want 250ms/1s", p.SampleEvery, p.Cooldown)
	}
	if p.Clock == nil {
		t.Error("Clock default not applied")
	}
}

func TestSteadyLoadIsNoOp(t *testing.T) {
	// Load comfortably inside the hysteresis band: the controller must sit
	// still forever, whatever the band position.
	for _, rate := range []float64{150, 500, 999} {
		tg := &fakeTarget{shards: 4, r: 8}
		h := newHarness(t, tg, policy())
		for i := 0; i < 50; i++ {
			if d := h.tick(rate, 0); d != autoscale.DecisionHold {
				t.Fatalf("rate %v tick %d: decision %v, want hold", rate, i, d)
			}
		}
		if len(tg.resizes) != 0 {
			t.Errorf("rate %v: steady load caused resizes %v", rate, tg.resizes)
		}
	}
}

func TestSustainedHighScalesUpExactlyOnSchedule(t *testing.T) {
	tg := &fakeTarget{shards: 4, r: 8}
	h := newHarness(t, tg, policy())
	for i := 0; i < 2; i++ { // two qualifying samples: not sustained yet
		if d := h.tick(5000, 0); d != autoscale.DecisionHold {
			t.Fatalf("tick %d: decision %v, want hold", i, d)
		}
	}
	if d := h.tick(5000, 0); d != autoscale.DecisionUp {
		t.Fatalf("third sustained tick: decision %v, want up", d)
	}
	if tg.shards != 8 {
		t.Fatalf("shards after up = %d, want 8", tg.shards)
	}
}

func TestInterruptedStreakResets(t *testing.T) {
	tg := &fakeTarget{shards: 4, r: 8}
	h := newHarness(t, tg, policy())
	h.tick(5000, 0)
	h.tick(5000, 0)
	h.tick(500, 0) // back in band: streak dies at 2 of 3
	h.tick(5000, 0)
	h.tick(5000, 0)
	if len(tg.resizes) != 0 {
		t.Fatalf("interrupted streak still resized: %v", tg.resizes)
	}
	if d := h.tick(5000, 0); d != autoscale.DecisionUp {
		t.Fatalf("freshly sustained streak: decision %v, want up", d)
	}
}

func TestCooldownSuppression(t *testing.T) {
	tg := &fakeTarget{shards: 2, r: 8}
	h := newHarness(t, tg, policy())
	for i := 0; i < 3; i++ {
		h.tick(5000, 0)
	}
	if tg.shards != 4 {
		t.Fatalf("first up did not fire: shards %d", tg.shards)
	}
	// Pressure stays high. Cooldown is 5 ticks; the next up may fire on the
	// first sustained streak whose final tick clears the cooldown.
	for i := 0; i < 4; i++ { // ticks 1..4 after the resize: all inside cooldown
		if d := h.tick(5000, 0); d == autoscale.DecisionUp {
			t.Fatalf("tick %d after resize: scaled up inside cooldown", i+1)
		}
	}
	if tg.shards != 4 {
		t.Fatalf("shards moved during cooldown: %d", tg.shards)
	}
	if d := h.tick(5000, 0); d != autoscale.DecisionUp { // tick 5: cooldown over, streak long sustained
		t.Fatalf("first post-cooldown tick: decision %v, want up", d)
	}
	if s := h.ctl.Stats(); s.HeldCooldown == 0 {
		t.Error("HeldCooldown not counted")
	}
}

func TestMinMaxClamping(t *testing.T) {
	p := policy()
	p.MinShards, p.MaxShards = 2, 8
	p.Cooldown = tickEvery // effectively off
	tg := &fakeTarget{shards: 4, r: 8}
	h := newHarness(t, tg, p)
	for i := 0; i < 20; i++ {
		h.tick(5000, 0)
	}
	if tg.shards != 8 {
		t.Fatalf("shards under sustained fire = %d, want pinned at max 8", tg.shards)
	}
	atMax := h.ctl.Stats().HeldAtBound
	if atMax == 0 {
		t.Error("HeldAtBound not counted at MaxShards")
	}
	for i := 0; i < 20; i++ {
		h.tick(0, 0)
	}
	if tg.shards != 2 {
		t.Fatalf("shards after sustained idleness = %d, want pinned at min 2", tg.shards)
	}
	if h.ctl.Stats().HeldAtBound == atMax {
		t.Error("HeldAtBound not counted at MinShards")
	}
}

func TestBacklogForcesUpPressure(t *testing.T) {
	p := policy()
	p.BacklogHighWater = 64
	tg := &fakeTarget{shards: 4, r: 8}
	h := newHarness(t, tg, p)
	// Rate far below HighWater, but the propagators are 100 items/shard
	// behind: that is up-pressure.
	for i := 0; i < 2; i++ {
		if d := h.tick(200, 400); d != autoscale.DecisionHold {
			t.Fatalf("tick %d: decision %v, want hold", i, d)
		}
	}
	if d := h.tick(200, 400); d != autoscale.DecisionUp {
		t.Fatalf("sustained backlog: decision %v, want up", d)
	}
}

func TestDownRequiresEmptyBacklog(t *testing.T) {
	tg := &fakeTarget{shards: 8, r: 8}
	h := newHarness(t, tg, policy())
	// Rate below LowWater but with a standing backlog: never scale down.
	for i := 0; i < 10; i++ {
		if d := h.tick(10, 32); d != autoscale.DecisionHold {
			t.Fatalf("tick %d: decision %v, want hold (backlog pending)", i, d)
		}
	}
	// Backlog drained: two quiet samples suffice.
	h.tick(10, 0)
	if d := h.tick(10, 0); d != autoscale.DecisionDown {
		t.Fatalf("drained quiet tick: decision %v, want down", d)
	}
	if tg.shards != 4 {
		t.Fatalf("shards after down = %d, want 4", tg.shards)
	}
}

func TestStalenessCapClampsGrowth(t *testing.T) {
	// r = 10, from = 4, desired to = 8 → window (4+8)·10 = 120.
	cases := []struct {
		cap        int
		wantShards int
		wantUp     bool
	}{
		{0, 8, true},   // uncapped: full step
		{120, 8, true}, // cap exactly admits the full step
		{110, 7, true}, // clamped to the largest admissible step
		{90, 4, false}, // (4+5)·10 = 90 admits 5... boundary: maxTo = 9-4 = 5
		{80, 4, false}, // no admissible step at all
	}
	for _, tc := range cases {
		p := policy()
		p.MaxTransitionalRelaxation = tc.cap
		tg := &fakeTarget{shards: 4, r: 10}
		h := newHarness(t, tg, p)
		var last autoscale.Decision
		for i := 0; i < 3; i++ {
			last = h.tick(5000, 0)
		}
		if tc.cap == 90 {
			// maxTo = 90/10 − 4 = 5 > from: a partial step to 5 is legal.
			if last != autoscale.DecisionUp || tg.shards != 5 {
				t.Errorf("cap 90: decision %v shards %d, want partial up to 5", last, tg.shards)
			}
			continue
		}
		if tc.wantUp && (last != autoscale.DecisionUp || tg.shards != tc.wantShards) {
			t.Errorf("cap %d: decision %v shards %d, want up to %d", tc.cap, last, tg.shards, tc.wantShards)
		}
		if !tc.wantUp && (last != autoscale.DecisionCapped || tg.shards != tc.wantShards) {
			t.Errorf("cap %d: decision %v shards %d, want capped at %d", tc.cap, last, tg.shards, tc.wantShards)
		}
	}
}

func TestStalenessCapDeepensShrink(t *testing.T) {
	// from = 8, desired to = 4, r = 10: window (8+4)·10 = 120. A cap of 100
	// admits only to ≤ 100/10 − 8 = 2 — the shrink deepens to 2, narrowing
	// the window below the cap.
	p := policy()
	p.MaxTransitionalRelaxation = 100
	tg := &fakeTarget{shards: 8, r: 10}
	h := newHarness(t, tg, p)
	h.tick(0, 0)
	if d := h.tick(0, 0); d != autoscale.DecisionDown {
		t.Fatalf("decision %v, want down", d)
	}
	if tg.shards != 2 {
		t.Fatalf("shards = %d, want shrink deepened to 2", tg.shards)
	}
	if h.ctl.Stats().CappedByStaleness == 0 {
		t.Error("CappedByStaleness not counted")
	}
}

func TestResizeErrorKeepsStreak(t *testing.T) {
	tg := &fakeTarget{shards: 4, r: 8, resizeErr: errors.New("transient")}
	h := newHarness(t, tg, policy())
	h.tick(5000, 0)
	h.tick(5000, 0)
	if d := h.tick(5000, 0); d != autoscale.DecisionError {
		t.Fatalf("failing resize: decision %v, want error", d)
	}
	if s := h.ctl.Stats(); s.LastErr == nil {
		t.Error("LastErr not recorded")
	}
	tg.resizeErr = nil
	if d := h.tick(5000, 0); d != autoscale.DecisionUp {
		t.Fatalf("tick after error cleared: decision %v, want immediate up (streak kept)", d)
	}
}

func TestOscillationDampingFastSquareWave(t *testing.T) {
	// Load alternates far-above-high / far-below-low every tick: neither
	// streak can ever complete, so the controller must never resize.
	tg := &fakeTarget{shards: 4, r: 8}
	h := newHarness(t, tg, policy())
	for i := 0; i < 100; i++ {
		rate := 5000.0
		if i%2 == 1 {
			rate = 0
		}
		if d := h.tick(rate, 0); d != autoscale.DecisionHold {
			t.Fatalf("tick %d: decision %v, want hold", i, d)
		}
	}
	if len(tg.resizes) != 0 {
		t.Fatalf("fast square wave caused resizes: %v", tg.resizes)
	}
}

func TestSlowSquareWaveResizesAreBounded(t *testing.T) {
	// A slow square wave (20 ticks per half-period) does legitimately move
	// S — but the cooldown and sustained windows bound the resize rate to
	// at most one per (Sustained + Cooldown) ticks, so a 200-tick run is
	// provably capped. Flapping (a resize per tick) would blow through this.
	p := policy() // up: 3 sustained, down: 2, cooldown: 5 ticks
	tg := &fakeTarget{shards: 2, r: 8}
	h := newHarness(t, tg, p)
	const ticks = 200
	for i := 0; i < ticks; i++ {
		rate := 5000.0
		if (i/20)%2 == 1 {
			rate = 0
		}
		h.tick(rate, 0)
	}
	// Consecutive resizes are spaced by the 5-tick cooldown (streaks may
	// accumulate during it, but the resize itself cannot fire), so a
	// 200-tick run admits at most ticks/5 + 1 resizes.
	if max := ticks/5 + 1; len(tg.resizes) > max {
		t.Fatalf("slow square wave caused %d resizes (%v), cooldown bound allows ≤ %d",
			len(tg.resizes), tg.resizes, max)
	}
	if len(tg.resizes) == 0 {
		t.Fatal("slow square wave never resized: controller is inert")
	}
	up, down := 0, 0
	last := 2
	for _, s := range tg.resizes {
		if s > last {
			up++
		} else {
			down++
		}
		last = s
	}
	if up == 0 || down == 0 {
		t.Errorf("expected movement in both directions, got %d up / %d down (%v)", up, down, tg.resizes)
	}
}

func TestRunStopWithManualClock(t *testing.T) {
	// The background loop paced by a ManualClock: every Advance(SampleEvery)
	// yields exactly one tick, and Stop is clean and idempotent.
	tg := &fakeTarget{shards: 4, r: 8}
	mc := autoscale.NewManualClock(time.Unix(1_000_000, 0))
	p := policy()
	p.Clock = mc
	p.SampleEvery = tickEvery
	ctl, err := autoscale.New(tg, p)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	for i := 0; i < 3; i++ {
		waitFor(t, func() bool { return mc.Waiters() == 1 })
		mc.Advance(tickEvery)
		want := int64(i + 1)
		waitFor(t, func() bool { return ctl.Stats().Samples == want })
	}
	ctl.Stop()
	ctl.Stop() // idempotent
	if got := ctl.Stats().Samples; got != 3 {
		t.Fatalf("samples after stop = %d, want 3", got)
	}
}

// waitFor polls cond (yielding) with a generous bound; the condition is
// driven by the ManualClock, not real time, so this never sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// lagTarget is a fakeTarget that also reports a scripted materialized-view
// refresh lag — the query-side pressure signal.
type lagTarget struct {
	*fakeTarget
	lag time.Duration
}

func (t *lagTarget) ViewLag() time.Duration { return t.lag }

func TestViewLagVetoesScaleUp(t *testing.T) {
	tg := &lagTarget{fakeTarget: &fakeTarget{shards: 4, r: 8}}
	p := policy()
	p.ViewLagHighWater = 500 * time.Millisecond
	h := newHarness(t, tg.fakeTarget, p)
	// Rebind the controller to the lag-aware target, on the harness clock.
	p.Clock = h.mc
	ctl, err := autoscale.New(tg, p)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl = ctl
	h.ctl.Tick() // warmup baseline

	tg.lag = time.Second // above the water mark
	for i := 0; i < 6; i++ {
		if d := h.tick(5000, 0); d == autoscale.DecisionUp {
			t.Fatalf("tick %d scaled up despite view lag above the water mark", i)
		}
	}
	if len(tg.resizes) != 0 {
		t.Fatalf("resizes issued under high view lag: %v", tg.resizes)
	}
	st := h.ctl.Stats()
	if st.HeldViewLag == 0 {
		t.Error("HeldViewLag not counted for vetoed up-pressure")
	}
	if st.LastViewLag != time.Second {
		t.Errorf("LastViewLag = %v, want 1s", st.LastViewLag)
	}
	// Lag clears: the same load now completes an up streak and resizes.
	tg.lag = 0
	for i := 0; i < p.SustainedUp; i++ {
		h.tick(5000, 0)
	}
	if tg.shards != 8 {
		t.Fatalf("shards after lag cleared = %d, want 8", tg.shards)
	}
}

func TestViewLagQualifiesScaleDown(t *testing.T) {
	tg := &lagTarget{fakeTarget: &fakeTarget{shards: 8, r: 8}}
	p := policy()
	p.ViewLagHighWater = 500 * time.Millisecond
	h := newHarness(t, tg.fakeTarget, p)
	p.Clock = h.mc
	ctl, err := autoscale.New(tg, p)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl = ctl
	h.ctl.Tick() // warmup

	// Mid-band rate (between the water marks) would normally hold; a lagging
	// view with a drained backlog qualifies the sample as down-pressure.
	tg.lag = time.Second
	for i := 0; i < p.SustainedDown; i++ {
		h.tick(500, 0)
	}
	if tg.shards != 4 {
		t.Fatalf("shards = %d, want 4 (lag-driven scale-down)", tg.shards)
	}
}

func TestViewLagDownStillRequiresEmptyBacklog(t *testing.T) {
	tg := &lagTarget{fakeTarget: &fakeTarget{shards: 8, r: 8}}
	p := policy()
	p.ViewLagHighWater = 500 * time.Millisecond
	h := newHarness(t, tg.fakeTarget, p)
	p.Clock = h.mc
	ctl, err := autoscale.New(tg, p)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl = ctl
	h.ctl.Tick() // warmup

	// Both planes behind: lag high AND a standing backlog — ingest wins, the
	// controller holds rather than shrinking an overloaded sketch.
	tg.lag = time.Second
	for i := 0; i < 4*p.SustainedDown; i++ {
		if d := h.tick(500, 64); d == autoscale.DecisionDown {
			t.Fatal("scaled down with a standing propagator backlog")
		}
	}
	if len(tg.resizes) != 0 {
		t.Fatalf("resizes issued: %v", tg.resizes)
	}
}

func TestViewLagSignalIgnoredForPlainTargets(t *testing.T) {
	// ViewLagHighWater set, but the target implements no ViewLag: the signal
	// is absent and ingest pressure alone drives the loop.
	tg := &fakeTarget{shards: 4, r: 8}
	p := policy()
	p.ViewLagHighWater = time.Millisecond
	h := newHarness(t, tg, p)
	for i := 0; i < p.SustainedUp; i++ {
		h.tick(5000, 0)
	}
	if tg.shards != 8 {
		t.Fatalf("shards = %d, want 8 (plain target must scale on rate)", tg.shards)
	}
	if st := h.ctl.Stats(); st.LastViewLag != 0 || st.HeldViewLag != 0 {
		t.Errorf("view-lag stats moved for a plain target: %+v", st)
	}
}

func TestNegativeViewLagHighWaterRejected(t *testing.T) {
	if _, err := autoscale.New(&fakeTarget{shards: 4, r: 8},
		autoscale.Policy{HighWater: 100, ViewLagHighWater: -time.Second}); err == nil {
		t.Fatal("New accepted a negative ViewLagHighWater")
	}
}
