package theta

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialization for Θ sketches, so summaries can be shipped between
// processes and merged elsewhere — the distributed use-case (PowerDrill,
// Druid) that motivates sketch mergeability in the first place.
//
// Layout (little-endian):
//
//	magic    uint32  = 0x7E7A5KE7 stand-in (see serialMagic)
//	version  uint8   = 1
//	variant  uint8   (1 = KMV, 2 = QuickSelect, 3 = Compact)
//	lgKOrK   uint16  (lgK for QuickSelect, k for KMV, 0 for Compact)
//	seed     uint64
//	theta    uint64
//	count    uint32
//	hashes   count × uint64
const (
	serialMagic   uint32 = 0x7E7A17E7
	serialVersion byte   = 1

	variantKMV         byte = 1
	variantQuickSelect byte = 2
	variantCompact     byte = 3
)

// ErrCorrupt is returned when deserialisation fails structural validation.
var ErrCorrupt = errors.New("theta: corrupt serialized sketch")

const headerSize = 4 + 1 + 1 + 2 + 8 + 8 + 4

func marshal(variant byte, lgKOrK int, seed, theta uint64, hashes []uint64) []byte {
	buf := make([]byte, headerSize+8*len(hashes))
	binary.LittleEndian.PutUint32(buf[0:], serialMagic)
	buf[4] = serialVersion
	buf[5] = variant
	binary.LittleEndian.PutUint16(buf[6:], uint16(lgKOrK))
	binary.LittleEndian.PutUint64(buf[8:], seed)
	binary.LittleEndian.PutUint64(buf[16:], theta)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(hashes)))
	for i, h := range hashes {
		binary.LittleEndian.PutUint64(buf[headerSize+8*i:], h)
	}
	return buf
}

type header struct {
	variant byte
	lgKOrK  int
	seed    uint64
	theta   uint64
	hashes  []uint64
}

func unmarshal(data []byte) (*header, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != serialMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != serialVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	count := int(binary.LittleEndian.Uint32(data[24:]))
	if len(data) != headerSize+8*count {
		return nil, fmt.Errorf("%w: length %d does not match count %d", ErrCorrupt, len(data), count)
	}
	h := &header{
		variant: data[5],
		lgKOrK:  int(binary.LittleEndian.Uint16(data[6:])),
		seed:    binary.LittleEndian.Uint64(data[8:]),
		theta:   binary.LittleEndian.Uint64(data[16:]),
	}
	h.hashes = make([]uint64, count)
	for i := range h.hashes {
		h.hashes[i] = binary.LittleEndian.Uint64(data[headerSize+8*i:])
		// Retained hashes must be non-zero and at most Θ (Θ itself is
		// permitted: KMV retains its Θ sample).
		if h.hashes[i] == 0 || h.hashes[i] > h.theta {
			return nil, fmt.Errorf("%w: retained hash out of range", ErrCorrupt)
		}
	}
	return h, nil
}

// MarshalBinary serialises a KMV sketch.
func (s *KMV) MarshalBinary() ([]byte, error) {
	return marshal(variantKMV, s.k, s.seed, s.thetaLong, s.heap), nil
}

// UnmarshalKMV reconstructs a KMV sketch from its serialised form.
func UnmarshalKMV(data []byte) (*KMV, error) {
	h, err := unmarshal(data)
	if err != nil {
		return nil, err
	}
	if h.variant != variantKMV {
		return nil, fmt.Errorf("%w: not a KMV sketch (variant %d)", ErrCorrupt, h.variant)
	}
	if h.lgKOrK < 2 {
		return nil, fmt.Errorf("%w: invalid k %d", ErrCorrupt, h.lgKOrK)
	}
	if len(h.hashes) > h.lgKOrK {
		return nil, fmt.Errorf("%w: retained %d exceeds k %d", ErrCorrupt, len(h.hashes), h.lgKOrK)
	}
	s := NewKMV(h.lgKOrK, h.seed)
	for _, v := range h.hashes {
		s.UpdateHash(v)
	}
	// Θ is derived from the samples: it is the heap max for a full KMV and
	// MaxTheta otherwise. A mismatch with the stored value is corruption.
	if s.thetaLong != h.theta {
		return nil, fmt.Errorf("%w: theta does not match samples", ErrCorrupt)
	}
	return s, nil
}

// MarshalBinary serialises a QuickSelect sketch.
func (s *QuickSelect) MarshalBinary() ([]byte, error) {
	return marshal(variantQuickSelect, s.lgK, s.seed, s.thetaLong, s.Retention(nil)), nil
}

// UnmarshalQuickSelect reconstructs a QuickSelect sketch.
func UnmarshalQuickSelect(data []byte) (*QuickSelect, error) {
	h, err := unmarshal(data)
	if err != nil {
		return nil, err
	}
	if h.variant != variantQuickSelect {
		return nil, fmt.Errorf("%w: not a QuickSelect sketch (variant %d)", ErrCorrupt, h.variant)
	}
	if h.lgKOrK < 2 || h.lgKOrK > 26 {
		return nil, fmt.Errorf("%w: invalid lgK %d", ErrCorrupt, h.lgKOrK)
	}
	s := NewQuickSelect(h.lgKOrK, h.seed)
	s.thetaLong = h.theta
	for _, v := range h.hashes {
		if v < h.theta || h.theta == MaxTheta {
			s.insert(v)
		}
	}
	return s, nil
}

// MarshalBinary serialises a compact sketch.
func (c *CompactSketch) MarshalBinary() ([]byte, error) {
	return marshal(variantCompact, 0, c.seed, c.thetaLong, c.hashes), nil
}

// UnmarshalCompact reconstructs a compact sketch.
func UnmarshalCompact(data []byte) (*CompactSketch, error) {
	h, err := unmarshal(data)
	if err != nil {
		return nil, err
	}
	if h.variant != variantCompact {
		return nil, fmt.Errorf("%w: not a compact sketch (variant %d)", ErrCorrupt, h.variant)
	}
	return &CompactSketch{thetaLong: h.theta, hashes: h.hashes, seed: h.seed}, nil
}
