package theta

import "fmt"

// KMV is the K-Minimum-Values Θ sketch of Algorithm 1 in the paper. It
// retains the k smallest distinct hash values seen so far in a max-heap, so
// that the largest retained value — which is Θ once the sketch is full — can
// be evicted in O(log k) when a smaller hash arrives. A membership table
// provides exact duplicate elimination (the pseudo-code's sampleSet is a
// set; re-inserting the hash of a repeated element must be a no-op).
//
// KMV is not safe for concurrent use; the concurrent framework in
// internal/core provides that on top.
type KMV struct {
	k         int
	seed      uint64
	thetaLong uint64
	heap      []uint64 // max-heap of the retained (≤ k smallest) hashes
	members   *hashSet // exact membership for duplicate elimination
}

// NewKMV returns an empty KMV sketch retaining the k smallest hashes.
// k must be at least 2 (the estimator divides by k−1).
func NewKMV(k int, seed uint64) *KMV {
	if k < 2 {
		panic(fmt.Sprintf("theta: KMV k must be ≥ 2, got %d", k))
	}
	return &KMV{
		k:         k,
		seed:      seed,
		thetaLong: MaxTheta,
		heap:      make([]uint64, 0, k),
		members:   newHashSet(k * 2),
	}
}

// Seed returns the hash seed.
func (s *KMV) Seed() uint64 { return s.seed }

// K returns the sample-set size parameter.
func (s *KMV) K() int { return s.k }

// Update hashes key and processes it.
func (s *KMV) Update(key uint64) { s.UpdateHash(HashKey(key, s.seed)) }

// UpdateHash processes an already-hashed element, following Algorithm 1:
// ignore hashes at or above Θ, otherwise insert into the sample set, keep
// the k smallest, and lower Θ to the maximum retained sample.
func (s *KMV) UpdateHash(h uint64) {
	if h >= s.thetaLong && len(s.heap) == s.k {
		return
	}
	if s.members.contains(h) {
		return
	}
	if len(s.heap) < s.k {
		s.members.add(h)
		s.heapPush(h)
		if len(s.heap) == s.k {
			// Sample set just filled: Θ becomes the largest sample.
			s.thetaLong = s.heap[0]
		}
		return
	}
	// Full: h < Θ = heap max, so h replaces the max.
	old := s.heap[0]
	s.members.remove(old)
	s.members.add(h)
	s.heap[0] = h
	s.siftDown(0)
	s.thetaLong = s.heap[0]
}

// Estimate returns (retained−1)/θ in estimation mode (the unbiased KMV
// estimator, line 13 of Algorithm 1) and the exact retained count before the
// sample set first fills.
func (s *KMV) Estimate() float64 {
	return estimate(len(s.heap), s.thetaLong, s.thetaLong != MaxTheta)
}

// ThetaLong returns the integer threshold (2⁶⁴−1 while in exact mode).
func (s *KMV) ThetaLong() uint64 { return s.thetaLong }

// Retained returns the number of stored samples.
func (s *KMV) Retained() int { return len(s.heap) }

// Retention appends the retained hashes (in heap order, not sorted) to dst.
func (s *KMV) Retention(dst []uint64) []uint64 {
	return append(dst, s.heap...)
}

// Merge folds another Θ sketch into this one (the paper's merge: add the
// other sketch's samples and re-trim to the k smallest).
func (s *KMV) Merge(other Sketch) {
	if other.Seed() != s.seed {
		panic("theta: cannot merge sketches with different seeds")
	}
	for _, h := range other.Retention(nil) {
		s.UpdateHash(h)
	}
}

// Reset restores the empty state without releasing capacity.
func (s *KMV) Reset() {
	s.thetaLong = MaxTheta
	s.heap = s.heap[:0]
	s.members.clear()
}

// heapPush inserts h into the max-heap.
func (s *KMV) heapPush(h uint64) {
	s.heap = append(s.heap, h)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] >= s.heap[i] {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

// siftDown restores the max-heap property from index i.
func (s *KMV) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l] > s.heap[largest] {
			largest = l
		}
		if r < n && s.heap[r] > s.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

// hashSet is a minimal open-addressing set of non-zero uint64 hashes with
// linear probing and tombstone-free deletion (backshift). Because the stored
// values are already uniform hashes, the high bits index directly.
type hashSet struct {
	slots []uint64
	mask  uint64
	used  int
}

func newHashSet(capacity int) *hashSet {
	size := 8
	for size < capacity*2 {
		size *= 2
	}
	return &hashSet{slots: make([]uint64, size), mask: uint64(size - 1)}
}

func (t *hashSet) index(h uint64) uint64 {
	// Multiply-shift scramble so that consecutive probe sequences of nearby
	// hashes don't cluster; the values themselves are uniform already but
	// this keeps the table robust to adversarial retention patterns.
	return (h * 0x9e3779b97f4a7c15) >> 32 & t.mask
}

func (t *hashSet) contains(h uint64) bool {
	i := t.index(h)
	for {
		v := t.slots[i]
		if v == 0 {
			return false
		}
		if v == h {
			return true
		}
		i = (i + 1) & t.mask
	}
}

func (t *hashSet) add(h uint64) {
	if t.used*2 >= len(t.slots) {
		t.grow()
	}
	i := t.index(h)
	for {
		v := t.slots[i]
		if v == 0 {
			t.slots[i] = h
			t.used++
			return
		}
		if v == h {
			return
		}
		i = (i + 1) & t.mask
	}
}

func (t *hashSet) remove(h uint64) {
	i := t.index(h)
	for {
		v := t.slots[i]
		if v == 0 {
			return
		}
		if v == h {
			break
		}
		i = (i + 1) & t.mask
	}
	// Backshift deletion: re-place the probe chain following the hole.
	t.slots[i] = 0
	t.used--
	j := (i + 1) & t.mask
	for t.slots[j] != 0 {
		v := t.slots[j]
		t.slots[j] = 0
		t.used--
		t.add(v)
		j = (j + 1) & t.mask
	}
}

func (t *hashSet) grow() {
	old := t.slots
	t.slots = make([]uint64, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.used = 0
	for _, v := range old {
		if v != 0 {
			t.add(v)
		}
	}
}

func (t *hashSet) clear() {
	for i := range t.slots {
		t.slots[i] = 0
	}
	t.used = 0
}
