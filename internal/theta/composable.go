package theta

import (
	"math"
	"sync/atomic"
)

// Composable wraps a QuickSelect sketch as the shared global sketch of the
// concurrent framework (the paper's "composable Θ sketch", Section 5.1,
// extended with the three APIs of Algorithm 1):
//
//   - snapshot: the estimate is published in a single atomic word, so a
//     query is one atomic load — trivially strongly linearisable and safe
//     to run concurrently with merge, exactly as the paper's sketch "simply
//     accesses an atomic variable that holds the query result".
//   - calcHint: returns Θ (as the integer threshold), which is monotonically
//     non-increasing, making stale hints safe.
//   - shouldAdd: h < Θ — an element whose hash is at or above the hinted Θ
//     can never enter the sample set again, so it is summary-preserving to
//     drop it (the paper's pre-filtering optimisation).
//
// The element type seen by the framework is the raw 64-bit hash: callers
// hash once (HashKey) and both pre-filtering and ingestion reuse it.
type Composable struct {
	gadget *QuickSelect
	// estBits holds math.Float64bits of the latest published estimate.
	estBits atomic.Uint64
	// thetaLong mirrors gadget.ThetaLong() for concurrent hint reads.
	thetaLong atomic.Uint64
	// retainedApprox mirrors the retained count for monitoring.
	retained atomic.Int64
	// snapshots, when enabled, makes every publish additionally store an
	// immutable CompactSketch of the full retained set, so cross-sketch
	// folds (SnapshotMerge) are wait-free. Off by default: the copy is
	// O(retained) per propagation, which single-sketch users don't need.
	snapshots bool
	snap      atomic.Pointer[CompactSketch]
}

// NewComposable returns a composable Θ sketch with 2^lgK nominal entries.
func NewComposable(lgK int, seed uint64) *Composable {
	c := &Composable{gadget: NewQuickSelect(lgK, seed)}
	c.thetaLong.Store(MaxTheta)
	return c
}

// MergeBuffer folds a batch of pre-filtered raw hashes into the global
// sketch and publishes the new estimate. Propagator goroutine only.
func (c *Composable) MergeBuffer(hashes []uint64) {
	c.gadget.MergeHashes(hashes)
	c.publish()
}

// DirectUpdate applies one raw hash during the eager phase (framework lock
// held) and publishes the new estimate so queries stay exact.
func (c *Composable) DirectUpdate(h uint64) {
	c.gadget.UpdateHash(h)
	c.publish()
}

// publish refreshes the atomically-readable view (est, Θ, retained). The
// write to estBits is the linearisation point of a merge: "the result of a
// merge is only visible after writing to est".
func (c *Composable) publish() {
	c.thetaLong.Store(c.gadget.ThetaLong())
	c.retained.Store(int64(c.gadget.Retained()))
	c.estBits.Store(math.Float64bits(c.gadget.Estimate()))
	if c.snapshots {
		c.snap.Store(&CompactSketch{
			thetaLong: c.gadget.ThetaLong(),
			hashes:    c.gadget.Retention(nil),
			seed:      c.gadget.Seed(),
		})
	}
}

// EnableSnapshots turns on full-snapshot publication: after every merge the
// composable additionally publishes an immutable CompactSketch of the
// retained set, making Snapshot and SnapshotMerge available to concurrent
// readers. Must be called before the framework starts ingesting (it is not
// synchronised with the propagator).
func (c *Composable) EnableSnapshots() {
	c.snapshots = true
	c.snap.Store(&CompactSketch{
		thetaLong: c.gadget.ThetaLong(),
		seed:      c.gadget.Seed(),
	})
}

// Snapshot returns the latest published immutable view of the whole sketch
// (nil unless EnableSnapshots was called). Wait-free: one atomic pointer
// load; safe concurrently with merges.
func (c *Composable) Snapshot() *CompactSketch { return c.snap.Load() }

// SnapshotMergeInto folds the latest published snapshot into the union
// accumulator — the merge-on-query path of a sharded deployment: each
// shard's global sketch is snapshotted wait-free and folded into acc, so a
// cross-shard query never blocks any shard's propagator. Requires
// EnableSnapshots.
//
// acc is caller-owned and reusable: the fold only reads the published
// snapshot (never retains a reference to acc or vice versa), so a hot query
// path can Reset one Union and fold every shard into it on each query
// without allocating. Repeated reuse is equivalent to a fresh accumulator
// per query.
func (c *Composable) SnapshotMergeInto(acc *Union) {
	s := c.snap.Load()
	if s == nil {
		panic("theta: SnapshotMergeInto requires EnableSnapshots before ingestion")
	}
	if s.seed != acc.gadget.seed {
		panic("theta: cannot merge sketches with different seeds")
	}
	acc.AddHashes(s.hashes, s.thetaLong)
}

// CalcHint returns the current Θ threshold; never zero because retained
// hashes are non-zero, so Θ ≥ 1.
func (c *Composable) CalcHint() uint64 {
	return c.thetaLong.Load()
}

// ShouldAdd reports whether hash h could still enter the sample set given
// the hinted threshold: h < Θ. Safe because Θ only decreases.
func (c *Composable) ShouldAdd(hint uint64, h uint64) bool {
	return h < hint
}

// AdviseBuffer implements the framework's adaptive-buffer extension (the
// paper's future-work item): grow the local buffer proportionally to 1/θ,
// because with pre-filtering a b-slot buffer absorbs ≈ b/θ raw updates, so
// the propagation rate per raw update stays constant while relative
// staleness keeps falling. The framework clamps the result.
func (c *Composable) AdviseBuffer(hint uint64, base int) int {
	if hint == 0 {
		return base
	}
	scale := MaxTheta / hint // ≈ 1/θ
	if scale < 1 {
		scale = 1
	}
	if scale > 64 {
		scale = 64 // advice beyond the framework clamp is pointless
	}
	return base * int(scale)
}

// Estimate returns the latest published estimate — the snapshot query. It is
// wait-free (one atomic load) and safe concurrently with merges.
func (c *Composable) Estimate() float64 {
	return math.Float64frombits(c.estBits.Load())
}

// ThetaLong returns the latest published threshold.
func (c *Composable) ThetaLong() uint64 { return c.thetaLong.Load() }

// Retained returns the latest published retained-entry count.
func (c *Composable) Retained() int { return int(c.retained.Load()) }

// Gadget exposes the underlying sequential sketch. Only safe to use after
// the framework has been closed (no concurrent merges).
func (c *Composable) Gadget() *QuickSelect { return c.gadget }
