package theta

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestComposableEmptyState(t *testing.T) {
	c := NewComposable(10, testSeed)
	if c.Estimate() != 0 {
		t.Error("empty composable estimate should be 0")
	}
	if c.CalcHint() != MaxTheta {
		t.Error("initial hint should be MaxTheta (accept everything)")
	}
	if c.Retained() != 0 {
		t.Error("empty composable should retain nothing")
	}
}

func TestComposableMergePublishes(t *testing.T) {
	c := NewComposable(10, testSeed)
	hashes := make([]uint64, 100)
	for i := range hashes {
		hashes[i] = HashKey(uint64(i), testSeed)
	}
	c.MergeBuffer(hashes)
	if c.Estimate() != 100 {
		t.Errorf("estimate %v, want 100", c.Estimate())
	}
	if c.Retained() != 100 {
		t.Errorf("retained %d, want 100", c.Retained())
	}
}

func TestComposableDirectUpdatePublishes(t *testing.T) {
	c := NewComposable(10, testSeed)
	for i := 0; i < 50; i++ {
		c.DirectUpdate(HashKey(uint64(i), testSeed))
		if c.Estimate() != float64(i+1) {
			t.Fatalf("after %d direct updates estimate %v", i+1, c.Estimate())
		}
	}
}

func TestComposableHintTracksTheta(t *testing.T) {
	c := NewComposable(5, testSeed) // tiny k so Θ shrinks fast
	var batch []uint64
	for i := 0; i < 10000; i++ {
		batch = append(batch, HashKey(uint64(i), testSeed))
		if len(batch) == 256 {
			c.MergeBuffer(batch)
			batch = batch[:0]
		}
	}
	hint := c.CalcHint()
	if hint == MaxTheta || hint == 0 {
		t.Fatalf("hint %d should be a real threshold after 10k uniques into k=32", hint)
	}
	if hint != c.Gadget().ThetaLong() {
		t.Errorf("hint %d != gadget theta %d", hint, c.Gadget().ThetaLong())
	}
	// ShouldAdd must agree with the threshold semantics.
	if c.ShouldAdd(hint, hint) {
		t.Error("hash equal to theta must be rejected")
	}
	if !c.ShouldAdd(hint, hint-1) {
		t.Error("hash below theta must be accepted")
	}
}

func TestComposableConcurrentReadsDuringMerges(t *testing.T) {
	// The composability contract: queries racing MergeBuffer must always
	// see a published (non-torn, non-decreasing-information) estimate.
	c := NewComposable(12, testSeed)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var prev float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				est := c.Estimate()
				if est < 0 || math.IsNaN(est) {
					t.Error("torn/invalid estimate observed")
					return
				}
				// While in exact mode the estimate is the retained count,
				// which only grows.
				if c.CalcHint() == MaxTheta && est < prev {
					t.Errorf("exact-mode estimate decreased: %v → %v", prev, est)
					return
				}
				prev = est
			}
		}()
	}
	var batch []uint64
	for i := 0; i < 200000; i++ {
		batch = append(batch, HashKey(uint64(i), testSeed))
		if len(batch) == 64 {
			c.MergeBuffer(batch)
			batch = batch[:0]
		}
	}
	close(stop)
	readers.Wait()
}

func TestComposableFilteredMergeMatchesUnfiltered(t *testing.T) {
	// Pre-filtering with any stale hint must not change the final sketch:
	// filtered hashes were ≥ a past Θ ≥ current Θ and could never be kept.
	ref := NewComposable(8, testSeed)
	filt := NewComposable(8, testSeed)
	hint := filt.CalcHint()
	var refBatch, filtBatch []uint64
	for i := 0; i < 100000; i++ {
		h := HashKey(uint64(i), testSeed)
		refBatch = append(refBatch, h)
		if filt.ShouldAdd(hint, h) {
			filtBatch = append(filtBatch, h)
		}
		if len(refBatch) == 128 {
			ref.MergeBuffer(refBatch)
			refBatch = refBatch[:0]
			filt.MergeBuffer(filtBatch)
			filtBatch = filtBatch[:0]
			hint = filt.CalcHint() // refresh (possibly stale in real runs)
		}
	}
	ref.MergeBuffer(refBatch)
	filt.MergeBuffer(filtBatch)
	if ref.Estimate() != filt.Estimate() {
		t.Errorf("filtered estimate %v != unfiltered %v", filt.Estimate(), ref.Estimate())
	}
	if ref.Gadget().ThetaLong() != filt.Gadget().ThetaLong() {
		t.Error("filtered theta diverged")
	}
}

func TestSnapshotMergeEqualsSequential(t *testing.T) {
	// The sharded merge-on-query contract: folding k shard snapshots into a
	// Union must summarise the concatenated streams — exactly while every
	// shard is in exact mode, and within the sketch's documented RSE once
	// sampling kicks in.
	cases := []struct {
		name     string
		shards   int
		perShard int
		lgK      int
	}{
		{"1-shard exact", 1, 1000, 12},
		{"2-shard exact", 2, 1000, 12},
		{"8-shard exact", 8, 500, 12},
		{"4-shard sampling", 4, 50000, 10},
		{"8-shard sampling", 8, 20000, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := NewQuickSelect(tc.lgK, testSeed)
			u := NewUnion(tc.lgK, testSeed)
			for s := 0; s < tc.shards; s++ {
				c := NewComposable(tc.lgK, testSeed)
				c.EnableSnapshots()
				var batch []uint64
				for i := 0; i < tc.perShard; i++ {
					h := HashKey(uint64(s*tc.perShard+i), testSeed)
					batch = append(batch, h)
					seq.UpdateHash(h)
				}
				c.MergeBuffer(batch)
				c.SnapshotMergeInto(u)
			}
			n := float64(tc.shards * tc.perShard)
			got := u.Estimate()
			if int(n) < 1<<tc.lgK {
				// Exact mode on both sides: equality, and equal to the truth.
				if got != seq.Estimate() || got != n {
					t.Errorf("merged %v, sequential %v, truth %v", got, seq.Estimate(), n)
				}
				return
			}
			for name, est := range map[string]float64{"merged": got, "sequential": seq.Estimate()} {
				if re := est/n - 1; math.Abs(re) > 4*RSEBound(1<<tc.lgK) {
					t.Errorf("%s estimate error %.4f exceeds 4·RSE", name, re)
				}
			}
		})
	}
}

func TestSnapshotMergeLiveDuringIngestion(t *testing.T) {
	// SnapshotMergeInto must be callable concurrently with MergeBuffer and always
	// see a consistent published state (estimate never exceeds ingested).
	c := NewComposable(10, testSeed)
	c.EnableSnapshots()
	done := make(chan struct{})
	var ingested atomic.Int64
	go func() {
		defer close(done)
		var batch []uint64
		for i := 0; i < 200000; i++ {
			batch = append(batch, HashKey(uint64(i), testSeed))
			if len(batch) == 64 {
				c.MergeBuffer(batch)
				ingested.Add(64)
				batch = batch[:0]
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		before := ingested.Load()
		u := NewUnion(10, testSeed)
		c.SnapshotMergeInto(u)
		est := u.Estimate()
		after := ingested.Load()
		_ = before
		if est > float64(after)*(1+4*RSEBound(1<<10)) {
			t.Fatalf("live merged estimate %v wildly exceeds ingested %d", est, after)
		}
		runtime.Gosched()
	}
}

func TestSnapshotMergeRequiresEnable(t *testing.T) {
	c := NewComposable(10, testSeed)
	defer func() {
		if recover() == nil {
			t.Error("SnapshotMergeInto without EnableSnapshots must panic")
		}
	}()
	c.SnapshotMergeInto(NewUnion(10, testSeed))
}
