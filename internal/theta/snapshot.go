package theta

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot export/import for Union accumulators — the persistence hooks of
// the registry checkpoint plane. Unlike MarshalBinary (a standalone,
// self-describing sketch), ExportTo is an append-style body encoder: the
// container framing (family tag, length prefix, version) lives in
// internal/snapshot, and this layer serialises only the union state, in the
// same spirit as the FoldInto drain hook it mirrors.
//
// Body layout (little-endian):
//
//	lgK    uint8
//	seed   uint64
//	theta  uint64
//	count  uint32
//	hashes count × uint64   (retained hashes, each in (0, theta))
const unionSnapMin = 1 + 8 + 8 + 4

// ErrSnapshotMismatch is returned by ImportFrom when the snapshot was taken
// from a sketch whose configuration (hash seed) is incompatible with the
// receiver: folding it would silently corrupt the estimate, so the import is
// refused with a typed error rather than a panic — snapshot bytes cross
// process and machine boundaries and are not trusted input.
var ErrSnapshotMismatch = errors.New("theta: snapshot config mismatch")

// ExportTo appends the union's accumulated state to dst and returns the
// extended slice. The receiver is only read, so concurrent exports (and
// exports concurrent with FoldInto) are safe; with a pre-grown dst the
// encode allocates nothing.
func (u *Union) ExportTo(dst []byte) []byte {
	g := u.gadget
	dst = append(dst, byte(g.lgK))
	dst = binary.LittleEndian.AppendUint64(dst, g.seed)
	dst = binary.LittleEndian.AppendUint64(dst, g.thetaLong)
	countAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	n := uint32(0)
	for _, h := range g.slots {
		if h != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, h)
			n++
		}
	}
	binary.LittleEndian.PutUint32(dst[countAt:], n)
	return dst
}

// ImportFrom folds a snapshot produced by ExportTo into the receiver,
// exactly like FoldInto from a live union: Θ drops to the minimum of the two
// thresholds and every retained hash is re-inserted. The snapshot's lgK need
// not match the receiver's (union semantics tolerate mixed nominal sizes);
// its seed must. Structural violations return ErrCorrupt, configuration
// conflicts ErrSnapshotMismatch; on any error the receiver is unchanged.
func (u *Union) ImportFrom(data []byte) error {
	if len(data) < unionSnapMin {
		return fmt.Errorf("%w: short union snapshot (%d bytes)", ErrCorrupt, len(data))
	}
	lgK := int(data[0])
	seed := binary.LittleEndian.Uint64(data[1:])
	theta := binary.LittleEndian.Uint64(data[9:])
	count := int(binary.LittleEndian.Uint32(data[17:]))
	if lgK < 2 || lgK > 26 {
		return fmt.Errorf("%w: lgK %d outside [2,26]", ErrCorrupt, lgK)
	}
	if theta == 0 {
		return fmt.Errorf("%w: zero theta", ErrCorrupt)
	}
	if count > 2<<lgK {
		return fmt.Errorf("%w: retained %d exceeds 2k for lgK %d", ErrCorrupt, count, lgK)
	}
	if len(data) != unionSnapMin+8*count {
		return fmt.Errorf("%w: length %d does not match count %d", ErrCorrupt, len(data), count)
	}
	// Validate every hash before touching the receiver: a zero hash would
	// occupy an empty table slot and a hash ≥ Θ violates the retention
	// invariant — either means the snapshot is corrupt, and a partial fold
	// must not survive.
	hashes := data[unionSnapMin:]
	for i := 0; i < count; i++ {
		h := binary.LittleEndian.Uint64(hashes[8*i:])
		if h == 0 || h >= theta {
			return fmt.Errorf("%w: retained hash out of range", ErrCorrupt)
		}
	}
	if seed != u.gadget.seed {
		return fmt.Errorf("%w: seed %#x, receiver has %#x", ErrSnapshotMismatch, seed, u.gadget.seed)
	}
	u.gadget.shrinkTheta(theta)
	for i := 0; i < count; i++ {
		u.gadget.UpdateHash(binary.LittleEndian.Uint64(hashes[8*i:]))
	}
	return nil
}
