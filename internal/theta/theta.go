// Package theta implements Θ (theta) sketches for estimating the number of
// distinct elements in a stream.
//
// Two sequential variants are provided, mirroring the paper "Fast Concurrent
// Data Sketches" (PPoPP 2020):
//
//   - KMV: the K-Minimum-Values sketch of Algorithm 1 in the paper. It keeps
//     the k smallest hash values seen so far; Θ is the k-th smallest and the
//     estimate is (k−1)/Θ, which is unbiased (Bar-Yossef et al.).
//   - QuickSelect: the HeapQuickSelectSketch family used by the paper's
//     evaluation (Section 7.1) and by Apache DataSketches. It retains between
//     k and 2k hashes below Θ; when full it quick-selects a new Θ and
//     discards the larger half. The estimate is retained/Θ.
//
// All sketches operate in raw 64-bit hash space: a stream element is hashed
// with MurmurHash3 into a uint64, and Θ is itself a uint64 threshold
// ("thetaLong" in DataSketches terms). The fraction of hash space below Θ is
// θ = thetaLong / 2⁶⁴, and an estimate of the distinct count divides the
// retained count by θ. Working in integer hash space gives exact duplicate
// elimination and cheap comparisons on the hot path.
package theta

import (
	"math"

	"fastsketches/internal/murmur"
)

// MaxTheta is the initial threshold: all of hash space is below it, so every
// new hash is retained ("exact mode"). It doubles as the hint encoding for
// "no filtering", and is never zero, so a zero hint can mean "pending".
const MaxTheta = math.MaxUint64

// ThetaToFraction converts an integer threshold to the fraction θ ∈ (0,1] of
// hash space it covers.
func ThetaToFraction(thetaLong uint64) float64 {
	return float64(thetaLong) / float64(math.MaxUint64)
}

// HashKey maps a stream element key to its sketch coordinate: a uint64 hash
// uniform on (0, 2⁶⁴). Hash value 0 is remapped to 1 so that 0 can be used
// as the empty slot marker in hash tables; the probability of remapping is
// 2⁻⁶⁴ and the induced bias is far below floating-point resolution.
func HashKey(key uint64, seed uint64) uint64 {
	h := murmur.HashUint64(key, seed)
	if h == 0 {
		return 1
	}
	return h
}

// HashBytes is HashKey for byte-slice elements.
func HashBytes(b []byte, seed uint64) uint64 {
	h := murmur.Hash64(b, seed)
	if h == 0 {
		return 1
	}
	return h
}

// HashString is HashKey for string elements.
func HashString(s string, seed uint64) uint64 {
	h := murmur.HashString(s, seed)
	if h == 0 {
		return 1
	}
	return h
}

// Sketch is the common interface of the sequential Θ sketch variants. It
// matches the paper's sequential API (Section 3): init/update/query/merge,
// with update split into the by-key and by-hash forms so callers that have
// already hashed (e.g. the concurrent framework's pre-filter) don't pay for
// a second hash.
type Sketch interface {
	// Update processes a stream element identified by a uint64 key.
	Update(key uint64)
	// UpdateHash processes an already-hashed element.
	UpdateHash(h uint64)
	// Estimate returns the estimated number of distinct elements.
	Estimate() float64
	// ThetaLong returns the current integer threshold.
	ThetaLong() uint64
	// Retained returns the number of hash values currently stored.
	Retained() int
	// Retention appends the retained hashes to dst and returns it.
	Retention(dst []uint64) []uint64
	// Merge folds another sketch of the same variant into this one.
	Merge(other Sketch)
	// Reset returns the sketch to its freshly-initialised state.
	Reset()
	// Seed returns the hash seed; merging sketches with different seeds is
	// a user error that Merge panics on, as in DataSketches.
	Seed() uint64
}

// estimate computes the distinct-count estimate for a sketch retaining
// `retained` hashes under threshold thetaLong, using the KMV-style unbiased
// estimator when requested.
//
// In exact mode (thetaLong == MaxTheta) every distinct element is retained,
// so the estimate is simply the retained count. In estimation mode, the
// QuickSelect estimator is retained/θ; the KMV estimator is (retained−1)/θ
// because Θ is itself the k-th retained sample (the paper's est, line 13 of
// Algorithm 1).
func estimate(retained int, thetaLong uint64, kmvStyle bool) float64 {
	if thetaLong == MaxTheta {
		return float64(retained)
	}
	theta := ThetaToFraction(thetaLong)
	if kmvStyle {
		return float64(retained-1) / theta
	}
	return float64(retained) / theta
}

// RSEBound returns the a-priori relative standard error bound 1/√(k−2) of a
// sequential Θ sketch with k samples (Section 3 of the paper).
func RSEBound(k int) float64 {
	if k <= 2 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(float64(k-2))
}

// RelaxedRSEBound returns the weak-adversary RSE bound of an r-relaxed Θ
// sketch: √(1/(k−2)) + r/(k−2) (Section 6.1). For r ≤ √(k−2) this is at most
// twice the sequential bound.
func RelaxedRSEBound(k, r int) float64 {
	if k <= 2 {
		return math.Inf(1)
	}
	return math.Sqrt(1/float64(k-2)) + float64(r)/float64(k-2)
}

// ConfidenceBounds returns approximate lower and upper bounds on the true
// distinct count at the given number of standard deviations (1, 2 or 3),
// using the normal approximation est·(1 ∓ σ·RSE). In exact mode the bounds
// collapse to the estimate.
func ConfidenceBounds(est float64, k int, stdDevs int) (lo, hi float64) {
	if stdDevs < 1 {
		stdDevs = 1
	}
	rse := RSEBound(k) * float64(stdDevs)
	lo = est * (1 - rse)
	if lo < 0 {
		lo = 0
	}
	hi = est * (1 + rse)
	return lo, hi
}
