package theta

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fastsketches/internal/murmur"
)

const testSeed = murmur.DefaultSeed

func feedUnique(s Sketch, n int) {
	for i := 0; i < n; i++ {
		s.Update(uint64(i))
	}
}

func variants(t *testing.T) map[string]func() Sketch {
	t.Helper()
	return map[string]func() Sketch{
		"KMV":         func() Sketch { return NewKMV(1024, testSeed) },
		"QuickSelect": func() Sketch { return NewQuickSelect(10, testSeed) },
	}
}

func TestEmptySketch(t *testing.T) {
	for name, mk := range variants(t) {
		s := mk()
		if got := s.Estimate(); got != 0 {
			t.Errorf("%s: empty estimate = %v, want 0", name, got)
		}
		if s.Retained() != 0 {
			t.Errorf("%s: empty retained = %d, want 0", name, s.Retained())
		}
		if s.ThetaLong() != MaxTheta {
			t.Errorf("%s: empty theta = %d, want MaxTheta", name, s.ThetaLong())
		}
	}
}

func TestExactModeIsExact(t *testing.T) {
	// Before the sample set fills, the sketch must count exactly.
	for name, mk := range variants(t) {
		s := mk()
		for n := 1; n <= 1000; n++ {
			s.Update(uint64(n))
			if est := s.Estimate(); est != float64(n) {
				t.Fatalf("%s: after %d uniques estimate = %v, want exact", name, n, est)
			}
		}
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	for name, mk := range variants(t) {
		s := mk()
		for round := 0; round < 5; round++ {
			for i := 0; i < 500; i++ {
				s.Update(uint64(i))
			}
		}
		if est := s.Estimate(); est != 500 {
			t.Errorf("%s: estimate with duplicates = %v, want 500", name, est)
		}
	}
}

func TestEstimationAccuracy(t *testing.T) {
	// With k=1024 the RSE bound is 1/√1022 ≈ 3.1%. A single run at n=100k
	// should land within 4 RSE of the truth.
	for name, mk := range variants(t) {
		s := mk()
		const n = 100000
		feedUnique(s, n)
		est := s.Estimate()
		re := est/n - 1
		if math.Abs(re) > 4*RSEBound(1024) {
			t.Errorf("%s: relative error %.4f exceeds 4·RSE=%.4f", name, re, 4*RSEBound(1024))
		}
	}
}

func TestKMVUnbiasedOverTrials(t *testing.T) {
	// Average the KMV estimator over many independent streams (different
	// disjoint key ranges → independent hash samples). The mean relative
	// error should be within a few standard errors of zero.
	const k, n, trials = 256, 20000, 60
	var sum float64
	for tr := 0; tr < trials; tr++ {
		s := NewKMV(k, testSeed)
		base := uint64(tr) * (1 << 40)
		for i := 0; i < n; i++ {
			s.Update(base + uint64(i))
		}
		sum += s.Estimate()/n - 1
	}
	meanRE := sum / trials
	seOfMean := RSEBound(k) / math.Sqrt(trials)
	if math.Abs(meanRE) > 4*seOfMean {
		t.Errorf("KMV mean relative error %.5f exceeds 4·SE=%.5f — estimator looks biased", meanRE, 4*seOfMean)
	}
}

func TestThetaMonotonicallyNonIncreasing(t *testing.T) {
	for name, mk := range variants(t) {
		s := mk()
		prev := s.ThetaLong()
		for i := 0; i < 50000; i++ {
			s.Update(uint64(i))
			cur := s.ThetaLong()
			if cur > prev {
				t.Fatalf("%s: theta increased from %d to %d at update %d", name, prev, cur, i)
			}
			prev = cur
		}
	}
}

func TestKMVRetainsExactlyKSmallest(t *testing.T) {
	const k = 64
	s := NewKMV(k, testSeed)
	var all []uint64
	for i := 0; i < 10000; i++ {
		h := HashKey(uint64(i), testSeed)
		all = append(all, h)
		s.UpdateHash(h)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	want := all[:k]
	got := s.Retention(nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != k {
		t.Fatalf("retained %d, want %d", len(got), k)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained[%d] = %d, want %d (k smallest)", i, got[i], want[i])
		}
	}
	if s.ThetaLong() != want[k-1] {
		t.Fatalf("theta = %d, want k-th smallest %d", s.ThetaLong(), want[k-1])
	}
}

func TestQuickSelectInvariants(t *testing.T) {
	const lgK = 6 // k=64
	s := NewQuickSelect(lgK, testSeed)
	k := 1 << lgK
	for i := 0; i < 100000; i++ {
		s.Update(uint64(i))
		if s.Retained() >= 2*k {
			t.Fatalf("retained %d ≥ 2k=%d after rebuild point", s.Retained(), 2*k)
		}
		for _, h := range s.Retention(nil) {
			if h >= s.ThetaLong() && s.ThetaLong() != MaxTheta {
				t.Fatalf("retained hash %d ≥ theta %d", h, s.ThetaLong())
			}
		}
		if i == 1000 {
			// Spot-check invariant densely only early on (the loop above is
			// O(retained) per update); afterwards sample sparsely.
			break
		}
	}
	for i := 1001; i < 100000; i += 997 {
		s.Update(uint64(i))
	}
	if s.ThetaLong() == MaxTheta {
		t.Fatal("sketch never entered estimation mode")
	}
}

func TestOrderInsensitive(t *testing.T) {
	// The paper: "the state of a Θ sketch after a set of updates is
	// independent of their processing order." This holds exactly for KMV
	// (canonical retention: precisely the k smallest hashes). QuickSelect's
	// retained superset depends on rebuild timing, so only the estimate's
	// accuracy — not its bits — is order-independent there.
	keys := rand.New(rand.NewSource(7)).Perm(30000)

	a, b := NewKMV(1024, testSeed), NewKMV(1024, testSeed)
	for _, x := range keys {
		a.Update(uint64(x))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Update(uint64(keys[i]))
	}
	if a.Estimate() != b.Estimate() {
		t.Errorf("KMV: order-dependent estimates %v vs %v", a.Estimate(), b.Estimate())
	}
	if a.ThetaLong() != b.ThetaLong() {
		t.Errorf("KMV: order-dependent theta")
	}

	qa, qb := NewQuickSelect(10, testSeed), NewQuickSelect(10, testSeed)
	for _, x := range keys {
		qa.Update(uint64(x))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		qb.Update(uint64(keys[i]))
	}
	for _, est := range []float64{qa.Estimate(), qb.Estimate()} {
		if math.Abs(est/30000-1) > 4*RSEBound(1024) {
			t.Errorf("QuickSelect: estimate %v out of tolerance for either order", est)
		}
	}
}

func TestMergeEquivalentToConcatenation(t *testing.T) {
	// merge(S over A, S' over A') must summarise A||A' (Section 3).
	for name, mk := range variants(t) {
		whole, partA, partB := mk(), mk(), mk()
		const n = 40000
		for i := 0; i < n; i++ {
			whole.Update(uint64(i))
			if i < n/2 {
				partA.Update(uint64(i))
			} else {
				partB.Update(uint64(i))
			}
		}
		partA.Merge(partB)
		// The merged sketch summarises the same multiset; estimates must be
		// close (they can differ slightly because retention boundaries
		// differ between incremental and batch paths for QuickSelect).
		re := partA.Estimate()/whole.Estimate() - 1
		if math.Abs(re) > 0.05 {
			t.Errorf("%s: merged estimate %v vs whole-stream %v (re=%.4f)", name, partA.Estimate(), whole.Estimate(), re)
		}
		if name == "KMV" && partA.Estimate() != whole.Estimate() {
			// KMV retention is canonical (exactly the k smallest), so merge
			// must be bit-identical to the whole-stream sketch.
			t.Errorf("KMV merge not canonical: %v vs %v", partA.Estimate(), whole.Estimate())
		}
	}
}

func TestMergeOverlappingStreams(t *testing.T) {
	for name, mk := range variants(t) {
		a, b := mk(), mk()
		for i := 0; i < 30000; i++ {
			a.Update(uint64(i)) // [0, 30000)
		}
		for i := 15000; i < 45000; i++ {
			b.Update(uint64(i)) // [15000, 45000)
		}
		a.Merge(b)
		est := a.Estimate()
		if math.Abs(est/45000-1) > 5*RSEBound(1024) {
			t.Errorf("%s: union estimate %v, want ≈45000", name, est)
		}
	}
}

func TestMergeSeedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different seeds did not panic")
		}
	}()
	a := NewKMV(64, 1)
	b := NewKMV(64, 2)
	a.Merge(b)
}

func TestReset(t *testing.T) {
	for name, mk := range variants(t) {
		s := mk()
		feedUnique(s, 50000)
		s.Reset()
		if s.Estimate() != 0 || s.Retained() != 0 || s.ThetaLong() != MaxTheta {
			t.Errorf("%s: reset did not restore empty state", name)
		}
		feedUnique(s, 100)
		if s.Estimate() != 100 {
			t.Errorf("%s: post-reset estimate %v, want 100", name, s.Estimate())
		}
	}
}

func TestPropertyEstimateWithinBounds(t *testing.T) {
	// Property: for any stream size, the estimate stays within 6 RSE of
	// truth (probabilistic, but 6σ across ~40 quick-check trials is safe).
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}
	f := func(seed16 uint16, size uint16) bool {
		n := int(size)%50000 + 1
		s := NewQuickSelect(9, uint64(seed16)+1) // k=512
		base := uint64(seed16) << 32
		for i := 0; i < n; i++ {
			s.Update(base + uint64(i))
		}
		est := s.Estimate()
		tol := 6 * RSEBound(512) * float64(n)
		return math.Abs(est-float64(n)) <= tol+1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeCommutative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(43))}
	f := func(na, nb uint16) bool {
		a1, b1 := NewKMV(128, testSeed), NewKMV(128, testSeed)
		a2, b2 := NewKMV(128, testSeed), NewKMV(128, testSeed)
		for i := 0; i < int(na); i++ {
			a1.Update(uint64(i))
			a2.Update(uint64(i))
		}
		for i := 0; i < int(nb); i++ {
			b1.Update(uint64(i) + 1<<40)
			b2.Update(uint64(i) + 1<<40)
		}
		a1.Merge(b1) // A ∪ B
		b2.Merge(a2) // B ∪ A
		return a1.Estimate() == b2.Estimate() && a1.ThetaLong() == b2.ThetaLong()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200) + 1
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64()%1000 + 1
		}
		rank := rng.Intn(n)
		sorted := append([]uint64(nil), a...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if got := quickSelect(a, rank); got != sorted[rank] {
			t.Fatalf("quickSelect(rank=%d) = %d, want %d", rank, got, sorted[rank])
		}
	}
}

func TestHashSetAddRemove(t *testing.T) {
	hs := newHashSet(16)
	rng := rand.New(rand.NewSource(5))
	ref := make(map[uint64]bool)
	for op := 0; op < 20000; op++ {
		v := rng.Uint64()%500 + 1
		if rng.Intn(2) == 0 {
			hs.add(v)
			ref[v] = true
		} else {
			hs.remove(v)
			delete(ref, v)
		}
	}
	for v := uint64(1); v <= 500; v++ {
		if hs.contains(v) != ref[v] {
			t.Fatalf("hashSet.contains(%d) = %v, want %v", v, hs.contains(v), ref[v])
		}
	}
}

func TestUnionEstimate(t *testing.T) {
	a := NewQuickSelect(10, testSeed)
	b := NewQuickSelect(10, testSeed)
	for i := 0; i < 50000; i++ {
		a.Update(uint64(i))
		b.Update(uint64(i + 25000))
	}
	u := NewUnion(10, testSeed)
	u.Add(a)
	u.Add(b)
	est := u.Estimate()
	if math.Abs(est/75000-1) > 5*RSEBound(1024) {
		t.Errorf("union estimate %v, want ≈75000", est)
	}
}

func TestIntersectEstimate(t *testing.T) {
	a := NewQuickSelect(12, testSeed)
	b := NewQuickSelect(12, testSeed)
	for i := 0; i < 100000; i++ {
		a.Update(uint64(i))
		b.Update(uint64(i + 50000))
	}
	inter := Intersect(a, b)
	est := inter.Estimate()
	if math.Abs(est/50000-1) > 0.15 {
		t.Errorf("intersection estimate %v, want ≈50000", est)
	}
}

func TestAnotBEstimate(t *testing.T) {
	a := NewQuickSelect(12, testSeed)
	b := NewQuickSelect(12, testSeed)
	for i := 0; i < 100000; i++ {
		a.Update(uint64(i))
		b.Update(uint64(i + 50000))
	}
	diff := AnotB(a, b)
	est := diff.Estimate()
	if math.Abs(est/50000-1) > 0.15 {
		t.Errorf("A\\B estimate %v, want ≈50000", est)
	}
}

func TestJaccard(t *testing.T) {
	a := NewQuickSelect(12, testSeed)
	b := NewQuickSelect(12, testSeed)
	for i := 0; i < 60000; i++ {
		a.Update(uint64(i))
		b.Update(uint64(i + 30000)) // |A∩B|=30000, |A∪B|=90000 → J=1/3
	}
	j := JaccardEstimate(a, b, 12)
	if math.Abs(j-1.0/3.0) > 0.05 {
		t.Errorf("Jaccard estimate %v, want ≈0.333", j)
	}
}

func TestSerializeRoundTripKMV(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000} {
		s := NewKMV(256, testSeed)
		feedUnique(s, n)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalKMV(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Estimate() != s.Estimate() || got.ThetaLong() != s.ThetaLong() || got.Retained() != s.Retained() {
			t.Fatalf("n=%d: round-trip mismatch", n)
		}
	}
}

func TestSerializeRoundTripQuickSelect(t *testing.T) {
	for _, n := range []int{0, 1, 100, 50000} {
		s := NewQuickSelect(8, testSeed)
		feedUnique(s, n)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalQuickSelect(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Estimate() != s.Estimate() || got.ThetaLong() != s.ThetaLong() || got.Retained() != s.Retained() {
			t.Fatalf("n=%d: round-trip mismatch est %v vs %v", n, got.Estimate(), s.Estimate())
		}
	}
}

func TestSerializeCorruptionDetected(t *testing.T) {
	s := NewKMV(64, testSeed)
	feedUnique(s, 1000)
	data, _ := s.MarshalBinary()

	cases := map[string]func([]byte) []byte{
		"truncated": func(d []byte) []byte { return d[:len(d)-3] },
		"bad magic": func(d []byte) []byte { d[0] ^= 0xff; return d },
		"bad count": func(d []byte) []byte { d[24] ^= 0x01; return d },
		"zero hash": func(d []byte) []byte {
			for i := 0; i < 8; i++ {
				d[headerSize+i] = 0
			}
			return d
		},
		"wrong kind": func(d []byte) []byte { d[5] = variantQuickSelect; return d },
	}
	for name, corrupt := range cases {
		c := corrupt(append([]byte(nil), data...))
		if _, err := UnmarshalKMV(c); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestCompactSerializeRoundTrip(t *testing.T) {
	a := NewQuickSelect(8, testSeed)
	b := NewQuickSelect(8, testSeed)
	feedUnique(a, 20000)
	feedUnique(b, 20000)
	inter := Intersect(a, b)
	data, err := inter.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCompact(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != inter.Estimate() {
		t.Fatalf("round-trip estimate %v vs %v", got.Estimate(), inter.Estimate())
	}
}

func TestConfidenceBoundsCoverTruth(t *testing.T) {
	// 2-sigma bounds should cover the truth in the vast majority of trials.
	const trials = 100
	covered := 0
	for tr := 0; tr < trials; tr++ {
		s := NewQuickSelect(9, uint64(tr)+100)
		const n = 50000
		feedUnique(s, n)
		lo, hi := ConfidenceBounds(s.Estimate(), 512, 2)
		if lo <= n && n <= hi {
			covered++
		}
	}
	if covered < 90 {
		t.Errorf("2σ bounds covered truth in only %d/%d trials", covered, trials)
	}
}

func TestRSEBounds(t *testing.T) {
	if !math.IsInf(RSEBound(2), 1) {
		t.Error("RSEBound(2) should be +Inf")
	}
	if got := RSEBound(4098); math.Abs(got-1/math.Sqrt(4096)) > 1e-12 {
		t.Errorf("RSEBound(4098) = %v", got)
	}
	// Relaxed bound with r ≤ √(k−2) is at most twice sequential (Section 6.1).
	k := 1026
	r := 32 // = √1024
	if RelaxedRSEBound(k, r) > 2*RSEBound(k)+1e-12 {
		t.Errorf("relaxed bound %v exceeds twice sequential %v", RelaxedRSEBound(k, r), 2*RSEBound(k))
	}
}

func BenchmarkKMVUpdate(b *testing.B) {
	s := NewKMV(4096, testSeed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i))
	}
}

func BenchmarkQuickSelectUpdate(b *testing.B) {
	s := NewQuickSelect(12, testSeed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i))
	}
}

func BenchmarkQuickSelectUpdateHash(b *testing.B) {
	s := NewQuickSelect(12, testSeed)
	hs := make([]uint64, 1<<16)
	for i := range hs {
		hs[i] = HashKey(uint64(i), testSeed)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.UpdateHash(hs[i&(1<<16-1)])
	}
}

func BenchmarkMerge(b *testing.B) {
	src := NewQuickSelect(12, testSeed)
	feedUnique(src, 1<<20)
	dst := NewQuickSelect(12, testSeed)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.Merge(src)
	}
}
