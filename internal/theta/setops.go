package theta

import "fmt"

// Set operations over Θ sketches. Like Apache DataSketches, the Θ sketch
// family supports not just distinct counting but estimating the cardinality
// of unions, intersections and differences of streams, because each sketch
// is a uniform sample of hash space below its threshold.

// Union accumulates the union of many Θ sketches. It is itself backed by a
// QuickSelect sketch: union Θ is the minimum input Θ (further lowered by
// retention pressure) and the estimate is retained/θ.
type Union struct {
	gadget *QuickSelect
}

// NewUnion returns an empty union accumulator with 2^lgK nominal entries.
func NewUnion(lgK int, seed uint64) *Union {
	return &Union{gadget: NewQuickSelect(lgK, seed)}
}

// Add folds a sketch into the union.
func (u *Union) Add(s Sketch) { u.gadget.Merge(s) }

// AddHashes folds raw retained hashes (with their source threshold) into the
// union.
func (u *Union) AddHashes(hashes []uint64, thetaLong uint64) {
	u.gadget.shrinkTheta(thetaLong)
	u.gadget.MergeHashes(hashes)
}

// Estimate returns the estimated cardinality of the union.
func (u *Union) Estimate() float64 { return u.gadget.Estimate() }

// Result returns the union as a standalone sketch (a copy).
func (u *Union) Result() *QuickSelect {
	out := NewQuickSelect(u.gadget.lgK, u.gadget.seed)
	out.thetaLong = u.gadget.thetaLong
	for _, h := range u.gadget.Retention(nil) {
		out.insert(h)
	}
	return out
}

// Reset empties the union accumulator.
func (u *Union) Reset() { u.gadget.Reset() }

// SizeBytes estimates the union's resident heap footprint in bytes — the
// memory-budget accounting hook of the sharded layer.
func (u *Union) SizeBytes() int { return u.gadget.SizeBytes() }

// FoldInto folds the receiver's accumulated union into dst without mutating
// the receiver — the retired-state drain hook of the sharded layer's live
// resharding: a legacy Union published by a completed Resize is folded into
// every merged-query accumulator exactly like one more shard snapshot.
//
// The fold walks the receiver's hash table directly (no gather copy), so it
// allocates nothing: concurrent FoldInto calls from many query goroutines
// into their own dst accumulators are safe because the receiver is only
// read.
func (u *Union) FoldInto(dst *Union) {
	if u.gadget.seed != dst.gadget.seed {
		panic("theta: cannot fold unions with different seeds")
	}
	dst.gadget.shrinkTheta(u.gadget.thetaLong)
	for _, h := range u.gadget.slots {
		if h != 0 {
			dst.gadget.UpdateHash(h)
		}
	}
}

// CompactSketch is an immutable result of a set operation: a sorted list of
// retained hashes below a threshold. It supports only queries.
type CompactSketch struct {
	thetaLong uint64
	hashes    []uint64
	seed      uint64
}

// Estimate returns retained/θ.
func (c *CompactSketch) Estimate() float64 {
	return estimate(len(c.hashes), c.thetaLong, false)
}

// Retained returns the number of retained hashes.
func (c *CompactSketch) Retained() int { return len(c.hashes) }

// ThetaLong returns the threshold.
func (c *CompactSketch) ThetaLong() uint64 { return c.thetaLong }

// Retention appends the retained hashes to dst.
func (c *CompactSketch) Retention(dst []uint64) []uint64 {
	return append(dst, c.hashes...)
}

// Seed returns the hash seed.
func (c *CompactSketch) Seed() uint64 { return c.seed }

// Intersect estimates the intersection of two Θ sketches: the common
// threshold is min(Θa, Θb) and the retained set is the hash intersection
// below it. The result is exact over the sampled region, giving the standard
// Θ-intersection estimator.
func Intersect(a, b Sketch) *CompactSketch {
	if a.Seed() != b.Seed() {
		panic("theta: cannot intersect sketches with different seeds")
	}
	theta := a.ThetaLong()
	if bt := b.ThetaLong(); bt < theta {
		theta = bt
	}
	aRet := a.Retention(nil)
	inB := make(map[uint64]struct{}, b.Retained())
	for _, h := range b.Retention(nil) {
		if h < theta {
			inB[h] = struct{}{}
		}
	}
	var common []uint64
	for _, h := range aRet {
		if h >= theta {
			continue
		}
		if _, ok := inB[h]; ok {
			common = append(common, h)
		}
	}
	return &CompactSketch{thetaLong: theta, hashes: common, seed: a.Seed()}
}

// AnotB estimates the difference A\B: hashes of A below the common
// threshold that do not appear in B.
func AnotB(a, b Sketch) *CompactSketch {
	if a.Seed() != b.Seed() {
		panic("theta: cannot difference sketches with different seeds")
	}
	theta := a.ThetaLong()
	if bt := b.ThetaLong(); bt < theta {
		theta = bt
	}
	inB := make(map[uint64]struct{}, b.Retained())
	for _, h := range b.Retention(nil) {
		inB[h] = struct{}{}
	}
	var diff []uint64
	for _, h := range a.Retention(nil) {
		if h >= theta {
			continue
		}
		if _, ok := inB[h]; !ok {
			diff = append(diff, h)
		}
	}
	return &CompactSketch{thetaLong: theta, hashes: diff, seed: a.Seed()}
}

// JaccardEstimate estimates the Jaccard similarity |A∩B| / |A∪B| of the two
// streams summarised by a and b.
func JaccardEstimate(a, b Sketch, lgK int) float64 {
	u := NewUnion(lgK, a.Seed())
	u.Add(a)
	u.Add(b)
	union := u.Estimate()
	if union == 0 {
		return 0
	}
	inter := Intersect(a, b).Estimate()
	return inter / union
}

// String renders a short diagnostic description of a sketch.
func String(s Sketch) string {
	return fmt.Sprintf("theta{retained=%d, theta=%.6g, est=%.1f}",
		s.Retained(), ThetaToFraction(s.ThetaLong()), s.Estimate())
}
