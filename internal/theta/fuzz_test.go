package theta

import (
	"testing"
)

// Fuzz targets for the binary decoders: deserialising untrusted bytes must
// never panic, and anything that round-trips must be stable. Run with
// `go test -fuzz=FuzzUnmarshal` for continuous fuzzing; the seed corpus
// runs as part of the normal test suite.

func FuzzUnmarshalKMV(f *testing.F) {
	good := NewKMV(64, 9001)
	for i := 0; i < 1000; i++ {
		good.Update(uint64(i))
	}
	data, _ := good.MarshalBinary()
	f.Add(data)
	f.Add([]byte{})
	f.Add(data[:10])
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := UnmarshalKMV(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same state.
		d2, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := UnmarshalKMV(d2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.Estimate() != s.Estimate() || s2.Retained() != s.Retained() {
			t.Fatal("round-trip not stable")
		}
	})
}

func FuzzUnmarshalQuickSelect(f *testing.F) {
	good := NewQuickSelect(6, 9001)
	for i := 0; i < 5000; i++ {
		good.Update(uint64(i))
	}
	data, _ := good.MarshalBinary()
	f.Add(data)
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := UnmarshalQuickSelect(b)
		if err != nil {
			return
		}
		if s.Retained() < 0 || s.Estimate() < 0 {
			t.Fatal("decoded sketch in nonsense state")
		}
		// The decoded sketch must keep functioning.
		s.Update(12345)
		_ = s.Estimate()
	})
}

func FuzzUnmarshalCompact(f *testing.F) {
	a := NewQuickSelect(6, 9001)
	b := NewQuickSelect(6, 9001)
	for i := 0; i < 3000; i++ {
		a.Update(uint64(i))
		b.Update(uint64(i + 1500))
	}
	data, _ := Intersect(a, b).MarshalBinary()
	f.Add(data)
	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := UnmarshalCompact(raw)
		if err != nil {
			return
		}
		if c.Estimate() < 0 {
			t.Fatal("negative estimate from decoded compact sketch")
		}
	})
}
