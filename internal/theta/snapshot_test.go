package theta

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// exactUnion returns a union in the exact regime (Θ = 1) holding n distinct
// pseudo-hashes, plus the hashes themselves.
func exactUnion(t *testing.T, lgK int, n int) (*Union, []uint64) {
	t.Helper()
	u := NewUnion(lgK, testSeed)
	hashes := make([]uint64, n)
	for i := range hashes {
		hashes[i] = uint64(i+1) * 0x9E3779B97F4A7C15
	}
	u.AddHashes(hashes, math.MaxUint64)
	return u, hashes
}

func TestUnionSnapshotRoundTrip(t *testing.T) {
	src, _ := exactUnion(t, 10, 300)
	snap := src.ExportTo(nil)

	dst := NewUnion(10, testSeed)
	if err := dst.ImportFrom(snap); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.Estimate(), src.Estimate(); got != want {
		t.Fatalf("imported estimate %v, want %v", got, want)
	}
	if dst.Estimate() != 300 {
		t.Fatalf("exact-regime estimate %v, want 300", dst.Estimate())
	}

	// Import folds like a union: disjoint state accumulates, shared state
	// dedups.
	other, _ := exactUnion(t, 10, 300) // same 300 hashes
	extra := NewUnion(10, testSeed)
	extra.AddHashes([]uint64{^uint64(7), ^uint64(8)}, math.MaxUint64)
	if err := other.ImportFrom(extra.ExportTo(nil)); err != nil {
		t.Fatal(err)
	}
	if err := other.ImportFrom(snap); err != nil { // duplicate fold: no-op
		t.Fatal(err)
	}
	if other.Estimate() != 302 {
		t.Fatalf("folded estimate %v, want 302", other.Estimate())
	}

	// A different lgK receiver is fine (union semantics tolerate mixed
	// nominal sizes); a different seed is not.
	if err := NewUnion(12, testSeed).ImportFrom(snap); err != nil {
		t.Fatalf("mixed-lgK import: %v", err)
	}
	if err := NewUnion(10, testSeed+1).ImportFrom(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("seed mismatch error = %v, want ErrSnapshotMismatch", err)
	}
}

func TestUnionSnapshotCorrupt(t *testing.T) {
	src, _ := exactUnion(t, 10, 50)
	valid := src.ExportTo(nil)
	mut := func(f func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	// Body layout: lgK u8 | seed u64 | theta u64 | count u32 | hashes.
	cases := []struct {
		name string
		in   []byte
	}{
		{"short", valid[:unionSnapMin-1]},
		{"bad lgK", mut(func(b []byte) { b[0] = 63 })},
		{"zero theta", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[9:], 0)
		})},
		{"count mismatch", mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[17:], 49)
		})},
		{"zero hash", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[21:], 0)
		})},
		{"hash at theta", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[9:], 1000) // theta
			binary.LittleEndian.PutUint64(b[21:], 1000)
		})},
	}
	for _, tc := range cases {
		dst := NewUnion(10, testSeed)
		if err := dst.ImportFrom(tc.in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
		if dst.Estimate() != 0 {
			t.Errorf("%s: receiver mutated by rejected import", tc.name)
		}
	}
}
