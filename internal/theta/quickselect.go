package theta

import "fmt"

// QuickSelect is the HeapQuickSelectSketch-family Θ sketch used by the
// paper's evaluation (Section 7.1) and by Apache DataSketches as the default
// update sketch. It stores between k and 2k retained hashes below Θ in an
// open-addressing table; when the table reaches 2k entries it quick-selects
// the (k+1)-th smallest retained hash as the new Θ and discards everything
// at or above it, leaving exactly k entries. The estimate is retained/θ.
//
// Compared to KMV, updates are O(1) amortised (no heap maintenance) at the
// cost of a slightly larger memory footprint — which is exactly why the
// production library prefers it.
type QuickSelect struct {
	lgK       int
	k         int
	seed      uint64
	thetaLong uint64
	slots     []uint64 // open addressing, 0 = empty
	mask      uint64
	count     int
	scratch   []uint64 // reused by rebuild
}

// NewQuickSelect returns an empty QuickSelect sketch with 2^lgK nominal
// entries. lgK must be in [2, 26] (DataSketches allows 4..26; we accept ≥2
// so tests can exercise tiny sketches).
func NewQuickSelect(lgK int, seed uint64) *QuickSelect {
	if lgK < 2 || lgK > 26 {
		panic(fmt.Sprintf("theta: QuickSelect lgK must be in [2,26], got %d", lgK))
	}
	k := 1 << lgK
	// Table sized 4k: holds up to 2k entries at load factor ≤ 1/2.
	size := 4 * k
	return &QuickSelect{
		lgK:       lgK,
		k:         k,
		seed:      seed,
		thetaLong: MaxTheta,
		slots:     make([]uint64, size),
		mask:      uint64(size - 1),
		scratch:   make([]uint64, 0, 2*k),
	}
}

// Seed returns the hash seed.
func (s *QuickSelect) Seed() uint64 { return s.seed }

// SizeBytes estimates the sketch's resident heap footprint: the struct
// header plus its open-addressing slot table and rebuild scratch. Capacity,
// not length, is counted — the memory is resident either way.
func (s *QuickSelect) SizeBytes() int {
	return 96 + 8*(cap(s.slots)+cap(s.scratch))
}

// K returns the nominal entry count (2^lgK).
func (s *QuickSelect) K() int { return s.k }

// LgK returns log2 of the nominal entry count.
func (s *QuickSelect) LgK() int { return s.lgK }

// Update hashes key and processes it.
func (s *QuickSelect) Update(key uint64) { s.UpdateHash(HashKey(key, s.seed)) }

// UpdateHash processes an already-hashed element: reject if ≥ Θ, insert into
// the table (duplicates are no-ops), and rebuild when 2k entries accumulate.
func (s *QuickSelect) UpdateHash(h uint64) {
	if h >= s.thetaLong {
		return
	}
	if !s.insert(h) {
		return
	}
	if s.count >= 2*s.k {
		s.rebuild()
	}
}

// insert adds h to the table, reporting whether it was newly added.
func (s *QuickSelect) insert(h uint64) bool {
	i := (h * 0x9e3779b97f4a7c15) >> 32 & s.mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = h
			s.count++
			return true
		}
		if v == h {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// rebuild quick-selects the (k+1)-th smallest retained hash, adopts it as
// the new Θ, and rebuilds the table with the k entries strictly below it.
func (s *QuickSelect) rebuild() {
	s.scratch = s.scratch[:0]
	for _, v := range s.slots {
		if v != 0 {
			s.scratch = append(s.scratch, v)
		}
	}
	// (k+1)-th smallest = index k (0-based) of the sorted order.
	pivot := quickSelect(s.scratch, s.k)
	s.thetaLong = pivot
	for i := range s.slots {
		s.slots[i] = 0
	}
	s.count = 0
	for _, v := range s.scratch {
		if v < pivot {
			s.insert(v)
		}
	}
}

// Estimate returns retained/θ (exact count while Θ is still 2⁶⁴−1).
func (s *QuickSelect) Estimate() float64 {
	return estimate(s.count, s.thetaLong, false)
}

// ThetaLong returns the integer threshold.
func (s *QuickSelect) ThetaLong() uint64 { return s.thetaLong }

// Retained returns the number of stored hashes.
func (s *QuickSelect) Retained() int { return s.count }

// Retention appends the retained hashes to dst and returns it.
func (s *QuickSelect) Retention(dst []uint64) []uint64 {
	for _, v := range s.slots {
		if v != 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// Merge folds another Θ sketch into this one: Θ drops to the minimum of the
// two thresholds, entries at or above the new Θ are discarded, and the
// sketch rebuilds if it overflows — the paper's merge (Algorithm 1, lines
// 14–18) adapted to the k..2k retention policy.
func (s *QuickSelect) Merge(other Sketch) {
	if other.Seed() != s.seed {
		panic("theta: cannot merge sketches with different seeds")
	}
	if ot := other.ThetaLong(); ot < s.thetaLong {
		s.shrinkTheta(ot)
	}
	for _, h := range other.Retention(nil) {
		s.UpdateHash(h)
	}
}

// MergeHashes folds a batch of raw hashes (e.g. a local buffer from the
// concurrent framework) into the sketch.
func (s *QuickSelect) MergeHashes(hashes []uint64) {
	for _, h := range hashes {
		s.UpdateHash(h)
	}
}

// shrinkTheta lowers Θ to newTheta and evicts entries no longer below it.
func (s *QuickSelect) shrinkTheta(newTheta uint64) {
	if newTheta >= s.thetaLong {
		return
	}
	s.thetaLong = newTheta
	s.scratch = s.scratch[:0]
	for _, v := range s.slots {
		if v != 0 && v < newTheta {
			s.scratch = append(s.scratch, v)
		}
	}
	for i := range s.slots {
		s.slots[i] = 0
	}
	s.count = 0
	for _, v := range s.scratch {
		s.insert(v)
	}
}

// Reset restores the empty state without releasing capacity.
func (s *QuickSelect) Reset() {
	s.thetaLong = MaxTheta
	for i := range s.slots {
		s.slots[i] = 0
	}
	s.count = 0
}

// quickSelect returns the element with 0-based rank `rank` in ascending
// order, partially reordering a in place (Hoare selection with median-of-3
// pivoting; expected O(n)).
func quickSelect(a []uint64, rank int) uint64 {
	lo, hi := 0, len(a)-1
	for {
		if lo == hi {
			return a[lo]
		}
		p := partition(a, lo, hi)
		switch {
		case rank == p:
			return a[p]
		case rank < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// partition performs Lomuto partition with a median-of-3 pivot, returning
// the pivot's final index.
func partition(a []uint64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-3: order a[lo], a[mid], a[hi] and use the median as pivot.
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi] = a[hi], a[mid] // move pivot to end
	pivot := a[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi] = a[hi], a[i]
	return i
}
