package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

// frame strips the length prefix after checking it matches the payload.
func frame(t *testing.T, b []byte) []byte {
	t.Helper()
	if len(b) < 4 {
		t.Fatalf("frame shorter than its prefix: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if int(n) != len(b)-4 {
		t.Fatalf("length prefix %d != payload %d", n, len(b)-4)
	}
	return b[4:]
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		encode func() []byte
		want   Request
	}{
		{"ping", func() []byte { return AppendPing(nil, 7) }, Request{Op: OpPing, ID: 7}},
		{"names", func() []byte { return AppendNamesReq(nil, 9) }, Request{Op: OpNames, ID: 9}},
		{"create", func() []byte { return AppendCreate(nil, 1, FamilyTheta, "users") },
			Request{Op: OpCreate, ID: 1, Family: FamilyTheta, Name: []byte("users")}},
		{"drop", func() []byte { return AppendDrop(nil, 2, FamilyCountMin, "api.calls") },
			Request{Op: OpDrop, ID: 2, Family: FamilyCountMin, Name: []byte("api.calls")}},
		{"info", func() []byte { return AppendInfo(nil, 3, FamilyHLL, "x") },
			Request{Op: OpInfo, ID: 3, Family: FamilyHLL, Name: []byte("x")}},
		{"resize", func() []byte { return AppendResize(nil, 4, FamilyQuantiles, "lat", 8) },
			Request{Op: OpResize, ID: 4, Family: FamilyQuantiles, Name: []byte("lat"), Arg: 8}},
		{"query-estimate", func() []byte { return AppendQuery(nil, 5, FamilyTheta, QueryEstimate, "users", 0) },
			Request{Op: OpQuery, ID: 5, Family: FamilyTheta, Query: QueryEstimate, Name: []byte("users")}},
		{"query-quantile", func() []byte {
			return AppendQuery(nil, 6, FamilyQuantiles, QueryQuantile, "lat", math.Float64bits(0.99))
		}, Request{Op: OpQuery, ID: 6, Family: FamilyQuantiles, Query: QueryQuantile,
			Name: []byte("lat"), Arg: math.Float64bits(0.99)}},
		{"query-count", func() []byte { return AppendQuery(nil, 8, FamilyCountMin, QueryCount, "api.calls", 42) },
			Request{Op: OpQuery, ID: 8, Family: FamilyCountMin, Query: QueryCount,
				Name: []byte("api.calls"), Arg: 42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseRequest(frame(t, tc.encode()))
			if err != nil {
				t.Fatal(err)
			}
			if got.Op != tc.want.Op || got.ID != tc.want.ID || got.Family != tc.want.Family ||
				got.Query != tc.want.Query || got.Arg != tc.want.Arg ||
				!bytes.Equal(got.Name, tc.want.Name) {
				t.Fatalf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestBatchRoundTrip(t *testing.T) {
	items := []uint64{1, 2, 3, math.Float64bits(2.5), 1 << 63}
	b := AppendBatch(nil, 11, FamilyTheta, "users", items)
	req, err := ParseRequest(frame(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpBatch || req.ID != 11 || string(req.Name) != "users" {
		t.Fatalf("bad envelope: %+v", req)
	}
	if req.NumItems() != len(items) {
		t.Fatalf("NumItems = %d, want %d", req.NumItems(), len(items))
	}
	for i, want := range items {
		if got := req.Item(i); got != want {
			t.Fatalf("item %d = %d, want %d", i, got, want)
		}
	}
}

func TestAutoscaleRoundTrip(t *testing.T) {
	b := AppendAutoscale(nil, 12, "users", 2, 16, 250e3, 50e3)
	req, err := ParseRequest(frame(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpAutoscale || string(req.Name) != "users" ||
		req.MinShards != 2 || req.MaxShards != 16 || req.High != 250e3 || req.Low != 50e3 {
		t.Fatalf("bad autoscale request: %+v", req)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	status, id, body, err := ParseResponse(frame(t, AppendOKU64(nil, 21, math.Float64bits(123.5))))
	if err != nil || status != StatusOK || id != 21 {
		t.Fatalf("u64 response: status=%d id=%d err=%v", status, id, err)
	}
	if v := math.Float64frombits(binary.LittleEndian.Uint64(body)); v != 123.5 {
		t.Fatalf("decoded %v, want 123.5", v)
	}

	status, id, body, err = ParseResponse(frame(t, AppendError(nil, 22, "no such sketch")))
	if err != nil || status != StatusError || id != 22 || string(body) != "no such sketch" {
		t.Fatalf("error response: status=%d id=%d body=%q err=%v", status, id, body, err)
	}

	names := []string{"theta/users", "countmin/api.calls", ""}
	_, _, body, err = ParseResponse(frame(t, AppendOKNames(nil, 23, names[:2])))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseNames(body)
	if err != nil || len(got) != 2 || got[0] != names[0] || got[1] != names[1] {
		t.Fatalf("names = %v (err %v), want %v", got, err, names[:2])
	}

	inf := Info{Shards: 8, Writers: 4, Relaxation: 512, ShardRelaxation: 64, Eager: true}
	_, _, body, err = ParseResponse(frame(t, AppendOKInfo(nil, 24, inf)))
	if err != nil {
		t.Fatal(err)
	}
	gotInf, err := ParseInfo(body)
	if err != nil || gotInf != inf {
		t.Fatalf("info = %+v (err %v), want %+v", gotInf, err, inf)
	}
}

func TestParseRequestRejectsMalformed(t *testing.T) {
	valid := AppendQuery(nil, 1, FamilyTheta, QueryEstimate, "u", 0)[4:]
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"short-header", []byte{byte(OpPing), 0}},
		{"bad-op", []byte{0xee, 0, 0, 0, 0}},
		{"op-zero", []byte{0, 0, 0, 0, 0}},
		{"ping-trailing", append(AppendPing(nil, 1)[4:], 0xff)},
		{"bad-family", func() []byte {
			b := append([]byte(nil), valid...)
			b[headerLen] = 0x7f
			return b
		}()},
		{"bad-query", func() []byte {
			b := append([]byte(nil), valid...)
			b[headerLen+1] = 0x7f
			return b
		}()},
		{"zero-name", []byte{byte(OpCreate), 0, 0, 0, 0, byte(FamilyTheta), 0}},
		{"truncated-name", []byte{byte(OpCreate), 0, 0, 0, 0, byte(FamilyTheta), 5, 'a', 'b'}},
		{"query-missing-arg", AppendQuery(nil, 1, FamilyQuantiles, QueryQuantile, "u", 1)[4 : 4+headerLen+2+2]},
		{"query-trailing", append(append([]byte(nil), valid...), 1, 2, 3)},
		{"batch-count-mismatch", func() []byte {
			b := AppendBatch(nil, 1, FamilyTheta, "u", []uint64{1, 2})[4:]
			// corrupt the count field (follows family byte + name "u")
			binary.LittleEndian.PutUint32(b[headerLen+3:], 7)
			return b
		}()},
		{"batch-huge-count", func() []byte {
			b := AppendBatch(nil, 1, FamilyTheta, "u", []uint64{1})[4:]
			binary.LittleEndian.PutUint32(b[headerLen+3:], MaxBatchItems+1)
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseRequest(tc.payload); err == nil {
				t.Fatalf("ParseRequest accepted malformed payload %x", tc.payload)
			}
		})
	}
}

func TestReadFrame(t *testing.T) {
	var buf []byte
	src := AppendPing(nil, 5)
	src = AppendOKU32(src, 6, 99)
	r := bytes.NewReader(src)

	p1, err := ReadFrame(r, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseRequest(p1)
	if err != nil || req.Op != OpPing || req.ID != 5 {
		t.Fatalf("first frame: %+v err=%v", req, err)
	}
	p2, err := ReadFrame(r, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if status, id, _, err := ParseResponse(p2); err != nil || status != StatusOK || id != 6 {
		t.Fatalf("second frame: status=%d id=%d err=%v", status, id, err)
	}

	// Oversized length prefix: rejected before any allocation or read.
	huge := binary.LittleEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge), &buf); err != ErrFrameTooLarge {
		t.Fatalf("oversize: err = %v, want ErrFrameTooLarge", err)
	}

	// Truncated body: io error, not a short payload.
	trunc := binary.LittleEndian.AppendUint32(nil, 10)
	trunc = append(trunc, 1, 2, 3)
	if _, err := ReadFrame(bytes.NewReader(trunc), &buf); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestValidName(t *testing.T) {
	if err := ValidName("users.daily"); err != nil {
		t.Fatal(err)
	}
	if err := ValidName(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := ValidName(strings.Repeat("n", MaxName+1)); err == nil {
		t.Fatal("overlong name accepted")
	}
}

// TestEncodersAppendInPlace pins the allocation discipline encode-side: an
// Append* call into a buffer with spare capacity must not allocate, which is
// what keeps the client's per-connection write buffer reuse zero-alloc.
func TestEncodersAppendInPlace(t *testing.T) {
	buf := make([]byte, 0, 4096)
	items := []uint64{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendBatch(buf[:0], 1, FamilyTheta, "users", items)
		buf = AppendQuery(buf[:0], 2, FamilyTheta, QueryEstimate, "users", 0)
		buf = AppendOKU64(buf[:0], 3, 9)
	})
	if allocs != 0 {
		t.Fatalf("encoders allocated %.1f/run into a pre-sized buffer", allocs)
	}
}

// TestAppendOKNamesBounded pins that the Names response can never exceed
// MaxFrame: an oversized registry listing is truncated to what fits, and
// the truncated frame still parses cleanly.
func TestAppendOKNamesBounded(t *testing.T) {
	name := "countmin/" + strings.Repeat("n", 100)
	names := make([]string, 15_000) // ~1.6 MiB if unbounded
	for i := range names {
		names[i] = name
	}
	b := AppendOKNames(nil, 1, names)
	payload := frame(t, b)
	if len(payload) > MaxFrame {
		t.Fatalf("Names response payload %d exceeds MaxFrame", len(payload))
	}
	_, _, body, err := ParseResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseNames(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(names) {
		t.Fatalf("truncated list has %d entries, want 0 < n < %d", len(got), len(names))
	}
	for _, n := range got {
		if n != name {
			t.Fatal("truncation corrupted an entry")
		}
	}
}

func TestViewOpsRoundTrip(t *testing.T) {
	// EnableView carries two nanosecond scalars; a negative maxAge (never
	// expire) must survive the uint64 transit bit-exactly.
	neverExpire := ^uint64(0) // int64(-1) in transit
	b := AppendEnableView(nil, 31, "users", 50_000_000, neverExpire)
	req, err := ParseRequest(frame(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpEnableView || req.ID != 31 || string(req.Name) != "users" ||
		req.Arg != 50_000_000 || req.Arg2 != neverExpire {
		t.Fatalf("bad enable-view request: %+v", req)
	}
	if int64(req.Arg2) != -1 {
		t.Fatalf("maxAge sign lost in transit: %d", int64(req.Arg2))
	}

	b = AppendDisableView(nil, 32, "users")
	req, err = ParseRequest(frame(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpDisableView || req.ID != 32 || string(req.Name) != "users" {
		t.Fatalf("bad disable-view request: %+v", req)
	}

	// Truncated enable-view bodies are rejected, id preserved.
	full := AppendEnableView(nil, 33, "u", 1, 2)[4:]
	for cut := len(full) - 1; cut >= headerLen; cut-- {
		req, err := ParseRequest(full[:cut])
		if err == nil {
			t.Fatalf("truncated enable-view at %d bytes accepted", cut)
		}
		if req.ID != 33 {
			t.Fatalf("truncated enable-view lost id: %d", req.ID)
		}
	}
}

func TestWindowOpsRoundTrip(t *testing.T) {
	// EnableWindow carries the rotation interval, the ring capacity and the
	// decay factor; the float64 decay must survive its bits transit exactly.
	b := AppendEnableWindow(nil, 41, "users", 30_000_000_000, 12, 0.875)
	req, err := ParseRequest(frame(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpEnableWindow || req.ID != 41 || string(req.Name) != "users" ||
		req.Arg != 30_000_000_000 || req.Slots != 12 ||
		math.Float64frombits(req.Arg2) != 0.875 {
		t.Fatalf("bad enable-window request: %+v", req)
	}

	b = AppendDisableWindow(nil, 42, "users")
	req, err = ParseRequest(frame(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpDisableWindow || req.ID != 42 || string(req.Name) != "users" {
		t.Fatalf("bad disable-window request: %+v", req)
	}

	// Truncated enable-window bodies are rejected at every cut, id preserved.
	full := AppendEnableWindow(nil, 43, "u", 1, 2, 0.5)[4:]
	for cut := len(full) - 1; cut >= headerLen; cut-- {
		req, err := ParseRequest(full[:cut])
		if err == nil {
			t.Fatalf("truncated enable-window at %d bytes accepted", cut)
		}
		if req.ID != 43 {
			t.Fatalf("truncated enable-window lost id: %d", req.ID)
		}
	}
	// Trailing bytes are rejected too — the body must be consumed exactly.
	if _, err := ParseRequest(append(append([]byte(nil), full...), 0xCC)); err == nil {
		t.Fatal("enable-window with trailing byte accepted")
	}
}

func TestWindowQueryKindsRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		family Family
		query  Query
		arg    uint64
	}{
		{"theta-window-estimate", FamilyTheta, QueryWindowEstimate, 0},
		{"hll-window-estimate", FamilyHLL, QueryWindowEstimate, 0},
		{"window-quantile", FamilyQuantiles, QueryWindowQuantile, math.Float64bits(0.5)},
		{"window-quantiles-n", FamilyQuantiles, QueryWindowN, 0},
		{"window-count", FamilyCountMin, QueryWindowCount, 99},
		{"window-countmin-n", FamilyCountMin, QueryWindowN, 0},
		{"decayed-count", FamilyCountMin, QueryDecayedCount, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := AppendQuery(nil, 51, tc.family, tc.query, "w", tc.arg)
			req, err := ParseRequest(frame(t, b))
			if err != nil {
				t.Fatal(err)
			}
			if req.Op != OpQuery || req.Family != tc.family || req.Query != tc.query ||
				string(req.Name) != "w" || req.Arg != tc.arg {
				t.Fatalf("got %+v", req)
			}
			// The keyed/ranked kinds carry an argument, the scalar kinds don't;
			// the encoder and parser must agree through NeedsArg.
			wantArg := tc.query == QueryWindowQuantile || tc.query == QueryWindowCount ||
				tc.query == QueryDecayedCount
			if NeedsArg(tc.query) != wantArg {
				t.Fatalf("NeedsArg = %v, want %v", NeedsArg(tc.query), wantArg)
			}
		})
	}
}

func TestInfoWindowFieldsRoundTrip(t *testing.T) {
	inf := Info{Shards: 4, Writers: 2, Relaxation: 128, ShardRelaxation: 32,
		WindowEnabled: true, WindowSlots: 6,
		WindowIntervalNs: 60_000_000_000, WindowRotations: 42, WindowLiveAgeNs: 12_345_678}
	_, _, body, err := ParseResponse(frame(t, AppendOKInfo(nil, 27, inf)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseInfo(body)
	if err != nil || got != inf {
		t.Fatalf("info = %+v (err %v), want %+v", got, err, inf)
	}
	// Window absent: every window field must decode as zero.
	inf = Info{Shards: 4, Writers: 2, Relaxation: 128, ShardRelaxation: 32}
	_, _, body, _ = ParseResponse(frame(t, AppendOKInfo(nil, 28, inf)))
	if got, err := ParseInfo(body); err != nil || got != inf {
		t.Fatalf("window-less info = %+v (err %v), want %+v", got, err, inf)
	}
	// A truncated info body is a typed error at every cut.
	full := AppendOKInfo(nil, 29, inf)[4:]
	_, _, body, err = ParseResponse(full)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(body) - 1; cut >= 0; cut-- {
		if _, err := ParseInfo(body[:cut]); err == nil {
			t.Fatalf("truncated info body at %d bytes accepted", cut)
		}
	}
}

func TestInfoViewFieldsRoundTrip(t *testing.T) {
	inf := Info{Shards: 4, Writers: 2, Relaxation: 128, ShardRelaxation: 32,
		Eager: true, ViewEnabled: true, ViewLagNs: 1_500_000}
	_, _, body, err := ParseResponse(frame(t, AppendOKInfo(nil, 25, inf)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseInfo(body)
	if err != nil || got != inf {
		t.Fatalf("info = %+v (err %v), want %+v", got, err, inf)
	}
	// And with the view absent: the flag and lag must decode as zero.
	inf.ViewEnabled = false
	inf.ViewLagNs = 0
	_, _, body, _ = ParseResponse(frame(t, AppendOKInfo(nil, 26, inf)))
	if got, err := ParseInfo(body); err != nil || got != inf {
		t.Fatalf("view-less info = %+v (err %v), want %+v", got, err, inf)
	}
}
