// Package wire defines the length-prefixed binary protocol spoken between
// sketchd (internal/server over a fastsketches.Registry) and the client
// library (fastsketches/client) — the serving layer's wire format.
//
// # Framing
//
// Every message, in both directions, is one frame:
//
//	uint32 LE payload length | payload          (length ≤ MaxFrame)
//
// A request payload is
//
//	uint8 op | uint32 LE request id | op-specific body
//
// and a response payload is
//
//	uint8 status | uint32 LE request id | body
//
// where status is StatusOK (body is op-specific) or StatusError (body is a
// UTF-8 error message). The request id is chosen by the client and echoed
// verbatim, which is what makes pipelining work: a client may have many
// requests in flight on one connection and match responses by id. The
// server answers requests of one connection in order, so ids are a
// convenience for the client, not a reordering license.
//
// # Ops
//
//	OpPing       liveness probe                          → empty
//	OpBatch      batched ingest: many items, one frame   → uint32 ack count
//	OpQuery      merged query (see Query kinds)          → 8-byte result
//	OpCreate     create the named sketch                 → empty
//	OpResize     live-reshard the named sketch           → empty
//	OpAutoscale  attach an autoscaling controller        → empty
//	OpDrop       close and remove the named sketch       → empty
//	OpNames      enumerate registered sketches           → name list
//	OpInfo       metadata for the named sketch           → Info
//	OpEnableView   materialize the named sketch's merged view  → empty
//	OpDisableView  drop the named sketch's merged view         → empty
//	OpSnapshot     export the named sketch's merged state      → portable snapshot record
//	OpRestore      fold a portable snapshot into the named sketch  → empty
//	OpMergeRemote  pull a sketch from another daemon and fold it   → empty
//	OpCheckpoint   write the server's checkpoint file now          → empty
//	OpOpsStats     lifecycle sweeper / memory-budget counters      → OpsStats
//	OpEnableWindow   declare a sliding window on the named sketches  → empty
//	OpDisableWindow  collapse the named sketches' windows            → empty
//
// Batch items are fixed 8-byte words: uint64 keys for Θ/HLL/Count-Min,
// IEEE-754 bits (math.Float64bits) for quantiles values. Fixed-size items
// keep encode/decode allocation-free and let the server fan a batch into
// writer-lane chunks without reparsing.
//
// # Allocation discipline
//
// Encoders are append-style (Append* returns the extended buffer) and
// parsers return views into the input payload (Request.Name and
// Request.Items alias the parse buffer and are valid only until its next
// reuse), so both sides can run their steady-state hot paths — batched
// ingest and pipelined scalar queries — with zero allocations per frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

const (
	// MaxFrame caps one frame's payload. Frames announcing a larger length
	// are rejected before any allocation, so a malicious or corrupt length
	// prefix cannot balloon server memory.
	MaxFrame = 1 << 20
	// MaxName is the longest sketch name on the wire (uint8 length prefix).
	MaxName = 255
	// ItemSize is the wire size of one batch item: a uint64 key or the
	// IEEE-754 bits of a float64 value.
	ItemSize = 8
	// HeaderLen is the fixed request/response header: op/status (1) +
	// request id (4). A payload of at least HeaderLen bytes is addressable —
	// its request id is readable — so a server can answer even a
	// semantically malformed request with a typed error on the same
	// connection instead of dropping it.
	HeaderLen = 5
	// headerLen is HeaderLen, package-internal shorthand.
	headerLen = HeaderLen
	// MaxBatchItems is the largest item count one OpBatch frame can carry
	// within MaxFrame (header, family, name, count prefix accounted).
	MaxBatchItems = (MaxFrame - headerLen - 2 - MaxName - 4) / ItemSize
	// MaxShards bounds any shard count travelling on the wire (OpResize,
	// OpAutoscale bounds). Far above any sane deployment, low enough that
	// one malicious frame cannot make the server build billions of shard
	// frameworks; receivers reject values outside [1, MaxShards].
	MaxShards = 4096
	// MaxAddr is the longest peer address an OpMergeRemote request may name
	// (uint16 length prefix; host:port and bracketed IPv6 fit comfortably).
	MaxAddr = 512
	// MaxBlob is the largest snapshot blob an OpRestore frame can carry
	// within MaxFrame (header, family, name, count prefix accounted). An
	// OpSnapshot response is bounded the same way: a sketch whose portable
	// snapshot would exceed the frame budget is reported as a typed error,
	// never an oversized frame.
	MaxBlob = MaxFrame - headerLen - 2 - MaxName - 4
)

// Op identifies a request's operation.
type Op uint8

// The request operations.
const (
	OpPing Op = iota + 1
	OpBatch
	OpQuery
	OpCreate
	OpResize
	OpAutoscale
	OpDrop
	OpNames
	OpInfo
	OpEnableView
	OpDisableView
	OpSnapshot
	OpRestore
	OpMergeRemote
	OpCheckpoint
	OpOpsStats
	OpEnableWindow
	OpDisableWindow
	opMax
)

// Family identifies a sketch family on the wire. The string forms (used by
// the registry's enumeration hooks) are produced by Family.String.
type Family uint8

// The sketch families.
const (
	FamilyTheta Family = iota + 1
	FamilyHLL
	FamilyQuantiles
	FamilyCountMin
	familyMax
)

// String returns the registry-facing family name.
func (f Family) String() string {
	switch f {
	case FamilyTheta:
		return "theta"
	case FamilyHLL:
		return "hll"
	case FamilyQuantiles:
		return "quantiles"
	case FamilyCountMin:
		return "countmin"
	}
	return fmt.Sprintf("family(%d)", uint8(f))
}

// Query identifies a merged-query kind within OpQuery.
type Query uint8

// The query kinds. Estimate serves Θ/HLL distinct counts; Quantile, Rank
// and N serve the quantiles family (N also serves Count-Min total weight);
// Count is the Count-Min per-key frequency (single-shard staleness bound).
//
// The Window* kinds answer over the sketch's declared sliding window (the
// last Slots closed intervals plus the live one) instead of the cumulative
// stream, and DecayedCount over the Count-Min exponentially time-decayed
// plane. They fail as typed errors when the named sketch has no window
// declared (OpEnableWindow, Spec.Window, or the server's default window).
const (
	QueryEstimate Query = iota + 1
	QueryQuantile
	QueryRank
	QueryN
	QueryCount
	QueryWindowEstimate
	QueryWindowQuantile
	QueryWindowN
	QueryWindowCount
	QueryDecayedCount
	queryMax
)

// NeedsArg reports whether the query kind carries an 8-byte argument
// (Quantile/WindowQuantile: phi bits, Rank: value bits,
// Count/WindowCount/DecayedCount: key).
func NeedsArg(q Query) bool {
	switch q {
	case QueryQuantile, QueryRank, QueryCount,
		QueryWindowQuantile, QueryWindowCount, QueryDecayedCount:
		return true
	}
	return false
}

// Response statuses.
const (
	StatusOK    = 0
	StatusError = 1
)

// The protocol's parse errors. ParseRequest/ParseResponse return one of
// these (possibly wrapped with context); they never panic on any input.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated payload")
	ErrTrailing      = errors.New("wire: trailing bytes after payload")
	ErrBadOp         = errors.New("wire: unknown op")
	ErrBadFamily     = errors.New("wire: unknown family")
	ErrBadQuery      = errors.New("wire: unknown query kind")
	ErrBadName       = errors.New("wire: bad sketch name")
	ErrBadCount      = errors.New("wire: item count does not match payload")
	ErrBadStatus     = errors.New("wire: unknown response status")
	ErrBadBlob       = errors.New("wire: blob length does not match payload")
	ErrBadAddr       = errors.New("wire: bad remote address")
	ErrBlobTooLarge  = errors.New("wire: snapshot blob exceeds frame budget")
)

// ValidName reports whether a sketch name fits the wire format (1..MaxName
// bytes).
func ValidName(name string) error {
	if len(name) == 0 || len(name) > MaxName {
		return fmt.Errorf("%w: length %d outside [1,%d]", ErrBadName, len(name), MaxName)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r into *buf (grown as
// needed, reused across calls) and returns the payload view. A length
// prefix beyond MaxFrame fails before any read or allocation.
func ReadFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	// The length prefix is read through the reusable buffer too: a local
	// array would escape through the io.ReadFull interface call and cost
	// one allocation per frame.
	if cap(*buf) < 4 {
		*buf = make([]byte, 64)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b, nil
}

// beginFrame reserves the 4-byte length prefix; endFrame backfills it.
func beginFrame(dst []byte) ([]byte, int) {
	return append(dst, 0, 0, 0, 0), len(dst)
}

func endFrame(dst []byte, mark int) []byte {
	binary.LittleEndian.PutUint32(dst[mark:], uint32(len(dst)-mark-4))
	return dst
}

func appendHeader(dst []byte, first byte, id uint32) []byte {
	dst = append(dst, first)
	return binary.LittleEndian.AppendUint32(dst, id)
}

func appendName(dst []byte, name string) []byte {
	dst = append(dst, byte(len(name)))
	return append(dst, name...)
}

// AppendPing appends an OpPing request frame.
func AppendPing(dst []byte, id uint32) []byte {
	dst, m := beginFrame(dst)
	return endFrame(appendHeader(dst, byte(OpPing), id), m)
}

// AppendNamesReq appends an OpNames request frame.
func AppendNamesReq(dst []byte, id uint32) []byte {
	dst, m := beginFrame(dst)
	return endFrame(appendHeader(dst, byte(OpNames), id), m)
}

// appendFamName appends a request frame of shape op|id|family|name.
func appendFamName(dst []byte, op Op, id uint32, fam Family, name string) ([]byte, int) {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, byte(op), id)
	dst = append(dst, byte(fam))
	return appendName(dst, name), m
}

// AppendCreate appends an OpCreate request frame.
func AppendCreate(dst []byte, id uint32, fam Family, name string) []byte {
	dst, m := appendFamName(dst, OpCreate, id, fam, name)
	return endFrame(dst, m)
}

// AppendDrop appends an OpDrop request frame.
func AppendDrop(dst []byte, id uint32, fam Family, name string) []byte {
	dst, m := appendFamName(dst, OpDrop, id, fam, name)
	return endFrame(dst, m)
}

// AppendInfo appends an OpInfo request frame.
func AppendInfo(dst []byte, id uint32, fam Family, name string) []byte {
	dst, m := appendFamName(dst, OpInfo, id, fam, name)
	return endFrame(dst, m)
}

// AppendResize appends an OpResize request frame.
func AppendResize(dst []byte, id uint32, fam Family, name string, shards int) []byte {
	dst, m := appendFamName(dst, OpResize, id, fam, name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(shards))
	return endFrame(dst, m)
}

// AppendAutoscale appends an OpAutoscale request frame. The policy travels
// as its four load-bearing knobs (shard bounds and water marks); the server
// fills the remaining policy fields with production defaults.
func AppendAutoscale(dst []byte, id uint32, name string, minShards, maxShards int, high, low float64) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, byte(OpAutoscale), id)
	dst = appendName(dst, name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(minShards))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(maxShards))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(high))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(low))
	return endFrame(dst, m)
}

// AppendEnableView appends an OpEnableView request frame: materialize the
// merged view of every sketch registered under name. refreshNs is the
// refresh interval in nanoseconds (0 = server default); maxAgeNs is the
// maximum served view age in nanoseconds before queries fall back to the
// live fold (0 = server default, derived from the refresh interval).
func AppendEnableView(dst []byte, id uint32, name string, refreshNs, maxAgeNs uint64) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, byte(OpEnableView), id)
	dst = appendName(dst, name)
	dst = binary.LittleEndian.AppendUint64(dst, refreshNs)
	dst = binary.LittleEndian.AppendUint64(dst, maxAgeNs)
	return endFrame(dst, m)
}

// AppendDisableView appends an OpDisableView request frame.
func AppendDisableView(dst []byte, id uint32, name string) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, byte(OpDisableView), id)
	return endFrame(appendName(dst, name), m)
}

// AppendEnableWindow appends an OpEnableWindow request frame: declare a
// sliding window on every sketch registered under name. intervalNs is the
// rotation interval in nanoseconds (required, > 0); slots the closed-interval
// capacity (0 = server default); decay the Count-Min exponential decay factor
// in [0,1) (0 = none; rejected by the server for families without a linearly
// scalable state).
func AppendEnableWindow(dst []byte, id uint32, name string, intervalNs uint64, slots uint32, decay float64) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, byte(OpEnableWindow), id)
	dst = appendName(dst, name)
	dst = binary.LittleEndian.AppendUint64(dst, intervalNs)
	dst = binary.LittleEndian.AppendUint32(dst, slots)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(decay))
	return endFrame(dst, m)
}

// AppendDisableWindow appends an OpDisableWindow request frame: collapse the
// named sketches' windows back into their cumulative state (no counts lost).
func AppendDisableWindow(dst []byte, id uint32, name string) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, byte(OpDisableWindow), id)
	return endFrame(appendName(dst, name), m)
}

// AppendSnapshotReq appends an OpSnapshot request frame: export the named
// sketch's merged state as a portable snapshot record (the success response
// body).
func AppendSnapshotReq(dst []byte, id uint32, fam Family, name string) []byte {
	dst, m := appendFamName(dst, OpSnapshot, id, fam, name)
	return endFrame(dst, m)
}

// AppendRestore appends an OpRestore request frame folding a portable
// snapshot record (as returned by OpSnapshot) into the named sketch. The
// blob is opaque to the wire layer; callers cap len(blob) at MaxBlob.
func AppendRestore(dst []byte, id uint32, fam Family, name string, blob []byte) []byte {
	dst, m := appendFamName(dst, OpRestore, id, fam, name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blob)))
	dst = append(dst, blob...)
	return endFrame(dst, m)
}

// AppendMergeRemote appends an OpMergeRemote request frame: the server dials
// addr (another sketchd), pulls the named sketch's snapshot over OpSnapshot,
// and folds it into its local sketch of the same family and name.
func AppendMergeRemote(dst []byte, id uint32, fam Family, name, addr string) []byte {
	dst, m := appendFamName(dst, OpMergeRemote, id, fam, name)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(addr)))
	dst = append(dst, addr...)
	return endFrame(dst, m)
}

// AppendCheckpointReq appends an OpCheckpoint request frame: write the
// server's checkpoint file now (fails as a typed error when the server runs
// without one configured).
func AppendCheckpointReq(dst []byte, id uint32) []byte {
	dst, m := beginFrame(dst)
	return endFrame(appendHeader(dst, byte(OpCheckpoint), id), m)
}

// AppendOpsStatsReq appends an OpOpsStats request frame: report the
// server's lifecycle sweeper and memory-budget counters (fails as a typed
// error when the server runs without an ops manager configured).
func AppendOpsStatsReq(dst []byte, id uint32) []byte {
	dst, m := beginFrame(dst)
	return endFrame(appendHeader(dst, byte(OpOpsStats), id), m)
}

// AppendOKBytes appends a success response whose body is an opaque byte
// blob (the OpSnapshot response). Callers cap len(body) so the frame stays
// within MaxFrame.
func AppendOKBytes(dst []byte, id uint32, body []byte) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, StatusOK, id)
	dst = append(dst, body...)
	return endFrame(dst, m)
}

// AppendBatch appends an OpBatch request frame carrying len(items) 8-byte
// items. Callers cap len(items) at MaxBatchItems (the client's Batch
// splits); items beyond that would exceed MaxFrame and be rejected by the
// receiver.
func AppendBatch(dst []byte, id uint32, fam Family, name string, items []uint64) []byte {
	dst, m := appendFamName(dst, OpBatch, id, fam, name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(items)))
	for _, it := range items {
		dst = binary.LittleEndian.AppendUint64(dst, it)
	}
	return endFrame(dst, m)
}

// AppendQuery appends an OpQuery request frame. arg is consumed only for
// kinds with NeedsArg (phi/value bits, or the Count-Min key).
func AppendQuery(dst []byte, id uint32, fam Family, q Query, name string, arg uint64) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, byte(OpQuery), id)
	dst = append(dst, byte(fam), byte(q))
	dst = appendName(dst, name)
	if NeedsArg(q) {
		dst = binary.LittleEndian.AppendUint64(dst, arg)
	}
	return endFrame(dst, m)
}

// AppendOK appends an empty-body success response frame.
func AppendOK(dst []byte, id uint32) []byte {
	dst, m := beginFrame(dst)
	return endFrame(appendHeader(dst, StatusOK, id), m)
}

// AppendOKU32 appends a success response with a uint32 body (batch acks).
func AppendOKU32(dst []byte, id uint32, v uint32) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, StatusOK, id)
	dst = binary.LittleEndian.AppendUint32(dst, v)
	return endFrame(dst, m)
}

// AppendOKU64 appends a success response with a uint64 body (counts, or
// float64 bits for estimates/quantiles/ranks).
func AppendOKU64(dst []byte, id uint32, v uint64) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, StatusOK, id)
	dst = binary.LittleEndian.AppendUint64(dst, v)
	return endFrame(dst, m)
}

// AppendError appends an error response. Messages are truncated to fit
// MaxFrame.
func AppendError(dst []byte, id uint32, msg string) []byte {
	const maxMsg = 1 << 10
	if len(msg) > maxMsg {
		msg = msg[:maxMsg]
	}
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, StatusError, id)
	dst = append(dst, msg...)
	return endFrame(dst, m)
}

// AppendOKNames appends the OpNames response: uint32 count, then uint16
// length + bytes per name. The list is truncated to whatever fits MaxFrame
// (tens of thousands of names) — the server must never emit a frame its
// own protocol forbids, which would poison the client connection.
func AppendOKNames(dst []byte, id uint32, names []string) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, StatusOK, id)
	countAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	count := uint32(0)
	budget := MaxFrame - headerLen - 4
	for _, n := range names {
		if budget -= 2 + len(n); budget < 0 {
			break
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(n)))
		dst = append(dst, n...)
		count++
	}
	binary.LittleEndian.PutUint32(dst[countAt:], count)
	return endFrame(dst, m)
}

// Info is the OpInfo response: the served sketch's shard/lane geometry and
// its live staleness bounds, mirroring the registry's SketchInfo. A served
// merged query's staleness is exactly the in-process bound — Relaxation =
// S·r — because the server answers through the same QueryInto plane.
type Info struct {
	Shards          int
	Writers         int
	Relaxation      uint64
	ShardRelaxation uint64
	Eager           bool
	// ViewEnabled reports whether a materialized merged view serves the
	// sketch's aggregate queries; ViewLagNs is the age (nanoseconds) of its
	// latest published refresh — the extra staleness term on top of
	// Relaxation. Zero when no view is enabled.
	ViewEnabled bool
	ViewLagNs   uint64
	// WindowEnabled reports whether a sliding window is declared on the
	// sketch; the remaining fields echo its shape and liveness. WindowSlots
	// and WindowIntervalNs are the declared geometry, WindowRotations counts
	// ring rotations since enable, and WindowLiveAgeNs is the live
	// interval's age — when it exceeds WindowIntervalNs the difference is
	// the rotation lag. All zero when no window is declared.
	WindowEnabled    bool
	WindowSlots      uint32
	WindowIntervalNs uint64
	WindowRotations  uint64
	WindowLiveAgeNs  uint64
}

const infoLen = 4 + 4 + 8 + 8 + 1 + 1 + 8 + 1 + 4 + 8 + 8 + 8

// AppendOKInfo appends the OpInfo success response.
func AppendOKInfo(dst []byte, id uint32, inf Info) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, StatusOK, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(inf.Shards))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(inf.Writers))
	dst = binary.LittleEndian.AppendUint64(dst, inf.Relaxation)
	dst = binary.LittleEndian.AppendUint64(dst, inf.ShardRelaxation)
	var eager byte
	if inf.Eager {
		eager = 1
	}
	dst = append(dst, eager)
	var viewed byte
	if inf.ViewEnabled {
		viewed = 1
	}
	dst = append(dst, viewed)
	dst = binary.LittleEndian.AppendUint64(dst, inf.ViewLagNs)
	var windowed byte
	if inf.WindowEnabled {
		windowed = 1
	}
	dst = append(dst, windowed)
	dst = binary.LittleEndian.AppendUint32(dst, inf.WindowSlots)
	dst = binary.LittleEndian.AppendUint64(dst, inf.WindowIntervalNs)
	dst = binary.LittleEndian.AppendUint64(dst, inf.WindowRotations)
	dst = binary.LittleEndian.AppendUint64(dst, inf.WindowLiveAgeNs)
	return endFrame(dst, m)
}

// OpsStats is the OpOpsStats response: the server-side lifecycle sweeper's
// counters (sweeps run, idle-TTL evictions, memory-budget sheds and
// shrinks) and its latest gauges (estimated resident sketch bytes, the
// configured budget, and the live sketch count).
type OpsStats struct {
	Sweeps        int64
	Evictions     int64
	BudgetSheds   int64
	BudgetShrinks int64
	ResidentBytes int64
	BudgetBytes   int64
	Sketches      int64
}

const opsStatsLen = 7 * 8

// AppendOKOpsStats appends the OpOpsStats success response.
func AppendOKOpsStats(dst []byte, id uint32, st OpsStats) []byte {
	dst, m := beginFrame(dst)
	dst = appendHeader(dst, StatusOK, id)
	for _, v := range [...]int64{
		st.Sweeps, st.Evictions, st.BudgetSheds, st.BudgetShrinks,
		st.ResidentBytes, st.BudgetBytes, st.Sketches,
	} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return endFrame(dst, m)
}

// ParseOpsStats decodes an OpOpsStats response body.
func ParseOpsStats(body []byte) (OpsStats, error) {
	if len(body) != opsStatsLen {
		return OpsStats{}, ErrTruncated
	}
	c := cursor{b: body}
	st := OpsStats{
		Sweeps:        int64(c.u64()),
		Evictions:     int64(c.u64()),
		BudgetSheds:   int64(c.u64()),
		BudgetShrinks: int64(c.u64()),
		ResidentBytes: int64(c.u64()),
		BudgetBytes:   int64(c.u64()),
		Sketches:      int64(c.u64()),
	}
	return st, c.done()
}

// Request is one parsed request. Name and Items are views into the parse
// buffer and are valid only until the buffer's next reuse; Items holds
// NumItems() packed 8-byte words.
type Request struct {
	Op     Op
	ID     uint32
	Family Family
	Query  Query
	Name   []byte
	// Arg is the op-specific scalar: the resize shard count, the query
	// argument (float bits / key) for kinds with NeedsArg, the EnableView
	// refresh interval in nanoseconds, or the EnableWindow rotation
	// interval in nanoseconds.
	Arg uint64
	// Arg2 is the second op-specific scalar: the EnableView maximum view
	// age in nanoseconds, or the EnableWindow decay factor bits.
	Arg2 uint64
	// Slots is the OpEnableWindow closed-interval capacity (0 = default).
	Slots uint32
	// MinShards/MaxShards/High/Low are the OpAutoscale policy knobs.
	MinShards, MaxShards uint32
	High, Low            float64
	Items                []byte
	// Blob is the OpRestore snapshot payload (a view into the parse buffer,
	// like Name and Items).
	Blob []byte
	// Addr is the OpMergeRemote peer address (a view into the parse buffer).
	Addr []byte
}

// NumItems returns the batch item count.
func (r *Request) NumItems() int { return len(r.Items) / ItemSize }

// Item returns batch item i as its 8-byte word.
func (r *Request) Item(i int) uint64 {
	return binary.LittleEndian.Uint64(r.Items[i*ItemSize:])
}

// cursor is a bounds-checked sequential reader over a payload body.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) u8() byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 1 {
		c.err = ErrTruncated
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u16() uint16 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 2 {
		c.err = ErrTruncated
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 4 {
		c.err = ErrTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.err = ErrTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) name() []byte {
	n := int(c.u8())
	if c.err != nil {
		return nil
	}
	if n == 0 {
		c.err = ErrBadName
		return nil
	}
	if len(c.b) < n {
		c.err = ErrTruncated
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) family() Family {
	f := Family(c.u8())
	if c.err == nil && (f < FamilyTheta || f >= familyMax) {
		c.err = ErrBadFamily
	}
	return f
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return ErrTrailing
	}
	return nil
}

// ParseRequest parses one request payload. The returned Request's ID is
// populated whenever the header was readable, even on error, so servers can
// address their error response. Never panics on any input.
func ParseRequest(p []byte) (Request, error) {
	var req Request
	if len(p) < headerLen {
		return req, ErrTruncated
	}
	req.Op = Op(p[0])
	req.ID = binary.LittleEndian.Uint32(p[1:5])
	if req.Op < OpPing || req.Op >= opMax {
		return req, ErrBadOp
	}
	c := cursor{b: p[headerLen:]}
	switch req.Op {
	case OpPing, OpNames, OpCheckpoint, OpOpsStats:
		// empty body
	case OpCreate, OpDrop, OpInfo, OpSnapshot:
		req.Family = c.family()
		req.Name = c.name()
	case OpRestore:
		req.Family = c.family()
		req.Name = c.name()
		n := c.u32()
		if c.err == nil {
			if n > MaxBlob || int(n) != len(c.b) {
				return req, ErrBadBlob
			}
			req.Blob = c.b
			c.b = nil
		}
	case OpMergeRemote:
		req.Family = c.family()
		req.Name = c.name()
		n := c.u16()
		if c.err == nil {
			if n == 0 || n > MaxAddr || int(n) != len(c.b) {
				return req, ErrBadAddr
			}
			req.Addr = c.b
			c.b = nil
		}
	case OpResize:
		req.Family = c.family()
		req.Name = c.name()
		req.Arg = uint64(c.u32())
	case OpAutoscale:
		req.Name = c.name()
		req.MinShards = c.u32()
		req.MaxShards = c.u32()
		req.High = math.Float64frombits(c.u64())
		req.Low = math.Float64frombits(c.u64())
	case OpEnableView:
		req.Name = c.name()
		req.Arg = c.u64()
		req.Arg2 = c.u64()
	case OpDisableView, OpDisableWindow:
		req.Name = c.name()
	case OpEnableWindow:
		req.Name = c.name()
		req.Arg = c.u64()
		req.Slots = c.u32()
		req.Arg2 = c.u64()
	case OpBatch:
		req.Family = c.family()
		req.Name = c.name()
		n := c.u32()
		if c.err == nil {
			if n > MaxBatchItems || int(n)*ItemSize != len(c.b) {
				return req, ErrBadCount
			}
			req.Items = c.b
			c.b = nil
		}
	case OpQuery:
		req.Family = c.family()
		req.Query = Query(c.u8())
		if c.err == nil && (req.Query < QueryEstimate || req.Query >= queryMax) {
			return req, ErrBadQuery
		}
		req.Name = c.name()
		if NeedsArg(req.Query) {
			req.Arg = c.u64()
		}
	}
	return req, c.done()
}

// ParseResponse splits one response payload into status, id and body view.
func ParseResponse(p []byte) (status byte, id uint32, body []byte, err error) {
	if len(p) < headerLen {
		return 0, 0, nil, ErrTruncated
	}
	status = p[0]
	if status != StatusOK && status != StatusError {
		return 0, 0, nil, ErrBadStatus
	}
	return status, binary.LittleEndian.Uint32(p[1:5]), p[headerLen:], nil
}

// ParseNames decodes an OpNames response body.
func ParseNames(body []byte) ([]string, error) {
	c := cursor{b: body}
	n := c.u32()
	if c.err != nil {
		return nil, c.err
	}
	names := make([]string, 0, min(int(n), 1024))
	for i := 0; i < int(n); i++ {
		if c.err != nil {
			return nil, c.err
		}
		if len(c.b) < 2 {
			return nil, ErrTruncated
		}
		l := int(binary.LittleEndian.Uint16(c.b))
		c.b = c.b[2:]
		if len(c.b) < l {
			return nil, ErrTruncated
		}
		names = append(names, string(c.b[:l]))
		c.b = c.b[l:]
	}
	return names, c.done()
}

// ParseInfo decodes an OpInfo response body.
func ParseInfo(body []byte) (Info, error) {
	if len(body) != infoLen {
		return Info{}, ErrTruncated
	}
	c := cursor{b: body}
	inf := Info{
		Shards:          int(c.u32()),
		Writers:         int(c.u32()),
		Relaxation:      c.u64(),
		ShardRelaxation: c.u64(),
		Eager:           c.u8() == 1,
	}
	inf.ViewEnabled = c.u8() == 1
	inf.ViewLagNs = c.u64()
	inf.WindowEnabled = c.u8() == 1
	inf.WindowSlots = c.u32()
	inf.WindowIntervalNs = c.u64()
	inf.WindowRotations = c.u64()
	inf.WindowLiveAgeNs = c.u64()
	return inf, c.done()
}
