package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the full server-side decode
// path — framing, request parsing, and the response/names/info parsers the
// client uses — asserting none of them ever panic and that every accepted
// request re-encodes within protocol bounds. Malformed, truncated and
// oversized frames must come back as errors, never as crashes: this is the
// target CI's fuzz-smoke step drives against the network front-end.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendPing(nil, 1))
	f.Add(AppendNamesReq(nil, 2))
	f.Add(AppendCreate(nil, 3, FamilyTheta, "users"))
	f.Add(AppendDrop(nil, 4, FamilyHLL, "x"))
	f.Add(AppendInfo(nil, 5, FamilyCountMin, "api.calls"))
	f.Add(AppendResize(nil, 6, FamilyQuantiles, "lat", 8))
	f.Add(AppendAutoscale(nil, 7, "users", 2, 16, 250e3, 50e3))
	f.Add(AppendBatch(nil, 8, FamilyTheta, "users", []uint64{1, 2, 3}))
	f.Add(AppendBatch(nil, 9, FamilyQuantiles, "lat", []uint64{math.Float64bits(0.5)}))
	f.Add(AppendQuery(nil, 10, FamilyTheta, QueryEstimate, "users", 0))
	f.Add(AppendQuery(nil, 11, FamilyQuantiles, QueryQuantile, "lat", math.Float64bits(0.99)))
	f.Add(AppendOKU64(nil, 12, 99))
	f.Add(AppendOKNames(nil, 13, []string{"theta/users", "hll/x"}))
	f.Add(AppendOKInfo(nil, 14, Info{Shards: 4, Writers: 2, Relaxation: 64, ShardRelaxation: 16, Eager: true}))
	f.Add(AppendError(nil, 15, "boom"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{3, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r, &buf)
			if err != nil {
				return // framing rejected the rest; that is a valid outcome
			}
			if req, err := ParseRequest(payload); err == nil {
				// Anything the parser accepts must be within protocol
				// bounds: the server indexes items and names directly.
				if len(req.Name) == 0 && req.Op != OpPing && req.Op != OpNames {
					t.Fatalf("accepted request with empty name: %+v", req)
				}
				if req.NumItems() > MaxBatchItems {
					t.Fatalf("accepted %d items > MaxBatchItems", req.NumItems())
				}
				for i := 0; i < req.NumItems(); i++ {
					_ = req.Item(i)
				}
			}
			if status, _, body, err := ParseResponse(payload); err == nil && status == StatusOK {
				_, _ = ParseNames(body)
				_, _ = ParseInfo(body)
			}
		}
	})
}
