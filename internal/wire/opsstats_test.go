package wire

import "testing"

// TestOpsStatsRoundTrip: the empty-body OpOpsStats request and its
// seven-counter response survive encode → frame → parse bit-exactly.
func TestOpsStatsRoundTrip(t *testing.T) {
	req, err := ParseRequest(frame(t, AppendOpsStatsReq(nil, 31)))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpOpsStats || req.ID != 31 || len(req.Name) != 0 {
		t.Fatalf("bad ops-stats request: %+v", req)
	}

	in := OpsStats{
		Sweeps:        12,
		Evictions:     3,
		BudgetSheds:   1,
		BudgetShrinks: 2,
		ResidentBytes: 7_654_321,
		BudgetBytes:   10_000_000,
		Sketches:      42,
	}
	status, id, body, err := ParseResponse(frame(t, AppendOKOpsStats(nil, 32, in)))
	if err != nil || status != StatusOK || id != 32 {
		t.Fatalf("ops-stats response: status=%d id=%d err=%v", status, id, err)
	}
	got, err := ParseOpsStats(body)
	if err != nil || got != in {
		t.Fatalf("ops stats = %+v (err %v), want %+v", got, err, in)
	}
}

// TestOpsStatsTruncated: a short or oversized body is rejected, not
// misparsed.
func TestOpsStatsTruncated(t *testing.T) {
	_, _, body, err := ParseResponse(frame(t, AppendOKOpsStats(nil, 33, OpsStats{})))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(body) - 1} {
		if _, err := ParseOpsStats(body[:n]); err == nil {
			t.Errorf("ParseOpsStats accepted %d-byte body", n)
		}
	}
	if _, err := ParseOpsStats(append(body, 0)); err == nil {
		t.Error("ParseOpsStats accepted oversized body")
	}
}

// TestOpsStatsRequestRejectsTrailing: like the other empty-body ops, a
// trailing byte invalidates the request.
func TestOpsStatsRequestRejectsTrailing(t *testing.T) {
	raw := AppendOpsStatsReq(nil, 34)[4:]
	if _, err := ParseRequest(append(raw, 0xff)); err == nil {
		t.Error("trailing byte accepted on OpOpsStats request")
	}
}
