// Package harness re-implements the Apache DataSketches characterization
// framework used by the paper's evaluation (Section 7.1): speed profiles
// (throughput as a function of stream size), accuracy profiles ("pitchfork"
// plots of the relative-error distribution), mixed read-write workloads,
// and thread-scalability sweeps. Each paper figure/table has a sweep
// function here; cmd/benchrunner renders them as TSV.
package harness

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fastsketches/internal/core"
	"fastsketches/internal/locked"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/stats"
	"fastsketches/internal/theta"
)

// Seed is the hash seed used by every profiled sketch.
const Seed = murmur.DefaultSeed

// ModeForFigure8Delegation is the algorithm variant that models the paper's
// no-eager small-stream behaviour: each update is handed to the background
// thread and the writer waits for it — ParSketch with b=1.
const ModeForFigure8Delegation = core.ModeUnoptimised

// clockOverhead is the measured cost of one start/stop timestamp pair,
// subtracted from every trial so that single-update trials at the low end of
// a sweep are not dominated by clock reads.
var (
	clockOnce     sync.Once
	clockOverhead time.Duration
)

func measureClockOverhead() time.Duration {
	clockOnce.Do(func() {
		const iters = 1 << 16
		start := time.Now()
		var sink time.Duration
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			sink += time.Since(t0)
		}
		total := time.Since(start)
		_ = sink
		clockOverhead = total / iters
	})
	return clockOverhead
}

// trialTime subtracts the clock-pair overhead from a raw measurement,
// flooring at zero.
func trialTime(elapsed time.Duration) time.Duration {
	oh := measureClockOverhead()
	if elapsed <= oh {
		return 0
	}
	return elapsed - oh
}

// Sweep generates the x-axis of the paper's profiles: stream sizes from
// 2^lgMin to 2^lgMax with ppo points per octave (the characterization
// framework's lgMinU/lgMaxU/PPO parameters).
func Sweep(lgMin, lgMax, ppo int) []int {
	var xs []int
	last := -1
	for lg := lgMin; lg <= lgMax; lg++ {
		for i := 0; i < ppo; i++ {
			if lg == lgMax && i > 0 {
				break
			}
			x := int(math.Round(math.Exp2(float64(lg) + float64(i)/float64(ppo))))
			if x != last {
				xs = append(xs, x)
				last = x
			}
		}
	}
	return xs
}

// TrialsForSize scales the trial count down as stream size grows, like the
// characterization framework ("very high for points at the low end … 16 at
// the high end"): geometric interpolation between maxTrials at 2^lgMin and
// minTrials at 2^lgMax.
func TrialsForSize(x int, lgMin, lgMax, maxTrials, minTrials int) int {
	if maxTrials <= minTrials {
		return minTrials
	}
	lgX := math.Log2(float64(x))
	frac := (lgX - float64(lgMin)) / (float64(lgMax) - float64(lgMin))
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	t := float64(maxTrials) * math.Pow(float64(minTrials)/float64(maxTrials), frac)
	n := int(math.Round(t))
	if n < minTrials {
		n = minTrials
	}
	return n
}

// ThroughputPoint is one x-position of a speed profile.
type ThroughputPoint struct {
	Uniques     int
	Trials      int
	NsPerUpdate float64
	MopsPerSec  float64
}

// SpeedConfig parameterises a write-only speed profile.
type SpeedConfig struct {
	LgMinU, LgMaxU int
	PPO            int
	MaxTrials      int
	MinTrials      int
	Writers        int     // updating threads
	LgK            int     // global sketch size
	MaxError       float64 // e (≥1 disables eager)
	BufferSize     int     // 0 = derive from k, e, writers
	Mode           core.Mode
	LockBased      bool // measure the RWMutex baseline instead
}

func (c *SpeedConfig) defaults() {
	if c.PPO == 0 {
		c.PPO = 2
	}
	if c.MaxTrials == 0 {
		c.MaxTrials = 512
	}
	if c.MinTrials == 0 {
		c.MinTrials = 2
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.LgK == 0 {
		c.LgK = 12
	}
	if c.MaxError == 0 {
		c.MaxError = 1.0
	}
}

// concurrentTrial feeds x unique keys through a fresh concurrent Θ sketch
// with the configured writer count and returns the wall-clock feed time.
func concurrentTrial(cfg *SpeedConfig, x int, trialID int) time.Duration {
	comp := theta.NewComposable(cfg.LgK, Seed)
	fw := core.New[uint64](comp, core.Config{
		Workers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		Mode:       cfg.Mode,
		MaxError:   cfg.MaxError,
		K:          1 << cfg.LgK,
	})
	fw.Start()
	base := uint64(trialID) << 44 // fresh keys per trial → fresh hash sample
	start := time.Now()
	if cfg.Writers == 1 {
		for i := 0; i < x; i++ {
			fw.Update(0, theta.HashKey(base+uint64(i), Seed))
		}
	} else {
		var wg sync.WaitGroup
		offs, sizes := partition(x, cfg.Writers)
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := base + uint64(offs[w])
				for i := 0; i < sizes[w]; i++ {
					fw.Update(w, theta.HashKey(lo+uint64(i), Seed))
				}
			}(w)
		}
		wg.Wait()
	}
	elapsed := trialTime(time.Since(start))
	fw.Close()
	return elapsed
}

// lockedTrial feeds x unique keys through a lock-protected sequential sketch
// with the configured thread count.
func lockedTrial(cfg *SpeedConfig, x int, trialID int) time.Duration {
	sk := locked.NewTheta(cfg.LgK, Seed)
	base := uint64(trialID) << 44
	start := time.Now()
	if cfg.Writers == 1 {
		for i := 0; i < x; i++ {
			sk.Update(base + uint64(i))
		}
	} else {
		var wg sync.WaitGroup
		offs, sizes := partition(x, cfg.Writers)
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := base + uint64(offs[w])
				for i := 0; i < sizes[w]; i++ {
					sk.Update(lo + uint64(i))
				}
			}(w)
		}
		wg.Wait()
	}
	return trialTime(time.Since(start))
}

// SpeedProfile runs the write-only workload of Figures 1, 6a and 6b.
func SpeedProfile(cfg SpeedConfig) []ThroughputPoint {
	cfg.defaults()
	var out []ThroughputPoint
	for _, x := range Sweep(cfg.LgMinU, cfg.LgMaxU, cfg.PPO) {
		trials := TrialsForSize(x, cfg.LgMinU, cfg.LgMaxU, cfg.MaxTrials, cfg.MinTrials)
		var total time.Duration
		for tr := 0; tr < trials; tr++ {
			if cfg.LockBased {
				total += lockedTrial(&cfg, x, tr)
			} else {
				total += concurrentTrial(&cfg, x, tr)
			}
		}
		if total <= 0 {
			total = time.Nanosecond // below clock resolution: floor, don't divide by zero
		}
		ns := float64(total.Nanoseconds()) / float64(trials) / float64(x)
		out = append(out, ThroughputPoint{
			Uniques:     x,
			Trials:      trials,
			NsPerUpdate: ns,
			MopsPerSec:  1e3 / ns,
		})
	}
	return out
}

// partition splits n items into `parts` contiguous ranges.
func partition(n, parts int) (offsets, sizes []int) {
	offsets = make([]int, parts)
	sizes = make([]int, parts)
	base := n / parts
	rem := n % parts
	off := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		offsets[i] = off
		sizes[i] = sz
		off += sz
	}
	return offsets, sizes
}

// AccuracyPoint is one x-position of a pitchfork plot: the distribution of
// the relative error RE = est/true − 1 across trials.
type AccuracyPoint struct {
	Uniques int
	Trials  int
	MeanRE  float64
	// Quantile lines of the RE distribution, matching the paper's pitchfork
	// (lower tail, quartiles, median, upper).
	Q01, Q25, Q50, Q75, Q99 float64
}

// AccuracyConfig parameterises an accuracy profile. The paper measures
// accuracy single-threaded (Section 7.1): one writer feeds x uniques into a
// fresh concurrent sketch and the estimate is read back WITHOUT draining, so
// propagation lag is part of the measured error — that lag is exactly what
// Figure 5a exposes and the eager phase (Figure 5b) repairs.
type AccuracyConfig struct {
	LgMinU, LgMaxU int
	PPO            int
	Trials         int
	LgK            int
	MaxError       float64 // e: 1.0 → Figure 5a, 0.04 → Figure 5b
	BufferSize     int
	CapRE          float64 // clip |RE| for presentation (paper caps at 10%); 0 = no cap
}

func (c *AccuracyConfig) defaults() {
	if c.PPO == 0 {
		c.PPO = 2
	}
	if c.Trials == 0 {
		c.Trials = 256
	}
	if c.LgK == 0 {
		c.LgK = 12
	}
	if c.MaxError == 0 {
		c.MaxError = 1.0
	}
}

// AccuracyProfile runs the pitchfork workload of Figures 5a/5b.
func AccuracyProfile(cfg AccuracyConfig) []AccuracyPoint {
	cfg.defaults()
	var out []AccuracyPoint
	for _, x := range Sweep(cfg.LgMinU, cfg.LgMaxU, cfg.PPO) {
		res := make([]float64, cfg.Trials)
		for tr := 0; tr < cfg.Trials; tr++ {
			comp := theta.NewComposable(cfg.LgK, Seed)
			fw := core.New[uint64](comp, core.Config{
				Workers:    1,
				BufferSize: cfg.BufferSize,
				MaxError:   cfg.MaxError,
				K:          1 << cfg.LgK,
			})
			fw.Start()
			base := uint64(tr) << 44
			for i := 0; i < x; i++ {
				fw.Update(0, theta.HashKey(base+uint64(i), Seed))
			}
			est := comp.Estimate() // before Close: includes propagation lag
			fw.Close()
			re := est/float64(x) - 1
			if cfg.CapRE > 0 {
				if re > cfg.CapRE {
					re = cfg.CapRE
				}
				if re < -cfg.CapRE {
					re = -cfg.CapRE
				}
			}
			res[tr] = re
		}
		qs := stats.Quantiles(res, []float64{0.01, 0.25, 0.5, 0.75, 0.99})
		out = append(out, AccuracyPoint{
			Uniques: x,
			Trials:  cfg.Trials,
			MeanRE:  stats.Summarize(res).Mean,
			Q01:     qs[0], Q25: qs[1], Q50: qs[2], Q75: qs[3], Q99: qs[4],
		})
	}
	return out
}

// MixedConfig parameterises the mixed read-write workload of Figure 7:
// writers ingest a large stream while background readers query with a pause
// between queries.
type MixedConfig struct {
	Writers     int
	Readers     int
	ReaderPause time.Duration
	Uniques     int
	Trials      int
	LgK         int
	MaxError    float64
	LockBased   bool
}

func (c *MixedConfig) defaults() {
	if c.Readers == 0 {
		c.Readers = 10
	}
	if c.ReaderPause == 0 {
		c.ReaderPause = time.Millisecond
	}
	if c.Uniques == 0 {
		c.Uniques = 1 << 20
	}
	if c.Trials == 0 {
		c.Trials = 4
	}
	if c.LgK == 0 {
		c.LgK = 12
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
}

// MixedResult reports write throughput under background reads.
type MixedResult struct {
	Writers     int
	Readers     int
	NsPerUpdate float64
	MopsPerSec  float64
	QueriesRun  int64
}

// MixedProfile runs the Figure 7 workload.
func MixedProfile(cfg MixedConfig) MixedResult {
	cfg.defaults()
	var total time.Duration
	var queries atomic.Int64
	for tr := 0; tr < cfg.Trials; tr++ {
		stop := make(chan struct{})
		var readersWG sync.WaitGroup

		var estimate func() float64
		var update func(w int, key uint64)
		var closeFn func()

		if cfg.LockBased {
			sk := locked.NewTheta(cfg.LgK, Seed)
			estimate = sk.Estimate
			update = func(_ int, key uint64) { sk.Update(key) }
			closeFn = func() {}
		} else {
			comp := theta.NewComposable(cfg.LgK, Seed)
			fw := core.New[uint64](comp, core.Config{
				Workers:  cfg.Writers,
				MaxError: cfg.MaxError,
				K:        1 << cfg.LgK,
			})
			fw.Start()
			estimate = comp.Estimate
			update = func(w int, key uint64) { fw.Update(w, theta.HashKey(key, Seed)) }
			closeFn = fw.Close
		}

		for rd := 0; rd < cfg.Readers; rd++ {
			readersWG.Add(1)
			go func() {
				defer readersWG.Done()
				timer := time.NewTimer(0)
				defer timer.Stop()
				for {
					select {
					case <-stop:
						return
					case <-timer.C:
					}
					_ = estimate()
					queries.Add(1)
					timer.Reset(cfg.ReaderPause)
				}
			}()
		}

		base := uint64(tr) << 44
		offs, sizes := partition(cfg.Uniques, cfg.Writers)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := base + uint64(offs[w])
				for i := 0; i < sizes[w]; i++ {
					update(w, lo+uint64(i))
				}
			}(w)
		}
		wg.Wait()
		total += time.Since(start)
		close(stop)
		readersWG.Wait()
		closeFn()
	}
	ns := float64(total.Nanoseconds()) / float64(cfg.Trials) / float64(cfg.Uniques)
	return MixedResult{
		Writers:     cfg.Writers,
		Readers:     cfg.Readers,
		NsPerUpdate: ns,
		MopsPerSec:  1e3 / ns,
		QueriesRun:  queries.Load(),
	}
}

// ScalabilityPoint is one thread-count of Figure 1.
type ScalabilityPoint struct {
	Threads     int
	MopsPerSec  float64
	NsPerUpdate float64
}

// ScalabilityConfig parameterises the Figure 1 sweep: update-only workload
// on a very large stream, threads 1..MaxThreads, concurrent vs lock-based,
// b=1, k=4096.
type ScalabilityConfig struct {
	MaxThreads int
	Uniques    int
	Trials     int
	LgK        int
	BufferSize int
	LockBased  bool
}

func (c *ScalabilityConfig) defaults() {
	if c.MaxThreads == 0 {
		c.MaxThreads = 8
	}
	if c.Uniques == 0 {
		c.Uniques = 1 << 21
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.LgK == 0 {
		c.LgK = 12
	}
	if c.BufferSize == 0 {
		c.BufferSize = 1 // the paper's Figure 1 uses b=1
	}
}

// ScalabilityProfile runs the Figure 1 sweep.
func ScalabilityProfile(cfg ScalabilityConfig) []ScalabilityPoint {
	cfg.defaults()
	var out []ScalabilityPoint
	for threads := 1; threads <= cfg.MaxThreads; threads *= 2 {
		sc := SpeedConfig{
			Writers:    threads,
			LgK:        cfg.LgK,
			BufferSize: cfg.BufferSize,
			MaxError:   1.0,
			LockBased:  cfg.LockBased,
		}
		sc.defaults()
		var total time.Duration
		for tr := 0; tr < cfg.Trials; tr++ {
			if cfg.LockBased {
				total += lockedTrial(&sc, cfg.Uniques, tr)
			} else {
				total += concurrentTrial(&sc, cfg.Uniques, tr)
			}
		}
		ns := float64(total.Nanoseconds()) / float64(cfg.Trials) / float64(cfg.Uniques)
		out = append(out, ScalabilityPoint{Threads: threads, MopsPerSec: 1e3 / ns, NsPerUpdate: ns})
	}
	return out
}

// SpeedupPoint is one x-position of Figure 8: eager over no-eager speedup.
type SpeedupPoint struct {
	Uniques   int
	EagerMops float64
	// NoEagerDelegateMops is the paper's no-eager implementation: every
	// update is lazily delegated to the background thread ("equivalent to a
	// buffer size of 1"), paying a writer–propagator handoff per update.
	NoEagerDelegateMops float64
	// NoEagerBufferedMops is the same configuration with the full lazy
	// buffer (b=16) — the large-stream regime both curves converge to.
	NoEagerBufferedMops float64
	// Speedup is eager over the delegating no-eager path (the paper's
	// headline ratio, up to 84x on their hardware).
	Speedup float64
}

// EagerSpeedupProfile runs the Figure 8 comparison on small streams,
// single writer, k=4096: the adaptive configuration (e=0.04, paper's b=5)
// against no-eager propagation. The paper's implementation notes that
// without the eager optimisation every small-stream update is delegated to
// the background thread one at a time (b=1, a synchronisation round trip
// per update) — that delegating path is what the speedup is measured
// against; the buffered (b=16) lazy path is also reported for the
// large-stream crossover.
func EagerSpeedupProfile(lgMinU, lgMaxU, ppo, maxTrials, minTrials int) []SpeedupPoint {
	eager := SpeedConfig{
		LgMinU: lgMinU, LgMaxU: lgMaxU, PPO: ppo,
		MaxTrials: maxTrials, MinTrials: minTrials,
		Writers: 1, LgK: 12, MaxError: 0.04, BufferSize: 5,
	}
	delegate := eager
	delegate.MaxError = 1.0
	delegate.BufferSize = 1
	delegate.Mode = ModeForFigure8Delegation
	buffered := eager
	buffered.MaxError = 1.0
	buffered.BufferSize = 16

	pe := SpeedProfile(eager)
	pd := SpeedProfile(delegate)
	pb := SpeedProfile(buffered)
	out := make([]SpeedupPoint, 0, len(pe))
	for i := range pe {
		out = append(out, SpeedupPoint{
			Uniques:             pe[i].Uniques,
			EagerMops:           pe[i].MopsPerSec,
			NoEagerDelegateMops: pd[i].MopsPerSec,
			NoEagerBufferedMops: pb[i].MopsPerSec,
			Speedup:             pd[i].NsPerUpdate / pe[i].NsPerUpdate,
		})
	}
	return out
}

// Table2Row is one k-row of the paper's Table 2: the stream size at which
// the single-writer concurrent sketch overtakes the lock-based one, and the
// worst-case median and 99th-percentile relative errors across sizes.
type Table2Row struct {
	K             int
	CrossingPoint int
	MaxMedianRE   float64
	MaxQ99RE      float64
}

// Table2Config parameterises the Table 2 reproduction.
type Table2Config struct {
	LgKs           []int
	LgMinU, LgMaxU int
	PPO            int
	SpeedTrials    int
	AccTrials      int
}

func (c *Table2Config) defaults() {
	if len(c.LgKs) == 0 {
		c.LgKs = []int{8, 10, 12} // k = 256, 1024, 4096
	}
	if c.PPO == 0 {
		c.PPO = 2
	}
	if c.SpeedTrials == 0 {
		c.SpeedTrials = 16
	}
	if c.AccTrials == 0 {
		c.AccTrials = 128
	}
}

// Table2 regenerates the paper's Table 2.
func Table2(cfg Table2Config) []Table2Row {
	cfg.defaults()
	var out []Table2Row
	for _, lgK := range cfg.LgKs {
		conc := SpeedProfile(SpeedConfig{
			LgMinU: cfg.LgMinU, LgMaxU: cfg.LgMaxU, PPO: cfg.PPO,
			MaxTrials: cfg.SpeedTrials, MinTrials: 2,
			Writers: 1, LgK: lgK, MaxError: 0.04,
		})
		lock := SpeedProfile(SpeedConfig{
			LgMinU: cfg.LgMinU, LgMaxU: cfg.LgMaxU, PPO: cfg.PPO,
			MaxTrials: cfg.SpeedTrials, MinTrials: 2,
			Writers: 1, LgK: lgK, MaxError: 1.0, LockBased: true,
		})
		crossing := -1
		for i := range conc {
			if conc[i].MopsPerSec >= lock[i].MopsPerSec {
				crossing = conc[i].Uniques
				break
			}
		}
		acc := AccuracyProfile(AccuracyConfig{
			LgMinU: cfg.LgMinU, LgMaxU: cfg.LgMaxU, PPO: cfg.PPO,
			Trials: cfg.AccTrials, LgK: lgK, MaxError: 0.04,
		})
		var maxMed, maxQ99 float64
		for _, p := range acc {
			if m := math.Abs(p.Q50); m > maxMed {
				maxMed = m
			}
			if m := math.Max(math.Abs(p.Q99), math.Abs(p.Q01)); m > maxQ99 {
				maxQ99 = m
			}
		}
		out = append(out, Table2Row{
			K:             1 << lgK,
			CrossingPoint: crossing,
			MaxMedianRE:   maxMed,
			MaxQ99RE:      maxQ99,
		})
	}
	return out
}

// QuantilesErrorPoint is one stream size of the Section 6.2 validation: the
// observed worst rank deviation of concurrent queries against the relaxed
// bound ε_r = ε − rε/n + r/n.
type QuantilesErrorPoint struct {
	N          int
	Relaxation int
	// MaxDev is the worst observed |rank(returned median) − 0.5| across all
	// live queries, rank taken within the prefix of completed updates.
	MaxDev float64
	// MaxDevOverBound is the worst ratio of observed deviation to the
	// per-query bound ε_r (values ≤ 1 mean the Section 6.2 bound held).
	MaxDevOverBound float64
	// RelaxedBound and SeqEps are ε_r and ε evaluated at the full n, showing
	// how the relaxation penalty vanishes as n grows.
	RelaxedBound float64
	SeqEps       float64
}

// QuantilesErrorProfile validates the Section 6.2 claim on the real
// concurrent quantiles sketch: queries issued concurrently with updates must
// return elements whose true rank deviates from φ by at most ε_r, which
// converges to the sequential ε as n grows.
//
// The stream is 0,1,2,… fed by a single writer in order, so the multiset of
// completed updates at any query is exactly the prefix [0, c) and the true
// rank of a returned value v is v/c. A query that overlaps updates may also
// observe some of the in-flight items, so the per-query bound uses
// r' = r + (in-flight window) in the ε_r formula.
func QuantilesErrorProfile(k, b int, sizes []int, trials int) []QuantilesErrorPoint {
	const phi = 0.5
	var out []QuantilesErrorPoint
	for _, n := range sizes {
		r := 2 * b // single writer: r = 2·N·b = 2b
		var worstDev, worstRatio float64
		for tr := 0; tr < trials; tr++ {
			comp := quantiles.NewComposable(k, quantiles.NewRandomBits(int64(tr)))
			fw := core.New[float64](comp, core.Config{
				Workers: 1, BufferSize: b, MaxError: 1,
			})
			fw.Start()
			var completed atomic.Int64
			stop := make(chan struct{})
			var rwg sync.WaitGroup
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					c1 := completed.Load()
					if c1 < int64(4*k) {
						time.Sleep(10 * time.Microsecond)
						continue
					}
					med := comp.Quantile(phi)
					c2 := completed.Load()
					rank := med / float64(c1)
					if rank > 1 {
						rank = 1
					}
					dev := math.Abs(rank - phi)
					eps := quantiles.EpsilonBound(k, uint64(c1))
					bound := quantiles.RelaxedEpsilon(eps, r+int(c2-c1), uint64(c1))
					if dev > worstDev {
						worstDev = dev
					}
					if bound > 0 && dev/bound > worstRatio {
						worstRatio = dev / bound
					}
					time.Sleep(20 * time.Microsecond)
				}
			}()
			for i := 0; i < n; i++ {
				fw.Update(0, float64(i))
				completed.Store(int64(i + 1))
			}
			close(stop)
			rwg.Wait()
			fw.Close()
		}
		eps := quantiles.EpsilonBound(k, uint64(n))
		out = append(out, QuantilesErrorPoint{
			N:               n,
			Relaxation:      r,
			MaxDev:          worstDev,
			MaxDevOverBound: worstRatio,
			RelaxedBound:    quantiles.RelaxedEpsilon(eps, r, uint64(n)),
			SeqEps:          eps,
		})
	}
	return out
}
