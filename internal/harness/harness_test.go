package harness

import (
	"math"
	"testing"
	"time"

	"fastsketches/internal/core"
)

func TestSweepMonotoneAndBounds(t *testing.T) {
	xs := Sweep(0, 10, 4)
	if xs[0] != 1 || xs[len(xs)-1] != 1024 {
		t.Fatalf("sweep endpoints wrong: %v … %v", xs[0], xs[len(xs)-1])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("sweep not strictly increasing at %d: %v", i, xs[i-1:i+1])
		}
	}
}

func TestSweepNoDuplicatesAtLowEnd(t *testing.T) {
	// With high PPO, 2^0·2^(i/ppo) rounds to 1 repeatedly; duplicates must
	// be suppressed.
	xs := Sweep(0, 3, 8)
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate sweep point %d", x)
		}
		seen[x] = true
	}
}

func TestTrialsForSize(t *testing.T) {
	if got := TrialsForSize(1, 0, 20, 1024, 4); got != 1024 {
		t.Errorf("low end trials = %d, want 1024", got)
	}
	if got := TrialsForSize(1<<20, 0, 20, 1024, 4); got != 4 {
		t.Errorf("high end trials = %d, want 4", got)
	}
	mid := TrialsForSize(1<<10, 0, 20, 1024, 4)
	if mid <= 4 || mid >= 1024 {
		t.Errorf("mid trials = %d, want strictly between", mid)
	}
	if got := TrialsForSize(100, 0, 20, 4, 4); got != 4 {
		t.Errorf("degenerate trials = %d, want 4", got)
	}
}

func TestSpeedProfileRuns(t *testing.T) {
	pts := SpeedProfile(SpeedConfig{
		LgMinU: 4, LgMaxU: 12, PPO: 1, MaxTrials: 4, MinTrials: 2,
		Writers: 1, LgK: 10, MaxError: 1.0,
	})
	if len(pts) != 9 {
		t.Fatalf("expected 9 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.NsPerUpdate <= 0 || math.IsInf(p.MopsPerSec, 0) {
			t.Fatalf("nonsensical point %+v", p)
		}
	}
}

func TestSpeedProfileLockBased(t *testing.T) {
	pts := SpeedProfile(SpeedConfig{
		LgMinU: 8, LgMaxU: 12, PPO: 1, MaxTrials: 3, MinTrials: 2,
		Writers: 2, LgK: 10, MaxError: 1.0, LockBased: true,
	})
	if len(pts) != 5 {
		t.Fatalf("expected 5 points, got %d", len(pts))
	}
}

func TestSpeedProfileMultiWriterConcurrent(t *testing.T) {
	pts := SpeedProfile(SpeedConfig{
		LgMinU: 14, LgMaxU: 16, PPO: 1, MaxTrials: 2, MinTrials: 2,
		Writers: 4, LgK: 10, MaxError: 1.0,
	})
	for _, p := range pts {
		if p.NsPerUpdate <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
}

func TestAccuracyProfileShape(t *testing.T) {
	pts := AccuracyProfile(AccuracyConfig{
		LgMinU: 4, LgMaxU: 14, PPO: 1, Trials: 48, LgK: 10, MaxError: 1.0,
		BufferSize: 16,
	})
	// Invariants of the pitchfork: quantile lines ordered.
	for _, p := range pts {
		if !(p.Q01 <= p.Q25 && p.Q25 <= p.Q50 && p.Q50 <= p.Q75 && p.Q75 <= p.Q99) {
			t.Fatalf("quantile lines out of order at x=%d: %+v", p.Uniques, p)
		}
	}
	// Without eager propagation, small streams underestimate (Figure 5a's
	// distortion): the mean RE at the smallest sizes must be negative.
	if pts[0].MeanRE >= 0 {
		t.Errorf("no-eager small-stream mean RE = %v, expected negative (propagation lag)", pts[0].MeanRE)
	}
	// Large streams: mean error within a few RSE of zero.
	last := pts[len(pts)-1]
	if math.Abs(last.MeanRE) > 0.1 {
		t.Errorf("large-stream mean RE = %v, expected near zero", last.MeanRE)
	}
}

func TestAccuracyProfileEagerIsExactSmall(t *testing.T) {
	// With eager propagation, streams below the eager limit are processed
	// sequentially → zero error (Figure 5b flat at small x).
	pts := AccuracyProfile(AccuracyConfig{
		LgMinU: 4, LgMaxU: 9, PPO: 1, Trials: 24, LgK: 12, MaxError: 0.04,
	})
	for _, p := range pts {
		if p.Uniques <= 1250 && (p.MeanRE != 0 || p.Q99 != 0) {
			t.Fatalf("eager phase not exact at x=%d: %+v", p.Uniques, p)
		}
	}
}

func TestAccuracyCapApplied(t *testing.T) {
	pts := AccuracyProfile(AccuracyConfig{
		LgMinU: 3, LgMaxU: 6, PPO: 1, Trials: 16, LgK: 12, MaxError: 1.0,
		BufferSize: 16, CapRE: 0.1,
	})
	for _, p := range pts {
		if p.Q01 < -0.1-1e-12 || p.Q99 > 0.1+1e-12 {
			t.Fatalf("cap not applied: %+v", p)
		}
	}
}

func TestMixedProfileRuns(t *testing.T) {
	res := MixedProfile(MixedConfig{
		Writers: 2, Readers: 3, ReaderPause: 200 * time.Microsecond,
		Uniques: 1 << 16, Trials: 2, LgK: 10, MaxError: 0.04,
	})
	if res.NsPerUpdate <= 0 {
		t.Fatalf("bad mixed result %+v", res)
	}
	if res.QueriesRun == 0 {
		t.Error("background readers never ran")
	}
	lock := MixedProfile(MixedConfig{
		Writers: 2, Readers: 3, ReaderPause: 200 * time.Microsecond,
		Uniques: 1 << 16, Trials: 2, LgK: 10, LockBased: true, MaxError: 0.04,
	})
	if lock.NsPerUpdate <= 0 {
		t.Fatalf("bad lock-based mixed result %+v", lock)
	}
}

func TestScalabilityProfileRuns(t *testing.T) {
	pts := ScalabilityProfile(ScalabilityConfig{
		MaxThreads: 2, Uniques: 1 << 17, Trials: 2, LgK: 12, BufferSize: 1,
	})
	if len(pts) != 2 || pts[0].Threads != 1 || pts[1].Threads != 2 {
		t.Fatalf("unexpected thread sweep %+v", pts)
	}
}

func TestEagerSpeedupProfileRuns(t *testing.T) {
	pts := EagerSpeedupProfile(6, 12, 1, 4, 2)
	if len(pts) != 7 {
		t.Fatalf("expected 7 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Speedup <= 0 || math.IsNaN(p.Speedup) {
			t.Fatalf("bad speedup point %+v", p)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	rows := Table2(Table2Config{
		LgKs:   []int{6, 8},
		LgMinU: 4, LgMaxU: 14, PPO: 1,
		SpeedTrials: 4, AccTrials: 32,
	})
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxQ99RE < r.MaxMedianRE {
			t.Errorf("k=%d: q99 error %v below median error %v", r.K, r.MaxQ99RE, r.MaxMedianRE)
		}
	}
	// Larger k buys accuracy: the k=256 row must have at least the error of
	// the k=64 row reversed — i.e. error decreases with k.
	if rows[1].MaxQ99RE > rows[0].MaxQ99RE {
		t.Errorf("error did not shrink with k: k=%d→%v, k=%d→%v",
			rows[0].K, rows[0].MaxQ99RE, rows[1].K, rows[1].MaxQ99RE)
	}
}

func TestQuantilesErrorProfile(t *testing.T) {
	pts := QuantilesErrorProfile(128, 8, []int{1 << 13, 1 << 15}, 2)
	if len(pts) != 2 {
		t.Fatalf("expected 2 points, got %d", len(pts))
	}
	for _, p := range pts {
		// The Section 6.2 bound must hold for every observed query.
		if p.MaxDevOverBound > 1.0 {
			t.Errorf("n=%d: observed deviation exceeded ε_r bound by ×%.3f", p.N, p.MaxDevOverBound)
		}
		// ε_r ≥ ε always, and the gap shrinks with n.
		if p.RelaxedBound < p.SeqEps {
			t.Errorf("n=%d: ε_r %v below ε %v", p.N, p.RelaxedBound, p.SeqEps)
		}
	}
	if pts[1].RelaxedBound-pts[1].SeqEps > pts[0].RelaxedBound-pts[0].SeqEps {
		t.Error("relaxation penalty did not shrink as n grew")
	}
}

func TestConcurrentBeatsLockUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison")
	}
	// The paper's headline (Figure 1): with multiple threads on a large
	// stream, the concurrent sketch outperforms the lock-based one. Even on
	// a single hardware core the lock-based version pays lock-acquisition
	// on every update while the concurrent one amortises synchronisation
	// over b updates and pre-filters most of them, so the direction of the
	// comparison is preserved.
	const x = 1 << 20
	cc := SpeedConfig{Writers: 4, LgK: 12, MaxError: 1.0, BufferSize: 16}
	cc.defaults()
	lc := cc
	lc.LockBased = true
	conc := concurrentTrial(&cc, x, 0)
	lock := lockedTrial(&lc, x, 0)
	t.Logf("concurrent: %v, lock-based: %v (x=%d, 4 writers)", conc, lock, x)
	if conc > lock {
		t.Errorf("concurrent (%v) slower than lock-based (%v) under contention", conc, lock)
	}
}

func TestModePassedThrough(t *testing.T) {
	// ParSketch mode must also work end to end through the harness.
	pts := SpeedProfile(SpeedConfig{
		LgMinU: 10, LgMaxU: 12, PPO: 1, MaxTrials: 2, MinTrials: 2,
		Writers: 2, LgK: 10, MaxError: 1.0, Mode: core.ModeUnoptimised,
	})
	if len(pts) != 3 {
		t.Fatalf("expected 3 points, got %d", len(pts))
	}
}
