package quantiles

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func feedSequential(s *Sketch, n int) {
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
}

func trueRankOfValue(v float64, n int) float64 {
	// For the stream 0..n-1, the number of items < v is clamp(ceil(v), 0, n).
	below := math.Ceil(v)
	if below < 0 {
		below = 0
	}
	if below > float64(n) {
		below = float64(n)
	}
	return below / float64(n)
}

func TestEmpty(t *testing.T) {
	s := New(128, nil)
	if !s.IsEmpty() || s.N() != 0 {
		t.Fatal("new sketch not empty")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("quantile of empty sketch should be NaN")
	}
	if !math.IsNaN(s.Rank(1.0)) {
		t.Error("rank of empty sketch should be NaN")
	}
}

func TestSmallStreamExact(t *testing.T) {
	// While everything fits in the base buffer the sketch is exact.
	s := New(128, nil)
	vals := []float64{5, 1, 9, 3, 7}
	for _, v := range vals {
		s.Update(v)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 1/9", s.Min(), s.Max())
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Errorf("q1 = %v, want 9", got)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
}

func TestMinMaxExactAlways(t *testing.T) {
	s := New(32, nil)
	rng := rand.New(rand.NewSource(1))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 100000; i++ {
		v := rng.NormFloat64() * 100
		s.Update(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if s.Min() != lo || s.Max() != hi {
		t.Fatalf("min/max drifted: got %v/%v want %v/%v", s.Min(), s.Max(), lo, hi)
	}
}

func TestNCounting(t *testing.T) {
	s := New(64, nil)
	feedSequential(s, 123457)
	if s.N() != 123457 {
		t.Fatalf("N = %d, want 123457", s.N())
	}
}

func TestRankAccuracySequentialStream(t *testing.T) {
	const k, n = 128, 1 << 17
	s := New(k, NewRandomBits(7))
	feedSequential(s, n)
	eps := EpsilonBound(k, uint64(n))
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := s.Quantile(phi)
		r := trueRankOfValue(v, n)
		if math.Abs(r-phi) > eps {
			t.Errorf("phi=%.2f: returned value %v has true rank %.4f (|Δ|=%.4f > ε=%.4f)",
				phi, v, r, math.Abs(r-phi), eps)
		}
	}
}

func TestRankAccuracyRandomOrder(t *testing.T) {
	const k, n = 128, 1 << 16
	s := New(k, NewRandomBits(11))
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, v := range perm {
		s.Update(float64(v))
	}
	eps := EpsilonBound(k, uint64(n))
	for _, phi := range []float64{0.05, 0.5, 0.95} {
		v := s.Quantile(phi)
		r := trueRankOfValue(v, n)
		if math.Abs(r-phi) > eps {
			t.Errorf("phi=%.2f: rank error %.4f exceeds ε=%.4f", phi, math.Abs(r-phi), eps)
		}
	}
}

func TestRankAndQuantileConsistent(t *testing.T) {
	const k, n = 128, 1 << 15
	s := New(k, NewRandomBits(13))
	feedSequential(s, n)
	eps := EpsilonBound(k, uint64(n))
	for _, phi := range []float64{0.2, 0.5, 0.8} {
		v := s.Quantile(phi)
		r := s.Rank(v)
		// Rank(Quantile(φ)) should be within the sketch's own ε of φ: both
		// directions consult the same retained summary.
		if math.Abs(r-phi) > eps {
			t.Errorf("phi=%.2f: sketch-rank of own quantile = %.4f", phi, r)
		}
	}
}

func TestQuantilesBatchMatchesSingle(t *testing.T) {
	s := New(64, NewRandomBits(17))
	feedSequential(s, 50000)
	phis := []float64{0, 0.1, 0.5, 0.9, 1}
	batch := s.Quantiles(phis)
	for i, phi := range phis {
		if single := s.Quantile(phi); single != batch[i] {
			t.Errorf("phi=%.2f: batch %v != single %v", phi, batch[i], single)
		}
	}
}

func TestMergeMatchesConcatenation(t *testing.T) {
	const k, n = 64, 1 << 15
	a := New(k, NewRandomBits(19))
	b := New(k, NewRandomBits(23))
	whole := New(k, NewRandomBits(29))
	for i := 0; i < n; i++ {
		v := float64(i)
		whole.Update(v)
		if i%2 == 0 {
			a.Update(v)
		} else {
			b.Update(v)
		}
	}
	a.Merge(b)
	if a.N() != uint64(n) {
		t.Fatalf("merged N = %d, want %d", a.N(), n)
	}
	if a.Min() != 0 || a.Max() != float64(n-1) {
		t.Fatalf("merged min/max wrong: %v/%v", a.Min(), a.Max())
	}
	eps := EpsilonBound(k, uint64(n))
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		v := a.Quantile(phi)
		r := trueRankOfValue(v, n)
		// Merged sketches may roughly double the error constant; allow 2ε.
		if math.Abs(r-phi) > 2*eps {
			t.Errorf("phi=%.2f: merged rank error %.4f > 2ε=%.4f", phi, math.Abs(r-phi), 2*eps)
		}
	}
}

func TestMergeEmptyAndIntoEmpty(t *testing.T) {
	a := New(64, nil)
	b := New(64, nil)
	feedSequential(b, 10000)
	a.Merge(b) // into empty
	if a.N() != 10000 {
		t.Fatalf("N = %d, want 10000", a.N())
	}
	before := a.Quantile(0.5)
	empty := New(64, nil)
	a.Merge(empty) // empty into full: no-op
	if a.N() != 10000 || a.Quantile(0.5) != before {
		t.Fatal("merging empty sketch changed state")
	}
}

func TestMergeKMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merge with different k did not panic")
		}
	}()
	New(64, nil).Merge(New(128, nil))
}

func TestWeightInvariant(t *testing.T) {
	// The total weight of retained items must always equal n.
	s := New(32, NewRandomBits(31))
	check := func() {
		var w uint64 = uint64(len(s.base))
		for i, lv := range s.lvls {
			if lv != nil {
				w += uint64(len(lv)) << uint(i+1)
			}
		}
		if w != s.n {
			t.Fatalf("total weight %d != n %d", w, s.n)
		}
	}
	for i := 0; i < 50000; i++ {
		s.Update(float64(i % 997))
		if i%977 == 0 {
			check()
		}
	}
	check()
}

func TestLevelsSortedInvariant(t *testing.T) {
	s := New(16, NewRandomBits(37))
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 30000; i++ {
		s.Update(rng.Float64())
	}
	for li, lv := range s.lvls {
		if lv == nil {
			continue
		}
		if len(lv) != s.k {
			t.Fatalf("level %d has %d items, want k=%d", li, len(lv), s.k)
		}
		if !sort.Float64sAreSorted(lv) {
			t.Fatalf("level %d not sorted", li)
		}
	}
}

func TestDeterministicWithFixedBits(t *testing.T) {
	a := New(64, NewFixedBits(false))
	b := New(64, NewFixedBits(false))
	for i := 0; i < 100000; i++ {
		v := float64((i * 2654435761) % 1000003)
		a.Update(v)
		b.Update(v)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(phi) != b.Quantile(phi) {
			t.Fatalf("de-randomised sketches disagree at phi=%v", phi)
		}
	}
}

func TestReset(t *testing.T) {
	s := New(64, nil)
	feedSequential(s, 100000)
	s.Reset()
	if !s.IsEmpty() || s.Retained() != 0 {
		t.Fatal("reset did not empty the sketch")
	}
	s.Update(42)
	if s.Quantile(0.5) != 42 || s.N() != 1 {
		t.Fatal("post-reset update broken")
	}
}

func TestPropertyQuantileWithinMinMax(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(43))}
	f := func(seed int64, size uint16, phi float64) bool {
		phi = math.Abs(phi)
		phi -= math.Floor(phi) // φ ∈ [0,1)
		n := int(size)%5000 + 1
		s := New(32, NewRandomBits(seed))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			s.Update(rng.NormFloat64())
		}
		q := s.Quantile(phi)
		return q >= s.Min() && q <= s.Max()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyRankMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(47))}
	f := func(seed int64) bool {
		s := New(32, NewRandomBits(seed))
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for i := 0; i < 20000; i++ {
			s.Update(rng.Float64() * 1000)
		}
		prev := -1.0
		for v := 0.0; v <= 1000; v += 50 {
			r := s.Rank(v)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyMergeWeightConservation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(53))}
	f := func(na, nb uint16) bool {
		a := New(16, NewRandomBits(1))
		b := New(16, NewRandomBits(2))
		for i := 0; i < int(na); i++ {
			a.Update(float64(i))
		}
		for i := 0; i < int(nb); i++ {
			b.Update(float64(i) + 0.5)
		}
		a.Merge(b)
		return a.N() == uint64(na)+uint64(nb)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRelaxedEpsilonFormula(t *testing.T) {
	// ε_r = ε − rε/n + r/n (Section 6.2): at n=r it degrades to 1·(1-ε)+ε… and
	// as n→∞ it approaches ε.
	eps := 0.01
	r := 64
	if got := RelaxedEpsilon(eps, r, 1<<30); math.Abs(got-eps) > 1e-6 {
		t.Errorf("large-n relaxed epsilon %v should approach %v", got, eps)
	}
	small := RelaxedEpsilon(eps, r, 128)
	if small <= eps {
		t.Errorf("small-n relaxed epsilon %v should exceed ε=%v", small, eps)
	}
	// Monotone decreasing in n.
	prev := math.Inf(1)
	for _, n := range []uint64{100, 1000, 10000, 100000} {
		cur := RelaxedEpsilon(eps, r, n)
		if cur > prev {
			t.Errorf("relaxed epsilon not monotone: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestCDF(t *testing.T) {
	s := New(128, NewRandomBits(59))
	const n = 1 << 16
	feedSequential(s, n)
	splits := []float64{float64(n) * 0.25, float64(n) * 0.5, float64(n) * 0.75}
	cdf := s.CDF(splits)
	eps := EpsilonBound(128, uint64(n))
	for i, want := range []float64{0.25, 0.5, 0.75} {
		if math.Abs(cdf[i]-want) > eps {
			t.Errorf("CDF[%d] = %v, want ≈%v", i, cdf[i], want)
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(128, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(float64(i))
	}
}

func BenchmarkQuantile(b *testing.B) {
	s := New(128, nil)
	feedSequential(s, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.5)
	}
}

func BenchmarkMerge(b *testing.B) {
	src := New(128, nil)
	feedSequential(src, 1<<18)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst := New(128, nil)
		dst.Merge(src)
	}
}

func TestPMF(t *testing.T) {
	s := New(128, NewRandomBits(61))
	const n = 1 << 16
	feedSequential(s, n)
	splits := []float64{float64(n) * 0.25, float64(n) * 0.75}
	pmf := s.PMF(splits)
	if len(pmf) != 3 {
		t.Fatalf("PMF length %d, want 3", len(pmf))
	}
	var mass float64
	for _, p := range pmf {
		if p < -1e-12 {
			t.Fatalf("negative PMF mass %v", p)
		}
		mass += p
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("PMF mass %v, want 1", mass)
	}
	eps := EpsilonBound(128, n)
	for i, want := range []float64{0.25, 0.5, 0.25} {
		if math.Abs(pmf[i]-want) > 2*eps {
			t.Errorf("PMF[%d] = %v, want ≈%v", i, pmf[i], want)
		}
	}
}
