package quantiles

import "testing"

func FuzzUnmarshal(f *testing.F) {
	good := New(16, NewRandomBits(1))
	for i := 0; i < 3000; i++ {
		good.Update(float64(i))
	}
	data, _ := good.MarshalBinary()
	f.Add(data)
	f.Add([]byte{})
	f.Add(data[:20])
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Unmarshal(b, nil)
		if err != nil {
			return
		}
		// Decoded sketches must be internally consistent and usable.
		if s.N() > 0 {
			q := s.Quantile(0.5)
			if q < s.Min() || q > s.Max() {
				t.Fatal("decoded sketch returns quantile outside [min,max]")
			}
		}
		s.Update(1.5)
		_ = s.Quantile(0.9)
		d2, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Unmarshal(d2, nil); err != nil {
			t.Fatalf("re-encode of decoded sketch failed to decode: %v", err)
		}
	})
}
