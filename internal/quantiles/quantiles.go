// Package quantiles implements a mergeable streaming quantiles sketch in the
// style of Agarwal et al., "Mergeable Summaries" (PODS 2012) — the algorithm
// behind the Apache DataSketches Quantiles sketch that "Fast Concurrent Data
// Sketches" (PPoPP 2020) instantiates in Section 6.2.
//
// The sketch keeps a base buffer of up to 2k raw items plus a sequence of
// levels, each holding either nothing or exactly k sorted items; an item at
// level i carries weight 2^(i+1). When the base buffer fills it is sorted
// and "zipped" (every other item, random offset) into a level-0 carry, which
// propagates like binary addition: occupied levels are merged into the carry
// and cleared until an empty level receives it.
//
// The sketch is probably-approximately-correct (PAC): a query for quantile φ
// returns an element whose normalized rank is within ε of φ with probability
// at least 1−δ, where ε shrinks as k grows (for k=128, ε ≈ 1.7% at the
// DataSketches default confidence).
//
// Randomness — the zip offset coin flips — is injected through a BitSource,
// which is the paper's de-randomisation oracle (Section 4): given the oracle
// output, the sketch behaves deterministically, which is what lets the
// relaxed sequential specification be defined at all.
package quantiles

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BitSource supplies the random bits consumed by compactions. It is the
// de-randomisation oracle of the paper: tests can fix the coin flips.
type BitSource interface {
	Bit() bool
}

// rngBits adapts math/rand to BitSource.
type rngBits struct{ r *rand.Rand }

func (b rngBits) Bit() bool { return b.r.Int63()&1 == 1 }

// NewRandomBits returns a BitSource backed by math/rand with the given seed.
func NewRandomBits(seed int64) BitSource {
	return rngBits{rand.New(rand.NewSource(seed))}
}

// fixedBits is a deterministic BitSource for tests.
type fixedBits struct{ v bool }

func (f fixedBits) Bit() bool { return f.v }

// NewFixedBits returns a BitSource that always yields v — a fully
// de-randomised sketch for deterministic tests.
func NewFixedBits(v bool) BitSource { return fixedBits{v} }

// Sketch is a sequential mergeable quantiles sketch over float64 values.
// It is not safe for concurrent use.
type Sketch struct {
	k    int
	n    uint64
	min  float64
	max  float64
	base []float64   // unsorted base buffer, cap 2k
	lvls [][]float64 // lvls[i] is nil or a sorted slice of exactly k items
	bits BitSource
}

// New returns an empty sketch with summary parameter k (items per level).
// k must be ≥ 2 and even behaviour is identical for odd k, but powers of two
// are customary. bits supplies compaction coin flips; pass nil for a
// default source seeded from k.
func New(k int, bits BitSource) *Sketch {
	if k < 2 {
		panic(fmt.Sprintf("quantiles: k must be ≥ 2, got %d", k))
	}
	if bits == nil {
		bits = NewRandomBits(int64(k))
	}
	return &Sketch{
		k:    k,
		min:  math.Inf(1),
		max:  math.Inf(-1),
		base: make([]float64, 0, 2*k),
		bits: bits,
	}
}

// K returns the summary parameter.
func (s *Sketch) K() int { return s.k }

// N returns the number of items the sketch has summarised.
func (s *Sketch) N() uint64 { return s.n }

// IsEmpty reports whether no items have been processed.
func (s *Sketch) IsEmpty() bool { return s.n == 0 }

// Min returns the exact minimum item seen (+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the exact maximum item seen (−Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// Update processes one stream value.
func (s *Sketch) Update(v float64) {
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.n++
	s.base = append(s.base, v)
	if len(s.base) == 2*s.k {
		s.compactBase()
	}
}

// compactBase sorts and zips the full base buffer into a level-0 carry and
// propagates it.
func (s *Sketch) compactBase() {
	sort.Float64s(s.base)
	carry := s.zip(s.base)
	s.base = s.base[:0]
	s.propagate(0, carry)
}

// zip halves a sorted 2k-item slice, keeping every other element starting at
// a random offset. The returned slice is freshly allocated (it becomes level
// storage).
func (s *Sketch) zip(in []float64) []float64 {
	offset := 0
	if s.bits.Bit() {
		offset = 1
	}
	out := make([]float64, len(in)/2)
	for i := range out {
		out[i] = in[2*i+offset]
	}
	return out
}

// propagate performs the binary-addition carry walk: insert `carry` (sorted,
// k items) at level lvl, merging and re-zipping through occupied levels.
func (s *Sketch) propagate(lvl int, carry []float64) {
	for {
		for len(s.lvls) <= lvl {
			s.lvls = append(s.lvls, nil)
		}
		if s.lvls[lvl] == nil {
			s.lvls[lvl] = carry
			return
		}
		merged := mergeSorted(s.lvls[lvl], carry)
		s.lvls[lvl] = nil
		carry = s.zip(merged)
		lvl++
	}
}

// mergeSorted merges two sorted slices into a new sorted slice.
func mergeSorted(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Merge folds other into s; afterwards s summarises the concatenation of
// both streams. other is not modified.
func (s *Sketch) Merge(other *Sketch) {
	if other.k != s.k {
		panic(fmt.Sprintf("quantiles: cannot merge k=%d into k=%d", other.k, s.k))
	}
	if other.n == 0 {
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	// Base buffer items are raw weight-1 items; replay them. Note Update
	// maintains n, min, max itself, so feed via the low-level path.
	for _, v := range other.base {
		s.n++
		s.base = append(s.base, v)
		if len(s.base) == 2*s.k {
			s.compactBase()
		}
	}
	// Each occupied level is a k-item summary of 2^(i+1)·k raw items:
	// carry-add a copy into our levels at the same height.
	for i, lv := range other.lvls {
		if lv == nil {
			continue
		}
		s.n += uint64(s.k) << uint(i+1)
		carry := append([]float64(nil), lv...)
		s.propagate(i, carry)
	}
}

// Reset restores the empty state (the BitSource is kept).
func (s *Sketch) Reset() {
	s.n = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.base = s.base[:0]
	s.lvls = s.lvls[:0]
}

// weightedItem pairs a retained value with its weight.
type weightedItem struct {
	value  float64
	weight uint64
}

// gather collects all retained items with weights, sorted by value.
func (s *Sketch) gather() []weightedItem {
	items := make([]weightedItem, 0, len(s.base)+len(s.lvls)*s.k)
	for _, v := range s.base {
		items = append(items, weightedItem{v, 1})
	}
	for i, lv := range s.lvls {
		if lv == nil {
			continue
		}
		w := uint64(1) << uint(i+1)
		for _, v := range lv {
			items = append(items, weightedItem{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].value < items[j].value })
	return items
}

// Quantile returns an element of the stream whose normalized rank is
// approximately φ. φ=0 returns the exact minimum and φ=1 the exact maximum.
func (s *Sketch) Quantile(phi float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return s.min
	}
	if phi >= 1 {
		return s.max
	}
	items := s.gather()
	target := phi * float64(s.n)
	var cum float64
	for _, it := range items {
		cum += float64(it.weight)
		if cum >= target {
			return it.value
		}
	}
	return s.max
}

// Quantiles evaluates multiple quantile fractions in one gather pass.
func (s *Sketch) Quantiles(phis []float64) []float64 {
	out := make([]float64, len(phis))
	if s.n == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	items := s.gather()
	for idx, phi := range phis {
		switch {
		case phi <= 0:
			out[idx] = s.min
		case phi >= 1:
			out[idx] = s.max
		default:
			target := phi * float64(s.n)
			var cum float64
			out[idx] = s.max
			for _, it := range items {
				cum += float64(it.weight)
				if cum >= target {
					out[idx] = it.value
					break
				}
			}
		}
	}
	return out
}

// Rank returns the estimated normalized rank of v: the fraction of stream
// items strictly less than v.
func (s *Sketch) Rank(v float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	var below uint64
	for _, x := range s.base {
		if x < v {
			below++
		}
	}
	for i, lv := range s.lvls {
		if lv == nil {
			continue
		}
		w := uint64(1) << uint(i+1)
		// Level slices are sorted: binary search for the boundary.
		lo := sort.SearchFloat64s(lv, v)
		below += uint64(lo) * w
	}
	return float64(below) / float64(s.n)
}

// CDF returns the estimated cumulative distribution evaluated at the given
// split points (which must be sorted ascending).
func (s *Sketch) CDF(splits []float64) []float64 {
	out := make([]float64, len(splits))
	for i, v := range splits {
		out[i] = s.Rank(v)
	}
	return out
}

// PMF returns the estimated probability mass of the len(splits)+1 intervals
// (−∞, splits[0]), [splits[0], splits[1]), …, [splits[last], +∞). The split
// points must be sorted ascending.
func (s *Sketch) PMF(splits []float64) []float64 {
	cdf := s.CDF(splits)
	out := make([]float64, len(splits)+1)
	prev := 0.0
	for i, c := range cdf {
		out[i] = c - prev
		prev = c
	}
	out[len(splits)] = 1 - prev
	return out
}

// Retained returns the number of items currently stored.
func (s *Sketch) Retained() int {
	r := len(s.base)
	for _, lv := range s.lvls {
		if lv != nil {
			r += len(lv)
		}
	}
	return r
}

// EpsilonBound returns an empirical-constant bound on the normalized rank
// error ε of a sequential sketch with parameter k. DataSketches quotes
// ε ≈ 1.7% for k=128 scaling roughly as k^-0.9; we use the conservative
// classical bound c·log₂(n/k)/k capped at 1, with c=1.5.
func EpsilonBound(k int, n uint64) float64 {
	if n <= uint64(2*k) {
		return 0 // everything fits in the base buffer: exact
	}
	eps := 1.5 * math.Log2(float64(n)/float64(k)) / float64(k)
	if eps > 1 {
		eps = 1
	}
	return eps
}

// RelaxedEpsilon returns the PAC error of an r-relaxed quantiles sketch
// (Section 6.2 of the paper): ε_r = ε − rε/n + r/n. The relaxation impact
// vanishes as n → ∞.
func RelaxedEpsilon(eps float64, r int, n uint64) float64 {
	if n == 0 {
		return eps
	}
	fn := float64(n)
	fr := float64(r)
	return eps - fr*eps/fn + fr/fn
}
