package quantiles

import "math"

// Accumulator is a reusable merge target for summaries: the caller-owned
// accumulator of the sharded merge-on-query path. Where MergeSummaries
// allocates a fresh Summary per fold, an Accumulator merges in place over a
// pair of ping-ponged buffers, so once its capacity has grown to the
// working-set size, a query that Resets it and folds every shard summary
// into it allocates nothing.
//
// An Accumulator is not safe for concurrent use; pool or own one per
// goroutine. The summaries folded into it are never retained or mutated.
type Accumulator struct {
	// cur is the merged state so far; its slices are owned by the
	// accumulator and reused across Resets.
	cur Summary
	// scratchV/scratchC receive each merge pass and are then swapped with
	// cur's slices, so both pairs stabilise at the working-set capacity.
	scratchV []float64
	scratchC []float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// SizeBytes estimates the accumulator's resident heap footprint in bytes:
// the struct header plus the merged-summary and scratch slices at their
// retained capacity — the memory-budget accounting hook of the sharded
// layer. A freshly built accumulator reports only the header; the figure
// grows to the working-set capacity after the first merge pass.
func (a *Accumulator) SizeBytes() int {
	return 96 + 8*(cap(a.cur.values)+cap(a.cur.cum)+cap(a.scratchV)+cap(a.scratchC))
}

// Reset empties the accumulator, retaining capacity.
func (a *Accumulator) Reset() {
	a.cur.values = a.cur.values[:0]
	a.cur.cum = a.cur.cum[:0]
	a.cur.n = 0
	a.cur.min, a.cur.max = 0, 0
}

// Merge folds one immutable summary into the accumulator. Equivalent to
// cur = MergeSummaries(cur, s), but reusing the accumulator's buffers.
func (a *Accumulator) Merge(s *Summary) {
	if s == nil || s.n == 0 {
		return
	}
	if a.cur.n == 0 {
		a.cur.values = append(a.cur.values[:0], s.values...)
		a.cur.cum = append(a.cur.cum[:0], s.cum...)
		a.cur.n, a.cur.min, a.cur.max = s.n, s.min, s.max
		return
	}
	outV := a.scratchV[:0]
	outC := a.scratchC[:0]
	var cum float64
	i, j := 0, 0
	for i < len(a.cur.values) || j < len(s.values) {
		takeCur := j >= len(s.values) ||
			(i < len(a.cur.values) && a.cur.values[i] <= s.values[j])
		if takeCur {
			cum += a.cur.weight(i)
			outV = append(outV, a.cur.values[i])
			i++
		} else {
			cum += s.weight(j)
			outV = append(outV, s.values[j])
			j++
		}
		outC = append(outC, cum)
	}
	// The pre-merge slices become next round's scratch.
	a.scratchV, a.cur.values = a.cur.values, outV
	a.scratchC, a.cur.cum = a.cur.cum, outC
	a.cur.n += s.n
	a.cur.min = math.Min(a.cur.min, s.min)
	a.cur.max = math.Max(a.cur.max, s.max)
}

// FoldInto folds the receiver's accumulated summary into dst without
// mutating the receiver — the retired-state drain hook of the sharded
// layer's live resharding: a legacy Accumulator published by a completed
// Resize is folded into every merged-query accumulator exactly like one
// more shard summary. The merge reads the receiver's current state in
// place (no detached Summary copy), so it allocates nothing once dst's
// buffers have grown; the receiver is only read, making concurrent folds
// into distinct accumulators safe.
func (a *Accumulator) FoldInto(dst *Accumulator) { dst.Merge(&a.cur) }

// N returns the item count of the accumulated state.
func (a *Accumulator) N() uint64 { return a.cur.n }

// Min returns the accumulated minimum (NaN when empty).
func (a *Accumulator) Min() float64 { return a.cur.Min() }

// Max returns the accumulated maximum (NaN when empty).
func (a *Accumulator) Max() float64 { return a.cur.Max() }

// Quantile returns an element of the accumulated state whose normalized rank
// is approximately phi.
func (a *Accumulator) Quantile(phi float64) float64 { return a.cur.Quantile(phi) }

// Rank returns the estimated normalized rank of v in the accumulated state.
func (a *Accumulator) Rank(v float64) float64 { return a.cur.Rank(v) }

// Summary returns the accumulated state as an immutable Summary, detached
// from the accumulator's reusable buffers (this copy is the only allocation
// of a steady-state accumulator query).
func (a *Accumulator) Summary() *Summary {
	if a.cur.n == 0 {
		return emptySummary
	}
	return &Summary{
		values: append([]float64(nil), a.cur.values...),
		cum:    append([]float64(nil), a.cur.cum...),
		n:      a.cur.n,
		min:    a.cur.min,
		max:    a.cur.max,
	}
}
