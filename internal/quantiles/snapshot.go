package quantiles

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Snapshot export/import for quantile Accumulators — the persistence hooks
// of the registry checkpoint plane. ExportTo serialises the accumulated
// merged summary (values with cumulative weights); ImportFrom rebuilds a
// Summary from untrusted bytes, validates every structural invariant the
// query paths rely on (sorted values, strictly increasing cumulative
// weights, weight total matching n), and folds it in through the ordinary
// Merge path.
//
// Body layout (little-endian):
//
//	n      uint64
//	min    uint64 (float64 bits)
//	max    uint64 (float64 bits)
//	count  uint32
//	values count × uint64 (float64 bits, ascending)
//	cum    count × uint64 (float64 bits, strictly increasing, cum[count-1] == n)
const accSnapMin = 8 + 8 + 8 + 4

// ErrSnapshotMismatch is the quantiles counterpart of the other families'
// config-mismatch error. The family is parameter-free at merge time (any two
// summaries fold), so nothing currently returns it; it exists so callers can
// treat all four families' snapshot errors uniformly.
var ErrSnapshotMismatch = errors.New("quantiles: snapshot config mismatch")

// ExportTo appends the accumulator's merged summary to dst and returns the
// extended slice. The receiver is only read; with a pre-grown dst the encode
// allocates nothing.
func (a *Accumulator) ExportTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, a.cur.n)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.cur.min))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.cur.max))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.cur.values)))
	for _, v := range a.cur.values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	for _, c := range a.cur.cum {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c))
	}
	return dst
}

// ImportFrom folds a snapshot produced by ExportTo into the receiver through
// the ordinary Merge path. Structural violations return ErrCorrupt; on any
// error the receiver is unchanged. An empty snapshot (n == 0) is a no-op.
func (a *Accumulator) ImportFrom(data []byte) error {
	if len(data) < accSnapMin {
		return fmt.Errorf("%w: short quantiles snapshot (%d bytes)", ErrCorrupt, len(data))
	}
	n := binary.LittleEndian.Uint64(data[0:])
	min := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	max := math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	count := int(binary.LittleEndian.Uint32(data[24:]))
	if len(data) != accSnapMin+16*count {
		return fmt.Errorf("%w: length %d does not match count %d", ErrCorrupt, len(data), count)
	}
	if n == 0 {
		if count != 0 {
			return fmt.Errorf("%w: %d retained values with n=0", ErrCorrupt, count)
		}
		return nil
	}
	if count == 0 {
		return fmt.Errorf("%w: n=%d with no retained values", ErrCorrupt, n)
	}
	if math.IsNaN(min) || math.IsNaN(max) || min > max {
		return fmt.Errorf("%w: bad min/max", ErrCorrupt)
	}
	values := make([]float64, count)
	cum := make([]float64, count)
	body := data[accSnapMin:]
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	for i := range cum {
		cum[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*(count+i):]))
	}
	prev := math.Inf(-1)
	for i, v := range values {
		if math.IsNaN(v) || v < prev {
			return fmt.Errorf("%w: values not sorted at %d", ErrCorrupt, i)
		}
		prev = v
	}
	prevC := 0.0
	for i, c := range cum {
		if math.IsNaN(c) || c <= prevC {
			return fmt.Errorf("%w: cumulative weights not increasing at %d", ErrCorrupt, i)
		}
		prevC = c
	}
	// The weight total must account for exactly the n items the summary
	// claims, and the exact extrema must bracket the retained values.
	if cum[count-1] != float64(n) {
		return fmt.Errorf("%w: weight total %g does not match n %d", ErrCorrupt, cum[count-1], n)
	}
	if min > values[0] || max < values[count-1] {
		return fmt.Errorf("%w: min/max do not bracket retained values", ErrCorrupt)
	}
	a.Merge(&Summary{values: values, cum: cum, n: n, min: min, max: max})
	return nil
}
