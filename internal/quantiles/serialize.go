package quantiles

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Binary serialization for quantiles sketches, enabling the distributed
// merge workflow (summaries shipped from mappers to a reducer) that
// motivates mergeable summaries in the first place.
//
// Layout (little-endian):
//
//	magic     uint32
//	version   uint8
//	_         uint8 (reserved)
//	k         uint16
//	n         uint64
//	min, max  float64 (only meaningful when n > 0)
//	baseLen   uint32
//	levelBits uint64 (bit i set ⇔ level i present)
//	base      baseLen × float64
//	levels    (popcount(levelBits)) × k × float64, ascending level order
const (
	qMagic   uint32 = 0x51554e54 // "QUNT"
	qVersion byte   = 1
)

// ErrCorrupt is returned when deserialisation fails validation.
var ErrCorrupt = errors.New("quantiles: corrupt serialized sketch")

// MarshalBinary serialises the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var levelBits uint64
	levels := 0
	for i, lv := range s.lvls {
		if lv != nil {
			if i >= 64 {
				return nil, fmt.Errorf("quantiles: level %d out of serialisable range", i)
			}
			levelBits |= 1 << uint(i)
			levels++
		}
	}
	size := 4 + 1 + 1 + 2 + 8 + 16 + 4 + 8 + 8*len(s.base) + 8*levels*s.k
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], qMagic)
	buf[4] = qVersion
	binary.LittleEndian.PutUint16(buf[6:], uint16(s.k))
	binary.LittleEndian.PutUint64(buf[8:], s.n)
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(s.min))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(s.max))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(s.base)))
	binary.LittleEndian.PutUint64(buf[36:], levelBits)
	off := 44
	for _, v := range s.base {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	for _, lv := range s.lvls {
		if lv == nil {
			continue
		}
		for _, v := range lv {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf, nil
}

// Unmarshal reconstructs a sketch from its serialised form. The restored
// sketch uses the provided BitSource for future compactions (nil for a
// default).
func Unmarshal(data []byte, bits BitSource) (*Sketch, error) {
	if len(data) < 44 {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(data[0:]) != qMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != qVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	k := int(binary.LittleEndian.Uint16(data[6:]))
	if k < 2 {
		return nil, fmt.Errorf("%w: invalid k %d", ErrCorrupt, k)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	minV := math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	maxV := math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	baseLen := int(binary.LittleEndian.Uint32(data[32:]))
	if baseLen >= 2*k {
		return nil, fmt.Errorf("%w: base buffer length %d ≥ 2k", ErrCorrupt, baseLen)
	}
	levelBits := binary.LittleEndian.Uint64(data[36:])
	levels := 0
	for b := levelBits; b != 0; b >>= 1 {
		levels += int(b & 1)
	}
	want := 44 + 8*baseLen + 8*levels*k
	if len(data) != want {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(data), want)
	}

	s := New(k, bits)
	s.n = n
	s.min = minV
	s.max = maxV
	off := 44
	for i := 0; i < baseLen; i++ {
		s.base = append(s.base, math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
		off += 8
	}
	var total uint64 = uint64(baseLen)
	for lvl := 0; levelBits>>uint(lvl) != 0; lvl++ {
		for len(s.lvls) <= lvl {
			s.lvls = append(s.lvls, nil)
		}
		if levelBits&(1<<uint(lvl)) == 0 {
			continue
		}
		lv := make([]float64, k)
		for i := 0; i < k; i++ {
			lv[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		if !sort.Float64sAreSorted(lv) {
			return nil, fmt.Errorf("%w: level %d not sorted", ErrCorrupt, lvl)
		}
		s.lvls[lvl] = lv
		total += uint64(k) << uint(lvl+1)
	}
	if total != n {
		return nil, fmt.Errorf("%w: retained weight %d does not match n %d", ErrCorrupt, total, n)
	}
	if n > 0 && (math.IsNaN(minV) || math.IsNaN(maxV) || minV > maxV) {
		return nil, fmt.Errorf("%w: bad min/max", ErrCorrupt)
	}
	return s, nil
}
