package quantiles

import (
	"math"
	"testing"
)

// buildSummary returns a published summary over the given values.
func buildSummary(t *testing.T, k int, seed int64, values []float64) *Summary {
	t.Helper()
	c := NewComposable(k, NewRandomBits(seed))
	c.MergeBuffer(values)
	return c.Snapshot()
}

func TestAccumulatorEqualsMergeSummaries(t *testing.T) {
	// Folding summaries into one reused Accumulator must reproduce the
	// allocating MergeSummaries fold value-for-value, weight-for-weight.
	streams := [][]float64{
		{1, 2, 3, 4, 5},
		{2.5, 2.5, 100, -7},
		{}, // empty summary is a no-op on both paths
		func() []float64 {
			vs := make([]float64, 5000)
			for i := range vs {
				vs[i] = float64((i * 37) % 1000)
			}
			return vs
		}(),
	}
	var ref *Summary
	acc := NewAccumulator()
	for i, vals := range streams {
		s := buildSummary(t, 64, int64(i+1), vals)
		ref = MergeSummaries(ref, s)
		acc.Merge(s)
	}
	if acc.N() != ref.N() {
		t.Fatalf("acc N %d != ref %d", acc.N(), ref.N())
	}
	if acc.Min() != ref.Min() || acc.Max() != ref.Max() {
		t.Fatalf("acc min/max %v/%v != ref %v/%v", acc.Min(), acc.Max(), ref.Min(), ref.Max())
	}
	for _, phi := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		if got, want := acc.Quantile(phi), ref.Quantile(phi); got != want {
			t.Errorf("phi=%v: acc quantile %v != ref %v", phi, got, want)
		}
	}
	for _, v := range []float64{-10, 0, 2.5, 100, 500, 2000} {
		if got, want := acc.Rank(v), ref.Rank(v); got != want {
			t.Errorf("rank(%v): acc %v != ref %v", v, got, want)
		}
	}
}

func TestAccumulatorResetReuse(t *testing.T) {
	// One accumulator reused across 100 independent queries must answer each
	// exactly like a fresh accumulator: Reset leaves no residue.
	acc := NewAccumulator()
	for q := 0; q < 100; q++ {
		vals := make([]float64, 50+q)
		for i := range vals {
			vals[i] = float64(i * (q + 1))
		}
		s := buildSummary(t, 128, int64(q+1), vals)

		acc.Reset()
		acc.Merge(s)
		fresh := NewAccumulator()
		fresh.Merge(s)

		if acc.N() != fresh.N() || acc.N() != uint64(len(vals)) {
			t.Fatalf("query %d: reused N %d, fresh N %d, want %d", q, acc.N(), fresh.N(), len(vals))
		}
		for _, phi := range []float64{0.01, 0.5, 0.99} {
			if acc.Quantile(phi) != fresh.Quantile(phi) {
				t.Fatalf("query %d phi=%v: reused %v != fresh %v",
					q, phi, acc.Quantile(phi), fresh.Quantile(phi))
			}
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	acc := NewAccumulator()
	if acc.N() != 0 {
		t.Errorf("empty N = %d", acc.N())
	}
	if !math.IsNaN(acc.Min()) || !math.IsNaN(acc.Max()) || !math.IsNaN(acc.Quantile(0.5)) {
		t.Error("empty accumulator queries must return NaN")
	}
	if s := acc.Summary(); s.N() != 0 {
		t.Errorf("empty Summary N = %d", s.N())
	}
	acc.Merge(nil)        // nil summary is a no-op
	acc.Merge(&Summary{}) // empty summary is a no-op
	if acc.N() != 0 {
		t.Error("no-op merges changed the accumulator")
	}
}

func TestAccumulatorSummaryDetached(t *testing.T) {
	// The Summary() copy must stay valid after the accumulator is reused —
	// that is the contract that makes pooling the accumulator safe.
	s1 := buildSummary(t, 64, 1, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	s2 := buildSummary(t, 64, 2, []float64{100, 200, 300})
	acc := NewAccumulator()
	acc.Merge(s1)
	snap := acc.Summary()
	wantN, wantMed := snap.N(), snap.Quantile(0.5)

	acc.Reset()
	acc.Merge(s2) // reuse overwrites the accumulator's internal buffers

	if snap.N() != wantN || snap.Quantile(0.5) != wantMed {
		t.Errorf("detached summary changed after accumulator reuse: N %d→%d, median %v→%v",
			wantN, snap.N(), wantMed, snap.Quantile(0.5))
	}
}
