package quantiles

import (
	"math/rand"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 255, 256, 10000, 1 << 17} {
		s := New(128, NewRandomBits(int64(n)))
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			s.Update(rng.NormFloat64() * 100)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := Unmarshal(data, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.N() != s.N() || got.Min() != s.Min() && n > 0 || got.Max() != s.Max() && n > 0 {
			t.Fatalf("n=%d: metadata mismatch", n)
		}
		for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
			a, b := s.Quantile(phi), got.Quantile(phi)
			if n > 0 && a != b {
				t.Fatalf("n=%d phi=%v: %v != %v", n, phi, a, b)
			}
		}
		if got.Retained() != s.Retained() {
			t.Fatalf("n=%d: retained %d != %d", n, got.Retained(), s.Retained())
		}
	}
}

func TestSerializedSketchStillUpdatable(t *testing.T) {
	s := New(64, NewRandomBits(1))
	for i := 0; i < 50000; i++ {
		s.Update(float64(i))
	}
	data, _ := s.MarshalBinary()
	got, err := Unmarshal(data, NewRandomBits(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 50000; i < 100000; i++ {
		got.Update(float64(i))
	}
	if got.N() != 100000 {
		t.Fatalf("N = %d", got.N())
	}
	med := got.Quantile(0.5)
	eps := EpsilonBound(64, 100000)
	if med < (0.5-eps)*100000 || med > (0.5+eps)*100000 {
		t.Fatalf("median %v out of ε bound after resume", med)
	}
}

func TestSerializeMergeAcrossProcesses(t *testing.T) {
	// The distributed workflow: two "mappers" summarise halves, serialise,
	// a "reducer" merges the deserialised summaries.
	a := New(64, NewRandomBits(3))
	b := New(64, NewRandomBits(4))
	for i := 0; i < 40000; i++ {
		if i%2 == 0 {
			a.Update(float64(i))
		} else {
			b.Update(float64(i))
		}
	}
	da, _ := a.MarshalBinary()
	db, _ := b.MarshalBinary()
	ra, err := Unmarshal(da, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Unmarshal(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra.Merge(rb)
	if ra.N() != 40000 {
		t.Fatalf("merged N = %d", ra.N())
	}
	med := ra.Quantile(0.5)
	eps := 2 * EpsilonBound(64, 40000)
	if med < (0.5-eps)*40000 || med > (0.5+eps)*40000 {
		t.Fatalf("merged median %v out of bound", med)
	}
}

func TestSerializeCorruption(t *testing.T) {
	s := New(32, NewRandomBits(5))
	for i := 0; i < 10000; i++ {
		s.Update(float64(i))
	}
	data, _ := s.MarshalBinary()
	cases := map[string]func([]byte) []byte{
		"truncated": func(d []byte) []byte { return d[:len(d)-5] },
		"magic":     func(d []byte) []byte { d[1] ^= 0xff; return d },
		"version":   func(d []byte) []byte { d[4] = 99; return d },
		"k zero":    func(d []byte) []byte { d[6], d[7] = 0, 0; return d },
		"n mangled": func(d []byte) []byte { d[8] ^= 0x55; return d },
		"level unsorted": func(d []byte) []byte {
			// Swap two values inside the first level payload (after the base
			// buffer region) to break sortedness.
			off := len(d) - 16
			for i := 0; i < 8; i++ {
				d[off+i], d[off+8+i] = d[off+8+i], d[off+i]
			}
			return d
		},
	}
	for name, corrupt := range cases {
		c := corrupt(append([]byte(nil), data...))
		if _, err := Unmarshal(c, nil); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}
