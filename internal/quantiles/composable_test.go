package quantiles

import (
	"math"
	"sync"
	"testing"
)

func TestSummaryEmpty(t *testing.T) {
	c := NewComposable(64, NewRandomBits(1))
	s := c.Snapshot()
	if s.N() != 0 {
		t.Error("empty snapshot N should be 0")
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Rank(1)) {
		t.Error("empty snapshot queries should be NaN")
	}
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty snapshot min/max should be NaN")
	}
}

func TestSummaryMatchesGadget(t *testing.T) {
	c := NewComposable(128, NewRandomBits(2))
	var batch []float64
	for i := 0; i < 50000; i++ {
		batch = append(batch, float64(i))
		if len(batch) == 100 {
			c.MergeBuffer(batch)
			batch = batch[:0]
		}
	}
	// The snapshot API contract: immediately after publication, snapshot
	// queries equal gadget queries for every argument.
	s := c.Snapshot()
	for _, phi := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		if got, want := s.Quantile(phi), c.Gadget().Quantile(phi); got != want {
			t.Errorf("phi=%v: snapshot %v != gadget %v", phi, got, want)
		}
	}
	for _, v := range []float64{-1, 0, 100, 25000, 49999, 60000} {
		if got, want := s.Rank(v), c.Gadget().Rank(v); got != want {
			t.Errorf("rank(%v): snapshot %v != gadget %v", v, got, want)
		}
	}
}

func TestSummaryImmutableUnderLaterMerges(t *testing.T) {
	c := NewComposable(32, NewRandomBits(3))
	first := make([]float64, 1000)
	for i := range first {
		first[i] = float64(i)
	}
	c.MergeBuffer(first)
	snap := c.Snapshot()
	medBefore := snap.Quantile(0.5)
	nBefore := snap.N()

	second := make([]float64, 1000)
	for i := range second {
		second[i] = float64(i + 100000)
	}
	c.MergeBuffer(second)

	if snap.Quantile(0.5) != medBefore || snap.N() != nBefore {
		t.Error("published snapshot mutated by a later merge")
	}
	if c.Snapshot().N() != 2000 {
		t.Error("new snapshot missing second batch")
	}
}

func TestSummaryRankQuantileInverse(t *testing.T) {
	c := NewComposable(128, NewRandomBits(4))
	vals := make([]float64, 1<<15)
	for i := range vals {
		vals[i] = float64(i)
	}
	c.MergeBuffer(vals)
	s := c.Snapshot()
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		v := s.Quantile(phi)
		r := s.Rank(v)
		if math.Abs(r-phi) > EpsilonBound(128, s.N())+1.0/float64(s.N()) {
			t.Errorf("phi=%v: rank(quantile)=%v", phi, r)
		}
	}
}

func TestComposableConcurrentSnapshotStress(t *testing.T) {
	c := NewComposable(64, NewRandomBits(5))
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.Snapshot()
				if s.N() == 0 {
					continue
				}
				med := s.Quantile(0.5)
				if med < s.Min() || med > s.Max() {
					t.Error("snapshot internally inconsistent")
					return
				}
			}
		}()
	}
	var batch []float64
	for i := 0; i < 100000; i++ {
		batch = append(batch, float64(i%1000))
		if len(batch) == 64 {
			c.MergeBuffer(batch)
			batch = batch[:0]
		}
	}
	close(stop)
	readers.Wait()
}

func TestComposableTrivialHint(t *testing.T) {
	c := NewComposable(16, nil)
	if c.CalcHint() != 1 {
		t.Error("quantiles hint should be the trivial constant 1")
	}
	if !c.ShouldAdd(1, 42.0) {
		t.Error("quantiles shouldAdd must always accept")
	}
}
