package quantiles

import (
	"math"
	"sync"
	"testing"
)

func TestSummaryEmpty(t *testing.T) {
	c := NewComposable(64, NewRandomBits(1))
	s := c.Snapshot()
	if s.N() != 0 {
		t.Error("empty snapshot N should be 0")
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Rank(1)) {
		t.Error("empty snapshot queries should be NaN")
	}
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty snapshot min/max should be NaN")
	}
}

func TestSummaryMatchesGadget(t *testing.T) {
	c := NewComposable(128, NewRandomBits(2))
	var batch []float64
	for i := 0; i < 50000; i++ {
		batch = append(batch, float64(i))
		if len(batch) == 100 {
			c.MergeBuffer(batch)
			batch = batch[:0]
		}
	}
	// The snapshot API contract: immediately after publication, snapshot
	// queries equal gadget queries for every argument.
	s := c.Snapshot()
	for _, phi := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		if got, want := s.Quantile(phi), c.Gadget().Quantile(phi); got != want {
			t.Errorf("phi=%v: snapshot %v != gadget %v", phi, got, want)
		}
	}
	for _, v := range []float64{-1, 0, 100, 25000, 49999, 60000} {
		if got, want := s.Rank(v), c.Gadget().Rank(v); got != want {
			t.Errorf("rank(%v): snapshot %v != gadget %v", v, got, want)
		}
	}
}

func TestSummaryImmutableUnderLaterMerges(t *testing.T) {
	c := NewComposable(32, NewRandomBits(3))
	first := make([]float64, 1000)
	for i := range first {
		first[i] = float64(i)
	}
	c.MergeBuffer(first)
	snap := c.Snapshot()
	medBefore := snap.Quantile(0.5)
	nBefore := snap.N()

	second := make([]float64, 1000)
	for i := range second {
		second[i] = float64(i + 100000)
	}
	c.MergeBuffer(second)

	if snap.Quantile(0.5) != medBefore || snap.N() != nBefore {
		t.Error("published snapshot mutated by a later merge")
	}
	if c.Snapshot().N() != 2000 {
		t.Error("new snapshot missing second batch")
	}
}

func TestSummaryRankQuantileInverse(t *testing.T) {
	c := NewComposable(128, NewRandomBits(4))
	vals := make([]float64, 1<<15)
	for i := range vals {
		vals[i] = float64(i)
	}
	c.MergeBuffer(vals)
	s := c.Snapshot()
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		v := s.Quantile(phi)
		r := s.Rank(v)
		if math.Abs(r-phi) > EpsilonBound(128, s.N())+1.0/float64(s.N()) {
			t.Errorf("phi=%v: rank(quantile)=%v", phi, r)
		}
	}
}

func TestComposableConcurrentSnapshotStress(t *testing.T) {
	c := NewComposable(64, NewRandomBits(5))
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.Snapshot()
				if s.N() == 0 {
					continue
				}
				med := s.Quantile(0.5)
				if med < s.Min() || med > s.Max() {
					t.Error("snapshot internally inconsistent")
					return
				}
			}
		}()
	}
	var batch []float64
	for i := 0; i < 100000; i++ {
		batch = append(batch, float64(i%1000))
		if len(batch) == 64 {
			c.MergeBuffer(batch)
			batch = batch[:0]
		}
	}
	close(stop)
	readers.Wait()
}

func TestComposableTrivialHint(t *testing.T) {
	c := NewComposable(16, nil)
	if c.CalcHint() != 1 {
		t.Error("quantiles hint should be the trivial constant 1")
	}
	if !c.ShouldAdd(1, 42.0) {
		t.Error("quantiles shouldAdd must always accept")
	}
}

func TestSnapshotMergeEqualsSequential(t *testing.T) {
	// Folding k shard summaries must answer rank/quantile queries over the
	// concatenated streams within the sketch's documented epsilon: merging
	// summaries is exact (weights and order preserved), so the only error is
	// each shard's own summarisation error.
	cases := []struct {
		name     string
		shards   int
		perShard int
		k        int
	}{
		{"1-shard exact", 1, 100, 128}, // fits base buffer: eps = 0
		{"2-shard small", 2, 5000, 128},
		{"4-shard", 4, 20000, 128},
		{"8-shard", 8, 10000, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.shards * tc.perShard
			// Stream 0..n-1 dealt round-robin across shards, so each shard
			// sees an interleaved slice and the true rank of value v is v/n.
			comps := make([]*Composable, tc.shards)
			for s := range comps {
				comps[s] = NewComposable(tc.k, NewRandomBits(int64(s+1)))
			}
			batches := make([][]float64, tc.shards)
			for v := 0; v < n; v++ {
				s := v % tc.shards
				batches[s] = append(batches[s], float64(v))
			}
			acc := NewAccumulator()
			for s, c := range comps {
				c.MergeBuffer(batches[s])
				c.SnapshotMergeInto(acc)
			}
			if acc.N() != uint64(n) {
				t.Fatalf("merged N %d != %d", acc.N(), n)
			}
			if acc.Min() != 0 || acc.Max() != float64(n-1) {
				t.Fatalf("merged min/max %v/%v want 0/%d", acc.Min(), acc.Max(), n-1)
			}
			// Per-shard eps bounds the merged rank error (weighted combination
			// of the shards' errors can't exceed the worst shard's eps).
			eps := EpsilonBound(tc.k, uint64(tc.perShard))
			if eps == 0 && tc.shards > 1 {
				eps = EpsilonBound(tc.k, uint64(n))
			}
			// ±1/n slack for the discretisation of integer-valued streams.
			slack := 1/float64(n) + 1e-12
			for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				got := acc.Quantile(phi)
				trueRank := got / float64(n)
				if dev := math.Abs(trueRank - phi); dev > eps+slack {
					t.Errorf("phi=%v: merged quantile %v has rank dev %.4f > eps %.4f",
						phi, got, dev, eps)
				}
			}
		})
	}
}

func TestMergeSummariesProperties(t *testing.T) {
	// Edge cases: nil/empty operands, and cum weights strictly increasing.
	c := NewComposable(64, NewRandomBits(3))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	c.MergeBuffer(vals)
	s := c.Snapshot()
	if got := MergeSummaries(nil, nil); got.N() != 0 {
		t.Error("nil merge should be empty")
	}
	if got := MergeSummaries(nil, s); got != s {
		t.Error("nil ⊕ s should return s unchanged")
	}
	if got := MergeSummaries(s, nil); got != s {
		t.Error("s ⊕ nil should return s unchanged")
	}
	m := MergeSummaries(s, s) // self-merge: doubled weights
	if m.N() != 2*s.N() {
		t.Errorf("self-merge N %d, want %d", m.N(), 2*s.N())
	}
	last := 0.0
	for i := 0; i < len(m.values); i++ {
		if m.cum[i] <= last {
			t.Fatalf("cum not strictly increasing at %d", i)
		}
		last = m.cum[i]
	}
	if m.cum[len(m.cum)-1] != float64(m.N()) {
		t.Errorf("total cum weight %v != N %d", m.cum[len(m.cum)-1], m.N())
	}
}
