package quantiles

import (
	"math"
	"sync/atomic"
)

// Summary is an immutable queryable snapshot of a quantiles sketch: the
// retained items gathered with cumulative weights, supporting O(log n)
// quantile and rank queries. It is what concurrent queries receive — the
// composable-sketch snapshot of the paper's Section 5.1.
type Summary struct {
	values []float64 // ascending
	cum    []float64 // cumulative weights aligned with values
	n      uint64
	min    float64
	max    float64
}

// N returns the number of stream items the snapshot summarises.
func (s *Summary) N() uint64 { return s.n }

// Min returns the exact minimum (NaN when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact maximum (NaN when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile returns an element whose normalized rank is approximately phi.
func (s *Summary) Quantile(phi float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return s.min
	}
	if phi >= 1 {
		return s.max
	}
	target := phi * float64(s.n)
	// Binary search the first cumulative weight ≥ target.
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.values[lo]
}

// Rank returns the estimated normalized rank of v.
func (s *Summary) Rank(v float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	// Find the first value ≥ v; the cumulative weight before it is the
	// weight below v.
	lo, hi := 0, len(s.values)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.values[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return s.cum[lo-1] / float64(s.n)
}

// weight returns the individual weight of item i (cum is cumulative).
func (s *Summary) weight(i int) float64 {
	if i == 0 {
		return s.cum[0]
	}
	return s.cum[i] - s.cum[i-1]
}

// MergeSummaries combines two immutable summaries into one summarising the
// concatenation of their streams: values are merged in sorted order with
// their weights, and n/min/max accumulate. Either argument may be nil or
// empty, in which case the other is returned unchanged (summaries are
// immutable, so sharing is safe). The rank error of the result is bounded by
// the max of the inputs' errors, as for sketch-level merging of mergeable
// summaries.
func MergeSummaries(a, b *Summary) *Summary {
	if a == nil || a.n == 0 {
		if b == nil {
			return emptySummary
		}
		return b
	}
	if b == nil || b.n == 0 {
		return a
	}
	out := &Summary{
		values: make([]float64, 0, len(a.values)+len(b.values)),
		cum:    make([]float64, 0, len(a.values)+len(b.values)),
		n:      a.n + b.n,
		min:    math.Min(a.min, b.min),
		max:    math.Max(a.max, b.max),
	}
	var cum float64
	i, j := 0, 0
	for i < len(a.values) || j < len(b.values) {
		takeA := j >= len(b.values) ||
			(i < len(a.values) && a.values[i] <= b.values[j])
		if takeA {
			cum += a.weight(i)
			out.values = append(out.values, a.values[i])
			i++
		} else {
			cum += b.weight(j)
			out.values = append(out.values, b.values[j])
			j++
		}
		out.cum = append(out.cum, cum)
	}
	return out
}

// emptySummary is the snapshot published before any data arrives.
var emptySummary = &Summary{}

// Composable wraps a quantiles Sketch as the shared global sketch of the
// concurrent framework. Unlike Θ — whose query result fits in one atomic
// word — a quantiles snapshot is a structure, so the composable publishes an
// immutable Summary pointer after every mutation; queries are a single
// atomic pointer load. This is the "queryable copy" semantics of the
// paper's snapshot API: immediately after the snapshot is taken, it answers
// exactly like the sketch it copied.
type Composable struct {
	gadget *Sketch
	snap   atomic.Pointer[Summary]
}

// NewComposable returns a composable quantiles sketch with parameter k.
func NewComposable(k int, bits BitSource) *Composable {
	c := &Composable{gadget: New(k, bits)}
	c.snap.Store(emptySummary)
	return c
}

// MergeBuffer folds a batch of raw values into the global sketch and
// publishes a fresh snapshot. Propagator goroutine only.
func (c *Composable) MergeBuffer(values []float64) {
	for _, v := range values {
		c.gadget.Update(v)
	}
	c.publish()
}

// DirectUpdate applies one value during the eager phase and republishes.
func (c *Composable) DirectUpdate(v float64) {
	c.gadget.Update(v)
	c.publish()
}

// publish rebuilds the immutable summary from the gadget. The atomic
// pointer store is the linearisation point of the merge.
func (c *Composable) publish() {
	items := c.gadget.gather()
	sum := &Summary{
		values: make([]float64, len(items)),
		cum:    make([]float64, len(items)),
		n:      c.gadget.n,
		min:    c.gadget.min,
		max:    c.gadget.max,
	}
	var cum float64
	for i, it := range items {
		cum += float64(it.weight)
		sum.values[i] = it.value
		sum.cum[i] = cum
	}
	c.snap.Store(sum)
}

// CalcHint returns 1: the quantiles sketch has no useful pre-filter (every
// update can affect the summary), the trivial implementation the paper
// explicitly allows.
func (c *Composable) CalcHint() uint64 { return 1 }

// ShouldAdd always accepts.
func (c *Composable) ShouldAdd(hint uint64, v float64) bool { return true }

// Snapshot returns the latest published summary (wait-free).
func (c *Composable) Snapshot() *Summary { return c.snap.Load() }

// SnapshotMergeInto folds the latest published summary into the reusable
// accumulator — the merge-on-query path of a sharded deployment: each
// shard's snapshot is taken wait-free and folded without ever touching the
// shard's gadget or allocating a fresh summary.
//
// acc is caller-owned and reusable: the fold merges into acc's ping-ponged
// buffers, so a hot query path can Reset one Accumulator and fold every
// shard into it on each query without allocating once its capacity has
// grown. Repeated reuse is equivalent to a fresh accumulator per query.
func (c *Composable) SnapshotMergeInto(acc *Accumulator) {
	acc.Merge(c.snap.Load())
}

// Quantile is a convenience for Snapshot().Quantile(phi).
func (c *Composable) Quantile(phi float64) float64 {
	return c.snap.Load().Quantile(phi)
}

// Rank is a convenience for Snapshot().Rank(v).
func (c *Composable) Rank(v float64) float64 {
	return c.snap.Load().Rank(v)
}

// N returns the item count of the latest snapshot.
func (c *Composable) N() uint64 { return c.snap.Load().n }

// Gadget exposes the underlying sequential sketch. Only safe after the
// framework has been closed.
func (c *Composable) Gadget() *Sketch { return c.gadget }
