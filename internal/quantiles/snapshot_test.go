package quantiles

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// filledAcc returns an accumulator holding n uniform values in [0, n).
func filledAcc(t *testing.T, n int) *Accumulator {
	t.Helper()
	c := NewComposable(128, NewRandomBits(1))
	buf := make([]float64, 0, 256)
	for i := 0; i < n; i++ {
		buf = append(buf, float64(i))
		if len(buf) == cap(buf) {
			c.MergeBuffer(buf)
			buf = buf[:0]
		}
	}
	c.MergeBuffer(buf)
	a := NewAccumulator()
	c.SnapshotMergeInto(a)
	return a
}

func TestAccumulatorSnapshotRoundTrip(t *testing.T) {
	src := filledAcc(t, 50_000)
	snap := src.ExportTo(nil)

	dst := NewAccumulator()
	if err := dst.ImportFrom(snap); err != nil {
		t.Fatal(err)
	}
	if dst.N() != src.N() || dst.Min() != src.Min() || dst.Max() != src.Max() {
		t.Fatalf("imported (n=%d, min=%v, max=%v), want (n=%d, min=%v, max=%v)",
			dst.N(), dst.Min(), dst.Max(), src.N(), src.Min(), src.Max())
	}
	// The import merges the exact retained summary, so quantile answers are
	// identical, not merely within the rank guarantee.
	for _, phi := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if g, w := dst.Quantile(phi), src.Quantile(phi); g != w {
			t.Fatalf("q(%v): imported %v, want %v", phi, g, w)
		}
	}

	// Empty snapshot round trip is a no-op.
	empty := NewAccumulator()
	if err := NewAccumulator().ImportFrom(empty.ExportTo(nil)); err != nil {
		t.Fatalf("empty round trip: %v", err)
	}
}

func TestAccumulatorSnapshotCorrupt(t *testing.T) {
	valid := filledAcc(t, 10_000).ExportTo(nil)
	mut := func(f func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	// Body layout: n u64 | min f64 | max f64 | count u32 | values | cum.
	count := int(binary.LittleEndian.Uint32(valid[24:]))
	valuesAt := 28
	cumAt := valuesAt + 8*count
	cases := []struct {
		name string
		in   []byte
	}{
		{"short", valid[:8]},
		{"length mismatch", valid[:len(valid)-8]},
		{"values with n=0", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[0:], 0)
		})},
		{"n without values", func() []byte {
			b := make([]byte, accSnapMin)
			binary.LittleEndian.PutUint64(b[0:], 5)
			return b
		}()},
		{"NaN min", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:], math.Float64bits(math.NaN()))
		})},
		{"unsorted values", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[valuesAt:], math.Float64bits(1e300))
		})},
		{"non-increasing cum", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[cumAt:], math.Float64bits(0))
		})},
		{"weight total mismatch", mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[0:], 1)
		})},
	}
	for _, tc := range cases {
		dst := NewAccumulator()
		if err := dst.ImportFrom(tc.in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
		if dst.N() != 0 {
			t.Errorf("%s: receiver mutated by rejected import", tc.name)
		}
	}
}
