package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnique(t *testing.T) {
	s := Unique(100, 50)
	if len(s) != 50 || s[0] != 100 || s[49] != 149 {
		t.Fatalf("bad unique stream: len=%d first=%d last=%d", len(s), s[0], s[49])
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	s := Shuffled(0, 1000, 7)
	seen := make([]bool, 1000)
	for _, v := range s {
		if v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
	// Deterministic for a fixed seed.
	s2 := Shuffled(0, 1000, 7)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("shuffle not deterministic for fixed seed")
		}
	}
	// And actually shuffled (astronomically unlikely to be identity).
	identity := true
	for i, v := range s {
		if v != uint64(i) {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("shuffle produced the identity permutation")
	}
}

func TestZipfSkew(t *testing.T) {
	s := Zipf(100000, 10000, 1.5, 3)
	counts := map[uint64]int{}
	for _, v := range s {
		if v >= 10000 {
			t.Fatalf("value %d outside domain", v)
		}
		counts[v]++
	}
	// Heavy-hitter property: the most frequent value dominates.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(s)/20 {
		t.Errorf("top key has only %d of %d draws; expected heavy skew", max, len(s))
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct keys; domain should still be explored", len(counts))
	}
}

func TestPartition(t *testing.T) {
	offs, sizes := Partition(10, 3)
	if len(offs) != 3 {
		t.Fatal("wrong part count")
	}
	total := 0
	for i := range sizes {
		if i > 0 && offs[i] != offs[i-1]+sizes[i-1] {
			t.Fatal("offsets not contiguous")
		}
		total += sizes[i]
	}
	if total != 10 {
		t.Fatalf("sizes sum to %d, want 10", total)
	}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("uneven split wrong: %v", sizes)
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		p := int(parts)%8 + 1
		offs, sizes := Partition(int(n), p)
		total := 0
		for i := range sizes {
			if sizes[i] < 0 {
				return false
			}
			if i > 0 && offs[i] != offs[i-1]+sizes[i-1] {
				return false
			}
			total += sizes[i]
		}
		return total == int(n) && offs[0] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianMoments(t *testing.T) {
	s := Gaussian(200000, 10, 2, 5)
	var sum, ss float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(s)))
	if math.Abs(mean-10) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Errorf("moments off: mean=%v sd=%v, want 10/2", mean, sd)
	}
}

func TestLogNormalPositiveAndSkewed(t *testing.T) {
	s := LogNormal(100000, 0, 1, 9)
	var sum float64
	for _, v := range s {
		if v <= 0 {
			t.Fatal("log-normal value not positive")
		}
		sum += v
	}
	mean := sum / float64(len(s))
	// ln N(0,1) has mean e^0.5 ≈ 1.649 and median 1: mean > median → skew.
	if math.Abs(mean-math.Exp(0.5)) > 0.1 {
		t.Errorf("mean %v, want ≈%v", mean, math.Exp(0.5))
	}
}
