// Package stream provides the workload generators behind the paper's
// evaluation (Section 7.1): streams of unique values for write-only
// throughput and accuracy profiles, shuffled and skewed variants, and a
// mixed read-write driver with background reader threads.
package stream

import (
	"math"
	"math/rand"
)

// Unique yields n distinct uint64 keys starting at base. This is the
// paper's primary workload: "updating a sketch with a stream of unique
// values". Consecutive integers are fine because the sketches hash them.
func Unique(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// Shuffled yields n distinct keys in random order.
func Shuffled(base uint64, n int, seed int64) []uint64 {
	out := Unique(base, n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Zipf yields n keys drawn from a Zipf distribution over [0, domain) with
// exponent s > 1 — a heavy-hitter stream with many duplicates, the regime
// where pre-filtering pays off fastest.
func Zipf(n int, domain uint64, s float64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, domain-1)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

// Partition splits n items into `parts` nearly-equal contiguous ranges and
// returns the per-part sizes; part i handles [offsets[i], offsets[i]+sizes[i]).
func Partition(n, parts int) (offsets, sizes []int) {
	offsets = make([]int, parts)
	sizes = make([]int, parts)
	base := n / parts
	rem := n % parts
	off := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		offsets[i] = off
		sizes[i] = sz
		off += sz
	}
	return offsets, sizes
}

// Gaussian yields n float64 values from N(mu, sigma²) — the value stream
// for quantiles workloads (e.g. latencies).
func Gaussian(n int, mu, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

// LogNormal yields n positive float64 values with log-normal shape — a
// realistic latency distribution (long right tail).
func LogNormal(n int, mu, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return out
}
