// Package hll implements a dense HyperLogLog sketch for distinct counting.
//
// The artifact appendix of "Fast Concurrent Data Sketches" (PPoPP 2020)
// lists HLL alongside the Θ sketch; this package provides it as a third
// substrate for the generic concurrent framework, demonstrating that the
// framework is not Θ-specific. The implementation follows Flajolet et al.
// (HLL) with the standard small-range (linear counting) correction of
// Heule et al., "HyperLogLog in Practice" (EDBT 2013), which the paper cites
// as prior art for distributed sketch merging.
package hll

import (
	"fmt"
	"math"
	"math/bits"

	"fastsketches/internal/murmur"
)

// Sketch is a dense HLL with 2^p registers. It is not safe for concurrent
// use; the concurrent framework provides that on top.
type Sketch struct {
	p    int
	m    int
	seed uint64
	regs []uint8
}

// New returns an empty HLL sketch with 2^p registers. p must be in [4, 21].
func New(p int, seed uint64) *Sketch {
	if p < 4 || p > 21 {
		panic(fmt.Sprintf("hll: precision must be in [4,21], got %d", p))
	}
	m := 1 << p
	return &Sketch{p: p, m: m, seed: seed, regs: make([]uint8, m)}
}

// P returns the precision parameter.
func (s *Sketch) P() int { return s.p }

// Seed returns the hash seed.
func (s *Sketch) Seed() uint64 { return s.seed }

// SizeBytes estimates the sketch's resident heap footprint in bytes: the
// struct header plus the register array — the memory-budget accounting hook
// of the sharded layer.
func (s *Sketch) SizeBytes() int { return 48 + cap(s.regs) }

// Update processes a stream element identified by a uint64 key.
func (s *Sketch) Update(key uint64) {
	s.UpdateHash(murmur.HashUint64(key, s.seed))
}

// UpdateHash processes an already-hashed element: the top p bits select a
// register, and the register keeps the maximum "rank" (position of the first
// 1-bit in the remaining bits, 1-based).
func (s *Sketch) UpdateHash(h uint64) {
	idx := h >> (64 - s.p)
	rest := h<<s.p | 1<<(s.p-1) // low bits shifted up; guard bit bounds the rank
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// alpha returns the bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the estimated number of distinct elements, applying
// linear counting when the raw estimate is small and registers remain empty.
func (s *Sketch) Estimate() float64 {
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	m := float64(s.m)
	raw := alpha(s.m) * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// Merge folds another HLL into this one by taking the register-wise max.
// The result summarises the union of both streams.
func (s *Sketch) Merge(other *Sketch) {
	if other.p != s.p {
		panic(fmt.Sprintf("hll: cannot merge p=%d into p=%d", other.p, s.p))
	}
	if other.seed != s.seed {
		panic("hll: cannot merge sketches with different seeds")
	}
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
}

// FoldInto folds the receiver's registers into dst by register-wise max
// without mutating the receiver — the retired-state drain hook of the
// sharded layer's live resharding: a legacy sketch published by a completed
// Resize is folded into every merged-query accumulator exactly like one
// more shard snapshot. Allocation-free; the receiver is only read, so
// concurrent folds into distinct accumulators are safe.
func (s *Sketch) FoldInto(dst *Sketch) { dst.Merge(s) }

// MergeHashes folds a batch of raw hashes into the sketch.
func (s *Sketch) MergeHashes(hashes []uint64) {
	for _, h := range hashes {
		s.UpdateHash(h)
	}
}

// Reset restores the empty state.
func (s *Sketch) Reset() {
	for i := range s.regs {
		s.regs[i] = 0
	}
}

// Registers returns a copy of the register array (for tests/serialization).
func (s *Sketch) Registers() []uint8 {
	return append([]uint8(nil), s.regs...)
}

// RSEBound returns the standard error of a dense HLL with 2^p registers:
// ≈ 1.04/√m.
func RSEBound(p int) float64 {
	return 1.04 / math.Sqrt(float64(int(1)<<p))
}
