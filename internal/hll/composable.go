package hll

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Composable wraps an HLL sketch as the shared global sketch of the
// concurrent framework. Like the Θ composable, the query result is a single
// number, so it is published in one atomic word and queries are wait-free.
//
// To keep publication O(1) instead of O(m) per merge, the composable tracks
// the harmonic sum and zero-register count incrementally as registers grow.
type Composable struct {
	gadget  *Sketch
	sumInv  float64 // Σ 2^-reg[i]
	zeros   int
	estBits atomic.Uint64
	// snapshots, when enabled, makes every publish additionally store an
	// immutable register copy so cross-sketch folds (SnapshotMerge) are
	// wait-free. Off by default: the copy is O(m) per propagation.
	snapshots bool
	snap      atomic.Pointer[Sketch]
}

// NewComposable returns a composable HLL with 2^p registers.
func NewComposable(p int, seed uint64) *Composable {
	g := New(p, seed)
	return &Composable{
		gadget: g,
		sumInv: float64(g.m), // all registers 0 → each contributes 2^0 = 1
		zeros:  g.m,
	}
}

// applyHash updates one register, maintaining the incremental sums.
func (c *Composable) applyHash(h uint64) {
	g := c.gadget
	idx := h >> (64 - g.p)
	rest := h<<g.p | 1<<(g.p-1)
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	old := g.regs[idx]
	if rank <= old {
		return
	}
	g.regs[idx] = rank
	c.sumInv += math.Ldexp(1, -int(rank)) - math.Ldexp(1, -int(old))
	if old == 0 {
		c.zeros--
	}
}

// MergeBuffer folds a batch of raw hashes and publishes the new estimate.
// Propagator goroutine only.
func (c *Composable) MergeBuffer(hashes []uint64) {
	for _, h := range hashes {
		c.applyHash(h)
	}
	c.publish()
}

// DirectUpdate applies one raw hash during the eager phase.
func (c *Composable) DirectUpdate(h uint64) {
	c.applyHash(h)
	c.publish()
}

// publish computes the estimate from the incremental sums in O(1) and
// stores it atomically.
func (c *Composable) publish() {
	m := float64(c.gadget.m)
	raw := alpha(c.gadget.m) * m * m / c.sumInv
	est := raw
	if raw <= 2.5*m && c.zeros > 0 {
		est = m * math.Log(m/float64(c.zeros))
	}
	c.estBits.Store(math.Float64bits(est))
	if c.snapshots {
		g := c.gadget
		c.snap.Store(&Sketch{
			p: g.p, m: g.m, seed: g.seed,
			regs: append([]uint8(nil), g.regs...),
		})
	}
}

// EnableSnapshots turns on full-snapshot publication: after every merge the
// composable additionally publishes an immutable copy of the register array,
// making Snapshot and SnapshotMerge available to concurrent readers. Must be
// called before the framework starts ingesting.
func (c *Composable) EnableSnapshots() {
	c.snapshots = true
	c.snap.Store(New(c.gadget.p, c.gadget.seed))
}

// Snapshot returns the latest published immutable register copy (nil unless
// EnableSnapshots was called). Wait-free; safe concurrently with merges. The
// returned sketch must not be mutated.
func (c *Composable) Snapshot() *Sketch { return c.snap.Load() }

// SnapshotMergeInto folds the latest published snapshot into acc by
// register-wise max — the merge-on-query path of a sharded deployment.
// Requires EnableSnapshots and matching (p, seed) on acc.
//
// acc is caller-owned and reusable: the fold writes only into acc's existing
// register array, so a hot query path can Reset one Sketch and fold every
// shard into it on each query without allocating. Repeated reuse is
// equivalent to a fresh accumulator per query.
func (c *Composable) SnapshotMergeInto(acc *Sketch) {
	s := c.snap.Load()
	if s == nil {
		panic("hll: SnapshotMergeInto requires EnableSnapshots before ingestion")
	}
	acc.Merge(s)
}

// CalcHint returns 1 (no pre-filtering: a register max check would need
// synchronised access to the register array, defeating the purpose).
func (c *Composable) CalcHint() uint64 { return 1 }

// ShouldAdd always accepts.
func (c *Composable) ShouldAdd(hint uint64, h uint64) bool { return true }

// Estimate returns the latest published estimate (wait-free).
func (c *Composable) Estimate() float64 {
	return math.Float64frombits(c.estBits.Load())
}

// Gadget exposes the underlying sketch; safe only after framework close.
func (c *Composable) Gadget() *Sketch { return c.gadget }
