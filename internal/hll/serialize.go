package hll

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialization for HLL sketches. The register array is stored
// densely (one byte per register), the format used for interchange when the
// sketch is saturated; a sparse encoding is unnecessary at the sizes this
// library targets.
//
// Layout (little-endian):
//
//	magic   uint32
//	version uint8
//	p       uint8
//	_       uint16 (reserved)
//	seed    uint64
//	regs    2^p bytes
const (
	hMagic   uint32 = 0x484c4c53 // "HLLS"
	hVersion byte   = 1
)

// ErrCorrupt is returned when deserialisation fails validation.
var ErrCorrupt = errors.New("hll: corrupt serialized sketch")

// MarshalBinary serialises the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 16+s.m)
	binary.LittleEndian.PutUint32(buf[0:], hMagic)
	buf[4] = hVersion
	buf[5] = byte(s.p)
	binary.LittleEndian.PutUint64(buf[8:], s.seed)
	copy(buf[16:], s.regs)
	return buf, nil
}

// Unmarshal reconstructs a sketch from its serialised form.
func Unmarshal(data []byte) (*Sketch, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(data[0:]) != hMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != hVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	p := int(data[5])
	if p < 4 || p > 21 {
		return nil, fmt.Errorf("%w: precision %d outside [4,21]", ErrCorrupt, p)
	}
	m := 1 << p
	if len(data) != 16+m {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(data), 16+m)
	}
	s := New(p, binary.LittleEndian.Uint64(data[8:]))
	maxRank := uint8(65 - p)
	for i := 0; i < m; i++ {
		r := data[16+i]
		if r > maxRank {
			return nil, fmt.Errorf("%w: register %d value %d exceeds max rank %d", ErrCorrupt, i, r, maxRank)
		}
		s.regs[i] = r
	}
	return s, nil
}
