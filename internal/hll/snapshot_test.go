package hll

import (
	"errors"
	"slices"
	"testing"

	"fastsketches/internal/murmur"
)

const testSeed = murmur.DefaultSeed

func TestSketchSnapshotRoundTrip(t *testing.T) {
	src := New(12, testSeed)
	for i := uint64(0); i < 10_000; i++ {
		src.Update(i)
	}
	snap := src.ExportTo(nil)

	dst := New(12, testSeed)
	if err := dst.ImportFrom(snap); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(dst.Registers(), src.Registers()) {
		t.Fatal("imported registers differ from source")
	}
	if dst.Estimate() != src.Estimate() {
		t.Fatalf("imported estimate %v, want %v", dst.Estimate(), src.Estimate())
	}

	// Import is a register-wise max fold: merging a snapshot into a sketch
	// that saw a different stream equals merging the sketches directly.
	other := New(12, testSeed)
	for i := uint64(5_000); i < 15_000; i++ {
		other.Update(i)
	}
	merged := New(12, testSeed)
	merged.Merge(src)
	merged.Merge(other)
	if err := other.ImportFrom(snap); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(other.Registers(), merged.Registers()) {
		t.Fatal("snapshot fold differs from direct Merge")
	}

	if err := New(13, testSeed).ImportFrom(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("precision mismatch error = %v, want ErrSnapshotMismatch", err)
	}
	if err := New(12, testSeed+1).ImportFrom(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("seed mismatch error = %v, want ErrSnapshotMismatch", err)
	}
}

func TestSketchSnapshotCorrupt(t *testing.T) {
	src := New(4, testSeed)
	src.Update(42)
	valid := src.ExportTo(nil)
	mut := func(f func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	// Body layout: p u8 | seed u64 | 1<<p registers.
	cases := []struct {
		name string
		in   []byte
	}{
		{"short", valid[:hllSnapMin]},
		{"bad precision", mut(func(b []byte) { b[0] = 3 })},
		{"length mismatch", valid[:len(valid)-1]},
		{"impossible rank", mut(func(b []byte) { b[hllSnapMin] = 65 - 4 + 1 })},
	}
	for _, tc := range cases {
		dst := New(4, testSeed)
		if err := dst.ImportFrom(tc.in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
		if dst.Estimate() != 0 {
			t.Errorf("%s: receiver mutated by rejected import", tc.name)
		}
	}
}
