package hll

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot export/import for HLL sketches — the persistence hooks of the
// registry checkpoint plane. ExportTo is an append-style body encoder (the
// container framing lives in internal/snapshot); ImportFrom is the
// register-wise-max fold of Merge, applied to untrusted bytes with typed
// errors instead of panics.
//
// Body layout (little-endian):
//
//	p    uint8
//	seed uint64
//	regs 2^p bytes
const hllSnapMin = 1 + 8

// ErrSnapshotMismatch is returned by ImportFrom when the snapshot's
// precision or seed differs from the receiver's: register-wise max across
// different parameterisations is meaningless, so the import is refused.
var ErrSnapshotMismatch = errors.New("hll: snapshot config mismatch")

// ExportTo appends the sketch's register state to dst and returns the
// extended slice. The receiver is only read; with a pre-grown dst the encode
// allocates nothing.
func (s *Sketch) ExportTo(dst []byte) []byte {
	dst = append(dst, byte(s.p))
	dst = binary.LittleEndian.AppendUint64(dst, s.seed)
	return append(dst, s.regs...)
}

// ImportFrom folds a snapshot produced by ExportTo into the receiver by
// register-wise max — exactly the Merge/FoldInto fold. Structural violations
// return ErrCorrupt, configuration conflicts ErrSnapshotMismatch; on any
// error the receiver is unchanged.
func (s *Sketch) ImportFrom(data []byte) error {
	if len(data) < hllSnapMin {
		return fmt.Errorf("%w: short HLL snapshot (%d bytes)", ErrCorrupt, len(data))
	}
	p := int(data[0])
	seed := binary.LittleEndian.Uint64(data[1:])
	if p < 4 || p > 21 {
		return fmt.Errorf("%w: precision %d outside [4,21]", ErrCorrupt, p)
	}
	regs := data[hllSnapMin:]
	if len(regs) != 1<<p {
		return fmt.Errorf("%w: %d registers, want %d", ErrCorrupt, len(regs), 1<<p)
	}
	// A register stores the rank of the first 1-bit after the index bits are
	// consumed; the guard bit bounds it at 65−p. Anything larger cannot have
	// been produced by UpdateHash.
	maxRank := uint8(65 - p)
	for _, r := range regs {
		if r > maxRank {
			return fmt.Errorf("%w: register rank %d exceeds %d", ErrCorrupt, r, maxRank)
		}
	}
	if p != s.p {
		return fmt.Errorf("%w: precision %d, receiver has %d", ErrSnapshotMismatch, p, s.p)
	}
	if seed != s.seed {
		return fmt.Errorf("%w: seed %#x, receiver has %#x", ErrSnapshotMismatch, seed, s.seed)
	}
	for i, r := range regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
	return nil
}
