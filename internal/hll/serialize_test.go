package hll

import "testing"

func TestSerializeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 100000} {
		s := New(10, 9001)
		for i := 0; i < n; i++ {
			s.Update(uint64(i))
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Estimate() != s.Estimate() {
			t.Fatalf("n=%d: estimate %v != %v", n, got.Estimate(), s.Estimate())
		}
		if got.P() != s.P() || got.Seed() != s.Seed() {
			t.Fatalf("n=%d: metadata mismatch", n)
		}
	}
}

func TestSerializedMergeable(t *testing.T) {
	a := New(10, 9001)
	b := New(10, 9001)
	for i := 0; i < 30000; i++ {
		a.Update(uint64(i))
		b.Update(uint64(i + 15000))
	}
	data, _ := a.MarshalBinary()
	ra, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	ra.Merge(b)
	want := New(10, 9001)
	for i := 0; i < 45000; i++ {
		want.Update(uint64(i))
	}
	if ra.Estimate() != want.Estimate() {
		t.Fatalf("merge after round trip: %v != %v", ra.Estimate(), want.Estimate())
	}
}

func TestSerializeCorruption(t *testing.T) {
	s := New(8, 9001)
	for i := 0; i < 10000; i++ {
		s.Update(uint64(i))
	}
	data, _ := s.MarshalBinary()
	cases := map[string]func([]byte) []byte{
		"truncated": func(d []byte) []byte { return d[:20] },
		"magic":     func(d []byte) []byte { d[0] ^= 1; return d },
		"version":   func(d []byte) []byte { d[4] = 9; return d },
		"precision": func(d []byte) []byte { d[5] = 30; return d },
		"register":  func(d []byte) []byte { d[16] = 255; return d },
	}
	for name, corrupt := range cases {
		c := corrupt(append([]byte(nil), data...))
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}
