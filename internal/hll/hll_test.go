package hll

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New(12, 9001)
	if got := s.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %v, want 0", got)
	}
}

func TestSmallRangeExactish(t *testing.T) {
	// Linear counting makes small cardinalities near-exact.
	s := New(12, 9001)
	for i := 0; i < 100; i++ {
		s.Update(uint64(i))
	}
	if est := s.Estimate(); math.Abs(est-100) > 5 {
		t.Fatalf("small-range estimate %v, want ≈100", est)
	}
}

func TestAccuracyLargeRange(t *testing.T) {
	const p = 12
	s := New(p, 9001)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		s.Update(uint64(i))
	}
	re := s.Estimate()/n - 1
	if math.Abs(re) > 4*RSEBound(p) {
		t.Fatalf("relative error %.4f exceeds 4·RSE=%.4f", re, 4*RSEBound(p))
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	a := New(10, 9001)
	b := New(10, 9001)
	for i := 0; i < 10000; i++ {
		a.Update(uint64(i % 100))
		if i < 100 {
			b.Update(uint64(i))
		}
	}
	if a.Estimate() != b.Estimate() {
		t.Fatalf("duplicates changed state: %v vs %v", a.Estimate(), b.Estimate())
	}
}

func TestMergeIsUnion(t *testing.T) {
	a := New(12, 9001)
	b := New(12, 9001)
	u := New(12, 9001)
	for i := 0; i < 50000; i++ {
		a.Update(uint64(i))
		u.Update(uint64(i))
	}
	for i := 25000; i < 75000; i++ {
		b.Update(uint64(i))
		u.Update(uint64(i))
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Fatalf("merge not equivalent to union stream: %v vs %v", a.Estimate(), u.Estimate())
	}
}

func TestMergeMismatchPanics(t *testing.T) {
	for name, other := range map[string]*Sketch{
		"precision": New(11, 9001),
		"seed":      New(12, 1234),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch merge did not panic", name)
				}
			}()
			New(12, 9001).Merge(other)
		}()
	}
}

func TestPropertyMergeCommutative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}
	f := func(na, nb uint16) bool {
		a1, b1 := New(8, 9001), New(8, 9001)
		a2, b2 := New(8, 9001), New(8, 9001)
		for i := 0; i < int(na); i++ {
			a1.Update(uint64(i))
			a2.Update(uint64(i))
		}
		for i := 0; i < int(nb); i++ {
			b1.Update(uint64(i) + 1<<32)
			b2.Update(uint64(i) + 1<<32)
		}
		a1.Merge(b1)
		b2.Merge(a2)
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyRegisterMonotone(t *testing.T) {
	// Registers only grow under updates.
	s := New(6, 9001)
	prev := s.Registers()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		s.Update(rng.Uint64())
		cur := s.Registers()
		for j := range cur {
			if cur[j] < prev[j] {
				t.Fatalf("register %d decreased", j)
			}
		}
		prev = cur
	}
}

func TestReset(t *testing.T) {
	s := New(10, 9001)
	for i := 0; i < 10000; i++ {
		s.Update(uint64(i))
	}
	s.Reset()
	if s.Estimate() != 0 {
		t.Fatal("reset did not empty sketch")
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(12, 9001)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i))
	}
}
