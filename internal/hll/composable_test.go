package hll

import (
	"math"
	"sync"
	"testing"

	"fastsketches/internal/murmur"
)

func TestComposableEmpty(t *testing.T) {
	c := NewComposable(10, 9001)
	if c.Estimate() != 0 {
		t.Errorf("empty estimate %v, want 0", c.Estimate())
	}
	if c.CalcHint() != 1 {
		t.Error("HLL hint should be the trivial constant")
	}
	if !c.ShouldAdd(1, 42) {
		t.Error("HLL shouldAdd must always accept")
	}
}

func TestComposableIncrementalMatchesRecompute(t *testing.T) {
	// The O(1) incremental publication must agree with a from-scratch
	// Estimate() of the underlying register array at every batch.
	c := NewComposable(8, 9001)
	var batch []uint64
	for i := 0; i < 50000; i++ {
		batch = append(batch, murmur.HashUint64(uint64(i), 9001))
		if len(batch) == 500 {
			c.MergeBuffer(batch)
			batch = batch[:0]
			inc := c.Estimate()
			full := c.Gadget().Estimate()
			if math.Abs(inc-full) > 1e-9*math.Max(1, full) {
				t.Fatalf("incremental %v != recomputed %v after %d keys", inc, full, i+1)
			}
		}
	}
}

func TestComposableDirectUpdate(t *testing.T) {
	c := NewComposable(12, 9001)
	for i := 0; i < 200; i++ {
		c.DirectUpdate(murmur.HashUint64(uint64(i), 9001))
	}
	// Linear counting keeps small cardinalities near-exact.
	if est := c.Estimate(); math.Abs(est-200) > 10 {
		t.Errorf("estimate %v, want ≈200", est)
	}
}

func TestComposableConcurrentReads(t *testing.T) {
	c := NewComposable(10, 9001)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			est := c.Estimate()
			if est < 0 || math.IsNaN(est) {
				t.Error("invalid estimate observed")
				return
			}
			// Registers only grow, so estimates are near-monotone; the one
			// legal dip is the linear-counting → raw estimator switchover
			// near 2.5m, so allow a small relative regression.
			if est < prev*0.9 {
				t.Errorf("estimate regressed: %v → %v", prev, est)
				return
			}
			prev = est
		}
	}()
	var batch []uint64
	for i := 0; i < 100000; i++ {
		batch = append(batch, murmur.HashUint64(uint64(i), 9001))
		if len(batch) == 64 {
			c.MergeBuffer(batch)
			batch = batch[:0]
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotMergeEqualsSequential(t *testing.T) {
	// HLL register-max merging is lossless: folding k shard snapshots must
	// reproduce the sequential sketch over the concatenated streams exactly,
	// register for register.
	cases := []struct {
		name     string
		shards   int
		perShard int
		p        int
	}{
		{"1-shard", 1, 10000, 10},
		{"2-shard", 2, 20000, 10},
		{"4-shard", 4, 50000, 12},
		{"8-shard overlapping", 8, 30000, 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := New(tc.p, 9001)
			acc := New(tc.p, 9001)
			for s := 0; s < tc.shards; s++ {
				c := NewComposable(tc.p, 9001)
				c.EnableSnapshots()
				var batch []uint64
				for i := 0; i < tc.perShard; i++ {
					// "overlapping" case reuses keys across shards: union
					// semantics must still hold.
					key := uint64(s*tc.perShard + i)
					if tc.shards == 8 {
						key = uint64(i * (s%2 + 1))
					}
					h := murmur.HashUint64(key, 9001)
					batch = append(batch, h)
					seq.UpdateHash(h)
				}
				c.MergeBuffer(batch)
				c.SnapshotMergeInto(acc)
			}
			gotRegs, wantRegs := acc.Registers(), seq.Registers()
			for i := range gotRegs {
				if gotRegs[i] != wantRegs[i] {
					t.Fatalf("register %d: merged %d != sequential %d", i, gotRegs[i], wantRegs[i])
				}
			}
			if acc.Estimate() != seq.Estimate() {
				t.Errorf("merged estimate %v != sequential %v", acc.Estimate(), seq.Estimate())
			}
		})
	}
}

func TestSnapshotMergeRequiresEnable(t *testing.T) {
	c := NewComposable(10, 9001)
	defer func() {
		if recover() == nil {
			t.Error("SnapshotMergeInto without EnableSnapshots must panic")
		}
	}()
	c.SnapshotMergeInto(New(10, 9001))
}
