package hll

import "testing"

func FuzzUnmarshal(f *testing.F) {
	good := New(6, 9001)
	for i := 0; i < 1000; i++ {
		good.Update(uint64(i))
	}
	data, _ := good.MarshalBinary()
	f.Add(data)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Unmarshal(b)
		if err != nil {
			return
		}
		if est := s.Estimate(); est < 0 {
			t.Fatal("negative estimate from decoded sketch")
		}
		s.Update(42)
		d2, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Unmarshal(d2)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if s2.Estimate() != s.Estimate() {
			t.Fatal("round trip not stable")
		}
	})
}
