package core_test

// Tests for the ingest-pressure instrumentation (PressureSample): the cheap
// atomic counters the autoscale controller samples. The contract under test:
// Ingested/Merged are monotonic, Backlog never goes negative, eager updates
// count immediately, filtered items count in neither counter, and after
// Close both counters equal the post-filter stream length exactly.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"fastsketches/internal/core"
)

// countGlobal is a trivial composable that accepts everything and counts
// what reaches it, so Merged can be cross-checked against ground truth.
type countGlobal struct {
	merged atomic.Int64
}

func (g *countGlobal) MergeBuffer(items []uint64)              { g.merged.Add(int64(len(items))) }
func (g *countGlobal) DirectUpdate(uint64)                     { g.merged.Add(1) }
func (g *countGlobal) CalcHint() uint64                        { return 1 }
func (g *countGlobal) ShouldAdd(hint uint64, item uint64) bool { return true }

// filterOddGlobal drops odd items at the pre-filter, to pin that filtered
// items exert no pressure.
type filterOddGlobal struct{ countGlobal }

func (g *filterOddGlobal) ShouldAdd(hint uint64, item uint64) bool { return item%2 == 0 }

func TestPressureExactAfterClose(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeOptimised, core.ModeUnoptimised} {
		g := &countGlobal{}
		fw := core.New[uint64](g, core.Config{Workers: 2, BufferSize: 4, MaxError: 1, Mode: mode})
		fw.Start()
		const per = 1001 // deliberately not a multiple of b: a partial buffer drains in Close
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					fw.Update(w, uint64(i))
				}
			}(w)
		}
		wg.Wait()
		fw.Close()
		p := fw.Pressure()
		if p.Ingested != 2*per || p.Merged != 2*per {
			t.Errorf("%v: pressure after close = %+v, want Ingested == Merged == %d", mode, p, 2*per)
		}
		if p.Merged != g.merged.Load() {
			t.Errorf("%v: Merged = %d, but the global sketch saw %d items", mode, p.Merged, g.merged.Load())
		}
		if p.Backlog() != 0 {
			t.Errorf("%v: backlog after close = %d, want 0", mode, p.Backlog())
		}
	}
}

func TestPressureEagerPhaseCountsImmediately(t *testing.T) {
	g := &countGlobal{}
	fw := core.New[uint64](g, core.Config{Workers: 1, BufferSize: 4, MaxError: 0.1, EagerLimit: 100})
	fw.Start()
	defer fw.Close()
	for i := 0; i < 50; i++ { // well inside the eager limit
		fw.Update(0, uint64(i))
		p := fw.Pressure()
		if p.Ingested != int64(i+1) || p.Merged != int64(i+1) {
			t.Fatalf("after %d eager updates: pressure = %+v, want both %d", i+1, p, i+1)
		}
	}
}

func TestPressureFilteredItemsExertNoPressure(t *testing.T) {
	g := &filterOddGlobal{}
	fw := core.New[uint64](g, core.Config{Workers: 1, BufferSize: 4, MaxError: 1})
	fw.Start()
	const n = 1000
	for i := 0; i < n; i++ {
		fw.Update(0, uint64(i))
	}
	fw.Close()
	if p := fw.Pressure(); p.Ingested != n/2 || p.Merged != n/2 {
		t.Errorf("pressure with odd items filtered = %+v, want Ingested == Merged == %d", p, n/2)
	}
}

func TestPressureBacklogBeforePropagation(t *testing.T) {
	// With the propagator never started, one full buffer publishes but is
	// never merged: the backlog must expose exactly those b items, and the
	// Close drain must clear it.
	g := &countGlobal{}
	fw := core.New[uint64](g, core.Config{Workers: 1, BufferSize: 4, MaxError: 1})
	for i := 0; i < 4; i++ { // exactly b: fills and publishes one buffer
		fw.Update(0, uint64(i))
	}
	p := fw.Pressure()
	if p.Ingested != 4 || p.Merged != 0 || p.Backlog() != 4 {
		t.Errorf("pre-propagation pressure = %+v (backlog %d), want 4 ingested, 0 merged", p, p.Backlog())
	}
	fw.Close()
	if p := fw.Pressure(); p.Ingested != 4 || p.Merged != 4 {
		t.Errorf("post-close pressure = %+v, want both 4", p)
	}
}

func TestPressureMonotonicUnderConcurrency(t *testing.T) {
	// A sampler races writers and the propagator: successive samples must be
	// monotonic in both counters with a non-negative backlog — the invariant
	// the autoscale controller's rate computation relies on.
	g := &countGlobal{}
	const writers = 4
	fw := core.New[uint64](g, core.Config{Workers: writers, BufferSize: 4, MaxError: 1})
	fw.Start()
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		var last core.PressureSample
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := fw.Pressure()
			if p.Ingested < last.Ingested || p.Merged < last.Merged {
				t.Errorf("pressure went backwards: %+v after %+v", p, last)
				return
			}
			if p.Ingested-p.Merged < 0 {
				t.Errorf("negative backlog in sample %+v", p)
				return
			}
			last = p
			runtime.Gosched()
		}
	}()
	const per = 8000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fw.Update(w, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	fw.Close()
	close(stop)
	sampler.Wait()
	if p := fw.Pressure(); p.Ingested != writers*per || p.Merged != writers*per {
		t.Errorf("final pressure = %+v, want both %d", p, writers*per)
	}
}
