// Package core implements the generic concurrent sketch framework of
// "Fast Concurrent Data Sketches" (Rinberg et al., PPoPP 2020), Section 5.
//
// The framework turns any composable sequential sketch into a concurrent one:
// N writer goroutines ingest stream elements into thread-local buffers, and a
// single background propagator goroutine merges filled buffers into a shared
// composable ("global") sketch that query threads read wait-free. Writers and
// the propagator synchronise exclusively through one atomic word per writer
// (prop_i), so the steady-state ingestion path is fence-free except for one
// atomic store per b retained items.
//
// Two variants are provided, exactly as in the paper's Algorithm 2:
//
//   - ParSketch (ModeUnoptimised): one local buffer per writer; the writer
//     publishes prop_i = 0 and blocks until the propagator merges the buffer
//     and returns a fresh hint. Relaxation: r = N·b.
//   - OptParSketch (ModeOptimised): two local buffers per writer (double
//     buffering); the writer flips to the fresh buffer, publishes the filled
//     one, and keeps ingesting without waiting. Relaxation: r = 2·N·b.
//
// The framework is strongly linearisable with respect to the r-relaxed
// sequential specification of the underlying sketch (Theorem 1 of the paper):
// a query may miss at most r of the updates that precede it.
//
// For small streams the additive error r can dominate, so the framework
// adapts (Section 5.3): until the stream exceeds a configurable limit
// (2/e² by default), writers update the global sketch directly under a lock
// — sequential semantics, zero relaxation error — and then switch to the
// buffered lazy path for the remainder of the stream.
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Global is the composable-sketch interface the framework is instantiated
// with (Section 5.1 of the paper). The type parameter T is the element type
// after any caller-side preprocessing — raw 64-bit hashes for Θ sketches,
// float64 values for Quantiles.
//
// MergeBuffer and DirectUpdate mutate the sketch and are serialised by the
// framework (MergeBuffer is called only by the propagator goroutine;
// DirectUpdate only under the eager-phase lock, which is released before the
// first MergeBuffer can happen). Snapshot-style queries are provided by the
// concrete composable type and must be safe to run concurrently with
// MergeBuffer — that is the composability contract.
type Global[T any] interface {
	// MergeBuffer folds a batch of pre-filtered elements into the sketch
	// and refreshes the published snapshot. Propagator goroutine only.
	MergeBuffer(items []T)
	// DirectUpdate applies a single element during the eager phase. Called
	// only while the framework's eager lock is held.
	DirectUpdate(item T)
	// CalcHint returns the current pre-filtering hint. It must never return
	// zero — zero is reserved to mean "propagation pending" on the prop_i
	// channel between writer and propagator.
	CalcHint() uint64
	// ShouldAdd reports whether an element can still affect the sketch
	// given a (possibly stale) hint. It must be conservative: if it returns
	// false, the element must be provably irrelevant to every future state
	// (the paper's summary-preservation condition). A trivial
	// implementation returns true always.
	ShouldAdd(hint uint64, item T) bool
}

// BufferAdvisor is an optional extension of Global implementing the
// adaptation the paper's conclusion proposes as future work: "investigate
// additional uses of the hint, for example, in order to dynamically adapt
// the size of the local buffers and respective relaxation error."
//
// When the framework is configured with AdaptiveBuffers and the global
// sketch implements this interface, each writer re-derives its local buffer
// size from every fresh hint. The Θ composable, for instance, grows buffers
// as Θ shrinks: with pre-filtering only a θ fraction of the raw stream is
// retained, so a b-slot buffer represents ≈ b/θ raw updates — growing b as
// 1/θ keeps the propagation frequency (and its fences) roughly constant per
// raw update while the *relative* staleness r/n keeps falling.
type BufferAdvisor interface {
	// AdviseBuffer returns the recommended buffer size for the given hint
	// and configured base size. Implementations must return a value ≥ 1;
	// the framework additionally clamps to [base, base*MaxBufferGrowth].
	AdviseBuffer(hint uint64, base int) int
}

// MaxBufferGrowth caps adaptive buffers at this multiple of the base size,
// bounding the worst-case relaxation at Relaxation() = 2·N·b·MaxBufferGrowth.
const MaxBufferGrowth = 16

// Mode selects between the paper's two algorithm variants.
type Mode int

const (
	// ModeOptimised is OptParSketch: double-buffered writers that do not
	// block while their filled buffer is being propagated. r = 2·N·b.
	ModeOptimised Mode = iota
	// ModeUnoptimised is ParSketch: single-buffered writers that block
	// during propagation. r = N·b.
	ModeUnoptimised
)

func (m Mode) String() string {
	switch m {
	case ModeOptimised:
		return "OptParSketch"
	case ModeUnoptimised:
		return "ParSketch"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterises a Framework.
type Config struct {
	// Workers is N, the number of writer lanes. Each lane must be used by
	// at most one goroutine at a time.
	Workers int
	// BufferSize is b, the number of retained items a writer buffers
	// between propagations. If 0 it is derived via DeriveBufferSize from
	// MaxError, K and Workers.
	BufferSize int
	// Mode selects OptParSketch (default) or ParSketch.
	Mode Mode
	// MaxError is e, the maximum additional relative error the user will
	// tolerate from concurrency on small streams (Section 5.3). Values ≥ 1
	// disable the eager phase entirely (the paper's e = 1.0 configuration).
	MaxError float64
	// K is the accuracy parameter of the underlying sketch (sample count),
	// used only to derive BufferSize when it is 0.
	K int
	// EagerLimit overrides the stream length at which the framework stops
	// eager propagation. 0 derives the paper's 2/e².
	EagerLimit int
	// AdaptiveBuffers enables hint-driven buffer resizing when the global
	// sketch implements BufferAdvisor (the paper's future-work extension).
	AdaptiveBuffers bool
}

// DeriveBufferSize computes the local buffer size b from the sketch accuracy
// parameter k, the concurrency error budget e, and the writer count n, such
// that the weak-adversary relative bias r/(k+r−1) with r = 2·n·b stays below
// e (Section 6.1), clamped to [1, 16]. For e ≥ 1 (eager disabled) it returns
// the default 16.
func DeriveBufferSize(k int, e float64, n int) int {
	const bMax = 16
	if e >= 1 || k <= 2 || n < 1 {
		return bMax
	}
	b := int(e * float64(k-2) / ((1 - e) * 2 * float64(n)))
	if b < 1 {
		return 1
	}
	if b > bMax {
		return bMax
	}
	return b
}

// DeriveEagerLimit returns the paper's eager-phase length 2/e² for error
// budget e (0 when the eager phase is disabled).
func DeriveEagerLimit(e float64) int {
	if e >= 1 || e <= 0 {
		return 0
	}
	return int(2 / (e * e))
}

// cacheLinePad separates hot per-writer state from its neighbours so writer
// lanes do not false-share.
type cacheLinePad [8]uint64

// writer is one ingestion lane (the paper's thread t_i state, lines 104-109).
type writer[T any] struct {
	_ cacheLinePad
	// prop is the single synchronisation word between this writer and the
	// propagator: 0 means "filled buffer awaiting propagation"; any other
	// value is the freshest hint, stored by the propagator when the merge
	// completed. All other fields are plain because every cross-goroutine
	// hand-off is ordered by a store/load of prop.
	prop atomic.Uint64
	// buf[cur] is the buffer being filled; in OptParSketch buf[1-cur] is
	// the one being propagated. ParSketch uses only buf[0].
	buf  [2][]T
	cur  int
	hint uint64
	// bEff is the effective buffer size; equals the configured b unless
	// adaptive buffering grows it in response to hints.
	bEff int
	// hintParked/hintWake are the writer-side park/wake handshake of
	// awaitHint, mirroring the propagator's: a writer blocked on a pending
	// propagation publishes hintParked and parks; the propagator posts a
	// token after storing the fresh hint if it observes the park. Same
	// lost-wakeup argument as propParked (sequentially consistent store/load
	// pairs on prop and hintParked, in opposite orders on the two sides).
	hintParked atomic.Bool
	hintWake   chan struct{}
	// seenLazy caches "the framework has left the eager phase" so the hot
	// path re-checks the shared mode flag only while it still matters.
	seenLazy bool
	// updates counts items accepted into buffers or eagerly applied (after
	// pre-filtering); read only after quiescence.
	updates int64
	// filtered counts items discarded by ShouldAdd; read after quiescence.
	filtered int64
	_        cacheLinePad
}

// PressureSample is a wait-free snapshot of a framework's ingest-pressure
// counters, the signal plane autoscaling policies sample. Both counters are
// cumulative and monotonically non-decreasing over the framework's lifetime:
//
//   - Ingested counts items handed to the propagation plane — buffered items
//     at the instant their buffer is published (counted once per publication,
//     so the writer hot path pays one extra atomic add per b items, on the
//     step that already pays a fence) plus eager-phase direct updates.
//   - Merged counts items the propagator (or the Close drain) has folded
//     into the global sketch.
//
// Items discarded by pre-filtering (ShouldAdd false) appear in neither
// counter: they never reach the propagator, so they exert no propagation
// pressure — which is exactly the pressure sharding parallelises.
//
// The two counters are read separately, so a sample is not an atomic pair;
// Merged is read first, which keeps Backlog non-negative up to the clamp.
type PressureSample struct {
	Ingested int64
	Merged   int64
}

// Backlog returns the published-but-not-yet-merged item count of the sample:
// how far the propagator is behind the writers. Clamped at zero (the two
// counters are sampled separately, so tiny transient skews are possible).
func (p PressureSample) Backlog() int64 {
	if b := p.Ingested - p.Merged; b > 0 {
		return b
	}
	return 0
}

// Add returns the element-wise sum of two samples, for aggregating pressure
// across the frameworks of a shard group.
func (p PressureSample) Add(q PressureSample) PressureSample {
	return PressureSample{Ingested: p.Ingested + q.Ingested, Merged: p.Merged + q.Merged}
}

// Framework is the generic concurrent sketch: the paper's OptParSketch /
// ParSketch object. Create with New, then Start the propagator, have each
// writer goroutine call Update on its own lane, and Close when ingestion is
// done. Queries go through the composable global sketch and may run at any
// time, including concurrently with updates.
type Framework[T any] struct {
	global  Global[T]
	cfg     Config
	b       int
	writers []*writer[T]

	// ingested/merged are the PressureSample counters. They live on the
	// framework, not the writer, because they are amortised: writers touch
	// ingested once per buffer publication, the propagator touches merged
	// once per merge — never once per update on the lazy path.
	ingested atomic.Int64
	merged   atomic.Int64

	// Eager phase (Section 5.3): guarded by a spin-free mutex-like CAS on
	// eagerState. lazy flips exactly once, eager→lazy.
	lazy       atomic.Bool
	eagerLock  atomic.Bool // spinlock protecting eagerCount + DirectUpdate
	eagerCount int
	eagerLimit int

	advisor BufferAdvisor // non-nil when adaptive buffering is active

	// propParked/propWake are the propagator's park/wake handshake: instead
	// of polling writer lanes with yields and naps while idle (whose wake
	// latency a publishing writer then eats in awaitHint), the propagator
	// publishes itself parked and blocks on propWake; a writer that publishes
	// a buffer (prop_i ← 0) and observes propParked posts a token. Sequential
	// consistency of the prop-store/parked-load vs parked-store/prop-scan
	// pairs rules out the lost wakeup.
	propParked atomic.Bool
	propWake   chan struct{}

	stopped atomic.Bool
	started atomic.Bool
	done    chan struct{}
}

// New builds a Framework over the given composable global sketch.
func New[T any](global Global[T], cfg Config) *Framework[T] {
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("core: Workers must be ≥ 1, got %d", cfg.Workers))
	}
	b := cfg.BufferSize
	if b == 0 {
		b = DeriveBufferSize(cfg.K, cfg.MaxError, cfg.Workers)
	}
	if b < 1 {
		panic(fmt.Sprintf("core: BufferSize must be ≥ 1, got %d", b))
	}
	limit := cfg.EagerLimit
	if limit == 0 {
		limit = DeriveEagerLimit(cfg.MaxError)
	}
	f := &Framework[T]{
		global:     global,
		cfg:        cfg,
		b:          b,
		eagerLimit: limit,
		propWake:   make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	hint := global.CalcHint()
	if hint == 0 {
		panic("core: CalcHint returned the reserved value 0")
	}
	eager := limit > 0
	if !eager {
		f.lazy.Store(true)
	}
	if cfg.AdaptiveBuffers {
		if adv, ok := global.(BufferAdvisor); ok {
			f.advisor = adv
		}
	}
	f.writers = make([]*writer[T], cfg.Workers)
	for i := range f.writers {
		w := &writer[T]{hint: hint, bEff: b, seenLazy: !eager, hintWake: make(chan struct{}, 1)}
		w.buf[0] = make([]T, 0, b)
		if cfg.Mode == ModeOptimised {
			w.buf[1] = make([]T, 0, b)
		}
		// prop starts at the initial hint: "no propagation pending".
		w.prop.Store(hint)
		f.writers[i] = w
	}
	return f
}

// BufferSize returns the effective local buffer size b.
func (f *Framework[T]) BufferSize() int { return f.b }

// Relaxation returns r, the maximum number of preceding updates a query may
// miss: 2·N·b for OptParSketch, N·b for ParSketch (Theorem 1 / Lemma 1).
// With adaptive buffering the worst-case buffer is b·MaxBufferGrowth.
func (f *Framework[T]) Relaxation() int {
	b := f.b
	if f.advisor != nil {
		b *= MaxBufferGrowth
	}
	if f.cfg.Mode == ModeOptimised {
		return 2 * f.cfg.Workers * b
	}
	return f.cfg.Workers * b
}

// Workers returns N.
func (f *Framework[T]) Workers() int { return f.cfg.Workers }

// EffectiveBuffers returns each writer's current buffer size (equal to
// BufferSize unless adaptive buffering grew them). Call only while writers
// are quiescent.
func (f *Framework[T]) EffectiveBuffers() []int {
	out := make([]int, len(f.writers))
	for i, w := range f.writers {
		out[i] = w.bEff
	}
	return out
}

// Start launches the background propagator goroutine.
func (f *Framework[T]) Start() {
	if f.started.Swap(true) {
		panic("core: Framework started twice")
	}
	go f.propagate()
}

// Update ingests one element on writer lane wid. Each lane must be driven by
// a single goroutine at a time (lanes are the paper's update threads t_i).
func (f *Framework[T]) Update(wid int, item T) {
	w := f.writers[wid]
	if !w.seenLazy {
		if f.eagerUpdate(w, item) {
			return
		}
		// The framework has switched to the lazy phase; from now on take
		// the buffered path directly and pick up a fresh hint.
		w.seenLazy = true
		w.hint = f.global.CalcHint()
	}
	if !f.global.ShouldAdd(w.hint, item) {
		w.filtered++
		return
	}
	w.updates++
	w.buf[w.cur] = append(w.buf[w.cur], item)
	if len(w.buf[w.cur]) < w.bEff {
		return
	}
	f.flushLocal(w)
}

// UpdateBatch ingests a contiguous chunk of elements on writer lane wid,
// equivalent to calling Update for each element in order but with the
// per-item overhead hoisted out of the loop: the eager-phase check happens
// once per chunk (a prefix is applied under a single eager-lock acquisition
// with the pressure counters advanced once), and on the lazy path the
// buffer-slot and mode checks run once per buffer fill rather than once per
// item, so the inner loop is ShouldAdd + append. The same single-goroutine-
// per-lane discipline as Update applies.
func (f *Framework[T]) UpdateBatch(wid int, items []T) {
	if len(items) == 0 {
		return
	}
	w := f.writers[wid]
	if !w.seenLazy {
		items = f.eagerUpdateBatch(w, items)
		if len(items) == 0 {
			return
		}
		w.seenLazy = true
		w.hint = f.global.CalcHint()
	}
	for len(items) > 0 {
		buf := w.buf[w.cur]
		// Take at most the buffer's remaining room this pass; filtered
		// items do not consume room, so the pass may underfill and loop.
		n := w.bEff - len(buf)
		if n > len(items) {
			n = len(items)
		}
		accepted := 0
		for _, item := range items[:n] {
			if f.global.ShouldAdd(w.hint, item) {
				buf = append(buf, item)
				accepted++
			}
		}
		w.updates += int64(accepted)
		w.filtered += int64(n - accepted)
		w.buf[w.cur] = buf
		items = items[n:]
		if len(buf) >= w.bEff {
			f.flushLocal(w)
		}
	}
}

// flushLocal publishes the writer's filled current buffer to the propagator
// — the paper's lines 124-129, shared by Update and UpdateBatch.
func (f *Framework[T]) flushLocal(w *writer[T]) {
	if f.cfg.Mode == ModeUnoptimised {
		// ParSketch, lines 124-125: publish, then block until the
		// propagator has merged the (single) buffer and returned a hint.
		f.ingested.Add(int64(len(w.buf[w.cur])))
		f.publish(w)
		w.hint = f.awaitHint(w)
		f.adapt(w)
		return
	}
	// OptParSketch, lines 125-129: wait for the previous propagation (if
	// still in flight), adopt its hint, flip to the fresh buffer, and
	// publish the filled one.
	w.hint = f.awaitHint(w)
	w.cur = 1 - w.cur
	f.ingested.Add(int64(len(w.buf[1-w.cur])))
	f.publish(w)
	f.adapt(w)
}

// publish stores the "propagation pending" sentinel on the writer's prop
// word and wakes the propagator if it parked itself while idle.
func (f *Framework[T]) publish(w *writer[T]) {
	w.prop.Store(0)
	if f.propParked.Load() {
		select {
		case f.propWake <- struct{}{}:
		default:
		}
	}
}

// adapt re-derives the writer's effective buffer size from its fresh hint
// (the future-work extension; no-op unless configured).
func (f *Framework[T]) adapt(w *writer[T]) {
	if f.advisor == nil {
		return
	}
	b := f.advisor.AdviseBuffer(w.hint, f.b)
	if b < f.b {
		b = f.b
	}
	if max := f.b * MaxBufferGrowth; b > max {
		b = max
	}
	w.bEff = b
}

// hintSpins is how many times awaitHint polls the prop word (yielding
// between polls) before parking. Package variable so tests can force the
// park path deterministically.
var hintSpins = 8

// awaitHint waits until the propagator posts a non-zero hint on w.prop:
// a few yielding polls (the propagation usually completes within the
// writer's next buffer fill), then park until the propagator's wake. A
// token posted after the writer already observed the hint stays in the
// buffered channel and at worst causes one spurious loop iteration on a
// later wait; the loop re-checks prop, so it is never trusted by itself.
func (f *Framework[T]) awaitHint(w *writer[T]) uint64 {
	for i := 0; i < hintSpins; i++ {
		if h := w.prop.Load(); h != 0 {
			return h
		}
		runtime.Gosched()
	}
	w.hintParked.Store(true)
	for {
		if h := w.prop.Load(); h != 0 {
			w.hintParked.Store(false)
			return h
		}
		<-w.hintWake
	}
}

// eagerUpdate applies item directly to the global sketch if the framework is
// still in the eager phase, returning false once it has switched to lazy.
func (f *Framework[T]) eagerUpdate(w *writer[T], item T) bool {
	if f.lazy.Load() {
		return false
	}
	// Spinlock: the eager phase is short (≤ 2/e² updates) and contention is
	// the sequential bottleneck the paper accepts for small streams.
	for !f.eagerLock.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	if f.lazy.Load() {
		f.eagerLock.Store(false)
		return false
	}
	f.global.DirectUpdate(item)
	w.updates++
	// An eager update is visible immediately: it enters and leaves the
	// propagation plane in one step (both adds happen under the eager lock,
	// whose contention the paper already accepts for small streams).
	f.ingested.Add(1)
	f.merged.Add(1)
	f.eagerCount++
	if f.eagerCount >= f.eagerLimit {
		f.lazy.Store(true)
	}
	f.eagerLock.Store(false)
	return true
}

// eagerUpdateBatch applies as much of items as the eager budget allows
// directly to the global sketch under a single eager-lock acquisition,
// returning the unconsumed suffix (empty when the whole chunk was applied
// eagerly; the full chunk when the framework had already gone lazy). The
// pressure counters advance once for the whole prefix rather than once per
// item — the counter totals are identical to the per-item path, only the
// number of atomic adds changes.
func (f *Framework[T]) eagerUpdateBatch(w *writer[T], items []T) []T {
	if f.lazy.Load() {
		return items
	}
	for !f.eagerLock.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	if f.lazy.Load() {
		f.eagerLock.Store(false)
		return items
	}
	// Not lazy under the lock ⇒ eagerCount < eagerLimit, so n ≥ 1.
	n := f.eagerLimit - f.eagerCount
	if n > len(items) {
		n = len(items)
	}
	for _, item := range items[:n] {
		f.global.DirectUpdate(item)
	}
	w.updates += int64(n)
	f.ingested.Add(int64(n))
	f.merged.Add(int64(n))
	f.eagerCount += n
	if f.eagerCount >= f.eagerLimit {
		f.lazy.Store(true)
	}
	f.eagerLock.Store(false)
	return items[n:]
}

// propSpins is how many empty scans the propagator makes (yielding between
// scans) before parking on its wake channel. Package variable so tests can
// force the park path deterministically.
var propSpins = 8

// propagate is the background propagator thread t_0 (lines 110-115): scan
// writer lanes, merge any filled buffer into the global sketch, reset it,
// and post the fresh hint.
//
// The paper's propagator busy-spins on a dedicated core. To behave well on
// machines with fewer cores than goroutines, ours parks when idle: after a
// few empty scans it publishes propParked and blocks until a writer's
// publication wakes it, so an idle framework consumes no CPU and a
// publication's wake latency is one channel hand-off rather than the
// remainder of a polling nap. Parking never loses a publication: the
// propagator rechecks every lane after publishing propParked, so either it
// sees the writer's prop store or the writer sees propParked and posts the
// wake token (the atomics are sequentially consistent).
func (f *Framework[T]) propagate() {
	defer close(f.done)
	idle := 0
	for !f.stopped.Load() {
		work := false
		for _, w := range f.writers {
			if w.prop.Load() != 0 {
				continue
			}
			idx := w.cur // ParSketch: the only buffer
			if f.cfg.Mode == ModeOptimised {
				idx = 1 - w.cur // OptParSketch: the one the writer flipped away from
			}
			if buf := w.buf[idx]; len(buf) > 0 {
				f.global.MergeBuffer(buf)
				f.merged.Add(int64(len(buf)))
				w.buf[idx] = buf[:0]
			}
			w.prop.Store(f.global.CalcHint())
			if w.hintParked.Load() {
				select {
				case w.hintWake <- struct{}{}:
				default:
				}
			}
			work = true
		}
		if work {
			idle = 0
			continue
		}
		if idle++; idle < propSpins {
			runtime.Gosched()
			continue
		}
		f.propParked.Store(true)
		if f.pendingPublication() || f.stopped.Load() {
			f.propParked.Store(false)
			idle = 0
			continue
		}
		<-f.propWake
		f.propParked.Store(false)
		idle = 0
	}
}

// pendingPublication reports whether any writer lane has a buffer awaiting
// propagation — the propagator's recheck after publishing itself parked.
func (f *Framework[T]) pendingPublication() bool {
	for _, w := range f.writers {
		if w.prop.Load() == 0 {
			return true
		}
	}
	return false
}

// Close stops the propagator and drains every remaining buffered item into
// the global sketch. It must be called after all writer goroutines have
// quiesced; afterwards the global sketch summarises the entire ingested
// stream exactly (no relaxation residue). Close is not idempotent.
func (f *Framework[T]) Close() {
	f.stopped.Store(true)
	if f.started.Load() {
		// Wake the propagator if it is parked; it observes stopped and
		// exits. A stray token is harmless (capacity 1, checked on park).
		select {
		case f.propWake <- struct{}{}:
		default:
		}
		<-f.done
	}
	for _, w := range f.writers {
		// If a publication was in flight, merge the published buffer first.
		// Its items were counted as Ingested when published, so only Merged
		// advances here.
		if w.prop.Load() == 0 {
			idx := w.cur
			if f.cfg.Mode == ModeOptimised {
				idx = 1 - w.cur
			}
			if buf := w.buf[idx]; len(buf) > 0 {
				f.global.MergeBuffer(buf)
				f.merged.Add(int64(len(buf)))
				w.buf[idx] = buf[:0]
			}
			w.prop.Store(f.global.CalcHint())
		}
		// Then the partially-filled current buffer, which was never
		// published: it enters and leaves the propagation plane here.
		if buf := w.buf[w.cur]; len(buf) > 0 {
			f.global.MergeBuffer(buf)
			f.ingested.Add(int64(len(buf)))
			f.merged.Add(int64(len(buf)))
			w.buf[w.cur] = buf[:0]
		}
	}
}

// Pressure returns the framework's cumulative ingest-pressure counters.
// Wait-free and safe to call concurrently with updates, propagation, and
// queries — the sampling hook autoscaling controllers poll. After Close the
// sample is exact: Ingested == Merged == the post-filter stream length.
func (f *Framework[T]) Pressure() PressureSample {
	// Merged first: each item's Merged add happens after its Ingested add,
	// so this read order keeps the sampled backlog from going negative.
	m := f.merged.Load()
	return PressureSample{Ingested: f.ingested.Load(), Merged: m}
}

// Lazy reports whether the framework has left the eager phase.
func (f *Framework[T]) Lazy() bool { return f.lazy.Load() }

// Stats aggregates per-writer counters. Call only while writers are
// quiescent (e.g. after Close).
type Stats struct {
	// Accepted is the number of items that passed pre-filtering and were
	// buffered or eagerly applied.
	Accepted int64
	// Filtered is the number of items discarded by ShouldAdd before
	// reaching any buffer — the paper's key throughput lever.
	Filtered int64
}

// Stats returns aggregated writer counters.
func (f *Framework[T]) Stats() Stats {
	var s Stats
	for _, w := range f.writers {
		s.Accepted += w.updates
		s.Filtered += w.filtered
	}
	return s
}
