package core

import (
	"testing"
	"time"

	"fastsketches/internal/theta"
)

// zeroSpins forces every handshake in the framework onto its park/wake slow
// path so the tests below exercise the parking protocol itself rather than
// winning races during the spin phase. Tests using it must not run in
// parallel.
func zeroSpins(t *testing.T) {
	t.Helper()
	op, oh := propSpins, hintSpins
	propSpins, hintSpins = 0, 0
	t.Cleanup(func() { propSpins, hintSpins = op, oh })
}

// TestPropagatorParkWake checks the idle propagator's park/wake handshake: a
// parked propagator must be woken by a publication (no lost wakeup), and the
// publishing writer's awaitHint park must be woken by the returned hint. With
// zero spin budgets and ParSketch (the writer blocks on every propagation),
// every single buffer fill walks park→wake on both sides; a lost wakeup on
// either side is a deadlock, which the test surfaces as a timeout.
func TestPropagatorParkWake(t *testing.T) {
	zeroSpins(t)
	comp := theta.NewComposable(12, theta.HashKey(1, 99))
	fw := New[uint64](comp, Config{Workers: 1, BufferSize: 1, MaxError: 1, Mode: ModeUnoptimised})
	fw.Start()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			// b=1: every update publishes, parks the propagator's counterpart,
			// and blocks in awaitHint until the merge completes.
			fw.Update(0, theta.HashKey(uint64(i), 42))
			if i%100 == 0 {
				// Let the propagator drain and park again so the next
				// publication must wake it from a genuine park, not catch it
				// mid-scan.
				time.Sleep(time.Millisecond)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("park/wake handshake deadlocked (lost wakeup between writer and propagator)")
	}
	fw.Close()
	if est := comp.Estimate(); est != 5000 {
		t.Errorf("estimate %v, want exactly 5000", est)
	}
}

// TestCloseWakesParkedPropagator checks shutdown while the propagator is
// parked with no pending publication: Close must post the wake token itself
// or hang forever on <-f.done.
func TestCloseWakesParkedPropagator(t *testing.T) {
	zeroSpins(t)
	comp := theta.NewComposable(12, theta.HashKey(2, 99))
	fw := New[uint64](comp, Config{Workers: 2, BufferSize: 4, MaxError: 1})
	fw.Start()
	fw.Update(0, theta.HashKey(7, 42))
	time.Sleep(10 * time.Millisecond) // propagator scans, finds nothing published, parks
	closed := make(chan struct{})
	go func() { fw.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung on a parked propagator")
	}
	if est := comp.Estimate(); est != 1 {
		t.Errorf("estimate %v, want 1 (Close drains the unpublished buffer)", est)
	}
}

// TestOptParSketchBatchPipelines checks the double-buffered batched path
// under zeroed spins: with OptParSketch a writer flips buffers and keeps
// going while the merge is in flight, so UpdateBatch repeatedly lands in
// awaitHint's parked state with a propagation pending on the *other* buffer.
func TestOptParSketchBatchPipelines(t *testing.T) {
	zeroSpins(t)
	comp := theta.NewComposable(12, theta.HashKey(3, 99))
	fw := New[uint64](comp, Config{Workers: 1, BufferSize: 3, MaxError: 1, Mode: ModeOptimised})
	fw.Start()
	const n = 7000 // < 2k → exact
	items := make([]uint64, 0, 100)
	next := uint64(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for next < n {
			items = items[:0]
			for len(items) < 100 && next < n {
				items = append(items, theta.HashKey(next, 42))
				next++
			}
			fw.UpdateBatch(0, items)
		}
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("batched OptParSketch path deadlocked under zeroed spins")
	}
	fw.Close()
	if est := comp.Estimate(); est != n {
		t.Errorf("estimate %v, want exactly %d", est, n)
	}
}
