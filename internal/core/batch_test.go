package core_test

import (
	"math"
	"testing"

	"fastsketches/internal/core"
	"fastsketches/internal/theta"
)

// chunked splits items into chunks of the given size and feeds them through
// UpdateBatch on lane 0.
func chunked(fw *core.Framework[uint64], items []uint64, chunk int) {
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		// Copy: Θ-style callers treat the batch slice as scratch, so the
		// framework must not require the caller's backing array to survive.
		c := make([]uint64, hi-lo)
		copy(c, items[lo:hi])
		fw.UpdateBatch(0, c)
	}
}

func hashedStream(n int) []uint64 {
	items := make([]uint64, n)
	for i := range items {
		items[i] = theta.HashKey(uint64(i), seed)
	}
	return items
}

// TestUpdateBatchExactSmallStream: for n < 2k the sketch is exact, so any
// batching schedule must land on precisely n after Close — in both modes,
// with the eager phase both crossing mid-chunk and disabled.
func TestUpdateBatchExactSmallStream(t *testing.T) {
	const n = 8000 // < 2k = 8192
	items := hashedStream(n)
	for _, mode := range []core.Mode{core.ModeOptimised, core.ModeUnoptimised} {
		for _, maxErr := range []float64{1.0, 0.04} { // eager off / eager limit 1250
			for _, chunk := range []int{1, 3, 16, 257, 1024, n} {
				fw, comp := newThetaFramework(core.Config{Workers: 1, BufferSize: 7, MaxError: maxErr, Mode: mode}, 12)
				fw.Start()
				chunked(fw, items, chunk)
				fw.Close()
				if est := comp.Estimate(); est != n {
					t.Errorf("%v e=%v chunk=%d: estimate %v, want exactly %d", mode, maxErr, chunk, est, n)
				}
				st := fw.Stats()
				if st.Accepted != n || st.Filtered != 0 {
					t.Errorf("%v e=%v chunk=%d: stats %+v, want Accepted=%d Filtered=0", mode, maxErr, chunk, st, n)
				}
				if p := fw.Pressure(); p.Ingested != n || p.Merged != n {
					t.Errorf("%v e=%v chunk=%d: pressure %+v, want {%d %d}", mode, maxErr, chunk, p, n, n)
				}
			}
		}
	}
}

// TestUpdateBatchEquivalentToPerItem pins bit-for-bit equivalence in the
// filtering regime. ParSketch with one writer is deterministic — the writer
// blocks on every propagation, so the hint sequence is a pure function of
// the accepted-item sequence — which lets us demand the batched path produce
// the identical sketch state, stats, and pressure counters as per-item
// Update, including identical ShouldAdd decisions.
func TestUpdateBatchEquivalentToPerItem(t *testing.T) {
	const n = 1 << 17
	items := hashedStream(n)
	cfg := core.Config{Workers: 1, BufferSize: 16, MaxError: 0.04, Mode: core.ModeUnoptimised}

	ref, refComp := newThetaFramework(cfg, 8) // k=256 ≪ n → heavy filtering
	ref.Start()
	for _, it := range items {
		ref.Update(0, it)
	}
	ref.Close()

	for _, chunk := range []int{1, 13, 64, 1000, n} {
		fw, comp := newThetaFramework(cfg, 8)
		fw.Start()
		chunked(fw, items, chunk)
		fw.Close()
		if got, want := comp.Estimate(), refComp.Estimate(); got != want {
			t.Errorf("chunk=%d: estimate %v, per-item reference %v", chunk, got, want)
		}
		if got, want := fw.Stats(), ref.Stats(); got != want {
			t.Errorf("chunk=%d: stats %+v, per-item reference %+v", chunk, got, want)
		}
		if got, want := fw.Pressure(), ref.Pressure(); got != want {
			t.Errorf("chunk=%d: pressure %+v, per-item reference %+v", chunk, got, want)
		}
	}
}

// TestUpdateBatchEagerBoundary crosses the eager→lazy switch in the middle
// of a single chunk: the prefix must be applied eagerly (immediately
// visible), the suffix buffered, nothing lost.
func TestUpdateBatchEagerBoundary(t *testing.T) {
	const limit, n = 100, 250
	fw, comp := newThetaFramework(core.Config{Workers: 1, BufferSize: 8, EagerLimit: limit, MaxError: 0.04}, 12)
	fw.Start()
	if fw.Lazy() {
		t.Fatal("framework should start eager")
	}
	fw.UpdateBatch(0, hashedStream(n))
	if !fw.Lazy() {
		t.Error("a chunk crossing the eager limit must flip the framework lazy")
	}
	// The eager prefix is immediately visible; a concurrent-safe lower bound
	// is limit (the lazy suffix may or may not have merged yet).
	if est := comp.Estimate(); est < limit {
		t.Errorf("mid-stream estimate %v < eager prefix %d", est, limit)
	}
	fw.Close()
	if est := comp.Estimate(); est != n {
		t.Errorf("estimate after close %v, want exactly %d", est, n)
	}
	if st := fw.Stats(); st.Accepted != n {
		t.Errorf("accepted %d, want %d", st.Accepted, n)
	}
}

// TestEagerBatchPressureTotals is the satellite-2 regression test: batching
// the eager path's pressure accounting to one atomic add per chunk must not
// change the counter totals — mid-phase samples and post-Close totals are
// identical to the per-item path at every chunk boundary.
func TestEagerBatchPressureTotals(t *testing.T) {
	const limit = 1000
	cfg := core.Config{Workers: 1, BufferSize: 8, EagerLimit: limit, MaxError: 0.04, Mode: core.ModeUnoptimised}
	ref, _ := newThetaFramework(cfg, 12)
	fw, _ := newThetaFramework(cfg, 12)
	ref.Start()
	fw.Start()
	items := hashedStream(1500) // crosses the limit at the 1000th item

	fed := 0
	for _, chunk := range []int{1, 99, 300, 600, 500} { // boundary falls mid-4th-chunk
		for _, it := range items[fed : fed+chunk] {
			ref.Update(0, it)
		}
		c := make([]uint64, chunk)
		copy(c, items[fed:fed+chunk])
		fw.UpdateBatch(0, c)
		fed += chunk

		refP, p := ref.Pressure(), fw.Pressure()
		if fed <= limit {
			// Entirely inside the eager phase both samples are exact and
			// deterministic: every item entered and left immediately.
			want := core.PressureSample{Ingested: int64(fed), Merged: int64(fed)}
			if p != want {
				t.Errorf("after %d eager items: batched pressure %+v, want %+v", fed, p, want)
			}
			if refP != want {
				t.Errorf("after %d eager items: per-item pressure %+v, want %+v", fed, refP, want)
			}
		} else if p.Ingested < limit || p.Merged < limit {
			t.Errorf("after %d items: batched pressure %+v lost eager-phase counts", fed, p)
		}
	}
	ref.Close()
	fw.Close()
	if refP, p := ref.Pressure(), fw.Pressure(); refP != p {
		t.Errorf("post-close pressure: batched %+v, per-item %+v", p, refP)
	} else if p.Ingested != p.Merged {
		t.Errorf("post-close pressure not drained: %+v", p)
	}
}

// TestUpdateBatchAccuracyConcurrent runs the batched path with concurrent
// writers on a large stream, checking end-to-end accuracy like the per-item
// TestAccuracyUnderConcurrency does.
func TestUpdateBatchAccuracyConcurrent(t *testing.T) {
	const writers, n, chunk = 4, 1 << 20, 512
	fw, comp := newThetaFramework(core.Config{Workers: writers, MaxError: 0.04}, 12)
	fw.Start()
	done := make(chan struct{}, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			base := uint64(w) << 40
			buf := make([]uint64, 0, chunk)
			for i := 0; i < n/writers; i++ {
				buf = append(buf, theta.HashKey(base+uint64(i), seed))
				if len(buf) == chunk {
					fw.UpdateBatch(w, buf)
					buf = buf[:0]
				}
			}
			fw.UpdateBatch(w, buf)
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	fw.Close()
	re := comp.Estimate()/float64(n) - 1
	if math.Abs(re) > 4*theta.RSEBound(4096) {
		t.Errorf("batched concurrent estimate error %.4f exceeds 4·RSE", re)
	}
	if st := fw.Stats(); st.Accepted+st.Filtered != n {
		t.Errorf("accepted %d + filtered %d ≠ %d items fed", st.Accepted, st.Filtered, n)
	}
}
