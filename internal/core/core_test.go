package core_test

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsketches/internal/core"
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/theta"
)

const seed = murmur.DefaultSeed

// newThetaFramework builds a concurrent Θ sketch for tests.
func newThetaFramework(cfg core.Config, lgK int) (*core.Framework[uint64], *theta.Composable) {
	comp := theta.NewComposable(lgK, seed)
	cfg.K = 1 << lgK
	fw := core.New[uint64](comp, cfg)
	return fw, comp
}

// feed pushes n unique keys (disjoint per writer) through the framework with
// the given number of writer goroutines and closes it.
func feed(fw *core.Framework[uint64], writers, n int) {
	fw.Start()
	var wg sync.WaitGroup
	per := n / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < per; i++ {
				fw.Update(w, theta.HashKey(base+uint64(i), seed))
			}
		}(w)
	}
	wg.Wait()
	fw.Close()
}

func TestConfigValidation(t *testing.T) {
	comp := theta.NewComposable(8, seed)
	for name, cfg := range map[string]core.Config{
		"zero workers":     {Workers: 0},
		"negative workers": {Workers: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			core.New[uint64](comp, cfg)
		}()
	}
}

func TestDeriveBufferSize(t *testing.T) {
	cases := []struct {
		k    int
		e    float64
		n    int
		want int
	}{
		{4096, 1.0, 1, 16},  // eager disabled → default
		{4096, 0.04, 12, 7}, // 0.04·4094/(0.96·24) ≈ 7.1
		{4096, 0.04, 1, 16}, // clamped high
		{64, 0.01, 8, 1},    // clamped low
	}
	for _, c := range cases {
		if got := core.DeriveBufferSize(c.k, c.e, c.n); got != c.want {
			t.Errorf("DeriveBufferSize(%d, %v, %d) = %d, want %d", c.k, c.e, c.n, got, c.want)
		}
	}
}

func TestDeriveEagerLimit(t *testing.T) {
	if got := core.DeriveEagerLimit(0.04); got != 1250 {
		t.Errorf("DeriveEagerLimit(0.04) = %d, want 1250 (the paper's 2/e²)", got)
	}
	if got := core.DeriveEagerLimit(1.0); got != 0 {
		t.Errorf("DeriveEagerLimit(1.0) = %d, want 0 (disabled)", got)
	}
}

func TestRelaxationBoundValue(t *testing.T) {
	fw, _ := newThetaFramework(core.Config{Workers: 4, BufferSize: 8, MaxError: 1}, 12)
	if got := fw.Relaxation(); got != 2*4*8 {
		t.Errorf("OptParSketch relaxation = %d, want 64", got)
	}
	fw2, _ := newThetaFramework(core.Config{Workers: 4, BufferSize: 8, MaxError: 1, Mode: core.ModeUnoptimised}, 12)
	if got := fw2.Relaxation(); got != 4*8 {
		t.Errorf("ParSketch relaxation = %d, want 32", got)
	}
}

func TestSingleWriterExactAfterClose(t *testing.T) {
	// After Close the global sketch has every update; with n < 2k the Θ
	// sketch is in exact mode, so the estimate must equal n precisely.
	for _, mode := range []core.Mode{core.ModeOptimised, core.ModeUnoptimised} {
		fw, comp := newThetaFramework(core.Config{Workers: 1, BufferSize: 4, MaxError: 1, Mode: mode}, 12)
		feed(fw, 1, 5000)
		if est := comp.Estimate(); est != 5000 {
			t.Errorf("%v: estimate after close = %v, want exactly 5000", mode, est)
		}
	}
}

func TestMultiWriterExactAfterClose(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeOptimised, core.ModeUnoptimised} {
		fw, comp := newThetaFramework(core.Config{Workers: 4, BufferSize: 16, MaxError: 1, Mode: mode}, 12)
		feed(fw, 4, 8000) // 2000 each, all distinct; 8000 < 2k = 8192 → exact
		if est := comp.Estimate(); est != 8000 {
			t.Errorf("%v: estimate after close = %v, want exactly 8000", mode, est)
		}
	}
}

func TestEagerPhaseQueriesExact(t *testing.T) {
	// During the eager phase every completed update is immediately visible:
	// a query between updates must count exactly.
	fw, comp := newThetaFramework(core.Config{Workers: 1, MaxError: 0.04, BufferSize: 5}, 12)
	fw.Start()
	defer fw.Close()
	limit := core.DeriveEagerLimit(0.04) // 1250
	for i := 0; i < limit; i++ {
		fw.Update(0, theta.HashKey(uint64(i), seed))
		if est := comp.Estimate(); est != float64(i+1) {
			t.Fatalf("eager-phase query after %d updates = %v, want exact", i+1, est)
		}
	}
	if !fw.Lazy() {
		t.Error("framework should have switched to lazy after the eager limit")
	}
}

func TestEagerToLazySwitch(t *testing.T) {
	fw, comp := newThetaFramework(core.Config{Workers: 2, MaxError: 0.04, BufferSize: 5}, 12)
	if fw.Lazy() {
		t.Fatal("framework should start eager with MaxError < 1")
	}
	feed(fw, 2, 8000) // eager limit 1250 < 8000 forces the switch; 8000 < 2k stays exact
	if !fw.Lazy() {
		t.Error("framework never switched to lazy")
	}
	if est := comp.Estimate(); est != 8000 {
		t.Errorf("estimate = %v, want exactly 8000 (n < 2k)", est)
	}
}

func TestEagerDisabled(t *testing.T) {
	fw, _ := newThetaFramework(core.Config{Workers: 1, MaxError: 1.0, BufferSize: 4}, 12)
	if !fw.Lazy() {
		t.Error("MaxError=1.0 must disable the eager phase")
	}
}

func TestRelaxationBoundHolds(t *testing.T) {
	// The defining guarantee (Theorem 1): a query reflects all but at most
	// r = 2Nb of the updates that completed before it. With all-unique keys
	// and the sketch in exact mode, estimate ≥ completed − r.
	const writers, b, n = 4, 8, 4000 // r = 64; 2k = 8192 > n → exact mode
	fw, comp := newThetaFramework(core.Config{Workers: writers, BufferSize: b, MaxError: 1}, 12)
	r := float64(fw.Relaxation())

	var completed atomic.Int64
	fw.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/writers; i++ {
				fw.Update(w, theta.HashKey(base+uint64(i), seed))
				completed.Add(1)
			}
		}(w)
	}
	// Query concurrently and check the bound each time.
	var worst float64
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			before := float64(completed.Load())
			est := comp.Estimate()
			if deficit := before - r - est; deficit > worst {
				worst = deficit
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(stop)
	<-queryDone
	fw.Close()
	if worst > 0 {
		t.Errorf("a query missed more than r=%v completed updates (worst deficit %v)", r, worst)
	}
	if est := comp.Estimate(); est != n {
		t.Errorf("final estimate %v, want exactly %d", est, n)
	}
}

func TestEstimateNeverExceedsIngested(t *testing.T) {
	// In exact mode the estimate counts retained distinct hashes, which can
	// never exceed the number of updates ingested so far.
	const writers, n = 4, 6000
	fw, comp := newThetaFramework(core.Config{Workers: writers, BufferSize: 4, MaxError: 1}, 12)
	var started atomic.Int64
	fw.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	bad := make(chan float64, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			est := comp.Estimate()
			after := float64(started.Load())
			if est > after {
				select {
				case bad <- est - after:
				default:
				}
			}
			runtime.Gosched()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/writers; i++ {
				started.Add(1)
				fw.Update(w, theta.HashKey(base+uint64(i), seed))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	fw.Close()
	select {
	case excess := <-bad:
		t.Errorf("query observed %v more uniques than were ever started", excess)
	default:
	}
}

func TestPreFilteringReducesWork(t *testing.T) {
	// Once Θ shrinks, most updates should be dropped by shouldAdd before
	// buffering — the paper's key to scalability ("Θ quickly becomes small
	// enough to allow filtering out most of the updates").
	const n = 1 << 19
	fw, _ := newThetaFramework(core.Config{Workers: 1, BufferSize: 16, MaxError: 1}, 8) // k=256
	feed(fw, 1, n)
	st := fw.Stats()
	if st.Filtered == 0 {
		t.Fatal("no updates were pre-filtered")
	}
	frac := float64(st.Filtered) / float64(n)
	if frac < 0.9 {
		t.Errorf("only %.1f%% of updates filtered; expected >90%% for n≫k", frac*100)
	}
}

func TestAccuracyUnderConcurrency(t *testing.T) {
	// End-to-end accuracy: concurrent ingestion of a large unique stream
	// should estimate within a few RSE of the truth.
	const writers, n = 4, 1 << 20
	fw, comp := newThetaFramework(core.Config{Workers: writers, MaxError: 0.04}, 12)
	feed(fw, writers, n)
	re := comp.Estimate()/float64(n) - 1
	if math.Abs(re) > 4*theta.RSEBound(4096) {
		t.Errorf("concurrent estimate error %.4f exceeds 4·RSE", re)
	}
}

func TestStartTwicePanics(t *testing.T) {
	fw, _ := newThetaFramework(core.Config{Workers: 1, BufferSize: 2, MaxError: 1}, 8)
	fw.Start()
	defer fw.Close()
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	fw.Start()
}

func TestCloseWithoutStartDrains(t *testing.T) {
	// Failure injection: the propagator never ran (stalled forever). Close
	// must still drain local buffers so no data is lost.
	fw, comp := newThetaFramework(core.Config{Workers: 1, BufferSize: 64, MaxError: 1}, 12)
	for i := 0; i < 100; i++ { // fewer than b: nothing ever published
		fw.Update(0, theta.HashKey(uint64(i), seed))
	}
	fw.Close()
	if est := comp.Estimate(); est != 100 {
		t.Errorf("estimate after drain = %v, want 100", est)
	}
}

func TestStalledPropagatorRecovery(t *testing.T) {
	// Writer fills both double buffers while the propagator is stalled,
	// blocks, then resumes when the propagator starts. No updates lost.
	//
	// The blocking point is deterministic, so no wall-clock waits are
	// needed: with b=8 the writer publishes the first full buffer (update
	// #8, instant hint from the initial prop value), fills the second, and
	// must block inside update #16 awaiting a hint that the stalled
	// propagator never posts — progress stops at exactly 15 completed
	// updates.
	fw, comp := newThetaFramework(core.Config{Workers: 1, BufferSize: 8, MaxError: 1}, 12)
	var progress atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			fw.Update(0, theta.HashKey(uint64(i), seed))
			progress.Add(1)
		}
	}()
	// The deadline only bounds how long a REGRESSION takes to fail; the
	// pass path is synchronised purely on the atomic counter and channel.
	deadline := time.After(30 * time.Second)
	for progress.Load() < 15 {
		select {
		case <-deadline:
			t.Fatalf("writer stalled at %d completed updates, expected to reach 15", progress.Load())
		default:
		}
		runtime.Gosched()
	}
	// progress == 15: the writer is inside update #16. done cannot possibly
	// be closed — assert without any timing assumption.
	select {
	case <-done:
		t.Fatal("writer finished despite the stalled propagator")
	default:
	}
	fw.Start() // propagator comes alive; writer unblocks
	select {
	case <-done:
	case <-deadline:
		t.Fatal("writer did not unblock after the propagator started")
	}
	fw.Close()
	if est := comp.Estimate(); est != 1000 {
		t.Errorf("estimate = %v, want 1000", est)
	}
}

func TestParSketchWriterBlocksUntilPropagated(t *testing.T) {
	// In ParSketch the writer must not proceed past a full buffer until the
	// propagator has merged it: after Update #b returns, the global sketch
	// must already contain the batch.
	fw, comp := newThetaFramework(core.Config{
		Workers: 1, BufferSize: 10, MaxError: 1, Mode: core.ModeUnoptimised}, 12)
	fw.Start()
	for i := 0; i < 10; i++ {
		fw.Update(0, theta.HashKey(uint64(i), seed))
	}
	// The 10th update filled the buffer; ParSketch semantics say the writer
	// waited for the merge, so the estimate is already exact.
	if est := comp.Estimate(); est != 10 {
		t.Errorf("ParSketch estimate after full buffer = %v, want 10", est)
	}
	fw.Close()
}

func TestConcurrentQuantiles(t *testing.T) {
	comp := quantiles.NewComposable(128, quantiles.NewRandomBits(1))
	fw := core.New[float64](comp, core.Config{Workers: 2, BufferSize: 64, MaxError: 1})
	fw.Start()
	const n = 1 << 16
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 2 {
				fw.Update(w, float64(i))
			}
		}(w)
	}
	// Concurrent reads must always observe a consistent snapshot.
	stop := make(chan struct{})
	var readerErr atomic.Value
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := comp.Snapshot()
			if s.N() > 0 {
				med := s.Quantile(0.5)
				if med < s.Min() || med > s.Max() {
					readerErr.Store("median outside [min,max]")
					return
				}
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(stop)
	fw.Close()
	if e := readerErr.Load(); e != nil {
		t.Fatal(e)
	}
	if got := comp.N(); got != n {
		t.Fatalf("snapshot N = %d, want %d", got, n)
	}
	med := comp.Quantile(0.5)
	eps := quantiles.EpsilonBound(128, n)
	if math.Abs(med/float64(n)-0.5) > eps {
		t.Errorf("concurrent median %v, want ≈%v (ε=%v)", med, n/2, eps)
	}
}

func TestConcurrentHLL(t *testing.T) {
	comp := hll.NewComposable(12, seed)
	fw := core.New[uint64](comp, core.Config{Workers: 2, BufferSize: 32, MaxError: 1})
	fw.Start()
	const n = 1 << 18
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/2; i++ {
				fw.Update(w, murmur.HashUint64(base+uint64(i), seed))
			}
		}(w)
	}
	wg.Wait()
	fw.Close()
	re := comp.Estimate()/float64(n) - 1
	if math.Abs(re) > 4*hll.RSEBound(12) {
		t.Errorf("concurrent HLL error %.4f exceeds 4·RSE=%.4f", re, 4*hll.RSEBound(12))
	}
	// The incremental estimate must equal a from-scratch recompute.
	if got, want := comp.Estimate(), comp.Gadget().Estimate(); math.Abs(got-want) > 1e-9*want {
		t.Errorf("incremental estimate %v != recomputed %v", got, want)
	}
}

func TestManyWritersStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const writers = 8
	fw, comp := newThetaFramework(core.Config{Workers: writers, MaxError: 0.04}, 12)
	feed(fw, writers, 1<<20)
	re := comp.Estimate()/float64(1<<20) - 1
	if math.Abs(re) > 5*theta.RSEBound(4096) {
		t.Errorf("stress accuracy %.4f out of tolerance", re)
	}
}

func TestStatsAccounting(t *testing.T) {
	const n = 100000
	fw, _ := newThetaFramework(core.Config{Workers: 1, BufferSize: 8, MaxError: 1}, 8)
	feed(fw, 1, n)
	st := fw.Stats()
	if st.Accepted+st.Filtered != n {
		t.Errorf("accepted %d + filtered %d != fed %d", st.Accepted, st.Filtered, n)
	}
}

func TestModeString(t *testing.T) {
	if core.ModeOptimised.String() != "OptParSketch" || core.ModeUnoptimised.String() != "ParSketch" {
		t.Error("mode names wrong")
	}
	if core.Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode formatting wrong")
	}
}

func TestAdaptiveBuffersGrow(t *testing.T) {
	// With adaptive buffering the writer's effective buffer must grow as Θ
	// shrinks (k small → Θ drops fast), and correctness must be unaffected.
	comp := theta.NewComposable(6, seed) // k=64
	fw := core.New[uint64](comp, core.Config{
		Workers: 1, BufferSize: 4, MaxError: 1, AdaptiveBuffers: true, K: 64,
	})
	fw.Start()
	const n = 1 << 17
	for i := 0; i < n; i++ {
		fw.Update(0, theta.HashKey(uint64(i), seed))
	}
	fw.Close()
	bs := fw.EffectiveBuffers()
	if bs[0] <= 4 {
		t.Errorf("effective buffer %d did not grow beyond base 4", bs[0])
	}
	if bs[0] > 4*core.MaxBufferGrowth {
		t.Errorf("effective buffer %d exceeds clamp %d", bs[0], 4*core.MaxBufferGrowth)
	}
	re := comp.Estimate()/n - 1
	if math.Abs(re) > 5*theta.RSEBound(64) {
		t.Errorf("adaptive-buffer accuracy %.4f out of tolerance", re)
	}
	if fw.Relaxation() != 2*1*4*core.MaxBufferGrowth {
		t.Errorf("relaxation %d should report worst-case adaptive bound", fw.Relaxation())
	}
}

func TestAdaptiveBuffersInertWithoutAdvisor(t *testing.T) {
	// Quantiles' composable does not implement BufferAdvisor: the flag must
	// be a no-op, not a failure.
	comp := quantiles.NewComposable(64, quantiles.NewRandomBits(1))
	fw := core.New[float64](comp, core.Config{
		Workers: 1, BufferSize: 8, MaxError: 1, AdaptiveBuffers: true,
	})
	fw.Start()
	for i := 0; i < 10000; i++ {
		fw.Update(0, float64(i))
	}
	fw.Close()
	if bs := fw.EffectiveBuffers(); bs[0] != 8 {
		t.Errorf("buffer changed without an advisor: %d", bs[0])
	}
	if fw.Relaxation() != 2*8 {
		t.Errorf("relaxation %d should stay 2·N·b without an advisor", fw.Relaxation())
	}
}

func TestAdaptiveBuffersExactDrain(t *testing.T) {
	// Growth must never lose updates: everything drains at Close.
	comp := theta.NewComposable(14, seed) // 2k = 32768 > n → exact mode
	fw := core.New[uint64](comp, core.Config{
		Workers: 2, BufferSize: 2, MaxError: 1, AdaptiveBuffers: true, K: 1 << 14,
	})
	fw.Start()
	var wg sync.WaitGroup
	const n = 20000
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/2; i++ {
				fw.Update(w, theta.HashKey(base+uint64(i), seed))
			}
		}(w)
	}
	wg.Wait()
	fw.Close()
	if est := comp.Estimate(); est != n {
		t.Errorf("adaptive drain lost updates: %v != %d", est, n)
	}
}
