package core_test

// Model-based verification of Algorithm 2's relaxation guarantee.
//
// The paper proves (Lemma 1 / Theorem 1) that ParSketch and OptParSketch are
// strongly linearisable w.r.t. the r-relaxed sequential sketch, with
// r = N·b and 2·N·b respectively: a query may miss at most r of the updates
// that completed before it. A proof can't be run, but its claim can be
// model-checked: this file builds a small abstract state machine of the
// algorithm — writers, double buffers, the prop_i handshake words and the
// propagator, at the granularity of the shared-memory interactions — and
// exhaustively explores EVERY interleaving for small N, b and stream
// lengths, checking at every reachable state that
//
//	|global| ≥ (completed updates) − r      (the r-relaxation bound)
//	|global| ≤ (started updates)            (queries never invent updates)
//
// and that once all writers finish and the buffers drain, the global sketch
// holds exactly the whole stream (no loss, no duplication). Because all
// stream items are unique and the modelled sketch is in exact mode, set
// cardinalities reduce to counters, which keeps the state space tractable
// without weakening the checked property.
//
// The abstraction is sound for the real implementation because every
// cross-goroutine hand-off in internal/core is ordered by a store/load of
// prop_i: between two prop transitions, a writer's buffer and cur fields are
// owned by exactly one side, so collapsing that owner's local actions into
// one atomic model step does not remove any observable interleaving.

import (
	"fmt"
	"testing"
)

// modelMode mirrors core.Mode for the abstract machine.
type modelMode int

const (
	modelOpt modelMode = iota
	modelPar
)

// wstate is one writer lane of the abstract machine.
type wstate struct {
	pending   int8 // updates not yet ingested
	buf       [2]int8
	cur       int8
	prop      int8 // 1 = hint available (idle), 0 = publication pending
	waiting   bool // true: blocked at "wait until prop ≠ 0" (line 125)
	completed int8 // updates whose Update() call has returned
}

// mstate is a full machine configuration.
type mstate struct {
	w      [3]wstate // up to 3 writers modelled
	n      int8      // writers in use
	global int8      // items merged into the global sketch
}

// key serialises a state for memoisation.
func (s mstate) key() string {
	return fmt.Sprintf("%v|%d", s.w, s.global)
}

// checker explores all interleavings.
type checker struct {
	t       *testing.T
	mode    modelMode
	b       int8
	r       int
	total   int
	seen    map[string]bool
	states  int
	maxSeen int
}

// started returns the number of update invocations that have begun.
func (c *checker) started(s *mstate) int {
	consumed := 0
	for i := int8(0); i < s.n; i++ {
		consumed += c.total/int(s.n) - int(s.w[i].pending)
	}
	return consumed
}

// completedTotal returns update invocations that have returned.
func (c *checker) completedTotal(s *mstate) int {
	t := 0
	for i := int8(0); i < s.n; i++ {
		t += int(s.w[i].completed)
	}
	return t
}

// check asserts the relaxation invariants in state s (a query could run here).
func (c *checker) check(s *mstate) {
	comp := c.completedTotal(s)
	if int(s.global) < comp-c.r {
		c.t.Fatalf("relaxation violated: global=%d misses more than r=%d of %d completed updates (state %s)",
			s.global, c.r, comp, s.key())
	}
	if int(s.global) > c.started(s) {
		c.t.Fatalf("query result exceeds started updates: global=%d > started=%d", s.global, c.started(s))
	}
}

// explore runs DFS over all interleavings from s.
func (c *checker) explore(s mstate) {
	k := s.key()
	if c.seen[k] {
		return
	}
	c.seen[k] = true
	c.states++
	c.check(&s)

	progressed := false

	// Writer steps.
	for i := int8(0); i < s.n; i++ {
		w := s.w[i]
		switch {
		case w.waiting:
			// Blocked at "wait until prop ≠ 0"; enabled when the
			// propagator has posted the hint.
			if w.prop == 0 {
				break
			}
			ns := s
			nw := &ns.w[i]
			nw.waiting = false
			nw.completed++ // the b-th update's invocation returns now
			if c.mode == modelOpt {
				// Lines 126-129: flip to the fresh buffer, publish the
				// filled one.
				nw.cur = 1 - nw.cur
				nw.prop = 0
			}
			progressed = true
			c.explore(ns)
		case w.pending > 0:
			// One Update() body: append to the current buffer; if it is
			// now full, move to the publication/wait phase.
			ns := s
			nw := &ns.w[i]
			nw.pending--
			nw.buf[nw.cur]++
			if nw.buf[nw.cur] == c.b {
				if c.mode == modelPar {
					// Line 124: publish first, then wait.
					nw.prop = 0
				}
				// OptParSketch waits BEFORE flipping/publishing (line 125),
				// so in both modes the writer now blocks until prop ≠ 0.
				nw.waiting = true
			} else {
				nw.completed++
			}
			progressed = true
			c.explore(ns)
		}
	}

	// Propagator steps: serve any writer with a pending publication.
	for i := int8(0); i < s.n; i++ {
		if s.w[i].prop != 0 {
			continue
		}
		ns := s
		nw := &ns.w[i]
		idx := nw.cur // ParSketch: the only buffer
		if c.mode == modelOpt {
			idx = 1 - nw.cur // the one the writer flipped away from
		}
		ns.global += nw.buf[idx]
		nw.buf[idx] = 0
		nw.prop = 1
		progressed = true
		c.explore(ns)
	}

	if !progressed {
		// Quiescent: no enabled step. All writers must be done (pending 0,
		// not waiting) — the propagator can always serve prop==0, so the
		// only stuck states are terminal ones.
		for i := int8(0); i < s.n; i++ {
			if s.w[i].pending != 0 || s.w[i].waiting {
				c.t.Fatalf("deadlock: writer %d stuck in state %s", i, s.key())
			}
		}
		// Close(): drain remaining buffers; the result must be the whole
		// stream, exactly once.
		drained := int(s.global)
		for i := int8(0); i < s.n; i++ {
			drained += int(s.w[i].buf[0]) + int(s.w[i].buf[1])
		}
		if drained != c.total {
			c.t.Fatalf("drain lost/duplicated updates: got %d, want %d (state %s)", drained, c.total, s.key())
		}
	}
}

// runModel explores one (mode, writers, b, perWriter) configuration.
func runModel(t *testing.T, mode modelMode, writers, b, perWriter int) int {
	t.Helper()
	r := writers * b
	if mode == modelOpt {
		r = 2 * writers * b
	}
	c := &checker{
		t:     t,
		mode:  mode,
		b:     int8(b),
		r:     r,
		total: writers * perWriter,
		seen:  make(map[string]bool),
	}
	var init mstate
	init.n = int8(writers)
	for i := 0; i < writers; i++ {
		init.w[i].pending = int8(perWriter)
		init.w[i].prop = 1
	}
	c.explore(init)
	return c.states
}

func TestModelOptParSketchRelaxation(t *testing.T) {
	// Exhaustively verify r = 2·N·b over every interleaving.
	configs := []struct{ writers, b, per int }{
		{1, 1, 4},
		{1, 2, 6},
		{2, 1, 4},
		{2, 2, 6},
		{3, 1, 3},
	}
	for _, cfg := range configs {
		states := runModel(t, modelOpt, cfg.writers, cfg.b, cfg.per)
		t.Logf("OptParSketch N=%d b=%d per=%d: %d states explored, r=%d held everywhere",
			cfg.writers, cfg.b, cfg.per, states, 2*cfg.writers*cfg.b)
	}
}

func TestModelParSketchRelaxation(t *testing.T) {
	// Exhaustively verify r = N·b over every interleaving.
	configs := []struct{ writers, b, per int }{
		{1, 1, 4},
		{1, 2, 6},
		{2, 1, 4},
		{2, 2, 6},
		{3, 1, 3},
	}
	for _, cfg := range configs {
		states := runModel(t, modelPar, cfg.writers, cfg.b, cfg.per)
		t.Logf("ParSketch N=%d b=%d per=%d: %d states explored, r=%d held everywhere",
			cfg.writers, cfg.b, cfg.per, states, cfg.writers*cfg.b)
	}
}

func TestModelBoundIsTight(t *testing.T) {
	// The bound r = 2·N·b is TIGHT for OptParSketch: there is a reachable
	// state where the global sketch misses exactly r completed updates
	// (both buffers of every writer full and published-but-unmerged…
	// precisely: one full published buffer plus one full current buffer per
	// writer, with the b-th update of the current buffer not yet counted —
	// the adversary of Section 6 exploits exactly these states). Verify a
	// deficit of r−? … we assert the worst observed deficit over all
	// interleavings equals the paper's bound shape: > (r − b) at least,
	// i.e. the relaxation is not vacuously loose.
	for _, cfg := range []struct{ writers, b, per int }{{2, 1, 4}, {2, 2, 8}} {
		worst := worstDeficit(t, modelOpt, cfg.writers, cfg.b, cfg.per)
		r := 2 * cfg.writers * cfg.b
		// Each writer can have buf[1-cur] merged-pending (b items, all
		// completed) and buf[cur] full with b−1 completed plus the b-th
		// in-flight → completed-but-missing = 2b−1 per writer.
		want := cfg.writers*(2*cfg.b) - cfg.writers
		if worst < want {
			t.Errorf("N=%d b=%d: worst observed deficit %d, expected ≥ %d (r=%d)",
				cfg.writers, cfg.b, worst, want, r)
		}
		if worst > r {
			t.Errorf("N=%d b=%d: deficit %d exceeds r=%d", cfg.writers, cfg.b, worst, r)
		}
		t.Logf("OptParSketch N=%d b=%d: tightest deficit %d of bound r=%d", cfg.writers, cfg.b, worst, r)
	}
}

// worstDeficit explores all interleavings and returns the maximum number of
// completed updates missing from the global sketch in any reachable state.
func worstDeficit(t *testing.T, mode modelMode, writers, b, perWriter int) int {
	t.Helper()
	r := writers * b
	if mode == modelOpt {
		r = 2 * writers * b
	}
	c := &checker{
		t: t, mode: mode, b: int8(b), r: r,
		total: writers * perWriter,
		seen:  make(map[string]bool),
	}
	var init mstate
	init.n = int8(writers)
	for i := 0; i < writers; i++ {
		init.w[i].pending = int8(perWriter)
		init.w[i].prop = 1
	}
	worst := 0
	var dfs func(s mstate)
	dfs = func(s mstate) {
		k := s.key()
		if c.seen[k] {
			return
		}
		c.seen[k] = true
		c.check(&s)
		if d := c.completedTotal(&s) - int(s.global); d > worst {
			worst = d
		}
		for i := int8(0); i < s.n; i++ {
			w := s.w[i]
			if w.waiting && w.prop != 0 {
				ns := s
				nw := &ns.w[i]
				nw.waiting = false
				nw.completed++
				if mode == modelOpt {
					nw.cur = 1 - nw.cur
					nw.prop = 0
				}
				dfs(ns)
			} else if !w.waiting && w.pending > 0 {
				ns := s
				nw := &ns.w[i]
				nw.pending--
				nw.buf[nw.cur]++
				if nw.buf[nw.cur] == c.b {
					if mode == modelPar {
						nw.prop = 0
					}
					nw.waiting = true
				} else {
					nw.completed++
				}
				dfs(ns)
			}
		}
		for i := int8(0); i < s.n; i++ {
			if s.w[i].prop != 0 {
				continue
			}
			ns := s
			nw := &ns.w[i]
			idx := nw.cur
			if mode == modelOpt {
				idx = 1 - nw.cur
			}
			ns.global += nw.buf[idx]
			nw.buf[idx] = 0
			nw.prop = 1
			dfs(ns)
		}
	}
	dfs(init)
	return worst
}
