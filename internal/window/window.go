// Package window is the generic sliding-window layer under the sharded
// sketches: a clock-rotated ring of closed per-interval sub-sketch
// accumulators plus the configuration and pacing primitives the shard layer
// builds its rotator on. The package is deliberately free of any sketch or
// shard dependency — it speaks only the minimal accumulator surface (Reset +
// FoldInto) — so the ring protocol can be reasoned about, and tested, in
// isolation.
//
// # Window model
//
// A windowed sketch covers the live interval plus the last Slots closed
// intervals. Every Interval the rotator closes the live interval into a ring
// slot; when the ring is full the oldest slot is expelled (the shard layer
// folds it into its cumulative legacy plane, so cumulative queries never
// lose it). A windowed query is the fold of the live state with every closed
// slot — or, as the shard layer materializes it, with a single suffix-merge
// accumulator refreshed on rotation, making the windowed fold O(1) in the
// slot count.
//
// # Decay
//
// Decay ∈ (0,1) additionally maintains an exponentially time-decayed plane:
// on every rotation the decayed accumulator is scaled by Decay and the
// freshly closed slot folded in, so a count observed k rotations ago
// contributes with weight Decay^k. Scaling requires linearly scalable
// counters — the Scalable hook — which of the four families only Count-Min
// provides; declaring Decay on a family without it is a configuration error.
package window

import (
	"errors"
	"fmt"
	"time"
)

// Clock abstracts the rotator's two uses of time — stamping interval starts
// and pacing rotation ticks — mirroring the shard view refresher's and the
// autoscale controller's Clock so tests and stress drivers can rotate
// deterministically (autoscale.ManualClock satisfies this interface
// structurally). Production windows default to the system clock.
type Clock interface {
	Now() time.Time
	// After behaves like time.After: a channel that delivers one value once
	// d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the production Clock: real time.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Window shape defaults and bounds.
const (
	// DefaultInterval is the rotation interval when Config.Interval is zero.
	DefaultInterval = time.Minute
	// DefaultSlots is the closed-slot count when Config.Slots is zero.
	DefaultSlots = 6
	// MaxSlots bounds the ring length: far above any sane window, low enough
	// that a corrupt checkpoint or a malicious wire frame cannot make a
	// process build millions of per-interval accumulators.
	MaxSlots = 1 << 16
)

// The window configuration errors.
var (
	ErrBadSlots = errors.New("window: slot count outside [1, MaxSlots]")
	ErrBadDecay = errors.New("window: decay outside [0, 1)")
)

// Config declares one sliding window: rotate every Interval, retain the last
// Slots closed intervals (the covered span is the live interval plus
// Slots·Interval), and optionally maintain an exponential decay plane.
type Config struct {
	// Interval is the rotation period. Defaults to DefaultInterval.
	Interval time.Duration
	// Slots is the number of closed intervals retained in the ring.
	// Defaults to DefaultSlots; must be in [1, MaxSlots].
	Slots int
	// Decay, when in (0,1), enables the exponentially time-decayed plane:
	// each rotation scales it by Decay before folding in the freshly closed
	// interval. 0 disables decay; values outside [0,1) are rejected.
	Decay float64
	// Clock drives rotation pacing and interval timestamps. Defaults to the
	// system clock; inject a manual clock for deterministic tests.
	Clock Clock
}

// Normalise fills defaults and validates the configuration.
func (c Config) Normalise() (Config, error) {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Slots == 0 {
		c.Slots = DefaultSlots
	}
	if c.Slots < 1 || c.Slots > MaxSlots {
		return c, fmt.Errorf("%w: %d", ErrBadSlots, c.Slots)
	}
	if c.Decay < 0 || c.Decay >= 1 {
		return c, fmt.Errorf("%w: %v", ErrBadDecay, c.Decay)
	}
	if c.Clock == nil {
		c.Clock = systemClock{}
	}
	return c, nil
}

// Same reports whether two configs declare the same window shape — interval,
// slot count and decay; the clock is pacing machinery, not shape, and is
// ignored. This is the declarative-open comparison: a Spec whose window is
// Same as the enabled one must not re-arm the rotator (which would discard
// ring contents).
func (c Config) Same(o Config) bool {
	return c.Interval == o.Interval && c.Slots == o.Slots && c.Decay == o.Decay
}

// Acc is the minimal accumulator surface the ring needs: Reset (recycling an
// expelled slot as the next one) and FoldInto (suffix-merging the ring into
// one accumulator). Every shard-layer accumulator satisfies it.
type Acc[A any] interface {
	Reset()
	FoldInto(dst A)
}

// Scalable is the optional hook the decay plane requires: scale every
// counter by f ∈ (0,1), flooring. Of the four sketch families only
// Count-Min counts are linearly scalable; Θ/HLL/quantiles accumulators do
// not implement it and cannot be decayed.
type Scalable interface {
	ScaleBy(f float64)
}

// Ring is a fixed-capacity FIFO of closed-interval accumulators, oldest
// first. It is plain mutable state: the shard layer mutates it only under
// its resize mutex (rotation, checkpoint export, restore), while queries
// read the immutable suffix-merge published on the epoch pointer and never
// touch the ring itself.
type Ring[A Acc[A]] struct {
	slots []A // oldest → newest
	cap   int
}

// NewRing returns an empty ring retaining at most capacity closed slots.
func NewRing[A Acc[A]](capacity int) *Ring[A] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[A]{slots: make([]A, 0, capacity), cap: capacity}
}

// Len returns the number of closed slots currently retained.
func (r *Ring[A]) Len() int { return len(r.slots) }

// Cap returns the ring's slot capacity.
func (r *Ring[A]) Cap() int { return r.cap }

// PopIfFull removes and returns the oldest slot when the ring is at
// capacity, making room for the next Push — the expel step of a rotation.
// The caller folds the expelled slot into its cumulative plane and may Reset
// and recycle it as the next slot's accumulator.
func (r *Ring[A]) PopIfFull() (oldest A, ok bool) {
	if len(r.slots) < r.cap {
		var zero A
		return zero, false
	}
	oldest = r.slots[0]
	copy(r.slots, r.slots[1:])
	r.slots = r.slots[:len(r.slots)-1]
	return oldest, true
}

// Push appends the newest closed slot. The caller must have made room via
// PopIfFull; pushing into a full ring panics (a rotation protocol bug, not
// an input condition).
func (r *Ring[A]) Push(slot A) {
	if len(r.slots) >= r.cap {
		panic("window: Push into a full ring")
	}
	r.slots = append(r.slots, slot)
}

// FoldAll folds every retained slot into acc — the suffix-merge refresh.
func (r *Ring[A]) FoldAll(acc A) {
	for _, s := range r.slots {
		s.FoldInto(acc)
	}
}

// Slots returns the retained slots, oldest first — the serialization view
// for slot-by-slot checkpointing. The returned slice aliases ring state and
// must not be retained across a mutation.
func (r *Ring[A]) Slots() []A { return r.slots }
