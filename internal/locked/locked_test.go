package locked

import (
	"math"
	"sync"
	"testing"

	"fastsketches/internal/quantiles"
	"fastsketches/internal/theta"
)

func TestThetaConcurrentSafety(t *testing.T) {
	// The whole point of the baseline: correct (if slow) under concurrency.
	sk := NewTheta(12, 9001)
	const writers, per = 4, 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if est := sk.Estimate(); est < 0 {
				t.Error("negative estimate")
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < per; i++ {
				sk.Update(base + uint64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	est := sk.Estimate()
	truth := float64(writers * per)
	if math.Abs(est/truth-1) > 4*theta.RSEBound(4096) {
		t.Errorf("estimate %v, want ≈%v", est, truth)
	}
}

func TestThetaUpdateHashAndMerge(t *testing.T) {
	a := NewTheta(10, 9001)
	other := theta.NewQuickSelect(10, 9001)
	for i := 0; i < 5000; i++ {
		a.UpdateHash(theta.HashKey(uint64(i), 9001))
		other.Update(uint64(i + 2500))
	}
	a.Merge(other)
	if est := a.Estimate(); math.Abs(est/7500-1) > 0.15 {
		t.Errorf("merged estimate %v, want ≈7500", est)
	}
	a.Reset()
	if a.Estimate() != 0 {
		t.Error("reset failed")
	}
}

func TestQuantilesConcurrentSafety(t *testing.T) {
	q := NewQuantiles(64, quantiles.NewRandomBits(1))
	const writers, per = 4, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if q.N() > 0 {
				_ = q.Quantile(0.5)
				_ = q.Rank(100)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Update(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if q.N() != writers*per {
		t.Fatalf("N = %d, want %d", q.N(), writers*per)
	}
	med := q.Quantile(0.5)
	if math.Abs(med/float64(writers*per)-0.5) > 0.05 {
		t.Errorf("median %v", med)
	}
}

func TestHLLConcurrentSafety(t *testing.T) {
	h := NewHLL(12, 9001)
	const writers, per = 4, 20000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < per; i++ {
				h.Update(base + uint64(i))
			}
		}(w)
	}
	wg.Wait()
	truth := float64(writers * per)
	if est := h.Estimate(); math.Abs(est/truth-1) > 0.1 {
		t.Errorf("estimate %v, want ≈%v", est, truth)
	}
}
