// Package locked provides the paper's baseline: sequential sketches wrapped
// with a read/write lock. This is what applications do today to use
// non-thread-safe sketch libraries safely ("Applications using these
// libraries are therefore required to explicitly protect all sketch API
// calls by locks"), and it is the comparison line in Figures 1, 6 and 7 and
// Table 2.
package locked

import (
	"sync"

	"fastsketches/internal/hll"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/theta"
)

// Theta is a Θ sketch guarded by a sync.RWMutex: updates take the write
// lock, queries the read lock.
type Theta struct {
	mu     sync.RWMutex
	gadget *theta.QuickSelect
}

// NewTheta returns a lock-protected Θ sketch with 2^lgK nominal entries.
func NewTheta(lgK int, seed uint64) *Theta {
	return &Theta{gadget: theta.NewQuickSelect(lgK, seed)}
}

// Update processes one element under the write lock.
func (t *Theta) Update(key uint64) {
	t.mu.Lock()
	t.gadget.Update(key)
	t.mu.Unlock()
}

// UpdateHash processes an already-hashed element under the write lock.
func (t *Theta) UpdateHash(h uint64) {
	t.mu.Lock()
	t.gadget.UpdateHash(h)
	t.mu.Unlock()
}

// Estimate returns the distinct-count estimate under the read lock.
func (t *Theta) Estimate() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gadget.Estimate()
}

// Merge folds another sketch in under the write lock.
func (t *Theta) Merge(other theta.Sketch) {
	t.mu.Lock()
	t.gadget.Merge(other)
	t.mu.Unlock()
}

// Reset empties the sketch under the write lock.
func (t *Theta) Reset() {
	t.mu.Lock()
	t.gadget.Reset()
	t.mu.Unlock()
}

// Quantiles is a quantiles sketch guarded by a sync.RWMutex.
type Quantiles struct {
	mu     sync.RWMutex
	gadget *quantiles.Sketch
}

// NewQuantiles returns a lock-protected quantiles sketch.
func NewQuantiles(k int, bits quantiles.BitSource) *Quantiles {
	return &Quantiles{gadget: quantiles.New(k, bits)}
}

// Update processes one value under the write lock.
func (q *Quantiles) Update(v float64) {
	q.mu.Lock()
	q.gadget.Update(v)
	q.mu.Unlock()
}

// Quantile answers a quantile query under the read lock.
func (q *Quantiles) Quantile(phi float64) float64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.gadget.Quantile(phi)
}

// Rank answers a rank query under the read lock.
func (q *Quantiles) Rank(v float64) float64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.gadget.Rank(v)
}

// N returns the summarised item count under the read lock.
func (q *Quantiles) N() uint64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.gadget.N()
}

// HLL is an HLL sketch guarded by a sync.RWMutex.
type HLL struct {
	mu     sync.RWMutex
	gadget *hll.Sketch
}

// NewHLL returns a lock-protected HLL sketch with 2^p registers.
func NewHLL(p int, seed uint64) *HLL {
	return &HLL{gadget: hll.New(p, seed)}
}

// Update processes one element under the write lock.
func (h *HLL) Update(key uint64) {
	h.mu.Lock()
	h.gadget.Update(key)
	h.mu.Unlock()
}

// Estimate returns the distinct-count estimate under the read lock.
func (h *HLL) Estimate() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.gadget.Estimate()
}
