package benchfmt_test

import (
	"path/filepath"
	"strings"
	"testing"

	"fastsketches/internal/benchfmt"
)

func report(metrics ...benchfmt.Metric) *benchfmt.Report {
	r := benchfmt.New("benchrunner", "quick")
	for _, m := range metrics {
		r.Add(m)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := report(
		benchfmt.Metric{Scenario: "sharded", Name: "theta/S=4/ingest", OpsPerSec: 1.5e6},
		benchfmt.Metric{Scenario: "mergedquery", Name: "theta/S=4/pooled",
			NsPerOp: 1200, AllocsPerOp: benchfmt.Int64(0), BytesPerOp: benchfmt.Int64(0),
			PinnedZeroAlloc: true},
		benchfmt.Metric{Scenario: "autoscale", Name: "scale_ups", Value: 2, Informational: true},
	)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := benchfmt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Metrics) != 3 || got.Tool != "benchrunner" || got.Scale != "quick" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// The zero allocs/op of the pinned path must survive the trip — it is
	// the whole contract.
	m := got.Metrics[1]
	if m.AllocsPerOp == nil || *m.AllocsPerOp != 0 || !m.PinnedZeroAlloc {
		t.Fatalf("pinned zero-alloc metric mangled: %+v", m)
	}
}

// TestCpusKeying: metrics measured under different GOMAXPROCS are distinct
// keys — a -cpus sweep's rows never collide, and each gates independently.
func TestCpusKeying(t *testing.T) {
	m1 := benchfmt.Metric{Scenario: "view", Name: "theta/S=8/query", Cpus: 1, OpsPerSec: 1000}
	m4 := benchfmt.Metric{Scenario: "view", Name: "theta/S=8/query", Cpus: 4, OpsPerSec: 4000}
	m0 := benchfmt.Metric{Scenario: "view", Name: "theta/S=8/query", OpsPerSec: 900}
	if m1.Key() == m4.Key() || m1.Key() == m0.Key() {
		t.Fatalf("cpus rows collide: %q / %q / %q", m1.Key(), m4.Key(), m0.Key())
	}
	if m0.Key() != "view/theta/S=8/query" {
		t.Fatalf("cpus-less key changed shape: %q", m0.Key())
	}

	// Round trip keeps the field; only the cpus=4 row regresses, and the
	// gate reports it under its cpus-qualified key.
	path := filepath.Join(t.TempDir(), "cpus.json")
	base := report(m1, m4)
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	base, err := benchfmt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := report(
		benchfmt.Metric{Scenario: "view", Name: "theta/S=8/query", Cpus: 1, OpsPerSec: 1000},
		benchfmt.Metric{Scenario: "view", Name: "theta/S=8/query", Cpus: 4, OpsPerSec: 1000},
	)
	regs := benchfmt.Compare(base, fresh, benchfmt.CompareOptions{ThroughputThreshold: 0.20})
	if len(regs) != 1 || !strings.Contains(regs[0].Key, "@cpus=4") {
		t.Fatalf("want exactly the cpus=4 row to regress, got %v", regs)
	}
}

func TestCompareGates(t *testing.T) {
	base := report(
		benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 1000},
		benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1000,
			AllocsPerOp: benchfmt.Int64(0), PinnedZeroAlloc: true},
		benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000,
			AllocsPerOp: benchfmt.Int64(10)}, // not pinned
		benchfmt.Metric{Scenario: "reshard", Name: "drain", NsPerOp: 5e6, Informational: true},
	)
	opt := benchfmt.CompareOptions{ThroughputThreshold: 0.20}

	cases := []struct {
		name  string
		fresh *benchfmt.Report
		opt   benchfmt.CompareOptions
		want  []string // substrings of expected regression reasons, one per regression
	}{
		{"identical", base, opt, nil},
		{"within threshold", report(
			benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 850},
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1150, AllocsPerOp: benchfmt.Int64(0)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1100, AllocsPerOp: benchfmt.Int64(10)},
		), opt, nil},
		{"throughput regression", report(
			benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 700},
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(0)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(10)},
		), opt, []string{"throughput regressed"}},
		{"latency regression", report(
			benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 1000},
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1300, AllocsPerOp: benchfmt.Int64(0)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(10)},
		), opt, []string{"latency regressed"}},
		{"pinned alloc increase fails regardless of threshold", report(
			benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 1000},
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(1)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(10)},
		), opt, []string{"allocs/op increased"}},
		{"unpinned alloc increase tolerated", report(
			benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 1000},
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(0)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(64)},
		), opt, nil},
		{"informational drift ignored", report(
			benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 1000},
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(0)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(10)},
			benchfmt.Metric{Scenario: "reshard", Name: "drain", NsPerOp: 9e9, Informational: true},
		), opt, nil},
		{"missing metric", report(
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(0)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(10)},
		), opt, []string{"missing"}},
		{"missing metric allowed", report(
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(0)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(10)},
		), benchfmt.CompareOptions{ThroughputThreshold: 0.20, AllowMissing: true}, nil},
		{"skip throughput still gates pinned allocs", report(
			benchfmt.Metric{Scenario: "sharded", Name: "ingest", OpsPerSec: 1},
			benchfmt.Metric{Scenario: "mq", Name: "theta/pooled", NsPerOp: 9e9, AllocsPerOp: benchfmt.Int64(3)},
			benchfmt.Metric{Scenario: "mq", Name: "countmin/fresh", NsPerOp: 1000, AllocsPerOp: benchfmt.Int64(10)},
		), benchfmt.CompareOptions{SkipThroughput: true}, []string{"allocs/op increased"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs := benchfmt.Compare(base, tc.fresh, tc.opt)
			if len(regs) != len(tc.want) {
				t.Fatalf("got %d regressions %v, want %d", len(regs), regs, len(tc.want))
			}
			for i, want := range tc.want {
				if !strings.Contains(regs[i].Reason, want) {
					t.Errorf("regression %d = %q, want reason containing %q", i, regs[i], want)
				}
			}
		})
	}
}
