// Package benchfmt defines the machine-readable benchmark artifact format
// shared by cmd/benchrunner (which emits it) and cmd/benchdiff (which
// compares a fresh run against the committed baseline and fails CI on
// regressions). One Report holds the metrics of one benchrunner invocation;
// the committed BENCH_baseline.json at the repository root is the perf
// trajectory's anchor point.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Metric is one measured quantity of one scenario. Exactly which fields are
// populated depends on the kind of measurement:
//
//   - throughput metrics carry OpsPerSec;
//   - latency/allocation metrics carry NsPerOp and usually AllocsPerOp /
//     BytesPerOp (pointers, because 0 allocs/op is a meaningful — indeed
//     the pinned — value and must survive JSON round-trips);
//   - informational metrics (drain times, controller decision counts,
//     machine-dependent curiosities) carry whatever fits and are never
//     gated by Compare.
type Metric struct {
	Scenario string `json:"scenario"`
	Name     string `json:"name"`
	// OpsPerSec is gated against relative regression by Compare.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// NsPerOp is gated against relative regression by Compare.
	NsPerOp float64 `json:"ns_op,omitempty"`
	// AllocsPerOp/BytesPerOp are per-operation allocation counts.
	AllocsPerOp *int64 `json:"allocs_op,omitempty"`
	BytesPerOp  *int64 `json:"bytes_op,omitempty"`
	// PinnedZeroAlloc marks a path whose allocs/op must never rise above
	// the baseline (the zero-alloc merge-on-query contract): Compare fails
	// on ANY increase, regardless of threshold.
	PinnedZeroAlloc bool `json:"pinned_zero_alloc,omitempty"`
	// Informational metrics are recorded for the trajectory but never
	// compared (wall-clock drain times, decision counts, …).
	Informational bool `json:"informational,omitempty"`
	// Value holds unitless informational quantities (counts, ratios).
	Value float64 `json:"value,omitempty"`
	// Cpus records the GOMAXPROCS the metric was measured under, when the
	// run sweeps several values (benchrunner -cpus). Zero means the run's
	// single ambient GOMAXPROCS (the Report-level field). Part of Key, so
	// the same scenario/name measured at different widths are distinct
	// metrics and gate independently.
	Cpus int `json:"cpus,omitempty"`
}

// Key identifies a metric across reports.
func (m Metric) Key() string {
	k := m.Scenario + "/" + m.Name
	if m.Cpus > 0 {
		k += fmt.Sprintf("@cpus=%d", m.Cpus)
	}
	return k
}

// Report is one benchrunner invocation's artifact.
type Report struct {
	Tool       string   `json:"tool"`
	Scale      string   `json:"scale"` // quick | default | full
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	CreatedAt  string   `json:"created_at,omitempty"` // RFC3339; ignored by Compare
	Metrics    []Metric `json:"metrics"`
}

// New returns an empty report for the given tool and scale label.
func New(tool, scale string) *Report { return &Report{Tool: tool, Scale: scale} }

// Add appends one metric.
func (r *Report) Add(m Metric) { r.Metrics = append(r.Metrics, m) }

// Int64 returns a pointer to v, for the AllocsPerOp/BytesPerOp fields.
func Int64(v int64) *int64 { return &v }

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one gated metric that got worse.
type Regression struct {
	Key    string
	Reason string
}

func (r Regression) String() string { return r.Key + ": " + r.Reason }

// CompareOptions tune the regression gate.
type CompareOptions struct {
	// ThroughputThreshold is the tolerated relative slowdown of OpsPerSec
	// and NsPerOp metrics (0.20 = fail beyond 20%). Zero means exactly
	// that: any slowdown fails — pass an explicit tolerance.
	ThroughputThreshold float64
	// SkipThroughput gates only the machine-independent allocation
	// contracts, for comparisons across unlike hardware.
	SkipThroughput bool
	// AllowMissing tolerates baseline metrics absent from the fresh report
	// (e.g. a scenario subset run).
	AllowMissing bool
}

// Compare checks fresh against baseline and returns every regression, in a
// stable order. Gates per baseline metric (informational ones are skipped):
//
//   - missing from fresh → regression (unless AllowMissing);
//   - OpsPerSec below baseline·(1−threshold) → regression;
//   - NsPerOp above baseline·(1+threshold) → regression;
//   - on PinnedZeroAlloc paths, any allocs/op increase → regression.
//
// Metrics present only in fresh are ignored: new coverage is not a
// regression.
func Compare(baseline, fresh *Report, opt CompareOptions) []Regression {
	byKey := make(map[string]Metric, len(fresh.Metrics))
	for _, m := range fresh.Metrics {
		byKey[m.Key()] = m
	}
	var regs []Regression
	for _, base := range baseline.Metrics {
		if base.Informational {
			continue
		}
		cur, ok := byKey[base.Key()]
		if !ok {
			if !opt.AllowMissing {
				regs = append(regs, Regression{base.Key(), "metric missing from fresh report"})
			}
			continue
		}
		if !opt.SkipThroughput && base.OpsPerSec > 0 {
			if floor := base.OpsPerSec * (1 - opt.ThroughputThreshold); cur.OpsPerSec < floor {
				regs = append(regs, Regression{base.Key(), fmt.Sprintf(
					"throughput regressed %.1f%%: %.0f → %.0f ops/sec (floor %.0f)",
					100*(1-cur.OpsPerSec/base.OpsPerSec), base.OpsPerSec, cur.OpsPerSec, floor)})
			}
		}
		if !opt.SkipThroughput && base.NsPerOp > 0 {
			if ceil := base.NsPerOp * (1 + opt.ThroughputThreshold); cur.NsPerOp > ceil {
				regs = append(regs, Regression{base.Key(), fmt.Sprintf(
					"latency regressed %.1f%%: %.0f → %.0f ns/op (ceiling %.0f)",
					100*(cur.NsPerOp/base.NsPerOp-1), base.NsPerOp, cur.NsPerOp, ceil)})
			}
		}
		if base.PinnedZeroAlloc && base.AllocsPerOp != nil {
			switch {
			case cur.AllocsPerOp == nil:
				regs = append(regs, Regression{base.Key(), "pinned zero-alloc path lost its allocs/op measurement"})
			case *cur.AllocsPerOp > *base.AllocsPerOp:
				regs = append(regs, Regression{base.Key(), fmt.Sprintf(
					"allocs/op increased on pinned zero-alloc path: %d → %d",
					*base.AllocsPerOp, *cur.AllocsPerOp)})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Key < regs[j].Key })
	return regs
}
