package ops_test

// Exposition tests: every line of a scrape parses as Prometheus text format
// 0.0.4, samples stay grouped under one header per metric, histograms are
// cumulative, label values escape, the counter series survive a live Resize
// monotonically, and the HTTP endpoint serves the whole thing.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
	"fastsketches/internal/ops"
)

// exposition is a parsed scrape: declared types plus samples in order.
type exposition struct {
	types   map[string]string // metric → counter|gauge|histogram
	samples []sample
}

type sample struct {
	metric string // full sample name, e.g. foo_bucket
	labels string // raw {...} content, "" if none
	value  float64
}

// base maps a sample name to the metric its # TYPE header declares.
func (e *exposition) base(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if t, ok := e.types[strings.TrimSuffix(name, suf)]; ok && t == "histogram" {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func (e *exposition) get(metric, labels string) (float64, bool) {
	for _, s := range e.samples {
		if s.metric == metric && s.labels == labels {
			return s.value, true
		}
	}
	return 0, false
}

// parseExposition validates the text format line by line: headers are
// well-formed, every sample's value parses, every sample belongs to a
// declared metric, and all samples of one metric are contiguous.
func parseExposition(t *testing.T, text string) *exposition {
	t.Helper()
	e := &exposition{types: map[string]string{}}
	seenDone := map[string]bool{} // metric → its sample block has ended
	last := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if len(strings.SplitN(line[len("# HELP "):], " ", 2)) != 2 {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line[len("# TYPE "):])
			if len(f) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, f[1])
			}
			if _, dup := e.types[f[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, f[0])
			}
			e.types[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		// Sample: name[{labels}] value
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			rest = line[i+1 : j]
			line = line[:i] + line[j+1:]
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("line %d: want 'name value': %q", ln+1, line)
		}
		name := f[0]
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, f[1], err)
		}
		b := e.base(name)
		if _, ok := e.types[b]; !ok {
			t.Fatalf("line %d: sample %s has no preceding # TYPE", ln+1, name)
		}
		if b != last {
			if seenDone[b] {
				t.Fatalf("line %d: samples of %s not contiguous", ln+1, b)
			}
			if last != "" {
				seenDone[last] = true
			}
			last = b
		}
		e.samples = append(e.samples, sample{name, rest, v})
	}
	return e
}

// checkHistogram verifies cumulative buckets with increasing le bounds,
// ending at +Inf == _count.
func checkHistogram(t *testing.T, e *exposition, metric string) {
	t.Helper()
	var prev float64
	prevLe := -1.0
	sawInf := false
	for _, s := range e.samples {
		if s.metric != metric+"_bucket" {
			continue
		}
		le := s.labels[len(`le="`) : len(s.labels)-1]
		if s.value < prev {
			t.Errorf("%s: bucket le=%s count %v < previous %v (not cumulative)", metric, le, s.value, prev)
		}
		prev = s.value
		if le == "+Inf" {
			sawInf = true
			continue
		}
		lv, err := strconv.ParseFloat(le, 64)
		if err != nil || lv <= prevLe {
			t.Errorf("%s: le bounds not increasing numeric: %q after %v (err %v)", metric, le, prevLe, err)
		}
		prevLe = lv
	}
	if !sawInf {
		t.Fatalf("%s: no +Inf bucket", metric)
	}
	cnt, ok := e.get(metric+"_count", "")
	if !ok {
		t.Fatalf("%s: no _count", metric)
	}
	if cnt != prev {
		t.Errorf("%s: _count %v != +Inf bucket %v", metric, cnt, prev)
	}
}

// TestMetricsExposition scrapes a registry with live sketches, a view, an
// attached (inert) autoscale controller, a Manager, and ingest histograms,
// and validates the whole exposition.
func TestMetricsExposition(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1, BufferSize: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	m, err := ops.NewManager(reg, ops.Config{IdleTTL: time.Hour, Clock: mc})
	if err != nil {
		t.Fatal(err)
	}

	th, err := reg.OpenTheta("metrics/theta", fastsketches.Spec{
		View: &fastsketches.ViewConfig{RefreshEvery: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A label value exercising every escape the format defines.
	weird, err := reg.OpenCountMin("we\"ird\\name\nnl", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := weird.Autoscale(autoscale.Policy{HighWater: 1e9, Clock: mc, SampleEvery: time.Hour}); err != nil {
		t.Fatal(err)
	}
	defer weird.StopAutoscale()

	for i := uint64(0); i < 500; i++ {
		th.Update(0, i)
		weird.Update(0, i%32)
	}
	m.Sweep()

	obs := &ops.IngestObserver{}
	for _, c := range []struct{ n, ns int64 }{{1, 50}, {3, 900}, {256, 120000}, {4096, 9_000_000}} {
		obs.ObserveChunk(c.n, c.ns)
	}

	c := &ops.Collector{Reg: reg, Manager: m, Ingest: obs}
	e := parseExposition(t, c.String())

	thetaLabels := `family="theta",name="metrics/theta"`
	weirdLabels := `family="countmin",name="we\"ird\\name\nnl"`
	for _, metric := range []string{
		"fastsketches_sketch_shards",
		"fastsketches_sketch_relaxation",
		"fastsketches_sketch_shard_relaxation",
		"fastsketches_sketch_eager",
		"fastsketches_sketch_ingested_total",
		"fastsketches_sketch_merged_total",
		"fastsketches_sketch_backlog",
		"fastsketches_sketch_view_enabled",
		"fastsketches_sketch_view_lag_seconds",
		"fastsketches_sketch_resident_bytes",
	} {
		for _, labels := range []string{thetaLabels, weirdLabels} {
			if _, ok := e.get(metric, labels); !ok {
				t.Errorf("missing %s{%s}", metric, labels)
			}
		}
	}
	if v, _ := e.get("fastsketches_sketch_shards", thetaLabels); v != 2 {
		t.Errorf("shards gauge %v, want 2", v)
	}
	if v, _ := e.get("fastsketches_sketch_view_enabled", thetaLabels); v != 1 {
		t.Errorf("view_enabled %v, want 1 (Spec.View armed it)", v)
	}
	if v, ok := e.get("fastsketches_registry_sketches", ""); !ok || v != 2 {
		t.Errorf("registry_sketches %v (ok=%v), want 2", v, ok)
	}
	ing, _ := e.get("fastsketches_sketch_ingested_total", thetaLabels)
	mrg, _ := e.get("fastsketches_sketch_merged_total", thetaLabels)
	if ing <= 0 || mrg < 0 || mrg > ing {
		t.Errorf("pressure counters ingested=%v merged=%v; want 0 < merged ≤ ingested", ing, mrg)
	}

	// Controller series appear only for the sketch with a controller.
	if _, ok := e.get("fastsketches_autoscale_samples_total", weirdLabels); !ok {
		t.Error("missing autoscale samples series for controlled sketch")
	}
	if _, ok := e.get("fastsketches_autoscale_samples_total", thetaLabels); ok {
		t.Error("autoscale series emitted for a sketch with no controller")
	}
	for _, reason := range []string{"cooldown", "at_bound", "view_lag", "memory"} {
		if _, ok := e.get("fastsketches_autoscale_held_total", weirdLabels+`,reason="`+reason+`"`); !ok {
			t.Errorf("missing held_total reason=%s", reason)
		}
	}

	// Manager series.
	if v, ok := e.get("fastsketches_ops_sweeps_total", ""); !ok || v != 1 {
		t.Errorf("ops_sweeps_total %v (ok=%v), want 1", v, ok)
	}
	if v, ok := e.get("fastsketches_ops_resident_bytes", ""); !ok || v <= 0 {
		t.Errorf("ops_resident_bytes %v (ok=%v), want > 0", v, ok)
	}

	// Histograms: structure plus exact totals.
	checkHistogram(t, e, "fastsketches_ingest_chunk_items")
	checkHistogram(t, e, "fastsketches_ingest_chunk_duration_seconds")
	if v, _ := e.get("fastsketches_ingest_chunk_items_count", ""); v != 4 {
		t.Errorf("items _count %v, want 4", v)
	}
	if v, _ := e.get("fastsketches_ingest_chunk_items_sum", ""); v != 1+3+256+4096 {
		t.Errorf("items _sum %v, want %d", v, 1+3+256+4096)
	}
	if v, _ := e.get("fastsketches_ingest_chunk_duration_seconds_sum", ""); v < 0.009 || v > 0.0092 {
		t.Errorf("duration _sum %v, want ≈ 0.00912 (ns scaled to seconds)", v)
	}
}

// TestMetricsMonotonicAcrossResize: the pressure counters exported as
// *_total must be monotonic across a live Resize — a scrape taken after a
// reshard never goes backwards from one taken before.
func TestMetricsMonotonicAcrossResize(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1, BufferSize: 1})
	h, err := reg.OpenCountMin("mono/cm", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	c := &ops.Collector{Reg: reg}
	labels := `family="countmin",name="mono/cm"`

	var lastIng, lastMrg float64
	for round, s := range []int{3, 1, 4} {
		for i := uint64(0); i < 1000; i++ {
			h.Update(0, i)
		}
		if err := h.Resize(s); err != nil {
			t.Fatal(err)
		}
		e := parseExposition(t, c.String())
		ing, ok1 := e.get("fastsketches_sketch_ingested_total", labels)
		mrg, ok2 := e.get("fastsketches_sketch_merged_total", labels)
		if !ok1 || !ok2 {
			t.Fatal("pressure series missing from scrape")
		}
		if ing < lastIng || mrg < lastMrg {
			t.Fatalf("round %d: counters went backwards across Resize(%d): ingested %v→%v merged %v→%v",
				round, s, lastIng, ing, lastMrg, mrg)
		}
		lastIng, lastMrg = ing, mrg
	}
	if lastIng < 3000 {
		t.Errorf("final ingested_total %v, want ≥ 3000 (counter must accumulate across epochs)", lastIng)
	}
}

// TestMetricsHTTP: the endpoint serves the exposition with the 0.0.4
// content type, and the root path points at it.
func TestMetricsHTTP(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	if _, err := reg.OpenTheta("http/t", fastsketches.Spec{}); err != nil {
		t.Fatal(err)
	}
	ms, err := ops.ListenMetrics("127.0.0.1:0", &ops.Collector{Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want the 0.0.4 text format", ct)
	}
	e := parseExposition(t, string(body))
	if _, ok := e.get("fastsketches_sketch_shards", `family="theta",name="http/t"`); !ok {
		t.Error("scrape over HTTP missing per-sketch series")
	}

	// Sanity: the metric set is stable across scrapes (no duplicated or
	// re-ordered headers from buffer reuse).
	resp2, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	e2 := parseExposition(t, string(body2))
	var m1, m2 []string
	for k := range e.types {
		m1 = append(m1, k)
	}
	for k := range e2.types {
		m2 = append(m2, k)
	}
	sort.Strings(m1)
	sort.Strings(m2)
	if fmt.Sprint(m1) != fmt.Sprint(m2) {
		t.Errorf("metric sets differ between scrapes:\n%v\n%v", m1, m2)
	}
}
