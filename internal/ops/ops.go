// Package ops is the multi-tenant operations layer over a
// fastsketches.Registry: the lifecycle sweeper (idle-TTL eviction and
// memory-budget accounting) plus the Prometheus-text /metrics exposition
// that makes the library's internal wait-free counters — shard counts, live
// relaxation bounds, ingest pressure, view-refresh lag, autoscale
// controller decisions — visible to an external scrape.
//
// # Idle eviction
//
// The Manager periodically enumerates the registry and differentiates each
// sketch's cumulative Ingested counter between sweeps. That counter already
// advances exactly once per published writer buffer (one amortised atomic
// add per b items — see core.PressureSample), so idleness tracking adds
// zero cost to the ingest hot path: a sketch whose counter has not moved
// since the last sweep has received no completed updates, and once that
// stillness has lasted its idle TTL (per-sketch Spec.IdleTTL, else the
// sweeper's default) the Manager drops it through the configured Drop hook.
// Dropping folds nothing away silently: Drop itself drains every buffer
// exactly before the sketch closes. Queries do not refresh the TTL —
// liveness is an ingest-plane property.
//
// # Memory budget
//
// Every sweep also sums each sketch's estimated resident bytes
// (shard.Sharded.SizeBytes: one family-dimensioned accumulator per live
// shard plus retained legacy state). While the total exceeds MemBudget the
// Manager walks the unpinned sketches most-idle-first and reclaims: a
// sketch still striped over more than ShrinkToShards shards is live-resized
// down (the retiring shards' snapshots fold into one compact legacy
// accumulator — compaction, not loss), otherwise it is shed via Drop. An
// active tenant is touched only after shedding every idler tenant still
// left the registry over budget. The budget also acts preventively: the
// Manager installs itself as the registry's autoscale memory-pressure
// signal, so controllers veto scale-ups and prefer scale-downs while over
// budget.
//
// # Why the export plane is wait-free toward writers
//
// Every figure the Collector exports is either an atomic counter the hot
// path already maintains (pressure samples, lane histograms) or derived
// state read through one atomic epoch load (shard counts, relaxation,
// sizes). A scrape takes the registry lock only for the brief map snapshot
// in Infos — never while folding or formatting — so writers and queriers
// proceed at full speed under arbitrarily slow scrapers.
package ops

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastsketches"
)

// Config parameterises a Manager. The zero value disables both eviction
// and budgeting (a Manager then only tracks activity and resident size).
type Config struct {
	// IdleTTL is the default idle-eviction TTL: a sketch with no completed
	// ingest for this long is dropped. 0 disables default eviction —
	// per-sketch Spec.IdleTTL overrides still apply. Negative is rejected.
	IdleTTL time.Duration
	// MemBudget caps the summed estimated resident bytes of all sketches;
	// while over, sweeps shrink or shed unpinned tenants most-idle-first
	// and autoscale scale-ups are vetoed. 0 disables budgeting.
	MemBudget int64
	// SweepEvery is the sweep period of the background loop. Default 5s.
	SweepEvery time.Duration
	// ShrinkToShards is the shard count a budget shrink resizes down to
	// before resorting to shedding. Default 1.
	ShrinkToShards int
	// Drop removes one sketch, returning whether it existed. Defaults to
	// Registry.Drop; serving layers must point it at their own quiescing
	// drop path (sketchd uses server.DropSketch) so lane workers bound to
	// the sketch drain before it closes instead of wedging on it.
	Drop func(family, name string) bool
	// Clock supplies sweep timing and the idle clock. Default: real time.
	Clock fastsketches.Clock
	// Logf, when set, receives one line per eviction, shrink, and shed.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of a Manager's cumulative counters and latest gauges.
type Stats struct {
	// Sweeps counts completed sweep passes.
	Sweeps int64
	// Evictions counts idle-TTL drops; BudgetSheds counts over-budget
	// drops; BudgetShrinks counts over-budget resize-downs.
	Evictions, BudgetSheds, BudgetShrinks int64
	// ResidentBytes is the summed estimated resident size at the last
	// sweep; BudgetBytes echoes Config.MemBudget (0 = unlimited).
	ResidentBytes, BudgetBytes int64
	// Sketches is the number of registered sketches at the last sweep.
	Sketches int64
}

// SweepResult reports what one sweep pass did.
type SweepResult struct {
	Sketches      int
	Evicted       int
	Shrunk        int
	Shed          int
	ResidentBytes int64
}

// tenantState is the Manager's per-sketch activity record: the last seen
// Ingested counter and the instant it last moved.
type tenantState struct {
	lastIngested int64
	lastActive   time.Time
}

// sysClock is the default real-time Clock.
type sysClock struct{}

func (sysClock) Now() time.Time                         { return time.Now() }
func (sysClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Manager runs the lifecycle loop: Start launches a background sweeper (or
// call Sweep directly to pace it externally — tests do), Stop halts it.
// One Manager per registry.
type Manager struct {
	reg   *fastsketches.Registry
	cfg   Config
	clock fastsketches.Clock
	drop  func(family, name string) bool

	mu   sync.Mutex
	seen map[string]*tenantState

	sweeps, evictions, sheds, shrinks atomic.Int64
	resident, sketches                atomic.Int64
	overBudget                        atomic.Bool

	startMu sync.Mutex
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewManager validates cfg and returns an inert Manager over reg. When a
// memory budget is set, the Manager installs itself as the registry's
// autoscale memory-pressure signal (see
// Registry.SetAutoscaleMemoryPressure).
func NewManager(reg *fastsketches.Registry, cfg Config) (*Manager, error) {
	if cfg.IdleTTL < 0 {
		return nil, fmt.Errorf("ops: negative IdleTTL")
	}
	if cfg.MemBudget < 0 {
		return nil, fmt.Errorf("ops: negative MemBudget")
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = 5 * time.Second
	}
	if cfg.SweepEvery < 0 {
		return nil, fmt.Errorf("ops: negative SweepEvery")
	}
	if cfg.ShrinkToShards == 0 {
		cfg.ShrinkToShards = 1
	}
	if cfg.ShrinkToShards < 1 {
		return nil, fmt.Errorf("ops: ShrinkToShards must be ≥ 1")
	}
	if cfg.Clock == nil {
		cfg.Clock = sysClock{}
	}
	m := &Manager{
		reg:   reg,
		cfg:   cfg,
		clock: cfg.Clock,
		drop:  cfg.Drop,
		seen:  make(map[string]*tenantState),
	}
	if m.drop == nil {
		m.drop = reg.Drop
	}
	if cfg.MemBudget > 0 {
		reg.SetAutoscaleMemoryPressure(m.OverBudget)
	}
	return m, nil
}

// OverBudget reports whether the last sweep left the registry over its
// memory budget — the autoscale veto signal. One atomic load.
func (m *Manager) OverBudget() bool { return m.overBudget.Load() }

// ResidentBytes returns the summed estimated resident size at the last
// sweep.
func (m *Manager) ResidentBytes() int64 { return m.resident.Load() }

// Stats returns a snapshot of the Manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Sweeps:        m.sweeps.Load(),
		Evictions:     m.evictions.Load(),
		BudgetSheds:   m.sheds.Load(),
		BudgetShrinks: m.shrinks.Load(),
		ResidentBytes: m.resident.Load(),
		BudgetBytes:   m.cfg.MemBudget,
		Sketches:      m.sketches.Load(),
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Sweep runs one lifecycle pass: refresh activity tracking, evict
// TTL-expired idle sketches, then reconcile the memory budget. Safe for
// concurrent use with the registry's full API (and with itself, though one
// pacer is the intended caller).
func (m *Manager) Sweep() SweepResult {
	now := m.clock.Now()
	infos := m.reg.Infos()
	res := SweepResult{Sketches: len(infos)}

	type candidate struct {
		fastsketches.SketchInfo
		idle time.Duration
	}
	var evict, keep []candidate

	m.mu.Lock()
	live := make(map[string]bool, len(infos))
	for _, inf := range infos {
		key := inf.Family + "/" + inf.Name
		live[key] = true
		ts := m.seen[key]
		if ts == nil {
			// First sighting: the idle clock starts now. A sketch created
			// and never written still expires after its TTL.
			ts = &tenantState{lastIngested: inf.Ingested, lastActive: now}
			m.seen[key] = ts
		} else if ts.lastIngested != inf.Ingested {
			ts.lastIngested = inf.Ingested
			ts.lastActive = now
		}
		c := candidate{inf, now.Sub(ts.lastActive)}
		ttl := inf.IdleTTL
		if ttl == 0 {
			ttl = m.cfg.IdleTTL
		}
		if !inf.Pinned && ttl > 0 && c.idle >= ttl {
			evict = append(evict, c)
		} else {
			keep = append(keep, c)
		}
	}
	for key := range m.seen {
		if !live[key] {
			delete(m.seen, key) // dropped or evicted since the last sweep
		}
	}
	m.mu.Unlock()

	// Evictions run outside m.mu: Drop stops controllers and drains
	// propagators, and the configured hook may additionally quiesce lane
	// workers.
	for _, c := range evict {
		if m.drop(c.Family, c.Name) {
			m.evictions.Add(1)
			res.Evicted++
			m.logf("ops: evicted idle %s/%s (idle %v)", c.Family, c.Name, c.idle)
		}
	}

	var resident int64
	for _, c := range keep {
		resident += c.SizeBytes
	}
	if budget := m.cfg.MemBudget; budget > 0 && resident > budget {
		// Most-idle-first: an active tenant is reclaimed only after every
		// idler one; pinned tenants are never touched.
		sort.Slice(keep, func(i, j int) bool { return keep[i].idle > keep[j].idle })
		for _, c := range keep {
			if resident <= budget {
				break
			}
			if c.Pinned {
				continue
			}
			if c.Shards > m.cfg.ShrinkToShards {
				if err := m.reg.ResizeSketch(c.Family, c.Name, m.cfg.ShrinkToShards); err != nil {
					continue // racing drop/close; the next sweep re-reads
				}
				m.shrinks.Add(1)
				res.Shrunk++
				old := c.SizeBytes
				if inf, ok := m.reg.Info(c.Family, c.Name); ok {
					resident += inf.SizeBytes - old
				}
				m.logf("ops: shrank %s/%s %d→%d shards under memory budget",
					c.Family, c.Name, c.Shards, m.cfg.ShrinkToShards)
				continue
			}
			if m.drop(c.Family, c.Name) {
				m.sheds.Add(1)
				res.Shed++
				resident -= c.SizeBytes
				m.logf("ops: shed %s/%s under memory budget (%d bytes back)",
					c.Family, c.Name, c.SizeBytes)
			}
		}
	}
	res.ResidentBytes = resident
	m.resident.Store(resident)
	m.sketches.Store(int64(res.Sketches - res.Evicted - res.Shed))
	m.overBudget.Store(m.cfg.MemBudget > 0 && resident > m.cfg.MemBudget)
	m.sweeps.Add(1)
	return res
}

// Run sweeps every SweepEvery on the Manager's Clock until stop closes.
// Exported for callers that own the goroutine; most use Start/Stop.
func (m *Manager) Run(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-m.clock.After(m.cfg.SweepEvery):
			m.Sweep()
		}
	}
}

// Start launches the background sweep loop. It panics if the Manager was
// already started (mirroring autoscale.Controller.Start).
func (m *Manager) Start() {
	m.startMu.Lock()
	defer m.startMu.Unlock()
	if m.started {
		panic("ops: Manager started twice")
	}
	m.started = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		m.Run(m.stop)
	}()
}

// Stop halts the background loop and waits for any in-flight sweep to
// finish. Idempotent; a no-op if Start was never called.
func (m *Manager) Stop() {
	m.startMu.Lock()
	defer m.startMu.Unlock()
	if !m.started || m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop = nil
}
