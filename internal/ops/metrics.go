package ops

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"fastsketches"
)

// Collector assembles the /metrics exposition in Prometheus text format
// (version 0.0.4) from three sources: the registry's per-sketch
// introspection (required), the lifecycle Manager's counters (optional),
// and the serving layer's ingest histograms (optional). It holds no state
// of its own — every scrape reads the live wait-free counters, so
// successive scrapes see monotonic *_total series without the Collector
// ever touching the ingest or query hot paths.
type Collector struct {
	Reg     *fastsketches.Registry
	Manager *Manager        // nil: no ops_* series
	Ingest  *IngestObserver // nil: no ingest histograms
}

// sketchGauge is one per-sketch series: its metric name, help line,
// Prometheus type, and the field extractor.
type sketchGauge struct {
	name, help, typ string
	value           func(inf *fastsketches.SketchInfo) float64
}

var sketchSeries = []sketchGauge{
	{"fastsketches_sketch_shards", "Current shard count S.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.Shards) }},
	{"fastsketches_sketch_relaxation", "Live merged-query staleness bound S*r in completed updates (transiently S_old*r + S_new*r during a resize).", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.Relaxation) }},
	{"fastsketches_sketch_shard_relaxation", "Per-shard staleness bound r = 2*N*b.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.ShardRelaxation) }},
	{"fastsketches_sketch_eager", "1 while merged queries are still exact (every shard in its eager phase).", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return b2f(i.Eager) }},
	{"fastsketches_sketch_ingested_total", "Items handed to the propagation plane; monotonic across resizes.", "counter",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.Ingested) }},
	{"fastsketches_sketch_merged_total", "Items folded into shard snapshots; monotonic across resizes.", "counter",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.Merged) }},
	{"fastsketches_sketch_backlog", "Items published but not yet merged (ingested - merged).", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.Backlog) }},
	{"fastsketches_sketch_view_enabled", "1 when a materialized merged view serves this sketch's aggregate queries.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return b2f(i.ViewEnabled) }},
	{"fastsketches_sketch_view_lag_seconds", "Age of the view's latest published refresh; 0 with no view.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return i.ViewLag.Seconds() }},
	{"fastsketches_sketch_resident_bytes", "Estimated resident heap footprint of the sketch.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.SizeBytes) }},
	{"fastsketches_sketch_window_enabled", "1 when a sliding window is declared on the sketch.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return b2f(i.WindowEnabled) }},
	{"fastsketches_sketch_window_slots", "Declared window capacity in closed rotation intervals; 0 with no window.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.WindowSlots) }},
	{"fastsketches_sketch_window_rotations_total", "Window ring rotations since the window was declared.", "counter",
		func(i *fastsketches.SketchInfo) float64 { return float64(i.WindowRotations) }},
	{"fastsketches_sketch_window_live_age_seconds", "Age of the window's live interval; 0 with no window.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return i.WindowLiveAge.Seconds() }},
	{"fastsketches_sketch_window_rotation_lag_seconds", "How far the live interval has outlived the rotation interval; sustained non-zero means the rotator is stalled.", "gauge",
		func(i *fastsketches.SketchInfo) float64 { return i.WindowRotationLag.Seconds() }},
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteMetrics writes the full exposition to w. The registry lock is held
// only for the brief map snapshot inside Infos; all counter reads are
// atomic loads and all formatting happens lock-free, so a slow scraper
// (or a slow w) never stalls writers, queriers, or the registry's control
// plane.
func (c *Collector) WriteMetrics(w io.Writer) error {
	infos := c.Reg.Infos()
	var buf []byte

	for _, s := range sketchSeries {
		buf = appendHeader(buf, s.name, s.help, s.typ)
		for i := range infos {
			buf = appendSample2(buf, s.name, &infos[i], s.value(&infos[i]))
		}
	}

	buf = appendHeader(buf, "fastsketches_registry_sketches", "Registered sketches, all families.", "gauge")
	buf = append(buf, "fastsketches_registry_sketches "...)
	buf = strconv.AppendInt(buf, int64(len(infos)), 10)
	buf = append(buf, '\n')

	buf = c.appendAutoscale(buf, infos)
	if c.Manager != nil {
		buf = appendManager(buf, c.Manager.Stats())
	}
	if c.Ingest != nil {
		buf = appendHist(buf, "fastsketches_ingest_chunk_items",
			"Items per applied ingest lane chunk.", &c.Ingest.Items, 1)
		buf = appendHist(buf, "fastsketches_ingest_chunk_duration_seconds",
			"Apply duration per ingest lane chunk.", &c.Ingest.Nanos, 1e-9)
	}

	_, err := w.Write(buf)
	return err
}

// appendAutoscale emits the controller series for every sketch that has an
// autoscale controller attached.
func (c *Collector) appendAutoscale(buf []byte, infos []fastsketches.SketchInfo) []byte {
	type ctlRow struct {
		inf *fastsketches.SketchInfo
		st  autoscaleStats
	}
	var rows []ctlRow
	for i := range infos {
		if st, ok := c.Reg.AutoscaleStats(infos[i].Family, infos[i].Name); ok {
			rows = append(rows, ctlRow{&infos[i], autoscaleStats{
				samples: st.Samples, ups: st.ScaleUps, downs: st.ScaleDowns,
				heldCooldown: st.HeldCooldown, heldAtBound: st.HeldAtBound,
				heldViewLag: st.HeldViewLag, heldMemory: st.HeldMemory,
				capped: st.CappedByStaleness,
				rate:   st.LastPerShardRate, backlog: st.LastBacklogPerShard,
			}})
		}
	}
	if len(rows) == 0 {
		return buf
	}
	emit := func(name, help, typ string, v func(*ctlRow) float64) {
		buf = appendHeader(buf, name, help, typ)
		for i := range rows {
			buf = appendSample2(buf, name, rows[i].inf, v(&rows[i]))
		}
	}
	emit("fastsketches_autoscale_samples_total", "Controller ticks taken.", "counter",
		func(r *ctlRow) float64 { return float64(r.st.samples) })
	emit("fastsketches_autoscale_scale_ups_total", "Completed scale-up resizes.", "counter",
		func(r *ctlRow) float64 { return float64(r.st.ups) })
	emit("fastsketches_autoscale_scale_downs_total", "Completed scale-down resizes.", "counter",
		func(r *ctlRow) float64 { return float64(r.st.downs) })
	emit("fastsketches_autoscale_capped_total", "Steps clamped or skipped by the transitional staleness cap.", "counter",
		func(r *ctlRow) float64 { return float64(r.st.capped) })
	emit("fastsketches_autoscale_per_shard_rate", "Most recent per-shard ingest rate (items/sec).", "gauge",
		func(r *ctlRow) float64 { return r.st.rate })
	emit("fastsketches_autoscale_backlog_per_shard", "Most recent per-shard propagator backlog (items).", "gauge",
		func(r *ctlRow) float64 { return r.st.backlog })

	// Held streaks carry a reason label on top of the identity labels.
	buf = appendHeader(buf, "fastsketches_autoscale_held_total",
		"Sustained streaks suppressed, by reason.", "counter")
	for i := range rows {
		r := &rows[i]
		for _, h := range [...]struct {
			reason string
			n      int64
		}{
			{"cooldown", r.st.heldCooldown},
			{"at_bound", r.st.heldAtBound},
			{"view_lag", r.st.heldViewLag},
			{"memory", r.st.heldMemory},
		} {
			buf = append(buf, "fastsketches_autoscale_held_total{family=\""...)
			buf = appendEscaped(buf, r.inf.Family)
			buf = append(buf, "\",name=\""...)
			buf = appendEscaped(buf, r.inf.Name)
			buf = append(buf, "\",reason=\""...)
			buf = append(buf, h.reason...)
			buf = append(buf, "\"} "...)
			buf = strconv.AppendInt(buf, h.n, 10)
			buf = append(buf, '\n')
		}
	}
	return buf
}

// autoscaleStats is the flattened slice of autoscale.Stats the exposition
// uses (LastErr and decision enums are not exportable as samples).
type autoscaleStats struct {
	samples, ups, downs                            int64
	heldCooldown, heldAtBound, heldViewLag, capped int64
	heldMemory                                     int64
	rate, backlog                                  float64
}

// appendManager emits the lifecycle sweeper's counters.
func appendManager(buf []byte, st Stats) []byte {
	for _, s := range [...]struct {
		name, help, typ string
		v               int64
	}{
		{"fastsketches_ops_sweeps_total", "Completed lifecycle sweep passes.", "counter", st.Sweeps},
		{"fastsketches_ops_evictions_total", "Sketches dropped by idle-TTL eviction.", "counter", st.Evictions},
		{"fastsketches_ops_budget_sheds_total", "Sketches dropped by the memory-budget accountant.", "counter", st.BudgetSheds},
		{"fastsketches_ops_budget_shrinks_total", "Sketches resized down by the memory-budget accountant.", "counter", st.BudgetShrinks},
		{"fastsketches_ops_resident_bytes", "Summed estimated resident sketch bytes at the last sweep.", "gauge", st.ResidentBytes},
		{"fastsketches_ops_mem_budget_bytes", "Configured memory budget; 0 = unlimited.", "gauge", st.BudgetBytes},
	} {
		buf = appendHeader(buf, s.name, s.help, s.typ)
		buf = append(buf, s.name...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, s.v, 10)
		buf = append(buf, '\n')
	}
	return buf
}

// appendHist emits one Hist as a Prometheus histogram. Bucket i of Hist
// holds values of bit length i, so the cumulative count through bucket i
// covers v ≤ 2^i - 1: the le bound is (2^i - 1)·scale. Empty tail buckets
// are elided (the +Inf bucket always appears).
func appendHist(buf []byte, name, help string, h *Hist, scale float64) []byte {
	var counts [histBuckets]int64
	h.snapshot(&counts)
	// Snapshot count/sum after the buckets: Observe adds the bucket first,
	// so count ≥ Σ emitted buckets never undercounts +Inf.
	count, sum := h.Count(), h.Sum()
	hi := 0
	for i, n := range counts {
		if n != 0 {
			hi = i
		}
	}
	buf = appendHeader(buf, name, help, "histogram")
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += counts[i]
		le := float64(uint64(1)<<uint(i)-1) * scale
		buf = append(buf, name...)
		buf = append(buf, "_bucket{le=\""...)
		buf = strconv.AppendFloat(buf, le, 'g', -1, 64)
		buf = append(buf, "\"} "...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_bucket{le=\"+Inf\"} "...)
	buf = strconv.AppendInt(buf, count, 10)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_sum "...)
	buf = strconv.AppendFloat(buf, float64(sum)*scale, 'g', -1, 64)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendInt(buf, count, 10)
	buf = append(buf, '\n')
	return buf
}

// appendHeader appends the # HELP / # TYPE preamble of one metric.
func appendHeader(buf []byte, name, help, typ string) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, help...)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, typ...)
	buf = append(buf, '\n')
	return buf
}

// appendSample2 appends one sample carrying the standard identity labels
// {family, name}.
func appendSample2(buf []byte, metric string, inf *fastsketches.SketchInfo, v float64) []byte {
	buf = append(buf, metric...)
	buf = append(buf, "{family=\""...)
	buf = appendEscaped(buf, inf.Family)
	buf = append(buf, "\",name=\""...)
	buf = appendEscaped(buf, inf.Name)
	buf = append(buf, "\"} "...)
	buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	buf = append(buf, '\n')
	return buf
}

// appendEscaped appends a label value with the text-format escapes:
// backslash, double quote, and newline.
func appendEscaped(buf []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\"\n") {
		return append(buf, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// String renders the exposition to a string — a convenience for tests and
// debugging.
func (c *Collector) String() string {
	var sb strings.Builder
	if err := c.WriteMetrics(&sb); err != nil {
		return fmt.Sprintf("ops: collect: %v", err)
	}
	return sb.String()
}
