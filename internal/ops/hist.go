package ops

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two buckets a Hist tracks: bucket i
// counts observations with value < 2^i (cumulatively exported), bucket
// histBuckets-1 is the overflow (+Inf) bucket. 2^62 covers any int64 the
// ingest plane can produce (batch item counts, nanosecond durations).
const histBuckets = 63

// Hist is a wait-free power-of-two-bucketed histogram: Observe is two
// atomic adds and a bit scan — no locks, no allocation — so lane workers
// can record every applied chunk without giving up the ingest plane's
// zero-alloc, wait-free contract, while a concurrent /metrics scrape reads
// the buckets with plain atomic loads. Counts are monotonic; a scrape
// racing an Observe sees either the pre- or post-observation value of each
// counter, which Prometheus's cumulative-bucket semantics tolerate by
// design.
type Hist struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Bucket index: smallest i with v < 2^i, i.e. bit length of v.
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.bucket[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// snapshot loads the per-bucket counts (non-cumulative) into dst.
func (h *Hist) snapshot(dst *[histBuckets]int64) {
	for i := range h.bucket {
		dst[i] = h.bucket[i].Load()
	}
}

// IngestObserver is the process-wide ingest instrumentation the serving
// layer feeds: one Observe pair per applied lane chunk (item count and
// apply duration), recorded by the lane worker after the chunk's updates
// landed. Both histograms are wait-free and allocation-free, so observing
// costs the hot path two clock reads and a handful of atomic adds per
// chunk — amortised over up to applyBlock items.
type IngestObserver struct {
	// Items buckets the item count of each applied chunk.
	Items Hist
	// Nanos buckets each chunk's apply duration in nanoseconds.
	Nanos Hist
}

// ObserveChunk records one applied chunk: n items applied in d nanoseconds.
func (o *IngestObserver) ObserveChunk(n, d int64) {
	o.Items.Observe(n)
	o.Nanos.Observe(d)
}
