package ops_test

// Lifecycle-manager tests: idle-TTL eviction driven by the ingest plane's
// Ingested counter (not wall-clock sleeps — a ManualClock paces the idle
// clock), the memory-budget accountant's shrink-before-shed ladder, pinning,
// and the -race stress interleavings (evict vs query vs resize, budget shed
// vs checkpoint).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
	"fastsketches/internal/ops"
)

func newRegistry(t testing.TB, cfg fastsketches.RegistryConfig) *fastsketches.Registry {
	t.Helper()
	reg, err := fastsketches.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestIdleEviction: a sketch whose Ingested counter stops moving is dropped
// once its TTL elapses on the manager's clock; a sketch that keeps ingesting
// is not; a per-sketch Spec.IdleTTL overrides the default; a pinned sketch
// survives any idleness.
func TestIdleEviction(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1, BufferSize: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	m, err := ops.NewManager(reg, ops.Config{IdleTTL: time.Minute, Clock: mc})
	if err != nil {
		t.Fatal(err)
	}

	idle, err := reg.OpenTheta("tenant/idle", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	active, err := reg.OpenTheta("tenant/active", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := reg.OpenTheta("tenant/pinned", fastsketches.Spec{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	longTTL, err := reg.OpenTheta("tenant/long", fastsketches.Spec{IdleTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	idle.Update(0, 1)
	pinned.Update(0, 1)
	longTTL.Update(0, 1)

	// First sweep starts every idle clock.
	if res := m.Sweep(); res.Evicted != 0 || res.Sketches != 4 {
		t.Fatalf("first sweep: %+v, want 4 sketches, 0 evictions", res)
	}

	// Half a TTL: nobody expires; the active tenant ingests.
	mc.Advance(30 * time.Second)
	active.Update(0, 2)
	if res := m.Sweep(); res.Evicted != 0 {
		t.Fatalf("sweep at TTL/2 evicted %d", res.Evicted)
	}

	// Past the default TTL for everyone who went quiet since their last
	// ingest — but the active tenant wrote after the previous sweep (its
	// Ingested counter moved, refreshing last-activity), the pinned tenant
	// is exempt, and the long-TTL tenant's 1h override has not elapsed.
	mc.Advance(45 * time.Second)
	active.Update(0, 3)
	res := m.Sweep()
	if res.Evicted != 1 {
		t.Fatalf("sweep past TTL: %+v, want exactly the idle tenant evicted", res)
	}
	if _, ok := reg.Info("theta", "tenant/idle"); ok {
		t.Error("idle tenant still registered after eviction")
	}
	for _, name := range []string{"tenant/active", "tenant/pinned", "tenant/long"} {
		if _, ok := reg.Info("theta", name); !ok {
			t.Errorf("%s was evicted; want kept", name)
		}
	}

	// The per-sketch override expires too, and by now the formerly active
	// tenant has been quiet for two hours.
	mc.Advance(2 * time.Hour)
	res = m.Sweep()
	if res.Evicted != 2 {
		t.Fatalf("sweep past override TTL: %+v, want active+long evicted", res)
	}
	if _, ok := reg.Info("theta", "tenant/pinned"); !ok {
		t.Error("pinned tenant evicted; pinning must exempt it")
	}
	if st := m.Stats(); st.Evictions != 3 || st.Sketches != 1 {
		t.Errorf("stats %+v, want 3 cumulative evictions, 1 live sketch", st)
	}
}

// TestBudgetShrinkThenShed: over budget, the accountant first live-resizes
// tenants down to one shard (retired shard state folds into the legacy
// accumulator — compaction, not data loss), and only sheds a tenant that is
// already compact. Pinned tenants are never reclaimed.
func TestBudgetShrinkThenShed(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 4, Writers: 1, BufferSize: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	m, err := ops.NewManager(reg, ops.Config{MemBudget: 1, Clock: mc})
	if err != nil {
		t.Fatal(err)
	}

	a, err := reg.OpenTheta("budget/a", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.OpenTheta("budget/b", fastsketches.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	keep, err := reg.OpenTheta("budget/pinned", fastsketches.Spec{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		a.Update(0, i)
		b.Update(0, i)
		keep.Update(0, i)
	}

	res := m.Sweep()
	if res.Shrunk != 2 || res.Shed != 0 {
		t.Fatalf("first sweep: %+v, want both unpinned tenants shrunk, none shed", res)
	}
	if got := a.Shards(); got != 1 {
		t.Errorf("a shrunk to %d shards, want 1", got)
	}
	if got := b.Shards(); got != 1 {
		t.Errorf("b shrunk to %d shards, want 1", got)
	}
	if got := keep.Shards(); got != 4 {
		t.Errorf("pinned tenant resized to %d shards; must be untouched", got)
	}
	if !m.OverBudget() {
		t.Error("OverBudget false while resident exceeds the 1-byte budget")
	}
	if m.ResidentBytes() <= 0 {
		t.Error("ResidentBytes not tracked")
	}

	// Shrinking preserved the data: the shrink drains and folds retired
	// shards, so the merged estimate still covers the full (eager-regime)
	// stream exactly.
	if est := a.Sketch().Estimate(); est != 100 {
		t.Errorf("post-shrink estimate %v, want 100 (compaction must not lose state)", est)
	}

	res = m.Sweep()
	if res.Shed != 2 {
		t.Fatalf("second sweep: %+v, want both compact tenants shed", res)
	}
	if _, ok := reg.Info("theta", "budget/pinned"); !ok {
		t.Error("pinned tenant shed under budget pressure")
	}
	if st := m.Stats(); st.BudgetShrinks != 2 || st.BudgetSheds != 2 {
		t.Errorf("stats %+v, want 2 shrinks and 2 sheds", st)
	}
}

// TestBudgetVetoesAutoscale: with a memory budget configured, NewManager
// installs itself as the registry's autoscale memory-pressure signal, and an
// over-budget sweep vetoes controller scale-ups (Stats.HeldMemory).
func TestBudgetVetoesAutoscale(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1, BufferSize: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	m, err := ops.NewManager(reg, ops.Config{MemBudget: 1, Clock: mc})
	if err != nil {
		t.Fatal(err)
	}
	// Pinned so the over-budget sweeps below can't reclaim the sketch out
	// from under the controller.
	h, err := reg.OpenCountMin("veto/cm", fastsketches.Spec{Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Sweep()
	if !m.OverBudget() {
		t.Fatal("expected over budget after sweep")
	}

	if err := h.Autoscale(autoscale.Policy{
		MinShards: 1, MaxShards: 8,
		HighWater:   1, // any measurable rate qualifies as up-pressure
		SampleEvery: time.Second,
		SustainedUp: 1,
		Clock:       mc,
	}); err != nil {
		t.Fatal(err)
	}
	defer h.StopAutoscale()

	// Warmup tick plus two pressured ticks, paced on the manual clock.
	for i := 0; i < 3; i++ {
		waitFor(t, "controller waiting on clock", func() bool { return mc.Waiters() == 1 })
		for k := uint64(0); k < 1024; k++ {
			h.Update(0, k%64)
		}
		mc.Advance(time.Second)
	}
	var st autoscale.Stats
	waitFor(t, "3 controller samples", func() bool {
		st, _ = h.AutoscaleStats()
		return st.Samples >= 3
	})
	if st.ScaleUps != 0 {
		t.Errorf("controller scaled up %d times while over budget", st.ScaleUps)
	}
	if st.HeldMemory == 0 {
		t.Error("no HeldMemory veto recorded; memory pressure did not reach the controller")
	}
	if got := h.Shards(); got != 1 {
		t.Errorf("S=%d, want scale-up vetoed at 1", got)
	}
}

// TestEvictVsQueryVsResize: the sweeper evicting with an aggressive TTL
// races merged queries, re-opens, and live resizes on the same names under
// -race. Queries through retained handles must keep working (a dropped
// sketch still summarises its drained state); resizes may fail when they
// lose the race with an eviction but must not race or wedge.
func TestEvictVsQueryVsResize(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2, BufferSize: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	m, err := ops.NewManager(reg, ops.Config{IdleTTL: time.Millisecond, Clock: mc})
	if err != nil {
		t.Fatal(err)
	}

	const names = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Sweeper: every iteration ages all sketches past the TTL and evicts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mc.Advance(time.Millisecond)
			m.Sweep()
		}
	}()

	// Re-openers/queriers: keep recreating and folding the same names.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("stress/%d", i%names)
				h, err := reg.OpenTheta(name, fastsketches.Spec{})
				if err != nil {
					continue
				}
				acc := h.NewAccumulator()
				h.QueryInto(acc)
				_ = acc.Estimate()
			}
		}()
	}

	// Resizer: walks S on whatever incarnation of each name currently
	// exists; an error (lost race with an eviction) is expected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("stress/%d", i%names)
			_ = reg.ResizeSketch("theta", name, 1+i%3)
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := m.Stats(); st.Evictions == 0 {
		t.Error("stress run recorded no evictions; TTL pressure never fired")
	}
}

// TestBudgetShedVsCheckpoint: budget sheds race checkpoint captures. A
// checkpoint taken mid-shed must stay internally consistent — restorable
// into a fresh registry — whichever sketches it caught.
func TestBudgetShedVsCheckpoint(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 2, Writers: 1, BufferSize: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	m, err := ops.NewManager(reg, ops.Config{MemBudget: 1, Clock: mc})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("ck/%d", i%3)
			if h, err := reg.OpenCountMin(name, fastsketches.Spec{}); err == nil {
				h.Update(0, uint64(i))
			}
			m.Sweep() // budget=1: shrink, then shed, whatever is resident
		}
	}()

	var buf []byte
	for i := 0; ; i++ {
		buf = reg.AppendCheckpoint(buf[:0])
		fresh, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(bytes.NewReader(buf)); err != nil {
			t.Fatalf("checkpoint %d not restorable: %v", i, err)
		}
		fresh.Close()
		// Keep scraping checkpoints until the churn loop has finished, so
		// the two sides genuinely overlap.
		select {
		case <-done:
			if i >= 20 {
				goto drained
			}
		default:
		}
	}
drained:
	if st := m.Stats(); st.BudgetSheds == 0 && st.BudgetShrinks == 0 {
		t.Error("stress run never shed nor shrank; budget pressure never fired")
	}
}

// TestHist pins the power-of-two bucketing's totals: negative observations
// clamp to zero, everything lands in count and sum.
func TestHist(t *testing.T) {
	var h ops.Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 1 << 40, -7} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count %d, want 7", h.Count())
	}
	if want := int64(0 + 1 + 2 + 3 + 4 + 1<<40 + 0); h.Sum() != want {
		t.Errorf("sum %d, want %d", h.Sum(), want)
	}
}

// TestManagerConfigValidation: the constructor rejects nonsense.
func TestManagerConfigValidation(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	for _, cfg := range []ops.Config{
		{IdleTTL: -time.Second},
		{MemBudget: -1},
		{SweepEvery: -time.Second},
		{ShrinkToShards: -2},
	} {
		if _, err := ops.NewManager(reg, cfg); err == nil {
			t.Errorf("NewManager(%+v) accepted invalid config", cfg)
		}
	}
}

// TestManagerStartStop: the background loop paces on the injected clock and
// Stop is idempotent.
func TestManagerStartStop(t *testing.T) {
	reg := newRegistry(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	mc := autoscale.NewManualClock(time.Unix(0, 0))
	m, err := ops.NewManager(reg, ops.Config{SweepEvery: time.Second, Clock: mc})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 3; i++ {
		waitFor(t, "sweep loop waiting on clock", func() bool { return mc.Waiters() == 1 })
		mc.Advance(time.Second)
	}
	waitFor(t, "3 sweeps", func() bool { return m.Stats().Sweeps >= 3 })
	m.Stop()
	m.Stop() // idempotent
}
