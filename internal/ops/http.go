package ops

import (
	"net"
	"net/http"
	"time"
)

// contentType is the Prometheus text exposition format version the
// Collector emits.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the Collector's exposition.
// Each request renders a fresh scrape; nothing is cached between scrapes.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		_ = c.WriteMetrics(w)
	})
}

// MetricsServer is a minimal stdlib HTTP server exposing a Collector at
// /metrics (and, for convenience, at /). Create with ListenMetrics; Close
// stops the listener.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ListenMetrics binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// Collector's exposition at /metrics in the background. The returned
// server reports its bound address via Addr — useful with port 0.
func ListenMetrics(addr string, c *Collector) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", c.Handler())
	mux.Handle("/", c.Handler())
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ms := &MetricsServer{srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return ms, nil
}

// Addr returns the listener's bound address.
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight scrapes.
func (s *MetricsServer) Close() error { return s.srv.Close() }
