// Package relax implements the r-relaxation formalism of Section 4 of
// "Fast Concurrent Data Sketches" (Definition 2) as executable checks:
// recording invoke/response histories from concurrent sketch executions and
// verifying that a recorded history is an r-relaxation of the sequential
// specification.
//
// Definition 2 (r-relaxation): a sequential history H is an r-relaxation of
// H′ if H consists of all but at most r of the invocations of H′, and each
// invocation in H is preceded by all but at most r of the invocations that
// precede it in H′.
//
// For an order-agnostic, duplicate-free distinct-counting sketch in exact
// mode this admits a counting characterisation that can be checked
// mechanically (and that the adversary analysis of Section 6 builds on): a
// query that returns v is justified iff it reflects some sub-multiset of
// the updates invoked before its response containing all but ≤ r of the
// updates that completed before its invocation, i.e.
//
//	completedBefore(q) − r  ≤  v  ≤  startedBefore(q).
//
// The package records real histories with monotonic per-event timestamps
// and checks this window for every query, providing the empirical
// counterpart of the paper's Theorem 1 on actual executions (the
// exhaustive-schedule counterpart lives in internal/core's model tests).
package relax

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// EventKind distinguishes history events.
type EventKind uint8

const (
	// UpdateInvoke marks the start of an update operation.
	UpdateInvoke EventKind = iota
	// UpdateResponse marks its completion.
	UpdateResponse
	// QueryPoint marks a query (invoke and response collapse: the queries
	// of the concurrent sketch are a single atomic load, so the interval
	// is one point in the recorder's clock).
	QueryPoint
)

// Event is one history entry.
type Event struct {
	Kind EventKind
	// Seq is the global sequence number assigned by the recorder; it
	// totally orders events (the recorder's linearisation of the
	// instrumentation points).
	Seq uint64
	// Writer identifies the lane for update events.
	Writer int
	// Value is the query result for QueryPoint events.
	Value float64
}

// Recorder collects a history from a concurrent execution. Instrumentation
// is a single atomic counter increment per event, so it perturbs the
// schedule minimally.
type Recorder struct {
	clock atomic.Uint64
	mu    sync.Mutex
	evs   []Event
}

// NewRecorder returns an empty history recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// record appends an event with a fresh sequence number.
func (r *Recorder) record(e Event) uint64 {
	seq := r.clock.Add(1)
	e.Seq = seq
	r.mu.Lock()
	r.evs = append(r.evs, e)
	r.mu.Unlock()
	return seq
}

// UpdateInvoked records the invocation of an update on a writer lane.
func (r *Recorder) UpdateInvoked(writer int) {
	r.record(Event{Kind: UpdateInvoke, Writer: writer})
}

// UpdateReturned records the completion of the writer's oldest outstanding
// update.
func (r *Recorder) UpdateReturned(writer int) {
	r.record(Event{Kind: UpdateResponse, Writer: writer})
}

// QueryObserved records a query and the value it returned.
func (r *Recorder) QueryObserved(value float64) {
	r.record(Event{Kind: QueryPoint, Value: value})
}

// History returns the recorded events in sequence order.
func (r *Recorder) History() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Event(nil), r.evs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Violation describes a query that no r-relaxed prefix justifies.
type Violation struct {
	QuerySeq        uint64
	Value           float64
	CompletedBefore int
	StartedBefore   int
	R               int
}

func (v Violation) Error() string {
	return fmt.Sprintf("relax: query@%d returned %v outside [completed−r, started] = [%d−%d, %d]",
		v.QuerySeq, v.Value, v.CompletedBefore, v.R, v.StartedBefore)
}

// CheckDistinctExact verifies a recorded history of a distinct-counting
// sketch in exact mode (all updates unique, estimate = retained count)
// against the r-relaxation window. It returns every violating query.
func CheckDistinctExact(history []Event, r int) []Violation {
	var violations []Violation
	started, completed := 0, 0
	for _, e := range history {
		switch e.Kind {
		case UpdateInvoke:
			started++
		case UpdateResponse:
			completed++
		case QueryPoint:
			lo := float64(completed - r)
			hi := float64(started)
			if e.Value < lo || e.Value > hi {
				violations = append(violations, Violation{
					QuerySeq:        e.Seq,
					Value:           e.Value,
					CompletedBefore: completed,
					StartedBefore:   started,
					R:               r,
				})
			}
		}
	}
	return violations
}

// Stats summarises a history.
type Stats struct {
	Updates int
	Queries int
	// MaxDeficit is the largest (completedBefore − value) over all queries:
	// how close the execution came to the relaxation bound.
	MaxDeficit float64
}

// Summarise computes history statistics.
func Summarise(history []Event) Stats {
	var st Stats
	completed := 0
	for _, e := range history {
		switch e.Kind {
		case UpdateInvoke:
			st.Updates++
		case UpdateResponse:
			completed++
		case QueryPoint:
			st.Queries++
			if d := float64(completed) - e.Value; d > st.MaxDeficit {
				st.MaxDeficit = d
			}
		}
	}
	return st
}

// --- Definition 2 on explicit histories ---

// SeqHistory is a sequential history of an order-agnostic distinct-counting
// object: a list of operations, each either an update with a unique key or
// a query with its answer. It is the H / H′ of Definition 2 and Figure 2.
type SeqHistory struct {
	Ops []SeqOp
}

// SeqOp is one operation of a sequential history.
type SeqOp struct {
	IsQuery bool
	Key     uint64  // for updates
	Answer  float64 // for queries
}

// Update appends an update operation.
func (h *SeqHistory) Update(key uint64) { h.Ops = append(h.Ops, SeqOp{Key: key}) }

// Query appends a query operation with its answer.
func (h *SeqHistory) Query(ans float64) {
	h.Ops = append(h.Ops, SeqOp{IsQuery: true, Answer: ans})
}

// InSeqSpec reports whether h is a legal sequential history of the exact
// distinct counter: every query answers the number of distinct keys updated
// before it.
func (h *SeqHistory) InSeqSpec() bool {
	seen := map[uint64]bool{}
	for _, op := range h.Ops {
		if op.IsQuery {
			if op.Answer != float64(len(seen)) {
				return false
			}
		} else {
			seen[op.Key] = true
		}
	}
	return true
}

// IsRRelaxationOf reports whether target ∈ SeqSketch is an r-relaxation of
// h per Definition 2, for the special case used in the paper's Figure 2:
// target must consist of all but at most r of h's invocations, and each
// invocation in target must be preceded by all but at most r of the
// invocations that precede it in h.
//
// The check matches operations by identity (updates by key; queries by
// position among queries), then verifies the two cardinality conditions.
func (h *SeqHistory) IsRRelaxationOf(target *SeqHistory, r int) bool {
	// Index h's update keys by position and h's queries by order.
	posInH := map[uint64]int{}
	var queryPosH []int
	for i, op := range h.Ops {
		if op.IsQuery {
			queryPosH = append(queryPosH, i)
		} else {
			posInH[op.Key] = i
		}
	}
	// Condition 1: target has all but ≤ r of h's invocations (and nothing
	// h doesn't have).
	missing := len(posInH)
	var queryPosT []int
	seenT := map[uint64]bool{}
	for i, op := range target.Ops {
		if op.IsQuery {
			queryPosT = append(queryPosT, i)
			continue
		}
		if _, ok := posInH[op.Key]; !ok {
			return false // invented invocation
		}
		if seenT[op.Key] {
			return false // duplicated invocation
		}
		seenT[op.Key] = true
		missing--
	}
	if len(queryPosT) != len(queryPosH) {
		return false // queries cannot be dropped by the relaxation we use
	}
	if missing > r {
		return false
	}
	// Condition 2: for every invocation o in target, all but ≤ r of the
	// invocations preceding o in h also precede it in target.
	precedesInT := func(key uint64, idx int) bool {
		for j := 0; j < idx; j++ {
			op := target.Ops[j]
			if !op.IsQuery && op.Key == key {
				return true
			}
		}
		return false
	}
	checkAt := func(hPos, tPos int) bool {
		skipped := 0
		for j := 0; j < hPos; j++ {
			op := h.Ops[j]
			if op.IsQuery {
				continue
			}
			if !seenT[op.Key] || !precedesInT(op.Key, tPos) {
				skipped++
			}
		}
		return skipped <= r
	}
	for i, op := range target.Ops {
		var hPos int
		if op.IsQuery {
			// The i-th query of target corresponds to the i-th of h.
			qi := 0
			for _, p := range queryPosT {
				if p == i {
					break
				}
				qi++
			}
			hPos = queryPosH[qi]
		} else {
			hPos = posInH[op.Key]
		}
		if !checkAt(hPos, i) {
			return false
		}
	}
	return true
}
