package relax

import (
	"runtime"
	"sync"
	"testing"

	"fastsketches/internal/core"
	"fastsketches/internal/theta"
)

// TestFigure2Example reproduces the paper's Figure 2: H is a 1-relaxation
// of H′. H′ = upd(1), q(=0 misses upd(1)), upd(2), q'(=2 sees both…) — we
// build the paper's structure: a query overtaken by one update.
func TestFigure2Example(t *testing.T) {
	// H′: the actual (out-of-order) history — the query answered 0 even
	// though upd(1) precedes it.
	hPrime := &SeqHistory{}
	hPrime.Update(1)
	hPrime.Query(0) // missed upd(1)
	hPrime.Update(2)
	hPrime.Query(2) // sees both

	if hPrime.InSeqSpec() {
		t.Fatal("H′ should not be in the sequential specification")
	}

	// H: a legal sequential history where the first query is moved before
	// upd(1) — i.e. upd(1) "overtakes" the query.
	h := &SeqHistory{}
	h.Query(0)
	h.Update(1)
	h.Update(2)
	h.Query(2)
	if !h.InSeqSpec() {
		t.Fatal("H should be in the sequential specification")
	}

	// H is a 1-relaxation of H′…
	if !hPrime.IsRRelaxationOf(h, 1) {
		t.Error("H should be a 1-relaxation of H′ (Figure 2)")
	}
	// …but not a 0-relaxation (the reordering is essential).
	if hPrime.IsRRelaxationOf(h, 0) {
		t.Error("H must not be a 0-relaxation of H′")
	}
}

func TestRelaxationRejectsInventedOps(t *testing.T) {
	h := &SeqHistory{}
	h.Update(1)
	target := &SeqHistory{}
	target.Update(1)
	target.Update(99) // never invoked in h
	if h.IsRRelaxationOf(target, 10) {
		t.Error("relaxation must not invent invocations")
	}
}

func TestRelaxationDropBound(t *testing.T) {
	h := &SeqHistory{}
	for i := uint64(1); i <= 5; i++ {
		h.Update(i)
	}
	h.Query(2)

	// Dropping 3 of 5 updates needs r ≥ 3.
	target := &SeqHistory{}
	target.Update(1)
	target.Update(2)
	target.Query(2)
	if h.IsRRelaxationOf(target, 2) {
		t.Error("dropping 3 updates must fail with r=2")
	}
	if !h.IsRRelaxationOf(target, 3) {
		t.Error("dropping 3 updates must pass with r=3")
	}
}

func TestRelaxationReorderBound(t *testing.T) {
	// h: upd(1..4), query. target keeps all ops but moves the query before
	// the last two updates: 2 predecessors skipped → needs r ≥ 2.
	h := &SeqHistory{}
	for i := uint64(1); i <= 4; i++ {
		h.Update(i)
	}
	h.Query(2)

	target := &SeqHistory{}
	target.Update(1)
	target.Update(2)
	target.Query(2)
	target.Update(3)
	target.Update(4)
	if !target.InSeqSpec() {
		t.Fatal("target should be sequentially legal")
	}
	if h.IsRRelaxationOf(target, 1) {
		t.Error("query overtaken by 2 updates must fail with r=1")
	}
	if !h.IsRRelaxationOf(target, 2) {
		t.Error("query overtaken by 2 updates must pass with r=2")
	}
}

func TestCheckDistinctExactWindow(t *testing.T) {
	rec := NewRecorder()
	// 5 completed updates, then a query returning 2: with r=2 the lower
	// edge is 3 → violation; with r=3 it passes.
	for i := 0; i < 5; i++ {
		rec.UpdateInvoked(0)
		rec.UpdateReturned(0)
	}
	rec.QueryObserved(2)
	h := rec.History()
	if v := CheckDistinctExact(h, 2); len(v) != 1 {
		t.Fatalf("expected 1 violation with r=2, got %v", v)
	} else if v[0].Error() == "" {
		t.Fatal("violation should format")
	}
	if v := CheckDistinctExact(h, 3); len(v) != 0 {
		t.Fatalf("expected no violation with r=3, got %v", v)
	}
	st := Summarise(h)
	if st.Updates != 5 || st.Queries != 1 || st.MaxDeficit != 3 {
		t.Fatalf("bad stats %+v", st)
	}
}

func TestQueryExceedingStartedIsViolation(t *testing.T) {
	rec := NewRecorder()
	rec.UpdateInvoked(0)
	rec.UpdateReturned(0)
	rec.QueryObserved(5) // only 1 update ever started
	if v := CheckDistinctExact(rec.History(), 100); len(v) != 1 {
		t.Fatal("query above started-count must violate regardless of r")
	}
}

// TestRealExecutionHistories instruments actual concurrent Θ sketch runs
// and verifies every recorded query against the relaxation window — the
// empirical Theorem 1 check on live schedules.
func TestRealExecutionHistories(t *testing.T) {
	const writers, b, n = 3, 4, 3000 // r = 24; n < 2k so the sketch is exact
	comp := theta.NewComposable(12, 9001)
	fw := core.New[uint64](comp, core.Config{Workers: writers, BufferSize: b, MaxError: 1})
	rec := NewRecorder()
	fw.Start()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var queries sync.WaitGroup
	queries.Add(1)
	go func() {
		defer queries.Done()
		for q := 0; q < 20000; q++ { // bounded so the history stays small
			select {
			case <-stop:
				return
			default:
			}
			rec.QueryObserved(comp.Estimate())
			runtime.Gosched() // let writers run on small machines
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/writers; i++ {
				rec.UpdateInvoked(w)
				fw.Update(w, theta.HashKey(base+uint64(i), 9001))
				rec.UpdateReturned(w)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	queries.Wait()
	fw.Close()

	h := rec.History()
	r := fw.Relaxation()
	// Instrumentation skew: an update may be recorded as completed slightly
	// before/after its effect is visible; the recorder's clock is not the
	// linearisation order. Allow one extra batch of slack per writer.
	slack := writers * b
	if viol := CheckDistinctExact(h, r+slack); len(viol) > 0 {
		t.Fatalf("%d queries violated the r=%d window (first: %v)", len(viol), r, viol[0])
	}
	st := Summarise(h)
	if st.Queries == 0 {
		t.Fatal("no queries recorded")
	}
	t.Logf("history: %d updates, %d queries, max deficit %.0f (r=%d)",
		st.Updates, st.Queries, st.MaxDeficit, r)
}
