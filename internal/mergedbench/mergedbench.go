// Package mergedbench defines the merged-query benchmark suite shared by
// BenchmarkMergedQuery (go test) and benchrunner's mergedquery scenario, so
// both surfaces measure exactly the same query paths:
//
//   - pooled:    the registry hot path — family query methods folding into a
//     pooled, reused accumulator (zero allocs/op steady-state).
//   - queryinto: one caller-owned accumulator reused via QueryInto.
//   - fresh:     the pre-refactor behaviour — a fresh accumulator allocated
//     and folded per query — kept as the allocation baseline.
package mergedbench

import (
	"testing"

	"fastsketches"
	"fastsketches/internal/shard"
)

// Sinks keep query results observable so the folds are not elided.
var (
	sinkF float64
	sinkU uint64
)

// Case is one family/path benchmark over a prepared suite.
type Case struct {
	Family, Path string
	Fn           func(b *testing.B)
}

// Suite holds closed (quiescent) sharded sketches of each family,
// pre-loaded with a fixed stream; closed handles stay queryable and give
// deterministic per-query work.
type Suite struct {
	Theta     *shard.Theta
	HLL       *shard.HLL
	Quantiles *shard.Quantiles
	CountMin  *shard.CountMin
}

// NewSuite builds the registry-backed sketches, ingests `uniques` items per
// family and closes the registry so every case measures a stable snapshot.
func NewSuite(shards, uniques int) (*Suite, error) {
	return newSuite(shards, uniques, nil)
}

// NewSuiteResized is NewSuite with a live-resharding history: each sketch
// ingests part of the stream at each shard count of the resize schedule
// before settling on the schedule's last entry. The resulting suite
// exercises the post-resize query planes — every merged query additionally
// folds the legacy accumulator holding the retired epochs' drained state —
// so the zero-allocation contract test and the benchmarks can pin that a
// resize leaves the steady-state paths allocation-free.
func NewSuiteResized(shards, uniques int, schedule []int) (*Suite, error) {
	return newSuite(shards, uniques, schedule)
}

func newSuite(shards, uniques int, schedule []int) (*Suite, error) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards:          shards,
		MaxError:        1,
		QuantilesK:      128,
		CountMinEpsilon: 0.01,
	})
	if err != nil {
		return nil, err
	}
	th, _ := reg.OpenTheta("bench", fastsketches.Spec{})
	hl, _ := reg.OpenHLL("bench", fastsketches.Spec{})
	qu, _ := reg.OpenQuantiles("bench", fastsketches.Spec{})
	cm, _ := reg.OpenCountMin("bench", fastsketches.Spec{})
	s := &Suite{
		Theta:     th.Sketch(),
		HLL:       hl.Sketch(),
		Quantiles: qu.Sketch(),
		CountMin:  cm.Sketch(),
	}
	// cuts[p] is the stream position where schedule[p] takes effect,
	// splitting the stream into len(schedule)+1 roughly equal phases.
	cuts := make(map[int]int, len(schedule))
	for p, newS := range schedule {
		cuts[(p+1)*uniques/(len(schedule)+1)] = newS
	}
	for i := 0; i < uniques; i++ {
		if newS, ok := cuts[i]; ok {
			for _, fam := range []string{"theta", "hll", "quantiles", "countmin"} {
				if err := reg.ResizeSketch(fam, "bench", newS); err != nil {
					return nil, err
				}
			}
		}
		s.Theta.Update(0, uint64(i))
		s.HLL.Update(0, uint64(i))
		s.Quantiles.Update(0, float64(i%4096))
		s.CountMin.Update(0, uint64(i%512))
	}
	reg.Close()
	return s, nil
}

// Cases returns the benchmark closures. Pooled cases warm the accumulator
// pool (and, for quantiles, grow the reused accumulator's capacity) before
// the timer starts, so they report steady-state allocation behaviour.
func (s *Suite) Cases() []Case {
	return []Case{
		{"theta", "pooled", func(b *testing.B) {
			sinkF = s.Theta.Estimate()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkF = s.Theta.Estimate()
			}
		}},
		{"theta", "queryinto", func(b *testing.B) {
			acc := s.Theta.NewAccumulator()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Theta.QueryInto(acc)
				sinkF = acc.Estimate()
			}
		}},
		{"theta", "fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc := s.Theta.NewAccumulator()
				s.Theta.MergeInto(acc)
				sinkF = acc.Estimate()
			}
		}},
		{"hll", "pooled", func(b *testing.B) {
			sinkF = s.HLL.Estimate()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkF = s.HLL.Estimate()
			}
		}},
		{"hll", "fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc := s.HLL.NewAccumulator()
				s.HLL.MergeInto(acc)
				sinkF = acc.Estimate()
			}
		}},
		{"quantiles", "pooled", func(b *testing.B) {
			sinkF = s.Quantiles.Quantile(0.99)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkF = s.Quantiles.Quantile(0.99)
			}
		}},
		{"quantiles", "fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc := s.Quantiles.NewAccumulator()
				s.Quantiles.MergeInto(acc)
				sinkF = acc.Quantile(0.99)
			}
		}},
		{"countmin", "queryinto", func(b *testing.B) {
			acc := s.CountMin.NewAccumulator()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.CountMin.QueryInto(acc)
				sinkU = acc.Estimate(7)
			}
		}},
		{"countmin", "fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkU = s.CountMin.Merged().Estimate(7)
			}
		}},
	}
}
