package murmur

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	h1a, h2a := Sum128(data, DefaultSeed)
	h1b, h2b := Sum128(data, DefaultSeed)
	if h1a != h1b || h2a != h2b {
		t.Fatalf("hash not deterministic: (%x,%x) vs (%x,%x)", h1a, h2a, h1b, h2b)
	}
}

func TestSeedSensitivity(t *testing.T) {
	data := []byte("abcdefgh")
	h1a, _ := Sum128(data, 1)
	h1b, _ := Sum128(data, 2)
	if h1a == h1b {
		t.Fatalf("different seeds produced identical hashes: %x", h1a)
	}
}

func TestAllTailLengths(t *testing.T) {
	// Exercise every switch arm: lengths 0..48 cover 0,1,2 blocks plus all
	// 15 tail cases. Verify that extending the input changes the hash.
	buf := make([]byte, 49)
	for i := range buf {
		buf[i] = byte(i*37 + 11)
	}
	seen := make(map[uint64]int)
	for n := 0; n <= 48; n++ {
		h, _ := Sum128(buf[:n], DefaultSeed)
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide: %x", prev, n, h)
		}
		seen[h] = n
	}
}

func TestSingleBitAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := []byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0}
	h0, _ := Sum128(base, DefaultSeed)
	totalFlips := 0
	n := 0
	for byteIdx := range base {
		for bit := 0; bit < 8; bit++ {
			mod := make([]byte, len(base))
			copy(mod, base)
			mod[byteIdx] ^= 1 << bit
			h1, _ := Sum128(mod, DefaultSeed)
			diff := h0 ^ h1
			flips := 0
			for diff != 0 {
				flips += int(diff & 1)
				diff >>= 1
			}
			totalFlips += flips
			n++
		}
	}
	avg := float64(totalFlips) / float64(n)
	if avg < 24 || avg > 40 {
		t.Fatalf("poor avalanche: average %.1f of 64 bits flipped", avg)
	}
}

func TestHashUint64MatchesBytes(t *testing.T) {
	f := func(key uint64) bool {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(key >> (8 * i))
		}
		return HashUint64(key, DefaultSeed) == Hash64(buf[:], DefaultSeed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToUnitRange(t *testing.T) {
	f := func(h uint64) bool {
		u := ToUnit(h)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if ToUnit(0) != 0 {
		t.Fatalf("ToUnit(0) = %v, want 0", ToUnit(0))
	}
	if u := ToUnit(math.MaxUint64); u >= 1 {
		t.Fatalf("ToUnit(MaxUint64) = %v, want < 1", u)
	}
}

func TestUnitHashUniformity(t *testing.T) {
	// Hash a consecutive integer stream and check the empirical mean and
	// bucket counts look uniform. With n=200000 the mean of U[0,1) samples
	// has σ ≈ 0.00065, so ±0.005 is a >7σ tolerance.
	const n = 200000
	const buckets = 16
	var sum float64
	counts := make([]int, buckets)
	for i := uint64(0); i < n; i++ {
		u := UnitHashUint64(i, DefaultSeed)
		sum += u
		counts[int(u*buckets)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of unit hashes = %v, want ~0.5", mean)
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", b, c, want)
		}
	}
}

func TestFloat64BitsRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN bit patterns round-trip but don't compare equal
		}
		return Float64FromBits(Float64Bits(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThetaBitsNeverZero(t *testing.T) {
	// The framework encodes hints as Float64Bits(Θ) with Θ ∈ (0,1]; zero is
	// reserved to signal "propagation pending". Verify the encoding of the
	// smallest positive Θ the sketch can produce is non-zero.
	if Float64Bits(1.0) == 0 {
		t.Fatal("Float64Bits(1.0) must not be 0")
	}
	if Float64Bits(math.SmallestNonzeroFloat64) == 0 {
		t.Fatal("Float64Bits(smallest positive) must not be 0")
	}
}

func TestStringAndBytesAgree(t *testing.T) {
	s := "concurrent sketches"
	if HashString(s, DefaultSeed) != Hash64([]byte(s), DefaultSeed) {
		t.Fatal("HashString disagrees with Hash64 on identical content")
	}
}

func BenchmarkHashUint64(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= HashUint64(uint64(i), DefaultSeed)
	}
	_ = sink
}

func BenchmarkSum128_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		Sum128(data, DefaultSeed)
	}
}
