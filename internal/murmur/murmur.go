// Package murmur implements the MurmurHash3 x64-128 hash function.
//
// Apache DataSketches uses MurmurHash3 with a seed to map stream elements to
// 64-bit values that are uniform on the full range; the Θ sketch then treats
// the hash, scaled into [0,1), as the sampled coordinate. This package is a
// from-scratch implementation of the x64-128 variant (Austin Appleby's
// reference algorithm) restricted to the inputs the sketches need: raw byte
// slices, strings, and uint64 keys.
package murmur

import (
	"encoding/binary"
	"math"
)

// DefaultSeed is the seed used by Apache DataSketches for its update
// sketches. Using the library default keeps hash-dependent tests and
// cross-checks deterministic.
const DefaultSeed uint64 = 9001

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

func rotl64(x uint64, r uint) uint64 { return (x << r) | (x >> (64 - r)) }

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Sum128 computes the 128-bit MurmurHash3 (x64 variant) of data with the
// given seed, returning the two 64-bit halves.
func Sum128(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Hash64 returns the first 64-bit half of the 128-bit hash of data.
func Hash64(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

// HashUint64 hashes a uint64 key. The key is serialised little-endian, the
// same convention DataSketches uses for long updates, so two processes
// hashing the same numeric stream agree on the samples.
func HashUint64(key uint64, seed uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	return Hash64(buf[:], seed)
}

// HashString hashes a string key without copying it into a fresh buffer for
// the common short-string case.
func HashString(s string, seed uint64) uint64 {
	return Hash64([]byte(s), seed)
}

// ToUnit maps a 64-bit hash onto the half-open unit interval [0,1). The top
// 53 bits are used so that the result is an exactly-representable float64
// with uniform distribution, matching the "hash output uniform in [0,1]"
// model of the KMV analysis.
func ToUnit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// UnitHashUint64 is the composition ToUnit(HashUint64(key, seed)): the
// coordinate in [0,1) that the Θ sketch compares against its threshold.
func UnitHashUint64(key uint64, seed uint64) float64 {
	return ToUnit(HashUint64(key, seed))
}

// UnitHashString is ToUnit(HashString(s, seed)).
func UnitHashString(s string, seed uint64) float64 {
	return ToUnit(HashString(s, seed))
}

// Float64Bits packs a float64 into its IEEE-754 bit pattern. It exists so
// that callers passing hints through atomic integers do not need to import
// math directly; Θ∈(0,1] never encodes to zero, which lets 0 mean "pending".
func Float64Bits(f float64) uint64 { return math.Float64bits(f) }

// Float64FromBits is the inverse of Float64Bits.
func Float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
