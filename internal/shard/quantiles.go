package shard

import (
	"math"

	"fastsketches/internal/core"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
)

// Quantiles is a sharded concurrent quantiles sketch: values are striped by
// a hash of their bit pattern (so equal values co-locate and shards stay
// balanced for diverse streams), and queries merge the S immutable shard
// summaries on demand. Summary merging is exact — weights and order are
// preserved — so the merged rank error is bounded by the worst shard's ε.
type Quantiles struct {
	g     group[float64]
	comps []*quantiles.Composable
	k     int
}

// NewQuantiles builds and starts a sharded concurrent quantiles sketch with
// summary parameter k per shard.
func NewQuantiles(k int, cfg Config) (*Quantiles, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = 64 // quantiles propagations republish a snapshot; amortise
	}
	q := &Quantiles{
		comps: make([]*quantiles.Composable, cfg.Shards),
		k:     k,
	}
	globals := make([]core.Global[float64], cfg.Shards)
	for i := range q.comps {
		c := quantiles.NewComposable(k, quantiles.NewRandomBits(int64(cfg.Seed)+int64(i)))
		q.comps[i] = c
		globals[i] = c
	}
	q.g = newGroup[float64](&cfg, k, globals)
	return q, nil
}

// Update ingests one value on writer lane lane.
func (q *Quantiles) Update(lane int, v float64) {
	q.g.update(lane, murmur.HashUint64(math.Float64bits(v), q.g.routeSeed), v)
}

// Summary returns the merged summary over all shard snapshots — an immutable
// view supporting many queries. Wait-free: one atomic pointer load per shard
// plus the fold. The view reflects all but at most Relaxation() of the
// updates completed before the call.
func (q *Quantiles) Summary() *quantiles.Summary {
	var acc *quantiles.Summary
	for _, c := range q.comps {
		acc = c.SnapshotMerge(acc)
	}
	return acc
}

// Quantile returns an element of the merged summary whose normalized rank is
// ≈ phi.
func (q *Quantiles) Quantile(phi float64) float64 { return q.Summary().Quantile(phi) }

// Rank returns the estimated normalized rank of v in the merged summary.
func (q *Quantiles) Rank(v float64) float64 { return q.Summary().Rank(v) }

// N returns the item count of the merged summary.
func (q *Quantiles) N() uint64 { return q.Summary().N() }

// Relaxation returns the combined staleness bound S·r for merged queries.
func (q *Quantiles) Relaxation() int { return q.g.relaxation() }

// Shards returns S.
func (q *Quantiles) Shards() int { return len(q.comps) }

// Eager reports whether every shard is still exact (eager phase).
func (q *Quantiles) Eager() bool { return q.g.eager() }

// Close stops all shard propagators and drains every buffer.
func (q *Quantiles) Close() { q.g.close() }
