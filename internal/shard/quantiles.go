package shard

import (
	"math"

	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
)

// Quantiles is a sharded concurrent quantiles sketch: values are striped by
// a hash of their bit pattern (so equal values co-locate and shards stay
// balanced for diverse streams), and queries merge the S immutable shard
// summaries on demand. Summary merging is exact — weights and order are
// preserved — so the merged rank error is bounded by the worst shard's ε.
// It is a thin descriptor over the generic Sharded layer: the accumulator
// is a quantiles.Accumulator that merges shard summaries over reused
// ping-ponged buffers instead of allocating a fresh Summary per fold.
type Quantiles struct {
	*Sharded[float64, *quantiles.Accumulator, *quantiles.Composable]
}

// NewQuantiles builds and starts a sharded concurrent quantiles sketch with
// summary parameter k per shard.
func NewQuantiles(k int, cfg Config) (*Quantiles, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = 64 // quantiles propagations republish a snapshot; amortise
	}
	seed := cfg.Seed
	return &Quantiles{
		Sharded: newSharded[float64](&cfg, k,
			func(i int) *quantiles.Composable {
				return quantiles.NewComposable(k, quantiles.NewRandomBits(int64(seed)+int64(i)))
			},
			quantiles.NewAccumulator,
		),
	}, nil
}

// Update ingests one value on writer lane lane.
func (q *Quantiles) Update(lane int, v float64) {
	q.update(lane, murmur.HashUint64(math.Float64bits(v), q.cfg.RouteSeed), v)
}

// Summary returns the merged summary over all shard snapshots — an immutable
// view supporting many queries. Wait-free: one atomic pointer load per shard
// plus the fold (through a pooled, reused accumulator), with one allocation
// for the returned copy since it escapes. The view reflects all but at most
// Relaxation() of the updates completed before the call. Scalar queries
// (Quantile, Rank, N) skip the copy and allocate nothing steady-state.
func (q *Quantiles) Summary() *quantiles.Summary {
	if st := q.st.Load(); len(st.comps) == 1 && st.old == nil && !st.hasLegacy && st.win == nil {
		// Single shard and no resize history: the published snapshot is
		// already an immutable merged view — share it, zero copies.
		return st.comps[0].Snapshot()
	}
	acc := q.acquire()
	q.MergeInto(acc)
	s := acc.Summary()
	q.release(acc)
	return s
}

// Quantile returns an element of the merged state whose normalized rank is
// ≈ phi, folding through a pooled reused accumulator (no steady-state
// allocation).
func (q *Quantiles) Quantile(phi float64) float64 {
	acc := q.acquire()
	q.MergeInto(acc)
	v := acc.Quantile(phi)
	q.release(acc)
	return v
}

// Rank returns the estimated normalized rank of v in the merged state,
// folding through a pooled reused accumulator.
func (q *Quantiles) Rank(v float64) float64 {
	acc := q.acquire()
	q.MergeInto(acc)
	r := acc.Rank(v)
	q.release(acc)
	return r
}

// N returns the item count of the merged state, folding through a pooled
// reused accumulator.
func (q *Quantiles) N() uint64 {
	acc := q.acquire()
	q.MergeInto(acc)
	n := acc.N()
	q.release(acc)
	return n
}

// UpdateBatch ingests a contiguous chunk of values on writer lane lane,
// equivalent to per-item Update calls in order but with per-item
// coordination amortised to per-chunk (see Sharded.updateBatch).
func (q *Quantiles) UpdateBatch(lane int, vs []float64) {
	seed := q.cfg.RouteSeed
	q.updateBatch(lane, vs, func(v float64) uint64 {
		return murmur.HashUint64(math.Float64bits(v), seed)
	})
}
