package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fastsketches/internal/core"
)

// Accumulator is the reusable merge target of a sketch family. Reset must
// restore the empty state while retaining capacity, so one accumulator can
// serve an unbounded sequence of merged queries without allocating.
//
// FoldInto folds the receiver's accumulated state into dst without mutating
// the receiver. It is the drain hook of live resharding: when Resize retires
// an epoch, the retired shards' final snapshots are folded into one legacy
// accumulator, which every subsequent merged query folds (via FoldInto) as
// if it were one more shard snapshot. FoldInto must be allocation-free in
// steady state and safe to call concurrently from many goroutines folding
// into distinct dst accumulators, because the published legacy accumulator
// is immutable and shared by all queriers.
// SizeBytes estimates the accumulator's resident heap footprint in bytes —
// the unit the sharded layer multiplies out into a per-sketch resident-size
// estimate for memory-budget accounting. It must be cheap (no walking of
// per-entry state) and safe to call concurrently with reads of an immutable
// published accumulator.
type Accumulator[A any] interface {
	Reset()
	FoldInto(dst A)
	SizeBytes() int
}

// Mergeable is the uniform contract a family's concurrent composable
// satisfies toward the generic sharded layer: the core framework's Global
// interface for ingestion, plus a wait-free fold of the published snapshot
// into a caller-owned accumulator for the merge-on-query plane.
type Mergeable[T any, A any] interface {
	core.Global[T]
	// SnapshotMergeInto folds the latest published snapshot into acc. It
	// must be wait-free, safe concurrently with ingestion, and must not
	// retain acc: repeatedly reusing one Reset accumulator must be
	// equivalent to folding into a fresh accumulator per query.
	SnapshotMergeInto(acc A)
}

// epochState is one immutable routing/query epoch of a Sharded sketch. The
// current epoch's comps receive all new updates; during a resize transition
// old points at the epoch being drained (still part of every merged query);
// legacy holds the accumulated state of all epochs retired by earlier
// resizes, folded into every merged query via Accumulator.FoldInto.
//
// An epochState is never mutated after it is published through Sharded.st —
// queries load the pointer once and get a consistent view of exactly which
// state (legacy ∪ old comps ∪ current comps) their fold covers, which is
// what makes resharding transitions atomic from the reader's perspective:
// a query sees a retired epoch either as live shard snapshots or as part of
// the legacy accumulator, never both and never neither.
type epochState[T any, A Accumulator[A], C Mergeable[T, A]] struct {
	comps []C
	g     group[T]
	// old is the epoch being drained by an in-flight Resize; nil otherwise.
	old *epochState[T, A, C]
	// legacy is the immutable accumulated state of all retired epochs;
	// meaningful only when hasLegacy is true (type parameters cannot be
	// compared against nil).
	legacy    A
	hasLegacy bool
	// basePressure is the final pressure sample of every retired epoch,
	// summed — the counterpart of legacy for the pressure counters. Folding
	// it into each Pressure() sample keeps the sketch-level counters
	// monotonic across resizes: a reader sees a retired epoch's counts
	// either live (walking old's frameworks) or in basePressure, never both,
	// because both travel on the same immutable epoch pointer.
	basePressure core.PressureSample
	// win is the published sliding-window query plane; nil unless a window
	// is enabled (see window.go). Like legacy, it is immutable once
	// published and travels on the epoch pointer, so a rotation — which
	// moves the closing interval's state from live shard snapshots into the
	// window's suffix-merge — is atomic from the reader's perspective.
	win *epochWindow[A]
}

// lanePad keeps each lane's seqlock word on its own cache line so writer
// lanes do not false-share while entering/leaving their critical sections.
type lanePad [8]uint64

// laneScratch is one writer lane's reusable routing buckets for batched
// ingest: batch items are partitioned by destination shard here, then each
// non-empty bucket is handed to its shard's framework in one UpdateBatch
// call. Owned by the lane's single driving goroutine; buckets are grown on
// demand (a resize to more shards re-dimensions them once) and retain their
// capacity across batches, so steady-state batched ingest allocates nothing.
type laneScratch[T any] struct {
	_       lanePad
	buckets [][]T
	_       lanePad
}

// laneSeq is the per-writer-lane seqlock coordinating updates with Resize:
// a lane increments seq to an odd value before loading the routing epoch
// and back to even after the update lands, so a resizer that has swapped
// the epoch pointer can wait until every lane has provably left the old
// epoch (seq even, or seq moved on) before draining it.
type laneSeq struct {
	_   lanePad
	seq atomic.Uint64
	_   lanePad
}

// Sharded is the generic sharded sketch underlying all four families: S
// independent concurrent composables striped by key hash (the group layer),
// plus the allocation-free merge-on-query plane — a sync.Pool of reusable
// accumulators, so steady-state merged queries allocate nothing. The family
// wrappers (Theta, HLL, Quantiles, CountMin) embed a *Sharded and add only
// their hash routing and family-specific query signatures.
//
// The shard group is resizable while writers and queriers stay active: see
// Resize for the epoch-swap protocol and its transient staleness bound.
type Sharded[T any, A Accumulator[A], C Mergeable[T, A]] struct {
	// st is the current epoch; swapped atomically by Resize. Writers load it
	// once per update (under their lane seqlock), queriers once per fold.
	st atomic.Pointer[epochState[T, A, C]]

	cfg    Config // normalised; cfg.Shards is the *initial* S
	k      int
	mkComp func(i int) C
	mkAcc  func() A
	// accs is the pooled-accumulator query plane. The pool is owned by the
	// Sharded sketch, not by an epoch, so it carries over across resizes:
	// accumulators are dimensioned by family parameters (k, p, w×d), which
	// Resize never changes, so pooled capacity stays valid for any shard
	// count.
	accs sync.Pool

	lanes   []laneSeq
	scratch []laneScratch[T]

	// view is the published materialized merged view, nil unless EnableView
	// has built one (see view.go). Queries load it once per fold; a non-nil,
	// unexpired view replaces the whole S-shard fold with one accumulator
	// fold.
	view atomic.Pointer[viewBuf[A]]
	// vr is the refresher runtime while a view is enabled; nil otherwise.
	// Mutated only under resizeMu (EnableView/DisableView/Close).
	vr atomic.Pointer[viewRuntime[A]]
	// wr is the rotator runtime while a sliding window is enabled; nil
	// otherwise. Mutated only under resizeMu (EnableWindow/DisableWindow/
	// Close); its ring is mutated only under resizeMu too (see window.go).
	wr atomic.Pointer[windowRuntime[A]]

	// resizeMu serialises Resize, Close, rotation and view/window
	// enable/disable; none is on a hot path.
	resizeMu sync.Mutex
	closed   bool
}

// newSharded builds and starts one sharded sketch from a family descriptor:
// mkComp constructs the per-shard concurrent composable (shard index i is
// provided so families can decorrelate per-shard randomness) and mkAcc
// constructs an empty accumulator for the pool.
func newSharded[T any, A Accumulator[A], C Mergeable[T, A]](
	cfg *Config, k int, mkComp func(i int) C, mkAcc func() A,
) *Sharded[T, A, C] {
	s := &Sharded[T, A, C]{
		cfg:     *cfg,
		k:       k,
		mkComp:  mkComp,
		mkAcc:   mkAcc,
		lanes:   make([]laneSeq, cfg.Writers),
		scratch: make([]laneScratch[T], cfg.Writers),
	}
	s.accs.New = func() any { return mkAcc() }
	s.st.Store(s.newEpoch(cfg.Shards))
	return s
}

// newEpoch builds and starts a fresh epoch of the given shard count, with no
// transition links. The per-shard frameworks inherit the construction-time
// configuration (writer lanes, buffer size, eager budget); only S varies.
func (s *Sharded[T, A, C]) newEpoch(shards int) *epochState[T, A, C] {
	e := &epochState[T, A, C]{comps: make([]C, shards)}
	globals := make([]core.Global[T], shards)
	for i := range e.comps {
		c := s.mkComp(i)
		e.comps[i] = c
		globals[i] = c
	}
	cfg := s.cfg
	cfg.Shards = shards
	e.g = newGroup[T](&cfg, s.k, globals)
	return e
}

// update ingests item on writer lane lane of the shard selected by routeHash
// in the current epoch. The lane seqlock (odd while the update is in
// flight) is what lets Resize wait until no writer can still be touching a
// swapped-out epoch before draining it.
func (s *Sharded[T, A, C]) update(lane int, routeHash uint64, item T) {
	ls := &s.lanes[lane]
	ls.seq.Add(1) // odd: epoch load + update in flight
	st := s.st.Load()
	st.g.update(lane, routeHash, item)
	ls.seq.Add(1) // even: lane idle
}

// updateBatch ingests a contiguous chunk of items on writer lane lane,
// equivalent to calling update per item but with the per-item coordination
// hoisted to per-chunk: the lane seqlock is entered once and the routing
// epoch loaded once for the whole chunk (two seq-cst atomics per chunk
// instead of two per item), items are partitioned into per-shard buckets in
// the lane's scratch, and each non-empty bucket lands on its shard via one
// core UpdateBatch call. route maps an item to its routing hash (the
// family's recipe). Holding the seqlock odd for the chunk's duration delays
// a concurrent Resize's writer grace period by at most one chunk
// application; the epoch-consistency argument is unchanged.
func (s *Sharded[T, A, C]) updateBatch(lane int, items []T, route func(T) uint64) {
	if len(items) == 0 {
		return
	}
	ls := &s.lanes[lane]
	ls.seq.Add(1) // odd: epoch load + updates in flight
	st := s.st.Load()
	g := &st.g
	if nsh := len(g.fws); nsh == 1 {
		g.fws[0].UpdateBatch(lane, items)
	} else {
		sc := &s.scratch[lane]
		if len(sc.buckets) < nsh {
			grown := make([][]T, nsh)
			copy(grown, sc.buckets)
			sc.buckets = grown
		}
		buckets := sc.buckets[:nsh]
		for _, item := range items {
			i := g.route(route(item))
			buckets[i] = append(buckets[i], item)
		}
		for i, b := range buckets {
			if len(b) > 0 {
				g.fws[i].UpdateBatch(lane, b)
				buckets[i] = b[:0]
			}
		}
	}
	ls.seq.Add(1) // even: lane idle
}

// awaitWriters returns once every writer lane has provably stopped using
// any epoch loaded before the current one was published: for each lane, if
// its seqlock was odd (update in flight), wait for it to move. Sequential
// consistency of the atomics gives the grace-period argument: a lane whose
// seq is even, or has changed since the epoch swap, can only load the new
// epoch on its next update.
func (s *Sharded[T, A, C]) awaitWriters() {
	for i := range s.lanes {
		seq := &s.lanes[i].seq
		if s0 := seq.Load(); s0&1 == 1 {
			for seq.Load() == s0 {
				runtime.Gosched()
			}
		}
	}
}

// Resize grows or shrinks the shard group to the given count while writers
// and queriers stay active — the live-resharding entry point. It returns
// once the transition is fully drained; concurrent Resize/Close calls are
// serialised.
//
// Protocol (the epoch swap):
//
//  1. Build and start a fresh epoch of `shards` framework instances.
//  2. Publish it atomically as the routing epoch, with the previous epoch
//     attached as `old`: from this instant new updates route to the new
//     shards, while merged queries fold legacy ∪ old ∪ new.
//  3. Wait out writer lanes still mid-update on the old epoch (per-lane
//     seqlock grace period), then Close the old epoch's frameworks, which
//     drains every buffered update exactly into the old composables.
//  4. Fold the previous legacy state and every old shard's final snapshot —
//     through the same SnapshotMergeInto plane merged queries use — into
//     one fresh accumulator, and publish it as the new epoch's legacy,
//     atomically detaching the old epoch. The old shards are now retired
//     and unreachable from new queries.
//
// Staleness: while the transition is in flight (between steps 2 and 4) a
// merged query folds both epochs' live snapshots and may miss up to
// S_old·r + S_new·r completed updates — the sum of both epochs' combined
// relaxation bounds, which is what Relaxation() reports during the
// transition. Once Resize returns, the bound is the new epoch's S_new·r:
// the legacy accumulator is an exact fold of everything the retired epochs
// ingested. Queries never double-count across the retirement instant,
// because a query reads one epoch pointer: it sees the old shards either
// live or as legacy, never both.
//
// The accumulator pool, writer-lane count, per-shard accuracy parameters
// and seeds are unchanged by a resize; only S — and with it the
// throughput/staleness trade-off S·r — moves.
func (s *Sharded[T, A, C]) Resize(shards int) error {
	if shards < 1 {
		return fmt.Errorf("shard: Resize to %d shards; need ≥ 1", shards)
	}
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if s.closed {
		return fmt.Errorf("shard: Resize after Close")
	}
	old := s.st.Load()
	if shards == len(old.comps) {
		return nil
	}

	next := &epochState[T, A, C]{
		old: old, legacy: old.legacy, hasLegacy: old.hasLegacy,
		basePressure: old.basePressure, win: old.win,
	}
	built := s.newEpoch(shards)
	next.comps, next.g = built.comps, built.g
	s.st.Store(next) // writers route to the new shards from here on
	s.awaitWriters() // grace period: no lane can still touch the old epoch
	old.g.close()    // drain old buffers exactly into the old composables

	retired := &epochState[T, A, C]{
		comps: next.comps, g: next.g,
		// The old epoch is fully drained (Ingested == Merged), so its final
		// counters move into the base exactly once, on the same atomic store
		// that retires its live frameworks.
		basePressure: old.basePressure.Add(old.g.pressure()),
	}
	if w := old.win; w != nil {
		// A window is enabled: the drained shards' state belongs to the
		// still-open live interval, not to pre-window history, so it moves
		// into the window's carry plane — the next rotation closes it into a
		// ring slot along with the new shards' contributions. Legacy is
		// untouched; windowed queries keep covering exactly the window.
		carry := s.mkAcc()
		if w.hasCarry {
			w.carry.FoldInto(carry)
		}
		for _, c := range old.comps {
			c.SnapshotMergeInto(carry)
		}
		win := *w
		win.carry, win.hasCarry = carry, true
		retired.win = &win
		retired.legacy, retired.hasLegacy = old.legacy, old.hasLegacy
	} else {
		// Fold prior legacy plus every retired shard's final snapshot into
		// one fresh accumulator. It must be a fresh (never pooled, never
		// released) instance: once published it is shared read-only by every
		// query.
		legacy := s.mkAcc()
		if old.hasLegacy {
			old.legacy.FoldInto(legacy)
		}
		for _, c := range old.comps {
			c.SnapshotMergeInto(legacy)
		}
		retired.legacy, retired.hasLegacy = legacy, true
	}
	s.st.Store(retired) // retire the old epoch atomically
	return nil
}

// MergeInto folds the sketch's entire published state into acc without
// resetting it first, so a fold can accumulate across several sketches: the
// legacy accumulator of retired epochs (if any), the draining epoch's shard
// snapshots while a Resize transition is in flight, and every current
// shard's published snapshot. Wait-free: one atomic epoch load, then one
// atomic snapshot load per shard plus the folds; no shard's propagator is
// ever blocked. The combined state reflects all but at most Relaxation()
// of the updates completed before the call.
//
// When a materialized view is enabled (EnableView) and its latest
// publication is within ViewConfig.MaxAge, the fold instead reads the single
// published view accumulator — one fold, O(1) in the shard count — and the
// staleness bound widens to Relaxation() plus the view's refresh lag
// (ViewLag). An expired or disabled view transparently falls back to the
// live per-shard fold above.
func (s *Sharded[T, A, C]) MergeInto(acc A) {
	if v := s.acquireView(); v != nil {
		v.acc.FoldInto(acc)
		v.refs.Add(-1)
		return
	}
	mergeEpoch(s.st.Load(), acc)
}

// mergeEpoch folds one immutable epoch's entire reachable state — legacy ∪
// window planes (closed ring slots' suffix-merge and any resize carry) ∪
// draining old epoch ∪ current shard snapshots — into acc. Shared by the
// live query path and the view refresher (which must always fold live
// state, never its own published view).
func mergeEpoch[T any, A Accumulator[A], C Mergeable[T, A]](st *epochState[T, A, C], acc A) {
	if st.hasLegacy {
		st.legacy.FoldInto(acc)
	}
	if w := st.win; w != nil {
		if w.hasMerged {
			w.merged.FoldInto(acc)
		}
		if w.hasCarry {
			w.carry.FoldInto(acc)
		}
	}
	if st.old != nil {
		for _, c := range st.old.comps {
			c.SnapshotMergeInto(acc)
		}
	}
	for _, c := range st.comps {
		c.SnapshotMergeInto(acc)
	}
}

// QueryInto resets acc and folds the sketch's entire published state into
// it — the merged-query path for callers that own their accumulator and
// want zero allocation without touching the internal pool. Reusing one
// accumulator across queries is equivalent to a fresh accumulator per
// query, and the Relaxation() staleness bound of MergeInto applies
// unchanged (including across resizes: retired-epoch state arrives through
// the legacy fold, in-transition state through the draining epoch's
// snapshots).
func (s *Sharded[T, A, C]) QueryInto(acc A) {
	acc.Reset()
	s.MergeInto(acc)
}

// NewAccumulator returns a fresh, empty accumulator of this sketch's family
// and dimensions, for callers using QueryInto/MergeInto. The accumulator is
// caller-owned: reuse it across queries (QueryInto resets it) but not from
// multiple goroutines at once. Accumulator dimensions depend only on family
// accuracy parameters, never on the shard count, so an accumulator stays
// valid across any number of Resize calls.
func (s *Sharded[T, A, C]) NewAccumulator() A { return s.mkAcc() }

// acquire returns a Reset accumulator from the pool. Callers must release
// it after extracting scalar results; an accumulator must not be released
// while anything still references its internal state.
func (s *Sharded[T, A, C]) acquire() A {
	acc := s.accs.Get().(A)
	acc.Reset()
	return acc
}

// release returns a pooled accumulator.
func (s *Sharded[T, A, C]) release(acc A) { s.accs.Put(acc) }

// Relaxation returns the combined staleness bound for merged queries: the
// maximum number of completed updates a cross-shard fold may miss. In
// steady state this is S·r = S·2·N·b (Theorem 1 applied per shard and
// summed). While a Resize transition is draining, queries fold both the
// old and the new epoch's live snapshots, and the bound is transiently
// S_old·r + S_new·r; it returns to S_new·r when Resize completes (retired
// state is folded exactly, contributing no staleness).
func (s *Sharded[T, A, C]) Relaxation() int {
	st := s.st.Load()
	r := st.g.relaxation()
	if st.old != nil {
		r += st.old.g.relaxation()
	}
	return r
}

// Shards returns the current S. During a Resize transition this is already
// the new epoch's shard count.
func (s *Sharded[T, A, C]) Shards() int { return len(s.st.Load().comps) }

// Pressure returns the sketch's cumulative ingest-pressure sample, summed
// over every shard of the current epoch, the draining epoch while a Resize
// transition is in flight, and the final counters of all retired epochs —
// so both counters are monotonic across resizes, which is what lets an
// autoscaling controller turn successive samples into rates. Wait-free: one
// epoch load plus two atomic loads per live shard.
func (s *Sharded[T, A, C]) Pressure() core.PressureSample {
	st := s.st.Load()
	p := st.basePressure
	if st.old != nil {
		p = p.Add(st.old.g.pressure())
	}
	return p.Add(st.g.pressure())
}

// SizeBytes estimates the sketch's resident heap footprint in bytes, for
// memory-budget accounting: one family-dimensioned accumulator's footprint
// per live shard (current epoch plus a draining epoch's shards while a
// Resize is in flight, plus two double-buffered view accumulators when a
// materialized view is enabled), plus the retained legacy accumulator's own
// footprint. It is an estimate, not an exact byte count — per-shard
// composables are approximated by the family's accumulator because both
// hold the same family-parameter-dimensioned state (a Θ slot table, an HLL
// register array, a Count-Min grid, a quantiles summary) — but it tracks
// the real footprint within a small constant factor, scales linearly with S
// (what a budget-driven Resize-down reclaims), and is wait-free toward
// writers: one epoch load plus a pooled-accumulator round trip.
func (s *Sharded[T, A, C]) SizeBytes() int64 {
	st := s.st.Load()
	units := int64(len(st.comps))
	if st.old != nil {
		units += int64(len(st.old.comps))
	}
	if s.vr.Load() != nil {
		units += 2 // double-buffered view accumulators
	}
	if w := st.win; w != nil {
		// Closed ring slots plus the published suffix-merge, carry and decay
		// planes, each one family-dimensioned accumulator.
		units += int64(w.cfg.Slots) + 3
	}
	acc := s.acquire() // pooled: reflects the family's working-set capacity
	unit := int64(acc.SizeBytes())
	s.release(acc)
	total := unit * units
	if st.hasLegacy {
		total += int64(st.legacy.SizeBytes())
	}
	return total
}

// ShardRelaxation returns the single-shard staleness bound: the per-shard
// relaxation r = 2·N·b in steady state, transiently r_old + r_new while a
// Resize transition is draining (single-shard reads touch one owning shard
// per live epoch; legacy state is exact and adds no staleness). It is the
// bound governing per-key queries such as CountMin.Estimate, and the r an
// autoscaling policy multiplies by S_old + S_new to cap a transition's
// combined staleness window.
func (s *Sharded[T, A, C]) ShardRelaxation() int {
	st := s.st.Load()
	r := st.g.shardRelaxation()
	if st.old != nil {
		r += st.old.g.shardRelaxation()
	}
	return r
}

// Eager reports whether merged queries currently reflect every completed
// update: every current shard is still in its exact eager phase, and, if a
// Resize transition is draining, every old-epoch shard stayed eager too
// (retired legacy state is always exact and does not affect eagerness).
// Note that a Resize starts the new shards in a fresh eager phase.
func (s *Sharded[T, A, C]) Eager() bool {
	st := s.st.Load()
	if !st.g.eager() {
		return false
	}
	return st.old == nil || st.old.g.eager()
}

// Close stops all shard propagators and drains every buffer; afterwards
// merged queries summarise the entire ingested stream with no relaxation
// residue. A materialized view and a sliding-window rotator, if enabled,
// are stopped first (Close never leaks their goroutines), so post-Close
// queries fold the drained shards live and are exact. Call once, after all
// writer goroutines stop; Close is serialised with Resize and idempotent.
func (s *Sharded[T, A, C]) Close() {
	s.resizeMu.Lock()
	if s.closed {
		s.resizeMu.Unlock()
		return
	}
	s.closed = true
	vr := s.vr.Load()
	if vr != nil {
		s.vr.Store(nil)
	}
	wr := s.wr.Load()
	if wr != nil {
		s.wr.Store(nil)
	}
	s.st.Load().g.close()
	// The runtimes are detached; stop them outside resizeMu — the rotator
	// loop acquires resizeMu per tick (RotateNow), so waiting for it while
	// holding the lock would deadlock. A tick that slips in between sees
	// wr == nil (or closed) and is a no-op.
	s.resizeMu.Unlock()
	if vr != nil {
		s.stopView(vr)
	}
	if wr != nil {
		s.stopWindow(wr)
	}
}
