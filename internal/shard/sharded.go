package shard

import (
	"sync"

	"fastsketches/internal/core"
)

// Accumulator is the reusable merge target of a sketch family. Reset must
// restore the empty state while retaining capacity, so one accumulator can
// serve an unbounded sequence of merged queries without allocating.
type Accumulator interface{ Reset() }

// Mergeable is the uniform contract a family's concurrent composable
// satisfies toward the generic sharded layer: the core framework's Global
// interface for ingestion, plus a wait-free fold of the published snapshot
// into a caller-owned accumulator for the merge-on-query plane.
type Mergeable[T any, A Accumulator] interface {
	core.Global[T]
	// SnapshotMergeInto folds the latest published snapshot into acc. It
	// must be wait-free, safe concurrently with ingestion, and must not
	// retain acc: repeatedly reusing one Reset accumulator must be
	// equivalent to folding into a fresh accumulator per query.
	SnapshotMergeInto(acc A)
}

// Sharded is the generic sharded sketch underlying all four families: S
// independent concurrent composables striped by key hash (the group layer),
// plus the allocation-free merge-on-query plane — a sync.Pool of reusable
// accumulators, so steady-state merged queries allocate nothing. The family
// wrappers (Theta, HLL, Quantiles, CountMin) embed a *Sharded and add only
// their hash routing and family-specific query signatures.
type Sharded[T any, A Accumulator, C Mergeable[T, A]] struct {
	g     group[T]
	comps []C
	mkAcc func() A
	accs  sync.Pool
}

// newSharded builds and starts one sharded sketch from a family descriptor:
// mkComp constructs the per-shard concurrent composable (shard index i is
// provided so families can decorrelate per-shard randomness) and mkAcc
// constructs an empty accumulator for the pool.
func newSharded[T any, A Accumulator, C Mergeable[T, A]](
	cfg *Config, k int, mkComp func(i int) C, mkAcc func() A,
) *Sharded[T, A, C] {
	s := &Sharded[T, A, C]{
		comps: make([]C, cfg.Shards),
		mkAcc: mkAcc,
	}
	globals := make([]core.Global[T], cfg.Shards)
	for i := range s.comps {
		c := mkComp(i)
		s.comps[i] = c
		globals[i] = c
	}
	s.g = newGroup[T](cfg, k, globals)
	s.accs.New = func() any { return mkAcc() }
	return s
}

// update ingests item on writer lane lane of the shard selected by routeHash.
func (s *Sharded[T, A, C]) update(lane int, routeHash uint64, item T) {
	s.g.update(lane, routeHash, item)
}

// MergeInto folds every shard's published snapshot into acc without
// resetting it first, so a fold can accumulate across several sketches.
// Wait-free: one atomic snapshot load per shard plus the fold; no shard's
// propagator is ever blocked. The combined state reflects all but at most
// Relaxation() = S·r of the updates completed before the call.
func (s *Sharded[T, A, C]) MergeInto(acc A) {
	for _, c := range s.comps {
		c.SnapshotMergeInto(acc)
	}
}

// QueryInto resets acc and folds every shard's published snapshot into it —
// the merged-query path for callers that own their accumulator and want
// zero allocation without touching the internal pool. Reusing one
// accumulator across queries is equivalent to a fresh accumulator per
// query, and the S·r staleness bound of MergeInto applies unchanged.
func (s *Sharded[T, A, C]) QueryInto(acc A) {
	acc.Reset()
	s.MergeInto(acc)
}

// NewAccumulator returns a fresh, empty accumulator of this sketch's family
// and dimensions, for callers using QueryInto/MergeInto. The accumulator is
// caller-owned: reuse it across queries (QueryInto resets it) but not from
// multiple goroutines at once.
func (s *Sharded[T, A, C]) NewAccumulator() A { return s.mkAcc() }

// acquire returns a Reset accumulator from the pool. Callers must release
// it after extracting scalar results; an accumulator must not be released
// while anything still references its internal state.
func (s *Sharded[T, A, C]) acquire() A {
	acc := s.accs.Get().(A)
	acc.Reset()
	return acc
}

// release returns a pooled accumulator.
func (s *Sharded[T, A, C]) release(acc A) { s.accs.Put(acc) }

// Relaxation returns the combined staleness bound S·r = S·2·N·b for merged
// queries: the maximum number of completed updates a cross-shard fold may
// miss (Theorem 1 applied per shard and summed).
func (s *Sharded[T, A, C]) Relaxation() int { return s.g.relaxation() }

// Shards returns S.
func (s *Sharded[T, A, C]) Shards() int { return len(s.comps) }

// Eager reports whether every shard is still in its exact eager phase;
// while true, merged queries reflect every completed update.
func (s *Sharded[T, A, C]) Eager() bool { return s.g.eager() }

// Close stops all shard propagators and drains every buffer; afterwards
// merged queries summarise the entire ingested stream with no relaxation
// residue. Call once, after all writer goroutines stop.
func (s *Sharded[T, A, C]) Close() { s.g.close() }
