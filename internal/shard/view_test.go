package shard_test

// Materialized-view unit tests: double-buffer publication, staleness
// fallback, resize interaction, lifecycle errors, refresher shutdown, and
// the zero-allocation contract of the view query path. Refreshes are paced
// deterministically with a ManualClock (the view's Clock interface is
// structurally identical to autoscale's).

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/shard"
)

// eagerCM builds a CountMin whose eager phase comfortably covers the test's
// update volume, so the live fold is exact and any missing weight in a
// query must come from view staleness — never from relaxation.
func eagerCM(t *testing.T, shards int) *shard.CountMin {
	t.Helper()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{Shards: shards, MaxError: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestViewServesPublishedStateUntilRefreshed(t *testing.T) {
	sk := eagerCM(t, 2)
	defer sk.Close()
	for i := 0; i < 100; i++ {
		sk.Update(0, uint64(i%8))
	}
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if err := sk.EnableView(shard.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
	}); err != nil {
		t.Fatal(err)
	}
	if !sk.ViewEnabled() {
		t.Fatal("ViewEnabled false after EnableView")
	}
	acc := sk.NewAccumulator()
	sk.QueryInto(acc)
	if got := acc.N(); got != 100 {
		t.Fatalf("initial view N = %d, want 100 (EnableView publishes synchronously)", got)
	}

	// New updates land in the live shards but not in the published view.
	for i := 0; i < 50; i++ {
		sk.Update(0, uint64(i%8))
	}
	sk.QueryInto(acc)
	if got := acc.N(); got != 100 {
		t.Fatalf("stale view N = %d, want 100 (view must not see unrefreshed updates)", got)
	}

	if !sk.RefreshViewNow() {
		t.Fatal("RefreshViewNow returned false with a view enabled")
	}
	sk.QueryInto(acc)
	if got := acc.N(); got != 150 {
		t.Fatalf("refreshed view N = %d, want 150", got)
	}

	if !sk.DisableView() {
		t.Fatal("DisableView returned false with a view enabled")
	}
	if sk.DisableView() {
		t.Fatal("second DisableView returned true")
	}
	sk.QueryInto(acc)
	if got := acc.N(); got != 150 {
		t.Fatalf("live fold after DisableView N = %d, want 150", got)
	}
}

func TestViewExpiresToLiveFold(t *testing.T) {
	sk := eagerCM(t, 2)
	defer sk.Close()
	for i := 0; i < 100; i++ {
		sk.Update(0, uint64(i%8))
	}
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	// RefreshEvery an hour so the background tick never fires during the
	// test; MaxAge a minute so advancing the clock expires the view.
	if err := sk.EnableView(shard.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: time.Minute, Clock: clk,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sk.Update(0, uint64(i%8))
	}
	acc := sk.NewAccumulator()
	sk.QueryInto(acc)
	if got := acc.N(); got != 100 {
		t.Fatalf("fresh view N = %d, want 100", got)
	}
	clk.Advance(2 * time.Minute) // beyond MaxAge, below RefreshEvery
	if lag := sk.ViewLag(); lag != 2*time.Minute {
		t.Fatalf("ViewLag = %v, want 2m", lag)
	}
	sk.QueryInto(acc)
	if got := acc.N(); got != 150 {
		t.Fatalf("expired view should fall back to live fold: N = %d, want 150", got)
	}
	// A manual refresh re-arms the view with fresh content.
	sk.RefreshViewNow()
	if lag := sk.ViewLag(); lag != 0 {
		t.Fatalf("ViewLag after refresh = %v, want 0", lag)
	}
	sk.QueryInto(acc)
	if got := acc.N(); got != 150 {
		t.Fatalf("re-refreshed view N = %d, want 150", got)
	}
}

func TestViewAcrossResize(t *testing.T) {
	sk := eagerCM(t, 2)
	defer sk.Close()
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if err := sk.EnableView(shard.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
	}); err != nil {
		t.Fatal(err)
	}
	acc := sk.NewAccumulator()
	for i := 0; i < 100; i++ {
		sk.Update(0, uint64(i%8))
	}
	sk.RefreshViewNow()

	// Resize retires the ingest epoch: its exact state moves to the legacy
	// accumulator. A refresh after the resize must fold that legacy — a view
	// built only from the new epoch's (empty) shards would report 0.
	if err := sk.Resize(4); err != nil {
		t.Fatal(err)
	}
	sk.RefreshViewNow()
	sk.QueryInto(acc)
	if got := acc.N(); got != 100 {
		t.Fatalf("post-resize view N = %d, want 100 (legacy fold missing from view)", got)
	}

	for i := 0; i < 60; i++ {
		sk.Update(0, uint64(i%8))
	}
	sk.RefreshViewNow()
	sk.QueryInto(acc)
	if got := acc.N(); got != 160 {
		t.Fatalf("view after resize + more updates N = %d, want 160", got)
	}
	// Per-key estimates never went through the view (single-shard path) and
	// must still sum legacy + current owning shards.
	if got := sk.Estimate(0); got == 0 {
		t.Fatal("per-key estimate lost counts across resize")
	}
}

func TestViewLifecycleErrors(t *testing.T) {
	sk := eagerCM(t, 2)
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	cfg := shard.ViewConfig{RefreshEvery: time.Hour, MaxAge: -1, Clock: clk}
	if err := sk.EnableView(cfg); err != nil {
		t.Fatal(err)
	}
	if err := sk.EnableView(cfg); err == nil {
		t.Fatal("second EnableView did not error")
	}
	sk.Close()
	if sk.ViewEnabled() {
		t.Fatal("view still enabled after Close")
	}
	if err := sk.EnableView(cfg); err == nil {
		t.Fatal("EnableView after Close did not error")
	}
	if sk.RefreshViewNow() {
		t.Fatal("RefreshViewNow returned true after Close")
	}
	if sk.ViewLag() != 0 {
		t.Fatal("ViewLag non-zero with no view")
	}
}

func TestViewRefresherGoroutineStopsOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		sk := eagerCM(t, 2)
		if err := sk.EnableView(shard.ViewConfig{RefreshEvery: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		sk.Update(0, 1)
		if i%2 == 0 {
			sk.DisableView()
		}
		sk.Close() // must stop the refresher when DisableView was skipped
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines leaked: %d running, baseline %d", n, base)
	}
}

func TestViewQueryPathZeroAlloc(t *testing.T) {
	sk, err := shard.NewTheta(12, shard.Config{Shards: 8, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	for i := 0; i < 4096; i++ {
		sk.Update(0, uint64(i))
	}
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if err := sk.EnableView(shard.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
	}); err != nil {
		t.Fatal(err)
	}
	// Caller-owned accumulator path: race-safe to pin (no sync.Pool, whose
	// race-mode build drops puts at random). The pooled path is pinned in
	// the registry-level alloc contract test, which is !race-gated.
	acc := sk.NewAccumulator()
	var sink float64
	if allocs := testing.AllocsPerRun(200, func() {
		sk.QueryInto(acc)
		sink = acc.Estimate()
	}); allocs != 0 {
		t.Errorf("view QueryInto allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

func TestViewConcurrentSmoke(t *testing.T) {
	// Writers, a fast refresher, queriers and a resize all racing — run
	// under -race this exercises the double-buffer handshake; the full bound
	// assertion lives in the adversary StressViewUnderFire suite.
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{
		Shards: 4, Writers: 2, MaxError: 1, BufferSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.EnableView(shard.ViewConfig{RefreshEvery: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for lane := 0; lane < 2; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				sk.Update(lane, uint64(i%64))
			}
		}(lane)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := sk.NewAccumulator()
			for !stop.Load() {
				sk.QueryInto(acc)
				_ = acc.N()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			sk.RefreshViewNow()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := sk.Resize(2); err != nil {
		t.Error(err)
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	sk.Close()
	// After Close the fold is exact; the view is gone, so live N must equal
	// the final view-free fold (sanity that teardown did not corrupt state).
	acc := sk.NewAccumulator()
	sk.QueryInto(acc)
	if acc.N() == 0 {
		t.Fatal("all updates lost")
	}
}
