package shard_test

import (
	"math"
	"sync"
	"testing"

	"fastsketches/internal/core"
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/shard"
	"fastsketches/internal/theta"
)

// feedTheta drives n distinct keys through w writer goroutines.
func feedTheta(t *shard.Theta, writers, n int) {
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/writers; i++ {
				t.Update(w, base+uint64(i))
			}
		}(w)
	}
	wg.Wait()
}

func TestConfigValidation(t *testing.T) {
	bad := []shard.Config{
		{Shards: -1},
		{Writers: -2},
		{BufferSize: -1},
		{MaxError: -0.5},
	}
	for _, cfg := range bad {
		if _, err := shard.NewTheta(12, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	// Zero value fills defaults.
	sk, err := shard.NewTheta(12, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	if sk.Shards() != shard.DefaultShards {
		t.Errorf("default shards = %d, want %d", sk.Shards(), shard.DefaultShards)
	}
}

func TestThetaExactAfterClose(t *testing.T) {
	// With n < k per shard everything stays in exact mode: after Close the
	// merged estimate must equal n precisely — routing lost nothing and the
	// union double-counted nothing.
	const writers, n = 4, 3000
	sk, err := shard.NewTheta(12, shard.Config{Shards: 4, Writers: writers, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	feedTheta(sk, writers, n)
	sk.Close()
	if est := sk.Estimate(); est != n {
		t.Errorf("merged estimate after close = %v, want exactly %d", est, n)
	}
}

func TestThetaAccuracyLargeStream(t *testing.T) {
	const writers, n = 4, 1 << 20
	sk, err := shard.NewTheta(12, shard.Config{Shards: 8, Writers: writers, MaxError: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	feedTheta(sk, writers, n)
	sk.Close()
	// Each shard samples its own substream; the union's error is governed by
	// the per-shard k. Allow a few combined RSE.
	re := sk.Estimate()/float64(n) - 1
	if math.Abs(re) > 5*theta.RSEBound(4096) {
		t.Errorf("sharded estimate error %.4f exceeds 5·RSE", re)
	}
}

func TestThetaSameKeySameShard(t *testing.T) {
	// Feeding the same key many times must count once: duplicates route to
	// one shard and the union never double-counts across shards.
	sk, err := shard.NewTheta(12, shard.Config{Shards: 8, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		sk.Update(0, uint64(i%100))
	}
	sk.Close()
	if est := sk.Estimate(); est != 100 {
		t.Errorf("estimate %v, want exactly 100 distinct", est)
	}
}

func TestThetaRelaxationAccounting(t *testing.T) {
	sk, err := shard.NewTheta(12, shard.Config{
		Shards: 4, Writers: 3, BufferSize: 8, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	if got, want := sk.Relaxation(), 4*2*3*8; got != want {
		t.Errorf("combined relaxation %d, want S·2·N·b = %d", got, want)
	}
	par, err := shard.NewTheta(12, shard.Config{
		Shards: 4, Writers: 3, BufferSize: 8, MaxError: 1, Unoptimised: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if got, want := par.Relaxation(), 4*3*8; got != want {
		t.Errorf("ParSketch combined relaxation %d, want S·N·b = %d", got, want)
	}
}

func TestThetaMergedSketch(t *testing.T) {
	sk, err := shard.NewTheta(12, shard.Config{Shards: 4, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		sk.Update(0, uint64(i))
	}
	sk.Close()
	m := sk.Merged()
	if m.Estimate() != 2000 {
		t.Errorf("merged standalone sketch estimate %v, want 2000", m.Estimate())
	}
}

func TestHLLShardedMatchesSequentialUnion(t *testing.T) {
	// Register-max union is lossless: the sharded HLL after Close must give
	// exactly the estimate of a sequential HLL over the same stream.
	const n = 1 << 17
	sk, err := shard.NewHLL(12, shard.Config{Shards: 4, Writers: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq := hll.New(12, murmur.DefaultSeed)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/2; i++ {
				sk.Update(w, base+uint64(i))
			}
		}(w)
	}
	wg.Wait()
	sk.Close()
	for w := 0; w < 2; w++ {
		base := uint64(w) << 40
		for i := 0; i < n/2; i++ {
			seq.Update(base + uint64(i))
		}
	}
	if got, want := sk.Estimate(), seq.Estimate(); got != want {
		t.Errorf("sharded HLL %v != sequential %v", got, want)
	}
	re := sk.Estimate()/float64(n) - 1
	if math.Abs(re) > 4*hll.RSEBound(12) {
		t.Errorf("sharded HLL error %.4f exceeds 4·RSE", re)
	}
}

func TestQuantilesShardedRankBound(t *testing.T) {
	// Stream 0..n-1 through 2 writers; after Close the merged summary must
	// answer quantile queries within the per-shard epsilon.
	const n = 1 << 16
	const k = 128
	sk, err := shard.NewQuantiles(k, shard.Config{Shards: 4, Writers: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 2 {
				sk.Update(w, float64(i))
			}
		}(w)
	}
	wg.Wait()
	sk.Close()
	if got := sk.N(); got != n {
		t.Fatalf("merged N = %d, want %d", got, n)
	}
	s := sk.Summary()
	if s.Min() != 0 || s.Max() != n-1 {
		t.Errorf("merged min/max = %v/%v, want 0/%d", s.Min(), s.Max(), n-1)
	}
	eps := quantiles.EpsilonBound(k, n)
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		v := s.Quantile(phi)
		if dev := math.Abs(v/float64(n) - phi); dev > eps+1.0/float64(n) {
			t.Errorf("phi=%v: merged quantile %v deviates %.4f > eps %.4f", phi, v, dev, eps)
		}
	}
	// Rank must be monotone and consistent with Quantile.
	if r := s.Rank(float64(n) / 2); math.Abs(r-0.5) > eps+1.0/float64(n) {
		t.Errorf("rank(n/2) = %v, want ≈0.5", r)
	}
}

func TestCountMinPerKeyExactNoCollisions(t *testing.T) {
	// Few keys, wide sketch → no collisions: after Close every per-key
	// estimate equals the true count, and N sums across shards.
	const keys, reps = 50, 200
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{Shards: 4, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < reps; rep++ {
		for k := uint64(0); k < keys; k++ {
			sk.Update(0, k)
		}
	}
	sk.Close()
	if got := sk.N(); got != keys*reps {
		t.Errorf("total N = %d, want %d", got, keys*reps)
	}
	for k := uint64(0); k < keys; k++ {
		if got := sk.Estimate(k); got != reps {
			t.Errorf("key %d estimate %d, want %d", k, got, reps)
		}
	}
	// The merged sketch agrees.
	m := sk.Merged()
	if m.N() != keys*reps {
		t.Errorf("merged N = %d, want %d", m.N(), keys*reps)
	}
	for k := uint64(0); k < keys; k++ {
		if got := m.Estimate(k); got != reps {
			t.Errorf("merged key %d estimate %d, want %d", k, got, reps)
		}
	}
}

func TestCountMinShardRelaxationTighter(t *testing.T) {
	sk, err := shard.NewCountMin(0.01, 0.01, shard.Config{
		Shards: 8, Writers: 2, BufferSize: 4, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	if got, want := sk.ShardRelaxation(), 2*2*4; got != want {
		t.Errorf("per-shard relaxation %d, want 2·N·b = %d", got, want)
	}
	if got, want := sk.Relaxation(), 8*2*2*4; got != want {
		t.Errorf("combined relaxation %d, want S·2·N·b = %d", got, want)
	}
}

func TestEagerPhaseMergedQueriesExact(t *testing.T) {
	// While every shard is eager, each completed update is immediately
	// visible in merged queries: interleaved query-after-update must count
	// exactly. Keys are distinct and far below k so Θ stays exact too.
	sk, err := shard.NewTheta(12, shard.Config{Shards: 4, MaxError: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	for i := 0; i < 1000; i++ {
		sk.Update(0, uint64(i))
		if !sk.Eager() {
			t.Fatalf("left eager phase after only %d updates (limit is 2/e² per shard)", i+1)
		}
		if est := sk.Estimate(); est != float64(i+1) {
			t.Fatalf("eager merged estimate after %d updates = %v, want exact", i+1, est)
		}
	}
}

func TestShardsIndependentEagerSwitch(t *testing.T) {
	// Pushing one shard past its eager limit must not force others lazy:
	// route many copies of a single key (one shard) and verify Eager() goes
	// false only once that shard's substream exceeds 2/e².
	sk, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: 4, MaxError: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	limit := core.DeriveEagerLimit(0.1) // ≈ 2/e² per shard
	for i := 0; i < limit-1; i++ {
		sk.Update(0, 42)
	}
	if !sk.Eager() {
		t.Error("all shards should still be eager below the per-shard limit")
	}
	for i := 0; i < limit; i++ {
		sk.Update(0, 42)
	}
	if sk.Eager() {
		t.Error("the loaded shard should have switched to lazy")
	}
}
