// Package shard stripes a keyed update stream across S independent
// concurrent sketches and answers queries by merging per-shard snapshots on
// demand — the scale-out layer that turns the paper's single concurrent
// sketch into a multi-sketch service.
//
// # Why shard
//
// The framework's relaxation grows linearly with the writer count: a single
// OptParSketch ingested by N writers answers queries that may miss up to
// r = 2·N·b completed updates. A service ingesting one heavy keyed stream
// with many writer goroutines therefore pays ever-larger staleness as it
// scales. Sharding splits the key space across S sketches, each with its own
// propagator and its own writer lanes, so per-shard contention — and the
// constant factors behind b — stay small while total ingest throughput
// scales with S independent propagators.
//
// # Combined relaxation bound: S·r
//
// Each shard is itself an instance of the paper's framework, strongly
// linearisable w.r.t. the r-relaxed sequential specification with
// r = 2·N·b (OptParSketch; N·b for ParSketch). A cross-shard merged query
// folds one wait-free snapshot per shard; relative to any point before the
// fold began, shard i's snapshot misses at most r of shard i's completed
// updates, so the merged answer misses at most
//
//	S·r = S·2·N·b
//
// of all completed updates. Queries scoped to a single key (Count-Min
// frequency, for instance) touch only the owning shard and keep the tighter
// single-shard bound r. Choosing S is therefore a throughput/staleness
// trade: more shards mean more parallel propagators (throughput ↑) but a
// larger worst-case combined staleness window (S·r ↑) for global queries.
//
// # Routing
//
// Updates are routed by a mix of the element's 64-bit hash with a routing
// seed, decorrelating shard choice from the bits the sketches themselves
// consume (Θ compares the raw hash against its threshold, HLL consumes
// prefix/suffix bits), so every shard still observes uniformly distributed
// hashes. Identical keys always land on the same shard, which is what makes
// per-key queries single-shard and keeps distinct counts additive across
// shards.
//
// # Lanes
//
// A sharded sketch with W writer lanes creates W lanes on every shard; lane
// l of every shard is owned by caller goroutine l (an update's shard is not
// known before hashing, so each goroutine must be able to reach all shards).
// As in the core framework, each lane must be driven by at most one
// goroutine at a time.
//
// # Live resharding
//
// S is not frozen at construction: Resize grows or shrinks the shard group
// while writers and queriers stay active. Routing goes through an
// atomically-swapped immutable epoch — current shards, optionally the old
// epoch still draining, and a legacy accumulator holding all state retired
// by earlier resizes. A resize builds and publishes the new epoch, waits
// out in-flight writers behind per-lane seqlocks, closes the old epoch's
// frameworks (an exact drain), folds the old shards' final snapshots into
// the legacy accumulator through the same SnapshotMergeInto plane queries
// use, and retires the old epoch in one atomic store. Because every query
// reads one epoch pointer, it sees a retired epoch either live or as
// legacy — never both, never neither — so no completed update is lost or
// double-counted across a resize. The merged-query staleness bound is
// transiently S_old·r + S_new·r while a drain is in flight and returns to
// the new S·r when Resize completes; Relaxation() always reports the
// current value. See Sharded.Resize and docs/ARCHITECTURE.md for the full
// protocol.
package shard

import (
	"fmt"

	"fastsketches/internal/core"
	"fastsketches/internal/murmur"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 4

// Config parameterises a sharded sketch. The zero value gives
// DefaultShards shards, one writer lane, and the paper's e = 0.04 eager
// budget per shard.
type Config struct {
	// Shards is S, the number of independent concurrent sketches the key
	// space is striped over. Default DefaultShards.
	Shards int
	// Writers is the number of writer lanes (N per shard). Lane l must be
	// driven by at most one goroutine at a time, across all shards.
	// Default 1.
	Writers int
	// BufferSize overrides the derived per-writer buffer b on every shard.
	// 0 = derive per family. The combined relaxation is Relaxation().
	BufferSize int
	// MaxError is the per-shard eager-phase error budget e (Section 5.3):
	// each shard stays exact until its own substream exceeds 2/e². Use 1.0
	// to disable the eager phase. Default 0.04.
	MaxError float64
	// Unoptimised selects ParSketch (r = N·b per shard) instead of
	// OptParSketch (r = 2·N·b).
	Unoptimised bool
	// Seed is the sketch hash seed; 0 means murmur.DefaultSeed.
	Seed uint64
	// RouteSeed decorrelates routing from sketch hashing; 0 derives it from
	// Seed. Sharded sketches can only be compared/merged when both seeds
	// agree.
	RouteSeed uint64
}

func (c *Config) normalise() error {
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	if c.Shards < 1 {
		return fmt.Errorf("shard: Shards must be ≥ 1, got %d", c.Shards)
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("shard: negative Writers")
	}
	if c.BufferSize < 0 {
		return fmt.Errorf("shard: negative BufferSize")
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.MaxError < 0 {
		return fmt.Errorf("shard: negative MaxError")
	}
	if c.Seed == 0 {
		c.Seed = murmur.DefaultSeed
	}
	if c.RouteSeed == 0 {
		c.RouteSeed = c.Seed ^ 0xa076_1d64_78bd_642f // wyhash prime, ≠ 0
	}
	return nil
}

func (c *Config) mode() core.Mode {
	if c.Unoptimised {
		return core.ModeUnoptimised
	}
	return core.ModeOptimised
}

// group owns the S core framework instances of one sharded sketch and the
// routing state shared by every family.
type group[T any] struct {
	fws       []*core.Framework[T]
	routeSeed uint64
}

// newGroup builds and starts one framework per shard over the given globals.
func newGroup[T any](cfg *Config, k int, globals []core.Global[T]) group[T] {
	g := group[T]{
		fws:       make([]*core.Framework[T], len(globals)),
		routeSeed: cfg.RouteSeed,
	}
	for i, gl := range globals {
		fw := core.New[T](gl, core.Config{
			Workers:    cfg.Writers,
			BufferSize: cfg.BufferSize,
			Mode:       cfg.mode(),
			MaxError:   cfg.MaxError,
			K:          k,
		})
		fw.Start()
		g.fws[i] = fw
	}
	return g
}

// route maps an element hash to its shard. The hash is remixed with the
// routing seed (xor-multiply-xorshift) so the shard index is statistically
// independent of the bits the sketch consumes.
func (g *group[T]) route(h uint64) int {
	x := h ^ g.routeSeed
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 32
	return int(x % uint64(len(g.fws)))
}

// update ingests item on writer lane of the shard selected by routeHash.
func (g *group[T]) update(lane int, routeHash uint64, item T) {
	g.fws[g.route(routeHash)].Update(lane, item)
}

// relaxation returns the combined bound S·r: the maximum number of completed
// updates a cross-shard merged query may miss.
func (g *group[T]) relaxation() int {
	total := 0
	for _, fw := range g.fws {
		total += fw.Relaxation()
	}
	return total
}

// pressure sums the per-framework ingest-pressure counters across the group
// — the sampling hook the autoscale controller polls. Wait-free.
func (g *group[T]) pressure() core.PressureSample {
	var p core.PressureSample
	for _, fw := range g.fws {
		p = p.Add(fw.Pressure())
	}
	return p
}

// shardRelaxation returns the per-shard relaxation r = 2·N·b (N·b for
// ParSketch). Every framework in the group shares one configuration, so the
// first one speaks for all.
func (g *group[T]) shardRelaxation() int {
	if len(g.fws) == 0 {
		return 0
	}
	return g.fws[0].Relaxation()
}

// eager reports whether every shard is still in its exact eager phase; while
// true, merged queries reflect every completed update.
func (g *group[T]) eager() bool {
	for _, fw := range g.fws {
		if fw.Lazy() {
			return false
		}
	}
	return true
}

// stats sums per-shard framework counters.
func (g *group[T]) stats() core.Stats {
	var s core.Stats
	for _, fw := range g.fws {
		st := fw.Stats()
		s.Accepted += st.Accepted
		s.Filtered += st.Filtered
	}
	return s
}

// close stops every shard's propagator and drains all buffers; afterwards
// merged queries summarise the entire ingested stream exactly (no
// relaxation residue). Call once, after all writer goroutines stop.
func (g *group[T]) close() {
	for _, fw := range g.fws {
		fw.Close()
	}
}
