package shard

import (
	"fastsketches/internal/countmin"
	"fastsketches/internal/murmur"
)

// CountMin is a sharded concurrent Count-Min sketch. Keys are striped by
// hash, so each key's counters live on exactly one shard: per-key frequency
// queries touch only the owning shard and keep the tight single-shard
// staleness bound r, while aggregate queries (N, Merged, QueryInto) fold
// all shards and carry the combined S·r bound. It is a thin descriptor
// over the generic Sharded layer: the accumulator is a sequential
// countmin.Sketch whose counter grid is zeroed and refolded per query.
type CountMin struct {
	*Sharded[uint64, *countmin.Sketch, *countmin.Composable]
	seed uint64
}

// NewCountMin builds and starts a sharded concurrent Count-Min sketch
// dimensioned for additive error ≤ eps·N_shard with failure probability
// ≤ delta on every shard.
func NewCountMin(eps, delta float64, cfg Config) (*CountMin, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = 32
	}
	seed := cfg.Seed
	proto := countmin.NewWithError(eps, delta, seed)
	width, depth := proto.Width(), proto.Depth()
	return &CountMin{
		Sharded: newSharded[uint64](&cfg, width,
			func(int) *countmin.Composable {
				return countmin.NewComposable(width, depth, seed)
			},
			func() *countmin.Sketch { return countmin.New(width, depth, seed) },
		),
		seed: seed,
	}, nil
}

// routeKey maps a raw key to its owning shard. Count-Min elements travel as
// raw keys (each row re-hashes internally), so routing hashes the key first.
func (c *CountMin) routeKey(key uint64) uint64 {
	return murmur.HashUint64(key, c.seed)
}

// Update adds one occurrence of key on writer lane lane.
func (c *CountMin) Update(lane int, key uint64) {
	c.update(lane, c.routeKey(key), key)
}

// UpdateString adds one occurrence of a string key on writer lane lane.
func (c *CountMin) UpdateString(lane int, key string) {
	h := murmur.HashString(key, c.seed)
	c.update(lane, c.routeKey(h), h)
}

// Estimate returns the frequency estimate of key from its owning shard —
// wait-free, never underestimating the shard's propagated prefix, with the
// tight single-shard staleness bound r (not S·r). No accumulator involved:
// the owning shard's counters are read directly.
func (c *CountMin) Estimate(key uint64) uint64 {
	return c.comps[c.g.route(c.routeKey(key))].Estimate(key)
}

// EstimateString is Estimate for string keys.
func (c *CountMin) EstimateString(key string) uint64 {
	h := murmur.HashString(key, c.seed)
	return c.comps[c.g.route(c.routeKey(h))].Estimate(h)
}

// N returns the total weight across all shards. As a cross-shard aggregate
// it reflects all but at most Relaxation() = S·r of the completed updates.
func (c *CountMin) N() uint64 {
	var total uint64
	for _, comp := range c.comps {
		total += comp.N()
	}
	return total
}

// Merged folds every shard's counters into one sequential sketch (wait-free
// per counter): the element-wise sum summarises the whole stream modulo the
// S·r staleness window. It folds into a fresh (non-pooled) sketch because
// the result escapes to the caller; use QueryInto with a reused accumulator
// for the allocation-free aggregate path.
func (c *CountMin) Merged() *countmin.Sketch {
	acc := c.NewAccumulator()
	c.MergeInto(acc)
	return acc
}

// ShardRelaxation returns the single-shard bound r governing per-key
// Estimate queries.
func (c *CountMin) ShardRelaxation() int { return c.g.fws[0].Relaxation() }
