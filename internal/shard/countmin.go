package shard

import (
	"fastsketches/internal/countmin"
	"fastsketches/internal/murmur"
)

// CountMin is a sharded concurrent Count-Min sketch. Keys are striped by
// hash, so each key's counters live on exactly one shard: per-key frequency
// queries touch only the owning shard and keep the tight single-shard
// staleness bound r, while aggregate queries (N, Merged, QueryInto) fold
// all shards and carry the combined S·r bound. It is a thin descriptor
// over the generic Sharded layer: the accumulator is a sequential
// countmin.Sketch whose counter grid is zeroed and refolded per query.
type CountMin struct {
	*Sharded[uint64, *countmin.Sketch, *countmin.Composable]
	seed uint64
}

// NewCountMin builds and starts a sharded concurrent Count-Min sketch
// dimensioned for additive error ≤ eps·N_shard with failure probability
// ≤ delta on every shard.
func NewCountMin(eps, delta float64, cfg Config) (*CountMin, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = 32
	}
	seed := cfg.Seed
	proto := countmin.NewWithError(eps, delta, seed)
	width, depth := proto.Width(), proto.Depth()
	return &CountMin{
		Sharded: newSharded[uint64](&cfg, width,
			func(int) *countmin.Composable {
				return countmin.NewComposable(width, depth, seed)
			},
			func() *countmin.Sketch { return countmin.New(width, depth, seed) },
		),
		seed: seed,
	}, nil
}

// routeKey maps a raw key to its owning shard. Count-Min elements travel as
// raw keys (each row re-hashes internally), so routing hashes the key first.
func (c *CountMin) routeKey(key uint64) uint64 {
	return murmur.HashUint64(key, c.seed)
}

// Update adds one occurrence of key on writer lane lane.
func (c *CountMin) Update(lane int, key uint64) {
	c.update(lane, c.routeKey(key), key)
}

// UpdateString adds one occurrence of a string key on writer lane lane.
func (c *CountMin) UpdateString(lane int, key string) {
	h := murmur.HashString(key, c.seed)
	c.update(lane, c.routeKey(h), h)
}

// Estimate returns the frequency estimate of key — wait-free, never
// underestimating the propagated prefix of the key's updates, with the
// tight single-shard staleness bound r (not S·r). No accumulator involved:
// the owning shard's counters are read directly.
//
// Across resizes the owning shard changes with the routing modulus, so the
// estimate sums the contributions that can hold the key's counts: the
// current epoch's owning shard, the draining epoch's owning shard while a
// Resize transition is in flight, and the legacy sketch holding all retired
// epochs' counters. Each term is itself a never-underestimating Count-Min
// read, so the sum never underestimates either; the price of resharding is
// that the overestimation error after a resize is bounded by ε·N over the
// legacy (whole retired stream) rather than ε·N_shard. The per-key
// staleness bound is ShardRelaxation(): r in steady state, r_old + r_new
// during a transition (legacy state is exact).
func (c *CountMin) Estimate(key uint64) uint64 {
	return c.estimateHashed(c.routeKey(key), key)
}

// EstimateString is Estimate for string keys.
func (c *CountMin) EstimateString(key string) uint64 {
	h := murmur.HashString(key, c.seed)
	return c.estimateHashed(c.routeKey(h), h)
}

// estimateHashed sums the owning-shard estimates of every state component
// that can hold counts for the key: current epoch, draining epoch, legacy,
// and — when a sliding window is enabled — the window's closed-slot
// suffix-merge and resize-carry planes (closed intervals live there, not in
// the shards). Each extra term is one sequential Count-Min read of an
// immutable published accumulator, so the read stays wait-free.
func (c *CountMin) estimateHashed(routeHash, key uint64) uint64 {
	st := c.st.Load()
	est := st.comps[st.g.route(routeHash)].Estimate(key)
	if st.old != nil {
		est += st.old.comps[st.old.g.route(routeHash)].Estimate(key)
	}
	if st.hasLegacy {
		est += st.legacy.Estimate(key)
	}
	if w := st.win; w != nil {
		if w.hasMerged {
			est += w.merged.Estimate(key)
		}
		if w.hasCarry {
			est += w.carry.Estimate(key)
		}
	}
	return est
}

// N returns the total weight across the sketch's entire state: legacy
// (retired epochs), the draining epoch during a Resize transition, and
// every current shard. As a cross-shard aggregate it reflects all but at
// most Relaxation() of the completed updates.
func (c *CountMin) N() uint64 {
	st := c.st.Load()
	var total uint64
	if st.hasLegacy {
		total += st.legacy.N()
	}
	if w := st.win; w != nil {
		if w.hasMerged {
			total += w.merged.N()
		}
		if w.hasCarry {
			total += w.carry.N()
		}
	}
	if st.old != nil {
		for _, comp := range st.old.comps {
			total += comp.N()
		}
	}
	for _, comp := range st.comps {
		total += comp.N()
	}
	return total
}

// Merged folds every shard's counters into one sequential sketch (wait-free
// per counter): the element-wise sum summarises the whole stream modulo the
// S·r staleness window. It folds into a fresh (non-pooled) sketch because
// the result escapes to the caller; use QueryInto with a reused accumulator
// for the allocation-free aggregate path.
func (c *CountMin) Merged() *countmin.Sketch {
	acc := c.NewAccumulator()
	c.MergeInto(acc)
	return acc
}

// UpdateBatch adds one occurrence of each key on writer lane lane,
// equivalent to per-item Update calls in order but with per-item
// coordination amortised to per-chunk (see Sharded.updateBatch).
func (c *CountMin) UpdateBatch(lane int, keys []uint64) {
	c.updateBatch(lane, keys, c.routeKey)
}
