package shard_test

// Fuzzed merge-into equivalence: arbitrary key streams (duplicates, skew,
// any byte pattern) through arbitrary shard counts must leave the pooled,
// fresh-accumulator and reused-accumulator query paths in exact agreement
// after Close — for the exact-mode Θ sketch also with the true distinct
// count, and for Count-Min with per-key exactness of path agreement.

import (
	"encoding/binary"
	"testing"

	"fastsketches/internal/shard"
)

// fuzzKeys derives a key stream from raw fuzz bytes: one key per 2-byte
// window, so small inputs still produce collisions and duplicates.
func fuzzKeys(data []byte) []uint64 {
	if len(data) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(data))
	for i := 0; i+2 <= len(data); i += 2 {
		keys = append(keys, uint64(binary.LittleEndian.Uint16(data[i:])))
	}
	if len(data)%2 == 1 {
		keys = append(keys, uint64(data[len(data)-1]))
	}
	return keys
}

func FuzzMergeIntoEquivalence(f *testing.F) {
	f.Add([]byte("hello sharded sketches"), uint8(2))
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 0}, uint8(1))
	f.Add([]byte{255, 255, 17, 3, 9, 200, 42, 42, 42, 42}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, shardByte uint8) {
		keys := fuzzKeys(data)
		if len(keys) == 0 {
			t.Skip()
		}
		if len(keys) > 1000 {
			// Keep the total distinct count inside exact mode (< 2k for the
			// lgK=10 shard gadgets and the merge Union), so Θ equality with
			// the true distinct count holds on every path.
			keys = keys[:1000]
		}
		S := 1 + int(shardByte)%4
		cfg := shard.Config{Shards: S, MaxError: 1}

		// Θ: keys are ≤ 16-bit so distincts stay below k=2^10·2 per shard →
		// exact mode; the merged estimate must equal the true distinct count
		// on every path.
		th, err := shard.NewTheta(10, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := shard.NewCountMin(0.05, 0.1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		distinct := make(map[uint64]int, len(keys))
		for _, k := range keys {
			th.Update(0, k)
			cm.Update(0, k)
			distinct[k]++
		}
		th.Close()
		cm.Close()

		thReused := th.NewAccumulator()
		cmReused := cm.NewAccumulator()
		for q := 0; q < 3; q++ {
			want := float64(len(distinct))
			thFresh := th.NewAccumulator()
			th.MergeInto(thFresh)
			th.QueryInto(thReused)
			if got := th.Estimate(); got != want || thFresh.Estimate() != want || thReused.Estimate() != want {
				t.Fatalf("theta query %d: pooled %v, fresh %v, reused %v, want %v",
					q, got, thFresh.Estimate(), thReused.Estimate(), want)
			}

			cmFresh := cm.Merged()
			cm.QueryInto(cmReused)
			if cmFresh.N() != uint64(len(keys)) || cmReused.N() != uint64(len(keys)) {
				t.Fatalf("countmin query %d: fresh N %d, reused N %d, want %d",
					q, cmFresh.N(), cmReused.N(), len(keys))
			}
			probe := keys[q%len(keys)]
			if cmFresh.Estimate(probe) != cmReused.Estimate(probe) {
				t.Fatalf("countmin key %d: fresh %d != reused %d",
					probe, cmFresh.Estimate(probe), cmReused.Estimate(probe))
			}
			if cmReused.Estimate(probe) < uint64(distinct[probe]) {
				t.Fatalf("countmin key %d: merged estimate %d underestimates true %d",
					probe, cmReused.Estimate(probe), distinct[probe])
			}
		}
	})
}
