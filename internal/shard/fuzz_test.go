package shard_test

// Fuzzed merge-into equivalence: arbitrary key streams (duplicates, skew,
// any byte pattern) through arbitrary shard counts must leave the pooled,
// fresh-accumulator and reused-accumulator query paths in exact agreement
// after Close — for the exact-mode Θ sketch also with the true distinct
// count, and for Count-Min with per-key exactness of path agreement.

import (
	"encoding/binary"
	"testing"

	"fastsketches/internal/shard"
)

// fuzzKeys derives a key stream from raw fuzz bytes: one key per 2-byte
// window, so small inputs still produce collisions and duplicates.
func fuzzKeys(data []byte) []uint64 {
	if len(data) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(data))
	for i := 0; i+2 <= len(data); i += 2 {
		keys = append(keys, uint64(binary.LittleEndian.Uint16(data[i:])))
	}
	if len(data)%2 == 1 {
		keys = append(keys, uint64(data[len(data)-1]))
	}
	return keys
}

func FuzzMergeIntoEquivalence(f *testing.F) {
	f.Add([]byte("hello sharded sketches"), uint8(2))
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 0}, uint8(1))
	f.Add([]byte{255, 255, 17, 3, 9, 200, 42, 42, 42, 42}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, shardByte uint8) {
		keys := fuzzKeys(data)
		if len(keys) == 0 {
			t.Skip()
		}
		if len(keys) > 1000 {
			// Keep the total distinct count inside exact mode (< 2k for the
			// lgK=10 shard gadgets and the merge Union), so Θ equality with
			// the true distinct count holds on every path.
			keys = keys[:1000]
		}
		S := 1 + int(shardByte)%4
		cfg := shard.Config{Shards: S, MaxError: 1}

		// Θ: keys are ≤ 16-bit so distincts stay below k=2^10·2 per shard →
		// exact mode; the merged estimate must equal the true distinct count
		// on every path.
		th, err := shard.NewTheta(10, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := shard.NewCountMin(0.05, 0.1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		distinct := make(map[uint64]int, len(keys))
		for _, k := range keys {
			th.Update(0, k)
			cm.Update(0, k)
			distinct[k]++
		}
		th.Close()
		cm.Close()

		thReused := th.NewAccumulator()
		cmReused := cm.NewAccumulator()
		for q := 0; q < 3; q++ {
			want := float64(len(distinct))
			thFresh := th.NewAccumulator()
			th.MergeInto(thFresh)
			th.QueryInto(thReused)
			if got := th.Estimate(); got != want || thFresh.Estimate() != want || thReused.Estimate() != want {
				t.Fatalf("theta query %d: pooled %v, fresh %v, reused %v, want %v",
					q, got, thFresh.Estimate(), thReused.Estimate(), want)
			}

			cmFresh := cm.Merged()
			cm.QueryInto(cmReused)
			if cmFresh.N() != uint64(len(keys)) || cmReused.N() != uint64(len(keys)) {
				t.Fatalf("countmin query %d: fresh N %d, reused N %d, want %d",
					q, cmFresh.N(), cmReused.N(), len(keys))
			}
			probe := keys[q%len(keys)]
			if cmFresh.Estimate(probe) != cmReused.Estimate(probe) {
				t.Fatalf("countmin key %d: fresh %d != reused %d",
					probe, cmFresh.Estimate(probe), cmReused.Estimate(probe))
			}
			if cmReused.Estimate(probe) < uint64(distinct[probe]) {
				t.Fatalf("countmin key %d: merged estimate %d underestimates true %d",
					probe, cmReused.Estimate(probe), distinct[probe])
			}
		}
	})
}

// FuzzResizeEquivalence drives live resharding at arbitrary points of
// arbitrary streams: the fuzzer picks the initial shard count, two resize
// target counts and the stream positions where the resizes happen. However
// the epoch swaps interleave with the stream, the drained state must stay
// lossless — the exact-mode Θ estimate equals the true distinct count, the
// Count-Min totals and reference per-key aggregates are exact, and the
// pooled/fresh/reused query paths agree.
func FuzzResizeEquivalence(f *testing.F) {
	f.Add([]byte("resize me under fire"), uint8(2), uint8(6), uint8(1), uint16(5), uint16(11))
	f.Add([]byte{9, 9, 9, 9, 0, 1, 2, 3, 4, 5, 6, 7}, uint8(1), uint8(8), uint8(3), uint16(0), uint16(3))
	f.Add([]byte{255, 0, 255, 0, 42}, uint8(4), uint8(4), uint8(2), uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, s0, s1, s2 uint8, cut1, cut2 uint16) {
		keys := fuzzKeys(data)
		if len(keys) == 0 {
			t.Skip()
		}
		if len(keys) > 1000 {
			keys = keys[:1000]
		}
		S0 := 1 + int(s0)%6
		resizes := map[int]int{ // stream position → new shard count
			int(cut1) % len(keys): 1 + int(s1)%6,
			int(cut2) % len(keys): 1 + int(s2)%6,
		}
		th, err := shard.NewTheta(10, shard.Config{Shards: S0, MaxError: 1})
		if err != nil {
			t.Fatal(err)
		}
		cm, err := shard.NewCountMin(0.05, 0.1, shard.Config{Shards: S0, MaxError: 1})
		if err != nil {
			t.Fatal(err)
		}
		distinct := make(map[uint64]int, len(keys))
		for i, k := range keys {
			if S, ok := resizes[i]; ok {
				if err := th.Resize(S); err != nil {
					t.Fatal(err)
				}
				if err := cm.Resize(S); err != nil {
					t.Fatal(err)
				}
			}
			th.Update(0, k)
			cm.Update(0, k)
			distinct[k]++
		}
		th.Close()
		cm.Close()

		want := float64(len(distinct))
		thReused := th.NewAccumulator()
		th.QueryInto(thReused)
		thFresh := th.NewAccumulator()
		th.MergeInto(thFresh)
		if got := th.Estimate(); got != want || thFresh.Estimate() != want || thReused.Estimate() != want {
			t.Fatalf("theta after resizes: pooled %v, fresh %v, reused %v, want %v",
				got, thFresh.Estimate(), thReused.Estimate(), want)
		}
		if got := cm.N(); got != uint64(len(keys)) {
			t.Fatalf("countmin N after resizes = %d, want %d", got, len(keys))
		}
		cmMerged := cm.Merged()
		for k, n := range distinct {
			if got := cm.Estimate(k); got < uint64(n) {
				t.Fatalf("countmin key %d: estimate %d underestimates true %d", k, got, n)
			} else if agg := cmMerged.Estimate(k); got > agg {
				t.Fatalf("countmin key %d: estimate %d exceeds aggregate %d", k, got, agg)
			}
		}
	})
}
