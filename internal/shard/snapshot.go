package shard

import (
	"fmt"

	"fastsketches/internal/countmin"
	"fastsketches/internal/hll"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/theta"
)

// Snapshot export/import for sharded sketches — the shard layer of the
// registry checkpoint plane. Export folds the sketch's entire published
// state (legacy ∪ draining epoch ∪ current shards) through a pooled
// accumulator and hands the accumulator's ExportTo body to the caller;
// import folds a snapshot body into the sketch's legacy accumulator — the
// same plane a Resize drains retired epochs into — so restored state is
// exact and adds no staleness, and the sketch keeps serving reads and writes
// throughout.
//
// The export deliberately folds live shard snapshots (mergeEpoch), never a
// materialized view: a checkpoint's fold floor must be the S·r relaxation
// bound, independent of any view's refresh lag.

// ImportLegacy folds externally sourced state into the sketch's legacy
// accumulator. fill receives a private accumulator already holding the
// current legacy state (if any) and folds the imported state into it; if
// fill returns an error the sketch is unchanged. On success the new legacy
// is published atomically: concurrent queries see the imported state either
// entirely or not at all, and ingestion is never paused. Serialised with
// Resize/Close; importing after Close is an error.
func (s *Sharded[T, A, C]) ImportLegacy(fill func(A) error) error {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if s.closed {
		return fmt.Errorf("shard: ImportLegacy after Close")
	}
	cur := s.st.Load()
	// The new legacy must be a fresh, never-pooled accumulator: once
	// published it is shared read-only by every query (same rule as Resize).
	legacy := s.mkAcc()
	if cur.hasLegacy {
		cur.legacy.FoldInto(legacy)
	}
	if err := fill(legacy); err != nil {
		return err
	}
	next := &epochState[T, A, C]{
		comps: cur.comps, g: cur.g, old: cur.old,
		legacy: legacy, hasLegacy: true,
		basePressure: cur.basePressure, win: cur.win,
	}
	s.st.Store(next)
	// A materialized view, if enabled, picks the import up on its next
	// refresh; fold it in eagerly so view-served queries don't lag the
	// import by a refresh interval.
	s.RefreshViewNow()
	return nil
}

// ViewSettings returns the ViewConfig a currently enabled view was built
// with, and whether one is enabled — the introspection hook checkpointing
// needs to record view settings for restore.
func (s *Sharded[T, A, C]) ViewSettings() (ViewConfig, bool) {
	vr := s.vr.Load()
	if vr == nil {
		return ViewConfig{}, false
	}
	return vr.cfg, true
}

// appendSnapshot is the shared export path: fold the entire published state
// into a pooled accumulator, append its export body to dst, release the
// accumulator. Steady-state zero-alloc once dst has grown to the working
// size.
func appendSnapshot[T any, A interface {
	Accumulator[A]
	ExportTo([]byte) []byte
}, C Mergeable[T, A]](s *Sharded[T, A, C], dst []byte) []byte {
	acc := s.acquire()
	mergeEpoch(s.st.Load(), acc)
	dst = acc.ExportTo(dst)
	s.release(acc)
	return dst
}

// AppendSnapshot appends the sketch's merged snapshot body (theta.Union
// ExportTo layout) to dst.
func (t *Theta) AppendSnapshot(dst []byte) []byte { return appendSnapshot(t.Sharded, dst) }

// ImportSnapshot folds a snapshot body produced by AppendSnapshot into the
// sketch's legacy state. Typed errors (theta.ErrCorrupt,
// theta.ErrSnapshotMismatch) on invalid input; the sketch is unchanged on
// error.
func (t *Theta) ImportSnapshot(blob []byte) error {
	return t.ImportLegacy(func(u *theta.Union) error { return u.ImportFrom(blob) })
}

// AppendSnapshot appends the sketch's merged snapshot body (hll.Sketch
// ExportTo layout) to dst.
func (h *HLL) AppendSnapshot(dst []byte) []byte { return appendSnapshot(h.Sharded, dst) }

// ImportSnapshot folds a snapshot body produced by AppendSnapshot into the
// sketch's legacy state.
func (h *HLL) ImportSnapshot(blob []byte) error {
	return h.ImportLegacy(func(sk *hll.Sketch) error { return sk.ImportFrom(blob) })
}

// AppendSnapshot appends the sketch's merged snapshot body
// (quantiles.Accumulator ExportTo layout) to dst.
func (q *Quantiles) AppendSnapshot(dst []byte) []byte { return appendSnapshot(q.Sharded, dst) }

// ImportSnapshot folds a snapshot body produced by AppendSnapshot into the
// sketch's legacy state.
func (q *Quantiles) ImportSnapshot(blob []byte) error {
	return q.ImportLegacy(func(a *quantiles.Accumulator) error { return a.ImportFrom(blob) })
}

// AppendSnapshot appends the sketch's merged snapshot body (countmin.Sketch
// ExportTo layout) to dst.
func (c *CountMin) AppendSnapshot(dst []byte) []byte { return appendSnapshot(c.Sharded, dst) }

// ImportSnapshot folds a snapshot body produced by AppendSnapshot into the
// sketch's legacy state.
func (c *CountMin) ImportSnapshot(blob []byte) error {
	return c.ImportLegacy(func(sk *countmin.Sketch) error { return sk.ImportFrom(blob) })
}
