package shard_test

// Merge-into equivalence suite: for every family, the three merged-query
// paths — pooled (family query methods), fresh accumulator per query
// (NewAccumulator + MergeInto), and one caller-owned accumulator reused via
// QueryInto across 100 queries — must agree with each other exactly, and
// with a sequential reference sketch over the same stream where the family
// is lossless. This is the contract that makes the zero-allocation query
// plane safe: accumulator reuse must be observationally invisible.

import (
	"math"
	"testing"

	"fastsketches/internal/countmin"
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/shard"
	"fastsketches/internal/theta"
)

const reusedQueries = 100

var shardCounts = []int{1, 3, 8}

func TestThetaMergeIntoEquivalence(t *testing.T) {
	for _, S := range shardCounts {
		t.Run(map[int]string{1: "1-shard", 3: "3-shard", 8: "8-shard"}[S], func(t *testing.T) {
			const n = 3000 // < k per shard and < union k → exact mode throughout
			sk, err := shard.NewTheta(12, shard.Config{Shards: S, MaxError: 1})
			if err != nil {
				t.Fatal(err)
			}
			seq := theta.NewQuickSelect(12, murmur.DefaultSeed)
			for i := 0; i < n; i++ {
				sk.Update(0, uint64(i))
				seq.Update(uint64(i))
			}
			sk.Close()
			want := seq.Estimate()
			if want != n {
				t.Fatalf("sequential reference not exact: %v", want)
			}
			reused := sk.NewAccumulator()
			for q := 0; q < reusedQueries; q++ {
				pooled := sk.Estimate()
				fresh := sk.NewAccumulator()
				sk.MergeInto(fresh)
				sk.QueryInto(reused)
				if pooled != want || fresh.Estimate() != want || reused.Estimate() != want {
					t.Fatalf("query %d: pooled %v, fresh %v, reused %v, want %v",
						q, pooled, fresh.Estimate(), reused.Estimate(), want)
				}
			}
		})
	}
}

func TestHLLMergeIntoEquivalence(t *testing.T) {
	for _, S := range shardCounts {
		t.Run(map[int]string{1: "1-shard", 3: "3-shard", 8: "8-shard"}[S], func(t *testing.T) {
			const n = 50000
			sk, err := shard.NewHLL(11, shard.Config{Shards: S, MaxError: 1})
			if err != nil {
				t.Fatal(err)
			}
			seq := hll.New(11, murmur.DefaultSeed)
			for i := 0; i < n; i++ {
				sk.Update(0, uint64(i))
				seq.Update(uint64(i))
			}
			sk.Close()
			want := seq.Estimate() // register-max union is lossless → exact match
			reused := sk.NewAccumulator()
			for q := 0; q < reusedQueries; q++ {
				pooled := sk.Estimate()
				fresh := sk.NewAccumulator()
				sk.MergeInto(fresh)
				sk.QueryInto(reused)
				if pooled != want || fresh.Estimate() != want || reused.Estimate() != want {
					t.Fatalf("query %d: pooled %v, fresh %v, reused %v, want %v",
						q, pooled, fresh.Estimate(), reused.Estimate(), want)
				}
			}
		})
	}
}

func TestQuantilesMergeIntoEquivalence(t *testing.T) {
	for _, S := range shardCounts {
		t.Run(map[int]string{1: "1-shard", 3: "3-shard", 8: "8-shard"}[S], func(t *testing.T) {
			const n, k = 1 << 14, 128
			sk, err := shard.NewQuantiles(k, shard.Config{Shards: S, MaxError: 1})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				sk.Update(0, float64(i))
			}
			sk.Close()
			eps := quantiles.EpsilonBound(k, n)
			reused := sk.NewAccumulator()
			for q := 0; q < reusedQueries; q++ {
				phi := float64(q) / float64(reusedQueries-1)
				pooled := sk.Quantile(phi)
				fresh := sk.NewAccumulator()
				sk.MergeInto(fresh)
				sk.QueryInto(reused)
				if fresh.Quantile(phi) != pooled || reused.Quantile(phi) != pooled {
					t.Fatalf("phi=%v: pooled %v, fresh %v, reused %v must be identical",
						phi, pooled, fresh.Quantile(phi), reused.Quantile(phi))
				}
				if reused.N() != n {
					t.Fatalf("reused accumulator N %d, want %d", reused.N(), n)
				}
				// Sequential reference: true normalized rank of the answer.
				if dev := math.Abs(pooled/float64(n) - phi); phi > 0 && phi < 1 && dev > eps+1.0/float64(n) {
					t.Errorf("phi=%v: quantile %v deviates %.4f > eps %.4f", phi, pooled, dev, eps)
				}
			}
		})
	}
}

func TestCountMinMergeIntoEquivalence(t *testing.T) {
	for _, S := range shardCounts {
		t.Run(map[int]string{1: "1-shard", 3: "3-shard", 8: "8-shard"}[S], func(t *testing.T) {
			const keys, reps = 128, 37
			sk, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: S, MaxError: 1})
			if err != nil {
				t.Fatal(err)
			}
			seq := countmin.NewWithError(0.01, 0.01, murmur.DefaultSeed)
			for r := 0; r < reps; r++ {
				for k := uint64(0); k < keys; k++ {
					sk.Update(0, k)
					seq.Update(k)
				}
			}
			sk.Close()
			reused := sk.NewAccumulator()
			for q := 0; q < reusedQueries; q++ {
				fresh := sk.Merged()
				sk.QueryInto(reused)
				if fresh.N() != seq.N() || reused.N() != seq.N() {
					t.Fatalf("query %d: fresh N %d, reused N %d, sequential %d",
						q, fresh.N(), reused.N(), seq.N())
				}
				key := uint64(q % keys)
				if fresh.Estimate(key) != seq.Estimate(key) || reused.Estimate(key) != seq.Estimate(key) {
					t.Fatalf("query %d key %d: fresh %d, reused %d, sequential %d",
						q, key, fresh.Estimate(key), reused.Estimate(key), seq.Estimate(key))
				}
			}
		})
	}
}

func TestMergeIntoAccumulatesAcrossSketches(t *testing.T) {
	// MergeInto (unlike QueryInto) must not reset: folding two sharded
	// sketches into one accumulator summarises the union of their streams.
	a, err := shard.NewTheta(12, shard.Config{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := shard.NewTheta(12, shard.Config{Shards: 4, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a.Update(0, uint64(i))
		b.Update(0, uint64(i+500)) // overlap: union must count 1500 distinct
	}
	a.Close()
	b.Close()
	acc := a.NewAccumulator()
	a.MergeInto(acc)
	b.MergeInto(acc)
	if est := acc.Estimate(); est != 1500 {
		t.Errorf("cross-sketch union estimate %v, want exactly 1500", est)
	}
}
