package shard

import (
	"fastsketches/internal/core"
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
)

// HLL is a sharded concurrent HLL sketch: S independent concurrent HLLs
// striped by key hash, merged on query by register-wise max over per-shard
// snapshots (the standard HLL union, which is lossless).
type HLL struct {
	g     group[uint64]
	comps []*hll.Composable
	p     int
	seed  uint64
}

// NewHLL builds and starts a sharded concurrent HLL with 2^p registers per
// shard.
func NewHLL(p int, cfg Config) (*HLL, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	h := &HLL{
		comps: make([]*hll.Composable, cfg.Shards),
		p:     p,
		seed:  cfg.Seed,
	}
	globals := make([]core.Global[uint64], cfg.Shards)
	for i := range h.comps {
		c := hll.NewComposable(p, cfg.Seed)
		c.EnableSnapshots()
		h.comps[i] = c
		globals[i] = c
	}
	h.g = newGroup[uint64](&cfg, 1<<p, globals)
	return h, nil
}

// Update ingests a uint64 key on writer lane lane.
func (h *HLL) Update(lane int, key uint64) {
	hash := murmur.HashUint64(key, h.seed)
	h.g.update(lane, hash, hash)
}

// UpdateString ingests a string key on writer lane lane.
func (h *HLL) UpdateString(lane int, key string) {
	hash := murmur.HashString(key, h.seed)
	h.g.update(lane, hash, hash)
}

// Estimate answers the merged distinct-count query by folding every shard's
// register snapshot into a fresh accumulator. The result reflects all but at
// most Relaxation() = S·2·N·b of the updates completed before the call.
func (h *HLL) Estimate() float64 {
	acc := hll.New(h.p, h.seed)
	for _, c := range h.comps {
		c.SnapshotMerge(acc)
	}
	return acc.Estimate()
}

// Merged returns the merged register snapshot as a standalone sequential
// sketch. Wait-free, like Estimate.
func (h *HLL) Merged() *hll.Sketch {
	acc := hll.New(h.p, h.seed)
	for _, c := range h.comps {
		c.SnapshotMerge(acc)
	}
	return acc
}

// Relaxation returns the combined staleness bound S·r for merged queries.
func (h *HLL) Relaxation() int { return h.g.relaxation() }

// Shards returns S.
func (h *HLL) Shards() int { return len(h.comps) }

// Eager reports whether every shard is still exact (eager phase).
func (h *HLL) Eager() bool { return h.g.eager() }

// Close stops all shard propagators and drains every buffer.
func (h *HLL) Close() { h.g.close() }
