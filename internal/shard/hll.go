package shard

import (
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
)

// HLL is a sharded concurrent HLL sketch: S independent concurrent HLLs
// striped by key hash, merged on query by register-wise max over per-shard
// snapshots (the standard HLL union, which is lossless). It is a thin
// descriptor over the generic Sharded layer: the composable is
// hll.Composable with snapshots enabled, the accumulator a sequential
// hll.Sketch whose register array is zeroed and refolded per query.
type HLL struct {
	*Sharded[uint64, *hll.Sketch, *hll.Composable]
	seed uint64
}

// NewHLL builds and starts a sharded concurrent HLL with 2^p registers per
// shard.
func NewHLL(p int, cfg Config) (*HLL, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	return &HLL{
		Sharded: newSharded[uint64](&cfg, 1<<p,
			func(int) *hll.Composable {
				c := hll.NewComposable(p, seed)
				c.EnableSnapshots()
				return c
			},
			func() *hll.Sketch { return hll.New(p, seed) },
		),
		seed: seed,
	}, nil
}

// Update ingests a uint64 key on writer lane lane.
func (h *HLL) Update(lane int, key uint64) {
	hash := murmur.HashUint64(key, h.seed)
	h.update(lane, hash, hash)
}

// UpdateString ingests a string key on writer lane lane.
func (h *HLL) UpdateString(lane int, key string) {
	hash := murmur.HashString(key, h.seed)
	h.update(lane, hash, hash)
}

// Estimate answers the merged distinct-count query: every shard's register
// snapshot is folded by register-wise max into a pooled accumulator sketch
// that is reused across queries (registers zeroed before each fold), so the
// steady-state query path allocates nothing. Accumulator reuse does not
// change the answer — register-max into a zeroed array is equivalent to a
// fresh accumulator per query — nor the staleness contract: the result
// still reflects all but at most Relaxation() = S·r = S·2·N·b of the
// updates completed before the call.
func (h *HLL) Estimate() float64 {
	acc := h.acquire()
	h.MergeInto(acc)
	est := acc.Estimate()
	h.release(acc)
	return est
}

// Merged returns the merged register snapshot as a standalone sequential
// sketch. Wait-free, like Estimate; it folds into a fresh (non-pooled)
// sketch because the result escapes to the caller.
func (h *HLL) Merged() *hll.Sketch {
	acc := h.NewAccumulator()
	h.MergeInto(acc)
	return acc
}

// UpdateBatch ingests a contiguous chunk of uint64 keys on writer lane lane,
// equivalent to per-item Update calls in order but with per-item
// coordination amortised to per-chunk (see Sharded.updateBatch). keys is
// consumed as scratch: the call overwrites its contents with the keys'
// hashes while routing.
func (h *HLL) UpdateBatch(lane int, keys []uint64) {
	for i, k := range keys {
		keys[i] = murmur.HashUint64(k, h.seed)
	}
	h.updateBatch(lane, keys, func(hash uint64) uint64 { return hash })
}
