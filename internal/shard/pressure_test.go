package shard_test

// Tests for the sharded pressure plane: Sharded.Pressure sums per-shard
// framework counters plus the carried base of retired epochs, so the
// sketch-level counters stay monotonic and exact across live resizes —
// the property the autoscale controller's rate sampling depends on.

import (
	"runtime"
	"sync"
	"testing"

	"fastsketches/internal/core"
	"fastsketches/internal/shard"
)

func TestShardedPressureExactAfterClose(t *testing.T) {
	// Count-Min never pre-filters, so every update must land in both
	// counters once drained.
	sk, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: 4, Writers: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sk.Update(w, uint64(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	sk.Close()
	if p := sk.Pressure(); p.Ingested != 2*per || p.Merged != 2*per {
		t.Errorf("pressure after close = %+v, want Ingested == Merged == %d", p, 2*per)
	}
}

func TestShardedPressureMonotonicAcrossResize(t *testing.T) {
	// A resize retires an epoch; its counters must move into the base on the
	// same epoch swap, so sketch-level samples never go backwards and the
	// grand total stays exact.
	sk, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: 2, Writers: 1, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	const phase = 4000
	for i := 0; i < phase; i++ {
		sk.Update(0, uint64(i))
	}
	before := sk.Pressure()
	for _, s := range []int{8, 1, 3} {
		if err := sk.Resize(s); err != nil {
			t.Fatal(err)
		}
		p := sk.Pressure()
		if p.Ingested < before.Ingested || p.Merged < before.Merged {
			t.Fatalf("pressure went backwards across Resize(%d): %+v after %+v", s, p, before)
		}
		before = p
		for i := 0; i < phase; i++ {
			sk.Update(0, uint64(i))
		}
	}
	sk.Close()
	if p := sk.Pressure(); p.Ingested != 4*phase || p.Merged != 4*phase {
		t.Errorf("final pressure = %+v, want Ingested == Merged == %d", p, 4*phase)
	}
}

func TestShardedPressureSamplerRacesResize(t *testing.T) {
	// Live samplers race writers and a resizer; every sample must be
	// monotonic with non-negative backlog, across epoch swaps. Run under
	// -race in CI.
	sk, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: 2, Writers: 2, MaxError: 1, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		var last core.PressureSample
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := sk.Pressure()
			if p.Ingested < last.Ingested || p.Merged < last.Merged {
				t.Errorf("pressure went backwards: %+v after %+v", p, last)
				return
			}
			last = p
			runtime.Gosched()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				sk.Update(w, uint64(w)<<40|uint64(i))
			}
		}(w)
	}
	for _, s := range []int{6, 1, 4} {
		if err := sk.Resize(s); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
}

func TestShardRelaxationAcrossResize(t *testing.T) {
	// ShardRelaxation is the per-shard r = 2·N·b: independent of S, so it
	// must survive any resize unchanged (the transitional r_old + r_new
	// window is only observable mid-drain, which Resize does not expose
	// once it has returned).
	sk, err := shard.NewTheta(12, shard.Config{Shards: 4, Writers: 3, BufferSize: 5, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	want := 2 * 3 * 5
	if got := sk.ShardRelaxation(); got != want {
		t.Fatalf("ShardRelaxation = %d, want %d", got, want)
	}
	if got := sk.Relaxation(); got != 4*want {
		t.Fatalf("Relaxation = %d, want S·r = %d", got, 4*want)
	}
	if err := sk.Resize(7); err != nil {
		t.Fatal(err)
	}
	if got := sk.ShardRelaxation(); got != want {
		t.Errorf("ShardRelaxation after resize = %d, want %d", got, want)
	}
	if got := sk.Relaxation(); got != 7*want {
		t.Errorf("Relaxation after resize = %d, want %d", got, 7*want)
	}
}
