package shard_test

// Relaxation-bound stress suite: the adversary package drives the sharded
// registry with concurrent writers and queriers and checks EVERY merged
// query against the combined staleness bound S·r = S·2·N·b — and against
// exactness during the eager phase. Run with -race in CI.

import (
	"testing"

	"fastsketches/internal/adversary"
)

func TestStressCountTotalsBound(t *testing.T) {
	cfg := adversary.StressConfig{
		Shards: 4, Writers: 4, BufferSize: 4,
		UpdatesPerWriter: 20000, Queriers: 2,
		MaxError: 1.0, // lazy from the first update
	}
	if testing.Short() {
		cfg.UpdatesPerWriter = 4000
	}
	rep, err := adversary.StressCountTotals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("countmin stress: %d queries, bound S·r=%d, worst deficit %d",
		rep.Queries, rep.Bound, rep.WorstDeficit)
	if rep.Queries == 0 {
		t.Fatal("queriers never ran")
	}
	if rep.LowerViolations != 0 {
		t.Errorf("%d/%d queries missed more than S·r=%d completed updates (worst deficit %d)",
			rep.LowerViolations, rep.Queries, rep.Bound, rep.WorstDeficit)
	}
	if rep.UpperViolations != 0 {
		t.Errorf("%d/%d queries reported more weight than was ever started",
			rep.UpperViolations, rep.Queries)
	}
}

func TestStressCountTotalsEagerPrologueExact(t *testing.T) {
	rep, err := adversary.StressCountTotals(adversary.StressConfig{
		Shards: 4, Writers: 4, BufferSize: 4,
		UpdatesPerWriter: 8000, Queriers: 2,
		MaxError: 0.1, // eager for ≈2/e² updates per shard first
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("countmin eager prologue: %d exact queries, then %d lazy queries within S·r=%d",
		rep.EagerQueries, rep.Queries, rep.Bound)
	if rep.EagerQueries == 0 {
		t.Fatal("eager prologue never ran")
	}
	if rep.EagerViolations != 0 {
		t.Errorf("%d/%d eager-phase queries were not exact", rep.EagerViolations, rep.EagerQueries)
	}
	if rep.LowerViolations != 0 || rep.UpperViolations != 0 {
		t.Errorf("lazy-phase violations: %d lower, %d upper (bound %d)",
			rep.LowerViolations, rep.UpperViolations, rep.Bound)
	}
}

func TestStressThetaDistinctBound(t *testing.T) {
	rep, err := adversary.StressThetaDistinct(adversary.StressConfig{
		Shards: 4, Writers: 4, BufferSize: 4, Queriers: 2,
		MaxError: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("theta stress: %d queries, bound S·r=%d, worst deficit %d",
		rep.Queries, rep.Bound, rep.WorstDeficit)
	if rep.Queries == 0 {
		t.Fatal("queriers never ran")
	}
	if rep.LowerViolations != 0 {
		t.Errorf("%d/%d merged estimates missed more than S·r=%d completed updates",
			rep.LowerViolations, rep.Queries, rep.Bound)
	}
	if rep.UpperViolations != 0 {
		t.Errorf("%d/%d merged estimates exceeded started updates", rep.UpperViolations, rep.Queries)
	}
}

func TestStressThetaEagerPrologueExact(t *testing.T) {
	rep, err := adversary.StressThetaDistinct(adversary.StressConfig{
		Shards: 2, Writers: 2, BufferSize: 4, Queriers: 2,
		MaxError: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("theta eager prologue: %d exact queries, then %d lazy queries within S·r=%d",
		rep.EagerQueries, rep.Queries, rep.Bound)
	if rep.EagerQueries == 0 {
		t.Fatal("eager prologue never ran")
	}
	if rep.EagerViolations != 0 {
		t.Errorf("%d/%d eager-phase merged estimates were not exact",
			rep.EagerViolations, rep.EagerQueries)
	}
	if rep.LowerViolations != 0 || rep.UpperViolations != 0 {
		t.Errorf("lazy-phase violations: %d lower, %d upper (bound %d)",
			rep.LowerViolations, rep.UpperViolations, rep.Bound)
	}
}

func TestStressAccumulatorReuseUnderContention(t *testing.T) {
	// The pooled merge-on-query plane under heavy querier contention: many
	// goroutines hammer the sketch's accumulator pool (Estimate/N) and their
	// own reused accumulators (QueryInto) while writers ingest. Every answer
	// must stay inside the c1 − S·r ≤ got ≤ c2 envelope — a pool bug that
	// handed one accumulator to two queriers, or a Reset that left residue,
	// would breach it (upper: double-counted fold; lower: clobbered fold).
	cfg := adversary.StressConfig{
		Shards: 4, Writers: 4, BufferSize: 4,
		UpdatesPerWriter: 15000, Queriers: 8,
		MaxError: 1.0,
	}
	if testing.Short() {
		cfg.UpdatesPerWriter = 3000
		cfg.Queriers = 4
	}
	for name, stress := range map[string]func(adversary.StressConfig) (adversary.StressReport, error){
		"countmin": adversary.StressCountTotals,
		"theta":    adversary.StressThetaDistinct,
	} {
		t.Run(name, func(t *testing.T) {
			rep, err := stress(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s pooled-path stress: %d queries over %d queriers, bound S·r=%d, worst deficit %d",
				name, rep.Queries, cfg.Queriers, rep.Bound, rep.WorstDeficit)
			if rep.Queries == 0 {
				t.Fatal("queriers never ran")
			}
			if rep.LowerViolations != 0 || rep.UpperViolations != 0 {
				t.Errorf("accumulator-reuse violations: %d lower, %d upper (bound %d)",
					rep.LowerViolations, rep.UpperViolations, rep.Bound)
			}
		})
	}
}

func TestStressManyShardsManyWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rep, err := adversary.StressCountTotals(adversary.StressConfig{
		Shards: 8, Writers: 8, BufferSize: 8,
		UpdatesPerWriter: 30000, Queriers: 4,
		MaxError: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("8×8 stress: %d queries, bound S·r=%d, worst deficit %d",
		rep.Queries, rep.Bound, rep.WorstDeficit)
	if rep.LowerViolations != 0 || rep.UpperViolations != 0 {
		t.Errorf("violations under 8 shards × 8 writers: %d lower, %d upper",
			rep.LowerViolations, rep.UpperViolations)
	}
}

func TestStressAutoscaleUnderFire(t *testing.T) {
	// Closed-loop resize-under-fire: the resizes are not scheduled but
	// decided live by an autoscale.Controller sampling the sketch's real
	// pressure counters (ticks paced deterministically by a manual clock).
	// Queriers race merged reads on both query planes throughout; every
	// answer must stay inside the per-epoch staleness envelope
	// c1 − 2·Max·r ≤ got ≤ c2 while the controller may be resizing, and
	// inside the tight Min·r envelope once the loop has settled. The
	// control loop itself must also behave: the burst must produce at
	// least one scale-up, the lull at least one scale-down to MinShards,
	// and no transition may breach the policy's transitional staleness cap.
	cfg := adversary.AutoscaleStressConfig{
		StressConfig: adversary.StressConfig{
			Shards: 2, Writers: 4, BufferSize: 4,
			UpdatesPerWriter: 20000, Queriers: 4,
		},
		MinShards: 1, MaxShards: 8,
	}
	if testing.Short() {
		cfg.UpdatesPerWriter = 4000
		cfg.Queriers = 2
	}
	rep, err := adversary.StressAutoscaleUnderFire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("autoscale stress: %d ups / %d downs, final S=%d, %d queries (%d post-settle), bound %d, worst deficit %d",
		rep.ScaleUps, rep.ScaleDowns, rep.FinalShards, rep.Queries, rep.PostResizeQueries, rep.Bound, rep.WorstDeficit)
	if rep.Queries == 0 {
		t.Fatal("queriers never ran")
	}
	if rep.ScaleUps == 0 {
		t.Error("the write burst never scaled up: the controller is not reacting to measured pressure")
	}
	if rep.ScaleDowns == 0 || rep.FinalShards != cfg.MinShards {
		t.Errorf("the lull did not settle at MinShards: %d downs, final S=%d, want S=%d",
			rep.ScaleDowns, rep.FinalShards, cfg.MinShards)
	}
	if rep.CapViolations != 0 {
		t.Errorf("%d controller transitions breached the transitional staleness cap", rep.CapViolations)
	}
	if rep.LowerViolations != 0 {
		t.Errorf("%d/%d answers missed more than the per-epoch bound %d (worst deficit %d)",
			rep.LowerViolations, rep.Queries, rep.Bound, rep.WorstDeficit)
	}
	if rep.UpperViolations != 0 {
		t.Errorf("%d/%d answers exceeded started updates — a controller-driven drain double-counted retired state",
			rep.UpperViolations, rep.Queries)
	}
	if rep.PostResizeQueries == 0 {
		t.Error("no queries ran against the settled MinShards·r bound")
	}
}

func TestStressResizeUnderFire(t *testing.T) {
	// Resize-under-fire: the resizer cycles the shard group through
	// grow → collapse → grow while writers hammer and queriers race merged
	// reads on both query planes. Every answer must stay inside the
	// transitional envelope c1 − (S_old + S_new)·r ≤ got ≤ c2 while drains
	// may be in flight, and inside the plain S_final·r envelope once the
	// last Resize has returned — an upper breach would mean a drain
	// double-counted retired updates, a lower breach that it lost them.
	cfg := adversary.ResizeStressConfig{
		StressConfig: adversary.StressConfig{
			Shards: 2, Writers: 4, BufferSize: 4,
			UpdatesPerWriter: 20000, Queriers: 4,
		},
		Schedule: []int{8, 1, 6},
	}
	if testing.Short() {
		cfg.UpdatesPerWriter = 4000
		cfg.Queriers = 2
	}
	for name, stress := range map[string]func(adversary.ResizeStressConfig) (adversary.StressReport, error){
		"countmin": adversary.StressResizeCountTotals,
		"theta":    adversary.StressResizeThetaDistinct,
	} {
		t.Run(name, func(t *testing.T) {
			rep, err := stress(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s resize stress: %d resizes, %d queries (%d post-resize), transitional bound %d, worst deficit %d",
				name, rep.Resizes, rep.Queries, rep.PostResizeQueries, rep.Bound, rep.WorstDeficit)
			if rep.Resizes != int64(len(cfg.Schedule)) {
				t.Errorf("completed %d resizes, want %d", rep.Resizes, len(cfg.Schedule))
			}
			if rep.Queries == 0 {
				t.Fatal("queriers never ran")
			}
			if rep.LowerViolations != 0 {
				t.Errorf("%d/%d answers missed more than the transitional bound %d (worst deficit %d)",
					rep.LowerViolations, rep.Queries, rep.Bound, rep.WorstDeficit)
			}
			if rep.UpperViolations != 0 {
				t.Errorf("%d/%d answers exceeded started updates — a drain double-counted retired state",
					rep.UpperViolations, rep.Queries)
			}
		})
	}
}

func TestStressWindowRotateUnderFire(t *testing.T) {
	// Window-rotation-under-fire: queriers race the windowed total WindowN()
	// on both query planes while writers hammer the sketch, a conductor
	// expels ring slots by explicit rotation (manual clock, so no rotation
	// ever fires behind the checker's back), and — in the "resizing" variant
	// — a resizer cycles the shard group through grow → collapse → grow
	// underneath the rotator. Every answer must stay inside the documented
	// window envelope c1 − floor − bound ≤ got ≤ c2: floor the expelled-slot
	// ground truth (the "S·r + one rotation interval" bound with the
	// interval term made exact), bound the transitional 2·max(S)·r while
	// rotations or resizes may be in flight and the tight S_final·r once
	// both have quiesced. A lower breach means a rotation or its interplay
	// with a resize drain lost live-interval weight; an upper breach means a
	// slot was double-counted across the suffix-merge, carry and live
	// planes. The decayed plane is enabled throughout, racing its
	// scale-and-fold against every rotation.
	base := adversary.StressConfig{
		Shards: 2, Writers: 4, BufferSize: 4,
		UpdatesPerWriter: 20000, Queriers: 4,
	}
	if testing.Short() {
		base.UpdatesPerWriter = 4000
		base.Queriers = 2
	}
	for name, schedule := range map[string][]int{
		"rotation-only":   nil,
		"spanning-resize": {8, 1, 6},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := adversary.WindowStressConfig{
				StressConfig: base,
				Slots:        4,
				Decay:        0.5,
				Schedule:     schedule,
			}
			rep, err := adversary.StressWindowRotateUnderFire(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("window stress: %d rotations (%d expulsions), %d resizes, %d queries (%d post-settle), bound %d, worst deficit %d",
				rep.Rotations, rep.Expulsions, rep.Resizes, rep.Queries, rep.PostResizeQueries, rep.Bound, rep.WorstDeficit)
			if rep.Queries == 0 {
				t.Fatal("queriers never ran")
			}
			if rep.Expulsions == 0 {
				t.Fatalf("only %d rotations, none expelled a slot: the ring eviction path was never under fire",
					rep.Rotations)
			}
			if rep.Resizes != int64(len(schedule)) {
				t.Errorf("completed %d resizes, want %d", rep.Resizes, len(schedule))
			}
			if rep.LowerViolations != 0 {
				t.Errorf("%d/%d windowed answers missed more than the bound %d past the expelled floor (worst deficit %d) — a rotation lost live-interval weight",
					rep.LowerViolations, rep.Queries, rep.Bound, rep.WorstDeficit)
			}
			if rep.UpperViolations != 0 {
				t.Errorf("%d/%d windowed answers exceeded started updates — a slot was double-counted",
					rep.UpperViolations, rep.Queries)
			}
			if rep.PostResizeQueries == 0 {
				t.Error("no queries ran against the settled post-rotation bound")
			}
		})
	}
}

func TestStressViewUnderFire(t *testing.T) {
	// View-under-fire: merged queries are served from a materialized view
	// whose refreshes are paced explicitly by a conductor (manual clock, so
	// no refresh ever happens behind the checker's back), while writers
	// hammer the sketch and a resizer cycles the shard group through
	// grow → collapse → grow. Every answer must stay inside the documented
	// view envelope floor − bound ≤ got ≤ c2: floor is the ground truth one
	// refresh ago (the "+ one refresh interval" term made exact), bound the
	// transitional (S_old+S_new)·r while resizes may be in flight and the
	// tight S_final·r once the last drain has been re-folded into a fresh
	// publication. A lower breach means a refresh lost committed state (for
	// instance the draining epoch's legacy); an upper breach means a fold
	// double-counted.
	cfg := adversary.ViewStressConfig{
		StressConfig: adversary.StressConfig{
			Shards: 2, Writers: 4, BufferSize: 4,
			UpdatesPerWriter: 20000, Queriers: 4,
		},
		Schedule: []int{8, 1, 6},
	}
	if testing.Short() {
		cfg.UpdatesPerWriter = 4000
		cfg.Queriers = 2
	}
	rep, err := adversary.StressViewUnderFire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("view stress: %d refreshes, %d resizes, %d queries (%d post-resize), bound %d, worst deficit %d",
		rep.Refreshes, rep.Resizes, rep.Queries, rep.PostResizeQueries, rep.Bound, rep.WorstDeficit)
	if rep.Queries == 0 {
		t.Fatal("queriers never ran")
	}
	if rep.Refreshes < 2 {
		t.Fatalf("only %d refreshes published: the conductor never drove the view", rep.Refreshes)
	}
	if rep.Resizes != int64(len(cfg.Schedule)) {
		t.Errorf("completed %d resizes, want %d", rep.Resizes, len(cfg.Schedule))
	}
	if rep.LowerViolations != 0 {
		t.Errorf("%d/%d viewed answers missed more than the bound %d (worst deficit %d) — a refresh lost committed state",
			rep.LowerViolations, rep.Queries, rep.Bound, rep.WorstDeficit)
	}
	if rep.UpperViolations != 0 {
		t.Errorf("%d/%d viewed answers exceeded started updates — a refresh double-counted state",
			rep.UpperViolations, rep.Queries)
	}
	if rep.PostResizeQueries == 0 {
		t.Error("no queries ran against the settled post-resize view bound")
	}
}
