package shard

import "fastsketches/internal/theta"

// Theta is a sharded concurrent Θ sketch: S independent concurrent Θ
// sketches striped by key hash, merged on query through a Union of
// per-shard snapshots. Distinct counts are additive across shards because a
// key always routes to the same shard. It is a thin descriptor over the
// generic Sharded layer: the composable is theta.Composable with snapshots
// enabled, the accumulator is a theta.Union reset and refolded per query.
type Theta struct {
	*Sharded[uint64, *theta.Union, *theta.Composable]
	seed uint64
}

// NewTheta builds and starts a sharded concurrent Θ sketch with 2^lgK
// nominal entries per shard.
func NewTheta(lgK int, cfg Config) (*Theta, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	return &Theta{
		Sharded: newSharded[uint64](&cfg, 1<<lgK,
			func(int) *theta.Composable {
				c := theta.NewComposable(lgK, seed)
				c.EnableSnapshots()
				return c
			},
			func() *theta.Union { return theta.NewUnion(lgK, seed) },
		),
		seed: seed,
	}, nil
}

// Update ingests a uint64 key on writer lane lane.
func (t *Theta) Update(lane int, key uint64) {
	h := theta.HashKey(key, t.seed)
	t.update(lane, h, h)
}

// UpdateString ingests a string key on writer lane lane.
func (t *Theta) UpdateString(lane int, key string) {
	h := theta.HashString(key, t.seed)
	t.update(lane, h, h)
}

// Estimate answers the merged distinct-count query: every shard's published
// snapshot is folded wait-free into a pooled Union accumulator that is
// reused across queries (reset before each fold), so the steady-state query
// path allocates nothing. Accumulator reuse does not change the answer — a
// reused Union is equivalent to a fresh one per query — nor the staleness
// contract: the result still reflects all but at most
// Relaxation() = S·r = S·2·N·b of the updates completed before the call.
func (t *Theta) Estimate() float64 {
	acc := t.acquire()
	t.MergeInto(acc)
	est := acc.Estimate()
	t.release(acc)
	return est
}

// Eager reports whether every shard is still in its eager phase. While true,
// every completed update is immediately visible to merged queries; note that
// Estimate is additionally exact only while the total distinct count also
// fits the merge Union's exact mode (< 2^lgK retained) — with S shards the
// combined eager window S·2/e² can exceed that for large S, at which point
// the merged answer is a (still correct) sampled estimate.
func (t *Theta) Eager() bool { return t.Sharded.Eager() }

// Merged returns the merged snapshot as a standalone sequential sketch, for
// set operations or serialisation. Wait-free, like Estimate; it folds into
// a fresh (non-pooled) Union because the result escapes to the caller.
func (t *Theta) Merged() *theta.QuickSelect {
	u := t.NewAccumulator()
	t.MergeInto(u)
	return u.Result()
}

// UpdateBatch ingests a contiguous chunk of uint64 keys on writer lane lane,
// equivalent to per-item Update calls in order but with per-item
// coordination amortised to per-chunk (see Sharded.updateBatch). keys is
// consumed as scratch: the call overwrites its contents with the keys'
// hashes while routing.
func (t *Theta) UpdateBatch(lane int, keys []uint64) {
	for i, k := range keys {
		keys[i] = theta.HashKey(k, t.seed)
	}
	t.updateBatch(lane, keys, func(h uint64) uint64 { return h })
}
