package shard

import (
	"fastsketches/internal/core"
	"fastsketches/internal/theta"
)

// Theta is a sharded concurrent Θ sketch: S independent concurrent Θ
// sketches striped by key hash, merged on query through a Union of
// per-shard snapshots. Distinct counts are additive across shards because a
// key always routes to the same shard.
type Theta struct {
	g     group[uint64]
	comps []*theta.Composable
	lgK   int
	seed  uint64
}

// NewTheta builds and starts a sharded concurrent Θ sketch with 2^lgK
// nominal entries per shard.
func NewTheta(lgK int, cfg Config) (*Theta, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	t := &Theta{
		comps: make([]*theta.Composable, cfg.Shards),
		lgK:   lgK,
		seed:  cfg.Seed,
	}
	globals := make([]core.Global[uint64], cfg.Shards)
	for i := range t.comps {
		c := theta.NewComposable(lgK, cfg.Seed)
		c.EnableSnapshots()
		t.comps[i] = c
		globals[i] = c
	}
	t.g = newGroup[uint64](&cfg, 1<<lgK, globals)
	return t, nil
}

// Update ingests a uint64 key on writer lane lane.
func (t *Theta) Update(lane int, key uint64) {
	h := theta.HashKey(key, t.seed)
	t.g.update(lane, h, h)
}

// UpdateString ingests a string key on writer lane lane.
func (t *Theta) UpdateString(lane int, key string) {
	h := theta.HashString(key, t.seed)
	t.g.update(lane, h, h)
}

// Estimate answers the merged distinct-count query: every shard's published
// snapshot is folded wait-free into a fresh Union. The result reflects all
// but at most Relaxation() = S·2·N·b of the updates completed before the
// call.
func (t *Theta) Estimate() float64 {
	u := theta.NewUnion(t.lgK, t.seed)
	for _, c := range t.comps {
		c.SnapshotMerge(u)
	}
	return u.Estimate()
}

// Merged returns the merged snapshot as a standalone sequential sketch, for
// set operations or serialisation. Wait-free, like Estimate.
func (t *Theta) Merged() *theta.QuickSelect {
	u := theta.NewUnion(t.lgK, t.seed)
	for _, c := range t.comps {
		c.SnapshotMerge(u)
	}
	return u.Result()
}

// Relaxation returns the combined staleness bound S·r for merged queries.
func (t *Theta) Relaxation() int { return t.g.relaxation() }

// Shards returns S.
func (t *Theta) Shards() int { return len(t.comps) }

// Eager reports whether every shard is still in its eager phase. While true,
// every completed update is immediately visible to merged queries; note that
// Estimate is additionally exact only while the total distinct count also
// fits the merge Union's exact mode (< 2^lgK retained) — with S shards the
// combined eager window S·2/e² can exceed that for large S, at which point
// the merged answer is a (still correct) sampled estimate.
func (t *Theta) Eager() bool { return t.g.eager() }

// Close stops all shard propagators and drains every buffer; afterwards
// Estimate summarises the whole stream with no relaxation residue.
func (t *Theta) Close() { t.g.close() }
