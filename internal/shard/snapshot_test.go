package shard_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"fastsketches/internal/shard"
	"fastsketches/internal/theta"
)

// The shard-layer equivalence suite: export → import → query must preserve
// every family's answers. Deterministic families (HLL registers, Count-Min
// counters, eager-regime Θ) must agree exactly; quantiles within the rank
// guarantee. A quiesce (Resize) before the export makes the source state an
// exact fold of the ingested stream, so the comparisons are tight.

func TestSnapshotRoundTripTheta(t *testing.T) {
	const writers, n = 4, 3000
	src, err := shard.NewTheta(12, shard.Config{Shards: 4, Writers: writers, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	feedTheta(src, writers, n)
	if err := src.Resize(3); err != nil { // exact drain into legacy
		t.Fatal(err)
	}
	if src.Estimate() != n {
		t.Fatalf("source estimate %v, want exactly %d (eager regime)", src.Estimate(), n)
	}
	snap := src.AppendSnapshot(nil)

	dst, err := shard.NewTheta(12, shard.Config{Shards: 2, Writers: 1, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ImportSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if dst.Estimate() != n {
		t.Fatalf("imported estimate %v, want exactly %d", dst.Estimate(), n)
	}

	// Importing the same snapshot twice is a union no-op (same hash set).
	if err := dst.ImportSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if dst.Estimate() != n {
		t.Fatalf("re-imported estimate %v, want %d", dst.Estimate(), n)
	}

	// Imported state lives on the legacy plane and must survive a live
	// Resize (resize folds legacy forward) and fresh ingest on top.
	if err := dst.Resize(5); err != nil {
		t.Fatal(err)
	}
	dst.Update(0, 1<<50|7)
	if err := dst.Resize(2); err != nil { // quiesce the fresh key too
		t.Fatal(err)
	}
	if dst.Estimate() != n+1 {
		t.Fatalf("estimate after resize+ingest %v, want %d", dst.Estimate(), n+1)
	}

	// A corrupt blob is rejected with the family's typed error and the
	// sketch keeps its state.
	if err := dst.ImportSnapshot(snap[:len(snap)-3]); !errors.Is(err, theta.ErrCorrupt) {
		t.Fatalf("truncated snapshot import error = %v, want theta.ErrCorrupt", err)
	}
	if dst.Estimate() != n+1 {
		t.Fatal("rejected import mutated the sketch")
	}
}

func TestSnapshotRoundTripHLL(t *testing.T) {
	const n = 50_000
	src, err := shard.NewHLL(12, shard.Config{Shards: 4, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < n; i++ {
		src.Update(i%2, uint64(i))
	}
	if err := src.Resize(3); err != nil {
		t.Fatal(err)
	}
	snap := src.AppendSnapshot(nil)

	dst, err := shard.NewHLL(12, shard.Config{Shards: 2, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ImportSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// Registers travel exactly, so the estimates are bit-identical.
	if dst.Estimate() != src.Estimate() {
		t.Fatalf("imported estimate %v != source %v", dst.Estimate(), src.Estimate())
	}
	if math.Abs(dst.Estimate()/n-1) > 0.05 {
		t.Fatalf("estimate %v implausible for %d distinct keys", dst.Estimate(), n)
	}
}

func TestSnapshotRoundTripQuantiles(t *testing.T) {
	const n = 40_000
	src, err := shard.NewQuantiles(128, shard.Config{Shards: 4, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < n; i++ {
		src.Update(i%2, float64(i))
	}
	if err := src.Resize(3); err != nil {
		t.Fatal(err)
	}
	snap := src.AppendSnapshot(nil)

	dst, err := shard.NewQuantiles(128, shard.Config{Shards: 2, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ImportSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if dst.N() != n {
		t.Fatalf("imported N %d, want %d", dst.N(), n)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		v := dst.Quantile(phi)
		if trueRank := v / n; math.Abs(trueRank-phi) > 0.05 {
			t.Errorf("imported q(%v) = %v (true rank %v) outside the guarantee", phi, v, trueRank)
		}
	}
}

func TestSnapshotRoundTripCountMin(t *testing.T) {
	const n = 30_000
	src, err := shard.NewCountMin(0.001, 0.001, shard.Config{Shards: 4, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < n; i++ {
		src.Update(i%2, uint64(i%101))
	}
	if err := src.Resize(3); err != nil {
		t.Fatal(err)
	}
	snap := src.AppendSnapshot(nil)

	dst, err := shard.NewCountMin(0.001, 0.001, shard.Config{Shards: 2, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ImportSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if dst.N() != n {
		t.Fatalf("imported N %d, want exactly %d", dst.N(), n)
	}
	for key := uint64(0); key < 101; key++ {
		if g, w := dst.Estimate(key), src.Estimate(key); g != w {
			t.Fatalf("key %d: imported estimate %d, source %d", key, g, w)
		}
	}
}

// TestSnapshotUnderResizeFire exports while writers hammer and the shard
// count walks: every snapshot taken mid-flight must import cleanly into a
// fresh sketch whose total weight never exceeds what was ingested (the
// export is a fold of completed updates only).
func TestSnapshotUnderResizeFire(t *testing.T) {
	const writers, perWriter = 4, 30_000
	src, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: 4, Writers: writers})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				src.Update(w, uint64(i%257))
			}
		}(w)
	}
	resizerDone := make(chan struct{})
	go func() {
		defer close(resizerDone)
		for s := 1; ; s = s%8 + 1 {
			select {
			case <-stop:
				return
			default:
			}
			if err := src.Resize(s); err != nil {
				t.Errorf("resize under fire: %v", err)
				return
			}
		}
	}()

	var snap []byte
	for k := 0; k < 50; k++ {
		snap = src.AppendSnapshot(snap[:0])
		dst, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: 2, Writers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.ImportSnapshot(snap); err != nil {
			t.Fatalf("snapshot %d taken under fire does not import: %v", k, err)
		}
		if dst.N() > writers*perWriter {
			t.Fatalf("snapshot %d holds N=%d > ingested %d", k, dst.N(), writers*perWriter)
		}
		dst.Close()
	}
	wg.Wait()
	close(stop)
	<-resizerDone

	// After the stream completes, a final quiesce + snapshot is exact. Two
	// resizes to different widths: the racing resizer may have left S at
	// either target (a same-size Resize no-ops without draining), but it
	// cannot have left it at both, so at least one performs a real drain.
	if err := src.Resize(4); err != nil {
		t.Fatal(err)
	}
	if err := src.Resize(3); err != nil {
		t.Fatal(err)
	}
	dst, err := shard.NewCountMin(0.01, 0.01, shard.Config{Shards: 1, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ImportSnapshot(src.AppendSnapshot(nil)); err != nil {
		t.Fatal(err)
	}
	if dst.N() != writers*perWriter {
		t.Fatalf("final snapshot N %d, want exactly %d", dst.N(), writers*perWriter)
	}
}

// TestImportLegacyAfterClose pins the lifecycle error.
func TestImportLegacyAfterClose(t *testing.T) {
	sk, err := shard.NewTheta(12, shard.Config{Shards: 2, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := sk.AppendSnapshot(nil)
	sk.Close()
	if err := sk.ImportSnapshot(snap); err == nil {
		t.Fatal("ImportSnapshot after Close did not error")
	}
}
