package shard_test

import (
	"sync"
	"testing"

	"fastsketches/internal/shard"
)

// batchKeys feeds keys through UpdateBatch in chunks, copying each chunk
// because the Θ/HLL batched paths consume the slice as hashing scratch.
func batchKeys(update func(lane int, keys []uint64), keys []uint64, chunk int) {
	scratch := make([]uint64, chunk)
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		n := copy(scratch[:hi-lo], keys[lo:hi])
		update(0, scratch[:n])
	}
}

func seqKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys
}

// TestThetaBatchEquivalence: in the exact regime (n per shard < k) the
// batched path must land on precisely the per-item result — routing,
// filtering, and drain all agree.
func TestThetaBatchEquivalence(t *testing.T) {
	const n = 3000
	cfg := shard.Config{Shards: 4, Writers: 1, MaxError: 1}
	ref, err := shard.NewTheta(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range seqKeys(n) {
		ref.Update(0, k)
	}
	ref.Close()
	for _, chunk := range []int{1, 7, 256, 1024} {
		sk, err := shard.NewTheta(12, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batchKeys(sk.UpdateBatch, seqKeys(n), chunk)
		sk.Close()
		if got, want := sk.Estimate(), ref.Estimate(); got != want {
			t.Errorf("chunk=%d: batched estimate %v, per-item %v", chunk, got, want)
		}
	}
}

// TestThetaBatchConsumesScratch pins the documented contract that the Θ
// batched path overwrites the caller's slice with hashes: results must not
// depend on the caller reusing the mutated slice.
func TestThetaBatchConsumesScratch(t *testing.T) {
	sk, err := shard.NewTheta(12, shard.Config{Shards: 2, Writers: 1, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := seqKeys(100)
	sk.UpdateBatch(0, keys)
	mutated := false
	for i, k := range keys {
		if k != uint64(i) {
			mutated = true
			break
		}
	}
	if !mutated {
		t.Log("scratch slice was not visibly mutated; contract is may-mutate, continuing")
	}
	sk.Close()
	if est := sk.Estimate(); est != 100 {
		t.Errorf("estimate %v, want exactly 100", est)
	}
}

// TestHLLBatchEquivalence: HLL register state is a per-key max, so the final
// estimate is a pure function of the key set — batched and per-item paths
// must agree exactly at any stream size.
func TestHLLBatchEquivalence(t *testing.T) {
	const n = 50000
	cfg := shard.Config{Shards: 4, Writers: 1, MaxError: 1}
	ref, err := shard.NewHLL(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range seqKeys(n) {
		ref.Update(0, k)
	}
	ref.Close()
	sk, err := shard.NewHLL(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batchKeys(sk.UpdateBatch, seqKeys(n), 512)
	sk.Close()
	if got, want := sk.Estimate(), ref.Estimate(); got != want {
		t.Errorf("batched estimate %v, per-item %v", got, want)
	}
}

// TestCountMinBatchEquivalence: counts are sums, so per-key estimates must
// match the per-item path exactly on a duplicate-heavy stream.
func TestCountMinBatchEquivalence(t *testing.T) {
	const n, distinct = 60000, 500
	cfg := shard.Config{Shards: 4, Writers: 1, MaxError: 1}
	stream := make([]uint64, n)
	for i := range stream {
		stream[i] = uint64(i % distinct) // key k appears n/distinct times
	}
	ref, err := shard.NewCountMin(0.001, 0.01, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range stream {
		ref.Update(0, k)
	}
	ref.Close()
	sk, err := shard.NewCountMin(0.001, 0.01, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batchKeys(sk.UpdateBatch, stream, 300)
	sk.Close()
	for k := uint64(0); k < distinct; k += 17 {
		if got, want := sk.Estimate(k), ref.Estimate(k); got != want {
			t.Errorf("key %d: batched count %d, per-item %d", k, got, want)
		}
		if got := sk.Estimate(k); got < n/distinct {
			t.Errorf("key %d: count %d under true frequency %d", k, got, n/distinct)
		}
	}
}

// TestQuantilesBatchEquivalence: with a single lane both paths feed each
// shard the identical value sequence, so the summaries (and therefore every
// quantile and rank) must agree exactly.
func TestQuantilesBatchEquivalence(t *testing.T) {
	const n = 40000
	cfg := shard.Config{Shards: 4, Writers: 1, MaxError: 1}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64((i * 2654435761) % n) // fixed permutation of 0..n-1
	}
	ref, err := shard.NewQuantiles(128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		ref.Update(0, v)
	}
	ref.Close()
	sk, err := shard.NewQuantiles(128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += 777 {
		hi := lo + 777
		if hi > n {
			hi = n
		}
		chunk := make([]float64, hi-lo)
		copy(chunk, vals[lo:hi])
		sk.UpdateBatch(0, chunk)
	}
	sk.Close()
	for _, phi := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := sk.Quantile(phi), ref.Quantile(phi); got != want {
			t.Errorf("phi=%v: batched quantile %v, per-item %v", phi, got, want)
		}
	}
	for v := 0.0; v < n; v += n / 7 {
		if got, want := sk.Rank(v), ref.Rank(v); got != want {
			t.Errorf("rank(%v): batched %v, per-item %v", v, got, want)
		}
	}
}

// TestCountMinBatchConcurrentLanes drives the batched path from every lane
// concurrently (distinct per-lane scratch, shared shard group) and checks
// count conservation: CountMin never undercounts, and with more shards than
// collisions the totals stay near-exact after Close.
func TestCountMinBatchConcurrentLanes(t *testing.T) {
	const writers, perLane, distinct = 4, 30000, 64
	sk, err := shard.NewCountMin(0.0005, 0.01, shard.Config{Shards: 4, Writers: writers, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := make([]uint64, 0, 512)
			for i := 0; i < perLane; i++ {
				scratch = append(scratch, uint64(i%distinct))
				if len(scratch) == cap(scratch) {
					sk.UpdateBatch(w, scratch)
					scratch = scratch[:0]
				}
			}
			sk.UpdateBatch(w, scratch)
		}(w)
	}
	wg.Wait()
	sk.Close()
	for k := uint64(0); k < distinct; k++ {
		// Per lane, key k appears ⌊perLane/distinct⌋ times plus one more when
		// k falls inside the remainder prefix.
		want := uint64(writers * (perLane / distinct))
		if k < perLane%distinct {
			want += writers
		}
		if got := sk.Estimate(k); got < want {
			t.Errorf("key %d: count %d under true frequency %d", k, got, want)
		}
	}
}
