package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts the view refresher's two uses of time — stamping a
// published view and pacing refresh ticks — mirroring the autoscale
// controller's Clock so tests and stress drivers can pace refreshes
// deterministically (autoscale.ManualClock satisfies this interface
// structurally). Production views default to the system clock.
type Clock interface {
	Now() time.Time
	// After behaves like time.After: a channel that delivers one value once
	// d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the production Clock: real time.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ViewConfig configures a materialized merged view: a background refresher
// periodically folds the sketch's entire published state (legacy ∪ draining
// epoch ∪ current shards) into one of two dedicated accumulators and
// publishes it atomically, so merged queries become a single accumulator
// fold — O(1) in the shard count — at the price of bounded extra staleness.
type ViewConfig struct {
	// RefreshEvery is the refresher's tick interval. Defaults to 50ms.
	// A query served from the view reflects all but at most
	// S·r + (updates completed since the view's fold began) of the stream,
	// so the end-to-end staleness bound is S·r plus one refresh interval
	// (plus the fold's own duration).
	RefreshEvery time.Duration
	// MaxAge bounds how stale a published view may be before queries fall
	// back to the live S-shard fold (for example because the refresher is
	// starved or the process is suspended). 0 defaults to 4×RefreshEvery;
	// negative means views never expire (queries always use the latest
	// published view, however old — useful for deterministic tests that
	// pace refreshes manually).
	MaxAge time.Duration
	// Clock drives refresh pacing and view timestamps. Defaults to the
	// system clock.
	Clock Clock
}

func (c *ViewConfig) normalise() {
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 50 * time.Millisecond
	}
	if c.MaxAge == 0 {
		c.MaxAge = 4 * c.RefreshEvery
	}
	if c.Clock == nil {
		c.Clock = systemClock{}
	}
}

// viewBuf is one of the two merged-view accumulators the refresher
// ping-pongs between. While published (reachable through Sharded.view) its
// acc is immutable and shared read-only by every querier, exactly like a
// legacy accumulator; refs counts queriers mid-fold so the refresher can
// wait out stragglers before reusing a swapped-out buffer.
type viewBuf[A any] struct {
	acc  A
	refs atomic.Int64
	// expiresAt is the publication's expiry instant in UnixNanos (0 = never).
	// Written only while the buffer is unpublished with refs == 0, read only
	// by queriers holding a ref on the published buffer, so a plain field is
	// race-free: both transitions synchronise through the view pointer and
	// the refs counter.
	expiresAt int64
	clock     Clock
}

// viewRuntime is the per-sketch refresher state while a view is enabled.
type viewRuntime[A any] struct {
	// mu serialises refreshes (the background loop and RefreshViewNow) and
	// orders them against teardown: once stopped is set under mu, no further
	// refresh can publish.
	mu      sync.Mutex
	stopped bool

	cfg  ViewConfig
	bufs [2]*viewBuf[A]
	next int // index of the buffer the next refresh fills

	stop chan struct{}
	done chan struct{}

	// builtAt is the UnixNano timestamp of the latest published view, for
	// ViewLag. 0 until the first publish.
	builtAt atomic.Int64
}

// EnableView materializes this sketch's merged state: it performs one
// synchronous refresh (so a view is available immediately) and starts a
// background refresher that re-folds all shard snapshots every
// cfg.RefreshEvery and publishes the result atomically. While a fresh view
// is published, MergeInto/QueryInto — and every family query built on them —
// fold the single view accumulator instead of S shard snapshots: query cost
// becomes constant in S, and the staleness bound grows from S·r to
// S·r + one refresh interval (see ViewConfig).
//
// The refresher is stopped by DisableView or Close. Enabling a view on a
// sketch that already has one is an error; enabling after Close is an error.
func (s *Sharded[T, A, C]) EnableView(cfg ViewConfig) error {
	cfg.normalise()
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if s.closed {
		return fmt.Errorf("shard: EnableView after Close")
	}
	if s.vr.Load() != nil {
		return fmt.Errorf("shard: view already enabled")
	}
	vr := &viewRuntime[A]{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i := range vr.bufs {
		vr.bufs[i] = &viewBuf[A]{acc: s.mkAcc(), clock: cfg.Clock}
	}
	s.vr.Store(vr)
	s.refreshView(vr) // publish an initial view before returning
	go func() {
		defer close(vr.done)
		for {
			select {
			case <-vr.stop:
				return
			case <-cfg.Clock.After(cfg.RefreshEvery):
				s.refreshView(vr)
			}
		}
	}()
	return nil
}

// DisableView stops the refresher and unpublishes the view; subsequent
// merged queries fold live shard snapshots again (bound back to S·r).
// Returns false if no view was enabled. Idempotent and safe concurrently
// with queries: a querier mid-fold on the final published view finishes
// unharmed (the buffers are retired, never mutated again).
func (s *Sharded[T, A, C]) DisableView() bool {
	s.resizeMu.Lock()
	vr := s.vr.Load()
	if vr == nil {
		s.resizeMu.Unlock()
		return false
	}
	s.vr.Store(nil)
	s.resizeMu.Unlock()
	s.stopView(vr)
	return true
}

// stopView tears down a detached viewRuntime: stops the background loop,
// forbids further publishes, and unpublishes the view pointer.
func (s *Sharded[T, A, C]) stopView(vr *viewRuntime[A]) {
	vr.mu.Lock()
	vr.stopped = true
	vr.mu.Unlock()
	close(vr.stop)
	<-vr.done
	s.view.Store(nil)
}

// ViewEnabled reports whether a materialized view is currently enabled.
func (s *Sharded[T, A, C]) ViewEnabled() bool { return s.vr.Load() != nil }

// ViewLag returns the age of the latest published view on the view's own
// clock — the refresh component of the query-staleness bound, which an
// autoscaling policy can treat as query-side pressure. 0 when no view is
// enabled (queries fold live snapshots; no refresh lag exists).
func (s *Sharded[T, A, C]) ViewLag() time.Duration {
	vr := s.vr.Load()
	if vr == nil {
		return 0
	}
	built := vr.builtAt.Load()
	if built == 0 {
		return 0
	}
	return vr.cfg.Clock.Now().Sub(time.Unix(0, built))
}

// RefreshViewNow performs one synchronous refresh-and-publish, independent
// of the background tick — the deterministic pacing hook for tests and
// stress drivers. Returns false if no view is enabled (or it is being
// disabled concurrently).
func (s *Sharded[T, A, C]) RefreshViewNow() bool {
	vr := s.vr.Load()
	if vr == nil {
		return false
	}
	return s.refreshView(vr)
}

// refreshView builds one fresh merged view in the spare buffer and publishes
// it, retiring the previously published buffer for the next cycle.
//
// Double-buffer protocol: the refresher only ever writes the buffer that is
// NOT published. Before refilling it, it waits until no querier still holds
// a ref from the buffer's previous publication (queriers acquire with a
// ref-then-revalidate handshake against the view pointer, so once the
// pointer has moved on, the refresher observing refs == 0 means no reader
// is — or can later be — mid-fold on that buffer). The publish itself is a
// single atomic pointer store; queriers switch between consecutive views
// atomically and never observe a partially folded accumulator.
//
// Resize interaction: the fold goes through the same epoch pointer queries
// use, so it covers legacy ∪ draining old epoch ∪ current shards. If a
// Resize swaps the epoch mid-fold, the fold is rebuilt from the fresh epoch
// pointer before publishing — a view is never published from an epoch that
// was retired during its own construction, so a published view never misses
// the legacy fold of a drained epoch. Convergence: Resize serialises on
// resizeMu and drains whole shard groups, so consecutive epoch swaps are
// orders of magnitude slower than one fold; the rebuild loop terminates.
func (s *Sharded[T, A, C]) refreshView(vr *viewRuntime[A]) bool {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	if vr.stopped {
		return false
	}
	buf := vr.bufs[vr.next]
	for buf.refs.Load() != 0 {
		runtime.Gosched()
	}
	for {
		buf.acc.Reset()
		st := s.st.Load()
		mergeEpoch(st, buf.acc)
		if s.st.Load() == st {
			break
		}
	}
	now := vr.cfg.Clock.Now()
	if vr.cfg.MaxAge > 0 {
		buf.expiresAt = now.Add(vr.cfg.MaxAge).UnixNano()
	} else {
		buf.expiresAt = 0
	}
	vr.builtAt.Store(now.UnixNano())
	s.view.Store(buf)
	vr.next ^= 1
	return true
}

// acquireView returns the published view buffer with a reader ref held, or
// nil when there is no fresh view and the caller must fold live snapshots.
// The ref-then-revalidate handshake pairs with refreshView's wait: a reader
// that incremented refs re-checks that the buffer is still the published
// one; if the pointer moved (the buffer is being — or is about to be —
// refilled) it backs off without touching the accumulator.
func (s *Sharded[T, A, C]) acquireView() *viewBuf[A] {
	for range 2 {
		v := s.view.Load()
		if v == nil {
			return nil
		}
		v.refs.Add(1)
		if s.view.Load() == v {
			if v.expiresAt == 0 || v.clock.Now().UnixNano() <= v.expiresAt {
				return v
			}
			// Stale beyond MaxAge: fall back to the live fold.
			v.refs.Add(-1)
			return nil
		}
		v.refs.Add(-1)
	}
	return nil
}
