package shard

import (
	"fmt"
	"time"

	"fastsketches/internal/window"
)

// Sliding-window plane of the sharded layer. A window turns the sketch into
// a ring of per-interval sub-sketches: every Interval the rotator closes the
// live interval — an epoch swap identical to Resize's, so the drain is exact
// — into a ring slot, refreshes a materialized suffix-merge of all closed
// slots, and expels the oldest slot into the cumulative legacy plane once
// the ring is full. Windowed queries fold the suffix-merge plus the live
// shard snapshots: O(1) in the slot count, zero-alloc through the same
// pooled accumulators as cumulative queries, and the staleness bound
// composes as S·r plus at most one rotation interval of window-boundary
// skew (see docs/ARCHITECTURE.md).
//
// All window mutation — rotation, enable/disable, checkpoint export,
// restore — is serialised by resizeMu; readers only ever touch the
// immutable epochWindow published on the epoch pointer.

// WindowConfig declares a sliding window on a sharded sketch; see
// window.Config for field semantics.
type WindowConfig = window.Config

// epochWindow is the published, immutable window query plane travelling on
// an epochState. merged is the suffix-merge of every closed ring slot;
// carry accumulates live-interval state drained by resizes since the last
// rotation (it belongs to the open interval, not to legacy); decayed is the
// exponential-decay plane when cfg.Decay ∈ (0,1). Like legacy, each plane
// is shared read-only by every querier once published.
type epochWindow[A any] struct {
	cfg window.Config

	merged     A
	hasMerged  bool
	carry      A
	hasCarry   bool
	decayed    A
	hasDecayed bool

	// liveStart is the UnixNano instant the live interval opened (the last
	// rotation, or enable/restore time).
	liveStart int64
	// rotations counts completed rotations since the window was enabled.
	rotations uint64
}

// windowRuntime is the rotator state while a window is enabled. The ring is
// mutated only under resizeMu (rotation, checkpoint export), never read by
// queries — they read the suffix-merge on the epoch instead.
type windowRuntime[A window.Acc[A]] struct {
	cfg  window.Config
	ring *window.Ring[A]

	stop chan struct{}
	done chan struct{}
}

// EnableWindow declares a sliding window on this sketch and starts the
// rotator: every cfg.Interval the live interval is closed into a ring slot
// holding the last cfg.Slots closed intervals (see the package comment for
// the full protocol). Cumulative queries are unchanged — closed-slot state
// reaches them through the window's suffix-merge, expelled state through
// legacy — while WindowQueryInto and the family Window* queries cover
// exactly the window.
//
// cfg.Decay requires a family whose accumulator has linearly scalable
// counters (Count-Min); declaring it elsewhere is an error. The rotator is
// stopped by DisableWindow or Close. Enabling a window on a sketch that
// already has one is an error; enabling after Close is an error.
func (s *Sharded[T, A, C]) EnableWindow(cfg WindowConfig) error {
	cfg, err := cfg.Normalise()
	if err != nil {
		return err
	}
	if cfg.Decay > 0 {
		if _, ok := any(s.mkAcc()).(window.Scalable); !ok {
			return fmt.Errorf("shard: window decay requires linearly scalable counters (Count-Min); this family has none")
		}
	}
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if s.closed {
		return fmt.Errorf("shard: EnableWindow after Close")
	}
	if s.wr.Load() != nil {
		return fmt.Errorf("shard: window already enabled")
	}
	st := s.st.Load()
	next := &epochState[T, A, C]{
		comps: st.comps, g: st.g, old: st.old,
		legacy: st.legacy, hasLegacy: st.hasLegacy,
		basePressure: st.basePressure,
		win: &epochWindow[A]{
			cfg:       cfg,
			liveStart: cfg.Clock.Now().UnixNano(),
		},
	}
	s.st.Store(next)
	wr := &windowRuntime[A]{
		cfg:  cfg,
		ring: window.NewRing[A](cfg.Slots),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.wr.Store(wr)
	go s.rotateLoop(wr)
	return nil
}

// rotateLoop paces rotations on the window clock until stopped.
func (s *Sharded[T, A, C]) rotateLoop(wr *windowRuntime[A]) {
	defer close(wr.done)
	for {
		select {
		case <-wr.stop:
			return
		case <-wr.cfg.Clock.After(wr.cfg.Interval):
			s.RotateNow()
		}
	}
}

// DisableWindow stops the rotator and collapses the window's planes —
// suffix-merge and carry — into a fresh legacy accumulator, published on
// the same atomic epoch store that drops the window, so cumulative queries
// keep their answers to the instant and windowed queries stop resolving.
// Returns false if no window was enabled. Idempotent and safe concurrently
// with queries.
func (s *Sharded[T, A, C]) DisableWindow() bool {
	s.resizeMu.Lock()
	wr := s.wr.Load()
	if wr == nil {
		s.resizeMu.Unlock()
		return false
	}
	s.wr.Store(nil)
	st := s.st.Load()
	if w := st.win; w != nil {
		legacy := s.mkAcc()
		if st.hasLegacy {
			st.legacy.FoldInto(legacy)
		}
		if w.hasMerged {
			w.merged.FoldInto(legacy)
		}
		if w.hasCarry {
			w.carry.FoldInto(legacy)
		}
		next := &epochState[T, A, C]{
			comps: st.comps, g: st.g, old: st.old,
			legacy: legacy, hasLegacy: true,
			basePressure: st.basePressure,
		}
		s.st.Store(next)
	}
	s.resizeMu.Unlock()
	s.stopWindow(wr)
	return true
}

// stopWindow tears down a detached rotator runtime. Must be called without
// resizeMu held: the loop's in-flight tick acquires resizeMu in RotateNow
// (and no-ops once the runtime is detached).
func (s *Sharded[T, A, C]) stopWindow(wr *windowRuntime[A]) {
	close(wr.stop)
	<-wr.done
}

// RotateNow closes the live interval into the ring synchronously,
// independent of the background tick — the deterministic pacing hook for
// tests and stress drivers (the background loop calls it too). Returns
// false if no window is enabled or the sketch is closed.
func (s *Sharded[T, A, C]) RotateNow() bool {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	wr := s.wr.Load()
	if wr == nil || s.closed {
		return false
	}
	s.rotateLocked(wr)
	return true
}

// rotateLocked performs one rotation under resizeMu. The protocol reuses
// the Resize epoch swap for an exact drain of the closing interval:
//
//  1. Build and publish a fresh epoch of the same shard count with the
//     previous epoch attached as old — new updates belong to the next
//     interval from this instant, while queries keep folding both.
//  2. Writer grace period, then close the old epoch's frameworks: every
//     update of the closing interval now sits exactly in its composables
//     (stragglers that loaded the new epoch land in the next interval —
//     counted once, later, never lost).
//  3. If the ring is full, expel the oldest slot into a fresh legacy
//     accumulator (cumulative queries see it there from the same epoch
//     store that removes it from the window).
//  4. Fold carry + the drained shards into a (recycled) slot, push it,
//     refresh the suffix-merge, and advance the decay plane
//     (decayed' = Decay·decayed + slot).
//  5. Publish the retired epoch carrying the new window plane — one atomic
//     store moves the interval from live snapshots into the suffix-merge,
//     so no query ever double-counts or misses it.
func (s *Sharded[T, A, C]) rotateLocked(wr *windowRuntime[A]) {
	st := s.st.Load()
	w := st.win
	if w == nil {
		return
	}
	built := s.newEpoch(len(st.comps))
	next := &epochState[T, A, C]{
		comps: built.comps, g: built.g, old: st,
		legacy: st.legacy, hasLegacy: st.hasLegacy,
		basePressure: st.basePressure, win: w,
	}
	s.st.Store(next)
	s.awaitWriters()
	st.g.close()

	legacy, hasLegacy := st.legacy, st.hasLegacy
	var slot A
	haveSlot := false
	if oldest, ok := wr.ring.PopIfFull(); ok {
		nl := s.mkAcc()
		if hasLegacy {
			legacy.FoldInto(nl)
		}
		oldest.FoldInto(nl)
		legacy, hasLegacy = nl, true
		oldest.Reset()
		slot, haveSlot = oldest, true
	}
	if !haveSlot {
		slot = s.mkAcc()
	}
	if w.hasCarry {
		w.carry.FoldInto(slot)
	}
	for _, c := range st.comps {
		c.SnapshotMergeInto(slot)
	}
	wr.ring.Push(slot)

	merged := s.mkAcc()
	wr.ring.FoldAll(merged)
	var decayed A
	hasDecayed := false
	if wr.cfg.Decay > 0 {
		decayed = s.mkAcc()
		if w.hasDecayed {
			w.decayed.FoldInto(decayed)
		}
		if sc, ok := any(decayed).(window.Scalable); ok {
			sc.ScaleBy(wr.cfg.Decay)
		}
		slot.FoldInto(decayed)
		hasDecayed = true
	}

	retired := &epochState[T, A, C]{
		comps: next.comps, g: next.g,
		legacy: legacy, hasLegacy: hasLegacy,
		basePressure: st.basePressure.Add(st.g.pressure()),
		win: &epochWindow[A]{
			cfg:        w.cfg,
			merged:     merged,
			hasMerged:  true,
			decayed:    decayed,
			hasDecayed: hasDecayed,
			liveStart:  wr.cfg.Clock.Now().UnixNano(),
			rotations:  w.rotations + 1,
		},
	}
	s.st.Store(retired)
}

// windowMergeEpoch folds one epoch's windowed state — closed-slot
// suffix-merge ∪ resize carry ∪ draining old epoch ∪ current shard
// snapshots, everything inside the window, nothing before it — into acc.
// Returns false (acc untouched) when the epoch has no window.
func windowMergeEpoch[T any, A Accumulator[A], C Mergeable[T, A]](st *epochState[T, A, C], acc A) bool {
	w := st.win
	if w == nil {
		return false
	}
	if w.hasMerged {
		w.merged.FoldInto(acc)
	}
	if w.hasCarry {
		w.carry.FoldInto(acc)
	}
	if st.old != nil {
		for _, c := range st.old.comps {
			c.SnapshotMergeInto(acc)
		}
	}
	for _, c := range st.comps {
		c.SnapshotMergeInto(acc)
	}
	return true
}

// WindowMergeInto folds the sketch's windowed state — the live interval
// plus the last Slots closed intervals — into acc without resetting it.
// Wait-free like MergeInto: one epoch load, one suffix-merge fold (O(1) in
// the slot count), then the live shard folds. The result reflects all
// completed updates of the window except at most Relaxation() live lag,
// with the window boundary itself placed by the last rotation (at most one
// rotation interval plus rotation lag old). Returns false, leaving acc
// untouched, when no window is enabled.
func (s *Sharded[T, A, C]) WindowMergeInto(acc A) bool {
	return windowMergeEpoch(s.st.Load(), acc)
}

// WindowQueryInto resets acc and folds the sketch's windowed state into it
// — the windowed analogue of QueryInto, equally zero-alloc steady-state.
// Returns false (acc reset but empty) when no window is enabled.
func (s *Sharded[T, A, C]) WindowQueryInto(acc A) bool {
	acc.Reset()
	return s.WindowMergeInto(acc)
}

// DecayedMergeInto folds the sketch's exponentially time-decayed state —
// the decay plane (closed intervals at weights Decay^age) plus the live
// interval at weight 1 — into acc. Returns false when no window with
// Decay ∈ (0,1) is enabled.
func (s *Sharded[T, A, C]) DecayedMergeInto(acc A) bool {
	st := s.st.Load()
	w := st.win
	if w == nil || w.cfg.Decay <= 0 {
		return false
	}
	if w.hasDecayed {
		w.decayed.FoldInto(acc)
	}
	if w.hasCarry {
		w.carry.FoldInto(acc)
	}
	if st.old != nil {
		for _, c := range st.old.comps {
			c.SnapshotMergeInto(acc)
		}
	}
	for _, c := range st.comps {
		c.SnapshotMergeInto(acc)
	}
	return true
}

// DecayedQueryInto resets acc and folds the sketch's exponentially
// time-decayed state into it — the decayed analogue of QueryInto, equally
// zero-alloc steady-state. Returns false (acc reset but empty) when no
// window with Decay ∈ (0,1) is enabled.
func (s *Sharded[T, A, C]) DecayedQueryInto(acc A) bool {
	acc.Reset()
	return s.DecayedMergeInto(acc)
}

// WindowEnabled reports whether a sliding window is currently enabled.
func (s *Sharded[T, A, C]) WindowEnabled() bool { return s.st.Load().win != nil }

// WindowSettings returns the WindowConfig the enabled window was declared
// with, and whether one is enabled — the introspection hook declarative
// opens and checkpointing compare against. Wait-free: read off the epoch
// pointer, never a lock.
func (s *Sharded[T, A, C]) WindowSettings() (WindowConfig, bool) {
	w := s.st.Load().win
	if w == nil {
		return WindowConfig{}, false
	}
	return w.cfg, true
}

// WindowInfo is a wait-free introspection sample of the window plane, for
// Info/metrics scrapes: the declared shape, completed rotation count, the
// live interval's age on the window clock, and the rotation lag — how far
// the live interval has outlived the declared Interval (0 while the rotator
// keeps up; growth means a starved or stopped rotator).
type WindowInfo struct {
	Interval    time.Duration
	Slots       int
	Decay       float64
	Rotations   uint64
	LiveAge     time.Duration
	RotationLag time.Duration
}

// WindowStats returns the current WindowInfo sample and whether a window is
// enabled. Wait-free — one epoch load plus a clock read, never a lock — so
// a metrics scrape can sample every sketch without stalling rotations or
// resizes.
func (s *Sharded[T, A, C]) WindowStats() (WindowInfo, bool) {
	w := s.st.Load().win
	if w == nil {
		return WindowInfo{}, false
	}
	age := w.cfg.Clock.Now().Sub(time.Unix(0, w.liveStart))
	if age < 0 {
		age = 0
	}
	lag := age - w.cfg.Interval
	if lag < 0 {
		lag = 0
	}
	return WindowInfo{
		Interval:    w.cfg.Interval,
		Slots:       w.cfg.Slots,
		Decay:       w.cfg.Decay,
		Rotations:   w.rotations,
		LiveAge:     age,
		RotationLag: lag,
	}, true
}

// WindowDecaySupported reports whether a window with Decay > 0 may be
// declared on this sketch: the family's accumulator must have linearly
// scalable counters (Count-Min). Admin planes that span families use it to
// apply one declared window with decay restricted to the families that can
// honour it.
func (s *Sharded[T, A, C]) WindowDecaySupported() bool {
	_, ok := any(s.mkAcc()).(window.Scalable)
	return ok
}

// WindowEstimate answers the windowed distinct-count query: the union of
// the closed-slot suffix-merge and the live shard snapshots, through a
// pooled reused accumulator (no steady-state allocation). ok is false when
// no window is enabled.
func (t *Theta) WindowEstimate() (est float64, ok bool) {
	acc := t.acquire()
	ok = t.WindowMergeInto(acc)
	est = acc.Estimate()
	t.release(acc)
	return est, ok
}

// WindowEstimate answers the windowed distinct-count query over the window
// (register-wise max of suffix-merge and live snapshots). ok is false when
// no window is enabled.
func (h *HLL) WindowEstimate() (est float64, ok bool) {
	acc := h.acquire()
	ok = h.WindowMergeInto(acc)
	est = acc.Estimate()
	h.release(acc)
	return est, ok
}

// WindowQuantile returns an element of the windowed state whose normalized
// rank is ≈ phi. ok is false when no window is enabled.
func (q *Quantiles) WindowQuantile(phi float64) (v float64, ok bool) {
	acc := q.acquire()
	ok = q.WindowMergeInto(acc)
	v = acc.Quantile(phi)
	q.release(acc)
	return v, ok
}

// WindowN returns the item count of the windowed state. ok is false when no
// window is enabled.
func (q *Quantiles) WindowN() (n uint64, ok bool) {
	acc := q.acquire()
	ok = q.WindowMergeInto(acc)
	n = acc.N()
	q.release(acc)
	return n, ok
}

// WindowCount returns the windowed frequency estimate of key: counts from
// the live interval and the last Slots closed intervals only. ok is false
// when no window is enabled.
func (c *CountMin) WindowCount(key uint64) (est uint64, ok bool) {
	acc := c.acquire()
	ok = c.WindowMergeInto(acc)
	est = acc.Estimate(key)
	c.release(acc)
	return est, ok
}

// WindowN returns the total weight of the windowed state. ok is false when
// no window is enabled.
func (c *CountMin) WindowN() (n uint64, ok bool) {
	acc := c.acquire()
	ok = c.WindowMergeInto(acc)
	n = acc.N()
	c.release(acc)
	return n, ok
}

// DecayedCount returns the exponentially time-decayed frequency estimate of
// key: a count observed k rotations ago contributes with weight Decay^k,
// the live interval with weight 1. ok is false unless a window with
// Decay ∈ (0,1) is enabled.
func (c *CountMin) DecayedCount(key uint64) (est uint64, ok bool) {
	acc := c.acquire()
	ok = c.DecayedMergeInto(acc)
	est = acc.Estimate(key)
	c.release(acc)
	return est, ok
}

// appendWindowedSnapshot is the checkpoint export path of a windowed
// sketch, all under one resizeMu hold so the split is rotation-consistent:
// the base blob appended to dst covers everything outside the closed ring
// slots (legacy ∪ carry ∪ live shards — restored into legacy), while each
// closed slot and the decay plane are exported as separate blobs for
// slot-by-slot restoration. When no window is enabled it degrades to the
// plain cumulative export with an empty tail.
func appendWindowedSnapshot[T any, A interface {
	Accumulator[A]
	ExportTo([]byte) []byte
}, C Mergeable[T, A]](s *Sharded[T, A, C], dst []byte) (out []byte, slots [][]byte, decayed []byte) {
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	st := s.st.Load()
	w := st.win
	wr := s.wr.Load()
	acc := s.acquire()
	if st.hasLegacy {
		st.legacy.FoldInto(acc)
	}
	if w != nil && w.hasCarry {
		w.carry.FoldInto(acc)
	}
	if st.old != nil {
		for _, c := range st.old.comps {
			c.SnapshotMergeInto(acc)
		}
	}
	for _, c := range st.comps {
		c.SnapshotMergeInto(acc)
	}
	out = acc.ExportTo(dst)
	s.release(acc)
	if w == nil || wr == nil {
		return out, nil, nil
	}
	for _, sl := range wr.ring.Slots() {
		slots = append(slots, sl.ExportTo(nil))
	}
	if w.hasDecayed {
		decayed = w.decayed.ExportTo(nil)
	}
	return out, slots, decayed
}

// restoreWindow rebuilds a window from checkpointed state: the closed slots
// (oldest first) are imported into fresh ring accumulators, the
// suffix-merge is refreshed, the decay plane imported if present, and the
// rotator started with a fresh live interval. The base blob must already
// have been imported (ImportSnapshot → legacy) — restored closed slots are
// counted by windowed queries only, never double-counted by cumulative
// ones. Errors if a window is already enabled or the slots exceed the ring.
func restoreWindow[T any, A interface {
	Accumulator[A]
	ImportFrom([]byte) error
}, C Mergeable[T, A]](s *Sharded[T, A, C], cfg WindowConfig, slotBlobs [][]byte, decayedBlob []byte) error {
	cfg, err := cfg.Normalise()
	if err != nil {
		return err
	}
	if len(slotBlobs) > cfg.Slots {
		return fmt.Errorf("shard: RestoreWindow with %d slots into a %d-slot ring", len(slotBlobs), cfg.Slots)
	}
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if s.closed {
		return fmt.Errorf("shard: RestoreWindow after Close")
	}
	if s.wr.Load() != nil {
		return fmt.Errorf("shard: window already enabled")
	}
	ring := window.NewRing[A](cfg.Slots)
	merged := s.mkAcc()
	for _, b := range slotBlobs {
		sl := s.mkAcc()
		if err := sl.ImportFrom(b); err != nil {
			return err
		}
		ring.Push(sl)
		sl.FoldInto(merged)
	}
	var decayed A
	hasDecayed := false
	if decayedBlob != nil {
		decayed = s.mkAcc()
		if err := decayed.ImportFrom(decayedBlob); err != nil {
			return err
		}
		hasDecayed = true
	}
	st := s.st.Load()
	next := &epochState[T, A, C]{
		comps: st.comps, g: st.g, old: st.old,
		legacy: st.legacy, hasLegacy: st.hasLegacy,
		basePressure: st.basePressure,
		win: &epochWindow[A]{
			cfg:        cfg,
			merged:     merged,
			hasMerged:  true,
			decayed:    decayed,
			hasDecayed: hasDecayed,
			liveStart:  cfg.Clock.Now().UnixNano(),
		},
	}
	s.st.Store(next)
	wr := &windowRuntime[A]{
		cfg:  cfg,
		ring: ring,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.wr.Store(wr)
	go s.rotateLoop(wr)
	return nil
}

// AppendWindowedSnapshot exports the sketch's state split for slot-by-slot
// window checkpointing; see appendWindowedSnapshot.
func (t *Theta) AppendWindowedSnapshot(dst []byte) ([]byte, [][]byte, []byte) {
	return appendWindowedSnapshot(t.Sharded, dst)
}

// RestoreWindow rebuilds a checkpointed window; see restoreWindow.
func (t *Theta) RestoreWindow(cfg WindowConfig, slots [][]byte, decayed []byte) error {
	return restoreWindow(t.Sharded, cfg, slots, decayed)
}

// AppendWindowedSnapshot exports the sketch's state split for slot-by-slot
// window checkpointing; see appendWindowedSnapshot.
func (h *HLL) AppendWindowedSnapshot(dst []byte) ([]byte, [][]byte, []byte) {
	return appendWindowedSnapshot(h.Sharded, dst)
}

// RestoreWindow rebuilds a checkpointed window; see restoreWindow.
func (h *HLL) RestoreWindow(cfg WindowConfig, slots [][]byte, decayed []byte) error {
	return restoreWindow(h.Sharded, cfg, slots, decayed)
}

// AppendWindowedSnapshot exports the sketch's state split for slot-by-slot
// window checkpointing; see appendWindowedSnapshot.
func (q *Quantiles) AppendWindowedSnapshot(dst []byte) ([]byte, [][]byte, []byte) {
	return appendWindowedSnapshot(q.Sharded, dst)
}

// RestoreWindow rebuilds a checkpointed window; see restoreWindow.
func (q *Quantiles) RestoreWindow(cfg WindowConfig, slots [][]byte, decayed []byte) error {
	return restoreWindow(q.Sharded, cfg, slots, decayed)
}

// AppendWindowedSnapshot exports the sketch's state split for slot-by-slot
// window checkpointing; see appendWindowedSnapshot.
func (c *CountMin) AppendWindowedSnapshot(dst []byte) ([]byte, [][]byte, []byte) {
	return appendWindowedSnapshot(c.Sharded, dst)
}

// RestoreWindow rebuilds a checkpointed window; see restoreWindow.
func (c *CountMin) RestoreWindow(cfg WindowConfig, slots [][]byte, decayed []byte) error {
	return restoreWindow(c.Sharded, cfg, slots, decayed)
}
