package shard_test

// Resize equivalence suite: for every family, resizing the shard group
// mid-stream — growing and shrinking, repeatedly — must leave the final
// merged state equivalent to a sequential reference over the same stream:
// exactly where the family is lossless (Θ in exact mode, HLL registers,
// quantiles/Count-Min totals), within the family's error bound otherwise.
// The suite also pins the resharding state machine itself: Relaxation()
// returns to the new S·r after the transition, all three query paths agree
// after a resize, the accumulator pool carries over, and Resize after Close
// is rejected.

import (
	"math"
	"testing"

	"fastsketches/internal/countmin"
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/shard"
)

// resizeSchedule is the default grow/shrink sequence the equivalence tests
// walk through mid-stream: grow, shrink below the start, grow again.
var resizeSchedule = []int{5, 1, 4}

func TestResizeThetaEquivalence(t *testing.T) {
	// Distinct keys stay far below k = 2^12 per shard and in the merge
	// union, so every path is in exact mode and the merged estimate must
	// equal the true distinct count — across any number of resizes, because
	// the drain folds retained hashes idempotently.
	const n = 3000
	sk, err := shard.NewTheta(12, shard.Config{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sk.Update(0, uint64(i))
		if i%(n/(len(resizeSchedule)+1)) == n/(len(resizeSchedule)+1)-1 {
			step := i / (n / (len(resizeSchedule) + 1))
			if step < len(resizeSchedule) {
				if err := sk.Resize(resizeSchedule[step]); err != nil {
					t.Fatal(err)
				}
				if got := sk.Shards(); got != resizeSchedule[step] {
					t.Fatalf("Shards() = %d after Resize(%d)", got, resizeSchedule[step])
				}
			}
		}
	}
	sk.Close()
	if est := sk.Estimate(); est != n {
		t.Errorf("estimate after %v resizes = %v, want exactly %d", resizeSchedule, est, n)
	}
	// All three query paths must still agree after the resizes.
	fresh := sk.NewAccumulator()
	sk.MergeInto(fresh)
	reused := sk.NewAccumulator()
	for i := 0; i < 50; i++ {
		sk.QueryInto(reused)
	}
	if fresh.Estimate() != sk.Estimate() || reused.Estimate() != sk.Estimate() {
		t.Errorf("path disagreement after resize: pooled %v, fresh %v, reused %v",
			sk.Estimate(), fresh.Estimate(), reused.Estimate())
	}
	// Relaxation must reflect the final shard count only (no transition,
	// no retired residue): S_final · 2·N·b.
	b := 16 // MaxError=1 → derived buffer default
	if got, want := sk.Relaxation(), resizeSchedule[len(resizeSchedule)-1]*2*1*b; got != want {
		t.Errorf("post-resize relaxation %d, want S·2·N·b = %d", got, want)
	}
}

func TestResizeHLLEquivalence(t *testing.T) {
	// HLL merging is lossless (register-wise max), and the resharding drain
	// preserves it: the final merged registers must exactly equal a
	// sequential sketch fed the same stream, so the estimates are equal.
	const n = 50000
	sk, err := shard.NewHLL(12, shard.Config{Shards: 3, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq := hll.New(12, murmur.DefaultSeed)
	for i := 0; i < n; i++ {
		key := uint64(i) * 0x9e3779b97f4a7c15
		sk.Update(0, key)
		seq.Update(key)
		switch i {
		case n / 4:
			if err := sk.Resize(8); err != nil {
				t.Fatal(err)
			}
		case n / 2:
			if err := sk.Resize(2); err != nil {
				t.Fatal(err)
			}
		case 3 * n / 4:
			if err := sk.Resize(6); err != nil {
				t.Fatal(err)
			}
		}
	}
	sk.Close()
	if got, want := sk.Estimate(), seq.Estimate(); got != want {
		t.Errorf("resized sharded HLL %v != sequential %v", got, want)
	}
}

func TestResizeQuantilesEquivalence(t *testing.T) {
	// Totals are exact (every value is drained exactly once) and the merged
	// rank error stays within the k=128 summary bound: resharding merges
	// summaries, and merged-summary rank error is bounded by the worst
	// input's ε.
	const n = 40000
	const k = 128
	sk, err := shard.NewQuantiles(k, shard.Config{Shards: 4, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic shuffled stream of 0..n-1 (odd multiplier mod power of
	// two is a bijection; n is not a power of two, so map through an index
	// permutation of a covering power of two instead).
	next := 0
	for i := 0; next < n; i++ {
		v := (i * 48271) & (1<<16 - 1)
		if v >= n {
			continue
		}
		sk.Update(0, float64(v))
		next++
		switch next {
		case n / 3:
			if err := sk.Resize(7); err != nil {
				t.Fatal(err)
			}
		case 2 * n / 3:
			if err := sk.Resize(2); err != nil {
				t.Fatal(err)
			}
		}
	}
	sk.Close()
	if got := sk.N(); got != n {
		t.Fatalf("merged N after resizes = %d, want exactly %d", got, n)
	}
	eps := quantiles.EpsilonBound(k, n)
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		v := sk.Quantile(phi)
		if dev := math.Abs(v/float64(n) - phi); dev > eps+1.0/float64(n) {
			t.Errorf("quantile(%v) = %v → rank deviation %v > ε = %v", phi, v, dev, eps)
		}
	}
	if r := sk.Rank(float64(n) / 2); math.Abs(r-0.5) > eps+1.0/float64(n) {
		t.Errorf("rank(n/2) = %v, want ≈0.5 within ε = %v", r, eps)
	}
}

func TestResizeCountMinEquivalence(t *testing.T) {
	// The drain is counter-exact: legacy + old + current grids sum to the
	// same element-wise totals as one sequential sketch (identical row
	// hashing everywhere), so the aggregate Merged() view must agree
	// per-key with the sequential reference exactly, and N() with the true
	// total. The fast per-key path sums per-component row minima, which is
	// sandwiched between the true count and the aggregate estimate.
	const keys = 64
	const reps = 500
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := countmin.NewWithError(0.001, 0.01, murmur.DefaultSeed)
	total := 0
	for i := 0; i < keys*reps; i++ {
		k := uint64(i % keys)
		sk.Update(0, k)
		ref.Update(k)
		total++
		switch i {
		case keys * reps / 4:
			if err := sk.Resize(6); err != nil {
				t.Fatal(err)
			}
		case keys * reps / 2:
			if err := sk.Resize(1); err != nil {
				t.Fatal(err)
			}
		case 3 * keys * reps / 4:
			if err := sk.Resize(3); err != nil {
				t.Fatal(err)
			}
		}
	}
	sk.Close()
	if got := sk.N(); got != uint64(total) {
		t.Errorf("N() after resizes = %d, want exactly %d", got, total)
	}
	merged := sk.Merged()
	for k := uint64(0); k < keys; k++ {
		if got, want := merged.Estimate(k), ref.Estimate(k); got != want {
			t.Errorf("merged estimate key %d = %d, want sequential %d", k, got, want)
		}
		est := sk.Estimate(k)
		if est < reps {
			t.Errorf("per-key estimate key %d = %d underestimates true count %d", k, est, reps)
		}
		if est > merged.Estimate(k) {
			t.Errorf("per-key estimate key %d = %d exceeds aggregate bound %d", k, est, merged.Estimate(k))
		}
	}
}

func TestResizeNoopAndErrors(t *testing.T) {
	sk, err := shard.NewTheta(10, shard.Config{Shards: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Resize(2); err != nil { // same S: no-op
		t.Errorf("Resize to current S: %v, want nil", err)
	}
	if err := sk.Resize(0); err == nil {
		t.Error("Resize(0) succeeded, want error")
	}
	if got, want := sk.Relaxation(), 2*2*1*16; got != want {
		t.Errorf("relaxation after no-op resize %d, want %d", got, want)
	}
	sk.Close()
	if err := sk.Resize(4); err == nil {
		t.Error("Resize after Close succeeded, want error")
	}
	sk.Close() // idempotent
}

func TestResizePreservesEagerExactness(t *testing.T) {
	// With an eager budget configured, a resize mid-eager-phase must keep
	// queries exact: the old shards' eagerly-applied updates travel through
	// the drain, and the new shards start their own eager phase.
	sk, err := shard.NewTheta(12, shard.Config{Shards: 2, MaxError: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; n < 150; n++ {
		sk.Update(0, uint64(n))
	}
	if !sk.Eager() {
		t.Skip("eager phase over too early for this configuration")
	}
	if err := sk.Resize(5); err != nil {
		t.Fatal(err)
	}
	for ; n < 300; n++ {
		sk.Update(0, uint64(n))
	}
	if sk.Eager() {
		if est := sk.Estimate(); est != float64(n) {
			t.Errorf("eager estimate after resize = %v, want exactly %d", est, n)
		}
	}
	sk.Close()
	if est := sk.Estimate(); est != float64(n) {
		t.Errorf("closed estimate after eager resize = %v, want exactly %d", est, n)
	}
}
