package shard_test

// Sliding-window unit tests: windowed≡manual-ring equivalence per family,
// rotation/expiry accounting, resize-carry interaction, decay semantics,
// lifecycle errors, and checkpoint export/restore of ring slots. Rotations
// are paced deterministically with RotateNow or a ManualClock.

import (
	"testing"
	"time"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/shard"
)

func manualWindow(slots int) shard.WindowConfig {
	return shard.WindowConfig{
		Interval: time.Hour, // never fires; rotations driven by RotateNow
		Slots:    slots,
		Clock:    autoscale.NewManualClock(time.Unix(1<<20, 0)),
	}
}

// windowCM builds an eager CountMin: the live fold is exact for the test's
// volume, so windowed totals can be compared for equality.
func windowCM(t *testing.T, shards int) *shard.CountMin {
	t.Helper()
	sk, err := shard.NewCountMin(0.001, 0.01, shard.Config{Shards: shards, MaxError: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestWindowRotationAndExpiry(t *testing.T) {
	sk := windowCM(t, 2)
	defer sk.Close()
	if err := sk.EnableWindow(manualWindow(2)); err != nil {
		t.Fatal(err)
	}
	if !sk.WindowEnabled() {
		t.Fatal("WindowEnabled false after EnableWindow")
	}
	// Four intervals of 96 updates each (12 per key); the window covers the
	// live interval plus the last 2 closed ones.
	for interval := 0; interval < 4; interval++ {
		for i := 0; i < 96; i++ {
			sk.Update(0, uint64(i%8))
		}
		wantWin := uint64(96 * min(interval+1, 3))
		if n, ok := sk.WindowN(); !ok || n != wantWin {
			t.Fatalf("interval %d: WindowN = %d,%v; want %d", interval, n, ok, wantWin)
		}
		wantTotal := uint64(96 * (interval + 1))
		if n := sk.N(); n != wantTotal {
			t.Fatalf("interval %d: cumulative N = %d, want %d (expelled slots must reach legacy)", interval, n, wantTotal)
		}
		if !sk.RotateNow() {
			t.Fatal("RotateNow returned false with a window enabled")
		}
	}
	st, ok := sk.WindowStats()
	if !ok || st.Rotations != 4 {
		t.Fatalf("WindowStats rotations = %d,%v; want 4", st.Rotations, ok)
	}
	// Per-key reads: every key saw 4 intervals cumulatively, 2 in the window
	// (live interval is empty after the last rotation).
	if got := sk.Estimate(3); got != 4*12 {
		t.Fatalf("cumulative Estimate = %d, want %d", got, 4*12)
	}
	if got, ok := sk.WindowCount(3); !ok || got != 2*12 {
		t.Fatalf("WindowCount = %d,%v; want %d", got, ok, 2*12)
	}
}

// TestWindowedEqualsManualRing feeds interval batches into a windowed sketch
// of each family and checks every windowed answer against a reference sketch
// fed only the items the window should cover. All folds are exact at this
// volume (eager phase, lossless merges, same seeds), so equality is exact.
func TestWindowedEqualsManualRing(t *testing.T) {
	const slots = 3
	const intervals = 7
	batch := func(iv int) []uint64 {
		items := make([]uint64, 50)
		for i := range items {
			items[i] = uint64(iv*1000 + i)
		}
		return items
	}
	// windowItems returns what the window must cover after `closed` full
	// rotations with the live interval `live` ingested.
	windowItems := func(live int) []uint64 {
		var items []uint64
		for iv := max(0, live-slots); iv <= live; iv++ {
			items = append(items, batch(iv)...)
		}
		return items
	}

	t.Run("theta", func(t *testing.T) {
		sk, err := shard.NewTheta(12, shard.Config{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer sk.Close()
		if err := sk.EnableWindow(manualWindow(slots)); err != nil {
			t.Fatal(err)
		}
		for iv := 0; iv < intervals; iv++ {
			for _, it := range batch(iv) {
				sk.Update(0, it)
			}
			got, ok := sk.WindowEstimate()
			if !ok {
				t.Fatal("WindowEstimate not ok")
			}
			ref, err := shard.NewTheta(12, shard.Config{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range windowItems(iv) {
				ref.Update(0, it)
			}
			if want := ref.Estimate(); got != want {
				t.Fatalf("interval %d: windowed Θ estimate %v, manual ring %v", iv, got, want)
			}
			ref.Close()
			sk.RotateNow()
		}
	})

	t.Run("hll", func(t *testing.T) {
		sk, err := shard.NewHLL(12, shard.Config{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer sk.Close()
		if err := sk.EnableWindow(manualWindow(slots)); err != nil {
			t.Fatal(err)
		}
		for iv := 0; iv < intervals; iv++ {
			for _, it := range batch(iv) {
				sk.Update(0, it)
			}
			got, ok := sk.WindowEstimate()
			if !ok {
				t.Fatal("WindowEstimate not ok")
			}
			ref, err := shard.NewHLL(12, shard.Config{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range windowItems(iv) {
				ref.Update(0, it)
			}
			if want := ref.Estimate(); got != want {
				t.Fatalf("interval %d: windowed HLL estimate %v, manual ring %v", iv, got, want)
			}
			ref.Close()
			sk.RotateNow()
		}
	})

	t.Run("quantiles", func(t *testing.T) {
		sk, err := shard.NewQuantiles(128, shard.Config{Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer sk.Close()
		if err := sk.EnableWindow(manualWindow(slots)); err != nil {
			t.Fatal(err)
		}
		for iv := 0; iv < intervals; iv++ {
			for _, it := range batch(iv) {
				sk.Update(0, float64(it))
			}
			wantItems := windowItems(iv)
			if n, ok := sk.WindowN(); !ok || n != uint64(len(wantItems)) {
				t.Fatalf("interval %d: WindowN = %d,%v; want %d", iv, n, ok, len(wantItems))
			}
			ref, err := shard.NewQuantiles(128, shard.Config{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range wantItems {
				ref.Update(0, float64(it))
			}
			for _, phi := range []float64{0, 0.25, 0.5, 0.99, 1} {
				got, ok := sk.WindowQuantile(phi)
				if !ok {
					t.Fatal("WindowQuantile not ok")
				}
				if want := ref.Quantile(phi); got != want {
					t.Fatalf("interval %d: windowed q(%v) = %v, manual ring %v", iv, phi, got, want)
				}
			}
			ref.Close()
			sk.RotateNow()
		}
	})

	t.Run("countmin", func(t *testing.T) {
		sk := windowCM(t, 3)
		defer sk.Close()
		if err := sk.EnableWindow(manualWindow(slots)); err != nil {
			t.Fatal(err)
		}
		for iv := 0; iv < intervals; iv++ {
			for _, it := range batch(iv) {
				sk.Update(0, it%16) // heavy keys so counts per key grow
			}
			wantItems := windowItems(iv)
			if n, ok := sk.WindowN(); !ok || n != uint64(len(wantItems)) {
				t.Fatalf("interval %d: WindowN = %d,%v; want %d", iv, n, ok, len(wantItems))
			}
			ref := windowCM(t, 1)
			for _, it := range wantItems {
				ref.Update(0, it%16)
			}
			for key := uint64(0); key < 16; key++ {
				got, ok := sk.WindowCount(key)
				if !ok {
					t.Fatal("WindowCount not ok")
				}
				if want := ref.Estimate(key); got != want {
					t.Fatalf("interval %d: windowed count(%d) = %d, manual ring %d", iv, key, got, want)
				}
			}
			ref.Close()
			sk.RotateNow()
		}
	})
}

func TestWindowResizeCarry(t *testing.T) {
	sk := windowCM(t, 2)
	defer sk.Close()
	if err := sk.EnableWindow(manualWindow(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sk.Update(0, uint64(i%8))
	}
	// Resize mid-interval: the drained shards' 100 updates move into the
	// window carry, not into legacy — windowed queries must keep them.
	if err := sk.Resize(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		sk.Update(0, uint64(i%8))
	}
	if n, ok := sk.WindowN(); !ok || n != 160 {
		t.Fatalf("WindowN after mid-interval resize = %d,%v; want 160", n, ok)
	}
	if n := sk.N(); n != 160 {
		t.Fatalf("cumulative N after resize = %d, want 160", n)
	}
	// The rotation closes the whole interval — carry included — into one
	// slot; two more rotations expel it and the windowed total drops to 0.
	sk.RotateNow()
	if n, ok := sk.WindowN(); !ok || n != 160 {
		t.Fatalf("WindowN after rotation = %d,%v; want 160", n, ok)
	}
	sk.RotateNow()
	sk.RotateNow()
	if n, ok := sk.WindowN(); !ok || n != 0 {
		t.Fatalf("WindowN after expiry = %d,%v; want 0", n, ok)
	}
	if n := sk.N(); n != 160 {
		t.Fatalf("cumulative N after expiry = %d, want 160 (expelled slot must fold into legacy)", n)
	}
}

func TestWindowDecay(t *testing.T) {
	sk := windowCM(t, 2)
	defer sk.Close()
	cfg := manualWindow(4)
	cfg.Decay = 0.5
	if err := sk.EnableWindow(cfg); err != nil {
		t.Fatal(err)
	}
	const key = 7
	addN := func(n int) {
		for i := 0; i < n; i++ {
			sk.Update(0, key)
		}
	}
	// Interval 1: 100 of key, rotate → decayed = 100 (just-closed, weight 1).
	addN(100)
	sk.RotateNow()
	if got, ok := sk.DecayedCount(key); !ok || got != 100 {
		t.Fatalf("decayed after 1 rotation = %d,%v; want 100", got, ok)
	}
	// Interval 2: 100 more, rotate → decayed = 0.5·100 + 100 = 150.
	addN(100)
	sk.RotateNow()
	if got, ok := sk.DecayedCount(key); !ok || got != 150 {
		t.Fatalf("decayed after 2 rotations = %d,%v; want 150", got, ok)
	}
	// Live updates count at weight 1 on top of the decayed plane.
	addN(40)
	if got, ok := sk.DecayedCount(key); !ok || got != 190 {
		t.Fatalf("decayed with live updates = %d,%v; want 190", got, ok)
	}
	// The windowed (undecayed) count still sums the raw window.
	if got, ok := sk.WindowCount(key); !ok || got != 240 {
		t.Fatalf("windowed count = %d,%v; want 240", got, ok)
	}
}

func TestWindowDecayRequiresScalableFamily(t *testing.T) {
	sk, err := shard.NewTheta(10, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	cfg := manualWindow(2)
	cfg.Decay = 0.5
	if err := sk.EnableWindow(cfg); err == nil {
		t.Fatal("EnableWindow with Decay on Θ succeeded; want error (no scalable counters)")
	}
	if sk.WindowEnabled() {
		t.Fatal("window enabled despite config error")
	}
}

func TestWindowDisableCollapsesIntoLegacy(t *testing.T) {
	sk := windowCM(t, 2)
	defer sk.Close()
	if err := sk.EnableWindow(manualWindow(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sk.Update(0, uint64(i%8))
	}
	sk.RotateNow()
	for i := 0; i < 50; i++ {
		sk.Update(0, uint64(i%8))
	}
	if !sk.DisableWindow() {
		t.Fatal("DisableWindow returned false with a window enabled")
	}
	if sk.WindowEnabled() {
		t.Fatal("WindowEnabled true after DisableWindow")
	}
	if _, ok := sk.WindowN(); ok {
		t.Fatal("WindowN ok after DisableWindow")
	}
	if n := sk.N(); n != 150 {
		t.Fatalf("cumulative N after DisableWindow = %d, want 150", n)
	}
	if sk.DisableWindow() {
		t.Fatal("second DisableWindow returned true")
	}
}

func TestWindowLifecycleErrors(t *testing.T) {
	sk := windowCM(t, 2)
	if err := sk.EnableWindow(manualWindow(2)); err != nil {
		t.Fatal(err)
	}
	if err := sk.EnableWindow(manualWindow(2)); err == nil {
		t.Fatal("second EnableWindow succeeded; want error")
	}
	if _, err := (shard.WindowConfig{Decay: 1.5}).Normalise(); err == nil {
		t.Fatal("Normalise accepted decay 1.5")
	}
	sk.Close()
	if sk.RotateNow() {
		t.Fatal("RotateNow returned true after Close")
	}
	sk2 := windowCM(t, 2)
	sk2.Close()
	if err := sk2.EnableWindow(manualWindow(2)); err == nil {
		t.Fatal("EnableWindow after Close succeeded; want error")
	}
}

func TestWindowBackgroundRotation(t *testing.T) {
	sk := windowCM(t, 2)
	defer sk.Close()
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if err := sk.EnableWindow(shard.WindowConfig{
		Interval: time.Second, Slots: 2, Clock: clk,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sk.Update(0, uint64(i%8))
	}
	// Wait for the rotator loop to arm its tick, then fire it.
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rotator never armed its clock tick")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Second)
	for {
		if st, ok := sk.WindowStats(); ok && st.Rotations >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background rotation never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if n, ok := sk.WindowN(); !ok || n != 100 {
		t.Fatalf("WindowN after background rotation = %d,%v; want 100", n, ok)
	}
}

func TestWindowStatsAges(t *testing.T) {
	sk := windowCM(t, 2)
	defer sk.Close()
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if err := sk.EnableWindow(shard.WindowConfig{
		Interval: time.Minute, Slots: 2, Clock: clk,
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(20 * time.Second)
	st, ok := sk.WindowStats()
	if !ok {
		t.Fatal("WindowStats not ok")
	}
	if st.LiveAge != 20*time.Second || st.RotationLag != 0 {
		t.Fatalf("LiveAge/RotationLag = %v/%v; want 20s/0", st.LiveAge, st.RotationLag)
	}
	clk.Advance(100 * time.Second)
	st, _ = sk.WindowStats()
	if st.LiveAge != 2*time.Minute || st.RotationLag != time.Minute {
		t.Fatalf("LiveAge/RotationLag = %v/%v; want 2m/1m", st.LiveAge, st.RotationLag)
	}
	if st.Interval != time.Minute || st.Slots != 2 || st.Decay != 0 {
		t.Fatalf("WindowStats shape = %+v", st)
	}
}

func TestWindowedQueryZeroAlloc(t *testing.T) {
	sk := windowCM(t, 4)
	defer sk.Close()
	if err := sk.EnableWindow(manualWindow(3)); err != nil {
		t.Fatal(err)
	}
	for iv := 0; iv < 4; iv++ {
		for i := 0; i < 200; i++ {
			sk.Update(0, uint64(i%32))
		}
		sk.RotateNow()
	}
	for i := 0; i < 100; i++ {
		sk.Update(0, uint64(i%32))
	}
	// Caller-owned accumulator path: race-safe to pin (no sync.Pool, whose
	// race-mode build drops puts at random). The pooled Window* scalar path
	// is pinned in the registry-level alloc contract test, which is
	// !race-gated.
	acc := sk.NewAccumulator()
	var sink uint64
	if allocs := testing.AllocsPerRun(200, func() {
		if !sk.WindowQueryInto(acc) {
			t.Fatal("WindowQueryInto not ok")
		}
		sink = acc.Estimate(7)
	}); allocs != 0 {
		t.Errorf("windowed QueryInto allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

func TestWindowCheckpointRoundTrip(t *testing.T) {
	sk := windowCM(t, 3)
	defer sk.Close()
	cfg := manualWindow(3)
	cfg.Decay = 0.5
	if err := sk.EnableWindow(cfg); err != nil {
		t.Fatal(err)
	}
	for iv := 0; iv < 3; iv++ {
		for i := 0; i < 100; i++ {
			sk.Update(0, uint64(i%8))
		}
		sk.RotateNow()
	}
	for i := 0; i < 40; i++ {
		sk.Update(0, uint64(i%8)) // live, uncheckpointed-slot state
	}
	base, slots, decayed := sk.AppendWindowedSnapshot(nil)
	if len(slots) != 3 {
		t.Fatalf("exported %d slots, want 3", len(slots))
	}
	if decayed == nil {
		t.Fatal("no decayed blob exported despite Decay enabled")
	}

	re := windowCM(t, 2)
	defer re.Close()
	if err := re.ImportSnapshot(base); err != nil {
		t.Fatal(err)
	}
	if err := re.RestoreWindow(cfg, slots, decayed); err != nil {
		t.Fatal(err)
	}
	if n := re.N(); n != 340 {
		t.Fatalf("restored cumulative N = %d, want 340", n)
	}
	// The window after restore covers the restored closed slots (the live
	// interval's 40 updates went into the base blob → legacy).
	if n, ok := re.WindowN(); !ok || n != 300 {
		t.Fatalf("restored WindowN = %d,%v; want 300", n, ok)
	}
	// Decayed plane restored verbatim: 0.25·100 + 0.5·100 + 100 per window
	// over keys — per key 1/8 of that.
	wantDecayed, ok := sk.DecayedCount(3)
	if !ok {
		t.Fatal("source DecayedCount not ok")
	}
	wantDecayed -= 40 / 8 // source counts its live updates; restore moved them to legacy
	if got, ok := re.DecayedCount(3); !ok || got != wantDecayed {
		t.Fatalf("restored DecayedCount = %d,%v; want %d", got, ok, wantDecayed)
	}
	// Restoring onto an already windowed sketch errors.
	if err := re.RestoreWindow(cfg, nil, nil); err == nil {
		t.Fatal("RestoreWindow on a windowed sketch succeeded; want error")
	}
}
