package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"fastsketches/internal/countmin"
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/theta"
)

func fullRecord() Record {
	return Record{
		Family:        FamilyCountMin,
		Name:          []byte("metrics/api.requests"),
		Shards:        12,
		HasView:       true,
		ViewRefreshNs: int64(50_000_000),
		ViewMaxAgeNs:  -1,
		HasPolicy:     true,
		MinShards:     2,
		MaxShards:     64,
		HighWater:     1.5e6,
		LowWater:      2.5e5,
		Blob:          []byte{1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
}

func windowedRecord() Record {
	rec := fullRecord()
	rec.HasWindow = true
	rec.WindowIntervalNs = int64(30_000_000_000)
	rec.WindowSlots = 4
	rec.WindowDecay = 0.75
	rec.WindowSlotBlobs = [][]byte{{10, 11}, {}, {12, 13, 14}}
	rec.WindowDecayedBlob = []byte{20, 21, 22, 23}
	return rec
}

func TestHeaderRoundTrip(t *testing.T) {
	b := AppendHeader(nil, 7)
	if len(b) != headerLen {
		t.Fatalf("header is %d bytes, want %d", len(b), headerLen)
	}
	count, rest, err := ParseHeader(append(b, 0xAA))
	if err != nil || count != 7 || len(rest) != 1 {
		t.Fatalf("ParseHeader = (%d, %d bytes, %v), want (7, 1, nil)", count, len(rest), err)
	}

	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short", func(b []byte) []byte { return b[:headerLen-1] }, ErrTruncated},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrMagic},
		{"version", func(b []byte) []byte { b[4] = 99; return b }, ErrVersion},
		{"count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], MaxRecords+1)
			return b
		}, ErrBadRecord},
	} {
		in := tc.mut(AppendHeader(nil, 0))
		if _, _, err := ParseHeader(in); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	want := fullRecord()
	b := AppendRecord(nil, &want)
	got, rest, err := ParseRecord(append(b, 0xEE, 0xFF))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d bytes, want 2", len(rest))
	}
	if got.Family != want.Family || !bytes.Equal(got.Name, want.Name) ||
		got.Shards != want.Shards ||
		got.HasView != want.HasView || got.ViewRefreshNs != want.ViewRefreshNs ||
		got.ViewMaxAgeNs != want.ViewMaxAgeNs ||
		got.HasPolicy != want.HasPolicy || got.MinShards != want.MinShards ||
		got.MaxShards != want.MaxShards || got.HighWater != want.HighWater ||
		got.LowWater != want.LowWater || !bytes.Equal(got.Blob, want.Blob) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}

	// Optional blocks absent: flags stay zero and the blocks are skipped.
	bare := Record{Family: FamilyTheta, Name: []byte("x"), Shards: 1, Blob: nil}
	got, _, err = ParseRecord(AppendRecord(nil, &bare))
	if err != nil {
		t.Fatal(err)
	}
	if got.HasView || got.HasPolicy || len(got.Blob) != 0 {
		t.Fatalf("bare record round trip = %+v", got)
	}

	// BeginRecord/EndRecord must equal AppendRecord byte for byte.
	streamed, m := BeginRecord(nil, &want)
	streamed = append(streamed, want.Blob...)
	streamed = EndRecord(streamed, m)
	if !bytes.Equal(streamed, b) {
		t.Fatal("BeginRecord/EndRecord differs from AppendRecord")
	}
}

func TestWindowedRecordRoundTrip(t *testing.T) {
	want := windowedRecord()
	b := AppendRecord(nil, &want)
	got, rest, err := ParseRecord(append(b, 0xEE))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 {
		t.Fatalf("rest = %d bytes, want 1", len(rest))
	}
	if !got.HasWindow || got.WindowIntervalNs != want.WindowIntervalNs ||
		got.WindowSlots != want.WindowSlots || got.WindowDecay != want.WindowDecay {
		t.Fatalf("window block round trip: got %+v", got)
	}
	if !bytes.Equal(got.Blob, want.Blob) {
		t.Fatalf("windowed base blob: got %v, want %v", got.Blob, want.Blob)
	}
	if len(got.WindowSlotBlobs) != len(want.WindowSlotBlobs) {
		t.Fatalf("slot count: got %d, want %d", len(got.WindowSlotBlobs), len(want.WindowSlotBlobs))
	}
	for i := range want.WindowSlotBlobs {
		if !bytes.Equal(got.WindowSlotBlobs[i], want.WindowSlotBlobs[i]) {
			t.Errorf("slot %d: got %v, want %v", i, got.WindowSlotBlobs[i], want.WindowSlotBlobs[i])
		}
	}
	if !bytes.Equal(got.WindowDecayedBlob, want.WindowDecayedBlob) {
		t.Errorf("decay plane: got %v, want %v", got.WindowDecayedBlob, want.WindowDecayedBlob)
	}

	// No decay plane: the marker byte is 0 and the parsed blob stays nil.
	want.WindowDecayedBlob = nil
	got, _, err = ParseRecord(AppendRecord(nil, &want))
	if err != nil {
		t.Fatal(err)
	}
	if got.WindowDecayedBlob != nil {
		t.Fatalf("nil decay plane round-tripped to %v", got.WindowDecayedBlob)
	}

	// The streamed form — BeginRecord, blob in place, EndBlob, window tail,
	// EndRecord — is the checkpoint writer's path and must be byte-identical
	// to AppendRecord.
	want = windowedRecord()
	streamed, m := BeginRecord(nil, &want)
	streamed = append(streamed, want.Blob...)
	streamed = EndBlob(streamed, &m)
	streamed = AppendWindowTail(streamed, want.WindowSlotBlobs, want.WindowDecayedBlob)
	streamed = EndRecord(streamed, m)
	if !bytes.Equal(streamed, b) {
		t.Fatal("BeginRecord/EndBlob/AppendWindowTail/EndRecord differs from AppendRecord")
	}
}

func TestWindowedRecordErrors(t *testing.T) {
	rec := windowedRecord()
	valid := AppendRecord(nil, &rec)
	// reframe truncates the encoding to n bytes and fixes up the record
	// length prefix so the parser blames the window tail, not the framing.
	reframe := func(n int) []byte {
		b := append([]byte(nil), valid[:n]...)
		binary.LittleEndian.PutUint32(b, uint32(n-4))
		return b
	}
	// Cut inside the decay length field → truncated; cut inside the decay
	// body or a slot body → the announced length no longer matches, a
	// corruption error.
	if _, _, err := ParseRecord(reframe(len(valid) - 6)); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated decay length: err = %v, want %v", err, ErrTruncated)
	}
	if _, _, err := ParseRecord(reframe(len(valid) - 2)); !errors.Is(err, ErrBadRecord) {
		t.Errorf("truncated decay plane: err = %v, want %v", err, ErrBadRecord)
	}
	cutSlotBody := len(valid) - len(rec.WindowDecayedBlob) - 4 - 1 - 1
	if _, _, err := ParseRecord(reframe(cutSlotBody)); !errors.Is(err, ErrBadRecord) {
		t.Errorf("truncated slot body: err = %v, want %v", err, ErrBadRecord)
	}

	mut := func(f func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	// The slot count sits right after the base blob's length-prefixed body;
	// locate it from the back: decayed blob + its length + marker + slot
	// bodies + their lengths + the count itself.
	slotCountOff := len(valid) - len(rec.WindowDecayedBlob) - 4 - 1
	for _, sl := range rec.WindowSlotBlobs {
		slotCountOff -= len(sl) + 4
	}
	slotCountOff -= 4
	over := mut(func(b []byte) {
		binary.LittleEndian.PutUint32(b[slotCountOff:], rec.WindowSlots+1)
	})
	if _, _, err := ParseRecord(over); !errors.Is(err, ErrBadRecord) {
		t.Errorf("slot count beyond capacity: err = %v, want %v", err, ErrBadRecord)
	}
	marker := mut(func(b []byte) {
		b[len(b)-len(rec.WindowDecayedBlob)-4-1] = 7
	})
	if _, _, err := ParseRecord(marker); !errors.Is(err, ErrBadRecord) {
		t.Errorf("bad decay marker: err = %v, want %v", err, ErrBadRecord)
	}
	// Bytes after a complete window tail (no decay plane, so the tail's end
	// is the marker byte) are corruption, not slack.
	noDecay := rec
	noDecay.WindowDecayedBlob = nil
	trailing := AppendRecord(nil, &noDecay)
	trailing = append(trailing, 0xAB)
	binary.LittleEndian.PutUint32(trailing, uint32(len(trailing)-4))
	if _, _, err := ParseRecord(trailing); !errors.Is(err, ErrBadRecord) {
		t.Errorf("bytes after window tail: err = %v, want %v", err, ErrBadRecord)
	}
}

func TestRecordErrors(t *testing.T) {
	valid := AppendRecord(nil, &Record{
		Family: FamilyHLL, Name: []byte("n"), Shards: 2, Blob: []byte{9},
	})
	mut := func(f func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"short length", valid[:3], ErrTruncated},
		{"announced beyond input", valid[:len(valid)-1], ErrTruncated},
		{"huge recLen", mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b, math.MaxUint32)
		}), ErrBadRecord},
		{"unknown family", mut(func(b []byte) { b[4] = 200 }), ErrBadRecord},
		{"empty name", mut(func(b []byte) { b[5] = 0 }), ErrBadRecord},
		{"name past body", mut(func(b []byte) { b[5] = 100 }), ErrTruncated},
		{"unknown flags", mut(func(b []byte) { b[11] |= 0x80 }), ErrBadRecord},
		{"blob length mismatch", mut(func(b []byte) { b[12]++ }), ErrBadRecord},
	}
	for _, tc := range cases {
		if _, _, err := ParseRecord(tc.in); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Truncated optional blocks.
	viewRec := AppendRecord(nil, &Record{
		Family: FamilyTheta, Name: []byte("v"), Shards: 1, HasView: true,
	})
	cut := viewRec[:len(viewRec)-6] // into the view block
	binary.LittleEndian.PutUint32(cut, uint32(len(cut)-4))
	if _, _, err := ParseRecord(cut); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated view block: err = %v, want %v", err, ErrTruncated)
	}
}

func TestPortableRoundTrip(t *testing.T) {
	want := fullRecord()
	b := AppendPortable(nil, &want)
	got, err := ParsePortable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Name, want.Name) || !bytes.Equal(got.Blob, want.Blob) {
		t.Fatalf("portable round trip: got %+v", got)
	}

	if _, err := ParsePortable(append(b, 0)); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing byte: err = %v, want %v", err, ErrTrailing)
	}
	if _, err := ParsePortable([]byte{9}); !errors.Is(err, ErrTruncated) {
		t.Errorf("one byte: err = %v, want %v", err, ErrTruncated)
	}
	skew := append([]byte(nil), b...)
	binary.LittleEndian.PutUint16(skew, Version+1)
	if _, err := ParsePortable(skew); !errors.Is(err, ErrVersion) {
		t.Errorf("version skew: err = %v, want %v", err, ErrVersion)
	}

	// BeginPortable/EndPortable equals AppendPortable byte for byte.
	streamed, m := BeginPortable(nil, &want)
	streamed = append(streamed, want.Blob...)
	streamed = EndPortable(streamed, m)
	if !bytes.Equal(streamed, b) {
		t.Fatal("BeginPortable/EndPortable differs from AppendPortable")
	}
}

// FuzzSnapshotDecode throws arbitrary bytes at every decode surface of the
// persistence plane: the container header + record stream, the portable
// record, and all four families' ImportFrom hooks. The invariant everywhere
// is the same — typed error or success, never a panic, and a record that
// parses must re-encode to an identical parse.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendHeader(nil, 0))
	rec := fullRecord()
	f.Add(AppendRecord(AppendHeader(nil, 1), &rec))
	f.Add(AppendPortable(nil, &rec))
	win := windowedRecord()
	f.Add(AppendRecord(AppendHeader(nil, 1), &win))

	// Valid family bodies so the fuzzer explores deep into each decoder.
	u := theta.NewUnion(6, murmur.DefaultSeed)
	for i := uint64(1); i < 40; i++ {
		u.AddHashes([]uint64{i * 0x9E3779B97F4A7C15}, math.MaxUint64)
	}
	f.Add(u.ExportTo(nil))
	h := hll.New(4, murmur.DefaultSeed)
	for i := uint64(0); i < 100; i++ {
		h.Update(i)
	}
	f.Add(h.ExportTo(nil))
	qc := quantiles.NewComposable(64, quantiles.NewFixedBits(true))
	qc.MergeBuffer([]float64{1, 2, 3, 4, 5})
	qa := quantiles.NewAccumulator()
	qc.SnapshotMergeInto(qa)
	f.Add(qa.ExportTo(nil))
	cm := countmin.New(32, 3, murmur.DefaultSeed)
	for i := uint64(0); i < 50; i++ {
		cm.Update(i % 7)
	}
	f.Add(cm.ExportTo(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		if count, rest, err := ParseHeader(data); err == nil {
			for i := 0; i < count && len(rest) > 0; i++ {
				rec, next, err := ParseRecord(rest)
				if err != nil {
					break
				}
				re, _, rerr := ParseRecord(AppendRecord(nil, &rec))
				if rerr != nil {
					t.Fatalf("re-encoded record does not parse: %v", rerr)
				}
				if re.Family != rec.Family || !bytes.Equal(re.Name, rec.Name) ||
					!bytes.Equal(re.Blob, rec.Blob) {
					t.Fatal("record re-encode round trip mismatch")
				}
				rest = next
			}
		}
		ParsePortable(data)

		theta.NewUnion(10, murmur.DefaultSeed).ImportFrom(data)
		hll.New(12, murmur.DefaultSeed).ImportFrom(data)
		quantiles.NewAccumulator().ImportFrom(data)
		countmin.New(64, 4, murmur.DefaultSeed).ImportFrom(data)
	})
}
