// Package snapshot defines the versioned binary container for sketch
// checkpoints — the persistence format of the registry's Checkpoint/Restore
// cycle and of the OpSnapshot/OpRestore wire envelope.
//
// # Container
//
// A checkpoint file is one header followed by count records:
//
//	magic    uint32 LE = "FSNP"
//	version  uint16 LE = 1
//	reserved uint16 LE = 0
//	count    uint32 LE
//	records  count × record
//
// Each record carries one sketch's identity, serving configuration and
// family-encoded state:
//
//	recLen   uint32 LE      (length of everything after this field)
//	family   uint8          (wire.Family)
//	nameLen  uint8          (1..MaxName)
//	name     nameLen bytes
//	shards   uint32 LE      (the S the sketch served with)
//	flags    uint8          (bit 0: view block, bit 1: policy block,
//	                         bit 2: window block + tail)
//	view     [refreshNs int64, maxAgeNs int64]            if flags bit 0
//	policy   [minShards u32, maxShards u32,
//	          highWater f64 bits, lowWater f64 bits]      if flags bit 1
//	window   [intervalNs int64, slots u32,
//	          decay f64 bits]                             if flags bit 2
//	blobLen  uint32 LE
//	blob     blobLen bytes  (the family's ExportTo body)
//	tail     window slot blobs                            if flags bit 2
//
// A windowed record's blob holds the base state (everything outside the
// closed ring slots); the tail serialises the ring slot-by-slot, oldest
// first, plus the optional decay plane:
//
//	slotCount uint32 LE    (≤ window slots)
//	slots     slotCount × [len uint32 LE, blob]
//	decayed   uint8        (0 or 1)
//	dblob     [len uint32 LE, blob]                       if decayed = 1
//
// Records without the window flag are byte-identical to format revisions
// that predate it, and readers reject unknown flag bits, so the extension
// needs no version bump.
//
// # Portable records
//
// A single record prefixed with the format version — AppendPortable — is the
// self-contained unit that travels in OpSnapshot/OpRestore wire bodies, so a
// snapshot pulled from one daemon restores on another even across format
// revisions (the receiver rejects versions it does not speak).
//
// # Allocation discipline
//
// Same idiom as internal/wire: encoders are append-style and return the
// extended buffer; parsers return views into the input (Record.Name and
// Record.Blob alias the parse buffer) and reject truncated, oversized,
// version-skewed or trailing input with typed errors, never panicking.
// BeginRecord/EndRecord bracket in-place blob encoding so the registry can
// stream each family's ExportTo straight into the checkpoint buffer without
// a gather copy.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fastsketches/internal/wire"
)

// Family identifies a sketch family in a record; the values are the wire
// protocol's (the two formats must agree on family numbering so OpSnapshot
// bodies restore without translation).
type Family = wire.Family

// The sketch families, re-exported for callers that only import snapshot.
const (
	FamilyTheta     = wire.FamilyTheta
	FamilyHLL       = wire.FamilyHLL
	FamilyQuantiles = wire.FamilyQuantiles
	FamilyCountMin  = wire.FamilyCountMin
)

const (
	// Magic opens every checkpoint container ("FSNP" little-endian).
	Magic uint32 = 0x504e5346
	// Version is the current container format version.
	Version uint16 = 1
	// MaxName bounds a record's sketch name, matching the wire protocol.
	MaxName = wire.MaxName
	// MaxBlob caps one record's family blob. Records announcing a larger
	// blob are rejected before any allocation; the bound is far above any
	// real sketch (a 2^21-register HLL is 2 MiB) while keeping a corrupt
	// length prefix from ballooning memory.
	MaxBlob = 1 << 28
	// MaxRecords caps the container's record count for the same reason.
	MaxRecords = 1 << 20

	headerLen = 4 + 2 + 2 + 4
	// fixedLen is a record's size net of name, optional blocks and blob.
	fixedLen = 1 + 1 + 4 + 1 + 4

	flagView   = 1 << 0
	flagPolicy = 1 << 1
	flagWindow = 1 << 2

	viewBlockLen   = 8 + 8
	policyBlockLen = 4 + 4 + 8 + 8
	windowBlockLen = 8 + 4 + 8

	// MaxWindowSlots caps a record's window slot count, mirroring the
	// window layer's own ring bound.
	MaxWindowSlots = 1 << 16
)

// The codec's typed errors. Parse functions return one of these (possibly
// wrapped with context); they never panic on any input.
var (
	ErrMagic     = errors.New("snapshot: bad magic")
	ErrVersion   = errors.New("snapshot: unsupported format version")
	ErrTruncated = errors.New("snapshot: truncated input")
	ErrTrailing  = errors.New("snapshot: trailing bytes")
	ErrBadRecord = errors.New("snapshot: malformed record")
)

// Record is one sketch's checkpoint entry. Name and Blob are views into the
// parse buffer on the decode side; on the encode side they are read but
// never retained.
type Record struct {
	Family Family
	Name   []byte
	// Shards is the shard count S the sketch was serving with when the
	// checkpoint was taken; Restore resizes the fresh sketch to it.
	Shards uint32
	// HasView records whether a materialized view was enabled, with its
	// refresh interval and maximum age in nanoseconds (the shard.ViewConfig
	// durations; MaxAge may be negative = never fall back).
	HasView       bool
	ViewRefreshNs int64
	ViewMaxAgeNs  int64
	// HasPolicy records whether an autoscale controller was attached, with
	// the four wire-travelling policy knobs (the rest are production
	// defaults on restore, exactly as on the OpAutoscale path).
	HasPolicy            bool
	MinShards, MaxShards uint32
	HighWater, LowWater  float64
	// HasWindow records whether a sliding window was enabled, with its
	// rotation interval in nanoseconds, closed-slot capacity and decay
	// factor (0 = no decay plane).
	HasWindow        bool
	WindowIntervalNs int64
	WindowSlots      uint32
	WindowDecay      float64
	// WindowSlotBlobs are the closed ring slots' ExportTo bodies, oldest
	// first; WindowDecayedBlob is the decay plane's body (nil when the
	// record has no decay plane). Views into the parse buffer on decode.
	WindowSlotBlobs   [][]byte
	WindowDecayedBlob []byte
	// Blob is the family's ExportTo body. For a windowed record it holds
	// the base state only (live shards, carry, legacy); the closed slots
	// travel in the tail.
	Blob []byte
}

// AppendHeader appends the container header for count records.
func AppendHeader(dst []byte, count int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	dst = binary.LittleEndian.AppendUint16(dst, 0)
	return binary.LittleEndian.AppendUint32(dst, uint32(count))
}

// Marks brackets an in-progress record between BeginRecord and EndRecord.
type Marks struct {
	rec  int // offset of the recLen field
	blob int // offset of the blobLen field
}

// BeginRecord appends everything of rec except the blob — identity, shard
// count, optional view/policy blocks and a blobLen placeholder — and returns
// the marks EndRecord needs. The caller then appends the family blob
// directly (e.g. via ExportTo) and closes the record with EndRecord, so the
// blob is encoded in place with no gather copy. rec.Blob is ignored.
func BeginRecord(dst []byte, rec *Record) ([]byte, Marks) {
	var m Marks
	m.rec = len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	dst = append(dst, byte(rec.Family), byte(len(rec.Name)))
	dst = append(dst, rec.Name...)
	dst = binary.LittleEndian.AppendUint32(dst, rec.Shards)
	var flags byte
	if rec.HasView {
		flags |= flagView
	}
	if rec.HasPolicy {
		flags |= flagPolicy
	}
	if rec.HasWindow {
		flags |= flagWindow
	}
	dst = append(dst, flags)
	if rec.HasView {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ViewRefreshNs))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.ViewMaxAgeNs))
	}
	if rec.HasPolicy {
		dst = binary.LittleEndian.AppendUint32(dst, rec.MinShards)
		dst = binary.LittleEndian.AppendUint32(dst, rec.MaxShards)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.HighWater))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.LowWater))
	}
	if rec.HasWindow {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.WindowIntervalNs))
		dst = binary.LittleEndian.AppendUint32(dst, rec.WindowSlots)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.WindowDecay))
	}
	m.blob = len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	return dst, m
}

// EndBlob backfills the blob length prefix of a record opened with
// BeginRecord, after the caller appended the blob in place. Only needed for
// windowed records, where the window tail follows the blob and EndRecord can
// no longer infer the blob's extent from the buffer length; the caller then
// appends the tail (AppendWindowTail) and closes with EndRecord as usual.
func EndBlob(dst []byte, m *Marks) []byte {
	binary.LittleEndian.PutUint32(dst[m.blob:], uint32(len(dst)-m.blob-4))
	m.blob = -1
	return dst
}

// AppendWindowTail appends a windowed record's tail — the closed ring slots
// oldest first and the optional decay plane — between EndBlob and EndRecord.
// A nil decayed means no decay plane.
func AppendWindowTail(dst []byte, slots [][]byte, decayed []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(slots)))
	for _, sl := range slots {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sl)))
		dst = append(dst, sl...)
	}
	if decayed == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(decayed)))
	return append(dst, decayed...)
}

// EndRecord backfills the record and blob length prefixes of a record opened
// with BeginRecord, after the caller appended the blob (and, for windowed
// records that already ran EndBlob, the window tail).
func EndRecord(dst []byte, m Marks) []byte {
	if m.blob >= 0 {
		binary.LittleEndian.PutUint32(dst[m.blob:], uint32(len(dst)-m.blob-4))
	}
	binary.LittleEndian.PutUint32(dst[m.rec:], uint32(len(dst)-m.rec-4))
	return dst
}

// AppendRecord appends a complete record, blob included — the convenience
// form for callers that already hold the encoded blob (the wire restore
// path).
func AppendRecord(dst []byte, rec *Record) []byte {
	dst, m := BeginRecord(dst, rec)
	dst = append(dst, rec.Blob...)
	if rec.HasWindow {
		dst = EndBlob(dst, &m)
		dst = AppendWindowTail(dst, rec.WindowSlotBlobs, rec.WindowDecayedBlob)
	}
	return EndRecord(dst, m)
}

// ParseHeader validates the container header and returns the record count
// and the remaining bytes (the record stream).
func ParseHeader(data []byte) (count int, rest []byte, err error) {
	if len(data) < headerLen {
		return 0, nil, fmt.Errorf("%w: short header (%d bytes)", ErrTruncated, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != Magic {
		return 0, nil, ErrMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return 0, nil, fmt.Errorf("%w: %d, this build speaks %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint32(data[8:])
	if n > MaxRecords {
		return 0, nil, fmt.Errorf("%w: record count %d exceeds %d", ErrBadRecord, n, MaxRecords)
	}
	return int(n), data[headerLen:], nil
}

// ParseRecord decodes one record from the front of data, returning the
// record (Name and Blob aliasing data) and the bytes after it. The record
// must consume exactly its announced recLen.
func ParseRecord(data []byte) (Record, []byte, error) {
	var rec Record
	if len(data) < 4 {
		return rec, nil, fmt.Errorf("%w: short record length", ErrTruncated)
	}
	recLen := binary.LittleEndian.Uint32(data[0:])
	// A windowed record's tail carries the closed slots and decay plane;
	// grant it the same budget again as the base blob.
	if recLen > 2*MaxBlob+fixedLen+MaxName+viewBlockLen+policyBlockLen+windowBlockLen {
		return rec, nil, fmt.Errorf("%w: record length %d", ErrBadRecord, recLen)
	}
	if len(data)-4 < int(recLen) {
		return rec, nil, fmt.Errorf("%w: record needs %d bytes, have %d", ErrTruncated, recLen, len(data)-4)
	}
	body, rest := data[4:4+recLen], data[4+recLen:]
	if len(body) < 2 {
		return rec, nil, fmt.Errorf("%w: short record body", ErrTruncated)
	}
	rec.Family = Family(body[0])
	if rec.Family < FamilyTheta || rec.Family > FamilyCountMin {
		return rec, nil, fmt.Errorf("%w: unknown family %d", ErrBadRecord, body[0])
	}
	nameLen := int(body[1])
	body = body[2:]
	if nameLen == 0 {
		return rec, nil, fmt.Errorf("%w: empty name", ErrBadRecord)
	}
	if len(body) < nameLen+4+1 {
		return rec, nil, fmt.Errorf("%w: record body shorter than name", ErrTruncated)
	}
	rec.Name = body[:nameLen]
	body = body[nameLen:]
	rec.Shards = binary.LittleEndian.Uint32(body[0:])
	flags := body[4]
	body = body[5:]
	if flags&^(flagView|flagPolicy|flagWindow) != 0 {
		return rec, nil, fmt.Errorf("%w: unknown flags %#x", ErrBadRecord, flags)
	}
	if flags&flagView != 0 {
		if len(body) < viewBlockLen {
			return rec, nil, fmt.Errorf("%w: short view block", ErrTruncated)
		}
		rec.HasView = true
		rec.ViewRefreshNs = int64(binary.LittleEndian.Uint64(body[0:]))
		rec.ViewMaxAgeNs = int64(binary.LittleEndian.Uint64(body[8:]))
		body = body[viewBlockLen:]
	}
	if flags&flagPolicy != 0 {
		if len(body) < policyBlockLen {
			return rec, nil, fmt.Errorf("%w: short policy block", ErrTruncated)
		}
		rec.HasPolicy = true
		rec.MinShards = binary.LittleEndian.Uint32(body[0:])
		rec.MaxShards = binary.LittleEndian.Uint32(body[4:])
		rec.HighWater = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		rec.LowWater = math.Float64frombits(binary.LittleEndian.Uint64(body[16:]))
		body = body[policyBlockLen:]
	}
	if flags&flagWindow != 0 {
		if len(body) < windowBlockLen {
			return rec, nil, fmt.Errorf("%w: short window block", ErrTruncated)
		}
		rec.HasWindow = true
		rec.WindowIntervalNs = int64(binary.LittleEndian.Uint64(body[0:]))
		rec.WindowSlots = binary.LittleEndian.Uint32(body[8:])
		rec.WindowDecay = math.Float64frombits(binary.LittleEndian.Uint64(body[12:]))
		body = body[windowBlockLen:]
	}
	if len(body) < 4 {
		return rec, nil, fmt.Errorf("%w: short blob length", ErrTruncated)
	}
	blobLen := binary.LittleEndian.Uint32(body[0:])
	body = body[4:]
	if !rec.HasWindow {
		// Without a window tail the blob is the record remainder, exactly.
		if int(blobLen) != len(body) {
			return rec, nil, fmt.Errorf("%w: blob length %d does not match record remainder %d", ErrBadRecord, blobLen, len(body))
		}
		rec.Blob = body
		return rec, rest, nil
	}
	if blobLen > MaxBlob || int(blobLen) > len(body) {
		return rec, nil, fmt.Errorf("%w: blob length %d exceeds record remainder %d", ErrBadRecord, blobLen, len(body))
	}
	rec.Blob = body[:blobLen]
	body = body[blobLen:]
	// Window tail: closed slots oldest first, then the optional decay plane.
	// It must consume the record remainder exactly.
	if len(body) < 4 {
		return rec, nil, fmt.Errorf("%w: short window slot count", ErrTruncated)
	}
	slotCount := binary.LittleEndian.Uint32(body[0:])
	body = body[4:]
	if slotCount > MaxWindowSlots || slotCount > rec.WindowSlots {
		return rec, nil, fmt.Errorf("%w: window slot count %d exceeds capacity %d", ErrBadRecord, slotCount, rec.WindowSlots)
	}
	if slotCount > 0 {
		rec.WindowSlotBlobs = make([][]byte, slotCount)
		for i := range rec.WindowSlotBlobs {
			if len(body) < 4 {
				return rec, nil, fmt.Errorf("%w: short window slot length", ErrTruncated)
			}
			n := binary.LittleEndian.Uint32(body[0:])
			body = body[4:]
			if n > MaxBlob || int(n) > len(body) {
				return rec, nil, fmt.Errorf("%w: window slot length %d exceeds remainder %d", ErrBadRecord, n, len(body))
			}
			rec.WindowSlotBlobs[i] = body[:n]
			body = body[n:]
		}
	}
	if len(body) < 1 {
		return rec, nil, fmt.Errorf("%w: short window decay marker", ErrTruncated)
	}
	hasDecayed := body[0]
	body = body[1:]
	switch hasDecayed {
	case 0:
	case 1:
		if len(body) < 4 {
			return rec, nil, fmt.Errorf("%w: short window decay length", ErrTruncated)
		}
		n := binary.LittleEndian.Uint32(body[0:])
		body = body[4:]
		if n > MaxBlob || int(n) != len(body) {
			return rec, nil, fmt.Errorf("%w: window decay length %d does not match remainder %d", ErrBadRecord, n, len(body))
		}
		rec.WindowDecayedBlob = body
		body = nil
	default:
		return rec, nil, fmt.Errorf("%w: bad window decay marker %d", ErrBadRecord, hasDecayed)
	}
	if len(body) != 0 {
		return rec, nil, fmt.Errorf("%w: %d bytes after window tail", ErrBadRecord, len(body))
	}
	return rec, rest, nil
}

// AppendPortable appends the self-contained single-record form used in
// OpSnapshot/OpRestore wire bodies: the format version followed by one
// record (blob included).
func AppendPortable(dst []byte, rec *Record) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	return AppendRecord(dst, rec)
}

// BeginPortable/EndPortable bracket in-place blob encoding of a portable
// record, mirroring BeginRecord/EndRecord.
func BeginPortable(dst []byte, rec *Record) ([]byte, Marks) {
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	return BeginRecord(dst, rec)
}

// EndPortable closes a record opened with BeginPortable.
func EndPortable(dst []byte, m Marks) []byte { return EndRecord(dst, m) }

// ParsePortable decodes a portable single-record body, rejecting trailing
// bytes.
func ParsePortable(data []byte) (Record, error) {
	if len(data) < 2 {
		return Record{}, fmt.Errorf("%w: short portable record", ErrTruncated)
	}
	if v := binary.LittleEndian.Uint16(data[0:]); v != Version {
		return Record{}, fmt.Errorf("%w: %d, this build speaks %d", ErrVersion, v, Version)
	}
	rec, rest, err := ParseRecord(data[2:])
	if err != nil {
		return Record{}, err
	}
	if len(rest) != 0 {
		return Record{}, fmt.Errorf("%w: %d bytes after portable record", ErrTrailing, len(rest))
	}
	return rec, nil
}
