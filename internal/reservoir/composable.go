package reservoir

import (
	"math"
	"sync/atomic"
)

// Snap is the immutable published view of the concurrent reservoir.
type Snap struct {
	// MeanValue is the sample mean (unbiased estimate of the stream mean).
	MeanValue float64
	// Retained is the current sample size (k once the reservoir fills).
	Retained int
	// Threshold is the smallest retained key (the pre-filter boundary).
	Threshold float64
}

// Composable wraps a reservoir Sketch as the shared global sketch of the
// concurrent framework.
//
// Pre-filtering (the Section 5.1 example): writers draw each item's
// sampling key locally; the hint carries the global reservoir's current key
// threshold, and shouldAdd drops items whose key is already below it — they
// could never enter the sample, exactly like Θ's h(a) < Θ test. Because the
// threshold is monotonically non-decreasing, stale hints are conservative
// and safe.
//
// Note on semantics: the concurrent reservoir estimates stream *mean*
// statistics. The total stream length n is not tracked through the
// concurrent path (pre-filtered items never reach the global sketch), so
// sum-style estimates that need n are a sequential-sketch feature.
type Composable struct {
	gadget *Sketch
	snap   atomic.Pointer[Snap]
	// hintBits caches Float64bits(threshold) | min 1; see CalcHint.
	hintBits atomic.Uint64
}

// NewComposable returns a composable reservoir keeping k samples.
func NewComposable(k int, rngSeed int64) *Composable {
	c := &Composable{gadget: New(k, rngSeed)}
	c.snap.Store(&Snap{MeanValue: math.NaN()})
	c.hintBits.Store(1)
	return c
}

// MergeBuffer folds a batch of pre-keyed items into the global reservoir.
// Propagator goroutine only.
func (c *Composable) MergeBuffer(items []Item) {
	for _, it := range items {
		c.gadget.UpdateItem(it)
	}
	c.publish()
}

// DirectUpdate applies one item during the eager phase.
func (c *Composable) DirectUpdate(it Item) {
	c.gadget.UpdateItem(it)
	c.publish()
}

func (c *Composable) publish() {
	th := c.gadget.Threshold()
	c.snap.Store(&Snap{
		MeanValue: c.gadget.Mean(),
		Retained:  len(c.gadget.heap),
		Threshold: th,
	})
	bits := math.Float64bits(th)
	if bits == 0 {
		bits = 1 // reserved: 0 means "propagation pending" on prop_i
	}
	c.hintBits.Store(bits)
}

// CalcHint returns the key threshold encoded as float64 bits (≥ 1).
func (c *Composable) CalcHint() uint64 { return c.hintBits.Load() }

// ShouldAdd keeps items whose key can still win a reservoir slot. The
// threshold only grows, so filtering against a stale hint never drops a
// viable item.
func (c *Composable) ShouldAdd(hint uint64, it Item) bool {
	return it.Key > math.Float64frombits(hint)
}

// Snapshot returns the latest published view (wait-free).
func (c *Composable) Snapshot() *Snap { return c.snap.Load() }

// Mean returns the latest published sample mean.
func (c *Composable) Mean() float64 { return c.snap.Load().MeanValue }

// Gadget exposes the underlying sketch; safe only after framework close.
func (c *Composable) Gadget() *Sketch { return c.gadget }
