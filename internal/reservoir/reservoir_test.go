package reservoir

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFillPhaseKeepsEverything(t *testing.T) {
	s := New(10, 1)
	for i := 0; i < 10; i++ {
		s.Update(float64(i))
	}
	sample := s.Sample()
	if len(sample) != 10 {
		t.Fatalf("sample size %d, want 10", len(sample))
	}
	sort.Float64s(sample)
	for i, v := range sample {
		if v != float64(i) {
			t.Fatalf("fill phase lost item: %v", sample)
		}
	}
	if s.Threshold() == 0 {
		t.Error("threshold should be positive once full")
	}
}

func TestThresholdMonotone(t *testing.T) {
	s := New(16, 2)
	prev := 0.0
	for i := 0; i < 10000; i++ {
		s.Update(float64(i))
		th := s.Threshold()
		if th < prev {
			t.Fatalf("threshold decreased: %v → %v", prev, th)
		}
		prev = th
	}
}

func TestSampleSizeCapped(t *testing.T) {
	s := New(32, 3)
	for i := 0; i < 100000; i++ {
		s.Update(float64(i))
	}
	if len(s.Sample()) != 32 {
		t.Fatalf("sample size %d, want 32", len(s.Sample()))
	}
	if s.N() != 100000 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestUniformity(t *testing.T) {
	// Every stream position should be sampled with probability k/n. Feed
	// 0..999, k=100, over many independent sketches; each item's inclusion
	// frequency should be ≈ 0.1.
	const k, n, trials = 100, 1000, 300
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s := New(k, int64(tr)+10)
		for i := 0; i < n; i++ {
			s.Update(float64(i))
		}
		for _, v := range s.Sample() {
			counts[int(v)]++
		}
	}
	// Expected inclusion count per item: trials·k/n = 30, σ ≈ √(30·0.9) ≈ 5.2.
	for i, c := range counts {
		if math.Abs(float64(c)-30) > 6*5.2 {
			t.Fatalf("item %d sampled %d times, want ≈30 (non-uniform)", i, c)
		}
	}
	// First and second halves of the stream should be equally represented.
	firstHalf := 0
	for i := 0; i < n/2; i++ {
		firstHalf += counts[i]
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	frac := float64(firstHalf) / float64(total)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("first-half fraction %v, want ≈0.5", frac)
	}
}

func TestMeanUnbiased(t *testing.T) {
	// Stream mean 499.5; average of sample means over trials should match.
	const k, n, trials = 64, 1000, 400
	var sum float64
	for tr := 0; tr < trials; tr++ {
		s := New(k, int64(tr)+999)
		for i := 0; i < n; i++ {
			s.Update(float64(i))
		}
		sum += s.Mean()
	}
	avg := sum / trials
	// σ of one sample mean ≈ 289/√64 ≈ 36; of the average ≈ 1.8.
	if math.Abs(avg-499.5) > 9 {
		t.Fatalf("average sample mean %v, want ≈499.5", avg)
	}
}

func TestEstimateSum(t *testing.T) {
	const n = 10000
	s := New(256, 5)
	for i := 0; i < n; i++ {
		s.Update(2.0)
	}
	if got := s.EstimateSum(); got != 2*n {
		t.Fatalf("constant-stream sum estimate %v, want %v", got, 2*n)
	}
}

func TestMergeIsUniformOverConcatenation(t *testing.T) {
	// Merge two reservoirs over disjoint halves; items from both halves
	// should appear in proportion.
	const k, n, trials = 100, 1000, 300
	firstHalf := 0
	total := 0
	for tr := 0; tr < trials; tr++ {
		a := New(k, int64(tr)*2+1)
		b := New(k, int64(tr)*2+2)
		for i := 0; i < n/2; i++ {
			a.Update(float64(i))
			b.Update(float64(i + n/2))
		}
		a.Merge(b)
		if a.N() != n {
			t.Fatalf("merged N = %d", a.N())
		}
		for _, v := range a.Sample() {
			if v < n/2 {
				firstHalf++
			}
			total++
		}
	}
	frac := float64(firstHalf) / float64(total)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("merged first-half fraction %v, want ≈0.5", frac)
	}
}

func TestMergeSumConsistency(t *testing.T) {
	a := New(32, 7)
	b := New(32, 8)
	for i := 0; i < 5000; i++ {
		a.Update(1.0)
		b.Update(3.0)
	}
	a.Merge(b)
	// All sampled values are 1 or 3; the mean must lie strictly between,
	// near 2 (both halves equally likely).
	m := a.Mean()
	if m < 1 || m > 3 {
		t.Fatalf("merged mean %v outside value range", m)
	}
}

func TestPropertyMeanWithinValueRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64, size uint16) bool {
		n := int(size)%2000 + 1
		s := New(16, seed)
		rng := rand.New(rand.NewSource(seed ^ 77))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 50
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			s.Update(v)
		}
		m := s.Mean()
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyIncrementalSumMatchesRecompute(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(12))}
	f := func(seed int64) bool {
		s := New(8, seed)
		rng := rand.New(rand.NewSource(seed ^ 123))
		for i := 0; i < 500; i++ {
			s.Update(rng.Float64() * 100)
		}
		var sum float64
		for _, v := range s.Sample() {
			sum += v
		}
		return math.Abs(sum/float64(len(s.Sample()))-s.Mean()) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	s := New(8, 13)
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	s.Reset()
	if s.N() != 0 || len(s.Sample()) != 0 || s.Threshold() != 0 {
		t.Fatal("reset incomplete")
	}
	if !math.IsNaN(s.Mean()) {
		t.Fatal("mean of empty reservoir should be NaN")
	}
}

func TestComposableFilteringCorrect(t *testing.T) {
	// Items filtered against a stale threshold must never change the
	// resulting sample: simulate the writer-side filter and compare against
	// an unfiltered reference fed the same items.
	ref := New(32, 0)
	filtered := New(32, 0)
	comp := NewComposable(32, 0)
	rng := rand.New(rand.NewSource(99))
	var staleHint uint64 = 1
	var batch []Item
	for i := 0; i < 20000; i++ {
		it := Item{Value: float64(i), Key: rng.Float64()}
		ref.UpdateItem(it)
		if comp.ShouldAdd(staleHint, it) {
			batch = append(batch, it)
		}
		if len(batch) == 16 {
			comp.MergeBuffer(batch)
			batch = batch[:0]
			staleHint = comp.CalcHint() // refresh like the framework does
		}
	}
	comp.MergeBuffer(batch)
	for _, it := range comp.Gadget().Items() {
		filtered.UpdateItem(it)
	}
	// The retained key sets must be identical: filtering only removed items
	// that could not have been retained.
	a := ref.Items()
	b := comp.Gadget().Items()
	sort.Slice(a, func(i, j int) bool { return a[i].Key < a[j].Key })
	sort.Slice(b, func(i, j int) bool { return b[i].Key < b[j].Key })
	if len(a) != len(b) {
		t.Fatalf("retained sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retained item %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestComposableSnapshotConsistent(t *testing.T) {
	comp := NewComposable(64, 1)
	rng := rand.New(rand.NewSource(3))
	var batch []Item
	for i := 0; i < 10000; i++ {
		batch = append(batch, Item{Value: rng.Float64() * 10, Key: rng.Float64()})
		if len(batch) == 32 {
			comp.MergeBuffer(batch)
			batch = batch[:0]
			s := comp.Snapshot()
			if s.Retained > 64 {
				t.Fatal("snapshot retained exceeds k")
			}
			if s.Retained > 0 && (s.MeanValue < 0 || s.MeanValue > 10) {
				t.Fatalf("snapshot mean %v outside value range", s.MeanValue)
			}
		}
	}
	if comp.CalcHint() == 0 {
		t.Fatal("hint must never be zero")
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(float64(i))
	}
}
