// Package reservoir implements a mergeable uniform reservoir sample — the
// second pre-filtering example named in Section 5.1 of "Fast Concurrent
// Data Sketches" ("Another example is reservoir sampling [26]").
//
// Instead of Vitter's classic position-based algorithm, the sketch uses the
// Efraimidis–Spirakis formulation: every stream item draws an independent
// uniform key u ∈ (0,1), and the sample is the k items with the LARGEST
// keys. This is distributionally identical to a uniform k-reservoir, but it
// is order-agnostic and mergeable (union the candidates, keep the k largest
// keys) — and it exposes exactly the hint structure the concurrent
// framework wants: once the reservoir is full, its smallest retained key is
// a threshold below which no new item can ever be sampled, so
// shouldAdd(hint, item) = item.key > threshold prunes updates before they
// touch any shared state, mirroring the Θ sketch's h(a) < Θ filter.
package reservoir

import (
	"fmt"
	"math"
	"math/rand"
)

// Item is a stream value tagged with its sampling key.
type Item struct {
	Value float64
	Key   float64 // uniform (0,1); larger keys win reservoir slots
}

// Sketch is a sequential mergeable reservoir sample of float64 values.
// It is not safe for concurrent use.
type Sketch struct {
	k    int
	n    uint64 // stream length seen (for unbiased total estimates)
	heap []Item // min-heap on Key: heap[0] is the eviction threshold
	sum  float64
	rng  *rand.Rand
}

// New returns an empty reservoir keeping k samples. rngSeed seeds the key
// generator (the de-randomisation oracle of the paper: fixing it makes the
// sketch deterministic).
func New(k int, rngSeed int64) *Sketch {
	if k < 1 {
		panic(fmt.Sprintf("reservoir: k must be ≥ 1, got %d", k))
	}
	return &Sketch{
		k:    k,
		heap: make([]Item, 0, k),
		rng:  rand.New(rand.NewSource(rngSeed)),
	}
}

// K returns the reservoir capacity.
func (s *Sketch) K() int { return s.k }

// N returns the number of stream items observed.
func (s *Sketch) N() uint64 { return s.n }

// Update samples one stream value.
func (s *Sketch) Update(v float64) {
	s.UpdateItem(Item{Value: v, Key: s.rng.Float64()})
}

// UpdateItem processes a value with a pre-drawn key (the form the
// concurrent framework uses: writers draw keys locally, so the global merge
// consumes deterministic items).
func (s *Sketch) UpdateItem(it Item) {
	s.n++
	if len(s.heap) < s.k {
		s.sum += it.Value
		s.push(it)
		return
	}
	if it.Key <= s.heap[0].Key {
		return // below threshold: can never displace a retained sample
	}
	s.sum += it.Value - s.heap[0].Value
	s.heap[0] = it
	s.siftDown(0)
}

// Threshold returns the smallest retained key once the reservoir is full,
// and 0 before that (accept everything).
func (s *Sketch) Threshold() float64 {
	if len(s.heap) < s.k {
		return 0
	}
	return s.heap[0].Key
}

// Sample returns a copy of the current sample values.
func (s *Sketch) Sample() []float64 {
	out := make([]float64, len(s.heap))
	for i, it := range s.heap {
		out[i] = it.Value
	}
	return out
}

// Items returns a copy of the retained items with keys (for merging).
func (s *Sketch) Items() []Item {
	return append([]Item(nil), s.heap...)
}

// Mean returns the sample mean — an unbiased estimate of the stream mean.
// Maintained incrementally, so it is O(1).
func (s *Sketch) Mean() float64 {
	if len(s.heap) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.heap))
}

// EstimateSum estimates the sum of all stream values: n · mean(sample).
func (s *Sketch) EstimateSum() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.n) * s.Mean()
}

// Merge folds another reservoir into this one; the result is a uniform
// sample of the concatenated streams (union of candidates, k largest keys).
func (s *Sketch) Merge(other *Sketch) {
	s.n += other.n
	for _, it := range other.heap {
		s.n-- // UpdateItem will re-count it
		s.UpdateItem(it)
	}
}

// Reset restores the empty state (the RNG keeps its sequence).
func (s *Sketch) Reset() {
	s.n = 0
	s.sum = 0
	s.heap = s.heap[:0]
}

func (s *Sketch) push(it Item) {
	s.heap = append(s.heap, it)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].Key <= s.heap[i].Key {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.heap[l].Key < s.heap[smallest].Key {
			smallest = l
		}
		if r < n && s.heap[r].Key < s.heap[smallest].Key {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}
