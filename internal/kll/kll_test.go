package kll

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fastsketches/internal/core"
	"fastsketches/internal/quantiles"
)

func feedSequential(s *Sketch, n int) {
	for i := 0; i < n; i++ {
		s.Update(float64(i))
	}
}

func trueRank(v float64, n int) float64 {
	below := math.Ceil(v)
	if below < 0 {
		below = 0
	}
	if below > float64(n) {
		below = float64(n)
	}
	return below / float64(n)
}

func TestEmpty(t *testing.T) {
	s := New(128, 1)
	if !s.IsEmpty() || !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Rank(0)) {
		t.Fatal("empty sketch misbehaves")
	}
}

func TestSmallExact(t *testing.T) {
	s := New(128, 1)
	for _, v := range []float64{5, 1, 9, 3, 7} {
		s.Update(v)
	}
	if s.Min() != 1 || s.Max() != 9 || s.Quantile(0.5) != 5 {
		t.Fatalf("small-stream queries wrong: min=%v max=%v med=%v", s.Min(), s.Max(), s.Quantile(0.5))
	}
}

func TestRankAccuracy(t *testing.T) {
	const k, n = 200, 1 << 17
	s := New(k, 7)
	feedSequential(s, n)
	eps := EpsilonBound(k)
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := s.Quantile(phi)
		r := trueRank(v, n)
		if math.Abs(r-phi) > 2*eps {
			t.Errorf("phi=%.2f: rank error %.4f > 2ε=%.4f", phi, math.Abs(r-phi), 2*eps)
		}
	}
}

func TestRankAccuracyRandomOrder(t *testing.T) {
	const k, n = 200, 1 << 16
	s := New(k, 11)
	for _, v := range rand.New(rand.NewSource(3)).Perm(n) {
		s.Update(float64(v))
	}
	eps := EpsilonBound(k)
	for _, phi := range []float64{0.05, 0.5, 0.95} {
		r := trueRank(s.Quantile(phi), n)
		if math.Abs(r-phi) > 2*eps {
			t.Errorf("phi=%.2f: rank error %.4f", phi, math.Abs(r-phi))
		}
	}
}

func TestWeightInvariant(t *testing.T) {
	s := New(64, 13)
	check := func() {
		var w uint64
		for h, lv := range s.lvls {
			w += uint64(len(lv)) << uint(h)
		}
		if w != s.n {
			t.Fatalf("retained weight %d != n %d", w, s.n)
		}
	}
	for i := 0; i < 100000; i++ {
		s.Update(rand.New(rand.NewSource(int64(i))).Float64())
		if i%9973 == 0 {
			check()
		}
	}
	check()
}

func TestSublinearSpace(t *testing.T) {
	s := New(128, 17)
	feedSequential(s, 1<<20)
	if r := s.Retained(); r > 4096 {
		t.Errorf("retained %d items for 1M stream; expected sketch-sized state", r)
	}
}

func TestUpperLevelsSorted(t *testing.T) {
	s := New(64, 19)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50000; i++ {
		s.Update(rng.NormFloat64())
	}
	for h := 1; h < len(s.lvls); h++ {
		if !sort.Float64sAreSorted(s.lvls[h]) {
			t.Fatalf("level %d not sorted", h)
		}
	}
}

func TestMergeMatchesConcatenation(t *testing.T) {
	const k, n = 200, 1 << 16
	a, b := New(k, 29), New(k, 31)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a.Update(float64(i))
		} else {
			b.Update(float64(i))
		}
	}
	a.Merge(b)
	if a.N() != n {
		t.Fatalf("merged N = %d", a.N())
	}
	if a.Min() != 0 || a.Max() != float64(n-1) {
		t.Fatalf("merged min/max %v/%v", a.Min(), a.Max())
	}
	eps := EpsilonBound(k)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		r := trueRank(a.Quantile(phi), n)
		if math.Abs(r-phi) > 3*eps {
			t.Errorf("phi=%.2f: merged rank error %.4f", phi, math.Abs(r-phi))
		}
	}
}

func TestMergeEmptyNoOp(t *testing.T) {
	a := New(64, 1)
	feedSequential(a, 1000)
	before := a.Quantile(0.5)
	a.Merge(New(64, 2))
	if a.N() != 1000 || a.Quantile(0.5) != before {
		t.Fatal("merging empty sketch changed state")
	}
}

func TestReset(t *testing.T) {
	s := New(64, 1)
	feedSequential(s, 50000)
	s.Reset()
	if !s.IsEmpty() || s.Retained() != 0 {
		t.Fatal("reset incomplete")
	}
	s.Update(3)
	if s.Quantile(0.5) != 3 {
		t.Fatal("post-reset update broken")
	}
}

func TestPropertyQuantileWithinMinMax(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(37))}
	f := func(seed int64, size uint16, phi float64) bool {
		phi = math.Abs(phi)
		phi -= math.Floor(phi)
		n := int(size)%5000 + 1
		s := New(32, seed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			s.Update(rng.NormFloat64())
		}
		q := s.Quantile(phi)
		return q >= s.Min() && q <= s.Max()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyRankMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(41))}
	f := func(seed int64) bool {
		s := New(32, seed)
		rng := rand.New(rand.NewSource(seed ^ 9))
		for i := 0; i < 20000; i++ {
			s.Update(rng.Float64() * 100)
		}
		prev := -1.0
		for v := 0.0; v <= 100; v += 5 {
			r := s.Rank(v)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// composableKLL adapts KLL to the concurrent framework's Global interface,
// proving the Section 6.2 algorithm-independence: the framework needs
// nothing sketch-specific beyond the four methods.
type composableKLL struct {
	gadget *Sketch
}

func (c *composableKLL) MergeBuffer(vals []float64) {
	for _, v := range vals {
		c.gadget.Update(v)
	}
}
func (c *composableKLL) DirectUpdate(v float64)                { c.gadget.Update(v) }
func (c *composableKLL) CalcHint() uint64                      { return 1 }
func (c *composableKLL) ShouldAdd(hint uint64, v float64) bool { return true }

func TestConcurrentKLLUnderFramework(t *testing.T) {
	// Single writer through the framework; queries after Close. The rank
	// error must satisfy the same relaxed PAC arithmetic as the classic
	// quantiles sketch — the Section 6.2 claim is sketch-agnostic.
	const k, b, n = 200, 16, 1 << 16
	comp := &composableKLL{gadget: New(k, 43)}
	fw := core.New[float64](comp, core.Config{Workers: 1, BufferSize: b, MaxError: 1})
	fw.Start()
	for i := 0; i < n; i++ {
		fw.Update(0, float64(i))
	}
	fw.Close()
	if comp.gadget.N() != n {
		t.Fatalf("N = %d, want %d", comp.gadget.N(), n)
	}
	eps := EpsilonBound(k)
	r := fw.Relaxation()
	epsR := quantiles.RelaxedEpsilon(eps, r, n) // same ε_r formula, any PAC sketch
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		rank := trueRank(comp.gadget.Quantile(phi), n)
		if math.Abs(rank-phi) > 2*epsR {
			t.Errorf("phi=%.2f: rank error %.4f > 2ε_r=%.4f", phi, math.Abs(rank-phi), 2*epsR)
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(200, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Update(float64(i))
	}
}

func BenchmarkQuantile(b *testing.B) {
	s := New(200, 1)
	feedSequential(s, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.5)
	}
}
