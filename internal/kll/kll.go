// Package kll implements the KLL streaming quantiles sketch (Karnin, Lang,
// Liberty, FOCS 2016) — the modern successor of the classic mergeable
// quantiles summary, and the second PAC quantiles substrate of this
// repository.
//
// Section 6.2 of "Fast Concurrent Data Sketches" proves its relaxation
// bound "for any implementation of the sequential Quantiles sketch,
// provided that the sketch is PAC". Having two independent PAC
// implementations (the classic summary in internal/quantiles and KLL here)
// lets the test suite demonstrate exactly that algorithm-independence: the
// same concurrent framework and the same ε_r arithmetic apply to both.
//
// The implementation uses the standard single-array-of-levels design:
// level h holds items of weight 2^h; level capacities decay geometrically
// (cap(h) = ⌈k·c^(depth−1−h)⌉ with c = 2/3, floored at 8); when the sketch
// is over capacity the lowest full level is compacted — sorted, then every
// other item (random offset) promoted to the level above.
package kll

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

const (
	capacityDecay = 2.0 / 3.0
	minLevelCap   = 8
)

// Sketch is a sequential KLL quantiles sketch over float64 values.
// It is not safe for concurrent use.
type Sketch struct {
	k    int
	n    uint64
	min  float64
	max  float64
	lvls [][]float64 // lvls[h]: weight 2^h; level 0 unsorted, others sorted
	rng  *rand.Rand
}

// New returns an empty KLL sketch with accuracy parameter k (≥ 8). The
// normalized rank error is ≈ 1.7/k at one standard deviation. rngSeed
// seeds the compaction coin flips (the de-randomisation oracle).
func New(k int, rngSeed int64) *Sketch {
	if k < minLevelCap {
		panic(fmt.Sprintf("kll: k must be ≥ %d, got %d", minLevelCap, k))
	}
	return &Sketch{
		k:    k,
		min:  math.Inf(1),
		max:  math.Inf(-1),
		lvls: [][]float64{make([]float64, 0, k)},
		rng:  rand.New(rand.NewSource(rngSeed)),
	}
}

// K returns the accuracy parameter.
func (s *Sketch) K() int { return s.k }

// N returns the number of items summarised.
func (s *Sketch) N() uint64 { return s.n }

// IsEmpty reports whether no items have been processed.
func (s *Sketch) IsEmpty() bool { return s.n == 0 }

// Min returns the exact minimum (+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the exact maximum (−Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// levelCap returns the capacity of level h given the current depth.
func (s *Sketch) levelCap(h int) int {
	depth := len(s.lvls)
	c := float64(s.k) * math.Pow(capacityDecay, float64(depth-1-h))
	if c < minLevelCap {
		return minLevelCap
	}
	return int(math.Ceil(c))
}

// totalCap returns the summed level capacities.
func (s *Sketch) totalCap() int {
	t := 0
	for h := range s.lvls {
		t += s.levelCap(h)
	}
	return t
}

// retained returns the number of stored items.
func (s *Sketch) retained() int {
	t := 0
	for _, lv := range s.lvls {
		t += len(lv)
	}
	return t
}

// Retained returns the number of stored items.
func (s *Sketch) Retained() int { return s.retained() }

// Update processes one stream value.
func (s *Sketch) Update(v float64) {
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.n++
	s.lvls[0] = append(s.lvls[0], v)
	if s.retained() > s.totalCap() {
		s.compress()
	}
}

// compress compacts the lowest level that is over its capacity.
func (s *Sketch) compress() {
	for h := 0; h < len(s.lvls); h++ {
		if len(s.lvls[h]) <= s.levelCap(h) {
			continue
		}
		s.compactLevel(h)
		return
	}
	// All levels within capacity individually but total over budget:
	// compact the lowest non-empty level.
	for h := 0; h < len(s.lvls); h++ {
		if len(s.lvls[h]) >= 2 {
			s.compactLevel(h)
			return
		}
	}
}

// compactLevel sorts level h and promotes a random half to level h+1.
func (s *Sketch) compactLevel(h int) {
	lv := s.lvls[h]
	if len(lv) < 2 {
		return
	}
	sort.Float64s(lv)
	// Keep an odd leftover item (if any) at level h.
	odd := len(lv) % 2
	var leftover []float64
	if odd == 1 {
		leftover = []float64{lv[len(lv)-1]}
		lv = lv[:len(lv)-1]
	}
	offset := 0
	if s.rng.Int63()&1 == 1 {
		offset = 1
	}
	promoted := make([]float64, 0, len(lv)/2)
	for i := offset; i < len(lv); i += 2 {
		promoted = append(promoted, lv[i])
	}
	s.lvls[h] = append(s.lvls[h][:0], leftover...)
	if h+1 == len(s.lvls) {
		s.lvls = append(s.lvls, nil)
	}
	s.lvls[h+1] = mergeSorted(s.lvls[h+1], promoted)
}

// mergeSorted merges two sorted slices (level 0 is handled by callers that
// sort first).
func mergeSorted(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Merge folds other into s; afterwards s summarises both streams.
func (s *Sketch) Merge(other *Sketch) {
	if other.n == 0 {
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	for len(s.lvls) < len(other.lvls) {
		s.lvls = append(s.lvls, nil)
	}
	for h, lv := range other.lvls {
		if len(lv) == 0 {
			continue
		}
		if h == 0 {
			s.lvls[0] = append(s.lvls[0], lv...)
			continue
		}
		cp := append([]float64(nil), lv...)
		s.lvls[h] = mergeSorted(s.lvls[h], cp)
	}
	for s.retained() > s.totalCap() {
		s.compress()
	}
}

// Reset restores the empty state (the RNG keeps its sequence).
func (s *Sketch) Reset() {
	s.n = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
	s.lvls = s.lvls[:1]
	s.lvls[0] = s.lvls[0][:0]
}

// weighted is a (value, weight) pair for query evaluation.
type weighted struct {
	value  float64
	weight uint64
}

// gather returns all retained items with weights, sorted by value.
func (s *Sketch) gather() []weighted {
	items := make([]weighted, 0, s.retained())
	for h, lv := range s.lvls {
		w := uint64(1) << uint(h)
		for _, v := range lv {
			items = append(items, weighted{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].value < items[j].value })
	return items
}

// Quantile returns an element whose normalized rank is approximately phi.
func (s *Sketch) Quantile(phi float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return s.min
	}
	if phi >= 1 {
		return s.max
	}
	target := phi * float64(s.n)
	var cum float64
	for _, it := range s.gather() {
		cum += float64(it.weight)
		if cum >= target {
			return it.value
		}
	}
	return s.max
}

// Rank returns the estimated normalized rank of v.
func (s *Sketch) Rank(v float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	var below uint64
	for h, lv := range s.lvls {
		w := uint64(1) << uint(h)
		if h == 0 {
			for _, x := range lv {
				if x < v {
					below += w
				}
			}
			continue
		}
		below += uint64(sort.SearchFloat64s(lv, v)) * w
	}
	return float64(below) / float64(s.n)
}

// EpsilonBound returns the (empirical-constant) normalized rank error bound
// for parameter k at roughly two standard deviations: ≈ 2.9/k, the constant
// quoted for KLL with the 2/3 decay schedule.
func EpsilonBound(k int) float64 {
	return 2.9 / float64(k)
}
