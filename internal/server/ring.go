package server

import (
	"runtime"
	"sync/atomic"
)

// ringBits sizes each lane's dispatch ring at 2^ringBits chunk slots. 64
// slots lets many batches pipeline per lane (the old one-buffered-chunk
// channel was the ceiling) while keeping the per-lane footprint at two cache
// lines of sequence words plus the slot payloads.
const ringBits = 6

const (
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// Tunable spin budgets, package variables so the interleaving tests can force
// the park/wake slow paths deterministically.
var (
	// workerSpins is how many empty polls a lane worker makes (yielding
	// between polls) before publishing itself parked and blocking on its wake
	// channel. Parking costs one channel hand-off on each side; spinning
	// costs scheduler churn, so the budget is small.
	workerSpins = 4
	// dispatchSpins is how many times an ingest call polls the batch
	// countdown (yielding between polls) before publishing itself parked and
	// blocking on the batch semaphore.
	dispatchSpins = 4
)

// slot is one ring entry. seq is the Vyukov sequence word: slot i starts at
// i; a producer that claimed position p publishes by storing p+1; the
// consumer releases the slot for the next lap by storing p+ringSize. The
// payload fields are plain because every cross-goroutine hand-off is ordered
// by the seq store/load pair.
type slot struct {
	seq   atomic.Uint64
	items []byte
	bs    *batchState
}

// ring is a bounded multi-producer single-consumer queue of batch chunks —
// the lock-free replacement for the per-lane channel. Producers (connection
// handlers dispatching a batch) contend only on a CAS of head; the single
// consumer (the lane worker) advances tail with plain stores, so the
// steady-state dispatch fast path has no mutex, no channel, and no
// allocation.
type ring struct {
	_     cacheLinePad
	head  atomic.Uint64 // next position producers claim
	_     cacheLinePad
	tail  uint64 // next position the consumer reads; worker-goroutine private
	_     cacheLinePad
	slots [ringSize]slot
}

type cacheLinePad [8]uint64

func (r *ring) init() {
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
}

// push enqueues one chunk, spinning while the ring is full. It returns false
// without enqueuing when closed flips while waiting — the hook that lets a
// dispatcher stalled behind a wedged lane worker abandon the batch instead
// of delaying shutdown forever (the old RWMutex-held-across-send bug).
func (r *ring) push(items []byte, bs *batchState, closed *atomic.Bool) bool {
	for {
		head := r.head.Load()
		s := &r.slots[head&ringMask]
		diff := int64(s.seq.Load()) - int64(head)
		switch {
		case diff == 0:
			if r.head.CompareAndSwap(head, head+1) {
				s.items, s.bs = items, bs
				s.seq.Store(head + 1)
				return true
			}
		case diff < 0:
			// A full lap behind: the consumer has not yet released this
			// slot. Yield rather than burn the consumer's timeslice.
			if closed.Load() {
				return false
			}
			runtime.Gosched()
		default:
			// Another producer claimed head between our loads; retry.
		}
	}
}

// pop dequeues the next chunk if one is published. Single consumer only.
func (r *ring) pop() ([]byte, *batchState, bool) {
	s := &r.slots[r.tail&ringMask]
	if int64(s.seq.Load())-int64(r.tail+1) < 0 {
		return nil, nil, false
	}
	items, bs := s.items, s.bs
	s.items, s.bs = nil, nil
	s.seq.Store(r.tail + ringSize)
	r.tail++
	return items, bs, true
}

// pending reports whether the next slot is published. Consumer goroutine
// only (it reads the consumer-private tail) — the recheck a worker performs
// after publishing itself parked.
func (r *ring) pending() bool {
	s := &r.slots[r.tail&ringMask]
	return int64(s.seq.Load())-int64(r.tail+1) >= 0
}

// batchState is the per-batch completion countdown replacing the old
// per-ingest WaitGroup (which escaped to the heap on every batch). One
// batchState lives on each connection and is re-armed per batch, so the
// steady-state ingest path allocates nothing.
//
// Completion hand-off is spin-then-park: the dispatcher polls remaining,
// then publishes parked and blocks on sema (capacity 1). The finishing
// worker that brings remaining to zero posts a token iff it observes parked.
// Sequential consistency of the two flags makes the hand-off lossless:
// either the worker's decrement precedes the dispatcher's remaining poll
// (the dispatcher never blocks) or the dispatcher's parked store precedes
// the worker's parked load (the worker posts the token). A token posted
// after the dispatcher already observed zero is left behind; arm drains it
// before the next batch.
type batchState struct {
	remaining atomic.Int32
	parked    atomic.Bool
	sema      chan struct{}
}

func newBatchState() *batchState {
	return &batchState{sema: make(chan struct{}, 1)}
}

// arm readies the state for a batch of n chunks, discarding any stale token
// a straggling completer posted after the previous batch's wait returned.
func (bs *batchState) arm(n int32) {
	bs.remaining.Store(n)
	bs.parked.Store(false)
	select {
	case <-bs.sema:
	default:
	}
}

// complete retires n chunks. The caller that brings remaining to zero wakes
// the dispatcher if it is parked.
func (bs *batchState) complete(n int32) {
	if bs.remaining.Add(-n) == 0 && bs.parked.Load() {
		select {
		case bs.sema <- struct{}{}:
		default:
		}
	}
}

// wait blocks until every armed chunk has completed.
func (bs *batchState) wait() {
	for i := 0; i < dispatchSpins; i++ {
		if bs.remaining.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
	bs.parked.Store(true)
	for bs.remaining.Load() != 0 {
		<-bs.sema
	}
	bs.parked.Store(false)
}
