// Package server implements sketchd's TCP front-end over a
// fastsketches.Registry: the serving layer that turns the in-process
// concurrent-sketch library into a network daemon carrying many clients'
// traffic. It speaks the internal/wire protocol — length-prefixed binary
// frames — and is built so the paper's concurrency actually gets exercised
// per connection:
//
//   - Batched ingest. One OpBatch frame carries many updates; the server
//     fans each batch into the sketch's W writer lanes (one long-lived lane
//     worker goroutine per lane per sketch, respecting the framework's
//     one-goroutine-per-lane discipline) and acks after every item's Update
//     has returned. An acked batch is therefore a set of *completed* updates
//     in the paper's sense: the merged-query staleness bound S·r applies to
//     it exactly as it would to in-process writers.
//
//   - Pipelined queries. Requests are answered in order per connection, so
//     clients may keep many frames in flight. Every query is served through
//     the zero-allocation QueryInto plane with per-connection reusable
//     accumulators: one accumulator per family per connection (accumulator
//     dimensions depend only on the registry's family parameters, never on
//     the sketch or its shard count), reset and refolded per query — the
//     serving path inherits the library's zero-alloc merged-query contract.
//
//   - Admin ops. Create, live Resize, Autoscale attachment, Drop, and
//     Names/Info enumeration map 1:1 onto the registry's facades, so a
//     remote operator can walk the throughput/staleness trade-off of a live
//     sketch exactly as in-process code can.
//
// Shutdown is graceful by construction: the listener closes, in-flight
// requests (including long batch dispatches) run to completion and are
// acked, buffered pipeline frames already received are served, and only
// then do the lane workers exit. The caller closes the registry afterwards,
// which drains every sketch buffer exactly.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fastsketches"
	"fastsketches/internal/countmin"
	"fastsketches/internal/hll"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/shard"
	"fastsketches/internal/theta"
	"fastsketches/internal/wire"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

var errShuttingDown = errors.New("server: shutting down")

// Server is one sketchd instance: a TCP acceptor over a caller-owned
// Registry. Create with New, drive with Serve, stop with Shutdown; the
// caller closes the Registry after Shutdown returns.
type Server struct {
	reg     *fastsketches.Registry
	writers int

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	lanes map[laneKey]*laneSet
	// dropping holds a tombstone per name being dropped: laneSetFor waits
	// on the channel instead of binding new lane workers to the sketch the
	// drop is about to close, and drop's slow work (lane drain, registry
	// drain) runs without holding mu — a drop never stalls the control
	// plane of unrelated sketches.
	dropping     map[laneKey]chan struct{}
	shuttingDown bool

	connWG sync.WaitGroup
	// gen invalidates per-connection handle caches; bumped by Drop so a
	// connection never ingests into (or queries) a sketch retired under it.
	gen atomic.Uint64

	// ckpt, when set (SetCheckpoint), serves OpCheckpoint: one synchronous
	// checkpoint write. Guarded by mu; nil means checkpointing is not
	// configured and the op answers with a typed error.
	ckpt func() error

	// opsStats, when set (SetOps), serves OpOpsStats with the lifecycle
	// sweeper's counters. Guarded by mu; nil answers with a typed error.
	opsStats func() wire.OpsStats

	// ingestObs, when set (SetIngestObserver), is called by each lane worker
	// after it applies one ingest chunk: n items in d nanoseconds. Guarded by
	// mu for installation; lane apply closures capture it at lane-set
	// creation, so install it before serving traffic.
	ingestObs func(n, d int64)
}

type laneKey struct {
	fam  wire.Family
	name string
}

// New returns a server over reg. The registry stays caller-owned: the
// caller closes it after Shutdown, at which point every sketch buffer is
// drained exactly.
func New(reg *fastsketches.Registry) *Server {
	return &Server{
		reg:      reg,
		writers:  reg.Config().Writers,
		conns:    make(map[net.Conn]struct{}),
		lanes:    make(map[laneKey]*laneSet),
		dropping: make(map[laneKey]chan struct{}),
	}
}

// Serve accepts connections on ln until Shutdown, serving each on its own
// goroutine. It returns ErrServerClosed after Shutdown, or the first
// accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	var acceptDelay time.Duration
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining() {
				return ErrServerClosed
			}
			// Transient accept failures (fd exhaustion under a connection
			// burst, aborted handshakes, signals) must not kill a daemon
			// holding live connections: back off and retry, net/http style.
			if isTemporaryAccept(err) {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		s.mu.Lock()
		if s.shuttingDown {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(nc)
	}
}

// isTemporaryAccept reports whether an Accept error is worth retrying
// after a backoff. Spelled out against the concrete errnos rather than the
// deprecated net.Error.Temporary.
func isTemporaryAccept(err error) bool {
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EINTR)
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shuttingDown
}

// Shutdown stops the server gracefully: the listener closes, every
// connection's pending read is unblocked (a read deadline in the past), and
// Shutdown waits for all connection handlers to finish — each serves any
// frames it has already received, completing and acking in-flight batches —
// before the per-sketch lane workers exit. Idempotent; concurrent calls all
// block until the drain completes. The caller closes the Registry
// afterwards.
func (s *Server) Shutdown() {
	s.mu.Lock()
	first := !s.shuttingDown
	s.shuttingDown = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if first && ln != nil {
		ln.Close()
	}
	deadline := time.Now()
	for _, c := range conns {
		c.SetReadDeadline(deadline)
	}
	s.connWG.Wait()

	s.mu.Lock()
	lanes := s.lanes
	s.lanes = make(map[laneKey]*laneSet)
	s.mu.Unlock()
	for _, ls := range lanes {
		ls.close()
	}
}

// laneSetFor returns the ingest lane workers of the named sketch, creating
// sketch and workers on first use. Creation is rejected while shutting
// down, so no worker can be born after Shutdown started collecting them;
// while the name is mid-Drop, creation waits for the drop to finish and
// then binds to the recreated (fresh) sketch — never to the dying one.
func (s *Server) laneSetFor(fam wire.Family, name []byte) (*laneSet, error) {
	key := laneKey{fam, string(name)}
	s.mu.Lock()
	for {
		if ls, ok := s.lanes[key]; ok {
			s.mu.Unlock()
			return ls, nil
		}
		ch, isDropping := s.dropping[key]
		if !isDropping {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	if s.shuttingDown {
		return nil, errShuttingDown
	}
	var apply func(lane int, items []byte)
	switch fam {
	case wire.FamilyTheta:
		h, err := s.reg.OpenTheta(key.name, fastsketches.Spec{})
		if err != nil {
			return nil, err
		}
		apply = applyWords(s.writers, h.UpdateBatch)
	case wire.FamilyHLL:
		h, err := s.reg.OpenHLL(key.name, fastsketches.Spec{})
		if err != nil {
			return nil, err
		}
		apply = applyWords(s.writers, h.UpdateBatch)
	case wire.FamilyQuantiles:
		h, err := s.reg.OpenQuantiles(key.name, fastsketches.Spec{})
		if err != nil {
			return nil, err
		}
		apply = applyFloats(s.writers, h.UpdateBatch)
	case wire.FamilyCountMin:
		h, err := s.reg.OpenCountMin(key.name, fastsketches.Spec{})
		if err != nil {
			return nil, err
		}
		apply = applyWords(s.writers, h.UpdateBatch)
	default:
		return nil, wire.ErrBadFamily
	}
	if obs := s.ingestObs; obs != nil {
		inner := apply
		apply = func(lane int, items []byte) {
			start := time.Now()
			inner(lane, items)
			obs(int64(len(items)/wire.ItemSize), time.Since(start).Nanoseconds())
		}
	}
	ls := newLaneSet(s.writers, apply)
	s.lanes[key] = ls
	return ls, nil
}

// applyBlock is the per-lane decode granularity of the batched apply path:
// wire items are decoded into a fixed per-lane scratch in blocks this large,
// each handed to the family's UpdateBatch, so per-item work in the lane
// worker is one LittleEndian load and one scratch store — all sketch-side
// coordination is amortised per block.
const applyBlock = 512

// applyWords builds a laneSet apply that decodes packed little-endian
// uint64 items into per-lane scratch blocks and feeds them to a family's
// batched update. One scratch block per lane, allocated once here: each lane
// is driven by its single worker goroutine, so the blocks are never shared
// and the steady-state path allocates nothing.
func applyWords(writers int, update func(lane int, keys []uint64)) func(lane int, items []byte) {
	scratch := make([][]uint64, writers)
	for l := range scratch {
		scratch[l] = make([]uint64, applyBlock)
	}
	return func(lane int, items []byte) {
		block := scratch[lane]
		for len(items) >= wire.ItemSize {
			n := len(items) / wire.ItemSize
			if n > applyBlock {
				n = applyBlock
			}
			for i := 0; i < n; i++ {
				block[i] = binary.LittleEndian.Uint64(items[i*wire.ItemSize:])
			}
			update(lane, block[:n])
			items = items[n*wire.ItemSize:]
		}
	}
}

// applyFloats is applyWords for the quantiles family, whose wire items are
// float64 bit patterns.
func applyFloats(writers int, update func(lane int, vs []float64)) func(lane int, items []byte) {
	scratch := make([][]float64, writers)
	for l := range scratch {
		scratch[l] = make([]float64, applyBlock)
	}
	return func(lane int, items []byte) {
		block := scratch[lane]
		for len(items) >= wire.ItemSize {
			n := len(items) / wire.ItemSize
			if n > applyBlock {
				n = applyBlock
			}
			for i := 0; i < n; i++ {
				block[i] = math.Float64frombits(binary.LittleEndian.Uint64(items[i*wire.ItemSize:]))
			}
			update(lane, block[:n])
			items = items[n*wire.ItemSize:]
		}
	}
}

// drop retires the named sketch: the lane workers drain and exit first
// (close waits out in-flight chunks, whose Updates still land on the open
// sketch), then the registry closes and unregisters it, then every
// connection's handle cache is invalidated. A tombstone in s.dropping
// makes the sequence atomic against laneSetFor without holding s.mu over
// the slow drains: a concurrent batch either found the old lane set (its
// items drain before the sketch closes) or waits on the tombstone until
// the name maps to a fresh, empty sketch — it can never bind new lane
// workers to the dying sketch, which would wedge them forever on a closed
// sketch's Update. Same-name drops serialise on the tombstone; unrelated
// sketches and connection setup are never stalled.
func (s *Server) drop(fam wire.Family, name []byte) bool {
	key := laneKey{fam, string(name)}
	s.mu.Lock()
	for {
		ch, isDropping := s.dropping[key]
		if !isDropping {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	ls := s.lanes[key]
	delete(s.lanes, key)
	done := make(chan struct{})
	s.dropping[key] = done
	s.mu.Unlock()

	if ls != nil {
		ls.close()
	}
	ok := s.reg.Drop(fam.String(), key.name)
	s.gen.Add(1)

	s.mu.Lock()
	delete(s.dropping, key)
	close(done)
	s.mu.Unlock()
	return ok
}

// handleConn serves one connection: a strict request/response loop over
// length-prefixed frames, responses written in request order. Writes are
// buffered and flushed only when the read side has no more buffered frames,
// so a pipelining client pays one syscall per burst, not per request.
func (s *Server) handleConn(nc net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(nc, 1<<16)
	bw := bufio.NewWriterSize(nc, 1<<16)
	cs := newConnState(s)
	var in []byte
	out := make([]byte, 0, 512)
	for {
		// Under shutdown the past read deadline fails only actual socket
		// reads: frames already buffered by br are still decoded and served,
		// so a pipeline burst received before the deadline is fully drained.
		payload, err := wire.ReadFrame(br, &in)
		if err != nil {
			bw.Flush()
			return
		}
		req, perr := wire.ParseRequest(payload)
		out = out[:0]
		if perr != nil {
			// A malformed request never endangers framing: the length prefix
			// already delimited this payload, so the stream stays aligned on
			// frame boundaries regardless of what the body held. When the
			// 5-byte header was intact the request is addressable — reply with
			// a typed error carrying its id and keep serving the connection
			// (one bad request in a pipeline must not kill its neighbours).
			// Only a runt frame too short to carry a request id is
			// unanswerable; that alone hangs up.
			out = wire.AppendError(out, req.ID, perr.Error())
			if len(payload) < wire.HeaderLen {
				bw.Write(out)
				bw.Flush()
				return
			}
			if _, err := bw.Write(out); err != nil {
				return
			}
			if br.Buffered() == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
			continue
		}
		out = cs.serve(&req, out)
		if _, err := bw.Write(out); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// connState is one connection's reusable serving state: cached sketch
// handles (keyed by name, so the per-request lookup is an allocation-free
// map hit) and one reusable query accumulator per family. Accumulator
// dimensions depend only on the registry's family parameters — never on the
// sketch name or its shard count — so a single accumulator per family
// serves every sketch this connection queries, across any number of
// resizes, and the served query path inherits the library's zero-alloc
// QueryInto contract.
type connState struct {
	s   *Server
	gen uint64

	thetas map[string]*shard.Theta
	hlls   map[string]*shard.HLL
	quants map[string]*shard.Quantiles
	cms    map[string]*shard.CountMin
	lanes  map[laneKey]*laneSet

	accTheta *theta.Union
	accHLL   *hll.Sketch
	accQuant *quantiles.Accumulator
	accCM    *countmin.Sketch

	// bs is the connection's reusable batch-completion countdown, re-armed
	// per OpBatch so the served ingest path allocates nothing per batch.
	bs *batchState

	// snapBuf is the connection's reusable snapshot-encode scratch
	// (OpSnapshot responses and OpMergeRemote pulls).
	snapBuf []byte
}

func newConnState(s *Server) *connState {
	return &connState{
		s:      s,
		gen:    s.gen.Load(),
		thetas: make(map[string]*shard.Theta),
		hlls:   make(map[string]*shard.HLL),
		quants: make(map[string]*shard.Quantiles),
		cms:    make(map[string]*shard.CountMin),
		lanes:  make(map[laneKey]*laneSet),
		bs:     newBatchState(),
	}
}

func (cs *connState) resetCaches() {
	clear(cs.thetas)
	clear(cs.hlls)
	clear(cs.quants)
	clear(cs.cms)
	clear(cs.lanes)
}

func (cs *connState) theta(name []byte) *shard.Theta {
	if sk, ok := cs.thetas[string(name)]; ok {
		return sk
	}
	h, _ := cs.s.reg.OpenTheta(string(name), fastsketches.Spec{})
	cs.thetas[string(name)] = h.Sketch()
	return h.Sketch()
}

func (cs *connState) hll(name []byte) *shard.HLL {
	if sk, ok := cs.hlls[string(name)]; ok {
		return sk
	}
	h, _ := cs.s.reg.OpenHLL(string(name), fastsketches.Spec{})
	cs.hlls[string(name)] = h.Sketch()
	return h.Sketch()
}

func (cs *connState) quantiles(name []byte) *shard.Quantiles {
	if sk, ok := cs.quants[string(name)]; ok {
		return sk
	}
	h, _ := cs.s.reg.OpenQuantiles(string(name), fastsketches.Spec{})
	cs.quants[string(name)] = h.Sketch()
	return h.Sketch()
}

func (cs *connState) countmin(name []byte) *shard.CountMin {
	if sk, ok := cs.cms[string(name)]; ok {
		return sk
	}
	h, _ := cs.s.reg.OpenCountMin(string(name), fastsketches.Spec{})
	cs.cms[string(name)] = h.Sketch()
	return h.Sketch()
}

func (cs *connState) laneSet(fam wire.Family, name []byte) (*laneSet, error) {
	if ls, ok := cs.lanes[laneKey{fam, string(name)}]; ok {
		return ls, nil
	}
	ls, err := cs.s.laneSetFor(fam, name)
	if err != nil {
		return nil, err
	}
	cs.lanes[laneKey{fam, string(name)}] = ls
	return ls, nil
}

// serve answers one parsed request, appending the response frame to out.
func (cs *connState) serve(req *wire.Request, out []byte) []byte {
	if g := cs.s.gen.Load(); g != cs.gen {
		cs.resetCaches()
		cs.gen = g
	}
	switch req.Op {
	case wire.OpPing:
		return wire.AppendOK(out, req.ID)

	case wire.OpBatch:
		ls, err := cs.laneSet(req.Family, req.Name)
		if err != nil {
			return wire.AppendError(out, req.ID, err.Error())
		}
		if !ls.ingest(req.Items, cs.bs) {
			// The lane set closed under us (a concurrent Drop). Refresh the
			// cache and retry once onto the recreated sketch.
			cs.resetCaches()
			cs.gen = cs.s.gen.Load()
			ls, err = cs.laneSet(req.Family, req.Name)
			if err == nil && !ls.ingest(req.Items, cs.bs) {
				err = errShuttingDown
			}
			if err != nil {
				return wire.AppendError(out, req.ID, err.Error())
			}
		}
		return wire.AppendOKU32(out, req.ID, uint32(req.NumItems()))

	case wire.OpQuery:
		return cs.query(req, out)

	case wire.OpCreate:
		switch req.Family {
		case wire.FamilyTheta:
			cs.theta(req.Name)
		case wire.FamilyHLL:
			cs.hll(req.Name)
		case wire.FamilyQuantiles:
			cs.quantiles(req.Name)
		case wire.FamilyCountMin:
			cs.countmin(req.Name)
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpResize:
		if req.Arg < 1 || req.Arg > wire.MaxShards {
			return wire.AppendError(out, req.ID,
				fmt.Sprintf("resize to %d shards outside [1,%d]", req.Arg, wire.MaxShards))
		}
		var err error
		switch req.Family {
		case wire.FamilyTheta:
			err = cs.theta(req.Name).Resize(int(req.Arg))
		case wire.FamilyHLL:
			err = cs.hll(req.Name).Resize(int(req.Arg))
		case wire.FamilyQuantiles:
			err = cs.quantiles(req.Name).Resize(int(req.Arg))
		case wire.FamilyCountMin:
			err = cs.countmin(req.Name).Resize(int(req.Arg))
		}
		if err != nil {
			return wire.AppendError(out, req.ID, err.Error())
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpAutoscale:
		if req.MaxShards > wire.MaxShards || req.MinShards > wire.MaxShards {
			return wire.AppendError(out, req.ID,
				fmt.Sprintf("autoscale shard bounds exceed %d", wire.MaxShards))
		}
		// Atomic replace semantics: any controllers already attached under
		// the name are swapped out in the same registry lock acquisition
		// that attaches the new policy, so a retried or concurrent admin
		// request can never leave two retained hysteresis loops driving
		// one sketch's shard count.
		if _, err := cs.s.reg.ReplaceAutoscale(string(req.Name), autoscalePolicy(req)); err != nil {
			return wire.AppendError(out, req.ID, err.Error())
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpEnableView:
		cfg := fastsketches.ViewConfig{
			RefreshEvery: time.Duration(int64(req.Arg)),
			MaxAge:       time.Duration(int64(req.Arg2)),
		}
		if _, err := cs.s.reg.ReplaceView(string(req.Name), cfg); err != nil {
			return wire.AppendError(out, req.ID, err.Error())
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpDisableView:
		if cs.s.reg.StopView(string(req.Name)) == 0 {
			return wire.AppendError(out, req.ID, fmt.Sprintf("no view enabled on %q", req.Name))
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpEnableWindow:
		cfg := fastsketches.WindowConfig{
			Interval: time.Duration(int64(req.Arg)),
			Slots:    int(req.Slots),
			Decay:    math.Float64frombits(req.Arg2),
		}
		if _, err := cs.s.reg.ReplaceWindow(string(req.Name), cfg); err != nil {
			return wire.AppendError(out, req.ID, err.Error())
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpDisableWindow:
		if cs.s.reg.StopWindow(string(req.Name)) == 0 {
			return wire.AppendError(out, req.ID, fmt.Sprintf("no window enabled on %q", req.Name))
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpDrop:
		if !cs.s.drop(req.Family, req.Name) {
			return wire.AppendError(out, req.ID, fmt.Sprintf("no %s sketch %q", req.Family, req.Name))
		}
		cs.resetCaches()
		cs.gen = cs.s.gen.Load()
		return wire.AppendOK(out, req.ID)

	case wire.OpNames:
		return wire.AppendOKNames(out, req.ID, cs.s.reg.Names())

	case wire.OpInfo:
		inf, ok := cs.s.reg.Info(req.Family.String(), string(req.Name))
		if !ok {
			return wire.AppendError(out, req.ID, fmt.Sprintf("no %s sketch %q", req.Family, req.Name))
		}
		return wire.AppendOKInfo(out, req.ID, wire.Info{
			Shards: inf.Shards, Writers: inf.Writers,
			Relaxation:       uint64(inf.Relaxation),
			ShardRelaxation:  uint64(inf.ShardRelaxation),
			Eager:            inf.Eager,
			ViewEnabled:      inf.ViewEnabled,
			ViewLagNs:        uint64(inf.ViewLag.Nanoseconds()),
			WindowEnabled:    inf.WindowEnabled,
			WindowSlots:      uint32(inf.WindowSlots),
			WindowIntervalNs: uint64(inf.WindowInterval.Nanoseconds()),
			WindowRotations:  inf.WindowRotations,
			WindowLiveAgeNs:  uint64(inf.WindowLiveAge.Nanoseconds()),
		})

	case wire.OpSnapshot:
		return cs.snapshot(req, out)

	case wire.OpRestore:
		return cs.restore(req, out)

	case wire.OpMergeRemote:
		return cs.mergeRemote(req, out)

	case wire.OpCheckpoint:
		fn := cs.s.checkpointFn()
		if fn == nil {
			return wire.AppendError(out, req.ID, "checkpointing not configured on this server")
		}
		if err := fn(); err != nil {
			return wire.AppendError(out, req.ID, err.Error())
		}
		return wire.AppendOK(out, req.ID)

	case wire.OpOpsStats:
		fn := cs.s.opsStatsFn()
		if fn == nil {
			return wire.AppendError(out, req.ID, "ops manager not configured on this server")
		}
		return wire.AppendOKOpsStats(out, req.ID, fn())
	}
	return wire.AppendError(out, req.ID, wire.ErrBadOp.Error())
}
