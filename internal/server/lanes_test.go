package server

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsketches/internal/wire"
)

// setSpins overrides the package spin budgets for a test and restores them
// on cleanup. Tests that touch these must not run in parallel.
func setSpins(t *testing.T, worker, dispatch, minChunk int) {
	t.Helper()
	ow, od, om := workerSpins, dispatchSpins, minChunkItems
	workerSpins, dispatchSpins, minChunkItems = worker, dispatch, minChunk
	t.Cleanup(func() { workerSpins, dispatchSpins, minChunkItems = ow, od, om })
}

// packItems encodes n uint64 items with the given tag in the high bits, so
// an apply hook can attribute every item back to its batch.
func packItems(tag uint64, n int) []byte {
	b := make([]byte, n*wire.ItemSize)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[i*wire.ItemSize:], tag<<32|uint64(i))
	}
	return b
}

func TestRingPushPopWraparound(t *testing.T) {
	var r ring
	r.init()
	var closed atomic.Bool
	bs := newBatchState()
	// Several laps through the ring to exercise the sequence-number
	// wraparound of slot reuse.
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < ringSize; i++ {
			if !r.push(packItems(uint64(lap), 1), bs, &closed) {
				t.Fatalf("lap %d: push %d failed on open ring", lap, i)
			}
		}
		// A push on the full ring must not succeed; flip closed so it
		// returns instead of spinning for a consumer that never comes.
		closed.Store(true)
		if r.push(nil, bs, &closed) {
			t.Fatal("push succeeded on full ring")
		}
		closed.Store(false)
		for i := 0; i < ringSize; i++ {
			items, got, ok := r.pop()
			if !ok {
				t.Fatalf("lap %d: pop %d found empty ring", lap, i)
			}
			if got != bs || len(items) != wire.ItemSize {
				t.Fatalf("lap %d: pop %d returned wrong payload", lap, i)
			}
		}
		if _, _, ok := r.pop(); ok {
			t.Fatalf("lap %d: pop succeeded on empty ring", lap)
		}
	}
}

// TestRingPushFullClosedReturnsFalse pins the shutdown hook: a producer
// stalled on a full ring must observe the closed flag and give up rather
// than spin forever — the replacement for the old ingest path that held an
// RWMutex read lock across a blocking channel send.
func TestRingPushFullClosedReturnsFalse(t *testing.T) {
	var r ring
	r.init()
	var closed atomic.Bool
	closed.Store(true)
	bs := newBatchState()
	for i := 0; i < ringSize; i++ {
		if !r.push(nil, bs, &closed) {
			t.Fatalf("push %d failed: closed must only matter once full", i)
		}
	}
	done := make(chan bool, 1)
	go func() { done <- r.push(nil, bs, &closed) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("push on full closed ring reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push on full closed ring did not return")
	}
}

func TestBatchStateReuse(t *testing.T) {
	bs := newBatchState()
	for round := 0; round < 100; round++ {
		bs.arm(3)
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); bs.complete(1) }()
		}
		bs.wait()
		if got := bs.remaining.Load(); got != 0 {
			t.Fatalf("round %d: remaining = %d after wait", round, got)
		}
		wg.Wait()
	}
}

// TestLaneSetAppliesAllItems checks the basic ingest contract: an acked
// batch's items have all been applied, exactly once, by the time ingest
// returns — across batch sizes around the fan-out and ring boundaries.
func TestLaneSetAppliesAllItems(t *testing.T) {
	setSpins(t, 0, 0, 4) // force the park paths and multi-lane fan-out
	var applied atomic.Int64
	ls := newLaneSet(4, func(lane int, items []byte) {
		applied.Add(int64(len(items) / wire.ItemSize))
	})
	defer ls.close()
	bs := newBatchState()
	want := int64(0)
	for _, n := range []int{1, 3, 4, 5, 16, 64, 257, 1024} {
		if !ls.ingest(packItems(7, n), bs) {
			t.Fatalf("ingest of %d items refused on open lane set", n)
		}
		want += int64(n)
		if got := applied.Load(); got != want {
			t.Fatalf("after acked batch of %d: applied %d items, want %d (ack must imply completion)", n, got, want)
		}
	}
}

// TestLaneSetFanoutCap checks that small batches take few ring hand-offs:
// at most ⌈n/minChunkItems⌉ lanes see work.
func TestLaneSetFanoutCap(t *testing.T) {
	setSpins(t, 0, 0, 256)
	var lanesUsed [4]atomic.Int64
	ls := newLaneSet(4, func(lane int, items []byte) {
		lanesUsed[lane].Add(1)
	})
	defer ls.close()
	bs := newBatchState()
	for _, tc := range []struct{ n, maxLanes int }{
		{64, 1}, {256, 1}, {257, 2}, {1024, 4}, {4096, 4},
	} {
		for i := range lanesUsed {
			lanesUsed[i].Store(0)
		}
		if !ls.ingest(packItems(9, tc.n), bs) {
			t.Fatalf("ingest of %d items refused", tc.n)
		}
		used := 0
		for i := range lanesUsed {
			if lanesUsed[i].Load() > 0 {
				used++
			}
		}
		if used > tc.maxLanes {
			t.Errorf("batch of %d items used %d lanes, want ≤ %d", tc.n, used, tc.maxLanes)
		}
	}
}

// TestLaneSetCloseWithWedgedWorker is the satellite regression test for the
// old deadlock: ingest held mu.RLock across a blocking send, so a wedged
// lane worker could stall close behind a full lane forever. Now a
// dispatcher stalled on the full ring must observe close and return false
// promptly — while the worker is still wedged — and everything drains once
// the worker resumes.
func TestLaneSetCloseWithWedgedWorker(t *testing.T) {
	setSpins(t, 0, 0, 256)
	gate := make(chan struct{})
	var applied atomic.Int64
	ls := newLaneSet(1, func(lane int, items []byte) {
		<-gate // wedge: the worker blocks inside apply until released
		applied.Add(int64(len(items) / wire.ItemSize))
	})

	// The wedged worker plus the full ring can absorb ringSize+1 batches;
	// dispatching one more guarantees at least one dispatcher is stalled
	// inside push on the full ring (we don't control which one).
	const dispatchers = ringSize + 2
	acks := make(chan bool, dispatchers)
	var wg sync.WaitGroup
	for i := 0; i < dispatchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acks <- ls.ingest(packItems(1, 8), newBatchState())
		}()
	}
	time.Sleep(100 * time.Millisecond) // let the overflow dispatcher reach the full-ring spin

	// close() cannot finish while the worker is wedged (enqueued batches
	// must complete first), but it must immediately release any dispatcher
	// stalled on a full ring — with a refusal, since its batch was dropped.
	closeDone := make(chan struct{})
	go func() { ls.close(); close(closeDone) }()

	select {
	case ok := <-acks:
		if ok {
			t.Fatal("a batch was acked while the only worker was wedged in apply")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dispatcher stalled on full ring did not return after close (old RWMutex deadlock)")
	}
	select {
	case <-closeDone:
		t.Fatal("close returned while a worker was still wedged in apply")
	default:
	}

	close(gate) // un-wedge the worker
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("close did not complete after the worker resumed")
	}
	wg.Wait()
	close(acks)
	ackedItems := int64(0)
	for ok := range acks {
		if ok {
			ackedItems += 8
		}
	}
	if got := applied.Load(); got < ackedItems {
		t.Fatalf("applied %d items < acked %d: an acked batch was not completed", got, ackedItems)
	}
}

// TestLaneSetParkWakeInterleavings drives the park/wake handshake through
// its interesting interleavings deterministically-ish: with zero spin
// budgets every hand-off takes the park path, and with single-item chunks
// every lane parks between batches. A lost wakeup shows up as a hang.
func TestLaneSetParkWakeInterleavings(t *testing.T) {
	setSpins(t, 0, 0, 1)
	var applied atomic.Int64
	ls := newLaneSet(2, func(lane int, items []byte) {
		applied.Add(int64(len(items) / wire.ItemSize))
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		bs := newBatchState()
		for i := 0; i < 2000; i++ {
			// Alternate batch sizes so the worker sometimes finds a queued
			// chunk (no park) and sometimes parks between batches; odd sizes
			// exercise the uneven chunk split.
			n := 1 + i%3
			if !ls.ingest(packItems(uint64(i), n), bs) {
				t.Error("ingest refused on open lane set")
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("park/wake handshake hung (lost wakeup)")
	}
	ls.close()
	want := int64(0)
	for i := 0; i < 2000; i++ {
		want += int64(1 + i%3)
	}
	if got := applied.Load(); got != want {
		t.Fatalf("applied %d items, want %d", got, want)
	}
}

// TestLaneSetStressDispatchCloseDrop hammers concurrent dispatch against
// close, checking under -race that (a) nothing races, (b) every acked batch
// was fully applied before its ack, and (c) close never hangs. The sequence
// mirrors a Drop racing live OpBatch traffic.
func TestLaneSetStressDispatchCloseDrop(t *testing.T) {
	for round := 0; round < 10; round++ {
		setSpins(t, 1, 1, 4)
		const dispatchers = 4
		const batches = 200
		var applied [dispatchers * batches]atomic.Int32
		ls := newLaneSet(3, func(lane int, items []byte) {
			for i := 0; i+wire.ItemSize <= len(items); i += wire.ItemSize {
				v := binary.LittleEndian.Uint64(items[i:])
				applied[v>>32].Add(1)
			}
		})
		var wg sync.WaitGroup
		for d := 0; d < dispatchers; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				bs := newBatchState()
				for i := 0; i < batches; i++ {
					tag := uint64(d*batches + i)
					n := 1 + i%17
					if ls.ingest(packItems(tag, n), bs) {
						// Acked ⇒ completed: every item visible already.
						if got := applied[tag].Load(); got != int32(n) {
							t.Errorf("batch %d acked with %d/%d items applied", tag, got, n)
							return
						}
					}
				}
			}(d)
		}
		// Close mid-fire on most rounds; after the dispatchers on the rest.
		if round%4 != 0 {
			time.Sleep(time.Duration(round) * time.Millisecond)
			ls.close()
		}
		wg.Wait()
		ls.close()
	}
}
