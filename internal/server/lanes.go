package server

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fastsketches/internal/wire"
)

// minChunkItems caps batch fan-out: a batch is split across at most
// ⌈n/minChunkItems⌉ lanes, so small batches take one ring hand-off instead
// of waking every lane worker for a handful of items each. Larger batches
// still spread across all lanes. Package variable so tests can force full
// fan-out.
var minChunkItems = 256

// parker is one lane worker's park/wake state. parked is published before
// the worker's final emptiness recheck; a producer that publishes a chunk
// and then observes parked posts a token on wake (capacity 1, non-blocking).
// Sequential consistency of the seq-store/parked-load vs parked-store/
// seq-load pairs rules out the lost wakeup: one of the two observations must
// happen, so either the worker sees the chunk or the producer sees the park.
type parker struct {
	_      cacheLinePad
	parked atomic.Bool
	wake   chan struct{}
	_      cacheLinePad
}

// laneSet is one sketch's ingest plane: W long-lived lane workers, one per
// writer lane, each the sole driver of its lane across every shard — the
// core framework's one-goroutine-per-lane discipline enforced structurally.
// A batch frame is split into contiguous per-lane chunks pushed onto
// per-lane rings; the dispatcher waits on a per-batch countdown, so by the
// time a batch is acked each of its Updates has returned (the updates are
// *completed*, and the S·r staleness bound covers them). Unlike the old
// one-buffered-chunk channels, the rings let many batches pipeline per lane,
// and the dispatch fast path takes no lock: the closed check is an atomic
// flag rechecked inside the ring's full-spin, so shutdown is never delayed
// by a dispatcher stalled behind a wedged lane.
type laneSet struct {
	apply   func(lane int, items []byte)
	rings   []*ring
	parkers []*parker
	wg      sync.WaitGroup

	// closed gates new dispatches; active counts dispatchers past the gate.
	// close flips closed, waits for active to drain to zero (each such
	// dispatcher finishes or aborts its batch), then sets draining and wakes
	// the workers, which exit once their rings are empty.
	closed   atomic.Bool
	active   atomic.Int64
	draining atomic.Bool
	stopOnce sync.Once
}

func newLaneSet(writers int, apply func(lane int, items []byte)) *laneSet {
	ls := &laneSet{
		apply:   apply,
		rings:   make([]*ring, writers),
		parkers: make([]*parker, writers),
	}
	for l := range ls.rings {
		r := &ring{}
		r.init()
		ls.rings[l] = r
		ls.parkers[l] = &parker{wake: make(chan struct{}, 1)}
		ls.wg.Add(1)
		go ls.work(l)
	}
	return ls
}

// work is lane l's worker loop: drain the ring, spin briefly when empty,
// then park until a producer (or close) wakes it.
func (ls *laneSet) work(lane int) {
	defer ls.wg.Done()
	r := ls.rings[lane]
	p := ls.parkers[lane]
	idle := 0
	for {
		if items, bs, ok := r.pop(); ok {
			idle = 0
			ls.apply(lane, items)
			bs.complete(1)
			continue
		}
		if ls.draining.Load() {
			// draining is set only after every dispatcher has left (active
			// == 0) and each batch's chunks were consumed before its
			// dispatcher returned, so the ring is provably empty; the
			// recheck is belt and braces.
			if !r.pending() {
				return
			}
			continue
		}
		if idle++; idle < workerSpins {
			runtime.Gosched()
			continue
		}
		p.parked.Store(true)
		if r.pending() || ls.draining.Load() {
			p.parked.Store(false)
			idle = 0
			continue
		}
		<-p.wake
		p.parked.Store(false)
		idle = 0
	}
}

// wakeLane posts a wake token to lane l's worker if it is parked.
func (ls *laneSet) wakeLane(l int) {
	if p := ls.parkers[l]; p.parked.Load() {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

// ingest fans one batch's packed items across the lane workers and waits
// until every item's Update has returned. Items are split into contiguous
// chunks so each worker walks a dense byte range; batches smaller than
// lanes·minChunkItems use fewer lanes (one ring hand-off per minChunkItems
// items, not per lane). bs is the caller's reusable countdown — the fast
// path performs no allocation and takes no lock. Returns false when the
// lane set has been closed (a concurrent Drop or shutdown); any chunks
// already enqueued are still completed before returning, so the items
// buffer is never referenced after ingest returns.
func (ls *laneSet) ingest(items []byte, bs *batchState) bool {
	n := len(items) / wire.ItemSize
	if n == 0 {
		return true
	}
	lanes := len(ls.rings)
	if maxLanes := (n + minChunkItems - 1) / minChunkItems; lanes > maxLanes {
		lanes = maxLanes
	}
	ls.active.Add(1)
	if ls.closed.Load() {
		ls.active.Add(-1)
		return false
	}
	bs.arm(int32(lanes))
	per, rem := n/lanes, n%lanes
	lo := 0
	for l := 0; l < lanes; l++ {
		hi := lo + per
		if l < rem {
			hi++
		}
		if !ls.rings[l].push(items[lo*wire.ItemSize:hi*wire.ItemSize], bs, &ls.closed) {
			// Closed while stalled on a full ring: retire the chunks never
			// enqueued, wait out the ones that were, and report failure.
			bs.complete(int32(lanes - l))
			bs.wait()
			ls.active.Add(-1)
			return false
		}
		ls.wakeLane(l)
		lo = hi
	}
	bs.wait()
	ls.active.Add(-1)
	return true
}

// close stops the lane set: new dispatches are refused, dispatchers already
// past the gate finish (or abort, if stalled on a full ring) their batches,
// then the workers are woken to observe draining and exit. Idempotent;
// every caller blocks until the workers are gone.
func (ls *laneSet) close() {
	ls.stopOnce.Do(func() {
		ls.closed.Store(true)
		for ls.active.Load() != 0 {
			runtime.Gosched()
		}
		ls.draining.Store(true)
		for _, p := range ls.parkers {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	})
	ls.wg.Wait()
}
