package server

import (
	"sync"

	"fastsketches/internal/wire"
)

// laneSet is one sketch's ingest plane: W long-lived lane workers, one per
// writer lane, each the sole driver of its lane across every shard — the
// core framework's one-goroutine-per-lane discipline enforced structurally.
// A batch frame is split into contiguous per-lane chunks and dispatched to
// the workers, which ingest concurrently; the dispatcher waits for every
// chunk, so by the time a batch is acked each of its Updates has returned
// (the updates are *completed*, and the S·r staleness bound covers them).
type laneSet struct {
	apply func(lane int, items []byte)
	chans []chan chunk
	wg    sync.WaitGroup

	// mu guards closed against the dispatch path: ingest sends hold the
	// read side, close flips the flag and closes the channels under the
	// write side, so a send can never race a close.
	mu     sync.RWMutex
	closed bool
}

// chunk is one lane's slice of a batch. items aliases the connection's read
// buffer; the dispatcher waits on done before the buffer can be reused.
type chunk struct {
	items []byte
	done  *sync.WaitGroup
}

func newLaneSet(writers int, apply func(lane int, items []byte)) *laneSet {
	ls := &laneSet{apply: apply, chans: make([]chan chunk, writers)}
	for l := range ls.chans {
		ch := make(chan chunk, 1)
		ls.chans[l] = ch
		ls.wg.Add(1)
		go func(lane int, ch chan chunk) {
			defer ls.wg.Done()
			for ck := range ch {
				apply(lane, ck.items)
				ck.done.Done()
			}
		}(l, ch)
	}
	return ls
}

// ingest fans one batch's packed items across the lane workers and waits
// until every item's Update has returned. Items are split into contiguous
// chunks so each worker walks a dense byte range; batches smaller than the
// lane count use fewer lanes. Returns false when the lane set has been
// closed (a concurrent Drop or shutdown) without touching the sketch.
func (ls *laneSet) ingest(items []byte) bool {
	n := len(items) / wire.ItemSize
	if n == 0 {
		return true
	}
	lanes := len(ls.chans)
	if lanes > n {
		lanes = n
	}
	var done sync.WaitGroup
	done.Add(lanes)
	ls.mu.RLock()
	if ls.closed {
		ls.mu.RUnlock()
		return false
	}
	per, rem := n/lanes, n%lanes
	lo := 0
	for l := 0; l < lanes; l++ {
		hi := lo + per
		if l < rem {
			hi++
		}
		ls.chans[l] <- chunk{items[lo*wire.ItemSize : hi*wire.ItemSize], &done}
		lo = hi
	}
	ls.mu.RUnlock()
	done.Wait()
	return true
}

// close drains and stops the lane workers: in-flight chunks are consumed
// (their dispatchers' waits complete), then the workers exit. Idempotent.
func (ls *laneSet) close() {
	ls.mu.Lock()
	if !ls.closed {
		ls.closed = true
		for _, ch := range ls.chans {
			close(ch)
		}
	}
	ls.mu.Unlock()
	ls.wg.Wait()
}
