package server

import (
	"bufio"
	"encoding/binary"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/wire"
)

// startServer boots a server over a fresh registry on a loopback listener
// and tears both down with the test.
func startServer(t *testing.T, cfg fastsketches.RegistryConfig) (*Server, *fastsketches.Registry, string) {
	t.Helper()
	reg, err := fastsketches.NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		reg.Close()
	})
	return srv, reg, ln.Addr().String()
}

// testConn is a raw wire-level client for protocol tests.
type testConn struct {
	t   *testing.T
	nc  net.Conn
	br  *bufio.Reader
	buf []byte
	id  uint32
}

func dialT(t *testing.T, addr string) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &testConn{t: t, nc: nc, br: bufio.NewReader(nc)}
}

// roundTrip writes one pre-encoded request frame and reads one response.
func (c *testConn) roundTrip(frame []byte) (status byte, body []byte) {
	c.t.Helper()
	if _, err := c.nc.Write(frame); err != nil {
		c.t.Fatal(err)
	}
	payload, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		c.t.Fatal(err)
	}
	status, _, body, err = wire.ParseResponse(payload)
	if err != nil {
		c.t.Fatal(err)
	}
	return status, body
}

func (c *testConn) mustOK(frame []byte) []byte {
	c.t.Helper()
	status, body := c.roundTrip(frame)
	if status != wire.StatusOK {
		c.t.Fatalf("request failed: %s", body)
	}
	return body
}

func (c *testConn) nextID() uint32 { c.id++; return c.id }

func TestServeBasicOps(t *testing.T) {
	_, _, addr := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	c := dialT(t, addr)

	c.mustOK(wire.AppendPing(nil, c.nextID()))
	c.mustOK(wire.AppendCreate(nil, c.nextID(), wire.FamilyTheta, "users"))

	// Batched ingest: 10k distinct keys, acked in full.
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	body := c.mustOK(wire.AppendBatch(nil, c.nextID(), wire.FamilyTheta, "users", keys))
	if got := binary.LittleEndian.Uint32(body); got != uint32(len(keys)) {
		t.Fatalf("ack = %d, want %d", got, len(keys))
	}

	// Merged estimate over the served sketch (eager-exactness not assumed;
	// the S·r window bounds what a live query may miss).
	body = c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyTheta, wire.QueryEstimate, "users", 0))
	est := math.Float64frombits(binary.LittleEndian.Uint64(body))
	if est < 0.5*float64(len(keys)) || est > 1.5*float64(len(keys)) {
		t.Fatalf("estimate %.0f wildly off %d", est, len(keys))
	}

	// Count-Min ingest + per-key count + total weight.
	cm := make([]uint64, 3000)
	for i := range cm {
		cm[i] = uint64(i % 3)
	}
	c.mustOK(wire.AppendBatch(nil, c.nextID(), wire.FamilyCountMin, "api", cm))
	body = c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyCountMin, wire.QueryN, "api", 0))
	if got := binary.LittleEndian.Uint64(body); got > 3000 {
		t.Fatalf("countmin N = %d > ingested 3000", got)
	}
	c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyCountMin, wire.QueryCount, "api", 1))

	// Quantiles ingest + quantile/rank/n.
	vals := make([]uint64, 4000)
	for i := range vals {
		vals[i] = math.Float64bits(float64(i))
	}
	c.mustOK(wire.AppendBatch(nil, c.nextID(), wire.FamilyQuantiles, "lat", vals))
	c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyQuantiles, wire.QueryQuantile, "lat", math.Float64bits(0.5)))
	c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyQuantiles, wire.QueryRank, "lat", math.Float64bits(2000)))
	c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyQuantiles, wire.QueryN, "lat", 0))

	// Enumeration + metadata.
	names, err := wire.ParseNames(c.mustOK(wire.AppendNamesReq(nil, c.nextID())))
	if err != nil || len(names) != 3 {
		t.Fatalf("names = %v (err %v), want 3 entries", names, err)
	}
	inf, err := wire.ParseInfo(c.mustOK(wire.AppendInfo(nil, c.nextID(), wire.FamilyTheta, "users")))
	if err != nil || inf.Shards != 2 || inf.Writers != 2 {
		t.Fatalf("info = %+v (err %v), want S=2 W=2", inf, err)
	}

	// Live resize via admin op, visible in Info.
	c.mustOK(wire.AppendResize(nil, c.nextID(), wire.FamilyTheta, "users", 4))
	inf, err = wire.ParseInfo(c.mustOK(wire.AppendInfo(nil, c.nextID(), wire.FamilyTheta, "users")))
	if err != nil || inf.Shards != 4 {
		t.Fatalf("info after resize = %+v (err %v), want S=4", inf, err)
	}

	// Autoscale attaches to the named sketches.
	c.mustOK(wire.AppendAutoscale(nil, c.nextID(), "users", 2, 8, 1e6, 1e3))

	// Errors: unsupported query kind, unknown sketch metadata, drop of an
	// absent sketch — all answered, connection stays usable.
	if status, _ := c.roundTrip(wire.AppendQuery(nil, c.nextID(), wire.FamilyTheta, wire.QueryQuantile, "users", 1)); status != wire.StatusError {
		t.Fatal("quantile on theta should fail")
	}
	if status, _ := c.roundTrip(wire.AppendInfo(nil, c.nextID(), wire.FamilyHLL, "absent")); status != wire.StatusError {
		t.Fatal("info on absent sketch should fail")
	}
	if status, _ := c.roundTrip(wire.AppendDrop(nil, c.nextID(), wire.FamilyHLL, "absent")); status != wire.StatusError {
		t.Fatal("drop of absent sketch should fail")
	}

	// Drop frees the name; the recreated sketch starts empty.
	c.mustOK(wire.AppendDrop(nil, c.nextID(), wire.FamilyCountMin, "api"))
	body = c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyCountMin, wire.QueryN, "api", 0))
	if got := binary.LittleEndian.Uint64(body); got != 0 {
		t.Fatalf("recreated countmin N = %d, want 0", got)
	}
	c.mustOK(wire.AppendPing(nil, c.nextID()))
}

// TestPipelinedRequests sends a burst of frames before reading any
// response and checks all come back in order — the per-connection
// pipelining contract.
func TestPipelinedRequests(t *testing.T) {
	_, _, addr := startServer(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	c := dialT(t, addr)

	const burst = 64
	var frames []byte
	for i := 0; i < burst; i++ {
		if i%2 == 0 {
			frames = wire.AppendBatch(frames, uint32(i), wire.FamilyTheta, "p", []uint64{uint64(i)})
		} else {
			frames = wire.AppendQuery(frames, uint32(i), wire.FamilyTheta, wire.QueryEstimate, "p", 0)
		}
	}
	if _, err := c.nc.Write(frames); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		payload, err := wire.ReadFrame(c.br, &c.buf)
		if err != nil {
			t.Fatal(err)
		}
		status, id, _, err := wire.ParseResponse(payload)
		if err != nil || status != wire.StatusOK {
			t.Fatalf("response %d: status=%d err=%v", i, status, err)
		}
		if id != uint32(i) {
			t.Fatalf("response order broken: got id %d at position %d", id, i)
		}
	}
}

// TestMalformedFramesNoPanic drives protocol garbage at a live server:
// every case must produce an error response or a closed connection — never
// a panic — and the server must keep serving fresh connections.
func TestMalformedFramesNoPanic(t *testing.T) {
	_, _, addr := startServer(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})

	cases := [][]byte{
		// Oversized length prefix.
		binary.LittleEndian.AppendUint32(nil, wire.MaxFrame+1),
		// Unknown op.
		append(binary.LittleEndian.AppendUint32(nil, 5), 0xEE, 1, 0, 0, 0),
		// Truncated batch body.
		func() []byte {
			f := wire.AppendBatch(nil, 1, wire.FamilyTheta, "x", []uint64{1, 2, 3})
			f = f[:len(f)-5]
			binary.LittleEndian.PutUint32(f, uint32(len(f)-4))
			return f
		}(),
		// Bad family.
		append(binary.LittleEndian.AppendUint32(nil, 8), byte(wire.OpCreate), 1, 0, 0, 0, 0x7F, 1, 'x'),
		// Zero-length payload.
		binary.LittleEndian.AppendUint32(nil, 0),
	}
	for i, raw := range cases {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(raw); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// The server either answers with an error frame or just closes;
		// both are fine, panicking or hanging is not.
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		var buf []byte
		br := bufio.NewReader(nc)
		if payload, err := wire.ReadFrame(br, &buf); err == nil {
			if status, _, _, perr := wire.ParseResponse(payload); perr != nil || status != wire.StatusError {
				t.Fatalf("case %d: got status %d (perr %v), want error response", i, status, perr)
			}
		}
		nc.Close()
	}

	// The server survived: a fresh connection serves normally.
	c := dialT(t, addr)
	c.mustOK(wire.AppendPing(nil, 1))
}

// TestResizeUnderFire keeps batched ingest running from several
// connections while another connection walks the shard count up and down —
// the live-resharding path driven over the wire. Every batch must ack in
// full and the final total weight must cover every acked item (Count-Min
// is exact on N once drained by Close in cleanup; here we bound with the
// live staleness window).
func TestResizeUnderFire(t *testing.T) {
	_, reg, addr := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})

	const conns = 3
	const batches = 40
	const batchItems = 500
	var acked atomic.Int64
	var wg sync.WaitGroup
	stopResize := make(chan struct{})

	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			br := bufio.NewReader(nc)
			var buf, frame []byte
			items := make([]uint64, batchItems)
			for b := 0; b < batches; b++ {
				for i := range items {
					items[i] = uint64(g)<<40 | uint64(b*batchItems+i)
				}
				frame = wire.AppendBatch(frame[:0], uint32(b), wire.FamilyCountMin, "fire", items)
				if _, err := nc.Write(frame); err != nil {
					t.Error(err)
					return
				}
				payload, err := wire.ReadFrame(br, &buf)
				if err != nil {
					t.Error(err)
					return
				}
				status, _, body, err := wire.ParseResponse(payload)
				if err != nil || status != wire.StatusOK {
					t.Errorf("batch failed: %s (err %v)", body, err)
					return
				}
				acked.Add(int64(binary.LittleEndian.Uint32(body)))
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		c := dialT(t, addr)
		// Touch the sketch so resize has a target even if ingest lags.
		c.mustOK(wire.AppendCreate(nil, 1, wire.FamilyCountMin, "fire"))
		sizes := []int{4, 1, 3, 2}
		for i := 0; ; i++ {
			select {
			case <-stopResize:
				return
			default:
			}
			c.mustOK(wire.AppendResize(nil, uint32(i+2), wire.FamilyCountMin, "fire", sizes[i%len(sizes)]))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Wait for the ingest goroutines, then stop the resizer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		defer close(stopResize)
		deadline := time.After(60 * time.Second)
		for {
			select {
			case <-done:
				return
			case <-deadline:
				t.Error("resize-under-fire timed out")
				return
			default:
				if acked.Load() >= conns*batches*batchItems {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	<-done
	<-stopResize

	want := int64(conns * batches * batchItems)
	if got := acked.Load(); got != want {
		t.Fatalf("acked %d items, want %d", got, want)
	}
	// Every acked update completed; the live N may trail by at most the
	// current relaxation bound and never exceed the ingested total.
	skH, _ := reg.OpenCountMin("fire", fastsketches.Spec{})
	sk := skH.Sketch()
	if n := sk.N(); int64(n) > want || int64(n) < want-int64(sk.Relaxation()) {
		t.Fatalf("N = %d outside [%d - S·r, %d] (S·r=%d)", n, want, want, sk.Relaxation())
	}
}

// TestShutdownDrainsInflight pins the graceful-drain contract: batches
// acked before Shutdown returns are fully ingested — after the registry
// closes (exact drain), the sketch's total weight covers every acked item.
func TestShutdownDrainsInflight(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	// Hammer batches until the connection dies under Shutdown, counting
	// what was acked.
	var acked int64
	ingestDone := make(chan struct{})
	started := make(chan struct{})
	go func() {
		defer close(ingestDone)
		var buf, frame []byte
		items := make([]uint64, 5000)
		for b := uint32(0); ; b++ {
			for i := range items {
				items[i] = uint64(b)<<20 | uint64(i)
			}
			frame = wire.AppendBatch(frame[:0], b, wire.FamilyCountMin, "drain", items)
			if _, err := nc.Write(frame); err != nil {
				return
			}
			payload, err := wire.ReadFrame(br, &buf)
			if err != nil {
				return
			}
			status, _, body, err := wire.ParseResponse(payload)
			if err != nil || status != wire.StatusOK {
				return
			}
			acked += int64(binary.LittleEndian.Uint32(body))
			if b == 0 {
				close(started)
			}
		}
	}()

	<-started // at least one batch acked: the drain has something to prove
	skH, _ := reg.OpenCountMin("drain", fastsketches.Spec{})
	sk := skH.Sketch()
	srv.Shutdown()
	<-ingestDone // conn failed under the shutdown deadline; `acked` is final
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	reg.Close() // exact drain

	if acked == 0 {
		t.Fatal("no batch acked before shutdown")
	}
	if n := sk.N(); int64(n) < acked {
		t.Fatalf("drained N = %d < acked %d: an acked batch was lost", n, acked)
	}
}

// TestDropUnderBatchFire races Drop against concurrent batches to the same
// name, repeatedly. The drop sequence is atomic against lane-set creation:
// a racing batch must either land on the pre-drop sketch (and drain before
// it closes), error out, or land on the recreated sketch — and nothing may
// ever wedge a lane worker on a closed sketch (which would hang both the
// batch ack and Shutdown; the test completing at all is the assertion).
func TestDropUnderBatchFire(t *testing.T) {
	_, _, addr := startServer(t, fastsketches.RegistryConfig{Shards: 1, Writers: 2})

	const ingesters = 2
	const rounds = 60
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			br := bufio.NewReader(nc)
			var buf, frame []byte
			items := make([]uint64, 256)
			for b := uint32(0); ; b++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := range items {
					items[i] = uint64(g)<<32 | uint64(i)
				}
				frame = wire.AppendBatch(frame[:0], b, wire.FamilyCountMin, "churn", items)
				if _, err := nc.Write(frame); err != nil {
					return
				}
				payload, err := wire.ReadFrame(br, &buf)
				if err != nil {
					return
				}
				// OK acks and racing-drop errors are both legitimate; only
				// a hang (caught by the test timeout) is a bug.
				if _, _, _, err := wire.ParseResponse(payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	admin := dialT(t, addr)
	for r := 0; r < rounds; r++ {
		// Drop whether or not the sketch currently exists (an ingester may
		// not have recreated it yet); the error case is fine.
		admin.roundTrip(wire.AppendDrop(nil, uint32(r), wire.FamilyCountMin, "churn"))
	}
	close(stop)
	wg.Wait()
	// The server must still be fully responsive (no wedged lane worker
	// blocking Shutdown — cleanup would hang otherwise).
	admin.mustOK(wire.AppendPing(nil, 1<<20))
}

// TestServeViewOps drives the materialized-view admin ops over the wire:
// enable covers the named sketches, Info reports the view, queries keep
// answering (through the view), disable reverts, and both ops reject
// absent names with typed errors on a connection that stays usable.
func TestServeViewOps(t *testing.T) {
	_, reg, addr := startServer(t, fastsketches.RegistryConfig{Shards: 2, Writers: 2})
	c := dialT(t, addr)

	// Enabling a view on a name with no sketches is a typed error.
	if status, _ := c.roundTrip(wire.AppendEnableView(nil, c.nextID(), "absent", 0, 0)); status != wire.StatusError {
		t.Fatal("enable-view on absent name should fail")
	}
	if status, _ := c.roundTrip(wire.AppendDisableView(nil, c.nextID(), "absent")); status != wire.StatusError {
		t.Fatal("disable-view on absent name should fail")
	}

	c.mustOK(wire.AppendCreate(nil, c.nextID(), wire.FamilyCountMin, "viewed"))
	items := make([]uint64, 2000)
	for i := range items {
		items[i] = uint64(i % 5)
	}
	c.mustOK(wire.AppendBatch(nil, c.nextID(), wire.FamilyCountMin, "viewed", items))

	// Enable with an hour-long refresh: the synchronous initial refresh is
	// the only fold, so the served totals below come from the published view.
	c.mustOK(wire.AppendEnableView(nil, c.nextID(), "viewed", uint64(time.Hour), ^uint64(0)))
	inf, err := wire.ParseInfo(c.mustOK(wire.AppendInfo(nil, c.nextID(), wire.FamilyCountMin, "viewed")))
	if err != nil {
		t.Fatal(err)
	}
	if !inf.ViewEnabled {
		t.Fatalf("Info.ViewEnabled false after enable: %+v", inf)
	}
	body := c.mustOK(wire.AppendQuery(nil, c.nextID(), wire.FamilyCountMin, wire.QueryN, "viewed", 0))
	viewN := binary.LittleEndian.Uint64(body)
	if viewN > 2000 {
		t.Fatalf("served view N = %d > ingested 2000", viewN)
	}

	// Registry-side the view really is attached (not just Info bookkeeping).
	if rinf, ok := reg.Info("countmin", "viewed"); !ok || !rinf.ViewEnabled {
		t.Fatalf("registry info = %+v (ok %v), want ViewEnabled", rinf, ok)
	}

	c.mustOK(wire.AppendDisableView(nil, c.nextID(), "viewed"))
	inf, err = wire.ParseInfo(c.mustOK(wire.AppendInfo(nil, c.nextID(), wire.FamilyCountMin, "viewed")))
	if err != nil || inf.ViewEnabled {
		t.Fatalf("Info after disable = %+v (err %v), want view off", inf, err)
	}
	// Second disable: nothing left to disable, typed error, connection fine.
	if status, _ := c.roundTrip(wire.AppendDisableView(nil, c.nextID(), "viewed")); status != wire.StatusError {
		t.Fatal("second disable-view should fail")
	}
	c.mustOK(wire.AppendPing(nil, c.nextID()))
}

// TestServeEdgeCases pins the request edge cases that used to cost clients
// their connection: a malformed-but-addressable request gets a typed error
// reply and the SAME connection keeps serving; zero-item batches ack
// cleanly; a maximum-size batch frame is accepted in full; a batch
// pipelined behind a drop of its own sketch lands on the recreated sketch.
func TestServeEdgeCases(t *testing.T) {
	_, _, addr := startServer(t, fastsketches.RegistryConfig{Shards: 1, Writers: 1})
	c := dialT(t, addr)

	// Zero-update batch: acked with count 0, nothing created implicitly is
	// harmed, connection continues.
	body := c.mustOK(wire.AppendBatch(nil, c.nextID(), wire.FamilyTheta, "edge", nil))
	if got := binary.LittleEndian.Uint32(body); got != 0 {
		t.Fatalf("zero-item batch acked %d, want 0", got)
	}

	// Empty sketch name: ErrBadName at parse time. The header is intact, so
	// the server must reply with a typed error carrying the request id and
	// keep the connection open — pinned by the follow-up ping on the SAME
	// connection.
	raw := binary.LittleEndian.AppendUint32(nil, 7) // payload length
	raw = append(raw, byte(wire.OpCreate), 0x2A, 0, 0, 0, byte(wire.FamilyTheta), 0)
	if _, err := c.nc.Write(raw); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		t.Fatalf("connection died on empty-name request: %v", err)
	}
	status, id, _, perr := wire.ParseResponse(payload)
	if perr != nil || status != wire.StatusError {
		t.Fatalf("empty name: status=%d perr=%v, want typed error", status, perr)
	}
	if id != 0x2A {
		t.Fatalf("typed error carries id %d, want 42", id)
	}
	c.mustOK(wire.AppendPing(nil, c.nextID()))

	// Unknown op with a readable header: same contract.
	raw = binary.LittleEndian.AppendUint32(nil, 5)
	raw = append(raw, 0xEE, 0x2B, 0, 0, 0)
	if _, err := c.nc.Write(raw); err != nil {
		t.Fatal(err)
	}
	payload, err = wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		t.Fatalf("connection died on unknown op: %v", err)
	}
	if status, id, _, _ := wire.ParseResponse(payload); status != wire.StatusError || id != 0x2B {
		t.Fatalf("unknown op: status=%d id=%d, want typed error id 43", status, id)
	}
	c.mustOK(wire.AppendPing(nil, c.nextID()))

	// A runt frame (shorter than the 5-byte header) is unaddressable: the
	// server may close that connection — but only that one.
	runt := dialT(t, addr)
	if _, err := runt.nc.Write(binary.LittleEndian.AppendUint32(nil, 0)); err != nil {
		t.Fatal(err)
	}
	runt.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for { // drain the error reply (if any) until close
		if _, err := wire.ReadFrame(runt.br, &runt.buf); err != nil {
			break
		}
	}
	c.mustOK(wire.AppendPing(nil, c.nextID()))

	// Maximum-length frame: a full MaxBatchItems batch is accepted and
	// acked item-for-item.
	big := make([]uint64, wire.MaxBatchItems)
	for i := range big {
		big[i] = uint64(i)
	}
	body = c.mustOK(wire.AppendBatch(nil, c.nextID(), wire.FamilyCountMin, "edge.big", big))
	if got := binary.LittleEndian.Uint32(body); got != uint32(len(big)) {
		t.Fatalf("max batch acked %d, want %d", got, len(big))
	}
	// One item past the cap is a typed error (ErrBadCount), connection keeps.
	over := wire.AppendBatch(nil, c.nextID(), wire.FamilyCountMin, "edge.big", big)
	over = append(over, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(over, uint32(len(over)-4))
	// Patch the item count to match the oversized payload.
	countOff := 4 + 5 + 1 + 1 + len("edge.big")
	binary.LittleEndian.PutUint32(over[countOff:], uint32(len(big)+1))
	if status, _ := c.roundTrip(over); status != wire.StatusError {
		t.Fatal("oversized batch should fail with a typed error")
	}
	c.mustOK(wire.AppendPing(nil, c.nextID()))

	// Drop + batch pipelined together on one connection: the server answers
	// in order, so the batch must land on the recreated sketch and ack.
	var pipelined []byte
	pipelined = wire.AppendBatch(pipelined, 100, wire.FamilyCountMin, "edge.drop", []uint64{1, 2, 3})
	pipelined = wire.AppendDrop(pipelined, 101, wire.FamilyCountMin, "edge.drop")
	pipelined = wire.AppendBatch(pipelined, 102, wire.FamilyCountMin, "edge.drop", []uint64{4, 5})
	pipelined = wire.AppendQuery(pipelined, 103, wire.FamilyCountMin, wire.QueryN, "edge.drop", 0)
	if _, err := c.nc.Write(pipelined); err != nil {
		t.Fatal(err)
	}
	for want := uint32(100); want <= 103; want++ {
		payload, err := wire.ReadFrame(c.br, &c.buf)
		if err != nil {
			t.Fatal(err)
		}
		status, id, body, perr := wire.ParseResponse(payload)
		if perr != nil || id != want {
			t.Fatalf("pipelined response id %d (perr %v), want %d", id, perr, want)
		}
		if status != wire.StatusOK {
			t.Fatalf("pipelined request %d failed: %s", want, body)
		}
		if want == 103 {
			// Only the post-drop batch counts; the pre-drop items died with
			// the dropped sketch. Single shard, batch acked before the query
			// was parsed — but the ack covers Update completion, and N may
			// trail by the shard relaxation r; with the default config r is
			// far larger than 2, so only the upper bound is sharp.
			if n := binary.LittleEndian.Uint64(body); n > 2 {
				t.Fatalf("recreated sketch N = %d, want ≤ 2", n)
			}
		}
	}
}
