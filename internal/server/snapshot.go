package server

import (
	"fmt"
	"net"
	"time"

	"fastsketches/internal/snapshot"
	"fastsketches/internal/wire"
)

// Snapshot/restore/remote-merge op handlers: the served face of the
// registry's checkpoint plane. OpSnapshot exports one sketch's merged state
// as a portable record; OpRestore folds such a record into a (possibly
// fresh) local sketch; OpMergeRemote makes this daemon dial a peer, pull
// the peer's snapshot for the same (family, name), and fold it in — the
// one-round-trip building block for cross-daemon sketch aggregation.
// OpCheckpoint (served in serve()) triggers the process-level checkpoint
// hook installed via SetCheckpoint.

// mergeRemoteTimeout bounds the whole remote pull: dial plus one
// request/response round trip.
const mergeRemoteTimeout = 10 * time.Second

// SetCheckpoint installs the function OpCheckpoint invokes — typically a
// bound Checkpointer.CheckpointNow writing the daemon's checkpoint file.
// A nil (or never-set) hook makes OpCheckpoint answer with a typed error.
func (s *Server) SetCheckpoint(fn func() error) {
	s.mu.Lock()
	s.ckpt = fn
	s.mu.Unlock()
}

func (s *Server) checkpointFn() func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt
}

// snapSketch is the family-independent slice of a sharded sketch the
// snapshot ops need; all four shard wrappers satisfy it.
type snapSketch interface {
	Shards() int
	AppendSnapshot(dst []byte) []byte
	ImportSnapshot(blob []byte) error
}

// sketch resolves (family, name) to the cached handle, creating the sketch
// on first use — same getOrCreate semantics as the ingest and query paths.
func (cs *connState) sketch(fam wire.Family, name []byte) (snapSketch, error) {
	switch fam {
	case wire.FamilyTheta:
		return cs.theta(name), nil
	case wire.FamilyHLL:
		return cs.hll(name), nil
	case wire.FamilyQuantiles:
		return cs.quantiles(name), nil
	case wire.FamilyCountMin:
		return cs.countmin(name), nil
	}
	return nil, wire.ErrBadFamily
}

// snapshot serves OpSnapshot: export the named sketch's merged state
// (legacy ∪ draining ∪ current, all but ≤ S·r acked updates) as a portable
// snapshot record in the OK body. Unlike ingest/query, OpSnapshot does not
// create absent sketches — exporting an implicitly created empty sketch
// would mask typos silently.
func (cs *connState) snapshot(req *wire.Request, out []byte) []byte {
	if _, ok := cs.s.reg.Info(req.Family.String(), string(req.Name)); !ok {
		return wire.AppendError(out, req.ID,
			fmt.Sprintf("no %s sketch %q", req.Family, req.Name))
	}
	sk, err := cs.sketch(req.Family, req.Name)
	if err != nil {
		return wire.AppendError(out, req.ID, err.Error())
	}
	rec := snapshot.Record{
		Family: req.Family,
		Name:   req.Name,
		Shards: uint32(sk.Shards()),
	}
	buf, m := snapshot.BeginPortable(cs.snapBuf[:0], &rec)
	buf = sk.AppendSnapshot(buf)
	cs.snapBuf = snapshot.EndPortable(buf, m)
	if len(cs.snapBuf) > wire.MaxBlob {
		return wire.AppendError(out, req.ID, wire.ErrBlobTooLarge.Error())
	}
	return wire.AppendOKBytes(out, req.ID, cs.snapBuf)
}

// restore serves OpRestore: parse the portable record in the request blob
// and fold it into the named local sketch (created if absent). Only the
// sketch body is folded — shard count, view and autoscale settings travel
// in checkpoint files, not over the merge wire, so a restore never resizes
// or reconfigures the receiving sketch.
func (cs *connState) restore(req *wire.Request, out []byte) []byte {
	rec, err := snapshot.ParsePortable(req.Blob)
	if err != nil {
		return wire.AppendError(out, req.ID, err.Error())
	}
	if rec.Family != req.Family {
		return wire.AppendError(out, req.ID,
			fmt.Sprintf("snapshot family %s does not match request family %s",
				rec.Family, req.Family))
	}
	sk, err := cs.sketch(req.Family, req.Name)
	if err != nil {
		return wire.AppendError(out, req.ID, err.Error())
	}
	if err := sk.ImportSnapshot(rec.Blob); err != nil {
		return wire.AppendError(out, req.ID, err.Error())
	}
	return wire.AppendOK(out, req.ID)
}

// mergeRemote serves OpMergeRemote: pull (family, name)'s snapshot from the
// peer at req.Addr and fold it into the local sketch of the same name. The
// local sketch is created if absent; the peer must already have one (its
// OpSnapshot handler rejects absent sketches).
func (cs *connState) mergeRemote(req *wire.Request, out []byte) []byte {
	blob, err := fetchSnapshot(string(req.Addr), req.Family, req.Name)
	if err != nil {
		return wire.AppendError(out, req.ID,
			fmt.Sprintf("merge from %s: %v", req.Addr, err))
	}
	rec, err := snapshot.ParsePortable(blob)
	if err != nil {
		return wire.AppendError(out, req.ID,
			fmt.Sprintf("merge from %s: %v", req.Addr, err))
	}
	if rec.Family != req.Family {
		return wire.AppendError(out, req.ID,
			fmt.Sprintf("merge from %s: snapshot family %s does not match request family %s",
				req.Addr, rec.Family, req.Family))
	}
	sk, err := cs.sketch(req.Family, req.Name)
	if err != nil {
		return wire.AppendError(out, req.ID, err.Error())
	}
	if err := sk.ImportSnapshot(rec.Blob); err != nil {
		return wire.AppendError(out, req.ID,
			fmt.Sprintf("merge from %s: %v", req.Addr, err))
	}
	return wire.AppendOK(out, req.ID)
}

// fetchSnapshot dials a peer daemon with raw wire frames and returns the
// portable snapshot body its OpSnapshot handler served. Raw frames rather
// than the client package: internal/server cannot import the public client
// without a cycle, and one request/response pair doesn't need one.
func fetchSnapshot(addr string, fam wire.Family, name []byte) ([]byte, error) {
	nc, err := net.DialTimeout("tcp", addr, mergeRemoteTimeout)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	if err := nc.SetDeadline(time.Now().Add(mergeRemoteTimeout)); err != nil {
		return nil, err
	}
	frame := wire.AppendSnapshotReq(nil, 1, fam, string(name))
	if _, err := nc.Write(frame); err != nil {
		return nil, err
	}
	var in []byte
	payload, err := wire.ReadFrame(nc, &in)
	if err != nil {
		return nil, err
	}
	status, _, body, err := wire.ParseResponse(payload)
	if err != nil {
		return nil, err
	}
	if status != wire.StatusOK {
		return nil, fmt.Errorf("peer error: %s", body)
	}
	return body, nil
}
