package server

import (
	"fmt"
	"math"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/wire"
)

// query serves one OpQuery through the zero-alloc QueryInto plane: the
// connection's per-family accumulator is reset and every shard snapshot
// (plus any legacy resharding state) folded into it, then the scalar is
// read off. The served result is exactly what an in-process caller of
// QueryInto would read at the same instant, including the staleness
// contract: all but at most S·r completed updates are reflected
// (transiently S_old·r + S_new·r while a resize drains), and a Count-Min
// per-key Count keeps the tighter single-shard bound r.
func (cs *connState) query(req *wire.Request, out []byte) []byte {
	switch req.Family {
	case wire.FamilyTheta:
		if req.Query == wire.QueryEstimate {
			sk := cs.theta(req.Name)
			if cs.accTheta == nil {
				cs.accTheta = sk.NewAccumulator()
			}
			sk.QueryInto(cs.accTheta)
			return wire.AppendOKU64(out, req.ID, math.Float64bits(cs.accTheta.Estimate()))
		}

	case wire.FamilyHLL:
		if req.Query == wire.QueryEstimate {
			sk := cs.hll(req.Name)
			if cs.accHLL == nil {
				cs.accHLL = sk.NewAccumulator()
			}
			sk.QueryInto(cs.accHLL)
			return wire.AppendOKU64(out, req.ID, math.Float64bits(cs.accHLL.Estimate()))
		}

	case wire.FamilyQuantiles:
		switch req.Query {
		case wire.QueryQuantile, wire.QueryRank, wire.QueryN:
			sk := cs.quantiles(req.Name)
			if cs.accQuant == nil {
				cs.accQuant = sk.NewAccumulator()
			}
			sk.QueryInto(cs.accQuant)
			switch req.Query {
			case wire.QueryQuantile:
				v := cs.accQuant.Quantile(math.Float64frombits(req.Arg))
				return wire.AppendOKU64(out, req.ID, math.Float64bits(v))
			case wire.QueryRank:
				r := cs.accQuant.Rank(math.Float64frombits(req.Arg))
				return wire.AppendOKU64(out, req.ID, math.Float64bits(r))
			default:
				return wire.AppendOKU64(out, req.ID, cs.accQuant.N())
			}
		}

	case wire.FamilyCountMin:
		switch req.Query {
		case wire.QueryCount:
			// Per-key frequency reads the owning shard directly — no
			// accumulator, single-shard staleness bound r.
			return wire.AppendOKU64(out, req.ID, cs.countmin(req.Name).Estimate(req.Arg))
		case wire.QueryN:
			sk := cs.countmin(req.Name)
			if cs.accCM == nil {
				cs.accCM = sk.NewAccumulator()
			}
			sk.QueryInto(cs.accCM)
			return wire.AppendOKU64(out, req.ID, cs.accCM.N())
		}
	}
	return wire.AppendError(out, req.ID,
		fmt.Sprintf("query kind %d unsupported for family %s", req.Query, req.Family))
}

// autoscalePolicy maps the wire knobs onto an autoscale.Policy; sampling
// cadence, streaks, cooldown and step factor take the package's production
// defaults (see autoscale.Policy).
func autoscalePolicy(req *wire.Request) autoscale.Policy {
	return autoscale.Policy{
		MinShards: int(req.MinShards),
		MaxShards: int(req.MaxShards),
		HighWater: req.High,
		LowWater:  req.Low,
	}
}
