package server

import (
	"fmt"
	"math"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/wire"
)

// query serves one OpQuery through the zero-alloc QueryInto plane: the
// connection's per-family accumulator is reset and every shard snapshot
// (plus any legacy resharding state) folded into it, then the scalar is
// read off. The served result is exactly what an in-process caller of
// QueryInto would read at the same instant, including the staleness
// contract: all but at most S·r completed updates are reflected
// (transiently S_old·r + S_new·r while a resize drains), and a Count-Min
// per-key Count keeps the tighter single-shard bound r.
// The Window* kinds answer over the sketch's declared sliding window and
// DecayedCount over the Count-Min time-decayed plane, through the same
// reusable per-connection accumulators (WindowQueryInto resets and refolds
// exactly like QueryInto). A windowed query on a sketch without a declared
// window is a typed error, not a silent fall-through to the cumulative
// stream.
func (cs *connState) query(req *wire.Request, out []byte) []byte {
	switch req.Family {
	case wire.FamilyTheta:
		switch req.Query {
		case wire.QueryEstimate:
			sk := cs.theta(req.Name)
			if cs.accTheta == nil {
				cs.accTheta = sk.NewAccumulator()
			}
			sk.QueryInto(cs.accTheta)
			return wire.AppendOKU64(out, req.ID, math.Float64bits(cs.accTheta.Estimate()))
		case wire.QueryWindowEstimate:
			sk := cs.theta(req.Name)
			if cs.accTheta == nil {
				cs.accTheta = sk.NewAccumulator()
			}
			if !sk.WindowQueryInto(cs.accTheta) {
				return appendNoWindow(out, req)
			}
			return wire.AppendOKU64(out, req.ID, math.Float64bits(cs.accTheta.Estimate()))
		}

	case wire.FamilyHLL:
		switch req.Query {
		case wire.QueryEstimate:
			sk := cs.hll(req.Name)
			if cs.accHLL == nil {
				cs.accHLL = sk.NewAccumulator()
			}
			sk.QueryInto(cs.accHLL)
			return wire.AppendOKU64(out, req.ID, math.Float64bits(cs.accHLL.Estimate()))
		case wire.QueryWindowEstimate:
			sk := cs.hll(req.Name)
			if cs.accHLL == nil {
				cs.accHLL = sk.NewAccumulator()
			}
			if !sk.WindowQueryInto(cs.accHLL) {
				return appendNoWindow(out, req)
			}
			return wire.AppendOKU64(out, req.ID, math.Float64bits(cs.accHLL.Estimate()))
		}

	case wire.FamilyQuantiles:
		switch req.Query {
		case wire.QueryQuantile, wire.QueryRank, wire.QueryN,
			wire.QueryWindowQuantile, wire.QueryWindowN:
			sk := cs.quantiles(req.Name)
			if cs.accQuant == nil {
				cs.accQuant = sk.NewAccumulator()
			}
			switch req.Query {
			case wire.QueryWindowQuantile, wire.QueryWindowN:
				if !sk.WindowQueryInto(cs.accQuant) {
					return appendNoWindow(out, req)
				}
			default:
				sk.QueryInto(cs.accQuant)
			}
			switch req.Query {
			case wire.QueryQuantile, wire.QueryWindowQuantile:
				v := cs.accQuant.Quantile(math.Float64frombits(req.Arg))
				return wire.AppendOKU64(out, req.ID, math.Float64bits(v))
			case wire.QueryRank:
				r := cs.accQuant.Rank(math.Float64frombits(req.Arg))
				return wire.AppendOKU64(out, req.ID, math.Float64bits(r))
			default:
				return wire.AppendOKU64(out, req.ID, cs.accQuant.N())
			}
		}

	case wire.FamilyCountMin:
		switch req.Query {
		case wire.QueryCount:
			// Per-key frequency reads the owning shard directly — no
			// accumulator, single-shard staleness bound r.
			return wire.AppendOKU64(out, req.ID, cs.countmin(req.Name).Estimate(req.Arg))
		case wire.QueryN:
			sk := cs.countmin(req.Name)
			if cs.accCM == nil {
				cs.accCM = sk.NewAccumulator()
			}
			sk.QueryInto(cs.accCM)
			return wire.AppendOKU64(out, req.ID, cs.accCM.N())
		case wire.QueryWindowCount, wire.QueryWindowN:
			sk := cs.countmin(req.Name)
			if cs.accCM == nil {
				cs.accCM = sk.NewAccumulator()
			}
			if !sk.WindowQueryInto(cs.accCM) {
				return appendNoWindow(out, req)
			}
			if req.Query == wire.QueryWindowCount {
				return wire.AppendOKU64(out, req.ID, cs.accCM.Estimate(req.Arg))
			}
			return wire.AppendOKU64(out, req.ID, cs.accCM.N())
		case wire.QueryDecayedCount:
			sk := cs.countmin(req.Name)
			if cs.accCM == nil {
				cs.accCM = sk.NewAccumulator()
			}
			if !sk.DecayedQueryInto(cs.accCM) {
				return wire.AppendError(out, req.ID,
					fmt.Sprintf("no decayed window declared on %s/%s", req.Family, req.Name))
			}
			return wire.AppendOKU64(out, req.ID, cs.accCM.Estimate(req.Arg))
		}
	}
	return wire.AppendError(out, req.ID,
		fmt.Sprintf("query kind %d unsupported for family %s", req.Query, req.Family))
}

func appendNoWindow(out []byte, req *wire.Request) []byte {
	return wire.AppendError(out, req.ID,
		fmt.Sprintf("no window declared on %s/%s", req.Family, req.Name))
}

// autoscalePolicy maps the wire knobs onto an autoscale.Policy; sampling
// cadence, streaks, cooldown and step factor take the package's production
// defaults (see autoscale.Policy).
func autoscalePolicy(req *wire.Request) autoscale.Policy {
	return autoscale.Policy{
		MinShards: int(req.MinShards),
		MaxShards: int(req.MaxShards),
		HighWater: req.High,
		LowWater:  req.Low,
	}
}
