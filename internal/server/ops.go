package server

import (
	"fastsketches/internal/wire"
)

// Ops hooks: the serving layer's face of the lifecycle/observability plane
// (internal/ops). The daemon wires three things here at startup: the
// OpOpsStats responder (SetOps), the per-chunk ingest instrumentation
// (SetIngestObserver), and — on the ops manager's side — DropSketch as the
// manager's Drop hook, so idle-TTL evictions and budget sheds retire
// sketches through the server's quiescing drop path instead of yanking
// them out of the registry under live lane workers.

// SetOps installs the function OpOpsStats invokes — typically a bound
// adapter over ops.Manager.Stats. A nil (or never-set) hook makes
// OpOpsStats answer with a typed error.
func (s *Server) SetOps(fn func() wire.OpsStats) {
	s.mu.Lock()
	s.opsStats = fn
	s.mu.Unlock()
}

func (s *Server) opsStatsFn() func() wire.OpsStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opsStats
}

// SetIngestObserver installs the per-chunk ingest instrumentation hook:
// obs(n, d) is called by a lane worker after applying one ingest chunk of
// n items in d nanoseconds. Lane apply closures capture the hook when the
// sketch's lane set is created, so install it before serving traffic;
// lane sets created earlier keep running unobserved.
func (s *Server) SetIngestObserver(obs func(n, d int64)) {
	s.mu.Lock()
	s.ingestObs = obs
	s.mu.Unlock()
}

// DropSketch retires the named sketch through the server's quiescing drop:
// lane workers drain and exit before the registry closes the sketch, and
// every connection's handle cache is invalidated. This is the Drop hook an
// ops.Manager must use when its registry is served by this server — a bare
// Registry.Drop would close the sketch under live lane workers and wedge
// them on a closed sketch's Update. Returns false for an unknown family or
// an unregistered sketch.
func (s *Server) DropSketch(family, name string) bool {
	var fam wire.Family
	switch family {
	case "theta":
		fam = wire.FamilyTheta
	case "hll":
		fam = wire.FamilyHLL
	case "quantiles":
		fam = wire.FamilyQuantiles
	case "countmin":
		fam = wire.FamilyCountMin
	default:
		return false
	}
	return s.drop(fam, []byte(name))
}
