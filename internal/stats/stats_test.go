package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	want := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestQuantileBasics(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 30 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 20 {
		t.Errorf("q25 = %v (linear interp on ranks)", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilesMatchSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	qs := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	batch := Quantiles(xs, qs)
	for i, q := range qs {
		if single := Quantile(xs, q); single != batch[i] {
			t.Errorf("q=%v: batch %v != single %v", q, batch[i], single)
		}
	}
}

func TestRSEUnbiasedEstimator(t *testing.T) {
	// Estimates scattered symmetrically around truth: RSE ≈ relative stddev.
	rng := rand.New(rand.NewSource(2))
	truth := 1000.0
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth + 30*rng.NormFloat64()
	}
	if got := RSE(xs, truth); math.Abs(got-0.03) > 0.002 {
		t.Errorf("RSE = %v, want ≈0.03", got)
	}
}

func TestRSEIncludesBias(t *testing.T) {
	// A pure-bias estimator (no variance): RSE = |bias|/truth.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 900
	}
	if got := RSE(xs, 1000); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RSE = %v, want 0.1", got)
	}
}

func TestRelativeErrors(t *testing.T) {
	res := RelativeErrors([]float64{900, 1000, 1100}, 1000)
	want := []float64{-0.1, 0, 0.1}
	for i := range want {
		if math.Abs(res[i]-want[i]) > 1e-12 {
			t.Errorf("re[%d] = %v, want %v", i, res[i], want[i])
		}
	}
}

func TestClosedForms(t *testing.T) {
	// Table 1 numeric sanity: k=2^10, r=8, n=2^15.
	n, k, r := float64(1<<15), 1<<10, 8
	if got := WeakAdversaryExpectation(n, k, r); math.Abs(got/n-0.99225) > 0.0005 {
		t.Errorf("weak expectation/n = %v, want ≈0.995 (paper: 0.995·2^15)", got/n)
	}
	if got := SeqRSEBound(k); math.Abs(got-0.03128) > 0.0005 {
		t.Errorf("sequential RSE bound = %v, want ≈3.1%%", got)
	}
	wb := WeakAdversaryRSEBound(k, r)
	if wb < SeqRSEBound(k) || wb > 2*SeqRSEBound(k) {
		t.Errorf("weak RSE bound %v should lie in [seq, 2·seq] for r ≤ √(k−2)", wb)
	}
}

func TestMeanOfMinK(t *testing.T) {
	// Empirical check: E[M(k)] = k/(n+1).
	rng := rand.New(rand.NewSource(3))
	const n, k, trials = 1000, 10, 4000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		// k-th smallest by partial sort.
		for i := 0; i < k; i++ {
			for j := i + 1; j < n; j++ {
				if xs[j] < xs[i] {
					xs[i], xs[j] = xs[j], xs[i]
				}
			}
		}
		sum += xs[k-1]
	}
	emp := sum / trials
	want := MeanOfMinK(k, n)
	if math.Abs(emp-want) > 0.001 {
		t.Errorf("empirical E[M(k)] = %v, closed form %v", emp, want)
	}
}

func TestPropertyQuantileMonotoneInQ(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(4))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
