// Package stats provides the statistical machinery used by the error
// analysis and the accuracy harness: trial aggregation (mean, RSE, quantiles
// of the error distribution — the "pitchfork" lines of Figure 5) and the
// closed-form expressions of Section 6.1.
package stats

import (
	"math"
	"sort"
)

// Summary aggregates a set of trial observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes moments of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Quantile returns the q-th empirical quantile of xs (xs is copied; linear
// interpolation between order statistics).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return quantileSorted(cp, q)
}

// Quantiles evaluates several quantiles with one sort.
func Quantiles(xs []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, q := range qs {
		out[i] = quantileSorted(cp, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RSE computes the relative standard error of estimates with respect to the
// true value: √(E[(est−truth)²]) / truth — the root-mean-square error
// normalised by the quantity being estimated, matching the paper's
// RSE[e] ≤ √(σ²/n²) + √((E[e]−n)²/n²) decomposition (variance plus bias,
// both relative).
func RSE(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 || truth == 0 {
		return math.NaN()
	}
	var mse float64
	for _, e := range estimates {
		d := e - truth
		mse += d * d
	}
	mse /= float64(len(estimates))
	return math.Sqrt(mse) / truth
}

// RelativeErrors maps estimates to relative errors (est/truth − 1), the
// quantity plotted by the accuracy pitchforks (RE = Measured/True − 1).
func RelativeErrors(estimates []float64, truth float64) []float64 {
	out := make([]float64, len(estimates))
	for i, e := range estimates {
		out[i] = e/truth - 1
	}
	return out
}

// --- Closed forms of Section 6.1 (Table 1) ---

// SeqExpectation is the expected estimate of the sequential Θ sketch: n
// (the estimator is unbiased).
func SeqExpectation(n float64) float64 { return n }

// SeqRSEBound is the sequential RSE bound 1/√(k−2).
func SeqRSEBound(k int) float64 {
	return 1 / math.Sqrt(float64(k-2))
}

// WeakAdversaryExpectation is the closed-form expected estimate under the
// weak adversary hiding j=r elements: n·(k−1)/(k+r−1) (Table 1).
func WeakAdversaryExpectation(n float64, k, r int) float64 {
	return n * float64(k-1) / float64(k+r-1)
}

// WeakAdversaryRSEBound is the closed-form weak-adversary RSE bound:
// √(1/(k−2)) + r/(k−2) ≤ 2/√(k−2) when r ≤ √(k−2) (Table 1).
func WeakAdversaryRSEBound(k, r int) float64 {
	return math.Sqrt(1/float64(k-2)) + float64(r)/float64(k-2)
}

// MeanOfMinK returns E[M(k)], the expected k-th minimum of n iid U(0,1)
// variables: k/(n+1) (order statistics of the uniform distribution).
func MeanOfMinK(k int, n int) float64 {
	return float64(k) / float64(n+1)
}

// KMVExpectationHiding returns E[(k−1)/M(k+j)] for n uniform samples — the
// expected KMV estimate when the adversary hides j elements below Θ:
// (k−1)/M(k+j) has expectation n·(k−1)/(k+j−1) because 1/M(i) for the i-th
// uniform order statistic has expectation n/(i−1) (for i ≥ 2).
func KMVExpectationHiding(n float64, k, j int) float64 {
	return n * float64(k-1) / float64(k+j-1)
}
