package fastsketches

import (
	"math"
	"sync"
	"testing"

	"fastsketches/internal/theta"
)

func TestConcurrentThetaEndToEnd(t *testing.T) {
	sk, err := NewConcurrentTheta(ThetaConfig{LgK: 12, Writers: 4, MaxError: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 19
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/4; i++ {
				sk.Update(w, base+uint64(i))
			}
		}(w)
	}
	wg.Wait()
	sk.Close()
	re := sk.Estimate()/n - 1
	if math.Abs(re) > 4*theta.RSEBound(4096) {
		t.Errorf("estimate error %.4f out of tolerance", re)
	}
	lo, hi := sk.ConfidenceBounds(2)
	if lo > n || hi < n {
		t.Errorf("2σ bounds [%v,%v] exclude truth %d", lo, hi, n)
	}
}

func TestConcurrentThetaDefaults(t *testing.T) {
	sk, err := NewConcurrentTheta(ThetaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sk.Close()
	if sk.Writers() != 1 {
		t.Errorf("default writers = %d, want 1", sk.Writers())
	}
	if sk.Relaxation() <= 0 {
		t.Error("relaxation should be positive")
	}
	sk.Update(0, 1)
	sk.UpdateString(0, "two")
	sk.UpdateBytes(0, []byte("three"))
	if est := sk.Estimate(); est != 3 {
		t.Errorf("eager-phase estimate %v, want 3", est)
	}
}

func TestConcurrentThetaConfigErrors(t *testing.T) {
	for name, cfg := range map[string]ThetaConfig{
		"lgK too small":   {LgK: 1},
		"lgK too big":     {LgK: 27},
		"neg writers":     {Writers: -1},
		"neg error":       {MaxError: -0.1},
		"neg buffer size": {BufferSize: -5},
	} {
		if _, err := NewConcurrentTheta(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestConcurrentThetaUnoptimised(t *testing.T) {
	sk, err := NewConcurrentTheta(ThetaConfig{LgK: 10, Writers: 2, MaxError: 1, BufferSize: 4, Unoptimised: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.Relaxation(); got != 2*4 {
		t.Errorf("ParSketch relaxation = %d, want N·b = 8", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sk.Update(w, uint64(w)<<40+uint64(i))
			}
		}(w)
	}
	wg.Wait()
	sk.Close()
	if est := sk.Estimate(); est != 1000 {
		t.Errorf("estimate %v, want exactly 1000", est)
	}
}

func TestResultSetOperations(t *testing.T) {
	a, _ := NewConcurrentTheta(ThetaConfig{LgK: 12, MaxError: 1})
	b, _ := NewConcurrentTheta(ThetaConfig{LgK: 12, MaxError: 1})
	for i := 0; i < 60000; i++ {
		a.Update(0, uint64(i))
		b.Update(0, uint64(i+30000))
	}
	a.Close()
	b.Close()
	inter := ThetaIntersect(a.Result(), b.Result())
	if math.Abs(inter.Estimate()/30000-1) > 0.2 {
		t.Errorf("intersection %v, want ≈30000", inter.Estimate())
	}
	diff := ThetaAnotB(a.Result(), b.Result())
	if math.Abs(diff.Estimate()/30000-1) > 0.2 {
		t.Errorf("difference %v, want ≈30000", diff.Estimate())
	}
	u := ThetaUnion(12, 0)
	u.Add(a.Result())
	u.Add(b.Result())
	if math.Abs(u.Estimate()/90000-1) > 0.1 {
		t.Errorf("union %v, want ≈90000", u.Estimate())
	}
}

func TestConcurrentQuantilesEndToEnd(t *testing.T) {
	q, err := NewConcurrentQuantiles(QuantilesConfig{K: 128, Writers: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 16
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 2 {
				q.Update(w, float64(i))
			}
		}(w)
	}
	wg.Wait()
	q.Close()
	if q.N() != n {
		t.Fatalf("N = %d, want %d", q.N(), n)
	}
	med := q.Quantile(0.5)
	if math.Abs(med/float64(n)-0.5) > 0.05 {
		t.Errorf("median %v, want ≈%v", med, n/2)
	}
	if r := q.Rank(float64(n) / 4); math.Abs(r-0.25) > 0.05 {
		t.Errorf("rank %v, want ≈0.25", r)
	}
}

func TestConcurrentQuantilesConfigErrors(t *testing.T) {
	if _, err := NewConcurrentQuantiles(QuantilesConfig{K: 1}); err == nil {
		t.Error("K=1 should error")
	}
	if _, err := NewConcurrentQuantiles(QuantilesConfig{Writers: -2}); err == nil {
		t.Error("negative writers should error")
	}
}

func TestConcurrentHLLEndToEnd(t *testing.T) {
	h, err := NewConcurrentHLL(HLLConfig{P: 12, Writers: 2, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 17
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/2; i++ {
				h.Update(w, base+uint64(i))
			}
		}(w)
	}
	wg.Wait()
	h.Close()
	re := h.Estimate()/n - 1
	if math.Abs(re) > 0.07 {
		t.Errorf("HLL estimate error %.4f", re)
	}
}

func TestConcurrentHLLConfigErrors(t *testing.T) {
	if _, err := NewConcurrentHLL(HLLConfig{P: 3}); err == nil {
		t.Error("P=3 should error")
	}
	if _, err := NewConcurrentHLL(HLLConfig{P: 22}); err == nil {
		t.Error("P=22 should error")
	}
}

func TestSequentialReExports(t *testing.T) {
	qs := NewThetaSketch(10, 0)
	kmv := NewKMVSketch(1024, 0)
	for i := 0; i < 50000; i++ {
		qs.Update(uint64(i))
		kmv.Update(uint64(i))
	}
	for name, est := range map[string]float64{"QuickSelect": qs.Estimate(), "KMV": kmv.Estimate()} {
		if math.Abs(est/50000-1) > 0.15 {
			t.Errorf("%s estimate %v, want ≈50000", name, est)
		}
	}
	q := NewQuantilesSketch(64)
	for i := 0; i < 10000; i++ {
		q.Update(float64(i))
	}
	if med := q.Quantile(0.5); math.Abs(med/10000-0.5) > 0.1 {
		t.Errorf("median %v", med)
	}
	h := NewHLLSketch(10, 0)
	for i := 0; i < 10000; i++ {
		h.Update(uint64(i))
	}
	if est := h.Estimate(); math.Abs(est/10000-1) > 0.15 {
		t.Errorf("HLL estimate %v", est)
	}
}

func TestLiveQueriesWhileIngesting(t *testing.T) {
	// The headline feature: queries while building, never blocking.
	sk, _ := NewConcurrentTheta(ThetaConfig{LgK: 12, Writers: 2, MaxError: 0.04})
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		prevFloor := -1.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			est := sk.Estimate()
			if est < 0 {
				t.Error("negative estimate")
				return
			}
			_ = prevFloor
			prevFloor = est
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < 200000; i++ {
				sk.Update(w, base+uint64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	qwg.Wait()
	sk.Close()
}
