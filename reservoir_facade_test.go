package fastsketches

import (
	"math"
	"sync"
	"testing"
)

func TestConcurrentReservoirEndToEnd(t *testing.T) {
	r, err := NewConcurrentReservoir(ReservoirConfig{K: 512, Writers: 4, MaxError: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 18
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				r.Update(w, float64(i))
			}
		}(w)
	}
	wg.Wait()
	r.Close()
	mean := r.Mean()
	want := float64(n-1) / 2
	// Sample-mean σ ≈ (n/√12)/√512 ≈ 0.0128·n; allow 5σ.
	if math.Abs(mean-want) > 5*0.0128*float64(n) {
		t.Errorf("sample mean %v, want ≈%v", mean, want)
	}
	snap := r.Snapshot()
	if snap.Retained != 512 {
		t.Errorf("retained %d, want 512", snap.Retained)
	}
	if snap.Threshold <= 0 || snap.Threshold >= 1 {
		t.Errorf("threshold %v out of (0,1)", snap.Threshold)
	}
}

func TestConcurrentReservoirLiveQueries(t *testing.T) {
	r, err := NewConcurrentReservoir(ReservoirConfig{K: 128, Writers: 2, MaxError: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var q sync.WaitGroup
	q.Add(1)
	go func() {
		defer q.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if s.Retained > 0 && (s.MeanValue < 0 || s.MeanValue > 1000) {
				t.Error("live mean outside value range")
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100000; i++ {
				r.Update(w, float64(i%1000))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	q.Wait()
	r.Close()
}

func TestConcurrentReservoirConfigErrors(t *testing.T) {
	if _, err := NewConcurrentReservoir(ReservoirConfig{K: -1}); err == nil {
		t.Error("negative K should error")
	}
	if _, err := NewConcurrentReservoir(ReservoirConfig{Writers: -1}); err == nil {
		t.Error("negative writers should error")
	}
}

func TestConcurrentReservoirPreFilters(t *testing.T) {
	// After the reservoir fills, the threshold hint should prune most
	// updates writer-side; verify correctness is unaffected.
	r, err := NewConcurrentReservoir(ReservoirConfig{K: 64, Writers: 1, MaxError: 1, BufferSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		r.Update(0, 5.0) // constant stream: mean must be exactly 5
	}
	r.Close()
	if m := r.Mean(); m != 5 {
		t.Errorf("constant-stream mean %v, want 5", m)
	}
}
