// Package fastsketches is a Go implementation of "Fast Concurrent Data
// Sketches" (Rinberg, Spiegelman, Bortnikov, Hillel, Keidar, Rhodes,
// Serviansky — PPoPP 2020): a generic framework that turns sequential data
// sketches into high-throughput concurrent ones that can be queried in real
// time while being built, with a provable bound on the error the concurrency
// introduces.
//
// Five sketch families are provided, each in a sequential and a concurrent
// form:
//
//   - Θ (theta) sketches for distinct counting (KMV and QuickSelect
//     variants, unions, intersections, differences, Jaccard similarity);
//   - Quantiles sketches (mergeable summaries; a KLL variant lives in
//     internal/kll) for rank/quantile queries;
//   - HLL sketches for memory-lean distinct counting;
//   - reservoir samples for mean statistics (Section 5.1's second
//     pre-filtering example);
//   - Count-Min sketches for per-key frequency estimates.
//
// The concurrent types follow the paper's OptParSketch algorithm: each
// writer goroutine owns a lane with two local buffers; a background
// propagator merges filled buffers into a shared composable sketch; queries
// read a published snapshot wait-free. A query may miss at most
// r = 2·writers·buffer updates (the relaxation), and for small streams an
// adaptive "eager" phase keeps queries exact until the stream outgrows
// 2/e² items, where e is the error budget you configure.
//
// # Quick start
//
//	sk, _ := fastsketches.NewConcurrentTheta(fastsketches.ThetaConfig{
//		LgK: 12, Writers: 4, MaxError: 0.04,
//	})
//	defer sk.Close()
//	// each writer goroutine w ∈ [0,4) ingests on its own lane:
//	sk.Update(w, key)
//	// any goroutine, at any time:
//	estimate := sk.Estimate()
//
// # Sharded multi-tenant registry
//
// A service ingesting many keyed streams uses the Registry: named sketches
// opened (get-or-create) through typed handles, each striped across S
// independent concurrent sketches (its own propagator and writer lanes per
// shard) with queries merging per-shard snapshots on demand:
//
//	reg, _ := fastsketches.NewRegistry(fastsketches.RegistryConfig{
//		Shards: 8, Writers: 4,
//	})
//	defer reg.Close()
//	visitors, _ := reg.OpenTheta("tenant-42/visitors", fastsketches.Spec{})
//	latency, _ := reg.OpenQuantiles("tenant-42/latency", fastsketches.Spec{})
//	visitors.Update(lane, userID)
//	latency.Update(lane, ms)
//	est := visitors.Sketch().Estimate() // merged, wait-free
//
// The Spec is declarative — shard count, materialized view, autoscale
// policy, and ops lifecycle (IdleTTL, Pinned) are (re)applied on every
// Open that sets them, and a zero Spec changes nothing, so reopening a
// live name is a cheap handle fetch.
//
// The staleness contract extends shard-wise: each shard is r-relaxed with
// r = 2·Writers·b (Theorem 1), and a merged query folds one wait-free
// snapshot per shard, so it misses at most S·r completed updates in total;
// per-key Count-Min estimates touch only the owning shard and keep the
// tighter single-shard r. Shard count is therefore a throughput/staleness
// dial: more shards mean more parallel propagators and smaller per-shard
// writer contention, but a larger combined S·r window for cross-shard
// queries. Eager small-stream semantics also hold per shard — every shard
// answers exactly until its own substream exceeds 2/e².
//
// Merged queries are allocation-free steady-state: each named sketch pools
// reusable merge accumulators, and query methods reset one and fold the
// shard snapshots into it rather than allocating per query. Callers that
// prefer to own the accumulator (one per reader goroutine, say) build one
// with the sketch's NewAccumulator and query through QueryInto or the
// registry's per-family QueryInto facades.
//
// # Live resharding
//
// The shard count is not frozen at construction: Handle.Resize (or a
// reopen with Spec.Shards set, or Resize on the sketch itself) grows or
// shrinks a named sketch's shard group while writers and queriers stay
// active —
// an atomic routing-epoch swap followed by an exact drain of the old
// shards into a retained legacy state. No completed update is lost or
// double-counted across a resize; merged queries transiently carry the
// combined bound S_old·r + S_new·r while a drain is in flight and settle
// at the new S·r once Resize returns:
//
//	visitors.Resize(16) // going viral: throughput ↑
//	visitors.Resize(2)  // nightly lull: staleness ↓
//
// See docs/ARCHITECTURE.md for the layer map, the bound derivations and
// the epoch protocol, and examples/resharding for a runnable walkthrough.
package fastsketches

import (
	"errors"
	"fmt"

	"fastsketches/internal/core"
	"fastsketches/internal/hll"
	"fastsketches/internal/murmur"
	"fastsketches/internal/quantiles"
	"fastsketches/internal/theta"
)

// DefaultSeed is the MurmurHash3 seed used when a config leaves Seed zero;
// it matches Apache DataSketches' default so serialised summaries agree.
const DefaultSeed = murmur.DefaultSeed

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("fastsketches: invalid configuration")

// ---------------------------------------------------------------------------
// Concurrent Θ sketch
// ---------------------------------------------------------------------------

// ThetaConfig configures a ConcurrentTheta.
type ThetaConfig struct {
	// LgK is log2 of the nominal sample count k of the shared sketch.
	// Larger k → smaller error (RSE ≈ 1/√k) but bigger memory. Default 12
	// (k=4096, the paper's configuration).
	LgK int
	// Writers is the number of ingestion lanes (N in the paper). Each lane
	// must be used by one goroutine at a time. Default 1.
	Writers int
	// MaxError is e, the extra relative error tolerated from concurrency on
	// small streams; the sketch stays exact (sequential, "eager") until the
	// stream exceeds 2/e². Use 1.0 to disable the eager phase. Default 0.04
	// (the paper's configuration).
	MaxError float64
	// BufferSize overrides the derived per-writer buffer b. 0 = derive from
	// LgK, MaxError and Writers. The relaxation is r = 2·Writers·b.
	BufferSize int
	// Unoptimised selects the paper's ParSketch variant (writers block
	// during propagation; r = Writers·b) instead of OptParSketch.
	Unoptimised bool
	// AdaptiveBuffers enables the hint-driven buffer growth the paper
	// proposes as future work: local buffers scale with 1/Θ (clamped), so
	// propagation frequency per raw update stays steady as filtering
	// strengthens. Relaxation() reports the worst-case grown bound.
	AdaptiveBuffers bool
	// Seed is the hash seed; 0 means DefaultSeed. Sketches can only be
	// merged/compared when their seeds agree.
	Seed uint64
}

func (c *ThetaConfig) normalise() error {
	if c.LgK == 0 {
		c.LgK = 12
	}
	if c.LgK < 2 || c.LgK > 26 {
		return fmt.Errorf("%w: LgK %d outside [2,26]", ErrConfig, c.LgK)
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("%w: negative Writers", ErrConfig)
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.MaxError < 0 {
		return fmt.Errorf("%w: negative MaxError", ErrConfig)
	}
	if c.BufferSize < 0 {
		return fmt.Errorf("%w: negative BufferSize", ErrConfig)
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return nil
}

// ConcurrentTheta is a Θ sketch that can be updated by multiple goroutines
// and queried in real time while it is being built.
type ConcurrentTheta struct {
	comp *theta.Composable
	fw   *core.Framework[uint64]
	seed uint64
}

// NewConcurrentTheta builds and starts a concurrent Θ sketch.
func NewConcurrentTheta(cfg ThetaConfig) (*ConcurrentTheta, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	mode := core.ModeOptimised
	if cfg.Unoptimised {
		mode = core.ModeUnoptimised
	}
	comp := theta.NewComposable(cfg.LgK, cfg.Seed)
	fw := core.New[uint64](comp, core.Config{
		Workers:         cfg.Writers,
		BufferSize:      cfg.BufferSize,
		Mode:            mode,
		MaxError:        cfg.MaxError,
		K:               1 << cfg.LgK,
		AdaptiveBuffers: cfg.AdaptiveBuffers,
	})
	fw.Start()
	return &ConcurrentTheta{comp: comp, fw: fw, seed: cfg.Seed}, nil
}

// Update ingests a uint64 key on writer lane w ∈ [0, Writers).
func (t *ConcurrentTheta) Update(w int, key uint64) {
	t.fw.Update(w, theta.HashKey(key, t.seed))
}

// UpdateString ingests a string key on writer lane w.
func (t *ConcurrentTheta) UpdateString(w int, key string) {
	t.fw.Update(w, theta.HashString(key, t.seed))
}

// UpdateBytes ingests a byte-slice key on writer lane w.
func (t *ConcurrentTheta) UpdateBytes(w int, key []byte) {
	t.fw.Update(w, theta.HashBytes(key, t.seed))
}

// Estimate returns the current distinct-count estimate. Wait-free; may be
// called from any goroutine at any time. The result reflects all but at
// most Relaxation() of the updates that completed before the call.
func (t *ConcurrentTheta) Estimate() float64 { return t.comp.Estimate() }

// ConfidenceBounds returns approximate bounds on the true distinct count at
// the given number of standard deviations (1–3).
func (t *ConcurrentTheta) ConfidenceBounds(stdDevs int) (lo, hi float64) {
	k := t.comp.Gadget().K()
	return theta.ConfidenceBounds(t.Estimate(), k, stdDevs)
}

// Relaxation returns r: the max number of completed updates a query may miss.
func (t *ConcurrentTheta) Relaxation() int { return t.fw.Relaxation() }

// Writers returns the number of ingestion lanes.
func (t *ConcurrentTheta) Writers() int { return t.fw.Workers() }

// Close stops the propagator and drains all buffered updates; afterwards
// Estimate reflects every ingested element. Call once, after all writer
// goroutines have stopped updating.
func (t *ConcurrentTheta) Close() { t.fw.Close() }

// Result returns the underlying sequential sketch after Close — useful for
// serialisation or set operations against other sketches.
func (t *ConcurrentTheta) Result() *theta.QuickSelect { return t.comp.Gadget() }

// ---------------------------------------------------------------------------
// Concurrent Quantiles sketch
// ---------------------------------------------------------------------------

// QuantilesConfig configures a ConcurrentQuantiles.
type QuantilesConfig struct {
	// K is the summary parameter (items per level); larger K → smaller rank
	// error. Default 128.
	K int
	// Writers is the number of ingestion lanes. Default 1.
	Writers int
	// MaxError is the eager-phase error budget, as in ThetaConfig. Default
	// 0.04; 1.0 disables the eager phase.
	MaxError float64
	// BufferSize overrides the derived per-writer buffer. Default 64 for
	// quantiles (propagations republish a snapshot, so larger batches
	// amortise better than Θ's).
	BufferSize int
	// RandSeed seeds the compaction coin flips. 0 = derive from K.
	RandSeed int64
}

func (c *QuantilesConfig) normalise() error {
	if c.K == 0 {
		c.K = 128
	}
	if c.K < 2 {
		return fmt.Errorf("%w: K must be ≥ 2", ErrConfig)
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("%w: negative Writers", ErrConfig)
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.BufferSize == 0 {
		c.BufferSize = 64
	}
	if c.BufferSize < 0 {
		return fmt.Errorf("%w: negative BufferSize", ErrConfig)
	}
	if c.RandSeed == 0 {
		c.RandSeed = int64(c.K)
	}
	return nil
}

// ConcurrentQuantiles is a quantiles sketch with concurrent ingestion and
// wait-free snapshot queries.
type ConcurrentQuantiles struct {
	comp *quantiles.Composable
	fw   *core.Framework[float64]
}

// NewConcurrentQuantiles builds and starts a concurrent quantiles sketch.
func NewConcurrentQuantiles(cfg QuantilesConfig) (*ConcurrentQuantiles, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	comp := quantiles.NewComposable(cfg.K, quantiles.NewRandomBits(cfg.RandSeed))
	fw := core.New[float64](comp, core.Config{
		Workers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
		K:          cfg.K,
	})
	fw.Start()
	return &ConcurrentQuantiles{comp: comp, fw: fw}, nil
}

// Update ingests one value on writer lane w.
func (q *ConcurrentQuantiles) Update(w int, v float64) { q.fw.Update(w, v) }

// Quantile returns an element whose normalized rank is ≈ phi, from the
// latest published snapshot (wait-free).
func (q *ConcurrentQuantiles) Quantile(phi float64) float64 { return q.comp.Quantile(phi) }

// Rank returns the estimated normalized rank of v (wait-free).
func (q *ConcurrentQuantiles) Rank(v float64) float64 { return q.comp.Rank(v) }

// Snapshot returns an immutable consistent view supporting many queries.
func (q *ConcurrentQuantiles) Snapshot() *quantiles.Summary { return q.comp.Snapshot() }

// N returns the number of items reflected in the latest snapshot.
func (q *ConcurrentQuantiles) N() uint64 { return q.comp.N() }

// Relaxation returns r, the max number of completed updates a query may miss.
func (q *ConcurrentQuantiles) Relaxation() int { return q.fw.Relaxation() }

// Close stops the propagator and drains all buffers.
func (q *ConcurrentQuantiles) Close() { q.fw.Close() }

// Result returns the underlying sequential sketch after Close.
func (q *ConcurrentQuantiles) Result() *quantiles.Sketch { return q.comp.Gadget() }

// ---------------------------------------------------------------------------
// Concurrent HLL sketch
// ---------------------------------------------------------------------------

// HLLConfig configures a ConcurrentHLL.
type HLLConfig struct {
	// P is the precision: 2^P registers, RSE ≈ 1.04/√(2^P). Default 12.
	P int
	// Writers is the number of ingestion lanes. Default 1.
	Writers int
	// MaxError is the eager-phase error budget. Default 0.04.
	MaxError float64
	// BufferSize overrides the per-writer buffer. Default 16.
	BufferSize int
	// Seed is the hash seed; 0 means DefaultSeed.
	Seed uint64
}

func (c *HLLConfig) normalise() error {
	if c.P == 0 {
		c.P = 12
	}
	if c.P < 4 || c.P > 21 {
		return fmt.Errorf("%w: P %d outside [4,21]", ErrConfig, c.P)
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("%w: negative Writers", ErrConfig)
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.BufferSize == 0 {
		c.BufferSize = 16
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return nil
}

// ConcurrentHLL is an HLL sketch with concurrent ingestion and wait-free
// queries.
type ConcurrentHLL struct {
	comp *hll.Composable
	fw   *core.Framework[uint64]
	seed uint64
}

// NewConcurrentHLL builds and starts a concurrent HLL sketch.
func NewConcurrentHLL(cfg HLLConfig) (*ConcurrentHLL, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	comp := hll.NewComposable(cfg.P, cfg.Seed)
	fw := core.New[uint64](comp, core.Config{
		Workers:    cfg.Writers,
		BufferSize: cfg.BufferSize,
		MaxError:   cfg.MaxError,
		K:          1 << cfg.P,
	})
	fw.Start()
	return &ConcurrentHLL{comp: comp, fw: fw, seed: cfg.Seed}, nil
}

// Update ingests a uint64 key on writer lane w.
func (h *ConcurrentHLL) Update(w int, key uint64) {
	h.fw.Update(w, murmur.HashUint64(key, h.seed))
}

// UpdateString ingests a string key on writer lane w.
func (h *ConcurrentHLL) UpdateString(w int, key string) {
	h.fw.Update(w, murmur.HashString(key, h.seed))
}

// Estimate returns the current distinct-count estimate (wait-free).
func (h *ConcurrentHLL) Estimate() float64 { return h.comp.Estimate() }

// Close stops the propagator and drains all buffers.
func (h *ConcurrentHLL) Close() { h.fw.Close() }

// ---------------------------------------------------------------------------
// Sequential re-exports
// ---------------------------------------------------------------------------

// NewThetaSketch returns a sequential QuickSelect Θ sketch (not safe for
// concurrent use) — the building block the concurrent sketch wraps, also
// useful on its own for single-threaded pipelines and set operations.
func NewThetaSketch(lgK int, seed uint64) *theta.QuickSelect {
	if seed == 0 {
		seed = DefaultSeed
	}
	return theta.NewQuickSelect(lgK, seed)
}

// NewKMVSketch returns a sequential KMV Θ sketch (Algorithm 1 of the paper).
func NewKMVSketch(k int, seed uint64) *theta.KMV {
	if seed == 0 {
		seed = DefaultSeed
	}
	return theta.NewKMV(k, seed)
}

// NewQuantilesSketch returns a sequential mergeable quantiles sketch.
func NewQuantilesSketch(k int) *quantiles.Sketch {
	return quantiles.New(k, nil)
}

// NewHLLSketch returns a sequential HLL sketch.
func NewHLLSketch(p int, seed uint64) *hll.Sketch {
	if seed == 0 {
		seed = DefaultSeed
	}
	return hll.New(p, seed)
}

// ThetaUnion returns a union accumulator for Θ sketches.
func ThetaUnion(lgK int, seed uint64) *theta.Union {
	if seed == 0 {
		seed = DefaultSeed
	}
	return theta.NewUnion(lgK, seed)
}

// ThetaIntersect estimates |A∩B| from two Θ sketches.
func ThetaIntersect(a, b theta.Sketch) *theta.CompactSketch { return theta.Intersect(a, b) }

// ThetaAnotB estimates |A\B| from two Θ sketches.
func ThetaAnotB(a, b theta.Sketch) *theta.CompactSketch { return theta.AnotB(a, b) }
