package fastsketches_test

// Registry-level materialized-view tests, plus the Drop/Close-under-fire
// leak audit: a sketch carrying a live autoscale controller AND a view
// refresher, dropped (or closed with the registry) while writers, queriers
// and refreshes are in flight, must neither panic nor leak a goroutine.
// Goroutine accounting is done goleak-style: count, churn, settle-poll back
// to the baseline.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
)

func TestRegistryViewFacades(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// No sketches under the name yet: error, nothing enabled.
	if _, err := reg.ReplaceView("metrics", fastsketches.ViewConfig{}); err == nil {
		t.Fatal("ReplaceView on absent name should error")
	}

	th := openTheta(t, reg, "metrics").Sketch()
	cm := openCountMin(t, reg, "metrics").Sketch()
	openHLL(t, reg, "other")
	for i := 0; i < 1000; i++ {
		th.Update(0, uint64(i))
		cm.Update(0, uint64(i%10))
	}

	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	n, err := reg.ReplaceView("metrics", fastsketches.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
	})
	if err != nil || n != 2 {
		t.Fatalf("ReplaceView = %d, %v; want 2 sketches covered", n, err)
	}
	inf, ok := reg.Info("theta", "metrics")
	if !ok || !inf.ViewEnabled {
		t.Fatalf("theta info = %+v (ok %v), want ViewEnabled", inf, ok)
	}
	if inf, _ := reg.Info("hll", "other"); inf.ViewEnabled {
		t.Fatal("view leaked onto a different name")
	}
	// Served through the published view.
	if est := th.Estimate(); est < 500 || est > 1500 {
		t.Fatalf("viewed estimate %.0f wildly off 1000", est)
	}
	clk.Advance(time.Minute)
	if inf, _ := reg.Info("countmin", "metrics"); inf.ViewLag != time.Minute {
		t.Fatalf("ViewLag = %v, want 1m", inf.ViewLag)
	}

	// Re-enabling re-arms idempotently; disabling reports the pair.
	if n, err := reg.ReplaceView("metrics", fastsketches.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
	}); err != nil || n != 2 {
		t.Fatalf("re-ReplaceView = %d, %v", n, err)
	}
	if n := reg.StopView("metrics"); n != 2 {
		t.Fatalf("StopView = %d, want 2", n)
	}
	if n := reg.StopView("metrics"); n != 0 {
		t.Fatalf("second StopView = %d, want 0", n)
	}
	if inf, _ := reg.Info("theta", "metrics"); inf.ViewEnabled {
		t.Fatal("ViewEnabled after disable")
	}
}

func TestRegistryViewPanicsAfterClose(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	openTheta(t, reg, "x")
	reg.Close()
	for name, f := range map[string]func(){
		"ReplaceView": func() { reg.ReplaceView("x", fastsketches.ViewConfig{}) },
		"StopView":    func() { reg.StopView("x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Close did not panic", name)
				}
			}()
			f()
		}()
	}
}

// settleToBaseline polls until the live goroutine count returns to base.
func settleToBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
			n, base, buf[:runtime.Stack(buf, true)])
	}
}

// TestRegistryDropUnderFireNoLeak drops a sketch that carries a live
// autoscale controller and a fast view refresher while writers and
// queriers hammer it. Drop must stop the controller before the sketch
// closes (no resize-into-closed panic), the sketch's Close must stop the
// view refresher, and nothing may leak.
func TestRegistryDropUnderFireNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 6; round++ {
		reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
			Shards: 2, Writers: 2, BufferSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		cm := openCountMin(t, reg, "fire").Sketch()
		if _, err := reg.ReplaceAutoscale("fire", autoscale.Policy{
			MinShards: 1, MaxShards: 4,
			HighWater: 1, LowWater: 0.5, // trigger-happy: resizes constantly
			SampleEvery: 200 * time.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.ReplaceView("fire", fastsketches.ViewConfig{
			RefreshEvery: 200 * time.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		for lane := 0; lane < 2; lane++ {
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					cm.Update(lane, uint64(i%32))
				}
			}(lane)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				cm.N() // merged read through the view while it lives
			}
		}()

		time.Sleep(5 * time.Millisecond) // let refreshes and resizes fire
		if round%2 == 0 {
			// Writers must be parked BEFORE Drop: an Update on a dropped
			// sketch blocks forever by contract.
			stop.Store(true)
			wg.Wait()
			if !reg.Drop("countmin", "fire") {
				t.Fatal("Drop found nothing")
			}
			reg.Close()
		} else {
			stop.Store(true)
			wg.Wait()
			reg.Close() // Close with controller + view still attached
		}
	}
	settleToBaseline(t, base)
}

// TestRegistryDropRacesReplaceView races ReplaceView/StopView against Drop
// of the same name: every interleaving must end with zero view refreshers
// alive, no panic, and the registry reusable for a fresh sketch under the
// same name.
func TestRegistryDropRacesReplaceView(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 1})
		if err != nil {
			t.Fatal(err)
		}
		openTheta(t, reg, "raced")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// May hit the sketch before or after Drop closed it; both must
			// be clean (an error from a closed sketch is fine, a panic not).
			reg.ReplaceView("raced", fastsketches.ViewConfig{RefreshEvery: 100 * time.Microsecond})
		}()
		go func() {
			defer wg.Done()
			reg.Drop("theta", "raced")
		}()
		wg.Wait()
		// The name is reusable; a fresh sketch starts viewless.
		if inf, ok := reg.Info("theta", "raced"); ok && inf.ViewEnabled {
			t.Fatal("recreated sketch inherited a view")
		}
		fresh := openTheta(t, reg, "raced").Sketch()
		fresh.Update(0, 1)
		reg.Close()
	}
	settleToBaseline(t, base)
}
