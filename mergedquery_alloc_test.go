//go:build !race

package fastsketches_test

// TestMergedQueryZeroAlloc turns the PR's headline claim into an enforced
// contract: steady-state merged queries through the pooled registry path
// (and the caller-owned QueryInto path) must not allocate. CI's bench-smoke
// job runs this test without the race detector; it is excluded under -race
// because the race-mode sync.Pool intentionally drops puts at random, so
// pool misses (and their allocations) are expected there.

import (
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
	"fastsketches/internal/mergedbench"
)

func TestMergedQueryZeroAlloc(t *testing.T) {
	// 4 shards so the quantiles fold exercises the ping-ponged scratch
	// buffers, not just the first-summary copy.
	suite, err := mergedbench.NewSuite(4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	assertZeroAllocQueries(t, suite)
}

// TestMergedQueryZeroAllocAfterResize extends the contract across live
// resharding: after growing and shrinking the shard group mid-stream, every
// merged query additionally folds the legacy accumulator holding the
// retired epochs' drained state — and must still allocate nothing. This
// pins two properties of the resize path: pooled accumulators carried over
// from before the resize stay correctly sized for the new shard group (the
// pool is family-dimensioned, not shard-dimensioned), and the published
// legacy accumulator is folded via the allocation-free FoldInto hooks, not
// through escaping copies.
func TestMergedQueryZeroAllocAfterResize(t *testing.T) {
	suite, err := mergedbench.NewSuiteResized(4, 1<<12, []int{8, 2})
	if err != nil {
		t.Fatal(err)
	}
	assertZeroAllocQueries(t, suite)
}

// TestMergedQueryZeroAllocThroughView extends the contract to the
// materialized-view serving plane: with a view published, every pooled and
// caller-owned merged query folds the single view accumulator instead of S
// shard snapshots — and must still allocate nothing. The sketches stay live
// (closing a sketch tears its view down), the refresher is parked on a
// manual clock with a never-expiring view, and writers are quiescent, so
// each run folds the same published buffer. Pins the whole chain: view
// acquire/release handshake, FoldInto from the view accumulator, pooled
// accumulator reuse.
func TestMergedQueryZeroAllocThroughView(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, MaxError: 1, QuantilesK: 128, CountMinEpsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	th, hl := openTheta(t, reg, "viewed").Sketch(), openHLL(t, reg, "viewed").Sketch()
	qu, cm := openQuantiles(t, reg, "viewed").Sketch(), openCountMin(t, reg, "viewed").Sketch()
	for i := 0; i < 1<<12; i++ {
		th.Update(0, uint64(i))
		hl.Update(0, uint64(i))
		qu.Update(0, float64(i%4096))
		cm.Update(0, uint64(i%512))
	}
	clk := autoscale.NewManualClock(time.Unix(1<<20, 0))
	if n, err := reg.ReplaceView("viewed", fastsketches.ViewConfig{
		RefreshEvery: time.Hour, MaxAge: -1, Clock: clk,
	}); err != nil || n != 4 {
		t.Fatalf("ReplaceView = %d, %v; want all 4 families covered", n, err)
	}

	var sinkF float64
	var sinkU uint64
	thAcc, hlAcc := th.NewAccumulator(), hl.NewAccumulator()
	qAcc, cmAcc := qu.NewAccumulator(), cm.NewAccumulator()
	paths := map[string]func(){
		"theta/pooled":        func() { sinkF = th.Estimate() },
		"theta/queryinto":     func() { th.QueryInto(thAcc); sinkF = thAcc.Estimate() },
		"hll/pooled":          func() { sinkF = hl.Estimate() },
		"hll/queryinto":       func() { hl.QueryInto(hlAcc); sinkF = hlAcc.Estimate() },
		"quantiles/pooled":    func() { sinkF = qu.Quantile(0.99) },
		"quantiles/queryinto": func() { qu.QueryInto(qAcc); sinkF = qAcc.Quantile(0.99) },
		"countmin/queryinto":  func() { cm.QueryInto(cmAcc); sinkU = cmAcc.Estimate(7) },
	}
	for name, fn := range paths {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s through view: %v allocs/op steady-state, want 0", name, allocs)
		}
	}
	_, _ = sinkF, sinkU
}

func assertZeroAllocQueries(t *testing.T, suite *mergedbench.Suite) {
	t.Helper()
	var sinkF float64
	var sinkU uint64
	thAcc := suite.Theta.NewAccumulator()
	hllAcc := suite.HLL.NewAccumulator()
	qAcc := suite.Quantiles.NewAccumulator()
	cmAcc := suite.CountMin.NewAccumulator()
	// AllocsPerRun's warm-up call primes each sketch's accumulator pool and
	// grows the reused buffers to steady state before counting.
	paths := map[string]func(){
		"theta/pooled":        func() { sinkF = suite.Theta.Estimate() },
		"theta/queryinto":     func() { suite.Theta.QueryInto(thAcc); sinkF = thAcc.Estimate() },
		"hll/pooled":          func() { sinkF = suite.HLL.Estimate() },
		"hll/queryinto":       func() { suite.HLL.QueryInto(hllAcc); sinkF = hllAcc.Estimate() },
		"quantiles/pooled":    func() { sinkF = suite.Quantiles.Quantile(0.99) },
		"quantiles/queryinto": func() { suite.Quantiles.QueryInto(qAcc); sinkF = qAcc.Quantile(0.99) },
		"countmin/queryinto":  func() { suite.CountMin.QueryInto(cmAcc); sinkU = cmAcc.Estimate(7) },
	}
	for name, fn := range paths {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op steady-state, want 0", name, allocs)
		}
	}
	_, _ = sinkF, sinkU
}
