package fastsketches_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"fastsketches"
	"fastsketches/internal/autoscale"
)

func TestRegistryConfigValidation(t *testing.T) {
	bad := []fastsketches.RegistryConfig{
		{Shards: -1},
		{Writers: -1},
		{MaxError: -0.1},
		{ThetaLgK: 1},
		{HLLPrecision: 30},
		{QuantilesK: 1},
		{CountMinEpsilon: 1.5},
		{CountMinDelta: -0.2},
		{WindowInterval: -time.Second},
		{WindowSlots: 3},   // slots without an interval
		{WindowDecay: 0.5}, // decay without an interval
		{WindowInterval: time.Second, WindowDecay: 1.5},     // decay outside [0,1)
		{WindowInterval: time.Second, WindowSlots: 1 << 20}, // slots beyond the ring bound
	}
	for _, cfg := range bad {
		if _, err := fastsketches.NewRegistry(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestRegistryGetOrCreateStable(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if openTheta(t, reg, "a").Sketch() != openTheta(t, reg, "a").Sketch() {
		t.Error("same name must return the same sketch")
	}
	if openTheta(t, reg, "a").Sketch() == openTheta(t, reg, "b").Sketch() {
		t.Error("different names must be independent sketches")
	}
	// Same name across families are independent tenants.
	openHLL(t, reg, "a")
	openQuantiles(t, reg, "a")
	openCountMin(t, reg, "a")
	names := reg.Names()
	want := []string{"countmin/a", "hll/a", "quantiles/a", "theta/a", "theta/b"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistryConcurrentAccessors(t *testing.T) {
	// Many goroutines racing to create/fetch the same names must agree on
	// the winners and never deadlock.
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const goroutines = 16
	sketches := make([]interface{}, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, err := reg.OpenTheta("contended", fastsketches.Spec{})
			if err != nil {
				t.Errorf("racing open: %v", err)
				return
			}
			sketches[g] = h.Sketch()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if sketches[g] != sketches[0] {
			t.Fatal("racing accessors returned different sketches for one name")
		}
	}
}

func TestRegistryEndToEnd(t *testing.T) {
	// The facade walkthrough: multiple tenants ingesting concurrently on
	// separate lanes, live merged queries, exact answers after Close.
	const writers, n = 2, 40000
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, Writers: writers, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	users := openTheta(t, reg, "users").Sketch()
	latency := openQuantiles(t, reg, "latency").Sketch()
	calls := openCountMin(t, reg, "calls").Sketch()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/writers; i++ {
				users.Update(w, base+uint64(i))
				latency.Update(w, float64(i%1000))
				calls.Update(w, uint64(i%32))
			}
			// Live merged queries from a writer goroutine are fine too.
			_ = users.Estimate()
			_ = latency.Quantile(0.99)
		}(w)
	}
	wg.Wait()
	reg.Close()
	// users: n distinct keys but 2k = 8192 < n → sampling estimate.
	re := users.Estimate()/float64(n) - 1
	if math.Abs(re) > 0.1 {
		t.Errorf("theta estimate error %.4f", re)
	}
	if got := latency.N(); got != n {
		t.Errorf("quantiles N = %d, want %d", got, n)
	}
	if got := calls.N(); got != n {
		t.Errorf("countmin N = %d, want %d", got, n)
	}
	// Each of the 32 hot keys appeared n/32 times; wide sketch → exact.
	if got := calls.Estimate(7); got != n/32 {
		t.Errorf("countmin key-7 estimate %d, want %d", got, n/32)
	}
}

func TestRegistryConcurrentFirstUseAndQueryRace(t *testing.T) {
	// Race the whole first-use window under -race (CI runs this suite with
	// the race detector): many goroutines simultaneously trigger creation of
	// the same named sketch while others update it on their own lanes and
	// query it through both the pooled path (Estimate) and the caller-owned
	// accumulator path (Handle.QueryInto with one accumulator per goroutine).
	const goroutines, iters = 12, 200
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, Writers: goroutines,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			switch g % 3 {
			case 0: // creator + writer: lane g is owned by this goroutine only
				for i := 0; i < iters; i++ {
					h, _ := reg.OpenTheta("hot", fastsketches.Spec{})
					h.Update(g, uint64(g)<<32|uint64(i))
				}
			case 1: // pooled queriers, plus first-use races on other families
				for i := 0; i < iters; i++ {
					th, _ := reg.OpenTheta("hot", fastsketches.Spec{})
					_ = th.Sketch().Estimate()
					cm, _ := reg.OpenCountMin("hot", fastsketches.Spec{})
					_ = cm.Sketch().N()
					_ = reg.Names()
				}
			case 2: // owned-accumulator queriers
				h, _ := reg.OpenTheta("hot", fastsketches.Spec{})
				acc := h.NewAccumulator()
				for i := 0; i < iters; i++ {
					h.QueryInto(acc)
					_ = acc.Estimate()
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	sk := openTheta(t, reg, "hot").Sketch()
	reg.Close()
	// 4 writer goroutines (g = 0, 3, 6, 9) each ingested `iters` distinct
	// keys; well under k per shard, so the merged estimate is exact.
	if est, want := sk.Estimate(), float64(4*iters); est != want {
		t.Errorf("estimate after racing creation/queries = %v, want exactly %v", est, want)
	}
}

func TestRegistryQueryIntoMatchesPooled(t *testing.T) {
	// Handle.QueryInto must agree with the pooled query methods, and one
	// accumulator must survive reuse across names.
	// Default MaxError keeps every shard eager for this stream size, so the
	// registry stays live while published snapshots are exact and stable
	// between the paired queries below.
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, CountMinEpsilon: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	thA, thB := openTheta(t, reg, "a"), openTheta(t, reg, "b")
	hl := openHLL(t, reg, "a")
	qu := openQuantiles(t, reg, "a")
	cm := openCountMin(t, reg, "a")
	for i := 0; i < 2000; i++ {
		thA.Update(0, uint64(i))
		thB.Update(0, uint64(i%100))
		hl.Update(0, uint64(i))
		qu.Update(0, float64(i))
		cm.Update(0, uint64(i%32))
	}
	if !thA.Eager() {
		t.Fatal("test premise broken: sketch left the eager phase")
	}

	thAcc := thA.NewAccumulator()
	for _, h := range []*fastsketches.ThetaHandle{thA, thB, thA} { // reuse across names and back
		h.QueryInto(thAcc)
		if got, want := thAcc.Estimate(), h.Sketch().Estimate(); got != want {
			t.Errorf("theta %q: QueryInto %v != pooled %v", h.Name(), got, want)
		}
	}
	hlAcc := hl.NewAccumulator()
	hl.QueryInto(hlAcc)
	if got, want := hlAcc.Estimate(), hl.Sketch().Estimate(); got != want {
		t.Errorf("hll: QueryInto %v != pooled %v", got, want)
	}
	quAcc := qu.NewAccumulator()
	qu.QueryInto(quAcc)
	if got, want := quAcc.Quantile(0.5), qu.Sketch().Quantile(0.5); got != want {
		t.Errorf("quantiles: QueryInto median %v != pooled %v", got, want)
	}
	cmAcc := cm.NewAccumulator()
	cm.QueryInto(cmAcc)
	if got, want := cmAcc.N(), cm.Sketch().N(); got != want {
		t.Errorf("countmin: QueryInto N %d != aggregate N %d", got, want)
	}
	// The merged grid sums all shards, so its one-sided estimate dominates
	// the owning shard's (which itself never underestimates the truth).
	if got, perKey := cmAcc.Estimate(7), cm.Sketch().Estimate(7); got < perKey {
		t.Errorf("countmin: merged estimate %d below per-key estimate %d", got, perKey)
	}
}

func TestRegistryCloseIdempotentAndFinal(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	openTheta(t, reg, "x").Update(0, 1)
	reg.Close()
	reg.Close() // idempotent
	// Both the create path and the existing-name fast path must refuse:
	// a sketch fetched after Close has a stopped propagator and an Update
	// on it would block forever.
	for _, name := range []string{"new-after-close", "x"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("opening %q after Close must panic", name)
				}
			}()
			reg.OpenTheta(name, fastsketches.Spec{})
		}()
	}
}

func TestRegistryResizeHandles(t *testing.T) {
	// Each family handle live-reshards the named sketch: the shard count
	// moves, merged answers stay lossless across the drain (the streams
	// here are exact for every family), and resizing one name never
	// touches another.
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 2, MaxError: 1, ThetaLgK: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	thA, thB := openTheta(t, reg, "a"), openTheta(t, reg, "b")
	hl := openHLL(t, reg, "a")
	qu := openQuantiles(t, reg, "a")
	cm := openCountMin(t, reg, "a")
	const n = 2000
	for i := 0; i < n; i++ {
		thA.Update(0, uint64(i))
		hl.Update(0, uint64(i))
		qu.Update(0, float64(i))
		cm.Update(0, uint64(i%32))
		thB.Update(0, uint64(i))
	}
	for _, resize := range []func(int) error{
		thA.Resize, hl.Resize, qu.Resize, cm.Resize,
	} {
		if err := resize(6); err != nil {
			t.Fatal(err)
		}
	}
	if got := thA.Shards(); got != 6 {
		t.Errorf("theta/a shards after Resize = %d, want 6", got)
	}
	if got := thB.Shards(); got != 2 {
		t.Errorf("theta/b shards = %d, want untouched 2", got)
	}
	for i := n; i < 2*n; i++ {
		thA.Update(0, uint64(i))
		qu.Update(0, float64(i))
		cm.Update(0, uint64(i%32))
	}
	// Exact-mode Θ across the drain: the estimate counts every distinct
	// key ingested before and after the resize (modulo the live S·r
	// staleness window).
	if err := thA.Resize(3); err != nil { // shrink again; both drains fold into legacy
		t.Fatal(err)
	}
	if est := thA.Sketch().Estimate(); est < float64(2*n-thA.Relaxation()) || est > 2*n {
		t.Errorf("theta/a estimate %v outside [%d - S·r, %d]", est, 2*n, 2*n)
	}
	if got := cm.Sketch().N(); got < uint64(2*n-cm.Relaxation()) || got > 2*n {
		t.Errorf("countmin/a N %d outside staleness window of %d", got, 2*n)
	}
}

// TestRegistryInfoAndInfos covers the serving layer's metadata hooks:
// Info must not create sketches, must report the live geometry, and Infos
// must enumerate every family sorted.
func TestRegistryInfoAndInfos(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if _, ok := reg.Info("theta", "absent"); ok {
		t.Fatal("Info invented a sketch")
	}
	if _, ok := reg.Info("bogusfamily", "absent"); ok {
		t.Fatal("Info accepted an unknown family")
	}
	if got := len(reg.Infos()); got != 0 {
		t.Fatalf("Infos on empty registry returned %d entries", got)
	}

	users := openTheta(t, reg, "users")
	openCountMin(t, reg, "api")
	openHLL(t, reg, "users")
	if err := users.Resize(5); err != nil {
		t.Fatal(err)
	}

	inf, ok := reg.Info("theta", "users")
	if !ok {
		t.Fatal("Info missed a registered sketch")
	}
	if inf.Family != "theta" || inf.Name != "users" || inf.Shards != 5 || inf.Writers != 3 {
		t.Fatalf("Info = %+v, want theta/users S=5 W=3", inf)
	}
	if inf.Relaxation != users.Relaxation() ||
		inf.ShardRelaxation != users.ShardRelaxation() {
		t.Fatalf("Info staleness bounds %+v disagree with the sketch", inf)
	}
	if !inf.Eager {
		t.Fatal("fresh sketch should still be eager")
	}

	infos := reg.Infos()
	want := []string{"countmin/api", "hll/users", "theta/users"}
	if len(infos) != len(want) {
		t.Fatalf("Infos returned %d entries, want %d", len(infos), len(want))
	}
	for i, w := range want {
		if got := infos[i].Family + "/" + infos[i].Name; got != w {
			t.Fatalf("Infos[%d] = %s, want %s (sorted)", i, got, w)
		}
	}
}

// TestRegistryDrop covers the per-sketch teardown hook: the sketch drains
// and unregisters, attached controllers stop with it, and the name becomes
// free for a fresh sketch.
func TestRegistryDrop(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if reg.Drop("theta", "absent") {
		t.Fatal("Drop invented a sketch")
	}

	sk := openCountMin(t, reg, "api").Sketch()
	for i := 0; i < 1000; i++ {
		sk.Update(0, uint64(i%10))
	}
	ctls, err := reg.ReplaceAutoscale("api", autoscale.Policy{HighWater: 1e6, SampleEvery: time.Millisecond})
	if err != nil || len(ctls) != 1 {
		t.Fatalf("ReplaceAutoscale: ctls=%d err=%v", len(ctls), err)
	}

	if !reg.Drop("countmin", "api") {
		t.Fatal("Drop missed a registered sketch")
	}
	if _, ok := reg.Info("countmin", "api"); ok {
		t.Fatal("dropped sketch still enumerable")
	}
	// The retained handle stays queryable and, being closed (drained), is
	// exact: every pre-drop update is visible.
	if got := sk.N(); got != 1000 {
		t.Fatalf("drained dropped sketch N = %d, want 1000", got)
	}
	// The name is free: the next accessor gets a fresh, empty sketch.
	if got := openCountMin(t, reg, "api").Sketch().N(); got != 0 {
		t.Fatalf("recreated sketch N = %d, want 0", got)
	}
	// Close (deferred) must not double-stop the dropped sketch's
	// controller; reaching the end of the test green is the assertion.
}

// TestRegistryConfigAccessor pins that Config returns the normalised
// configuration (defaults applied), which serving layers rely on to
// dimension per-connection state.
func TestRegistryConfigAccessor(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	cfg := reg.Config()
	if cfg.Writers != 2 || cfg.Shards == 0 || cfg.ThetaLgK == 0 {
		t.Fatalf("Config not normalised: %+v", cfg)
	}
}

// TestRegistryStopAutoscale pins the attach-replace primitive: stopping by
// name detaches exactly the named sketches' controllers, and a repeated
// stop+attach cycle (the remote admin path) never accumulates loops.
func TestRegistryStopAutoscale(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	openTheta(t, reg, "a")
	openCountMin(t, reg, "a")
	openTheta(t, reg, "b")
	pol := autoscale.Policy{HighWater: 1e9, SampleEvery: time.Millisecond}
	if _, err := reg.ReplaceAutoscale("a", pol); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ReplaceAutoscale("b", pol); err != nil {
		t.Fatal(err)
	}

	if n := reg.StopAutoscale("a"); n != 2 {
		t.Fatalf("StopAutoscale(a) stopped %d controllers, want 2 (theta+countmin)", n)
	}
	if n := reg.StopAutoscale("a"); n != 0 {
		t.Fatalf("second StopAutoscale(a) stopped %d, want 0", n)
	}
	// b's controller is untouched; atomic replace cycles keep exactly one.
	for i := 0; i < 3; i++ {
		if _, err := reg.ReplaceAutoscale("b", pol); err != nil {
			t.Fatal(err)
		}
	}
	// An invalid policy must leave the previous controller attached.
	if _, err := reg.ReplaceAutoscale("b", autoscale.Policy{}); err == nil {
		t.Fatal("ReplaceAutoscale accepted an invalid policy")
	}
	if n := reg.StopAutoscale("b"); n != 1 {
		t.Fatalf("after replace cycles, StopAutoscale(b) stopped %d, want 1", n)
	}
	if n := reg.StopAutoscale("absent"); n != 0 {
		t.Fatalf("StopAutoscale(absent) stopped %d, want 0", n)
	}
}
