package fastsketches_test

import (
	"math"
	"sync"
	"testing"

	"fastsketches"
)

func TestRegistryConfigValidation(t *testing.T) {
	bad := []fastsketches.RegistryConfig{
		{Shards: -1},
		{Writers: -1},
		{MaxError: -0.1},
		{ThetaLgK: 1},
		{HLLPrecision: 30},
		{QuantilesK: 1},
		{CountMinEpsilon: 1.5},
		{CountMinDelta: -0.2},
	}
	for _, cfg := range bad {
		if _, err := fastsketches.NewRegistry(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestRegistryGetOrCreateStable(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if reg.Theta("a") != reg.Theta("a") {
		t.Error("same name must return the same sketch")
	}
	if reg.Theta("a") == reg.Theta("b") {
		t.Error("different names must be independent sketches")
	}
	// Same name across families are independent tenants.
	reg.HLL("a")
	reg.Quantiles("a")
	reg.CountMin("a")
	names := reg.Names()
	want := []string{"countmin/a", "hll/a", "quantiles/a", "theta/a", "theta/b"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistryConcurrentAccessors(t *testing.T) {
	// Many goroutines racing to create/fetch the same names must agree on
	// the winners and never deadlock.
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	const goroutines = 16
	sketches := make([]interface{}, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sketches[g] = reg.Theta("contended")
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if sketches[g] != sketches[0] {
			t.Fatal("racing accessors returned different sketches for one name")
		}
	}
}

func TestRegistryEndToEnd(t *testing.T) {
	// The facade walkthrough: multiple tenants ingesting concurrently on
	// separate lanes, live merged queries, exact answers after Close.
	const writers, n = 2, 40000
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, Writers: writers, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	users := reg.Theta("users")
	latency := reg.Quantiles("latency")
	calls := reg.CountMin("calls")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 40
			for i := 0; i < n/writers; i++ {
				users.Update(w, base+uint64(i))
				latency.Update(w, float64(i%1000))
				calls.Update(w, uint64(i%32))
			}
			// Live merged queries from a writer goroutine are fine too.
			_ = users.Estimate()
			_ = latency.Quantile(0.99)
		}(w)
	}
	wg.Wait()
	reg.Close()
	// users: n distinct keys but 2k = 8192 < n → sampling estimate.
	re := users.Estimate()/float64(n) - 1
	if math.Abs(re) > 0.1 {
		t.Errorf("theta estimate error %.4f", re)
	}
	if got := latency.N(); got != n {
		t.Errorf("quantiles N = %d, want %d", got, n)
	}
	if got := calls.N(); got != n {
		t.Errorf("countmin N = %d, want %d", got, n)
	}
	// Each of the 32 hot keys appeared n/32 times; wide sketch → exact.
	if got := calls.Estimate(7); got != n/32 {
		t.Errorf("countmin key-7 estimate %d, want %d", got, n/32)
	}
}

func TestRegistryCloseIdempotentAndFinal(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg.Theta("x").Update(0, 1)
	reg.Close()
	reg.Close() // idempotent
	// Both the create path and the existing-name fast path must refuse:
	// a sketch fetched after Close has a stopped propagator and an Update
	// on it would block forever.
	for _, name := range []string{"new-after-close", "x"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fetching %q after Close must panic", name)
				}
			}()
			reg.Theta(name)
		}()
	}
}
