package fastsketches_test

// BenchmarkMergedQuery measures the merged-query plane across shard counts
// and query paths (pooled / queryinto / fresh — see internal/mergedbench,
// which benchrunner's mergedquery scenario shares so both surfaces measure
// the same code).
//
// Run: go test -bench=MergedQuery -benchtime=100x -run='^$' .
// CI runs exactly that as an allocation smoke; the hard zero-alloc contract
// is enforced by TestMergedQueryZeroAlloc.

import (
	"fmt"
	"testing"

	"fastsketches/internal/mergedbench"
)

func BenchmarkMergedQuery(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		suite, err := mergedbench.NewSuite(shards, 1<<15)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range suite.Cases() {
			b.Run(fmt.Sprintf("%s/%s/shards=%d", c.Family, c.Path, shards), c.Fn)
		}
	}
}
