package fastsketches

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fastsketches/internal/autoscale"
	"fastsketches/internal/core"
	"fastsketches/internal/shard"
)

// PressureSample is the wait-free cumulative ingest-pressure counter pair
// every sketch exposes (see Handle.Pressure): Ingested counts items handed
// to the propagation plane, Merged items folded into shard snapshots;
// Backlog() is their difference. Both are monotonic across resizes.
type PressureSample = core.PressureSample

// RegistryConfig parameterises a Registry and the sharded sketches it
// creates. The zero value serves 4-shard, single-lane sketches with the
// paper's default accuracy parameters.
type RegistryConfig struct {
	// Shards is S, the number of independent concurrent sketches each named
	// sketch is striped over. More shards buy ingest throughput (one
	// propagator per shard) at the cost of a larger combined staleness
	// window S·r for merged queries. Default 4.
	Shards int
	// Writers is the number of writer lanes per named sketch. Lane l must
	// be driven by at most one goroutine at a time. Default 1.
	Writers int
	// MaxError is the per-shard eager-phase error budget e; each shard
	// answers exactly until its substream exceeds 2/e². 1.0 disables the
	// eager phase. Default 0.04.
	MaxError float64
	// BufferSize overrides the derived per-writer buffer b. The combined
	// relaxation of a merged query is S·2·Writers·b. 0 = derive per family.
	BufferSize int
	// Unoptimised selects the ParSketch variant (r = N·b per shard).
	Unoptimised bool
	// Seed is the hash seed shared by all sketches; 0 means DefaultSeed.
	Seed uint64

	// WindowInterval, when positive, declares a registry-wide default
	// sliding window: every sketch this registry creates starts with a
	// window of WindowSlots closed intervals of this length (see
	// Spec.Window for the per-sketch form and the staleness semantics).
	// Zero means sketches start unwindowed.
	WindowInterval time.Duration
	// WindowSlots is the default window's closed-interval capacity;
	// 0 = the window layer's default. Requires WindowInterval.
	WindowSlots int
	// WindowDecay is the default window's exponential decay factor,
	// applied to Count-Min sketches only (the one family with a decayable
	// counter plane); other families get the sliding window without a
	// decay plane. 0 = no decay. Requires WindowInterval.
	WindowDecay float64

	// ThetaLgK is log2 of the per-shard Θ sample count. Default 12.
	ThetaLgK int
	// HLLPrecision is the per-shard HLL precision p. Default 12.
	HLLPrecision int
	// QuantilesK is the per-shard quantiles summary parameter. Default 128.
	QuantilesK int
	// CountMinEpsilon / CountMinDelta dimension per-shard Count-Min
	// sketches. Defaults 0.001 / 0.01.
	CountMinEpsilon float64
	CountMinDelta   float64
}

func (c *RegistryConfig) normalise() error {
	if c.Shards == 0 {
		c.Shards = shard.DefaultShards
	}
	if c.Shards < 1 {
		return fmt.Errorf("%w: Shards must be ≥ 1", ErrConfig)
	}
	if c.Writers == 0 {
		c.Writers = 1
	}
	if c.Writers < 0 {
		return fmt.Errorf("%w: negative Writers", ErrConfig)
	}
	if c.MaxError == 0 {
		c.MaxError = 0.04
	}
	if c.MaxError < 0 {
		return fmt.Errorf("%w: negative MaxError", ErrConfig)
	}
	if c.BufferSize < 0 {
		return fmt.Errorf("%w: negative BufferSize", ErrConfig)
	}
	if c.WindowInterval < 0 {
		return fmt.Errorf("%w: negative WindowInterval", ErrConfig)
	}
	if c.WindowInterval == 0 && (c.WindowSlots != 0 || c.WindowDecay != 0) {
		return fmt.Errorf("%w: WindowSlots/WindowDecay require WindowInterval", ErrConfig)
	}
	if c.WindowInterval > 0 {
		wc := shard.WindowConfig{Interval: c.WindowInterval, Slots: c.WindowSlots, Decay: c.WindowDecay}
		if _, err := wc.Normalise(); err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	if c.ThetaLgK == 0 {
		c.ThetaLgK = 12
	}
	if c.ThetaLgK < 2 || c.ThetaLgK > 26 {
		return fmt.Errorf("%w: ThetaLgK %d outside [2,26]", ErrConfig, c.ThetaLgK)
	}
	if c.HLLPrecision == 0 {
		c.HLLPrecision = 12
	}
	if c.HLLPrecision < 4 || c.HLLPrecision > 21 {
		return fmt.Errorf("%w: HLLPrecision %d outside [4,21]", ErrConfig, c.HLLPrecision)
	}
	if c.QuantilesK == 0 {
		c.QuantilesK = 128
	}
	if c.QuantilesK < 2 {
		return fmt.Errorf("%w: QuantilesK must be ≥ 2", ErrConfig)
	}
	if c.CountMinEpsilon == 0 {
		c.CountMinEpsilon = 0.001
	}
	if c.CountMinEpsilon <= 0 || c.CountMinEpsilon >= 1 {
		return fmt.Errorf("%w: CountMinEpsilon must be in (0,1)", ErrConfig)
	}
	if c.CountMinDelta == 0 {
		c.CountMinDelta = 0.01
	}
	if c.CountMinDelta <= 0 || c.CountMinDelta >= 1 {
		return fmt.Errorf("%w: CountMinDelta must be in (0,1)", ErrConfig)
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return nil
}

func (c *RegistryConfig) shardConfig() shard.Config {
	return shard.Config{
		Shards:      c.Shards,
		Writers:     c.Writers,
		BufferSize:  c.BufferSize,
		MaxError:    c.MaxError,
		Unoptimised: c.Unoptimised,
		Seed:        c.Seed,
	}
}

// defaultWindow returns the registry-wide default WindowConfig new sketches
// start with, and whether one is declared. decayable gates the decay factor:
// only Count-Min has a scalable counter plane, so other families take the
// sliding window without decay rather than failing to open.
func (c *RegistryConfig) defaultWindow(decayable bool) (shard.WindowConfig, bool) {
	if c.WindowInterval <= 0 {
		return shard.WindowConfig{}, false
	}
	wc := shard.WindowConfig{Interval: c.WindowInterval, Slots: c.WindowSlots}
	if decayable {
		wc.Decay = c.WindowDecay
	}
	return wc, true
}

// Registry is a multi-tenant collection of named sharded sketches: the
// service-facing facade over the concurrent framework. Each name maps to an
// independent sharded sketch created on first use:
//
//	reg, _ := fastsketches.NewRegistry(fastsketches.RegistryConfig{
//		Shards: 8, Writers: 4,
//	})
//	defer reg.Close()
//	users, _ := reg.OpenTheta("users.daily", fastsketches.Spec{})
//	calls, _ := reg.OpenCountMin("api.calls", fastsketches.Spec{})
//	users.Update(lane, userID)             // ingestion path
//	calls.Update(lane, endpoint)
//	est := users.Sketch().Estimate()       // merged live query
//
// Accessors are safe to call from any goroutine (creation is serialised);
// the returned sketches follow the lane discipline of the core framework —
// writer lane l of any sketch must be driven by one goroutine at a time.
// Merged queries are wait-free and may run at any time; each reflects all
// but at most S·2·Writers·b of the updates that completed before it.
//
// Merged queries are also allocation-free steady-state: every named sketch
// owns a sync.Pool of reusable merge accumulators (a theta.Union, an HLL
// register array, a quantiles.Accumulator, a Count-Min counter grid), so
// Estimate/Quantile/Rank/N reset a pooled accumulator and fold the S shard
// snapshots into it instead of allocating per query. Callers that prefer to
// own the accumulator — e.g. one per reader goroutine — use the per-family
// QueryInto methods (or NewAccumulator/QueryInto on the sketch itself).
type Registry struct {
	cfg    RegistryConfig
	mu     sync.RWMutex
	closed bool
	thetas map[string]*shard.Theta
	hlls   map[string]*shard.HLL
	quants map[string]*shard.Quantiles
	cms    map[string]*shard.CountMin
	// controllers are the autoscaling loops attached via Autoscale /
	// AutoscaleAll, each remembered with its resize target so Drop can stop
	// the loops of a dropped sketch; Close stops them before stopping any
	// propagator, so a controller can never resize a closing sketch.
	controllers []registryController
	// lifecycles records the per-sketch lifecycle declared through
	// Open*/Spec (idle TTL, pinning), keyed "family/name" — read by the ops
	// layer's eviction and budget sweeps via Infos.
	lifecycles map[string]lifecycleSpec
	// memPressure is the memory-budget signal installed by
	// SetAutoscaleMemoryPressure, propagated to every attached controller.
	memPressure func() bool

	// ckptMu serialises checkpoint encodes and guards the reusable
	// checkpoint scratch below, so steady-state checkpoints (a periodic
	// Checkpointer) allocate nothing once the scratch has grown to the
	// working size. See checkpoint.go.
	ckptMu      sync.Mutex
	ckptEntries []checkpointEntry
	ckptNameBuf []byte
	ckptBuf     []byte
}

// registryController pairs an attached controller with the sketch it
// drives.
type registryController struct {
	ctl    *autoscale.Controller
	target autoscale.Target
}

// NewRegistry validates the configuration and returns an empty registry.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	return &Registry{
		cfg:        cfg,
		thetas:     make(map[string]*shard.Theta),
		hlls:       make(map[string]*shard.HLL),
		quants:     make(map[string]*shard.Quantiles),
		cms:        make(map[string]*shard.CountMin),
		lifecycles: make(map[string]lifecycleSpec),
	}, nil
}

// getOrCreate returns m[name], creating it with mk on first use. The read
// path is a shared-lock map hit; creation takes the exclusive lock.
func getOrCreate[T any](r *Registry, m map[string]T, name string, mk func() T) T {
	r.mu.RLock()
	sk, ok := m[name]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		// A sketch handle obtained before Close stays queryable, but the
		// registry itself must not hand out sketches whose propagators are
		// stopped: an Update on one would block forever.
		panic("fastsketches: Registry used after Close")
	}
	if ok {
		return sk
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		panic("fastsketches: Registry used after Close")
	}
	if sk, ok = m[name]; !ok {
		sk = mk()
		m[name] = sk
	}
	return sk
}

// getTheta returns the named sharded distinct-count sketch, creating it on
// first use — the internal accessor behind OpenTheta and the deprecated
// Theta facade. Configuration errors are impossible here: the registry
// config was validated by NewRegistry.
func (r *Registry) getTheta(name string) *shard.Theta {
	return getOrCreate(r, r.thetas, name, func() *shard.Theta {
		sk, err := shard.NewTheta(r.cfg.ThetaLgK, r.cfg.shardConfig())
		if err != nil {
			panic(err) // unreachable: config pre-validated
		}
		if wc, ok := r.cfg.defaultWindow(false); ok {
			if err := sk.EnableWindow(wc); err != nil {
				panic(err) // unreachable: config pre-validated
			}
		}
		return sk
	})
}

// getHLL returns the named sharded HLL sketch, creating it on first use.
func (r *Registry) getHLL(name string) *shard.HLL {
	return getOrCreate(r, r.hlls, name, func() *shard.HLL {
		sk, err := shard.NewHLL(r.cfg.HLLPrecision, r.cfg.shardConfig())
		if err != nil {
			panic(err)
		}
		if wc, ok := r.cfg.defaultWindow(false); ok {
			if err := sk.EnableWindow(wc); err != nil {
				panic(err)
			}
		}
		return sk
	})
}

// getQuantiles returns the named sharded quantiles sketch, creating it on
// first use.
func (r *Registry) getQuantiles(name string) *shard.Quantiles {
	return getOrCreate(r, r.quants, name, func() *shard.Quantiles {
		sk, err := shard.NewQuantiles(r.cfg.QuantilesK, r.cfg.shardConfig())
		if err != nil {
			panic(err)
		}
		if wc, ok := r.cfg.defaultWindow(false); ok {
			if err := sk.EnableWindow(wc); err != nil {
				panic(err)
			}
		}
		return sk
	})
}

// getCountMin returns the named sharded frequency sketch, creating it on
// first use.
func (r *Registry) getCountMin(name string) *shard.CountMin {
	return getOrCreate(r, r.cms, name, func() *shard.CountMin {
		sk, err := shard.NewCountMin(r.cfg.CountMinEpsilon, r.cfg.CountMinDelta, r.cfg.shardConfig())
		if err != nil {
			panic(err)
		}
		if wc, ok := r.cfg.defaultWindow(true); ok {
			if err := sk.EnableWindow(wc); err != nil {
				panic(err)
			}
		}
		return sk
	})
}

// ResizeSketch live-reshards the named sketch of the given family (one of
// "theta", "hll", "quantiles", "countmin") without creating it on a miss —
// the by-family admin resize serving and ops layers use. It returns
// ErrConfig when no such sketch is registered; otherwise it carries exactly
// the Resize semantics documented on ResizeTheta.
func (r *Registry) ResizeSketch(family, name string, shards int) error {
	r.mu.RLock()
	sk, ok := r.lookup(family, name)
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		panic("fastsketches: Registry used after Close")
	}
	if !ok {
		return fmt.Errorf("%w: no %s sketch %q to resize", ErrConfig, family, name)
	}
	// Resize outside r.mu: the drain can take a writer-grace period, and
	// holding the registry lock across it would stall Open/Drop/Infos.
	return sk.(interface{ Resize(int) error }).Resize(shards)
}

// ViewConfig configures a materialized merged view — see shard.ViewConfig:
// refresh interval, maximum served staleness, and an injectable clock for
// deterministic pacing in tests.
type ViewConfig = shard.ViewConfig

// WindowConfig declares a sliding window (and, for Count-Min, exponential
// time decay) — see shard.WindowConfig: rotation interval, closed-slot
// capacity, decay factor, and an injectable clock for deterministic pacing
// in tests.
type WindowConfig = shard.WindowConfig

// WindowInfo is a wait-free introspection sample of a sketch's window plane
// — see shard.WindowInfo.
type WindowInfo = shard.WindowInfo

// Clock is the injectable time source shared by view refreshers (and,
// structurally, autoscale controllers).
type Clock = shard.Clock

// viewSketch is the slice of the Sharded layer the view facades drive; all
// four family wrappers satisfy it.
type viewSketch interface {
	EnableView(shard.ViewConfig) error
	DisableView() bool
	ViewEnabled() bool
}

// viewTargetsLocked collects every sketch registered under name across all
// families. Caller holds r.mu.
func (r *Registry) viewTargetsLocked(name string) []viewSketch {
	var targets []viewSketch
	for _, fam := range []string{"theta", "hll", "quantiles", "countmin"} {
		if sk, ok := r.lookup(fam, name); ok {
			targets = append(targets, sk.(viewSketch))
		}
	}
	return targets
}

// ReplaceView materializes the merged state of every sketch currently
// registered under name, across all four families: a background refresher
// per sketch re-folds all shard snapshots every cfg.RefreshEvery and
// publishes the result atomically, after which the per-family queries
// (Estimate, Quantile, Rank, N, QueryInto) transparently fold the single
// published view — O(1) in the shard count — instead of S shard snapshots.
// The staleness bound of those queries widens from S·r to S·r plus one
// refresh interval; per-key CountMin estimates keep reading their owning
// shard directly and are unaffected. Returns how many sketches gained a
// view.
//
// Only sketches that already exist are covered. The call is idempotent per
// sketch: a sketch whose view is already enabled is re-armed under the new
// config (its old refresher is stopped first) — the replace-not-stack
// semantics remote admin planes need, mirroring ReplaceAutoscale. Views are
// disabled automatically when their sketch is dropped or the registry
// closes; like every registry accessor, ReplaceView panics after Close.
func (r *Registry) ReplaceView(name string, cfg ViewConfig) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	targets := r.viewTargetsLocked(name)
	r.mu.Unlock()
	if len(targets) == 0 {
		return 0, fmt.Errorf("%w: no registered sketches to view", ErrConfig)
	}
	// Enabling outside r.mu: EnableView serialises on each sketch's resize
	// lock, which an in-flight autoscale Resize may hold for a drain.
	for _, sk := range targets {
		sk.DisableView()
		if err := sk.EnableView(cfg); err != nil {
			return 0, err
		}
	}
	return len(targets), nil
}

// StopView stops the view refresher of every sketch registered under
// name, across all families, and reports how many views were disabled.
// Subsequent merged queries fold live shard snapshots again (bound back to
// S·r). It mirrors StopAutoscale, completing the non-deprecated
// name-spanning admin surface (the wire protocol addresses views by name
// only, with no family discriminator).
func (r *Registry) StopView(name string) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	targets := r.viewTargetsLocked(name)
	r.mu.Unlock()
	n := 0
	for _, sk := range targets {
		if sk.DisableView() {
			n++
		}
	}
	return n
}

// windowSketch is the slice of the Sharded layer the window facades drive;
// all four family wrappers satisfy it.
type windowSketch interface {
	EnableWindow(shard.WindowConfig) error
	DisableWindow() bool
	WindowEnabled() bool
	WindowSettings() (shard.WindowConfig, bool)
	WindowDecaySupported() bool
}

// windowTargetsLocked collects every sketch registered under name across all
// families. Caller holds r.mu.
func (r *Registry) windowTargetsLocked(name string) []windowSketch {
	var targets []windowSketch
	for _, fam := range []string{"theta", "hll", "quantiles", "countmin"} {
		if sk, ok := r.lookup(fam, name); ok {
			targets = append(targets, sk.(windowSketch))
		}
	}
	return targets
}

// ReplaceWindow declares a sliding window on every sketch currently
// registered under name, across all four families: each sketch's queries
// gain a windowed plane (WindowQueryInto and the per-family Window* scalars)
// covering the live rotation interval plus the last cfg.Slots closed
// intervals, while the cumulative plane keeps serving the whole stream. A
// windowed query reflects all but at most S·r of the window's updates plus
// whatever the live interval has accumulated past one rotation interval —
// see shard.Sharded.EnableWindow for the bound's derivation.
//
// The call is idempotent per sketch with replace semantics, mirroring
// ReplaceView: a sketch already windowed under an equal config keeps its
// ring (no history loss); a different config collapses the old window into
// the cumulative plane and re-arms a fresh one. Returns how many sketches
// the window was applied to. Windows stop automatically when their sketch
// is dropped or the registry closes.
func (r *Registry) ReplaceWindow(name string, cfg WindowConfig) (int, error) {
	want, err := cfg.Normalise()
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	targets := r.windowTargetsLocked(name)
	r.mu.Unlock()
	if len(targets) == 0 {
		return 0, fmt.Errorf("%w: no registered sketches to window", ErrConfig)
	}
	// Enabling outside r.mu: EnableWindow serialises on each sketch's resize
	// lock, which an in-flight autoscale Resize may hold for a drain.
	for _, sk := range targets {
		// Decay needs linearly scalable counters; for families without them
		// the same window is applied sans decay, mirroring
		// RegistryConfig.WindowDecay. The Same comparison uses the stripped
		// config too, so repeated calls stay idempotent per family.
		cfgSk, wantSk := cfg, want
		if want.Decay > 0 && !sk.WindowDecaySupported() {
			cfgSk.Decay, wantSk.Decay = 0, 0
		}
		if cur, ok := sk.WindowSettings(); ok && cur.Same(wantSk) {
			continue // equal config: keep the ring
		}
		sk.DisableWindow()
		if err := sk.EnableWindow(cfgSk); err != nil {
			return 0, err
		}
	}
	return len(targets), nil
}

// StopWindow disables the sliding window of every sketch registered under
// name, across all families, and reports how many windows were stopped.
// Each window's closed slots are collapsed into the sketch's cumulative
// plane first, so no counted update is lost; subsequent queries serve the
// cumulative stream only. It mirrors StopView, completing the name-spanning
// admin surface the wire protocol drives.
func (r *Registry) StopWindow(name string) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	targets := r.windowTargetsLocked(name)
	r.mu.Unlock()
	n := 0
	for _, sk := range targets {
		if sk.DisableWindow() {
			n++
		}
	}
	return n
}

// SetAutoscaleMemoryPressure installs f as the memory-budget signal on
// every attached autoscale controller, current and future: while f reports
// true, controllers veto scale-ups and treat quiet samples as
// down-pressure (see autoscale.Controller.SetMemoryPressure). The ops
// layer's budget accountant installs it so the budget acts through the
// control loop before the accountant has to shed. Pass nil to remove the
// signal.
func (r *Registry) SetAutoscaleMemoryPressure(f func() bool) {
	r.mu.Lock()
	r.memPressure = f
	ctls := make([]*autoscale.Controller, 0, len(r.controllers))
	for _, rc := range r.controllers {
		ctls = append(ctls, rc.ctl)
	}
	r.mu.Unlock()
	for _, ctl := range ctls {
		ctl.SetMemoryPressure(f)
	}
}

// AutoscaleStats returns a live counter snapshot of the autoscale
// controller attached to the named sketch of the given family, reporting
// ok=false when the sketch has no controller (or does not exist). When
// several controllers drive one sketch (stacked via the deprecated
// Autoscale), the first attached wins — the idempotent attach paths
// (ReplaceAutoscale, Spec.Autoscale) guarantee at most one.
func (r *Registry) AutoscaleStats(family, name string) (autoscale.Stats, bool) {
	r.mu.RLock()
	sk, ok := r.lookup(family, name)
	var ctl *autoscale.Controller
	if ok {
		for _, rc := range r.controllers {
			if any(rc.target) == any(sk) {
				ctl = rc.ctl
				break
			}
		}
	}
	r.mu.RUnlock()
	if ctl == nil {
		return autoscale.Stats{}, false
	}
	return ctl.Stats(), true
}

// detachControllersLocked removes from r.controllers every entry whose
// target is registered under name (any family) and returns the detached
// controllers. Caller holds r.mu; the caller owns stopping them.
func (r *Registry) detachControllersLocked(name string) []registryController {
	targets := make(map[any]bool, 4)
	for _, fam := range []string{"theta", "hll", "quantiles", "countmin"} {
		if sk, ok := r.lookup(fam, name); ok {
			targets[any(sk)] = true
		}
	}
	var detached []registryController
	kept := r.controllers[:0]
	for _, rc := range r.controllers {
		if targets[any(rc.target)] {
			detached = append(detached, rc)
		} else {
			kept = append(kept, rc)
		}
	}
	r.controllers = kept
	return detached
}

// StopAutoscale stops and detaches every autoscaling controller attached
// to sketches currently registered under name, across all families, and
// reports how many were stopped.
func (r *Registry) StopAutoscale(name string) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	stop := r.detachControllersLocked(name)
	r.mu.Unlock()
	for _, rc := range stop {
		rc.ctl.Stop()
	}
	return len(stop)
}

// ReplaceAutoscale atomically swaps the autoscaling of name: under one
// registry lock acquisition it detaches every controller attached to the
// named sketches and attaches (and starts) fresh ones under the new
// policy, so concurrent or retried calls can never leave two retained
// controllers driving one sketch — the idempotent attach remote admin
// planes need. The detached controllers are stopped after the swap; their
// loops may overlap the new ones for that stop latency (harmless under the
// policies' cooldowns), but exactly one controller per sketch remains. On
// a policy validation error the previous controllers stay attached.
func (r *Registry) ReplaceAutoscale(name string, p autoscale.Policy) ([]*autoscale.Controller, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	detached := r.detachControllersLocked(name)
	ctls, err := r.autoscaleLocked(p, func(n string) bool { return n == name })
	if err != nil {
		// Nothing was stopped yet: restore the detached controllers.
		r.controllers = append(r.controllers, detached...)
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Unlock()
	for _, rc := range detached {
		rc.ctl.Stop()
	}
	return ctls, nil
}

// autoscale collects the matching sketches as resize targets, builds one
// started controller per target, and records them for Close.
func (r *Registry) autoscale(p autoscale.Policy, match func(name string) bool) ([]*autoscale.Controller, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		panic("fastsketches: Registry used after Close")
	}
	return r.autoscaleLocked(p, match)
}

// autoscaleLocked is autoscale's body; the caller holds r.mu.
func (r *Registry) autoscaleLocked(p autoscale.Policy, match func(name string) bool) ([]*autoscale.Controller, error) {
	var targets []autoscale.Target
	for n, sk := range r.thetas {
		if match(n) {
			targets = append(targets, sk)
		}
	}
	for n, sk := range r.hlls {
		if match(n) {
			targets = append(targets, sk)
		}
	}
	for n, sk := range r.quants {
		if match(n) {
			targets = append(targets, sk)
		}
	}
	for n, sk := range r.cms {
		if match(n) {
			targets = append(targets, sk)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("%w: no registered sketches to autoscale", ErrConfig)
	}
	ctls := make([]*autoscale.Controller, 0, len(targets))
	for _, tgt := range targets {
		ctl, err := autoscale.New(tgt, p)
		if err != nil {
			return nil, err
		}
		if r.memPressure != nil {
			ctl.SetMemoryPressure(r.memPressure)
		}
		ctls = append(ctls, ctl)
		r.controllers = append(r.controllers, registryController{ctl, tgt})
	}
	// Start only after every policy validated, so a bad policy attaches
	// nothing rather than half a fleet. (A partial validation failure above
	// leaves the recorded-but-never-started entries harmless: Stop on a
	// never-started controller is a no-op.)
	for _, ctl := range ctls {
		ctl.Start()
	}
	return ctls, nil
}

// Config returns a copy of the registry's normalised configuration — the
// geometry (shard and writer-lane counts) and family accuracy parameters
// every sketch it creates inherits. Serving layers use it to dimension
// per-connection state: all sketches of one family share accumulator
// dimensions, because those depend only on this configuration.
func (r *Registry) Config() RegistryConfig { return r.cfg }

// SketchInfo is one registered sketch's metadata: its identity, its current
// shard/lane geometry, and its live staleness bounds. Relaxation is the
// merged-query bound S·r (transiently S_old·r + S_new·r while a resize
// drains); ShardRelaxation is the single-shard bound r governing per-key
// queries.
type SketchInfo struct {
	Family          string
	Name            string
	Shards          int
	Writers         int
	Relaxation      int
	ShardRelaxation int
	Eager           bool
	// ViewEnabled reports whether a materialized merged view is serving this
	// sketch's aggregate queries; ViewLag is the age of its latest published
	// refresh — the extra term on top of Relaxation in the query-staleness
	// bound. Zero when no view is enabled.
	ViewEnabled bool
	ViewLag     time.Duration
	// WindowEnabled reports whether a sliding window is declared on this
	// sketch; the remaining Window fields echo its shape and liveness (see
	// shard.WindowInfo): rotation count since enable, the live interval's
	// age, and how far the live interval has outlived the declared interval
	// (0 while the rotator keeps up). Zero values when no window is enabled.
	WindowEnabled     bool
	WindowInterval    time.Duration
	WindowSlots       int
	WindowDecay       float64
	WindowRotations   uint64
	WindowLiveAge     time.Duration
	WindowRotationLag time.Duration
	// Ingested / Merged / Backlog are the sketch's wait-free cumulative
	// pressure counters (see PressureSample), monotonic across resizes:
	// items handed to the propagation plane, items folded into shard
	// snapshots, and their difference. The ops layer differentiates
	// successive Ingested readings into the idle-eviction signal.
	Ingested, Merged, Backlog int64
	// SizeBytes is the sketch's estimated resident heap footprint — the
	// unit the memory-budget accountant sums (see shard.Sharded.SizeBytes).
	SizeBytes int64
	// IdleTTL and Pinned echo the lifecycle declared through Open*/Spec:
	// the per-sketch idle-eviction override (0 = use the sweeper's default)
	// and whether eviction/shedding must skip this sketch entirely.
	IdleTTL time.Duration
	Pinned  bool
}

// lifecycleSpec is the per-sketch lifecycle state declared through Spec.
type lifecycleSpec struct {
	idleTTL time.Duration
	pinned  bool
}

// shardedIntrospect is the slice of the generic Sharded layer the metadata
// hooks read; all four family wrappers satisfy it.
type shardedIntrospect interface {
	Shards() int
	Relaxation() int
	ShardRelaxation() int
	Eager() bool
	ViewEnabled() bool
	ViewLag() time.Duration
	WindowStats() (shard.WindowInfo, bool)
	Pressure() core.PressureSample
	SizeBytes() int64
}

// infoEntry is the under-lock snapshot Infos takes: the identity, the
// sketch pointer, and the lifecycle record. Everything else — every
// per-sketch introspection call and the final sort — happens outside the
// registry lock, so a slow enumeration (a /metrics scrape walking thousands
// of sketches) can never stall Open/Drop.
type infoEntry struct {
	family, name string
	sk           shardedIntrospect
	lc           lifecycleSpec
}

func (r *Registry) info(e infoEntry) SketchInfo {
	pr := e.sk.Pressure()
	si := SketchInfo{
		Family: e.family, Name: e.name,
		Shards: e.sk.Shards(), Writers: r.cfg.Writers,
		Relaxation:      e.sk.Relaxation(),
		ShardRelaxation: e.sk.ShardRelaxation(),
		Eager:           e.sk.Eager(),
		ViewEnabled:     e.sk.ViewEnabled(),
		ViewLag:         e.sk.ViewLag(),
		Ingested:        pr.Ingested,
		Merged:          pr.Merged,
		Backlog:         pr.Backlog(),
		SizeBytes:       e.sk.SizeBytes(),
		IdleTTL:         e.lc.idleTTL,
		Pinned:          e.lc.pinned,
	}
	// WindowStats is wait-free (one epoch load plus a clock read), keeping
	// the rule that info() never takes a lock or folds sketch state — a
	// metrics scrape walking thousands of sketches must not stall rotations.
	if wi, ok := e.sk.WindowStats(); ok {
		si.WindowEnabled = true
		si.WindowInterval = wi.Interval
		si.WindowSlots = wi.Slots
		si.WindowDecay = wi.Decay
		si.WindowRotations = wi.Rotations
		si.WindowLiveAge = wi.LiveAge
		si.WindowRotationLag = wi.RotationLag
	}
	return si
}

// lookup returns the named sketch of the given family without creating it.
// The caller must hold r.mu (any mode).
func (r *Registry) lookup(family, name string) (shardedIntrospect, bool) {
	switch family {
	case "theta":
		sk, ok := r.thetas[name]
		return sk, ok
	case "hll":
		sk, ok := r.hlls[name]
		return sk, ok
	case "quantiles":
		sk, ok := r.quants[name]
		return sk, ok
	case "countmin":
		sk, ok := r.cms[name]
		return sk, ok
	}
	return nil, false
}

// Info returns the named sketch's metadata without creating it. Family is
// one of "theta", "hll", "quantiles", "countmin" (the prefixes Names uses).
func (r *Registry) Info(family, name string) (SketchInfo, bool) {
	r.mu.RLock()
	sk, ok := r.lookup(family, name)
	lc := r.lifecycles[family+"/"+name]
	r.mu.RUnlock()
	if !ok {
		return SketchInfo{}, false
	}
	return r.info(infoEntry{family, name, sk, lc}), true
}

// snapshotLocked appends one infoEntry per sketch of family fam to dst.
// Caller holds r.mu (any mode).
func snapshotLocked[S shardedIntrospect](r *Registry, dst []infoEntry, fam string, m map[string]S) []infoEntry {
	for n, sk := range m {
		dst = append(dst, infoEntry{fam, n, sk, r.lifecycles[fam+"/"+n]})
	}
	return dst
}

// snapshot collects the identity/pointer pairs of every registered sketch
// under one brief RLock — the only part of an enumeration that needs the
// registry lock at all.
func (r *Registry) snapshot() []infoEntry {
	r.mu.RLock()
	entries := make([]infoEntry, 0, len(r.thetas)+len(r.hlls)+len(r.quants)+len(r.cms))
	entries = snapshotLocked(r, entries, "theta", r.thetas)
	entries = snapshotLocked(r, entries, "hll", r.hlls)
	entries = snapshotLocked(r, entries, "quantiles", r.quants)
	entries = snapshotLocked(r, entries, "countmin", r.cms)
	r.mu.RUnlock()
	return entries
}

// Infos returns every registered sketch's metadata, sorted by family then
// name — the enumeration hook serving layers expose as their admin listing
// and the ops layer walks every metrics scrape and sweep. Only the map
// snapshot happens under the registry lock; the per-sketch introspection
// (pressure loads, size estimates, view lag) and the sort run outside it,
// so a slow enumeration cannot stall Open/Drop. A sketch dropped
// concurrently may still appear in the result — its counters summarise its
// final drained state, the same staleness any enumeration has.
func (r *Registry) Infos() []SketchInfo {
	entries := r.snapshot()
	out := make([]SketchInfo, len(entries))
	for i, e := range entries {
		out[i] = r.info(e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Drop closes and removes the named sketch of the given family, reporting
// whether it existed: its propagators stop (after an exact drain of every
// buffer), any autoscaling controllers attached to it are stopped first,
// and the name becomes free — the next accessor call under it creates a
// fresh, empty sketch. Handles retained by callers stay queryable (merged
// queries are wait-free and summarise the final drained state) but must not
// be updated: an Update on a dropped sketch blocks forever, the same
// contract as Close. Like every registry accessor it panics after Close.
func (r *Registry) Drop(family, name string) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		panic("fastsketches: Registry used after Close")
	}
	sk, ok := r.lookup(family, name)
	if !ok {
		r.mu.Unlock()
		return false
	}
	switch family {
	case "theta":
		delete(r.thetas, name)
	case "hll":
		delete(r.hlls, name)
	case "quantiles":
		delete(r.quants, name)
	case "countmin":
		delete(r.cms, name)
	}
	delete(r.lifecycles, family+"/"+name)
	// Stop this sketch's controllers before its propagators: a live
	// controller mid-Tick could otherwise ask a closing sketch to resize.
	var stop []*autoscale.Controller
	kept := r.controllers[:0]
	for _, rc := range r.controllers {
		if any(rc.target) == any(sk) {
			stop = append(stop, rc.ctl)
		} else {
			kept = append(kept, rc)
		}
	}
	r.controllers = kept
	r.mu.Unlock()
	for _, ctl := range stop {
		ctl.Stop()
	}
	type closer interface{ Close() }
	sk.(closer).Close()
	return true
}

// Names lists every registered sketch, sorted, as "family/name". Like
// Infos, only the map walk runs under the registry lock; the string
// concatenations and the sort happen outside it.
func (r *Registry) Names() []string {
	r.mu.RLock()
	keys := make([][2]string, 0, len(r.thetas)+len(r.hlls)+len(r.quants)+len(r.cms))
	for n := range r.thetas {
		keys = append(keys, [2]string{"theta", n})
	}
	for n := range r.hlls {
		keys = append(keys, [2]string{"hll", n})
	}
	for n := range r.quants {
		keys = append(keys, [2]string{"quantiles", n})
	}
	for n := range r.cms {
		keys = append(keys, [2]string{"countmin", n})
	}
	r.mu.RUnlock()
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k[0] + "/" + k[1]
	}
	sort.Strings(out)
	return out
}

// Close stops every sketch's propagators and drains all buffers; afterwards
// merged queries summarise their full streams exactly. The registry must
// not be used after Close. Close is idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	// Controllers first: a stopped controller issues no further resizes, so
	// no propagator can be asked to drain mid-shutdown.
	for _, rc := range r.controllers {
		rc.ctl.Stop()
	}
	for _, sk := range r.thetas {
		sk.Close()
	}
	for _, sk := range r.hlls {
		sk.Close()
	}
	for _, sk := range r.quants {
		sk.Close()
	}
	for _, sk := range r.cms {
		sk.Close()
	}
}
