//go:build !race

package fastsketches_test

// TestCheckpointZeroAllocSteadyState enforces the checkpoint encoder's
// allocation contract: once the reused entry/name/output buffers have grown
// to the working size, taking a checkpoint allocates nothing — the capture
// folds through the same pooled accumulators merged queries use, the record
// sort is in-place, and every byte is appended into the pre-grown buffer.
// Excluded under -race because the race-mode sync.Pool intentionally drops
// puts at random, so pool misses (and their allocations) are expected there.

import (
	"errors"
	"io"
	"testing"

	"fastsketches"
)

func TestCheckpointZeroAllocSteadyState(t *testing.T) {
	reg, err := fastsketches.NewRegistry(fastsketches.RegistryConfig{
		Shards: 4, Writers: 2, MaxError: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	th, h := openTheta(t, reg, "za.theta"), openHLL(t, reg, "za.hll")
	q, cm := openQuantiles(t, reg, "za.q"), openCountMin(t, reg, "za.cm")
	for i := 0; i < 20_000; i++ {
		k := uint64(i)
		th.Update(i%2, k)
		h.Update(i%2, k)
		q.Update(i%2, float64(i))
		cm.Update(i%2, k%101)
	}

	// Quiesce before measuring: propagation is asynchronous, and each shard
	// propagator's merge republishes its snapshot with a fresh O(retained)
	// hash copy — that is the ingest path's allocation, not the checkpoint
	// encoder's. A real resize (4→3) drains every published and partial
	// writer buffer synchronously, so no propagator fires mid-measurement.
	if err := errors.Join(
		th.Resize(3), h.Resize(3), q.Resize(3), cm.Resize(3),
	); err != nil {
		t.Fatal(err)
	}

	// Warm-up: grows the internal checkpoint buffer, the entry scratch and
	// the pooled accumulators to steady-state size.
	for i := 0; i < 3; i++ {
		if err := reg.Checkpoint(io.Discard); err != nil {
			t.Fatal(err)
		}
	}

	if avg := testing.AllocsPerRun(50, func() {
		if err := reg.Checkpoint(io.Discard); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state Checkpoint allocates %v allocs/op, want 0", avg)
	}

	// The caller-owned append path with a pre-grown dst is zero-alloc too.
	dst := reg.AppendCheckpoint(nil)
	if avg := testing.AllocsPerRun(50, func() {
		dst = reg.AppendCheckpoint(dst[:0])
	}); avg != 0 {
		t.Errorf("steady-state AppendCheckpoint allocates %v allocs/op, want 0", avg)
	}
}
